// Package mrtest provides a conformance suite for mapreduce.Executor
// implementations: any executor — serial, parallel, or the distributed
// cluster adapter — must produce identical, deterministic results for the
// same jobs. New executor backends get correctness for the price of one
// function call in their tests.
package mrtest

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"evmatching/internal/mapreduce"
)

// Funcs carries the named functions a conformance run uses. Distributed
// executors need them pre-registered under the same behavior; in-process
// executors can take them straight from here.
type Funcs struct {
	// WordCountMap splits values into words, emitting (word, "1").
	WordCountMap mapreduce.MapFunc
	// SumReduce sums integer values per key.
	SumReduce mapreduce.ReduceFunc
}

// StandardFuncs returns the canonical conformance functions.
func StandardFuncs() Funcs {
	return Funcs{
		WordCountMap: func(in mapreduce.KeyValue, emit mapreduce.Emitter) error {
			for _, w := range strings.Fields(in.Value) {
				emit(mapreduce.KeyValue{Key: w, Value: "1"})
			}
			return nil
		},
		SumReduce: func(key string, values []string, emit mapreduce.Emitter) error {
			sum := 0
			for _, v := range values {
				n, err := strconv.Atoi(v)
				if err != nil {
					return err
				}
				sum += n
			}
			emit(mapreduce.KeyValue{Key: key, Value: strconv.Itoa(sum)})
			return nil
		},
	}
}

// Conformance runs the executor through the shared behavioral checks,
// comparing its output to the serial reference on every job shape.
func Conformance(t *testing.T, exec mapreduce.Executor) {
	t.Helper()
	fns := StandardFuncs()
	ctx := context.Background()
	ref := mapreduce.SerialExecutor{}

	jobs := map[string]func() *mapreduce.Job{
		"basic": func() *mapreduce.Job {
			return wordJob(fns, "a b a", "b c", "c c c a")
		},
		"empty input": func() *mapreduce.Job {
			return wordJob(fns)
		},
		"single record": func() *mapreduce.Job {
			return wordJob(fns, "solo")
		},
		"many keys": func() *mapreduce.Job {
			lines := make([]string, 40)
			for i := range lines {
				lines[i] = fmt.Sprintf("k%d k%d k%d", i%11, (i*3)%11, (i*7)%11)
			}
			return wordJob(fns, lines...)
		},
		"map only": func() *mapreduce.Job {
			j := wordJob(fns, "x y", "y z")
			j.Reduce = nil
			return j
		},
		"explicit reducers": func() *mapreduce.Job {
			j := wordJob(fns, "p q r s t", "q r")
			j.NumReducers = 5
			return j
		},
	}
	for name, build := range jobs {
		t.Run(name, func(t *testing.T) {
			want, err := ref.Run(ctx, build())
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			got, err := exec.Run(ctx, build())
			if err != nil {
				t.Fatalf("executor: %v", err)
			}
			if !reflect.DeepEqual(got.Output, want.Output) {
				t.Errorf("output differs from serial reference:\ngot  %v\nwant %v", got.Output, want.Output)
			}
			// Determinism: a second run is byte-identical.
			again, err := exec.Run(ctx, build())
			if err != nil {
				t.Fatalf("executor rerun: %v", err)
			}
			if !reflect.DeepEqual(got.Output, again.Output) {
				t.Errorf("executor output not deterministic")
			}
		})
	}

	t.Run("map error propagates", func(t *testing.T) {
		boom := errors.New("conformance boom")
		job := wordJob(fns, "a")
		job.Map = func(mapreduce.KeyValue, mapreduce.Emitter) error { return boom }
		if _, err := exec.Run(ctx, job); err == nil {
			t.Error("want map error to surface")
		}
	})

	t.Run("invalid job rejected", func(t *testing.T) {
		if _, err := exec.Run(ctx, &mapreduce.Job{Name: "no-map"}); err == nil {
			t.Error("want validation error")
		}
	})
}

// wordJob builds a word-count job over the given lines.
func wordJob(fns Funcs, lines ...string) *mapreduce.Job {
	input := make([]mapreduce.KeyValue, len(lines))
	for i, l := range lines {
		input[i] = mapreduce.KeyValue{Key: strconv.Itoa(i), Value: l}
	}
	return &mapreduce.Job{
		Name:   "conformance-wc",
		Input:  input,
		Map:    fns.WordCountMap,
		Reduce: fns.SumReduce,
	}
}

package mrtest

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// LeakSnapshot counts live goroutines by identity (top frame + creation
// site), excluding runtime and test-harness goroutines.
type LeakSnapshot map[string]int

// TakeLeakSnapshot captures the current goroutine population. Compare a
// before/after pair with Leaked, or use CheckGoroutines for the common
// whole-test form.
func TakeLeakSnapshot() LeakSnapshot {
	snap := make(LeakSnapshot)
	for _, key := range goroutineKeys() {
		snap[key]++
	}
	return snap
}

// Leaked reports goroutines present now but not in the base snapshot,
// polling until wait elapses so goroutines that are already winding down get
// a chance to exit. An empty slice means no leaks.
func (base LeakSnapshot) Leaked(wait time.Duration) []string {
	deadline := time.Now().Add(wait)
	for {
		leaked := base.diff()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// diff lists goroutine identities exceeding their baseline count.
func (base LeakSnapshot) diff() []string {
	now := make(LeakSnapshot)
	for _, key := range goroutineKeys() {
		now[key]++
	}
	var leaked []string
	for key, n := range now {
		if extra := n - base[key]; extra > 0 {
			leaked = append(leaked, fmt.Sprintf("%d × %s", extra, key))
		}
	}
	return leaked
}

// CheckGoroutines snapshots the goroutine population and registers a cleanup
// failing the test if extra goroutines survive a 2s grace period. Call it
// first in a test so its cleanup runs last (cleanups are LIFO), after the
// test's own shutdown cleanups have completed.
func CheckGoroutines(t *testing.T) {
	t.Helper()
	base := TakeLeakSnapshot()
	t.Cleanup(func() {
		if leaked := base.Leaked(2 * time.Second); len(leaked) > 0 {
			t.Errorf("leaked goroutines:\n  %s", strings.Join(leaked, "\n  "))
		}
	})
}

// goroutineKeys renders each live goroutine as "top-function <- created-by",
// skipping stacks owned by the runtime, the testing harness, or this
// package's own snapshot machinery.
func goroutineKeys() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var keys []string
	for _, stanza := range strings.Split(string(buf), "\n\n") {
		lines := strings.Split(strings.TrimSpace(stanza), "\n")
		if len(lines) < 2 {
			continue
		}
		top := funcName(lines[1])
		created := ""
		for _, l := range lines {
			if strings.HasPrefix(l, "created by ") {
				created = funcName(strings.TrimPrefix(l, "created by "))
				break
			}
		}
		if ignoredGoroutine(top, created) {
			continue
		}
		key := top
		if created != "" {
			key += " <- " + created
		}
		keys = append(keys, key)
	}
	return keys
}

// funcName strips the call arguments / trailing annotations from a stack
// frame line, keeping the package-qualified function name. Receivers keep
// their parentheses ("pkg.(*T).M"): only a trailing argument list is cut.
func funcName(line string) string {
	line = strings.TrimSpace(line)
	if i := strings.Index(line, " in goroutine"); i > 0 {
		line = line[:i]
	}
	if strings.HasSuffix(line, ")") {
		if i := strings.LastIndex(line, "("); i > 0 {
			line = line[:i]
		}
	}
	return line
}

// ignoredGoroutine allowlists goroutines the Go runtime and test harness own.
func ignoredGoroutine(top, created string) bool {
	for _, f := range []string{top, created} {
		switch {
		case strings.HasPrefix(f, "runtime."),
			strings.HasPrefix(f, "testing."),
			strings.HasPrefix(f, "os/signal."),
			strings.HasPrefix(f, "evmatching/internal/mrtest."):
			return true
		}
	}
	return false
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"strconv"
	"sync"
	"time"

	"evmatching/internal/mapreduce"
)

// Coordinator defaults.
const (
	// DefaultTaskTimeout is the lease after which an unreported task is
	// assumed lost and re-queued for another worker.
	DefaultTaskTimeout = 10 * time.Second
	// RPCServiceName is the registered net/rpc service name.
	RPCServiceName = "EVCoordinator"
)

// ErrCoordinatorClosed reports job submission after Close.
var ErrCoordinatorClosed = errors.New("cluster: coordinator closed")

// ErrTaskFailed reports a deterministic task execution failure: a worker ran
// the job's function and it returned an error. It is distinct from a lost
// worker (which the lease-based retry path re-executes silently); callers
// distinguish the two with errors.Is(err, ErrTaskFailed).
var ErrTaskFailed = errors.New("cluster: task failed")

// JobSpec names the functions and shape of one distributed job. The
// functions must be registered under these names in every worker's Registry.
type JobSpec struct {
	Name        string
	MapName     string
	ReduceName  string // empty selects the identity reduce
	CombineName string // optional
	NumMapTasks int    // input chunks; 0 defaults to 2× reducers
	NumReducers int    // 0 defaults to 4
}

// normalize fills defaults and validates.
func (s *JobSpec) normalize() error {
	if s.MapName == "" {
		return fmt.Errorf("cluster: job %q has no map function", s.Name)
	}
	if s.ReduceName == "" {
		s.ReduceName = IdentityReduceName
	}
	if s.NumReducers <= 0 {
		s.NumReducers = 4
	}
	if s.NumMapTasks <= 0 {
		s.NumMapTasks = 2 * s.NumReducers
	}
	return nil
}

// CoordinatorConfig parameterizes a coordinator.
type CoordinatorConfig struct {
	// Dir is the shared directory for input, intermediate, and output
	// files; every worker must see the same directory.
	Dir string
	// TaskTimeout is the task lease; 0 means DefaultTaskTimeout.
	TaskTimeout time.Duration
}

type taskState int

const (
	taskIdle taskState = iota + 1
	taskInProgress
	taskCompleted
)

type taskInfo struct {
	state   taskState
	started time.Time
	worker  string
}

type activeJob struct {
	id          string
	spec        JobSpec
	mapTasks    []taskInfo
	reduceTasks []taskInfo
	mapsLeft    int
	reducesLeft int
	counters    *mapreduce.Counters
	done        chan struct{}
	failed      error
}

// Coordinator schedules distributed jobs and serves the worker RPC API.
// Create with NewCoordinator, expose with Serve, submit with RunJob.
type Coordinator struct {
	cfg CoordinatorConfig

	mu     sync.Mutex
	job    *activeJob
	seq    int
	closed bool

	jobMu sync.Mutex // serializes RunJob callers

	lis     net.Listener
	serveWG sync.WaitGroup
}

// NewCoordinator creates a coordinator writing job files under cfg.Dir.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("cluster: coordinator needs a shared directory")
	}
	if cfg.TaskTimeout == 0 {
		cfg.TaskTimeout = DefaultTaskTimeout
	}
	if cfg.TaskTimeout < 0 {
		return nil, fmt.Errorf("cluster: negative task timeout")
	}
	return &Coordinator{cfg: cfg}, nil
}

// Serve starts accepting worker RPC connections on lis until Close. It
// returns the address workers should dial.
func (c *Coordinator) Serve(lis net.Listener) string {
	c.mu.Lock()
	c.lis = lis
	c.mu.Unlock()
	srv := rpc.NewServer()
	// Registration cannot fail: the rpc API is satisfied by construction.
	if err := srv.RegisterName(RPCServiceName, &coordinatorRPC{c: c}); err != nil {
		panic(fmt.Sprintf("cluster: register RPC service: %v", err))
	}
	c.serveWG.Add(1)
	go func() {
		defer c.serveWG.Done()
		for {
			conn, err := lis.Accept()
			if err != nil {
				return // listener closed
			}
			c.serveWG.Add(1)
			go func() {
				defer c.serveWG.Done()
				srv.ServeConn(conn)
			}()
		}
	}()
	return lis.Addr().String()
}

// Close stops the coordinator: running workers receive TaskExit on their
// next request, and the RPC listener is shut down.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	c.closed = true
	lis := c.lis
	c.mu.Unlock()
	if lis != nil {
		return lis.Close()
	}
	return nil
}

// RunJob executes one job over the connected workers, blocking until every
// task completes (or ctx is done). Jobs from concurrent callers run one at a
// time.
func (c *Coordinator) RunJob(ctx context.Context, spec JobSpec, input []mapreduce.KeyValue) (*mapreduce.Result, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	c.jobMu.Lock()
	defer c.jobMu.Unlock()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrCoordinatorClosed
	}
	c.seq++
	jobID := strconv.Itoa(c.seq)
	c.mu.Unlock()

	// Split input into map chunks and persist them.
	if spec.NumMapTasks > len(input) && len(input) > 0 {
		spec.NumMapTasks = len(input)
	}
	if len(input) == 0 {
		spec.NumMapTasks = 1
	}
	chunk := (len(input) + spec.NumMapTasks - 1) / spec.NumMapTasks
	if chunk == 0 {
		chunk = 1
	}
	for m := 0; m < spec.NumMapTasks; m++ {
		lo := m * chunk
		hi := lo + chunk
		if lo > len(input) {
			lo = len(input)
		}
		if hi > len(input) {
			hi = len(input)
		}
		if err := writeKVFile(inputFile(c.cfg.Dir, jobID, m), input[lo:hi]); err != nil {
			return nil, err
		}
	}

	job := &activeJob{
		id:          jobID,
		spec:        spec,
		mapTasks:    newTasks(spec.NumMapTasks),
		reduceTasks: newTasks(spec.NumReducers),
		mapsLeft:    spec.NumMapTasks,
		reducesLeft: spec.NumReducers,
		counters:    mapreduce.NewCounters(),
		done:        make(chan struct{}),
	}
	job.counters.Add(mapreduce.CounterMapIn, int64(len(input)))

	c.mu.Lock()
	c.job = job
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.job = nil
		c.mu.Unlock()
	}()

	select {
	case <-ctx.Done():
		return nil, fmt.Errorf("cluster: job %q: %w", spec.Name, ctx.Err())
	case <-job.done:
	}
	if job.failed != nil {
		return nil, fmt.Errorf("cluster: job %q: %w", spec.Name, job.failed)
	}

	// Collect reducer outputs.
	var out []mapreduce.KeyValue
	for r := 0; r < spec.NumReducers; r++ {
		kvs, err := readKVFile(outputFile(c.cfg.Dir, jobID, r))
		if err != nil {
			return nil, err
		}
		out = append(out, kvs...)
	}
	sortKVs(out)
	if err := removeJobFiles(c.cfg.Dir, jobID); err != nil {
		return nil, err
	}
	return &mapreduce.Result{Output: out, Counters: job.counters}, nil
}

func newTasks(n int) []taskInfo {
	ts := make([]taskInfo, n)
	for i := range ts {
		ts[i].state = taskIdle
	}
	return ts
}

// sortKVs applies the canonical mapreduce output ordering: by key, then
// value, so distributed results are byte-identical to the other executors.
func sortKVs(kvs []mapreduce.KeyValue) {
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].Key != kvs[j].Key {
			return kvs[i].Key < kvs[j].Key
		}
		return kvs[i].Value < kvs[j].Value
	})
}

// coordinatorRPC is the net/rpc receiver; kept separate so only the RPC
// surface is exported through the service.
type coordinatorRPC struct {
	c *Coordinator
}

// RequestTask hands the calling worker a task, telling it to wait when all
// remaining tasks are leased, and to exit when the coordinator is closed.
func (r *coordinatorRPC) RequestTask(args *TaskRequest, reply *TaskReply) error {
	c := r.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		reply.Kind = TaskExit
		return nil
	}
	job := c.job
	if job == nil {
		reply.Kind = TaskWait
		return nil
	}
	spec := job.spec
	fill := func(kind TaskKind, id int) {
		reply.Kind = kind
		reply.JobID = job.id
		reply.TaskID = id
		reply.MapName = spec.MapName
		reply.ReduceName = spec.ReduceName
		reply.CombineName = spec.CombineName
		reply.NumMapTasks = spec.NumMapTasks
		reply.NumReducers = spec.NumReducers
	}
	now := time.Now()
	if job.mapsLeft > 0 {
		if id, ok := claimTask(job.mapTasks, now, c.cfg.TaskTimeout, args.WorkerID); ok {
			fill(TaskMap, id)
			return nil
		}
		reply.Kind = TaskWait
		return nil
	}
	if job.reducesLeft > 0 {
		if id, ok := claimTask(job.reduceTasks, now, c.cfg.TaskTimeout, args.WorkerID); ok {
			fill(TaskReduce, id)
			return nil
		}
		reply.Kind = TaskWait
		return nil
	}
	reply.Kind = TaskWait
	return nil
}

// claimTask finds an idle or lease-expired task and assigns it.
func claimTask(tasks []taskInfo, now time.Time, timeout time.Duration, worker string) (int, bool) {
	for i := range tasks {
		t := &tasks[i]
		if t.state == taskIdle || (t.state == taskInProgress && now.Sub(t.started) > timeout) {
			t.state = taskInProgress
			t.started = now
			t.worker = worker
			return i, true
		}
	}
	return 0, false
}

// ReportTask records a worker's task completion. Reports for stale jobs or
// already-completed tasks are ignored (a re-executed task may finish twice;
// atomic file renames make that harmless).
func (r *coordinatorRPC) ReportTask(args *TaskReport, reply *TaskAck) error {
	c := r.c
	c.mu.Lock()
	defer c.mu.Unlock()
	job := c.job
	if job == nil || job.id != args.JobID {
		return nil
	}
	var tasks []taskInfo
	var left *int
	switch args.Kind {
	case TaskMap:
		tasks, left = job.mapTasks, &job.mapsLeft
	case TaskReduce:
		tasks, left = job.reduceTasks, &job.reducesLeft
	default:
		return fmt.Errorf("cluster: report for %v task", args.Kind)
	}
	if args.TaskID < 0 || args.TaskID >= len(tasks) {
		return fmt.Errorf("cluster: report for unknown task %d", args.TaskID)
	}
	if args.Err != "" {
		// Execution failure (not a crash): fail the whole job; losing a
		// worker is recoverable, a deterministic function error is not.
		if job.failed == nil {
			job.failed = fmt.Errorf("%w: %s", ErrTaskFailed, args.Err)
			close(job.done)
		}
		return nil
	}
	t := &tasks[args.TaskID]
	if t.state == taskCompleted {
		return nil
	}
	t.state = taskCompleted
	*left--
	for name, v := range args.Counters {
		job.counters.Add(name, v)
	}
	if job.mapsLeft == 0 && job.reducesLeft == 0 && job.failed == nil {
		close(job.done)
	}
	return nil
}

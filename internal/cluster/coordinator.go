package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/rpc"
	"sort"
	"strconv"
	"sync"
	"time"

	"evmatching/internal/mapreduce"
)

// Coordinator defaults.
const (
	// DefaultTaskTimeout is the lease after which an unreported task is
	// assumed lost and re-queued for another worker.
	DefaultTaskTimeout = 10 * time.Second
	// DefaultRetryBase is the first re-execution backoff step.
	DefaultRetryBase = 25 * time.Millisecond
	// DefaultRetryMax caps the exponential re-execution backoff.
	DefaultRetryMax = 2 * time.Second
	// RPCServiceName is the registered net/rpc service name.
	RPCServiceName = "EVCoordinator"
)

// ErrCoordinatorClosed reports job submission after Close.
var ErrCoordinatorClosed = errors.New("cluster: coordinator closed")

// ErrTaskFailed reports a deterministic task execution failure: a worker ran
// the job's function and it returned an error. It is distinct from a lost
// worker (which the lease-based retry path re-executes silently); callers
// distinguish the two with errors.Is(err, ErrTaskFailed).
var ErrTaskFailed = errors.New("cluster: task failed")

// ErrNoWorkers reports that the worker pool collapsed: no live worker was
// heard from for the configured PoolTimeout while tasks remained. The
// Executor uses it to degrade gracefully to an in-process engine.
var ErrNoWorkers = errors.New("cluster: worker pool collapsed")

// JobSpec names the functions and shape of one distributed job. The
// functions must be registered under these names in every worker's Registry.
type JobSpec struct {
	Name        string
	MapName     string
	ReduceName  string // empty selects the identity reduce
	CombineName string // optional
	NumMapTasks int    // input chunks; 0 defaults to 2× reducers
	NumReducers int    // 0 defaults to 4
}

// normalize fills defaults and validates.
func (s *JobSpec) normalize() error {
	if s.MapName == "" {
		return fmt.Errorf("cluster: job %q has no map function", s.Name)
	}
	if s.ReduceName == "" {
		s.ReduceName = IdentityReduceName
	}
	if s.NumReducers <= 0 {
		s.NumReducers = 4
	}
	if s.NumMapTasks <= 0 {
		s.NumMapTasks = 2 * s.NumReducers
	}
	return nil
}

// CoordinatorConfig parameterizes a coordinator.
type CoordinatorConfig struct {
	// Dir is the shared directory for input, intermediate, and output
	// files; every worker must see the same directory.
	Dir string
	// TaskTimeout is the task lease; 0 means DefaultTaskTimeout.
	TaskTimeout time.Duration
	// HeartbeatTimeout declares a worker dead when nothing has been heard
	// from it for this long; the dead worker's leases are evicted
	// immediately instead of waiting out the full task lease. 0 means
	// 2×TaskTimeout.
	HeartbeatTimeout time.Duration
	// RetryBase and RetryMax bound the capped exponential backoff (with
	// seeded jitter) before a recovered task becomes claimable again.
	// 0 means DefaultRetryBase / DefaultRetryMax.
	RetryBase time.Duration
	RetryMax  time.Duration
	// SpeculativeAfter re-dispatches an in-progress task to a second worker
	// once it has run at least this long and the requester has nothing else
	// to do — the straggler mitigation of speculative execution. 0 means
	// TaskTimeout/2; negative disables speculation.
	SpeculativeAfter time.Duration
	// PoolTimeout fails the running job with ErrNoWorkers when no live
	// worker has been heard from for this long while tasks remain. 0
	// disables collapse detection (the job waits indefinitely for workers).
	PoolTimeout time.Duration
	// Seed drives the retry-backoff jitter; every delay is a pure function
	// of (Seed, job, task, attempt), so recovery timing is reproducible.
	Seed int64
}

type taskState int

const (
	taskIdle taskState = iota + 1
	taskInProgress
	taskCompleted
)

type taskInfo struct {
	state       taskState
	started     time.Time
	worker      string // current primary assignee
	specWorker  string // speculative assignee, "" when none
	specStarted time.Time
	attempts    int       // primary claims so far
	eligible    time.Time // backoff gate: earliest next claim
}

type activeJob struct {
	id          string
	spec        JobSpec
	submitted   time.Time
	mapTasks    []taskInfo
	reduceTasks []taskInfo
	mapsLeft    int
	reducesLeft int
	counters    *mapreduce.Counters
	done        chan struct{}
	failed      error
}

// Coordinator schedules distributed jobs and serves the worker RPC API.
// Create with NewCoordinator, expose with Serve, submit with RunJob.
type Coordinator struct {
	cfg CoordinatorConfig

	mu        sync.Mutex
	job       *activeJob
	seq       int
	closed    bool
	workers   map[string]time.Time // live workers by last contact
	lastAlive time.Time            // most recent contact from any worker
	stats     statsCounters

	jobMu sync.Mutex // serializes RunJob callers

	lis     net.Listener
	serveWG sync.WaitGroup
}

// NewCoordinator creates a coordinator writing job files under cfg.Dir.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("cluster: coordinator needs a shared directory")
	}
	if cfg.TaskTimeout == 0 {
		cfg.TaskTimeout = DefaultTaskTimeout
	}
	if cfg.TaskTimeout < 0 {
		return nil, fmt.Errorf("cluster: negative task timeout")
	}
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = 2 * cfg.TaskTimeout
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = DefaultRetryBase
	}
	if cfg.RetryMax == 0 {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.SpeculativeAfter == 0 {
		cfg.SpeculativeAfter = cfg.TaskTimeout / 2
	}
	if cfg.HeartbeatTimeout < 0 || cfg.RetryBase < 0 || cfg.RetryMax < 0 || cfg.PoolTimeout < 0 {
		return nil, fmt.Errorf("cluster: negative coordinator timeout")
	}
	return &Coordinator{cfg: cfg, workers: make(map[string]time.Time)}, nil
}

// Serve starts accepting worker RPC connections on lis until Close. It
// returns the address workers should dial.
func (c *Coordinator) Serve(lis net.Listener) string {
	c.mu.Lock()
	c.lis = lis
	c.mu.Unlock()
	srv := rpc.NewServer()
	// Registration cannot fail: the rpc API is satisfied by construction.
	if err := srv.RegisterName(RPCServiceName, &coordinatorRPC{c: c}); err != nil {
		panic(fmt.Sprintf("cluster: register RPC service: %v", err))
	}
	c.serveWG.Add(1)
	go func() {
		defer c.serveWG.Done()
		for {
			conn, err := lis.Accept()
			if err != nil {
				return // listener closed
			}
			c.serveWG.Add(1)
			go func() {
				defer c.serveWG.Done()
				srv.ServeConn(conn)
			}()
		}
	}()
	return lis.Addr().String()
}

// Close stops the coordinator: running workers receive TaskExit on their
// next request, and the RPC listener is shut down.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	c.closed = true
	lis := c.lis
	c.mu.Unlock()
	if lis != nil {
		return lis.Close()
	}
	return nil
}

// RunJob executes one job over the connected workers, blocking until every
// task completes (or ctx is done). Jobs from concurrent callers run one at a
// time.
func (c *Coordinator) RunJob(ctx context.Context, spec JobSpec, input []mapreduce.KeyValue) (*mapreduce.Result, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	c.jobMu.Lock()
	defer c.jobMu.Unlock()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrCoordinatorClosed
	}
	c.seq++
	jobID := strconv.Itoa(c.seq)
	c.mu.Unlock()

	// Split input into map chunks and persist them.
	if spec.NumMapTasks > len(input) && len(input) > 0 {
		spec.NumMapTasks = len(input)
	}
	if len(input) == 0 {
		spec.NumMapTasks = 1
	}
	chunk := (len(input) + spec.NumMapTasks - 1) / spec.NumMapTasks
	if chunk == 0 {
		chunk = 1
	}
	// Whatever happens below, never leave partial job files behind.
	defer func() { _ = removeJobFiles(c.cfg.Dir, jobID) }()
	for m := 0; m < spec.NumMapTasks; m++ {
		lo := m * chunk
		hi := lo + chunk
		if lo > len(input) {
			lo = len(input)
		}
		if hi > len(input) {
			hi = len(input)
		}
		if err := writeKVFile(inputFile(c.cfg.Dir, jobID, m), input[lo:hi]); err != nil {
			return nil, err
		}
	}

	job := &activeJob{
		id:          jobID,
		spec:        spec,
		submitted:   time.Now(),
		mapTasks:    newTasks(spec.NumMapTasks),
		reduceTasks: newTasks(spec.NumReducers),
		mapsLeft:    spec.NumMapTasks,
		reducesLeft: spec.NumReducers,
		counters:    mapreduce.NewCounters(),
		done:        make(chan struct{}),
	}
	job.counters.Add(mapreduce.CounterMapIn, int64(len(input)))

	c.mu.Lock()
	c.job = job
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.job = nil
		c.mu.Unlock()
	}()

	// Wait for completion, sweeping periodically so dead workers are
	// detected (and pool collapse declared) even when no worker polls.
	tick := c.cfg.TaskTimeout / 8
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
wait:
	for {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("cluster: job %q: %w", spec.Name, ctx.Err())
		case <-job.done:
			break wait
		case <-ticker.C:
			c.mu.Lock()
			c.sweepLocked(time.Now())
			c.mu.Unlock()
		}
	}
	if job.failed != nil {
		return nil, fmt.Errorf("cluster: job %q: %w", spec.Name, job.failed)
	}

	// Collect reducer outputs.
	var out []mapreduce.KeyValue
	for r := 0; r < spec.NumReducers; r++ {
		kvs, err := readKVFile(outputFile(c.cfg.Dir, jobID, r))
		if err != nil {
			return nil, err
		}
		out = append(out, kvs...)
	}
	sortKVs(out)
	if err := removeJobFiles(c.cfg.Dir, jobID); err != nil {
		return nil, err
	}
	return &mapreduce.Result{Output: out, Counters: job.counters}, nil
}

func newTasks(n int) []taskInfo {
	ts := make([]taskInfo, n)
	for i := range ts {
		ts[i].state = taskIdle
	}
	return ts
}

// sortKVs applies the canonical mapreduce output ordering: by key, then
// value, so distributed results are byte-identical to the other executors.
func sortKVs(kvs []mapreduce.KeyValue) {
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].Key != kvs[j].Key {
			return kvs[i].Key < kvs[j].Key
		}
		return kvs[i].Value < kvs[j].Value
	})
}

// touchLocked records a sign of life from a worker.
func (c *Coordinator) touchLocked(worker string, now time.Time) {
	if worker == "" {
		return
	}
	c.workers[worker] = now
	if now.After(c.lastAlive) {
		c.lastAlive = now
	}
}

// sweepLocked is the failure detector: it prunes workers silent past the
// heartbeat timeout, evicts their leases (and any lease past the task
// timeout), promotes surviving speculative attempts, and declares pool
// collapse when configured. Called with c.mu held.
func (c *Coordinator) sweepLocked(now time.Time) {
	dead := make(map[string]bool)
	for w, last := range c.workers {
		if now.Sub(last) > c.cfg.HeartbeatTimeout {
			dead[w] = true
		}
	}
	for w := range dead {
		delete(c.workers, w)
		c.stats.deadWorkers.Add(1)
	}
	job := c.job
	if job == nil {
		return
	}
	if job.failed == nil {
		c.sweepTasksLocked(job, job.mapTasks, dead, now)
		c.sweepTasksLocked(job, job.reduceTasks, dead, now)
	}
	// Pool collapse: no live workers and nothing heard for PoolTimeout.
	if c.cfg.PoolTimeout > 0 && job.failed == nil && len(c.workers) == 0 {
		ref := c.lastAlive
		if job.submitted.After(ref) {
			ref = job.submitted
		}
		if now.Sub(ref) > c.cfg.PoolTimeout {
			job.failed = fmt.Errorf("%w: silent for %v", ErrNoWorkers, now.Sub(ref).Round(time.Millisecond))
			close(job.done)
		}
	}
}

// sweepTasksLocked evicts lost leases in one task list.
func (c *Coordinator) sweepTasksLocked(job *activeJob, tasks []taskInfo, dead map[string]bool, now time.Time) {
	for i := range tasks {
		t := &tasks[i]
		if t.state != taskInProgress {
			continue
		}
		specAlive := t.specWorker != "" && !dead[t.specWorker] && now.Sub(t.specStarted) <= c.cfg.TaskTimeout
		if dead[t.worker] || now.Sub(t.started) > c.cfg.TaskTimeout {
			c.stats.evictions.Add(1)
			if specAlive {
				// The speculative copy is still healthy: promote it to
				// primary instead of requeueing.
				t.worker, t.started = t.specWorker, t.specStarted
				t.specWorker = ""
				continue
			}
			c.requeueLocked(job, t, i, now)
			continue
		}
		if t.specWorker != "" && !specAlive {
			t.specWorker = "" // drop a dead straggler copy, keep the primary
		}
	}
}

// requeueLocked returns an in-progress task to the idle pool behind a capped
// exponential backoff with seeded jitter.
func (c *Coordinator) requeueLocked(job *activeJob, t *taskInfo, taskID int, now time.Time) {
	t.state = taskIdle
	t.worker, t.specWorker = "", ""
	d := c.cfg.RetryBase
	for i := 1; i < t.attempts && d < c.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > c.cfg.RetryMax {
		d = c.cfg.RetryMax
	}
	// Jitter in [0.5d, 1.5d), a pure function of (seed, job, task, attempt).
	frac := seededFrac(c.cfg.Seed, job.id, taskID, t.attempts)
	d = d/2 + time.Duration(frac*float64(d))
	t.eligible = now.Add(d)
}

// seededFrac hashes its inputs into a uniform [0, 1) fraction.
func seededFrac(seed int64, jobID string, taskID, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d", seed, jobID, taskID, attempt)
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}

// claimTaskLocked assigns an idle, backoff-eligible task to worker.
func (c *Coordinator) claimTaskLocked(tasks []taskInfo, now time.Time, worker string) (int, bool) {
	for i := range tasks {
		t := &tasks[i]
		if t.state == taskIdle && !t.eligible.After(now) {
			t.state = taskInProgress
			t.started = now
			t.worker = worker
			t.specWorker = ""
			t.attempts++
			if t.attempts > 1 {
				c.stats.retries.Add(1)
			}
			return i, true
		}
	}
	return 0, false
}

// claimSpeculativeLocked hands the oldest qualifying straggler task to a
// second worker. The requester must differ from the primary assignee, and
// the task must have run at least SpeculativeAfter.
func (c *Coordinator) claimSpeculativeLocked(tasks []taskInfo, now time.Time, worker string) (int, bool) {
	if c.cfg.SpeculativeAfter < 0 {
		return 0, false
	}
	best := -1
	for i := range tasks {
		t := &tasks[i]
		if t.state != taskInProgress || t.specWorker != "" || t.worker == worker {
			continue
		}
		if now.Sub(t.started) < c.cfg.SpeculativeAfter {
			continue
		}
		if best < 0 || t.started.Before(tasks[best].started) {
			best = i
		}
	}
	if best < 0 {
		return 0, false
	}
	t := &tasks[best]
	t.specWorker = worker
	t.specStarted = now
	c.stats.speculativeDispatches.Add(1)
	return best, true
}

// coordinatorRPC is the net/rpc receiver; kept separate so only the RPC
// surface is exported through the service.
type coordinatorRPC struct {
	c *Coordinator
}

// RequestTask hands the calling worker a task, telling it to wait when all
// remaining tasks are leased, and to exit when the coordinator is closed.
func (r *coordinatorRPC) RequestTask(args *TaskRequest, reply *TaskReply) error {
	c := r.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		reply.Kind = TaskExit
		return nil
	}
	now := time.Now()
	c.touchLocked(args.WorkerID, now)
	c.sweepLocked(now)
	job := c.job
	if job == nil || job.failed != nil {
		reply.Kind = TaskWait
		return nil
	}
	spec := job.spec
	fill := func(kind TaskKind, id int) {
		reply.Kind = kind
		reply.JobID = job.id
		reply.TaskID = id
		reply.MapName = spec.MapName
		reply.ReduceName = spec.ReduceName
		reply.CombineName = spec.CombineName
		reply.NumMapTasks = spec.NumMapTasks
		reply.NumReducers = spec.NumReducers
	}
	if job.mapsLeft > 0 {
		if id, ok := c.claimTaskLocked(job.mapTasks, now, args.WorkerID); ok {
			fill(TaskMap, id)
			return nil
		}
		if id, ok := c.claimSpeculativeLocked(job.mapTasks, now, args.WorkerID); ok {
			fill(TaskMap, id)
			return nil
		}
		reply.Kind = TaskWait
		return nil
	}
	if job.reducesLeft > 0 {
		if id, ok := c.claimTaskLocked(job.reduceTasks, now, args.WorkerID); ok {
			fill(TaskReduce, id)
			return nil
		}
		if id, ok := c.claimSpeculativeLocked(job.reduceTasks, now, args.WorkerID); ok {
			fill(TaskReduce, id)
			return nil
		}
		reply.Kind = TaskWait
		return nil
	}
	reply.Kind = TaskWait
	return nil
}

// Heartbeat records worker liveness; a worker that stops heartbeating past
// HeartbeatTimeout has its leases evicted without waiting out the lease.
func (r *coordinatorRPC) Heartbeat(args *HeartbeatPing, reply *HeartbeatAck) error {
	c := r.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(args.WorkerID, time.Now())
	reply.Closed = c.closed
	return nil
}

// ReportTask records a worker's task completion. Reports for stale jobs,
// unknown tasks, or already-completed tasks are absorbed without failing the
// coordinator (a re-executed, duplicated, or reordered report may arrive any
// time; atomic file renames make the data side harmless).
func (r *coordinatorRPC) ReportTask(args *TaskReport, reply *TaskAck) error {
	c := r.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(args.WorkerID, time.Now())
	job := c.job
	if job == nil || job.id != args.JobID {
		c.stats.staleReports.Add(1)
		return nil
	}
	var tasks []taskInfo
	var left *int
	switch args.Kind {
	case TaskMap:
		tasks, left = job.mapTasks, &job.mapsLeft
	case TaskReduce:
		tasks, left = job.reduceTasks, &job.reducesLeft
	default:
		c.stats.staleReports.Add(1)
		return fmt.Errorf("cluster: report for %v task", args.Kind)
	}
	if args.TaskID < 0 || args.TaskID >= len(tasks) {
		c.stats.staleReports.Add(1)
		return fmt.Errorf("cluster: report for unknown task %d", args.TaskID)
	}
	if args.Err != "" {
		// Execution failure (not a crash): fail the whole job; losing a
		// worker is recoverable, a deterministic function error is not.
		if job.failed == nil {
			job.failed = fmt.Errorf("%w: %s", ErrTaskFailed, args.Err)
			close(job.done)
		}
		return nil
	}
	t := &tasks[args.TaskID]
	if t.state == taskCompleted {
		c.stats.staleReports.Add(1)
		return nil
	}
	if t.state == taskInProgress && t.specWorker != "" &&
		args.WorkerID == t.specWorker && args.WorkerID != t.worker {
		c.stats.speculativeWins.Add(1)
	}
	t.state = taskCompleted
	*left--
	for name, v := range args.Counters {
		job.counters.Add(name, v)
	}
	if job.mapsLeft == 0 && job.reducesLeft == 0 && job.failed == nil {
		close(job.done)
	}
	return nil
}

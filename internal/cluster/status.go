package cluster

import (
	"sort"
	"time"
)

// JobStatus is a point-in-time snapshot of the active job's progress.
type JobStatus struct {
	// JobID is empty when no job is active.
	JobID string
	Name  string
	// Task progress counts.
	MapsTotal      int
	MapsDone       int
	MapsRunning    int
	ReducesTotal   int
	ReducesDone    int
	ReducesRunning int
	// Workers lists the distinct workers holding leases right now.
	Workers []string
	// Failed carries the job's terminal error message, if any.
	Failed string
}

// Done reports whether all tasks completed.
func (s JobStatus) Done() bool {
	return s.JobID != "" && s.MapsDone == s.MapsTotal && s.ReducesDone == s.ReducesTotal
}

// Status snapshots the coordinator's current job progress; the zero
// JobStatus means the coordinator is idle. Operators poll it while a
// long-running EV job is on the cluster.
func (c *Coordinator) Status() JobStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	job := c.job
	if job == nil {
		return JobStatus{}
	}
	st := JobStatus{
		JobID:        job.id,
		Name:         job.spec.Name,
		MapsTotal:    len(job.mapTasks),
		ReducesTotal: len(job.reduceTasks),
	}
	if job.failed != nil {
		st.Failed = job.failed.Error()
	}
	workers := make(map[string]bool)
	now := time.Now()
	count := func(tasks []taskInfo, done, running *int) {
		for i := range tasks {
			t := &tasks[i]
			switch t.state {
			case taskCompleted:
				*done++
			case taskInProgress:
				if now.Sub(t.started) <= c.cfg.TaskTimeout {
					*running++
					workers[t.worker] = true
				}
				if t.specWorker != "" && now.Sub(t.specStarted) <= c.cfg.TaskTimeout {
					workers[t.specWorker] = true
				}
			}
		}
	}
	count(job.mapTasks, &st.MapsDone, &st.MapsRunning)
	count(job.reduceTasks, &st.ReducesDone, &st.ReducesRunning)
	for w := range workers {
		st.Workers = append(st.Workers, w)
	}
	sort.Strings(st.Workers)
	return st
}

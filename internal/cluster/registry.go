// Package cluster is a distributed MapReduce runtime over net/rpc: a
// coordinator schedules map and reduce tasks, workers pull tasks via RPC and
// exchange intermediate data through a shared directory, and lease timeouts
// re-execute tasks lost to crashed or hung workers. It is the multi-machine
// counterpart of mapreduce.ParallelExecutor and the stand-in for the paper's
// 14-node Spark/Hadoop cluster.
package cluster

import (
	"fmt"
	"sync"

	"evmatching/internal/mapreduce"
)

// Registry resolves function names carried in job specs to map/reduce
// implementations. Workers cannot receive closures over RPC, so every
// function a job references must be registered under the same name on both
// the coordinator's submitter and every worker.
type Registry struct {
	mu      sync.RWMutex
	maps    map[string]mapreduce.MapFunc
	reduces map[string]mapreduce.ReduceFunc
}

// IdentityReduceName is pre-registered in every registry; it passes shuffled
// pairs through unchanged, turning a job with no reducer into a map+shuffle
// job (the same behaviour as a nil Reduce in package mapreduce).
const IdentityReduceName = "__identity"

// NewRegistry creates a registry with the identity reduce pre-registered.
func NewRegistry() *Registry {
	r := &Registry{
		maps:    make(map[string]mapreduce.MapFunc),
		reduces: make(map[string]mapreduce.ReduceFunc),
	}
	r.reduces[IdentityReduceName] = func(key string, values []string, emit mapreduce.Emitter) error {
		for _, v := range values {
			emit(mapreduce.KeyValue{Key: key, Value: v})
		}
		return nil
	}
	return r
}

// RegisterMap registers a map function under name.
func (r *Registry) RegisterMap(name string, fn mapreduce.MapFunc) error {
	if name == "" || fn == nil {
		return fmt.Errorf("cluster: invalid map registration %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.maps[name]; dup {
		return fmt.Errorf("cluster: map %q already registered", name)
	}
	r.maps[name] = fn
	return nil
}

// RegisterReduce registers a reduce function under name.
func (r *Registry) RegisterReduce(name string, fn mapreduce.ReduceFunc) error {
	if name == "" || fn == nil {
		return fmt.Errorf("cluster: invalid reduce registration %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.reduces[name]; dup {
		return fmt.Errorf("cluster: reduce %q already registered", name)
	}
	r.reduces[name] = fn
	return nil
}

// MapFunc resolves a registered map function.
func (r *Registry) MapFunc(name string) (mapreduce.MapFunc, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.maps[name]
	if !ok {
		return nil, fmt.Errorf("cluster: map %q not registered", name)
	}
	return fn, nil
}

// ReduceFunc resolves a registered reduce function.
func (r *Registry) ReduceFunc(name string) (mapreduce.ReduceFunc, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.reduces[name]
	if !ok {
		return nil, fmt.Errorf("cluster: reduce %q not registered", name)
	}
	return fn, nil
}

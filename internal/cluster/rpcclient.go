package cluster

import (
	"fmt"
	"net"
	"net/rpc"
	"time"
)

// Deadline and reconnect knobs for the net/rpc client seam shared by the
// cluster workers and internal/shardrpc's supervisor.
const (
	// DefaultRPCCallTimeout bounds how long a single conn read or write may
	// block. net/rpc parks one reader goroutine in Read for the connection's
	// whole life, so this deadline is re-armed per I/O operation — it bounds
	// peer silence, not call latency. It must comfortably exceed the
	// caller's heartbeat interval: only steady heartbeat traffic keeps the
	// idle reader fed, which is why DialRPC is reserved for connections that
	// carry one.
	DefaultRPCCallTimeout = 10 * time.Second
	// DefaultDialBackoffBase is the first retry delay when the peer is not
	// accepting yet (a worker that has not bound its listener, say).
	DefaultDialBackoffBase = 50 * time.Millisecond
	// DefaultDialBackoffMax caps the exponential dial backoff.
	DefaultDialBackoffMax = 2 * time.Second
)

// deadlineConn re-arms a read/write deadline before every conn operation,
// so a half-dead TCP peer — SYN-acked but never draining, or gone without a
// FIN — surfaces as an I/O timeout instead of blocking a Call forever.
type deadlineConn struct {
	net.Conn
	timeout time.Duration
}

func (c deadlineConn) Read(p []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c deadlineConn) Write(p []byte) (int, error) {
	if err := c.Conn.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// DialRPC dials a net/rpc peer with per-operation read/write deadlines and
// a capped exponential backoff across dial attempts. A timeout poisons the
// rpc.Client (every pending and future Call errors), which is the intended
// failure mode: the caller treats the peer as dead and redials or
// redispatches rather than blocking a close round indefinitely.
//
// The deadline applies to connection-level I/O, so it only suits
// connections with steady traffic (heartbeats): an idle-but-healthy
// connection would trip the read deadline once timeout passes without a
// single byte from the peer.
func DialRPC(addr string, timeout time.Duration, attempts int) (*rpc.Client, error) {
	if timeout <= 0 {
		timeout = DefaultRPCCallTimeout
	}
	if attempts < 1 {
		attempts = 1
	}
	backoff := DefaultDialBackoffBase
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > DefaultDialBackoffMax {
				backoff = DefaultDialBackoffMax
			}
		}
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			lastErr = err
			continue
		}
		return rpc.NewClient(deadlineConn{Conn: conn, timeout: timeout}), nil
	}
	return nil, fmt.Errorf("cluster: dial rpc %s after %d attempts: %w", addr, attempts, lastErr)
}

package cluster

import "sync/atomic"

// Stats counts the coordinator's fault-recovery actions since creation. The
// counters accumulate across jobs; Coordinator.Stats returns a copy.
type Stats struct {
	// Retries counts task claims beyond a task's first attempt — work
	// re-executed after a crash, stall, or lost report.
	Retries int64
	// Evictions counts in-progress leases revoked because the assigned
	// worker went silent past the heartbeat timeout or overran its lease.
	Evictions int64
	// SpeculativeDispatches counts straggler tasks handed to a second worker
	// while the first was still running.
	SpeculativeDispatches int64
	// SpeculativeWins counts tasks whose speculative copy reported first.
	SpeculativeWins int64
	// StaleReports counts reports for already-completed tasks or finished
	// jobs — the duplicate/reordered deliveries the coordinator must absorb.
	StaleReports int64
	// DeadWorkers counts workers declared dead by heartbeat timeout.
	DeadWorkers int64
}

// Add returns the field-wise sum of two stat snapshots, for aggregating
// across schedules or coordinators.
func (s Stats) Add(o Stats) Stats {
	s.Retries += o.Retries
	s.Evictions += o.Evictions
	s.SpeculativeDispatches += o.SpeculativeDispatches
	s.SpeculativeWins += o.SpeculativeWins
	s.StaleReports += o.StaleReports
	s.DeadWorkers += o.DeadWorkers
	return s
}

// statsCounters is the coordinator's live counter set. The fields are typed
// atomics, so plain access is a compile error rather than a latent data race
// (the shape the atomicmix analyzer pushes mixed-access fields toward), and
// Stats can snapshot without contending on c.mu while a sweep or report
// holds it. Increments happen under c.mu today; the atomics make the
// counters safe to bump from any future path that doesn't.
type statsCounters struct {
	retries               atomic.Int64
	evictions             atomic.Int64
	speculativeDispatches atomic.Int64
	speculativeWins       atomic.Int64
	staleReports          atomic.Int64
	deadWorkers           atomic.Int64
}

// Stats snapshots the coordinator's fault-recovery counters. Lock-free: each
// field is loaded atomically, so a snapshot taken mid-sweep is a valid (if
// momentarily torn across fields) set of monotone counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Retries:               c.stats.retries.Load(),
		Evictions:             c.stats.evictions.Load(),
		SpeculativeDispatches: c.stats.speculativeDispatches.Load(),
		SpeculativeWins:       c.stats.speculativeWins.Load(),
		StaleReports:          c.stats.staleReports.Load(),
		DeadWorkers:           c.stats.deadWorkers.Load(),
	}
}

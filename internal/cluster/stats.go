package cluster

// Stats counts the coordinator's fault-recovery actions since creation. The
// counters accumulate across jobs; Coordinator.Stats returns a copy.
type Stats struct {
	// Retries counts task claims beyond a task's first attempt — work
	// re-executed after a crash, stall, or lost report.
	Retries int64
	// Evictions counts in-progress leases revoked because the assigned
	// worker went silent past the heartbeat timeout or overran its lease.
	Evictions int64
	// SpeculativeDispatches counts straggler tasks handed to a second worker
	// while the first was still running.
	SpeculativeDispatches int64
	// SpeculativeWins counts tasks whose speculative copy reported first.
	SpeculativeWins int64
	// StaleReports counts reports for already-completed tasks or finished
	// jobs — the duplicate/reordered deliveries the coordinator must absorb.
	StaleReports int64
	// DeadWorkers counts workers declared dead by heartbeat timeout.
	DeadWorkers int64
}

// Add returns the field-wise sum of two stat snapshots, for aggregating
// across schedules or coordinators.
func (s Stats) Add(o Stats) Stats {
	s.Retries += o.Retries
	s.Evictions += o.Evictions
	s.SpeculativeDispatches += o.SpeculativeDispatches
	s.SpeculativeWins += o.SpeculativeWins
	s.StaleReports += o.StaleReports
	s.DeadWorkers += o.DeadWorkers
	return s
}

// Stats snapshots the coordinator's fault-recovery counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

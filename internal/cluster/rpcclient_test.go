package cluster

import (
	"errors"
	"net"
	"net/rpc"
	"sync"
	"testing"
	"time"
)

// pingService is a minimal rpc receiver for the client-seam tests.
type pingService struct{}

type PingArgs struct{ N int }

type PingReply struct{ N int }

func (pingService) Ping(args *PingArgs, reply *PingReply) error {
	reply.N = args.N + 1
	return nil
}

func servePing(t *testing.T) (addr string, stop func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("PingService", pingService{}); err != nil {
		t.Fatalf("register: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				srv.ServeConn(conn)
			}()
		}
	}()
	return lis.Addr().String(), func() {
		lis.Close()
		wg.Wait()
	}
}

// TestDialRPCRoundTrip proves the deadline-armed client is a drop-in for a
// live peer: calls complete normally well within the deadline.
func TestDialRPCRoundTrip(t *testing.T) {
	addr, stop := servePing(t)
	defer stop()
	client, err := DialRPC(addr, time.Second, 1)
	if err != nil {
		t.Fatalf("DialRPC: %v", err)
	}
	defer client.Close()
	var reply PingReply
	if err := client.Call("PingService.Ping", &PingArgs{N: 41}, &reply); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if reply.N != 42 {
		t.Fatalf("reply = %d, want 42", reply.N)
	}
}

// TestDialRPCDeadline proves the satellite fix: a peer that accepts the
// connection but never answers must fail the call within the deadline
// instead of blocking it forever (the old rpc.Dial behavior).
func TestDialRPCDeadline(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer lis.Close()
	var conns []net.Conn
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn) // hold open, never respond
			mu.Unlock()
		}
	}()
	defer func() {
		lis.Close()
		<-done
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
	}()

	const timeout = 100 * time.Millisecond
	client, err := DialRPC(lis.Addr().String(), timeout, 1)
	if err != nil {
		t.Fatalf("DialRPC: %v", err)
	}
	defer client.Close()
	start := time.Now()
	err = client.Call("PingService.Ping", &PingArgs{N: 1}, &PingReply{})
	if err == nil {
		t.Fatal("Call against a mute peer succeeded; want timeout error")
	}
	if elapsed := time.Since(start); elapsed > 20*timeout {
		t.Fatalf("Call took %v against a mute peer; the deadline should have fired near %v", elapsed, timeout)
	}
}

// TestDialRPCBackoffReconnect proves the capped-backoff retry: the listener
// only appears after the first attempts have failed, and DialRPC connects
// once it does.
func TestDialRPCBackoffReconnect(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := lis.Addr().String()
	lis.Close() // free the port: the first dial attempts must fail

	type dialed struct {
		client *rpc.Client
		err    error
	}
	res := make(chan dialed, 1)
	go func() {
		c, err := DialRPC(addr, time.Second, 20)
		res <- dialed{c, err}
	}()

	// Let at least one attempt fail before the peer comes up.
	time.Sleep(2 * DefaultDialBackoffBase)
	addr2, stop := servePingAt(t, addr)
	if addr2 == "" {
		t.Skip("could not rebind the probe port; the OS reassigned it")
	}
	defer stop()

	d := <-res
	if d.err != nil {
		t.Fatalf("DialRPC never connected after the peer came up: %v", d.err)
	}
	defer d.client.Close()
	var reply PingReply
	if err := d.client.Call("PingService.Ping", &PingArgs{N: 1}, &reply); err != nil {
		t.Fatalf("Call after reconnect: %v", err)
	}
}

// servePingAt is servePing pinned to a specific address; it reports failure
// by returning an empty addr (the port may have been reassigned between the
// probe bind and this one).
func servePingAt(t *testing.T, addr string) (string, func()) {
	t.Helper()
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("PingService", pingService{}); err != nil {
		t.Fatalf("register: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				srv.ServeConn(conn)
			}()
		}
	}()
	return lis.Addr().String(), func() {
		lis.Close()
		wg.Wait()
	}
}

// TestDialRPCExhaustsAttempts proves the failure shape: no peer, bounded
// attempts, a wrapped dial error.
func TestDialRPCExhaustsAttempts(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := lis.Addr().String()
	lis.Close()
	if _, err := DialRPC(addr, 50*time.Millisecond, 2); err == nil {
		t.Fatal("DialRPC with no peer succeeded; want error")
	} else if errors.Is(err, nil) {
		t.Fatal("unreachable")
	}
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"evmatching/internal/mapreduce"
	"evmatching/internal/mrtest"
)

// startExecutorCluster boots a coordinator plus n in-process workers sharing
// one registry, returning the adapted Executor.
func startExecutorCluster(t *testing.T, nWorkers int) *Executor {
	t.Helper()
	mrtest.CheckGoroutines(t)
	dir := t.TempDir()
	coord, err := NewCoordinator(CoordinatorConfig{Dir: dir, TaskTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := coord.Serve(lis)
	reg := NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < nWorkers; i++ {
		w, err := NewWorker(addr, WorkerConfig{
			ID:       fmt.Sprintf("exec-w%d", i),
			Dir:      dir,
			Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		_ = coord.Close()
		cancel()
		wg.Wait()
	})
	exec, err := NewExecutor(coord, reg)
	if err != nil {
		t.Fatal(err)
	}
	return exec
}

func executorWordCountJob(lines []string) *mapreduce.Job {
	input := make([]mapreduce.KeyValue, len(lines))
	for i, l := range lines {
		input[i] = mapreduce.KeyValue{Key: strconv.Itoa(i), Value: l}
	}
	return &mapreduce.Job{
		Name:  "exec-wc",
		Input: input,
		Map: func(in mapreduce.KeyValue, emit mapreduce.Emitter) error {
			for _, w := range strings.Fields(in.Value) {
				emit(mapreduce.KeyValue{Key: w, Value: "1"})
			}
			return nil
		},
		Reduce: func(key string, values []string, emit mapreduce.Emitter) error {
			emit(mapreduce.KeyValue{Key: key, Value: strconv.Itoa(len(values))})
			return nil
		},
		NumReducers: 3,
	}
}

func TestExecutorMatchesSerialSemantics(t *testing.T) {
	lines := []string{"a b a", "c b", "a c c"}
	serial, err := mapreduce.SerialExecutor{}.Run(context.Background(), executorWordCountJob(lines))
	if err != nil {
		t.Fatal(err)
	}
	exec := startExecutorCluster(t, 3)
	dist, err := exec.Run(context.Background(), executorWordCountJob(lines))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist.Output, serial.Output) {
		t.Errorf("distributed executor output differs:\n%v\n%v", dist.Output, serial.Output)
	}
}

func TestExecutorSequentialJobsGetFreshNames(t *testing.T) {
	exec := startExecutorCluster(t, 2)
	for i := 0; i < 3; i++ {
		res, err := exec.Run(context.Background(), executorWordCountJob([]string{"x x y"}))
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		want := []mapreduce.KeyValue{{Key: "x", Value: "2"}, {Key: "y", Value: "1"}}
		if !reflect.DeepEqual(res.Output, want) {
			t.Fatalf("job %d output = %v", i, res.Output)
		}
	}
}

func TestExecutorMapOnlyJob(t *testing.T) {
	exec := startExecutorCluster(t, 2)
	job := executorWordCountJob([]string{"b a"})
	job.Reduce = nil
	res, err := exec.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	want := []mapreduce.KeyValue{{Key: "a", Value: "1"}, {Key: "b", Value: "1"}}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("Output = %v, want %v", res.Output, want)
	}
}

func TestExecutorValidation(t *testing.T) {
	if _, err := NewExecutor(nil, nil); err == nil {
		t.Error("want error for nil inputs")
	}
	exec := startExecutorCluster(t, 1)
	if _, err := exec.Run(context.Background(), &mapreduce.Job{}); err == nil {
		t.Error("want error for invalid job")
	}
}

func TestClusterExecutorConformance(t *testing.T) {
	exec := startExecutorCluster(t, 3)
	mrtest.Conformance(t, exec)
}

func TestExecutorFallbackOnPoolCollapse(t *testing.T) {
	// A coordinator with collapse detection and zero workers: the executor
	// must degrade to the in-process fallback and still produce the serial
	// answer.
	mrtest.CheckGoroutines(t)
	coord, err := NewCoordinator(CoordinatorConfig{
		Dir:         t.TempDir(),
		TaskTimeout: 200 * time.Millisecond,
		PoolTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(lis)
	defer coord.Close()
	exec, err := NewExecutor(coord, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	exec.Fallback = mapreduce.SerialExecutor{}
	lines := []string{"f g f", "g"}
	serial, err := mapreduce.SerialExecutor{}.Run(context.Background(), executorWordCountJob(lines))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(context.Background(), executorWordCountJob(lines))
	if err != nil {
		t.Fatalf("fallback should have absorbed the collapse: %v", err)
	}
	if !reflect.DeepEqual(res.Output, serial.Output) {
		t.Errorf("fallback output differs:\n%v\n%v", res.Output, serial.Output)
	}
	if got := exec.Fallbacks(); got != 1 {
		t.Errorf("Fallbacks() = %d, want 1", got)
	}
}

func TestExecutorNoFallbackSurfacesErrNoWorkers(t *testing.T) {
	mrtest.CheckGoroutines(t)
	coord, err := NewCoordinator(CoordinatorConfig{
		Dir:         t.TempDir(),
		TaskTimeout: 200 * time.Millisecond,
		PoolTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(lis)
	defer coord.Close()
	exec, err := NewExecutor(coord, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Run(context.Background(), executorWordCountJob([]string{"a"})); !errors.Is(err, ErrNoWorkers) {
		t.Errorf("err = %v, want ErrNoWorkers", err)
	}
	if got := exec.Fallbacks(); got != 0 {
		t.Errorf("Fallbacks() = %d, want 0", got)
	}
}

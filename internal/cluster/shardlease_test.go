package cluster

import (
	"errors"
	"testing"
	"time"
)

func TestShardLeaseLifecycle(t *testing.T) {
	base := time.UnixMilli(0)
	ttl := 100 * time.Millisecond
	tbl, err := NewShardLeaseTable(3, ttl, base)
	if err != nil {
		t.Fatalf("NewShardLeaseTable: %v", err)
	}
	if got := tbl.Expired(base.Add(ttl)); len(got) != 0 {
		t.Fatalf("expired at exactly TTL: %v", got)
	}
	// Shard 1 renews; 0 and 2 stay silent past the TTL.
	if !tbl.Renew(1, 1, base.Add(90*time.Millisecond)) {
		t.Fatal("fresh renewal rejected")
	}
	got := tbl.Expired(base.Add(101 * time.Millisecond))
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Expired = %v, want [0 2]", got)
	}

	// Redispatch shard 0: the new incarnation renews, the old one is stale.
	inc, err := tbl.Redispatch(0, base.Add(101*time.Millisecond))
	if err != nil {
		t.Fatalf("Redispatch: %v", err)
	}
	if inc != 2 {
		t.Fatalf("new incarnation %d, want 2", inc)
	}
	if tbl.Renew(0, 1, base.Add(102*time.Millisecond)) {
		t.Fatal("stale incarnation renewed after redispatch")
	}
	if !tbl.Renew(0, 2, base.Add(102*time.Millisecond)) {
		t.Fatal("replacement incarnation rejected")
	}
	if got := tbl.Incarnation(0); got != 2 {
		t.Fatalf("Incarnation(0) = %d, want 2", got)
	}

	st := tbl.Stats()
	if st.Shards != 3 || st.Redispatches != 1 || st.StaleRenewals != 1 || st.Renewals != 2 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestShardLeaseRenewNeverRewindsClock(t *testing.T) {
	base := time.UnixMilli(0)
	tbl, err := NewShardLeaseTable(1, 50*time.Millisecond, base)
	if err != nil {
		t.Fatalf("NewShardLeaseTable: %v", err)
	}
	if !tbl.Renew(0, 1, base.Add(40*time.Millisecond)) {
		t.Fatal("renewal rejected")
	}
	// An out-of-order renewal carrying an older timestamp must not rewind the
	// lease: liveness information is monotone.
	if !tbl.Renew(0, 1, base.Add(10*time.Millisecond)) {
		t.Fatal("out-of-order renewal rejected")
	}
	if got := tbl.Expired(base.Add(85 * time.Millisecond)); len(got) != 0 {
		t.Fatalf("lease rewound by an out-of-order renewal: %v", got)
	}
}

func TestShardLeaseValidation(t *testing.T) {
	base := time.UnixMilli(0)
	if _, err := NewShardLeaseTable(0, time.Second, base); !errors.Is(err, ErrBadShardLease) {
		t.Errorf("0 shards: err = %v", err)
	}
	if _, err := NewShardLeaseTable(2, 0, base); !errors.Is(err, ErrBadShardLease) {
		t.Errorf("zero ttl: err = %v", err)
	}
	tbl, err := NewShardLeaseTable(2, time.Second, base)
	if err != nil {
		t.Fatalf("NewShardLeaseTable: %v", err)
	}
	if _, err := tbl.Redispatch(5, base); !errors.Is(err, ErrBadShardLease) {
		t.Errorf("out-of-range redispatch: err = %v", err)
	}
	if tbl.Renew(-1, 1, base) {
		t.Error("out-of-range renewal accepted")
	}
	if got := tbl.Incarnation(7); got != 0 {
		t.Errorf("Incarnation(7) = %d, want 0", got)
	}
}

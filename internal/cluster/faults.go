package cluster

import "time"

// TaskFault describes injected misbehaviour for one task execution. The zero
// value means the worker executes and reports faithfully. Faults model the
// failure classes that dominate real clusters (see package chaos for the
// seeded implementation): silent machine loss, stragglers, and a lossy or
// duplicating result path.
type TaskFault struct {
	// CrashBeforeExecute makes the worker vanish after claiming the task but
	// before doing any work — the lease or heartbeat timeout must recover it.
	CrashBeforeExecute bool
	// CrashBeforeReport makes the worker vanish after writing its output
	// files but before reporting — the re-executed attempt overwrites them
	// harmlessly via atomic renames.
	CrashBeforeReport bool
	// StallBeforeReport delays the report by this duration, modelling a
	// straggling machine; speculative re-dispatch should mask it.
	StallBeforeReport time.Duration
	// DropReport executes the task but never reports it (a lost result
	// message); the worker stays alive and keeps pulling tasks.
	DropReport bool
	// DuplicateReport delivers the report twice; combined with stalls on
	// other workers this also reorders deliveries.
	DuplicateReport bool
}

// FaultPlan decides the faults a worker injects. Implementations must be
// safe for concurrent use and should derive every decision deterministically
// from the identifying arguments (not from call order), so a fault schedule
// is reproducible from its seed regardless of goroutine interleaving.
type FaultPlan interface {
	// TaskFault returns the fault for one task execution attempt.
	TaskFault(workerID, jobID string, kind TaskKind, taskID int) TaskFault
	// DropHeartbeat reports whether the worker's seq-th heartbeat is lost.
	DropHeartbeat(workerID string, seq int) bool
}

package cluster

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"evmatching/internal/mapreduce"
)

// FuzzTaskResultDecode throws arbitrary wire-level task reports — wrong job
// IDs, out-of-range task IDs, hostile kinds, duplicated and reordered
// deliveries — plus arbitrary KV-file bytes at the coordinator, asserting it
// never panics and its task accounting never goes negative. This is the
// safety net behind the chaos harness: injected duplicate/reordered results
// must be absorbable no matter what they contain.
func FuzzTaskResultDecode(f *testing.F) {
	f.Add([]byte(`[{"Key":"a","Value":"1"}]`), "1", int(TaskMap), 0, "", "w0", int64(1))
	f.Add([]byte(`not json`), "2", int(TaskReduce), 99, "boom", "w1", int64(-7))
	f.Add([]byte(`[]`), "", int(TaskWait), -1, "", "", int64(0))
	f.Add([]byte{0xff, 0xfe}, "1", 255, 1<<30, "x", "w0", int64(1<<40))

	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, raw []byte, jobID string, kind int, taskID int, errStr string, worker string, counter int64) {
		// Wire decode: arbitrary bytes in a shared-directory KV file must
		// error or parse, never panic. The file name is fixed: job IDs are
		// coordinator-generated, only the bytes are attacker-shaped.
		path := filepath.Join(dir, "fuzz-input.json")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _ = readKVFile(path)

		// Coordinator accounting: build an active job directly (no RPC) and
		// fire hostile reports at it, twice each to model duplicates, then a
		// request, then the reports again to model reordering.
		c, err := NewCoordinator(CoordinatorConfig{Dir: dir, TaskTimeout: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		job := &activeJob{
			id:          "1",
			spec:        JobSpec{Name: "fuzz", MapName: "m", ReduceName: "r", NumMapTasks: 2, NumReducers: 2},
			submitted:   time.Now(),
			mapTasks:    newTasks(2),
			reduceTasks: newTasks(2),
			mapsLeft:    2,
			reducesLeft: 2,
			counters:    mapreduce.NewCounters(),
			done:        make(chan struct{}),
		}
		c.job = job
		rpc := &coordinatorRPC{c: c}

		report := &TaskReport{
			WorkerID: worker,
			JobID:    jobID,
			Kind:     TaskKind(kind),
			TaskID:   taskID,
			Err:      errStr,
			Counters: map[string]int64{"fuzz.counter": counter},
		}
		for i := 0; i < 2; i++ {
			_ = rpc.ReportTask(report, &TaskAck{})
		}
		var reply TaskReply
		_ = rpc.RequestTask(&TaskRequest{WorkerID: worker}, &reply)
		_ = rpc.ReportTask(report, &TaskAck{})
		_ = rpc.Heartbeat(&HeartbeatPing{WorkerID: worker, Seq: taskID}, &HeartbeatAck{})

		c.mu.Lock()
		if job.mapsLeft < 0 || job.reducesLeft < 0 {
			t.Errorf("task accounting went negative: maps=%d reduces=%d", job.mapsLeft, job.reducesLeft)
		}
		for i := range job.mapTasks {
			if job.mapTasks[i].state == taskCompleted && job.mapsLeft > len(job.mapTasks) {
				t.Errorf("inconsistent map accounting")
			}
		}
		c.mu.Unlock()
	})
}

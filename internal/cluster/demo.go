package cluster

import (
	"strconv"
	"strings"

	"evmatching/internal/mapreduce"
)

// Demo function names shared by the mrcoord and mrworker commands. Both
// processes must register the same functions: RPC ships only names, the
// registry supplies the code.
const (
	DemoWordCountMap    = "demo.wordcount.map"
	DemoWordCountReduce = "demo.wordcount.reduce"
)

// RegisterWordCount registers the demo word-count functions, the smallest
// end-to-end exercise of the distributed runtime.
func RegisterWordCount(reg *Registry) error {
	if err := reg.RegisterMap(DemoWordCountMap, func(in mapreduce.KeyValue, emit mapreduce.Emitter) error {
		for _, w := range strings.Fields(in.Value) {
			emit(mapreduce.KeyValue{Key: strings.ToLower(w), Value: "1"})
		}
		return nil
	}); err != nil {
		return err
	}
	return reg.RegisterReduce(DemoWordCountReduce, func(key string, values []string, emit mapreduce.Emitter) error {
		sum := 0
		for _, v := range values {
			n, err := strconv.Atoi(v)
			if err != nil {
				return err
			}
			sum += n
		}
		emit(mapreduce.KeyValue{Key: key, Value: strconv.Itoa(sum)})
		return nil
	})
}

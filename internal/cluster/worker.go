package cluster

import (
	"context"
	"fmt"
	"net/rpc"
	"sync"
	"time"

	"evmatching/internal/mapreduce"
)

// DefaultHeartbeatInterval is the gap between worker liveness pings.
const DefaultHeartbeatInterval = 250 * time.Millisecond

// WorkerConfig parameterizes a worker process.
type WorkerConfig struct {
	// ID labels the worker in coordinator bookkeeping.
	ID string
	// Dir is the shared data directory (must match the coordinator's).
	Dir string
	// Registry resolves the function names in task assignments.
	Registry *Registry
	// PollInterval is the sleep between requests when told to wait; 0 means
	// 20ms.
	PollInterval time.Duration
	// HeartbeatInterval is the gap between liveness pings to the
	// coordinator; 0 means DefaultHeartbeatInterval, negative disables
	// heartbeats (liveness is then inferred from task traffic alone).
	HeartbeatInterval time.Duration
	// CrashAfter, when positive, makes the worker silently stop before
	// reporting its Nth task — the failure-injection hook used to test
	// lease-based task re-execution.
	CrashAfter int
	// Faults, when non-nil, injects per-task and per-heartbeat misbehaviour
	// (see FaultPlan); package chaos provides the seeded implementation.
	Faults FaultPlan
}

// Worker pulls tasks from a coordinator and executes them.
type Worker struct {
	cfg    WorkerConfig
	client *rpc.Client
	tasks  int // tasks started, for crash injection
}

// NewWorker connects a worker to the coordinator at addr.
func NewWorker(addr string, cfg WorkerConfig) (*Worker, error) {
	if cfg.Dir == "" || cfg.Registry == nil {
		return nil, fmt.Errorf("cluster: worker needs Dir and Registry")
	}
	if cfg.ID == "" {
		cfg.ID = fmt.Sprintf("worker-%d", time.Now().UnixNano())
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 20 * time.Millisecond
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	// With heartbeats on, the connection carries steady traffic, so the
	// deadline-armed client is safe and a half-dead coordinator surfaces as
	// a timeout instead of a worker hung forever in a Call. With heartbeats
	// disabled there is no traffic to keep the idle rpc reader fed, so the
	// plain client (no read deadline) is the correct choice.
	var client *rpc.Client
	var err error
	if cfg.HeartbeatInterval > 0 {
		client, err = DialRPC(addr, DefaultRPCCallTimeout, 1)
	} else {
		client, err = rpc.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: dial coordinator %s: %w", addr, err)
	}
	return &Worker{cfg: cfg, client: client}, nil
}

// Run processes tasks until the coordinator says exit, the context is done,
// or an injected crash point is reached (in which case it returns nil,
// simulating a silent machine loss). A background loop heartbeats the
// coordinator so dead workers are detected faster than the task lease.
func (w *Worker) Run(ctx context.Context) error {
	defer w.client.Close() // deferred first: runs last, after the heartbeat loop exits
	if w.cfg.HeartbeatInterval > 0 {
		stop := make(chan struct{})
		var hb sync.WaitGroup
		defer hb.Wait()
		defer close(stop)
		hb.Add(1)
		go func() {
			defer hb.Done()
			w.heartbeatLoop(stop)
		}()
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var reply TaskReply
		if err := w.client.Call(RPCServiceName+".RequestTask", &TaskRequest{WorkerID: w.cfg.ID}, &reply); err != nil {
			return fmt.Errorf("cluster: worker %s request: %w", w.cfg.ID, err)
		}
		switch reply.Kind {
		case TaskExit:
			return nil
		case TaskWait:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.cfg.PollInterval):
			}
			continue
		case TaskMap, TaskReduce:
			w.tasks++
			if w.cfg.CrashAfter > 0 && w.tasks >= w.cfg.CrashAfter {
				return nil // vanish without reporting: the lease recovers it
			}
			var fault TaskFault
			if w.cfg.Faults != nil {
				fault = w.cfg.Faults.TaskFault(w.cfg.ID, reply.JobID, reply.Kind, reply.TaskID)
			}
			if fault.CrashBeforeExecute {
				return nil // claimed but never worked: eviction recovers it
			}
			report := w.execute(&reply)
			if fault.CrashBeforeReport {
				return nil // output files written; re-execution is idempotent
			}
			if fault.StallBeforeReport > 0 {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(fault.StallBeforeReport):
				}
			}
			if fault.DropReport {
				continue // result lost in transit; stay alive and keep pulling
			}
			deliveries := 1
			if fault.DuplicateReport {
				deliveries = 2
			}
			for i := 0; i < deliveries; i++ {
				var ack TaskAck
				if err := w.client.Call(RPCServiceName+".ReportTask", report, &ack); err != nil {
					return fmt.Errorf("cluster: worker %s report: %w", w.cfg.ID, err)
				}
			}
		default:
			return fmt.Errorf("cluster: worker %s: unknown task kind %v", w.cfg.ID, reply.Kind)
		}
	}
}

// heartbeatLoop pings the coordinator until stop closes or the coordinator
// reports itself closed. RPC errors end the loop quietly: the main task loop
// surfaces connection failures on its own.
func (w *Worker) heartbeatLoop(stop <-chan struct{}) {
	ticker := time.NewTicker(w.cfg.HeartbeatInterval)
	defer ticker.Stop()
	seq := 0
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		seq++
		if w.cfg.Faults != nil && w.cfg.Faults.DropHeartbeat(w.cfg.ID, seq) {
			continue
		}
		var ack HeartbeatAck
		if err := w.client.Call(RPCServiceName+".Heartbeat", &HeartbeatPing{WorkerID: w.cfg.ID, Seq: seq}, &ack); err != nil {
			return
		}
		if ack.Closed {
			return
		}
	}
}

// execute runs one task and builds its report; execution errors travel back
// in the report rather than crashing the worker.
func (w *Worker) execute(t *TaskReply) *TaskReport {
	report := &TaskReport{
		WorkerID: w.cfg.ID,
		JobID:    t.JobID,
		Kind:     t.Kind,
		TaskID:   t.TaskID,
		Counters: make(map[string]int64),
	}
	var err error
	switch t.Kind {
	case TaskMap:
		err = w.runMap(t, report)
	case TaskReduce:
		err = w.runReduce(t, report)
	}
	if err != nil {
		report.Err = err.Error()
	}
	return report
}

// runMap executes map task t.TaskID: read the input chunk, apply the map
// function, partition (optionally combining), and write one intermediate
// file per reducer.
func (w *Worker) runMap(t *TaskReply, report *TaskReport) error {
	mapFn, err := w.cfg.Registry.MapFunc(t.MapName)
	if err != nil {
		return err
	}
	input, err := readKVFile(inputFile(w.cfg.Dir, t.JobID, t.TaskID))
	if err != nil {
		return err
	}
	buckets := make([][]mapreduce.KeyValue, t.NumReducers)
	emit := func(kv mapreduce.KeyValue) {
		r := mapreduce.Partition(kv.Key, t.NumReducers)
		buckets[r] = append(buckets[r], kv)
	}
	for i, in := range input {
		if err := mapFn(in, emit); err != nil {
			return fmt.Errorf("map record %d: %w", i, err)
		}
	}
	var emitted int64
	for _, b := range buckets {
		emitted += int64(len(b))
	}
	report.Counters[mapreduce.CounterMapOut] = emitted

	if t.CombineName != "" {
		combine, err := w.cfg.Registry.ReduceFunc(t.CombineName)
		if err != nil {
			return err
		}
		var combined int64
		for r := range buckets {
			sortKVs(buckets[r])
			var out []mapreduce.KeyValue
			cemit := func(kv mapreduce.KeyValue) { out = append(out, kv) }
			for _, g := range groupSorted(buckets[r]) {
				if err := combine(g.key, g.values, cemit); err != nil {
					return fmt.Errorf("combine key %q: %w", g.key, err)
				}
			}
			buckets[r] = out
			combined += int64(len(out))
		}
		report.Counters[mapreduce.CounterCombineOut] = combined
	}
	for r := range buckets {
		if err := writeKVFile(intermediateFile(w.cfg.Dir, t.JobID, t.TaskID, r), buckets[r]); err != nil {
			return err
		}
	}
	return nil
}

// runReduce executes reduce task t.TaskID: gather this partition's
// intermediate files from every map task, sort, group, reduce, and write the
// output file.
func (w *Worker) runReduce(t *TaskReply, report *TaskReport) error {
	reduceFn, err := w.cfg.Registry.ReduceFunc(t.ReduceName)
	if err != nil {
		return err
	}
	var all []mapreduce.KeyValue
	for m := 0; m < t.NumMapTasks; m++ {
		kvs, err := readKVFile(intermediateFile(w.cfg.Dir, t.JobID, m, t.TaskID))
		if err != nil {
			return err
		}
		all = append(all, kvs...)
	}
	sortKVs(all)
	var out []mapreduce.KeyValue
	emit := func(kv mapreduce.KeyValue) { out = append(out, kv) }
	groups := groupSorted(all)
	for _, g := range groups {
		if err := reduceFn(g.key, g.values, emit); err != nil {
			return fmt.Errorf("reduce key %q: %w", g.key, err)
		}
	}
	report.Counters[mapreduce.CounterReduceKeys] = int64(len(groups))
	report.Counters[mapreduce.CounterReduceOut] = int64(len(out))
	return writeKVFile(outputFile(w.cfg.Dir, t.JobID, t.TaskID), out)
}

type kvGroup struct {
	key    string
	values []string
}

// groupSorted groups consecutive equal keys of a sorted pair slice.
func groupSorted(kvs []mapreduce.KeyValue) []kvGroup {
	var out []kvGroup
	for i := 0; i < len(kvs); {
		j := i
		for j < len(kvs) && kvs[j].Key == kvs[i].Key {
			j++
		}
		vals := make([]string, 0, j-i)
		for _, kv := range kvs[i:j] {
			vals = append(vals, kv.Value)
		}
		out = append(out, kvGroup{key: kvs[i].Key, values: vals})
		i = j
	}
	return out
}

package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBadShardLease reports an invalid shard-lease configuration or argument.
var ErrBadShardLease = errors.New("cluster: bad shard lease")

// ShardLeaseTable tracks liveness leases for a fixed set of region shards —
// the in-process analogue of the coordinator's worker heartbeat map
// (sweepLocked). Each shard holds a lease it must renew within the TTL; a
// lease that lapses marks the shard dead, and Redispatch hands its identity
// to a replacement under a bumped incarnation so stale renewals from the old
// owner are rejected.
//
// The table is a pure data structure: it never reads the wall clock. Every
// method takes the caller's notion of "now", so deterministic tests drive it
// from an injected clock while production passes real time.
type ShardLeaseTable struct {
	mu           sync.Mutex
	ttl          time.Duration
	shards       []shardLease
	redispatches int64
	renewals     int64
	staleRenews  int64
}

// shardLease is one shard's lease state.
type shardLease struct {
	incarnation int
	lastRenew   time.Time
}

// ShardLeaseStats is a snapshot of the table's counters.
type ShardLeaseStats struct {
	// Shards is the fixed shard count.
	Shards int
	// Redispatches counts lease takeovers: a lapsed shard handed to a
	// replacement incarnation.
	Redispatches int64
	// Renewals counts accepted lease renewals.
	Renewals int64
	// StaleRenewals counts renewals rejected because a newer incarnation
	// already owns the shard.
	StaleRenewals int64
}

// NewShardLeaseTable creates a table of n shard leases, all granted to
// incarnation 1 at time now with the given TTL.
func NewShardLeaseTable(n int, ttl time.Duration, now time.Time) (*ShardLeaseTable, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: %d shards", ErrBadShardLease, n)
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("%w: ttl %v", ErrBadShardLease, ttl)
	}
	t := &ShardLeaseTable{ttl: ttl, shards: make([]shardLease, n)}
	for i := range t.shards {
		t.shards[i] = shardLease{incarnation: 1, lastRenew: now}
	}
	return t, nil
}

// Renew records a sign of life from the given incarnation of a shard. It
// returns false when the incarnation is stale — a replacement already owns
// the shard — which tells the caller to stand down, mirroring how the
// coordinator ignores reports from evicted workers.
func (t *ShardLeaseTable) Renew(shard, incarnation int, now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if shard < 0 || shard >= len(t.shards) {
		return false
	}
	s := &t.shards[shard]
	if incarnation != s.incarnation {
		t.staleRenews++
		return false
	}
	if now.After(s.lastRenew) {
		s.lastRenew = now
	}
	t.renewals++
	return true
}

// Expired returns the shards whose lease lapsed more than the TTL before
// now, in ascending shard order — the failure-detector sweep.
func (t *ShardLeaseTable) Expired(now time.Time) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var dead []int
	for i := range t.shards {
		if now.Sub(t.shards[i].lastRenew) > t.ttl {
			dead = append(dead, i)
		}
	}
	return dead
}

// Redispatch hands the shard to a replacement: the incarnation is bumped so
// renewals from the previous owner are rejected, and the fresh lease starts
// at now. It returns the new incarnation the replacement must renew under.
func (t *ShardLeaseTable) Redispatch(shard int, now time.Time) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if shard < 0 || shard >= len(t.shards) {
		return 0, fmt.Errorf("%w: shard %d of %d", ErrBadShardLease, shard, len(t.shards))
	}
	s := &t.shards[shard]
	s.incarnation++
	s.lastRenew = now
	t.redispatches++
	return s.incarnation, nil
}

// Incarnation returns the current lease-holding incarnation of a shard.
func (t *ShardLeaseTable) Incarnation(shard int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if shard < 0 || shard >= len(t.shards) {
		return 0
	}
	return t.shards[shard].incarnation
}

// Stats snapshots the table's counters.
func (t *ShardLeaseTable) Stats() ShardLeaseStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return ShardLeaseStats{
		Shards:        len(t.shards),
		Redispatches:  t.redispatches,
		Renewals:      t.renewals,
		StaleRenewals: t.staleRenews,
	}
}

package cluster

// TaskKind discriminates the work a coordinator hands to a worker.
type TaskKind int

// Task kinds. TaskWait tells an idle worker to poll again shortly; TaskExit
// tells it to shut down.
const (
	TaskMap TaskKind = iota + 1
	TaskReduce
	TaskWait
	TaskExit
)

// String implements fmt.Stringer.
func (k TaskKind) String() string {
	switch k {
	case TaskMap:
		return "map"
	case TaskReduce:
		return "reduce"
	case TaskWait:
		return "wait"
	case TaskExit:
		return "exit"
	default:
		return "invalid"
	}
}

// TaskRequest is a worker's RPC request for work.
type TaskRequest struct {
	WorkerID string
}

// TaskReply describes the assigned task.
type TaskReply struct {
	Kind        TaskKind
	JobID       string
	TaskID      int
	MapName     string
	ReduceName  string
	CombineName string
	NumMapTasks int
	NumReducers int
}

// TaskReport is a worker's RPC report of a finished task.
type TaskReport struct {
	WorkerID string
	JobID    string
	Kind     TaskKind
	TaskID   int
	// Err carries a worker-side execution failure; empty means success.
	Err string
	// Counters carries per-task statistics to aggregate job-wide.
	Counters map[string]int64
}

// TaskAck is the (empty) response to a report.
type TaskAck struct{}

// HeartbeatPing is a worker's periodic liveness signal. Seq increments per
// worker so a fault plan can drop deterministic bursts of heartbeats.
type HeartbeatPing struct {
	WorkerID string
	Seq      int
}

// HeartbeatAck tells the worker whether the coordinator has shut down.
type HeartbeatAck struct {
	Closed bool
}

package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"evmatching/internal/mapreduce"
)

// Intermediate and final data move between coordinator and workers through
// JSON files in a shared directory — the stand-in for the distributed file
// system underneath the paper's MapReduce deployment. Files are written to a
// temporary name and renamed into place so that a crashed worker never
// leaves a partial file a reducer could read.

// inputFile names the input chunk of map task m for a job.
func inputFile(dir, jobID string, m int) string {
	return filepath.Join(dir, fmt.Sprintf("job-%s-input-%05d.json", jobID, m))
}

// intermediateFile names the shuffle file from map task m to reduce task r.
func intermediateFile(dir, jobID string, m, r int) string {
	return filepath.Join(dir, fmt.Sprintf("job-%s-mr-%05d-%05d.json", jobID, m, r))
}

// outputFile names the output of reduce task r.
func outputFile(dir, jobID string, r int) string {
	return filepath.Join(dir, fmt.Sprintf("job-%s-out-%05d.json", jobID, r))
}

// writeKVFile atomically writes pairs to path.
func writeKVFile(path string, kvs []mapreduce.KeyValue) error {
	data, err := json.Marshal(kvs)
	if err != nil {
		return fmt.Errorf("cluster: marshal %s: %w", path, err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("cluster: write %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("cluster: rename %s: %w", tmp, err)
	}
	return nil
}

// readKVFile reads pairs from path. A missing file reads as empty: a map
// task emits nothing for reduce partitions it had no keys for.
func readKVFile(path string) ([]mapreduce.KeyValue, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: read %s: %w", path, err)
	}
	var kvs []mapreduce.KeyValue
	if err := json.Unmarshal(data, &kvs); err != nil {
		return nil, fmt.Errorf("cluster: unmarshal %s: %w", path, err)
	}
	return kvs, nil
}

// removeJobFiles deletes every file belonging to a job.
func removeJobFiles(dir, jobID string) error {
	matches, err := filepath.Glob(filepath.Join(dir, "job-"+jobID+"-*"))
	if err != nil {
		return fmt.Errorf("cluster: glob job files: %w", err)
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("cluster: remove %s: %w", m, err)
		}
	}
	return nil
}

package cluster

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestJobFailureIsErrTaskFailed: a deterministic function error surfacing
// through the retry path must stay classifiable with errors.Is, so callers
// can tell "the job's code is broken" from transient infrastructure loss.
func TestJobFailureIsErrTaskFailed(t *testing.T) {
	tc := startCluster(t, 2, time.Minute, nil)
	spec := wcSpec()
	spec.ReduceName = "boom.reduce"
	_, err := tc.coord.RunJob(context.Background(), spec, wordLines([]string{"a b", "c"}))
	if err == nil {
		t.Fatal("want error from failing reduce")
	}
	if !errors.Is(err, ErrTaskFailed) {
		t.Errorf("errors.Is(err, ErrTaskFailed) = false for %v", err)
	}
	if errors.Is(err, ErrCoordinatorClosed) || errors.Is(err, context.Canceled) {
		t.Errorf("error misclassified: %v", err)
	}
}

// TestRunJobAfterCloseIsErrCoordinatorClosed: submission after Close must be
// detectable without string matching.
func TestRunJobAfterCloseIsErrCoordinatorClosed(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = coord.RunJob(context.Background(), wcSpec(), nil)
	if !errors.Is(err, ErrCoordinatorClosed) {
		t.Errorf("errors.Is(err, ErrCoordinatorClosed) = false for %v", err)
	}
}

// TestRunJobCancellationIsContextError: cancellation must propagate through
// the coordinator's wrapping so callers can errors.Is it back out.
func TestRunJobCancellationIsContextError(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // no workers connected: the job can only end by cancellation
	_, err = coord.RunJob(ctx, wcSpec(), wordLines([]string{"a"}))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
}

// TestPoolCollapseIsErrNoWorkers: worker-pool collapse must be classifiable
// so the executor's graceful-degradation path (and operators) can tell it
// apart from broken job code.
func TestPoolCollapseIsErrNoWorkers(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{
		Dir:         t.TempDir(),
		TaskTimeout: 200 * time.Millisecond,
		PoolTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	_, err = coord.RunJob(context.Background(), wcSpec(), wordLines([]string{"a"}))
	if !errors.Is(err, ErrNoWorkers) {
		t.Errorf("errors.Is(err, ErrNoWorkers) = false for %v", err)
	}
	if errors.Is(err, ErrTaskFailed) || errors.Is(err, ErrCoordinatorClosed) {
		t.Errorf("error misclassified: %v", err)
	}
}

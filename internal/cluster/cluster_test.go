package cluster

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"evmatching/internal/mapreduce"
)

// newTestRegistry registers word-count functions.
func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	if err := reg.RegisterMap("wc.map", func(in mapreduce.KeyValue, emit mapreduce.Emitter) error {
		for _, w := range strings.Fields(in.Value) {
			emit(mapreduce.KeyValue{Key: w, Value: "1"})
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sum := func(key string, values []string, emit mapreduce.Emitter) error {
		total := 0
		for _, v := range values {
			n, err := strconv.Atoi(v)
			if err != nil {
				return err
			}
			total += n
		}
		emit(mapreduce.KeyValue{Key: key, Value: strconv.Itoa(total)})
		return nil
	}
	if err := reg.RegisterReduce("wc.reduce", sum); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterReduce("wc.combine", sum); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterReduce("boom.reduce", func(string, []string, mapreduce.Emitter) error {
		return fmt.Errorf("deterministic failure")
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// testCluster spins up a coordinator and n workers in-process over real TCP.
type testCluster struct {
	coord   *Coordinator
	addr    string
	workers sync.WaitGroup
	cancel  context.CancelFunc
}

func startCluster(t *testing.T, nWorkers int, timeout time.Duration, crashAfter map[int]int) *testCluster {
	t.Helper()
	dir := t.TempDir()
	coord, err := NewCoordinator(CoordinatorConfig{Dir: dir, TaskTimeout: timeout})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := coord.Serve(lis)
	ctx, cancel := context.WithCancel(context.Background())
	tc := &testCluster{coord: coord, addr: addr, cancel: cancel}
	reg := newTestRegistry(t)
	for i := 0; i < nWorkers; i++ {
		cfg := WorkerConfig{
			ID:       fmt.Sprintf("w%d", i),
			Dir:      dir,
			Registry: reg,
		}
		if crashAfter != nil {
			cfg.CrashAfter = crashAfter[i]
		}
		w, err := NewWorker(addr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tc.workers.Add(1)
		go func() {
			defer tc.workers.Done()
			// Workers exit via TaskExit after Close, via crash injection,
			// or via context cancellation at test teardown.
			_ = w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		_ = coord.Close()
		cancel()
		tc.workers.Wait()
	})
	return tc
}

func wordLines(lines []string) []mapreduce.KeyValue {
	input := make([]mapreduce.KeyValue, len(lines))
	for i, l := range lines {
		input[i] = mapreduce.KeyValue{Key: strconv.Itoa(i), Value: l}
	}
	return input
}

func wcSpec() JobSpec {
	return JobSpec{
		Name:        "wordcount",
		MapName:     "wc.map",
		ReduceName:  "wc.reduce",
		NumMapTasks: 6,
		NumReducers: 3,
	}
}

func TestDistributedWordCount(t *testing.T) {
	tc := startCluster(t, 3, time.Minute, nil)
	lines := []string{"a b a", "b c", "a", "c c c", "d a b"}
	res, err := tc.coord.RunJob(context.Background(), wcSpec(), wordLines(lines))
	if err != nil {
		t.Fatal(err)
	}
	want := []mapreduce.KeyValue{
		{Key: "a", Value: "4"}, {Key: "b", Value: "3"},
		{Key: "c", Value: "4"}, {Key: "d", Value: "1"},
	}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("Output = %v, want %v", res.Output, want)
	}
	if res.Counters.Get(mapreduce.CounterMapIn) != int64(len(lines)) {
		t.Errorf("map.in = %d", res.Counters.Get(mapreduce.CounterMapIn))
	}
}

func TestDistributedMatchesSerialAndParallel(t *testing.T) {
	lines := make([]string, 50)
	for i := range lines {
		lines[i] = fmt.Sprintf("w%d w%d w%d", i%7, (i*3)%7, (i*5)%7)
	}
	job := &mapreduce.Job{
		Name:  "wc",
		Input: wordLines(lines),
		Map: func(in mapreduce.KeyValue, emit mapreduce.Emitter) error {
			for _, w := range strings.Fields(in.Value) {
				emit(mapreduce.KeyValue{Key: w, Value: "1"})
			}
			return nil
		},
		Reduce: func(key string, values []string, emit mapreduce.Emitter) error {
			emit(mapreduce.KeyValue{Key: key, Value: strconv.Itoa(len(values))})
			return nil
		},
	}
	serial, err := mapreduce.SerialExecutor{}.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	tc := startCluster(t, 4, time.Minute, nil)
	dist, err := tc.coord.RunJob(context.Background(), wcSpec(), wordLines(lines))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist.Output, serial.Output) {
		t.Errorf("distributed output differs from serial:\n%v\n%v", dist.Output, serial.Output)
	}
}

func TestDistributedWithCombiner(t *testing.T) {
	tc := startCluster(t, 2, time.Minute, nil)
	spec := wcSpec()
	spec.CombineName = "wc.combine"
	res, err := tc.coord.RunJob(context.Background(), spec, wordLines([]string{"x x x y", "y x"}))
	if err != nil {
		t.Fatal(err)
	}
	want := []mapreduce.KeyValue{{Key: "x", Value: "4"}, {Key: "y", Value: "2"}}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("Output = %v, want %v", res.Output, want)
	}
	if res.Counters.Get(mapreduce.CounterCombineOut) == 0 {
		t.Error("combiner never ran")
	}
}

func TestWorkerCrashRecovery(t *testing.T) {
	// Worker 0 silently dies before reporting its first task; the lease
	// expires and workers 1..2 redo the work.
	tc := startCluster(t, 3, 300*time.Millisecond, map[int]int{0: 1})
	lines := []string{"a b", "b c", "c a", "a a"}
	res, err := tc.coord.RunJob(context.Background(), wcSpec(), wordLines(lines))
	if err != nil {
		t.Fatal(err)
	}
	want := []mapreduce.KeyValue{
		{Key: "a", Value: "4"}, {Key: "b", Value: "2"}, {Key: "c", Value: "2"},
	}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("Output after crash = %v, want %v", res.Output, want)
	}
}

func TestAllButOneWorkerCrash(t *testing.T) {
	tc := startCluster(t, 3, 200*time.Millisecond, map[int]int{0: 1, 1: 2})
	res, err := tc.coord.RunJob(context.Background(), wcSpec(), wordLines([]string{"a b c", "a"}))
	if err != nil {
		t.Fatal(err)
	}
	want := []mapreduce.KeyValue{
		{Key: "a", Value: "2"}, {Key: "b", Value: "1"}, {Key: "c", Value: "1"},
	}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("Output = %v, want %v", res.Output, want)
	}
}

func TestDeterministicFunctionErrorFailsJob(t *testing.T) {
	tc := startCluster(t, 2, time.Minute, nil)
	spec := wcSpec()
	spec.ReduceName = "boom.reduce"
	if _, err := tc.coord.RunJob(context.Background(), spec, wordLines([]string{"a"})); err == nil {
		t.Error("want job failure from reduce error")
	}
}

func TestRunJobContextCancel(t *testing.T) {
	// No workers: the job can never finish; cancellation must unblock.
	dir := t.TempDir()
	coord, err := NewCoordinator(CoordinatorConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(lis)
	defer coord.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := coord.RunJob(ctx, wcSpec(), wordLines([]string{"a"})); err == nil {
		t.Error("want context error")
	}
}

func TestSequentialJobs(t *testing.T) {
	tc := startCluster(t, 2, time.Minute, nil)
	for i := 0; i < 3; i++ {
		res, err := tc.coord.RunJob(context.Background(), wcSpec(), wordLines([]string{"q q"}))
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if len(res.Output) != 1 || res.Output[0].Value != "2" {
			t.Fatalf("job %d output = %v", i, res.Output)
		}
	}
}

func TestCoordinatorClosedRejectsJobs(t *testing.T) {
	dir := t.TempDir()
	coord, err := NewCoordinator(CoordinatorConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(lis)
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.RunJob(context.Background(), wcSpec(), nil); err == nil {
		t.Error("want ErrCoordinatorClosed")
	}
}

func TestRegistryValidation(t *testing.T) {
	reg := NewRegistry()
	if err := reg.RegisterMap("", nil); err == nil {
		t.Error("want error for empty registration")
	}
	fn := func(mapreduce.KeyValue, mapreduce.Emitter) error { return nil }
	if err := reg.RegisterMap("m", fn); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterMap("m", fn); err == nil {
		t.Error("want duplicate-registration error")
	}
	if _, err := reg.MapFunc("missing"); err == nil {
		t.Error("want lookup error")
	}
	if _, err := reg.ReduceFunc("missing"); err == nil {
		t.Error("want lookup error")
	}
	if _, err := reg.ReduceFunc(IdentityReduceName); err != nil {
		t.Errorf("identity reduce not pre-registered: %v", err)
	}
}

func TestIdentityReduceDefault(t *testing.T) {
	tc := startCluster(t, 2, time.Minute, nil)
	spec := JobSpec{Name: "maponly", MapName: "wc.map", NumMapTasks: 2, NumReducers: 2}
	res, err := tc.coord.RunJob(context.Background(), spec, wordLines([]string{"b a", "a"}))
	if err != nil {
		t.Fatal(err)
	}
	want := []mapreduce.KeyValue{
		{Key: "a", Value: "1"}, {Key: "a", Value: "1"}, {Key: "b", Value: "1"},
	}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("Output = %v, want %v", res.Output, want)
	}
}

func TestSpecValidation(t *testing.T) {
	s := JobSpec{}
	if err := s.normalize(); err == nil {
		t.Error("want error for missing map name")
	}
	s = JobSpec{MapName: "m"}
	if err := s.normalize(); err != nil {
		t.Fatal(err)
	}
	if s.ReduceName != IdentityReduceName || s.NumReducers != 4 || s.NumMapTasks != 8 {
		t.Errorf("defaults not applied: %+v", s)
	}
}

func TestNewCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(CoordinatorConfig{}); err == nil {
		t.Error("want error for missing dir")
	}
	if _, err := NewCoordinator(CoordinatorConfig{Dir: "x", TaskTimeout: -time.Second}); err == nil {
		t.Error("want error for negative timeout")
	}
}

func TestNewWorkerValidation(t *testing.T) {
	if _, err := NewWorker("127.0.0.1:1", WorkerConfig{}); err == nil {
		t.Error("want error for missing dir/registry")
	}
	if _, err := NewWorker("127.0.0.1:1", WorkerConfig{Dir: "x", Registry: NewRegistry()}); err == nil {
		t.Error("want dial error against closed port")
	}
}

func TestTaskKindString(t *testing.T) {
	for k, want := range map[TaskKind]string{
		TaskMap: "map", TaskReduce: "reduce", TaskWait: "wait", TaskExit: "exit", TaskKind(0): "invalid",
	} {
		if got := k.String(); got != want {
			t.Errorf("TaskKind(%d) = %q, want %q", k, got, want)
		}
	}
}

func TestStatusIdleAndActive(t *testing.T) {
	dir := t.TempDir()
	coord, err := NewCoordinator(CoordinatorConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if st := coord.Status(); st.JobID != "" || st.Done() {
		t.Errorf("idle status = %+v", st)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(lis)
	defer coord.Close()

	// Run a job with no workers in the background; status must show queued
	// maps and no completions.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = coord.RunJob(ctx, wcSpec(), wordLines([]string{"a b"}))
	}()
	deadline := time.After(5 * time.Second)
	for {
		st := coord.Status()
		if st.JobID != "" {
			if st.MapsTotal == 0 || st.MapsDone != 0 || st.Name != "wordcount" {
				t.Errorf("active status = %+v", st)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("job never became active")
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
	cancel()
	<-done
}

func TestStatusProgressesWithWorkers(t *testing.T) {
	tc := startCluster(t, 2, time.Minute, nil)
	res, err := tc.coord.RunJob(context.Background(), wcSpec(), wordLines([]string{"x y", "y"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) == 0 {
		t.Fatal("no output")
	}
	// After completion the coordinator is idle again.
	if st := tc.coord.Status(); st.JobID != "" {
		t.Errorf("post-job status = %+v, want idle", st)
	}
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"evmatching/internal/mapreduce"
	"evmatching/internal/mrtest"
)

// newTestRegistry registers word-count functions.
func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	if err := reg.RegisterMap("wc.map", func(in mapreduce.KeyValue, emit mapreduce.Emitter) error {
		for _, w := range strings.Fields(in.Value) {
			emit(mapreduce.KeyValue{Key: w, Value: "1"})
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sum := func(key string, values []string, emit mapreduce.Emitter) error {
		total := 0
		for _, v := range values {
			n, err := strconv.Atoi(v)
			if err != nil {
				return err
			}
			total += n
		}
		emit(mapreduce.KeyValue{Key: key, Value: strconv.Itoa(total)})
		return nil
	}
	if err := reg.RegisterReduce("wc.reduce", sum); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterReduce("wc.combine", sum); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterReduce("boom.reduce", func(string, []string, mapreduce.Emitter) error {
		return fmt.Errorf("deterministic failure")
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// testCluster spins up a coordinator and n workers in-process over real TCP.
type testCluster struct {
	coord   *Coordinator
	addr    string
	dir     string
	reg     *Registry
	ctx     context.Context
	workers sync.WaitGroup
	cancel  context.CancelFunc
}

// addWorker starts one more worker against the running cluster.
func (tc *testCluster) addWorker(t *testing.T, wc WorkerConfig) {
	t.Helper()
	wc.Dir = tc.dir
	wc.Registry = tc.reg
	w, err := NewWorker(tc.addr, wc)
	if err != nil {
		t.Fatal(err)
	}
	tc.workers.Add(1)
	go func() {
		defer tc.workers.Done()
		_ = w.Run(tc.ctx)
	}()
}

// startClusterCfg boots a cluster with full control over the coordinator
// config (Dir is filled in) and per-worker config tweaks.
func startClusterCfg(t *testing.T, nWorkers int, cfg CoordinatorConfig, worker func(i int, wc *WorkerConfig)) *testCluster {
	t.Helper()
	mrtest.CheckGoroutines(t)
	cfg.Dir = t.TempDir()
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := coord.Serve(lis)
	ctx, cancel := context.WithCancel(context.Background())
	tc := &testCluster{coord: coord, addr: addr, dir: cfg.Dir, reg: newTestRegistry(t), ctx: ctx, cancel: cancel}
	for i := 0; i < nWorkers; i++ {
		wc := WorkerConfig{ID: fmt.Sprintf("w%d", i)}
		if worker != nil {
			worker(i, &wc)
		}
		// Workers exit via TaskExit after Close, via crash injection, or via
		// context cancellation at test teardown.
		tc.addWorker(t, wc)
	}
	t.Cleanup(func() {
		_ = coord.Close()
		cancel()
		tc.workers.Wait()
	})
	return tc
}

func startCluster(t *testing.T, nWorkers int, timeout time.Duration, crashAfter map[int]int) *testCluster {
	t.Helper()
	return startClusterCfg(t, nWorkers, CoordinatorConfig{TaskTimeout: timeout}, func(i int, wc *WorkerConfig) {
		if crashAfter != nil {
			wc.CrashAfter = crashAfter[i]
		}
	})
}

// waitStatus polls the coordinator until cond accepts a status snapshot,
// replacing bare sleeps with condition polling so slow machines don't flake.
func waitStatus(t *testing.T, coord *Coordinator, what string, cond func(JobStatus) bool) JobStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := coord.Status()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("status never became %s; last = %+v", what, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func wordLines(lines []string) []mapreduce.KeyValue {
	input := make([]mapreduce.KeyValue, len(lines))
	for i, l := range lines {
		input[i] = mapreduce.KeyValue{Key: strconv.Itoa(i), Value: l}
	}
	return input
}

func wcSpec() JobSpec {
	return JobSpec{
		Name:        "wordcount",
		MapName:     "wc.map",
		ReduceName:  "wc.reduce",
		NumMapTasks: 6,
		NumReducers: 3,
	}
}

func TestDistributedWordCount(t *testing.T) {
	tc := startCluster(t, 3, time.Minute, nil)
	lines := []string{"a b a", "b c", "a", "c c c", "d a b"}
	res, err := tc.coord.RunJob(context.Background(), wcSpec(), wordLines(lines))
	if err != nil {
		t.Fatal(err)
	}
	want := []mapreduce.KeyValue{
		{Key: "a", Value: "4"}, {Key: "b", Value: "3"},
		{Key: "c", Value: "4"}, {Key: "d", Value: "1"},
	}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("Output = %v, want %v", res.Output, want)
	}
	if res.Counters.Get(mapreduce.CounterMapIn) != int64(len(lines)) {
		t.Errorf("map.in = %d", res.Counters.Get(mapreduce.CounterMapIn))
	}
}

func TestDistributedMatchesSerialAndParallel(t *testing.T) {
	lines := make([]string, 50)
	for i := range lines {
		lines[i] = fmt.Sprintf("w%d w%d w%d", i%7, (i*3)%7, (i*5)%7)
	}
	job := &mapreduce.Job{
		Name:  "wc",
		Input: wordLines(lines),
		Map: func(in mapreduce.KeyValue, emit mapreduce.Emitter) error {
			for _, w := range strings.Fields(in.Value) {
				emit(mapreduce.KeyValue{Key: w, Value: "1"})
			}
			return nil
		},
		Reduce: func(key string, values []string, emit mapreduce.Emitter) error {
			emit(mapreduce.KeyValue{Key: key, Value: strconv.Itoa(len(values))})
			return nil
		},
	}
	serial, err := mapreduce.SerialExecutor{}.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	tc := startCluster(t, 4, time.Minute, nil)
	dist, err := tc.coord.RunJob(context.Background(), wcSpec(), wordLines(lines))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist.Output, serial.Output) {
		t.Errorf("distributed output differs from serial:\n%v\n%v", dist.Output, serial.Output)
	}
}

func TestDistributedWithCombiner(t *testing.T) {
	tc := startCluster(t, 2, time.Minute, nil)
	spec := wcSpec()
	spec.CombineName = "wc.combine"
	res, err := tc.coord.RunJob(context.Background(), spec, wordLines([]string{"x x x y", "y x"}))
	if err != nil {
		t.Fatal(err)
	}
	want := []mapreduce.KeyValue{{Key: "x", Value: "4"}, {Key: "y", Value: "2"}}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("Output = %v, want %v", res.Output, want)
	}
	if res.Counters.Get(mapreduce.CounterCombineOut) == 0 {
		t.Error("combiner never ran")
	}
}

func TestWorkerCrashRecovery(t *testing.T) {
	// Worker 0 silently dies before reporting its first task; the lease
	// expires (or a speculative copy lands) and workers 1..2 redo the work.
	tc := startCluster(t, 3, 300*time.Millisecond, map[int]int{0: 1})
	lines := []string{"a b", "b c", "c a", "a a"}
	res, err := tc.coord.RunJob(context.Background(), wcSpec(), wordLines(lines))
	if err != nil {
		t.Fatal(err)
	}
	want := []mapreduce.KeyValue{
		{Key: "a", Value: "4"}, {Key: "b", Value: "2"}, {Key: "c", Value: "2"},
	}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("Output after crash = %v, want %v", res.Output, want)
	}
}

func TestAllButOneWorkerCrash(t *testing.T) {
	tc := startCluster(t, 3, 200*time.Millisecond, map[int]int{0: 1, 1: 2})
	res, err := tc.coord.RunJob(context.Background(), wcSpec(), wordLines([]string{"a b c", "a"}))
	if err != nil {
		t.Fatal(err)
	}
	want := []mapreduce.KeyValue{
		{Key: "a", Value: "2"}, {Key: "b", Value: "1"}, {Key: "c", Value: "1"},
	}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("Output = %v, want %v", res.Output, want)
	}
}

func TestHeartbeatEvictionRecoversCrashedWorker(t *testing.T) {
	// The task lease is a full minute, so only heartbeat-based failure
	// detection can recover worker 0's silently dropped task in time. Start
	// with just the crashing worker, wait until it provably holds a lease,
	// then add the rescuer — avoiding the race where the healthy worker
	// drains the whole job first.
	tc := startClusterCfg(t, 1, CoordinatorConfig{
		TaskTimeout:      time.Minute,
		HeartbeatTimeout: 150 * time.Millisecond,
		SpeculativeAfter: -1, // isolate the heartbeat path
	}, func(i int, wc *WorkerConfig) {
		wc.HeartbeatInterval = 25 * time.Millisecond
		wc.PollInterval = 2 * time.Millisecond
		wc.CrashAfter = 1
	})
	done := make(chan struct{})
	var res *mapreduce.Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = tc.coord.RunJob(context.Background(), wcSpec(), wordLines([]string{"a b", "b"}))
	}()
	waitStatus(t, tc.coord, "leased to the crashing worker", func(st JobStatus) bool {
		return st.MapsRunning > 0
	})
	tc.addWorker(t, WorkerConfig{
		ID:                "rescue",
		PollInterval:      2 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
	})
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	want := []mapreduce.KeyValue{{Key: "a", Value: "1"}, {Key: "b", Value: "2"}}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("Output = %v, want %v", res.Output, want)
	}
	st := tc.coord.Stats()
	if st.DeadWorkers == 0 {
		t.Errorf("crashed worker never declared dead: %+v", st)
	}
	if st.Evictions == 0 || st.Retries == 0 {
		t.Errorf("dropped task never evicted+retried: %+v", st)
	}
}

// stallPlan is a FaultPlan stalling every report of one worker.
type stallPlan struct {
	worker string
	delay  time.Duration
}

func (p stallPlan) TaskFault(workerID, _ string, _ TaskKind, _ int) TaskFault {
	if workerID == p.worker {
		return TaskFault{StallBeforeReport: p.delay}
	}
	return TaskFault{}
}

func (p stallPlan) DropHeartbeat(string, int) bool { return false }

func TestSpeculativeReDispatchMasksStraggler(t *testing.T) {
	// Worker 0 stalls every report far beyond the test's patience; the
	// coordinator must hand its tasks to a second worker speculatively.
	// The straggler runs alone until it provably holds a lease, so the fast
	// worker cannot drain the job before any straggling happens.
	tc := startClusterCfg(t, 1, CoordinatorConfig{
		TaskTimeout:      time.Minute,
		SpeculativeAfter: 30 * time.Millisecond,
	}, func(i int, wc *WorkerConfig) {
		wc.PollInterval = 2 * time.Millisecond
		wc.Faults = stallPlan{worker: "w0", delay: time.Minute}
	})
	done := make(chan struct{})
	var res *mapreduce.Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = tc.coord.RunJob(context.Background(), wcSpec(), wordLines([]string{"s t", "t"}))
	}()
	waitStatus(t, tc.coord, "leased to the straggler", func(st JobStatus) bool {
		return st.MapsRunning > 0
	})
	tc.addWorker(t, WorkerConfig{ID: "fast", PollInterval: 2 * time.Millisecond})
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	want := []mapreduce.KeyValue{{Key: "s", Value: "1"}, {Key: "t", Value: "2"}}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("Output = %v, want %v", res.Output, want)
	}
	st := tc.coord.Stats()
	if st.SpeculativeDispatches == 0 || st.SpeculativeWins == 0 {
		t.Errorf("straggler never speculatively re-dispatched: %+v", st)
	}
}

// lossyPlan drops every report of one worker and duplicates every report of
// another.
type lossyPlan struct {
	dropper, duper string
}

func (p lossyPlan) TaskFault(workerID, _ string, _ TaskKind, _ int) TaskFault {
	switch workerID {
	case p.dropper:
		return TaskFault{DropReport: true}
	case p.duper:
		return TaskFault{DuplicateReport: true}
	}
	return TaskFault{}
}

func (p lossyPlan) DropHeartbeat(string, int) bool { return false }

func TestDroppedAndDuplicatedReports(t *testing.T) {
	tc := startClusterCfg(t, 2, CoordinatorConfig{
		TaskTimeout:      120 * time.Millisecond,
		SpeculativeAfter: 40 * time.Millisecond,
	}, func(i int, wc *WorkerConfig) {
		wc.PollInterval = 5 * time.Millisecond
		wc.Faults = lossyPlan{dropper: "w0", duper: "w1"}
	})
	res, err := tc.coord.RunJob(context.Background(), wcSpec(), wordLines([]string{"u v", "v"}))
	if err != nil {
		t.Fatal(err)
	}
	want := []mapreduce.KeyValue{{Key: "u", Value: "1"}, {Key: "v", Value: "2"}}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("Output = %v, want %v", res.Output, want)
	}
	if st := tc.coord.Stats(); st.StaleReports == 0 {
		t.Errorf("duplicated reports never recorded as stale: %+v", st)
	}
}

func TestPoolCollapseFailsWithErrNoWorkers(t *testing.T) {
	// No workers ever connect; collapse detection must fail the job rather
	// than hang.
	mrtest.CheckGoroutines(t)
	coord, err := NewCoordinator(CoordinatorConfig{
		Dir:         t.TempDir(),
		TaskTimeout: 200 * time.Millisecond,
		PoolTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(lis)
	defer coord.Close()
	_, err = coord.RunJob(context.Background(), wcSpec(), wordLines([]string{"a"}))
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
	if st := coord.Status(); st.JobID != "" {
		t.Errorf("post-collapse status = %+v, want idle", st)
	}
}

func TestDeterministicFunctionErrorFailsJob(t *testing.T) {
	tc := startCluster(t, 2, time.Minute, nil)
	spec := wcSpec()
	spec.ReduceName = "boom.reduce"
	if _, err := tc.coord.RunJob(context.Background(), spec, wordLines([]string{"a"})); err == nil {
		t.Error("want job failure from reduce error")
	}
}

func TestRunJobContextCancel(t *testing.T) {
	// No workers: the job can never finish; cancellation must unblock.
	mrtest.CheckGoroutines(t)
	dir := t.TempDir()
	coord, err := NewCoordinator(CoordinatorConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(lis)
	defer coord.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := coord.RunJob(ctx, wcSpec(), wordLines([]string{"a"})); err == nil {
		t.Error("want context error")
	}
}

func TestSequentialJobs(t *testing.T) {
	tc := startCluster(t, 2, time.Minute, nil)
	for i := 0; i < 3; i++ {
		res, err := tc.coord.RunJob(context.Background(), wcSpec(), wordLines([]string{"q q"}))
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if len(res.Output) != 1 || res.Output[0].Value != "2" {
			t.Fatalf("job %d output = %v", i, res.Output)
		}
	}
}

func TestCoordinatorClosedRejectsJobs(t *testing.T) {
	mrtest.CheckGoroutines(t)
	dir := t.TempDir()
	coord, err := NewCoordinator(CoordinatorConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(lis)
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.RunJob(context.Background(), wcSpec(), nil); err == nil {
		t.Error("want ErrCoordinatorClosed")
	}
}

func TestRegistryValidation(t *testing.T) {
	reg := NewRegistry()
	if err := reg.RegisterMap("", nil); err == nil {
		t.Error("want error for empty registration")
	}
	fn := func(mapreduce.KeyValue, mapreduce.Emitter) error { return nil }
	if err := reg.RegisterMap("m", fn); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterMap("m", fn); err == nil {
		t.Error("want duplicate-registration error")
	}
	if _, err := reg.MapFunc("missing"); err == nil {
		t.Error("want lookup error")
	}
	if _, err := reg.ReduceFunc("missing"); err == nil {
		t.Error("want lookup error")
	}
	if _, err := reg.ReduceFunc(IdentityReduceName); err != nil {
		t.Errorf("identity reduce not pre-registered: %v", err)
	}
}

func TestIdentityReduceDefault(t *testing.T) {
	tc := startCluster(t, 2, time.Minute, nil)
	spec := JobSpec{Name: "maponly", MapName: "wc.map", NumMapTasks: 2, NumReducers: 2}
	res, err := tc.coord.RunJob(context.Background(), spec, wordLines([]string{"b a", "a"}))
	if err != nil {
		t.Fatal(err)
	}
	want := []mapreduce.KeyValue{
		{Key: "a", Value: "1"}, {Key: "a", Value: "1"}, {Key: "b", Value: "1"},
	}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("Output = %v, want %v", res.Output, want)
	}
}

func TestSpecValidation(t *testing.T) {
	s := JobSpec{}
	if err := s.normalize(); err == nil {
		t.Error("want error for missing map name")
	}
	s = JobSpec{MapName: "m"}
	if err := s.normalize(); err != nil {
		t.Fatal(err)
	}
	if s.ReduceName != IdentityReduceName || s.NumReducers != 4 || s.NumMapTasks != 8 {
		t.Errorf("defaults not applied: %+v", s)
	}
}

func TestNewCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(CoordinatorConfig{}); err == nil {
		t.Error("want error for missing dir")
	}
	if _, err := NewCoordinator(CoordinatorConfig{Dir: "x", TaskTimeout: -time.Second}); err == nil {
		t.Error("want error for negative timeout")
	}
	if _, err := NewCoordinator(CoordinatorConfig{Dir: "x", HeartbeatTimeout: -time.Second}); err == nil {
		t.Error("want error for negative heartbeat timeout")
	}
	if _, err := NewCoordinator(CoordinatorConfig{Dir: "x", PoolTimeout: -time.Second}); err == nil {
		t.Error("want error for negative pool timeout")
	}
	c, err := NewCoordinator(CoordinatorConfig{Dir: "x", TaskTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.HeartbeatTimeout != 2*time.Second || c.cfg.SpeculativeAfter != 500*time.Millisecond {
		t.Errorf("derived defaults = %+v", c.cfg)
	}
	if c.cfg.RetryBase != DefaultRetryBase || c.cfg.RetryMax != DefaultRetryMax {
		t.Errorf("retry defaults = %+v", c.cfg)
	}
}

func TestNewWorkerValidation(t *testing.T) {
	if _, err := NewWorker("127.0.0.1:1", WorkerConfig{}); err == nil {
		t.Error("want error for missing dir/registry")
	}
	if _, err := NewWorker("127.0.0.1:1", WorkerConfig{Dir: "x", Registry: NewRegistry()}); err == nil {
		t.Error("want dial error against closed port")
	}
}

func TestTaskKindString(t *testing.T) {
	for k, want := range map[TaskKind]string{
		TaskMap: "map", TaskReduce: "reduce", TaskWait: "wait", TaskExit: "exit", TaskKind(0): "invalid",
	} {
		if got := k.String(); got != want {
			t.Errorf("TaskKind(%d) = %q, want %q", k, got, want)
		}
	}
}

func TestStatusIdleAndActive(t *testing.T) {
	mrtest.CheckGoroutines(t)
	dir := t.TempDir()
	coord, err := NewCoordinator(CoordinatorConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if st := coord.Status(); st.JobID != "" || st.Done() {
		t.Errorf("idle status = %+v", st)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(lis)
	defer coord.Close()

	// Run a job with no workers in the background; status must show queued
	// maps and no completions.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = coord.RunJob(ctx, wcSpec(), wordLines([]string{"a b"}))
	}()
	st := waitStatus(t, coord, "active", func(st JobStatus) bool { return st.JobID != "" })
	if st.MapsTotal == 0 || st.MapsDone != 0 || st.Name != "wordcount" {
		t.Errorf("active status = %+v", st)
	}
	cancel()
	<-done
}

func TestStatusProgressesWithWorkers(t *testing.T) {
	tc := startCluster(t, 2, time.Minute, nil)
	res, err := tc.coord.RunJob(context.Background(), wcSpec(), wordLines([]string{"x y", "y"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) == 0 {
		t.Fatal("no output")
	}
	// After completion the coordinator is idle again.
	waitStatus(t, tc.coord, "idle", func(st JobStatus) bool { return st.JobID == "" })
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"evmatching/internal/mapreduce"
)

// Executor adapts a Coordinator to the mapreduce.Executor interface, so any
// code written against the engine — including the EV-Matching core via
// Options.Executor — runs on the distributed runtime unchanged.
//
// Jobs carry Go closures, which cannot travel over RPC; Executor registers
// each job's functions in the shared Registry under generated names before
// submitting the spec. Workers therefore must share this process (the
// in-process-workers-over-localhost deployment used in tests and the
// evmatching integration) or register the same functions themselves.
type Executor struct {
	coord    *Coordinator
	registry *Registry

	// Fallback, when non-nil, re-runs a job in-process after the cluster
	// fails it with ErrNoWorkers — graceful degradation to the serial path
	// when the worker pool collapses. Other job errors still surface.
	Fallback mapreduce.Executor

	mu        sync.Mutex
	seq       int
	fallbacks int64
}

var _ mapreduce.Executor = (*Executor)(nil)

// NewExecutor wraps a coordinator and the registry its workers resolve
// function names against.
func NewExecutor(coord *Coordinator, registry *Registry) (*Executor, error) {
	if coord == nil || registry == nil {
		return nil, fmt.Errorf("cluster: executor needs a coordinator and a registry")
	}
	return &Executor{coord: coord, registry: registry}, nil
}

// Run implements mapreduce.Executor by registering the job's functions and
// submitting it as a distributed job.
func (e *Executor) Run(ctx context.Context, job *mapreduce.Job) (*mapreduce.Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.seq++
	prefix := fmt.Sprintf("exec.%d.%s", e.seq, job.Name)
	e.mu.Unlock()

	spec := JobSpec{
		Name:        job.Name,
		MapName:     prefix + ".map",
		NumReducers: job.NumReducers,
	}
	if err := e.registry.RegisterMap(spec.MapName, job.Map); err != nil {
		return nil, err
	}
	if job.Reduce != nil {
		spec.ReduceName = prefix + ".reduce"
		if err := e.registry.RegisterReduce(spec.ReduceName, job.Reduce); err != nil {
			return nil, err
		}
	}
	if job.Combine != nil {
		spec.CombineName = prefix + ".combine"
		if err := e.registry.RegisterReduce(spec.CombineName, job.Combine); err != nil {
			return nil, err
		}
	}
	res, err := e.coord.RunJob(ctx, spec, job.Input)
	if err != nil && e.Fallback != nil && errors.Is(err, ErrNoWorkers) {
		e.mu.Lock()
		e.fallbacks++
		e.mu.Unlock()
		return e.Fallback.Run(ctx, job)
	}
	return res, err
}

// Stats reports the underlying coordinator's fault-recovery totals.
func (e *Executor) Stats() Stats { return e.coord.Stats() }

// Fallbacks reports how many jobs were re-run on the Fallback executor after
// the worker pool collapsed.
func (e *Executor) Fallbacks() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fallbacks
}

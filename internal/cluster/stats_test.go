package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestStatsConcurrentSnapshots races every converted counter field against
// lock-free Stats readers: the statsCounters conversion to typed atomics is
// only correct if concurrent increments and snapshots are race-free (the
// -race tier verifies) and no increment is lost.
func TestStatsConcurrentSnapshots(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()

	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	// Each writer hammers all six fields directly — the in-package seam that
	// pins every converted field under the race detector, independent of
	// which scheduling paths a particular job run happens to take.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				coord.stats.retries.Add(1)
				coord.stats.evictions.Add(1)
				coord.stats.speculativeDispatches.Add(1)
				coord.stats.speculativeWins.Add(1)
				coord.stats.staleReports.Add(1)
				coord.stats.deadWorkers.Add(1)
			}
		}()
	}
	// Concurrent readers: each field of a snapshot is a monotone counter, so
	// successive snapshots in one goroutine must never go backwards.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last Stats
			for {
				s := coord.Stats()
				if s.Retries < last.Retries || s.Evictions < last.Evictions ||
					s.SpeculativeDispatches < last.SpeculativeDispatches ||
					s.SpeculativeWins < last.SpeculativeWins ||
					s.StaleReports < last.StaleReports || s.DeadWorkers < last.DeadWorkers {
					t.Errorf("snapshot went backwards: %+v after %+v", s, last)
					return
				}
				last = s
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	want := int64(writers * perWriter)
	got := coord.Stats()
	for name, v := range map[string]int64{
		"Retries":               got.Retries,
		"Evictions":             got.Evictions,
		"SpeculativeDispatches": got.SpeculativeDispatches,
		"SpeculativeWins":       got.SpeculativeWins,
		"StaleReports":          got.StaleReports,
		"DeadWorkers":           got.DeadWorkers,
	} {
		if v != want {
			t.Errorf("%s = %d, want %d (increments lost)", name, v, want)
		}
	}
}

// TestStatsRPCSeams drives the two counters reachable without a running job
// through the real RPC handlers, concurrently with Stats readers: stale
// reports (no active job) and dead workers (heartbeat silence past the
// timeout, collected by the next request's sweep).
func TestStatsRPCSeams(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{
		Dir:              t.TempDir(),
		HeartbeatTimeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()
	rpc := &coordinatorRPC{c: coord}

	const callers, perCaller = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("w%d", w)
			for i := 0; i < perCaller; i++ {
				// No job is running, so every report is stale by definition.
				if err := rpc.ReportTask(&TaskReport{WorkerID: id, JobID: "ghost", Kind: TaskMap}, &TaskAck{}); err != nil {
					t.Errorf("ReportTask: %v", err)
					return
				}
				_ = coord.Stats() // reader racing the handler's increments
			}
		}(w)
	}
	wg.Wait()
	if got, want := coord.Stats().StaleReports, int64(callers*perCaller); got != want {
		t.Errorf("StaleReports = %d, want %d", got, want)
	}

	// Dead-worker sweep: register a worker, let the nanosecond heartbeat
	// budget lapse, and let the next request's failure detector collect it.
	if err := rpc.Heartbeat(&HeartbeatPing{WorkerID: "doomed"}, &HeartbeatAck{}); err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	time.Sleep(time.Millisecond)
	if err := rpc.RequestTask(&TaskRequest{WorkerID: "sweeper"}, &TaskReply{}); err != nil {
		t.Fatalf("RequestTask: %v", err)
	}
	if got := coord.Stats().DeadWorkers; got < 1 {
		t.Errorf("DeadWorkers = %d, want at least the swept worker", got)
	}
}

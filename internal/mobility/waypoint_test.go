package mobility

import (
	"math/rand"
	"testing"
	"time"

	"evmatching/internal/geo"
)

func testConfig() Config {
	return Config{
		Region:   geo.Square(geo.Pt(0, 0), 1000),
		SpeedMin: 0.5,
		SpeedMax: 2.0,
		PauseMax: 5 * time.Second,
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{name: "valid", mutate: func(*Config) {}, wantErr: false},
		{name: "empty region", mutate: func(c *Config) { c.Region = geo.Rect{} }, wantErr: true},
		{name: "zero speed", mutate: func(c *Config) { c.SpeedMin = 0 }, wantErr: true},
		{name: "inverted speeds", mutate: func(c *Config) { c.SpeedMax = 0.1 }, wantErr: true},
		{name: "negative pause", mutate: func(c *Config) { c.PauseMax = -time.Second }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestWalkerStaysInRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w, err := NewWalker(testConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	region := testConfig().Region
	for i := 0; i < 5000; i++ {
		p := w.Advance(time.Second)
		if p.X < region.Min.X || p.X > region.Max.X || p.Y < region.Min.Y || p.Y > region.Max.Y {
			t.Fatalf("step %d: walker left region at %v", i, p)
		}
	}
}

func TestWalkerSpeedBounded(t *testing.T) {
	cfg := testConfig()
	cfg.PauseMax = 0
	rng := rand.New(rand.NewSource(8))
	w, err := NewWalker(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	prev := w.Pos()
	dt := time.Second
	for i := 0; i < 2000; i++ {
		p := w.Advance(dt)
		// Per-step displacement never exceeds SpeedMax * dt; it can be less
		// when a waypoint is reached mid-step and the heading turns.
		if d := p.Dist(prev); d > cfg.SpeedMax*dt.Seconds()+1e-9 {
			t.Fatalf("step %d: moved %v m in one second, max speed %v", i, d, cfg.SpeedMax)
		}
		prev = p
	}
}

func TestWalkerPausesHoldPosition(t *testing.T) {
	cfg := testConfig()
	cfg.PauseMax = time.Hour // essentially always pausing at waypoints
	rng := rand.New(rand.NewSource(4))
	w, err := NewWalker(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the walker to its first waypoint, then observe the pause.
	var reached bool
	for i := 0; i < 100000 && !reached; i++ {
		before := w.Pos()
		w.Advance(time.Second)
		if w.pause > time.Minute && w.Pos() == before {
			reached = true
		}
		if w.pause > time.Minute {
			held := w.Pos()
			if got := w.Advance(time.Second); got != held {
				t.Fatalf("walker moved during pause: %v -> %v", held, got)
			}
			reached = true
		}
	}
	if !reached {
		t.Fatal("walker never reached a waypoint")
	}
}

func TestWalkerDeterministicWithSeed(t *testing.T) {
	run := func() []geo.Point {
		rng := rand.New(rand.NewSource(77))
		w, err := NewWalker(testConfig(), rng)
		if err != nil {
			t.Fatal(err)
		}
		return w.Sample(100, time.Second)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWalkerEventuallyTraversesRegion(t *testing.T) {
	cfg := testConfig()
	cfg.PauseMax = 0
	cfg.SpeedMin, cfg.SpeedMax = 5, 10
	rng := rand.New(rand.NewSource(12))
	w, err := NewWalker(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// After enough walking, the visited area should span multiple quadrants.
	visited := map[[2]int]bool{}
	for i := 0; i < 20000; i++ {
		p := w.Advance(time.Second)
		visited[[2]int{int(p.X / 500), int(p.Y / 500)}] = true
	}
	if len(visited) < 4 {
		t.Errorf("walker visited only %d of 4 quadrants", len(visited))
	}
}

func TestSampleLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w, err := NewWalker(testConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Sample(37, time.Second); len(got) != 37 {
		t.Errorf("Sample returned %d points, want 37", len(got))
	}
}

func TestNewWalkerRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.SpeedMin = -1
	if _, err := NewWalker(cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Error("want error for bad config")
	}
}

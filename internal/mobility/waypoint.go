// Package mobility implements the random waypoint model (Camp, Boleng &
// Davies, 2002) that the paper uses to drive each human object's location,
// velocity, and acceleration changes across the surveilled region (§VI-A).
package mobility

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"evmatching/internal/geo"
)

// ErrBadModel reports invalid mobility parameters.
var ErrBadModel = errors.New("mobility: invalid model parameters")

// Config parameterizes a random waypoint walker.
type Config struct {
	// Region bounds the walk.
	Region geo.Rect
	// SpeedMin and SpeedMax bound the per-leg speed in m/s.
	SpeedMin float64
	SpeedMax float64
	// PauseMax bounds the uniform pause drawn at each waypoint; zero means
	// no pausing.
	PauseMax time.Duration
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Region.Width() <= 0 || c.Region.Height() <= 0 {
		return fmt.Errorf("%w: empty region", ErrBadModel)
	}
	if c.SpeedMin <= 0 || c.SpeedMax < c.SpeedMin {
		return fmt.Errorf("%w: speeds [%f, %f]", ErrBadModel, c.SpeedMin, c.SpeedMax)
	}
	if c.PauseMax < 0 {
		return fmt.Errorf("%w: negative pause", ErrBadModel)
	}
	return nil
}

// Walker is one random-waypoint mobile. It is not safe for concurrent use;
// the dataset generator drives one walker per person.
type Walker struct {
	cfg   Config
	rng   *rand.Rand
	pos   geo.Point
	dest  geo.Point
	speed float64       // m/s toward dest
	pause time.Duration // remaining pause at the current waypoint
}

// NewWalker creates a walker at a uniformly random starting position with its
// first leg already chosen. The caller owns rng; sharing one rng across
// walkers keeps a whole simulation reproducible from a single seed.
func NewWalker(cfg Config, rng *rand.Rand) (*Walker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &Walker{cfg: cfg, rng: rng}
	w.pos = w.randomPoint()
	w.nextLeg()
	return w, nil
}

// Pos returns the walker's current position.
func (w *Walker) Pos() geo.Point { return w.pos }

// randomPoint draws a uniform point in the region.
func (w *Walker) randomPoint() geo.Point {
	r := w.cfg.Region
	return geo.Pt(
		r.Min.X+w.rng.Float64()*r.Width(),
		r.Min.Y+w.rng.Float64()*r.Height(),
	)
}

// nextLeg draws a fresh destination, speed, and pause.
func (w *Walker) nextLeg() {
	w.dest = w.randomPoint()
	w.speed = w.cfg.SpeedMin + w.rng.Float64()*(w.cfg.SpeedMax-w.cfg.SpeedMin)
	if w.cfg.PauseMax > 0 {
		w.pause = time.Duration(w.rng.Int63n(int64(w.cfg.PauseMax) + 1))
	}
}

// Advance moves the walker forward by dt and returns the new position,
// consuming pauses and starting new legs as waypoints are reached.
func (w *Walker) Advance(dt time.Duration) geo.Point {
	remaining := dt.Seconds()
	for remaining > 1e-12 {
		if w.pause > 0 {
			pauseSec := w.pause.Seconds()
			if pauseSec >= remaining {
				w.pause -= time.Duration(remaining * float64(time.Second))
				return w.pos
			}
			remaining -= pauseSec
			w.pause = 0
		}
		distToDest := w.pos.Dist(w.dest)
		travel := w.speed * remaining
		if travel < distToDest {
			w.pos = w.pos.Lerp(w.dest, travel/distToDest)
			return w.pos
		}
		// Reached the waypoint: consume the travel time and start anew.
		if w.speed > 0 {
			remaining -= distToDest / w.speed
		}
		w.pos = w.dest
		w.nextLeg()
	}
	return w.pos
}

// Sample advances the walker n times by dt, returning the n sampled
// positions (not including the starting position).
func (w *Walker) Sample(n int, dt time.Duration) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = w.Advance(dt)
	}
	return out
}

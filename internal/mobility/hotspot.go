package mobility

import (
	"fmt"
	"math/rand"
	"time"

	"evmatching/internal/geo"
)

// Model is a mobility source: anything that yields a position when advanced
// through time. Walker (random waypoint) and HotspotWalker both satisfy it.
type Model interface {
	Advance(dt time.Duration) geo.Point
	Pos() geo.Point
}

// Compile-time interface compliance checks.
var (
	_ Model = (*Walker)(nil)
	_ Model = (*HotspotWalker)(nil)
)

// HotspotConfig parameterizes hotspot-biased random waypoint movement:
// destinations are drawn near shared attraction points (plazas, entrances,
// platforms) with the configured probability, producing the crowding that
// makes spatiotemporal matching hard — many people share cells for long
// stretches.
type HotspotConfig struct {
	// Walk is the underlying waypoint dynamics (speeds, pauses, region).
	Walk Config
	// Hotspots is the number of shared attraction points.
	Hotspots int
	// Attraction is the probability a new destination targets a hotspot.
	Attraction float64
	// Spread is the standard deviation, in meters, of destinations around
	// their hotspot.
	Spread float64
}

// Validate reports whether the configuration is usable.
func (c HotspotConfig) Validate() error {
	if err := c.Walk.Validate(); err != nil {
		return err
	}
	if c.Hotspots < 1 {
		return fmt.Errorf("%w: hotspots=%d", ErrBadModel, c.Hotspots)
	}
	if c.Attraction < 0 || c.Attraction > 1 {
		return fmt.Errorf("%w: attraction=%f", ErrBadModel, c.Attraction)
	}
	if c.Spread < 0 {
		return fmt.Errorf("%w: spread=%f", ErrBadModel, c.Spread)
	}
	return nil
}

// Hotspots draws the shared attraction points for a population; every
// walker of one world should receive the same slice.
func Hotspots(cfg HotspotConfig, rng *rand.Rand) ([]geo.Point, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pts := make([]geo.Point, cfg.Hotspots)
	r := cfg.Walk.Region
	for i := range pts {
		pts[i] = geo.Pt(
			r.Min.X+rng.Float64()*r.Width(),
			r.Min.Y+rng.Float64()*r.Height(),
		)
	}
	return pts, nil
}

// HotspotWalker is a random-waypoint walker whose destinations gravitate to
// shared hotspots.
type HotspotWalker struct {
	walker   *Walker
	cfg      HotspotConfig
	hotspots []geo.Point
	rng      *rand.Rand
}

// NewHotspotWalker creates a walker over the shared hotspot set.
func NewHotspotWalker(cfg HotspotConfig, hotspots []geo.Point, rng *rand.Rand) (*HotspotWalker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(hotspots) == 0 {
		return nil, fmt.Errorf("%w: no hotspots provided", ErrBadModel)
	}
	w, err := NewWalker(cfg.Walk, rng)
	if err != nil {
		return nil, err
	}
	h := &HotspotWalker{walker: w, cfg: cfg, hotspots: hotspots, rng: rng}
	// Rebias the initial leg too.
	h.walker.dest = h.drawDest()
	return h, nil
}

// drawDest picks the next destination: near a hotspot with probability
// Attraction, else uniform in the region.
func (h *HotspotWalker) drawDest() geo.Point {
	r := h.cfg.Walk.Region
	if h.rng.Float64() >= h.cfg.Attraction {
		return geo.Pt(
			r.Min.X+h.rng.Float64()*r.Width(),
			r.Min.Y+h.rng.Float64()*r.Height(),
		)
	}
	spot := h.hotspots[h.rng.Intn(len(h.hotspots))]
	return r.Clamp(geo.Pt(
		spot.X+h.rng.NormFloat64()*h.cfg.Spread,
		spot.Y+h.rng.NormFloat64()*h.cfg.Spread,
	))
}

// Pos returns the current position.
func (h *HotspotWalker) Pos() geo.Point { return h.walker.Pos() }

// Advance moves the walker forward by dt, rebiasing every fresh leg toward
// the hotspots.
func (h *HotspotWalker) Advance(dt time.Duration) geo.Point {
	before := h.walker.dest
	pos := h.walker.Advance(dt)
	// The embedded walker drew a uniform destination when it reached a
	// waypoint mid-step; replace it with a hotspot-biased one. Pauses and
	// speeds remain the walker's own.
	if h.walker.dest != before {
		h.walker.dest = h.drawDest()
	}
	return pos
}

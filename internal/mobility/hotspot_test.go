package mobility

import (
	"math/rand"
	"testing"
	"time"

	"evmatching/internal/geo"
)

func hotspotConfig() HotspotConfig {
	return HotspotConfig{
		Walk:       testConfig(),
		Hotspots:   3,
		Attraction: 0.8,
		Spread:     30,
	}
}

func TestHotspotConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*HotspotConfig)
	}{
		{name: "bad walk", mutate: func(c *HotspotConfig) { c.Walk.SpeedMin = 0 }},
		{name: "zero hotspots", mutate: func(c *HotspotConfig) { c.Hotspots = 0 }},
		{name: "attraction above 1", mutate: func(c *HotspotConfig) { c.Attraction = 1.5 }},
		{name: "negative spread", mutate: func(c *HotspotConfig) { c.Spread = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := hotspotConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
	if err := hotspotConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestHotspotsDrawnInRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, err := Hotspots(hotspotConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("hotspots = %d", len(pts))
	}
	region := hotspotConfig().Walk.Region
	for _, p := range pts {
		if !region.Contains(p) {
			t.Errorf("hotspot %v outside region", p)
		}
	}
	bad := hotspotConfig()
	bad.Hotspots = 0
	if _, err := Hotspots(bad, rng); err == nil {
		t.Error("want error for invalid config")
	}
}

func TestNewHotspotWalkerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := NewHotspotWalker(hotspotConfig(), nil, rng); err == nil {
		t.Error("want error for empty hotspot set")
	}
	bad := hotspotConfig()
	bad.Attraction = -1
	if _, err := NewHotspotWalker(bad, []geo.Point{geo.Pt(1, 1)}, rng); err == nil {
		t.Error("want error for bad config")
	}
}

func TestHotspotWalkerStaysInRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := hotspotConfig()
	spots, err := Hotspots(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewHotspotWalker(cfg, spots, rng)
	if err != nil {
		t.Fatal(err)
	}
	region := cfg.Walk.Region
	for i := 0; i < 3000; i++ {
		p := w.Advance(time.Second)
		if p.X < region.Min.X || p.X > region.Max.X || p.Y < region.Min.Y || p.Y > region.Max.Y {
			t.Fatalf("step %d: left region at %v", i, p)
		}
	}
}

// TestHotspotWalkersCrowd pins the model's purpose: with strong attraction,
// time spent near hotspots far exceeds the uniform-area baseline.
func TestHotspotWalkersCrowd(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := hotspotConfig()
	cfg.Walk.PauseMax = 0
	cfg.Walk.SpeedMin, cfg.Walk.SpeedMax = 5, 10
	cfg.Attraction = 0.9
	spots, err := Hotspots(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	const nearDist = 100.0
	near, total := 0, 0
	for p := 0; p < 10; p++ {
		w, err := NewHotspotWalker(cfg, spots, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			pos := w.Advance(time.Second)
			total++
			for _, s := range spots {
				if pos.Dist(s) < nearDist {
					near++
					break
				}
			}
		}
	}
	// Area fraction within 100 m of 3 hotspots on 1 km² is ≈ 9%; crowded
	// walkers should spend far more of their time there.
	frac := float64(near) / float64(total)
	if frac < 0.25 {
		t.Errorf("time near hotspots = %.1f%%, want >= 25%%", frac*100)
	}
}

func TestHotspotWalkerDeterministic(t *testing.T) {
	run := func() []geo.Point {
		rng := rand.New(rand.NewSource(7))
		cfg := hotspotConfig()
		spots, err := Hotspots(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewHotspotWalker(cfg, spots, rng)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]geo.Point, 50)
		for i := range out {
			out[i] = w.Advance(time.Second)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d differs", i)
		}
	}
}

package bitset

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := New(130) // three words, last partial
	for _, i := range []int{0, 63, 64, 129} {
		s.Add(i)
		if !s.Has(i) {
			t.Errorf("Has(%d) = false after Add", i)
		}
	}
	if got := s.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 3 {
		t.Errorf("Remove(64) left Has=%v Count=%d", s.Has(64), s.Count())
	}
	if !s.Any() {
		t.Error("Any = false on non-empty set")
	}
	s.Clear()
	if s.Any() || s.Count() != 0 {
		t.Error("Clear left bits set")
	}
}

func TestBinaryOpsAgainstMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 200
	for trial := 0; trial < 50; trial++ {
		a, b := New(n), New(n)
		am, bm := map[int]bool{}, map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				a.Add(i)
				am[i] = true
			}
			if rng.Intn(3) == 0 {
				b.Add(i)
				bm[i] = true
			}
		}
		check := func(name string, got Set, want func(i int) bool) {
			for i := 0; i < n; i++ {
				if got.Has(i) != want(i) {
					t.Fatalf("trial %d %s bit %d = %v, want %v", trial, name, i, got.Has(i), want(i))
				}
			}
		}
		check("And", And(a, b), func(i int) bool { return am[i] && bm[i] })
		check("AndNot", AndNot(a, b), func(i int) bool { return am[i] && !bm[i] })
		check("Or", Or(a, b), func(i int) bool { return am[i] || bm[i] })
		dst := New(n)
		OrInto(dst, a, b)
		check("OrInto", dst, func(i int) bool { return am[i] || bm[i] })
		OrInto(a, a, b) // aliasing form
		check("OrInto-alias", a, func(i int) bool { return am[i] || bm[i] })
	}
}

func TestForEachAscending(t *testing.T) {
	s := New(200)
	want := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v (ascending)", got, want)
		}
	}
}

func TestClone(t *testing.T) {
	s := New(64)
	s.Add(5)
	c := s.Clone()
	c.Add(6)
	if s.Has(6) {
		t.Error("Clone shares storage with original")
	}
	if !c.Has(5) {
		t.Error("Clone dropped bits")
	}
}

func TestNewEdgeCases(t *testing.T) {
	if got := len(New(0)); got != 0 {
		t.Errorf("New(0) words = %d, want 0", got)
	}
	if got := len(New(-3)); got != 0 {
		t.Errorf("New(-3) words = %d, want 0", got)
	}
	if got := len(New(64)); got != 1 {
		t.Errorf("New(64) words = %d, want 1", got)
	}
	if got := len(New(65)); got != 2 {
		t.Errorf("New(65) words = %d, want 2", got)
	}
}

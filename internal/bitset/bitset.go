// Package bitset provides the dense bitsets the E-stage split trees are
// built from: each partition maps its target EIDs to bit positions once, and
// every set operation a split needs (intersection, difference, union) is a
// handful of word-wide AND/AND-NOT/ORs instead of map traffic. All sets over
// one universe share a fixed word length, so binary operations never need
// length reconciliation.
package bitset

import "math/bits"

// Set is a fixed-universe bitset. Sets built by New with the same n are
// directly compatible operands.
type Set []uint64

// New returns an empty set over a universe of n elements.
func New(n int) Set {
	if n < 0 {
		n = 0
	}
	return make(Set, (n+63)/64)
}

// Has reports whether bit i is set.
func (s Set) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Add sets bit i.
func (s Set) Add(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Remove clears bit i.
func (s Set) Remove(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Count returns the number of set bits.
func (s Set) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (s Set) Any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clear zeroes the set in place.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Clone returns a copy of s.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// And returns a ∩ b as a new set.
func And(a, b Set) Set {
	out := make(Set, len(a))
	for i := range a {
		out[i] = a[i] & b[i]
	}
	return out
}

// AndNot returns a \ b as a new set.
func AndNot(a, b Set) Set {
	out := make(Set, len(a))
	for i := range a {
		out[i] = a[i] &^ b[i]
	}
	return out
}

// Or returns a ∪ b as a new set.
func Or(a, b Set) Set {
	out := make(Set, len(a))
	for i := range a {
		out[i] = a[i] | b[i]
	}
	return out
}

// OrInto sets dst = a ∪ b; dst may alias either operand.
func OrInto(dst, a, b Set) {
	for i := range dst {
		dst[i] = a[i] | b[i]
	}
}

// AndInto sets dst = a ∩ b; dst may alias either operand. The allocation-free
// form of And for callers probing intersections they usually discard.
func AndInto(dst, a, b Set) {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

// AndNotInto sets dst = a \ b; dst may alias either operand.
func AndNotInto(dst, a, b Set) {
	for i := range dst {
		dst[i] = a[i] &^ b[i]
	}
}

// Intersects reports whether a ∩ b is non-empty without materializing it —
// the emptiness probe the blocking index runs per window before touching any
// scenario.
func Intersects(a, b Set) bool {
	for i := range a {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every set bit in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Package elocal models electronic localization the way the paper describes
// it (§III-A): base stations capture a device's transmissions, and its
// E-Location is estimated "using the position of the devices or base
// stations that capture these EIDs, or using other localization methods if
// more information is available, such as electronic signal strength". The
// model places stations over the region, attenuates signals with
// log-distance path loss plus log-normal shadowing, and estimates positions
// by inverse-distance-weighted multilateration over the stations in range —
// producing the large, structured E-localization error (drifting EIDs) that
// the practical setting's vague zones exist to absorb.
package elocal

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"evmatching/internal/geo"
)

// ErrBadConfig reports invalid localization parameters.
var ErrBadConfig = errors.New("elocal: invalid config")

// Station is one capture point (WiFi AP, cell base station).
type Station struct {
	ID  int
	Pos geo.Point
}

// Config parameterizes the localization model. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	// Enabled switches RSSI localization on; when false, dataset generation
	// falls back to plain Gaussian E-noise.
	Enabled bool
	// NumStations are placed on a jittered grid over the region.
	NumStations int
	// TxPowerDBm is the received power at the 1 m reference distance.
	TxPowerDBm float64
	// PathLossExp is the log-distance path loss exponent (2 free space,
	// 2.7–3.5 urban).
	PathLossExp float64
	// ShadowSigmaDB is the log-normal shadowing standard deviation in dB;
	// it is the physical source of localization error.
	ShadowSigmaDB float64
	// SensitivityDBm is the weakest receivable signal; stations hearing
	// less do not report the device.
	SensitivityDBm float64
	// MinStations is the minimum number of reporting stations required for
	// a fix; with fewer, the observation is dropped entirely.
	MinStations int
}

// DefaultConfig returns a WiFi-like deployment: 25 stations over a square
// kilometer, moderate urban shadowing.
func DefaultConfig() Config {
	return Config{
		Enabled:        true,
		NumStations:    25,
		TxPowerDBm:     -30,
		PathLossExp:    2.9,
		ShadowSigmaDB:  4,
		SensitivityDBm: -100, // ~260 m range: every point hears 3+ stations
		MinStations:    3,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	switch {
	case c.NumStations < 1:
		return fmt.Errorf("%w: NumStations=%d", ErrBadConfig, c.NumStations)
	case c.PathLossExp <= 0:
		return fmt.Errorf("%w: PathLossExp=%f", ErrBadConfig, c.PathLossExp)
	case c.ShadowSigmaDB < 0:
		return fmt.Errorf("%w: ShadowSigmaDB=%f", ErrBadConfig, c.ShadowSigmaDB)
	case c.SensitivityDBm >= c.TxPowerDBm:
		return fmt.Errorf("%w: sensitivity %f above tx power %f", ErrBadConfig, c.SensitivityDBm, c.TxPowerDBm)
	case c.MinStations < 1:
		return fmt.Errorf("%w: MinStations=%d", ErrBadConfig, c.MinStations)
	}
	return nil
}

// Model is a deployed localization infrastructure.
type Model struct {
	cfg      Config
	stations []Station
}

// New deploys stations on a jittered grid over bounds, drawing jitter from
// rng.
func New(cfg Config, bounds geo.Rect, rng *rand.Rand) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled {
		return nil, fmt.Errorf("%w: model requested but not enabled", ErrBadConfig)
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, fmt.Errorf("%w: empty bounds", ErrBadConfig)
	}
	cols := int(math.Ceil(math.Sqrt(float64(cfg.NumStations))))
	rows := (cfg.NumStations + cols - 1) / cols
	dx := bounds.Width() / float64(cols)
	dy := bounds.Height() / float64(rows)
	m := &Model{cfg: cfg, stations: make([]Station, 0, cfg.NumStations)}
	for i := 0; i < cfg.NumStations; i++ {
		col, row := i%cols, i/cols
		jx := (rng.Float64() - 0.5) * dx * 0.5
		jy := (rng.Float64() - 0.5) * dy * 0.5
		pos := bounds.Clamp(geo.Pt(
			bounds.Min.X+(float64(col)+0.5)*dx+jx,
			bounds.Min.Y+(float64(row)+0.5)*dy+jy,
		))
		m.stations = append(m.stations, Station{ID: i, Pos: pos})
	}
	return m, nil
}

// Stations returns the deployed stations. The slice must not be modified.
func (m *Model) Stations() []Station { return m.stations }

// rssiAt returns the received power at distance d with fresh shadowing.
func (m *Model) rssiAt(d float64, rng *rand.Rand) float64 {
	if d < 1 {
		d = 1
	}
	loss := 10 * m.cfg.PathLossExp * math.Log10(d)
	shadow := 0.0
	if m.cfg.ShadowSigmaDB > 0 {
		shadow = rng.NormFloat64() * m.cfg.ShadowSigmaDB
	}
	return m.cfg.TxPowerDBm - loss + shadow
}

// distanceFor inverts the path-loss model, ignoring shadowing (the receiver
// cannot separate it), which is exactly where estimation error comes from.
func (m *Model) distanceFor(rssi float64) float64 {
	return math.Pow(10, (m.cfg.TxPowerDBm-rssi)/(10*m.cfg.PathLossExp))
}

// Range returns the nominal detection radius implied by the sensitivity.
func (m *Model) Range() float64 {
	return m.distanceFor(m.cfg.SensitivityDBm)
}

// Observe simulates one localization attempt for a device at truth: every
// station draws an RSSI; those above sensitivity report; with at least
// MinStations reports the position is estimated by inverse-square-distance
// weighted multilateration. ok is false when too few stations heard the
// device (no E-observation this tick).
func (m *Model) Observe(truth geo.Point, rng *rand.Rand) (est geo.Point, ok bool) {
	var wsum, xsum, ysum float64
	reports := 0
	for i := range m.stations {
		s := &m.stations[i]
		rssi := m.rssiAt(truth.Dist(s.Pos), rng)
		if rssi < m.cfg.SensitivityDBm {
			continue
		}
		reports++
		d := m.distanceFor(rssi)
		w := 1 / (d*d + 1)
		wsum += w
		xsum += w * s.Pos.X
		ysum += w * s.Pos.Y
	}
	if reports < m.cfg.MinStations || wsum == 0 {
		return geo.Point{}, false
	}
	return geo.Pt(xsum/wsum, ysum/wsum), true
}

// MeanError estimates the model's mean localization error empirically over
// n uniform probe points, useful for sizing vague zones.
func (m *Model) MeanError(bounds geo.Rect, n int, rng *rand.Rand) float64 {
	if n < 1 {
		return 0
	}
	var sum float64
	got := 0
	for i := 0; i < n; i++ {
		truth := geo.Pt(
			bounds.Min.X+rng.Float64()*bounds.Width(),
			bounds.Min.Y+rng.Float64()*bounds.Height(),
		)
		if est, ok := m.Observe(truth, rng); ok {
			sum += est.Dist(truth)
			got++
		}
	}
	if got == 0 {
		return math.Inf(1)
	}
	return sum / float64(got)
}

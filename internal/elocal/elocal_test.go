package elocal

import (
	"math"
	"math/rand"
	"testing"

	"evmatching/internal/geo"
)

func region() geo.Rect { return geo.Square(geo.Pt(0, 0), 1000) }

func newModel(t *testing.T, mutate func(*Config)) *Model {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := New(cfg, region(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "zero stations", mutate: func(c *Config) { c.NumStations = 0 }},
		{name: "zero exponent", mutate: func(c *Config) { c.PathLossExp = 0 }},
		{name: "negative shadow", mutate: func(c *Config) { c.ShadowSigmaDB = -1 }},
		{name: "sensitivity above tx", mutate: func(c *Config) { c.SensitivityDBm = 0 }},
		{name: "zero min stations", mutate: func(c *Config) { c.MinStations = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	disabled := Config{}
	if err := disabled.Validate(); err != nil {
		t.Errorf("disabled config should validate: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(Config{}, region(), rng); err == nil {
		t.Error("want error for disabled config")
	}
	if _, err := New(DefaultConfig(), geo.Rect{}, rng); err == nil {
		t.Error("want error for empty bounds")
	}
}

func TestStationsPlacedInBounds(t *testing.T) {
	m := newModel(t, nil)
	if len(m.Stations()) != DefaultConfig().NumStations {
		t.Fatalf("stations = %d", len(m.Stations()))
	}
	for _, s := range m.Stations() {
		p := region().Clamp(s.Pos)
		if p != s.Pos {
			t.Errorf("station %d at %v outside region", s.ID, s.Pos)
		}
	}
}

func TestObserveErrorIsBounded(t *testing.T) {
	m := newModel(t, nil)
	rng := rand.New(rand.NewSource(2))
	err := m.MeanError(region(), 500, rng)
	if math.IsInf(err, 1) {
		t.Fatal("no fixes at all")
	}
	// With 25 stations over 1 km² the mean error should be tens of meters:
	// large enough to drift EIDs across cell borders, small enough to be
	// informative.
	if err < 5 || err > 200 {
		t.Errorf("mean localization error = %.1f m, want 5–200 m", err)
	}
}

func TestObserveErrorGrowsWithShadowing(t *testing.T) {
	quiet := newModel(t, func(c *Config) { c.ShadowSigmaDB = 1 })
	noisy := newModel(t, func(c *Config) { c.ShadowSigmaDB = 8 })
	rngA := rand.New(rand.NewSource(3))
	rngB := rand.New(rand.NewSource(3))
	errQuiet := quiet.MeanError(region(), 400, rngA)
	errNoisy := noisy.MeanError(region(), 400, rngB)
	if errNoisy <= errQuiet {
		t.Errorf("shadowing 8 dB error %.1f <= 1 dB error %.1f", errNoisy, errQuiet)
	}
}

func TestObserveDropsWithoutEnoughStations(t *testing.T) {
	// A single distant station cannot produce a fix when three are needed.
	m := newModel(t, func(c *Config) {
		c.NumStations = 1
		c.MinStations = 3
	})
	rng := rand.New(rand.NewSource(4))
	if _, ok := m.Observe(geo.Pt(500, 500), rng); ok {
		t.Error("fix produced with one station and MinStations=3")
	}
}

func TestObserveMissesOutOfRange(t *testing.T) {
	// Deafen the receivers: nothing in range, no observation.
	m := newModel(t, func(c *Config) { c.SensitivityDBm = -41 })
	rng := rand.New(rand.NewSource(5))
	misses := 0
	for i := 0; i < 100; i++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		if _, ok := m.Observe(p, rng); !ok {
			misses++
		}
	}
	if misses < 90 {
		t.Errorf("only %d/100 misses with near-zero range", misses)
	}
}

func TestRangeInvertsatSensitivity(t *testing.T) {
	m := newModel(t, nil)
	r := m.Range()
	if r <= 0 {
		t.Fatalf("Range = %v", r)
	}
	// Path loss at the range distance equals the sensitivity budget.
	back := m.cfg.TxPowerDBm - 10*m.cfg.PathLossExp*math.Log10(r)
	if math.Abs(back-m.cfg.SensitivityDBm) > 1e-9 {
		t.Errorf("loss at range = %v dBm, want %v", back, m.cfg.SensitivityDBm)
	}
}

func TestObserveDeterministicWithSeed(t *testing.T) {
	m := newModel(t, nil)
	a, okA := m.Observe(geo.Pt(300, 700), rand.New(rand.NewSource(7)))
	b, okB := m.Observe(geo.Pt(300, 700), rand.New(rand.NewSource(7)))
	if okA != okB || a != b {
		t.Errorf("non-deterministic observation: %v/%v vs %v/%v", a, okA, b, okB)
	}
}

func TestMeanErrorEdgeCases(t *testing.T) {
	m := newModel(t, nil)
	if got := m.MeanError(region(), 0, rand.New(rand.NewSource(1))); got != 0 {
		t.Errorf("MeanError(0 probes) = %v", got)
	}
}

// Package mapreduce is a from-scratch MapReduce engine standing in for the
// Apache Spark / Hadoop stack of the paper's evaluation. It provides the
// programming model of §V-A — split, map, shuffle, reduce over (key, value)
// pairs — with a serial executor (the reference semantics), a parallel
// executor (goroutine workers with hash-partitioned shuffle and optional
// combiners), and, in package cluster, a distributed executor over net/rpc.
// All executors produce identical, deterministically sorted output for the
// same job, a property the tests pin down.
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"
)

// KeyValue is the unit of data flowing through a job.
type KeyValue struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Emitter receives pairs produced by map and reduce functions.
type Emitter func(kv KeyValue)

// MapFunc transforms one input pair into any number of intermediate pairs.
type MapFunc func(in KeyValue, emit Emitter) error

// ReduceFunc folds all values observed for one key into output pairs.
// Values arrive sorted, so reducers are deterministic.
type ReduceFunc func(key string, values []string, emit Emitter) error

// ErrBadJob reports a malformed job.
var ErrBadJob = errors.New("mapreduce: invalid job")

// Job describes one MapReduce computation.
type Job struct {
	// Name labels the job in errors and counters.
	Name string
	// Input is the full input split across mappers.
	Input []KeyValue
	// Map and Reduce define the computation. Reduce may be nil, in which
	// case the shuffled intermediate pairs are returned directly (a
	// map-only job).
	Map    MapFunc
	Reduce ReduceFunc
	// Combine optionally pre-folds map output per partition before the
	// shuffle, cutting shuffle volume for associative reductions.
	Combine ReduceFunc
	// NumReducers partitions the key space; 0 means one partition per
	// worker.
	NumReducers int
}

// Validate reports whether the job can run.
func (j *Job) Validate() error {
	if j == nil {
		return fmt.Errorf("%w: nil job", ErrBadJob)
	}
	if j.Map == nil {
		return fmt.Errorf("%w: job %q has no map function", ErrBadJob, j.Name)
	}
	if j.NumReducers < 0 {
		return fmt.Errorf("%w: job %q NumReducers=%d", ErrBadJob, j.Name, j.NumReducers)
	}
	return nil
}

// Counters accumulate named statistics during a run. Safe for concurrent
// use.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters creates an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Add increments the named counter by delta.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[name] += delta
}

// Get returns the value of the named counter.
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Result is the output of one job run.
type Result struct {
	// Output holds the final pairs sorted by key then value.
	Output []KeyValue
	// Counters holds run statistics: pairs mapped, shuffled, reduced.
	Counters *Counters
}

// Executor runs jobs. Implementations must produce identical Output for
// identical jobs.
type Executor interface {
	Run(ctx context.Context, job *Job) (*Result, error)
}

// Standard counter names shared by executors.
const (
	CounterMapIn      = "map.in"
	CounterMapOut     = "map.out"
	CounterCombineOut = "combine.out"
	CounterReduceKeys = "reduce.keys"
	CounterReduceOut  = "reduce.out"
	// Spill counters (the budgeted external-merge path only).
	CounterSpillRuns   = "spill.runs.written"
	CounterSpillBytes  = "spill.bytes"
	CounterSpillMerged = "spill.runs.merged"
)

// sortKVs orders pairs by key then value, the canonical output order. The
// (key, value) order is total up to exact duplicates, so any correct sort
// yields the same sequence.
func sortKVs(kvs []KeyValue) {
	slices.SortFunc(kvs, func(a, b KeyValue) int {
		if c := strings.Compare(a.Key, b.Key); c != 0 {
			return c
		}
		return strings.Compare(a.Value, b.Value)
	})
}

// groupByKey groups sorted pairs into (key, values) runs, preserving order.
// All value slices are windows into one shared slab, so grouping costs two
// allocations however many keys there are.
func groupByKey(kvs []KeyValue) []group {
	if len(kvs) == 0 {
		return nil
	}
	vals := make([]string, len(kvs))
	numGroups := 1
	for i, kv := range kvs {
		vals[i] = kv.Value
		if i > 0 && kv.Key != kvs[i-1].Key {
			numGroups++
		}
	}
	out := make([]group, 0, numGroups)
	for i := 0; i < len(kvs); {
		j := i
		for j < len(kvs) && kvs[j].Key == kvs[i].Key {
			j++
		}
		out = append(out, group{key: kvs[i].Key, values: vals[i:j:j]})
		i = j
	}
	return out
}

type group struct {
	key    string
	values []string
}

// reduceGroups applies fn to each group, emitting into out.
func reduceGroups(groups []group, fn ReduceFunc, counters *Counters, counterName string) ([]KeyValue, error) {
	var out []KeyValue
	emit := func(kv KeyValue) { out = append(out, kv) }
	for _, g := range groups {
		if err := fn(g.key, g.values, emit); err != nil {
			return nil, fmt.Errorf("reduce key %q: %w", g.key, err)
		}
	}
	if counters != nil {
		counters.Add(CounterReduceKeys, int64(len(groups)))
		counters.Add(counterName, int64(len(out)))
	}
	return out, nil
}

// fnv32 hashes a key for shuffle partitioning (FNV-1a).
func fnv32(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

// Partition returns the reduce partition for a key.
func Partition(key string, numReducers int) int {
	if numReducers <= 1 {
		return 0
	}
	return int(fnv32(key) % uint32(numReducers))
}

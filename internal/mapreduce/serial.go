package mapreduce

import (
	"context"
	"fmt"
)

// SerialExecutor runs jobs single-threaded; it defines the reference
// semantics the parallel and distributed executors must reproduce.
type SerialExecutor struct{}

var _ Executor = SerialExecutor{}

// Run implements Executor.
func (SerialExecutor) Run(ctx context.Context, job *Job) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	counters := NewCounters()

	var intermediate []KeyValue
	emit := func(kv KeyValue) { intermediate = append(intermediate, kv) }
	for i, in := range job.Input {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
		}
		if err := job.Map(in, emit); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q map record %d: %w", job.Name, i, err)
		}
	}
	counters.Add(CounterMapIn, int64(len(job.Input)))
	counters.Add(CounterMapOut, int64(len(intermediate)))

	sortKVs(intermediate)
	if job.Reduce == nil {
		return &Result{Output: intermediate, Counters: counters}, nil
	}
	out, err := reduceGroups(groupByKey(intermediate), job.Reduce, counters, CounterReduceOut)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}
	sortKVs(out)
	return &Result{Output: out, Counters: counters}, nil
}

// Chain runs jobs sequentially on exec, feeding each job's output into the
// next job's input. The stage function, if non-nil, is called between jobs
// with the stage index and output and may transform it (e.g. re-key). It
// returns the final result.
func Chain(ctx context.Context, exec Executor, jobs []*Job, stage func(i int, out []KeyValue) []KeyValue) (*Result, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("%w: empty chain", ErrBadJob)
	}
	var res *Result
	for i, job := range jobs {
		if i > 0 {
			in := res.Output
			if stage != nil {
				in = stage(i-1, in)
			}
			job.Input = in
		}
		var err error
		res, err = exec.Run(ctx, job)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"evmatching/internal/spill"
	"evmatching/internal/spill/spilltest"
)

// spillLines builds enough word-count input that tiny budgets force many
// run files per worker.
func spillLines(n int) []string {
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf("alpha beta-%d gamma delta-%d alpha epsilon word%d", i%13, i%7, i%101)
	}
	return lines
}

// TestSpilledMatchesInMemory pins the tentpole invariant at the executor
// level: for any budget, the external-merge path produces byte-identical
// output to the unbudgeted shuffle, while actually spilling.
func TestSpilledMatchesInMemory(t *testing.T) {
	lines := spillLines(400)
	want, err := ParallelExecutor{Workers: 4}.Run(context.Background(), wordCountJob(lines))
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{1, 256, 8192} {
		for _, combine := range []bool{false, true} {
			t.Run(fmt.Sprintf("budget=%d combine=%v", budget, combine), func(t *testing.T) {
				job := wordCountJob(lines)
				if combine {
					job.Combine = sumCombiner
				}
				stats := &spill.Stats{}
				exec := ParallelExecutor{
					Workers:   4,
					MemBudget: budget,
					SpillDir:  t.TempDir(),
					Stats:     stats,
				}
				got, err := exec.Run(context.Background(), job)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Output, want.Output) {
					t.Fatalf("spilled output differs from in-memory (budget=%d)", budget)
				}
				if got.Counters.Get(CounterSpillRuns) == 0 {
					t.Fatal("budget never forced a run flush; test exercises nothing")
				}
				if got.Counters.Get(CounterSpillMerged) == 0 || got.Counters.Get(CounterSpillBytes) == 0 {
					t.Fatalf("spill counters incomplete: %+v", got.Counters.Snapshot())
				}
				sn := stats.Snapshot()
				if !sn.Spilled() || sn.RunsWritten == 0 || sn.RunsMerged == 0 {
					t.Fatalf("stats not accumulated: %+v", sn)
				}
			})
		}
	}
}

// TestSpilledSortOnlyJob covers the Reduce==nil, Combine!=nil shape, which
// shuffles (and therefore spills) but returns merged pairs directly. A
// combiner's partial sums already depend on grouping — serial folds once,
// parallel folds per worker — so the contract for this shape is semantic:
// re-folding the partials per key must agree with the in-memory run, and
// the stream must come back globally sorted.
func TestSpilledSortOnlyJob(t *testing.T) {
	refold := func(kvs []KeyValue) map[string]int {
		sums := make(map[string]int)
		for _, kv := range kvs {
			n, err := strconv.Atoi(kv.Value)
			if err != nil {
				t.Fatalf("non-numeric partial %q: %v", kv.Value, err)
			}
			sums[kv.Key] += n
		}
		return sums
	}
	job := wordCountJob(spillLines(200))
	job.Reduce = nil
	job.Combine = sumCombiner
	want, err := ParallelExecutor{Workers: 3}.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	job2 := wordCountJob(spillLines(200))
	job2.Reduce = nil
	job2.Combine = sumCombiner
	got, err := ParallelExecutor{Workers: 3, MemBudget: 64, SpillDir: t.TempDir()}.Run(context.Background(), job2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refold(got.Output), refold(want.Output)) {
		t.Fatal("spilled sort-only partials do not re-fold to the in-memory totals")
	}
	if !sortedKVs(got.Output) {
		t.Fatal("spilled sort-only output not in (key, value) order")
	}
	if got.Counters.Get(CounterSpillRuns) == 0 {
		t.Fatal("sort-only job never spilled")
	}
}

// sortedKVs reports whether kvs is in canonical (key, value) order.
func sortedKVs(kvs []KeyValue) bool {
	for i := 1; i < len(kvs); i++ {
		a, b := kvs[i-1], kvs[i]
		if a.Key > b.Key || (a.Key == b.Key && a.Value > b.Value) {
			return false
		}
	}
	return true
}

// TestSpilledENOSPC degrades with a wrapped error when the disk fills
// mid-flush — never a panic, never silently-wrong output.
func TestSpilledENOSPC(t *testing.T) {
	fs := spilltest.NewMemFS()
	fs.Capacity = 512
	exec := ParallelExecutor{Workers: 2, MemBudget: 32, FS: fs}
	_, err := exec.Run(context.Background(), wordCountJob(spillLines(300)))
	if err == nil {
		t.Fatal("full disk produced no error")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want wrapped ENOSPC, got %v", err)
	}
}

// TestSpilledShortWrite covers an n < len(p), err == nil device: the run
// writer must detect it rather than persist a truncated run.
func TestSpilledShortWrite(t *testing.T) {
	fs := spilltest.NewMemFS()
	fs.OnWrite = func(name string, p []byte) (int, error, bool) {
		if strings.Contains(name, ".run") && len(p) > 1 {
			return len(p) / 2, nil, true
		}
		return 0, nil, false
	}
	exec := ParallelExecutor{Workers: 2, MemBudget: 32, FS: fs}
	_, err := exec.Run(context.Background(), wordCountJob(spillLines(300)))
	if err == nil {
		t.Fatal("short writes produced no error")
	}
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("want wrapped io.ErrShortWrite, got %v", err)
	}
}

// TestSpilledRunDeletedMidJob models the spill directory being destroyed
// between flush and merge (tmp reaper, operator cleanup): opening the run
// at reduce time fails and the job degrades with a wrapped error.
func TestSpilledRunDeletedMidJob(t *testing.T) {
	fs := spilltest.NewMemFS()
	fs.OnOpen = func(name string) error {
		if strings.Contains(name, ".run") {
			return fmt.Errorf("open %s: %w", name, syscall.ENOENT)
		}
		return nil
	}
	exec := ParallelExecutor{Workers: 2, MemBudget: 32, FS: fs}
	_, err := exec.Run(context.Background(), wordCountJob(spillLines(300)))
	if err == nil {
		t.Fatal("deleted runs produced no error")
	}
	if !errors.Is(err, syscall.ENOENT) {
		t.Fatalf("want wrapped ENOENT, got %v", err)
	}
}

// TestSpilledSyncFailure propagates fsync errors from the durable run
// writer.
func TestSpilledSyncFailure(t *testing.T) {
	boom := errors.New("fsync lost the device")
	fs := spilltest.NewMemFS()
	fs.OnSync = func(name string) error {
		if strings.Contains(name, ".run") {
			return boom
		}
		return nil
	}
	exec := ParallelExecutor{Workers: 2, MemBudget: 32, FS: fs}
	_, err := exec.Run(context.Background(), wordCountJob(spillLines(300)))
	if !errors.Is(err, boom) {
		t.Fatalf("want wrapped sync error, got %v", err)
	}
}

package mapreduce_test

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"evmatching/internal/cluster"
	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/mapreduce"
	"evmatching/internal/mrtest"
)

func TestSerialExecutorConformance(t *testing.T) {
	mrtest.Conformance(t, mapreduce.SerialExecutor{})
}

func TestParallelExecutorConformance(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			mrtest.Conformance(t, mapreduce.ParallelExecutor{Workers: workers})
		})
	}
}

// The budgeted external-merge shuffle must satisfy the same executor
// contract bit for bit, even at a one-byte budget (spill on every record).
func TestSpilledParallelExecutorConformance(t *testing.T) {
	for _, budget := range []int64{1, 512} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			mrtest.Conformance(t, mapreduce.ParallelExecutor{
				Workers:   3,
				MemBudget: budget,
				SpillDir:  t.TempDir(),
			})
		})
	}
}

// startClusterExecutor boots a coordinator with in-process workers over real
// localhost RPC and returns the adapted executor. This test package sits
// outside the import cycle, so it can exercise the distributed executor
// against the same conformance contract as the in-process ones.
func startClusterExecutor(t *testing.T, nWorkers int) *cluster.Executor {
	t.Helper()
	mrtest.CheckGoroutines(t)
	dir := t.TempDir()
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{Dir: dir, TaskTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := coord.Serve(lis)
	reg := cluster.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < nWorkers; i++ {
		w, err := cluster.NewWorker(addr, cluster.WorkerConfig{
			ID:       fmt.Sprintf("conf-w%d", i),
			Dir:      dir,
			Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		_ = coord.Close()
		cancel()
		wg.Wait()
	})
	exec, err := cluster.NewExecutor(coord, reg)
	if err != nil {
		t.Fatal(err)
	}
	return exec
}

func TestClusterExecutorConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster conformance skipped in -short")
	}
	mrtest.Conformance(t, startClusterExecutor(t, 3))
}

// randomJob builds a seeded random word-count job: random line count, random
// vocabulary, random words per line, random reducer count, and occasionally
// no reducer at all (map+shuffle only). Rebuilding from the same rng state
// yields the same job, so each executor sees an identical input.
func randomJob(rng *rand.Rand) *mapreduce.Job {
	fns := mrtest.StandardFuncs()
	vocab := rng.Intn(15) + 1
	lines := make([]string, rng.Intn(30))
	for i := range lines {
		words := make([]byte, 0, 16)
		for w, n := 0, rng.Intn(9); w < n; w++ {
			if w > 0 {
				words = append(words, ' ')
			}
			words = append(words, byte('a'+rng.Intn(vocab)))
		}
		lines[i] = string(words)
	}
	input := make([]mapreduce.KeyValue, len(lines))
	for i, l := range lines {
		input[i] = mapreduce.KeyValue{Key: fmt.Sprintf("%d", i), Value: l}
	}
	job := &mapreduce.Job{
		Name:        "prop-wc",
		Input:       input,
		Map:         fns.WordCountMap,
		Reduce:      fns.SumReduce,
		NumReducers: rng.Intn(7),
	}
	if rng.Intn(5) == 0 {
		job.Reduce = nil
	}
	return job
}

// TestExecutorPropertyRandomJobs is the property half of the conformance
// suite at the engine level: for seeded random jobs, every executor — serial,
// parallel at several widths, and the distributed cluster — must produce
// output identical to the serial reference.
func TestExecutorPropertyRandomJobs(t *testing.T) {
	iters := 12
	if testing.Short() {
		iters = 4
	}
	clusterExec := startClusterExecutor(t, 3)
	execs := map[string]mapreduce.Executor{
		"parallel-1": mapreduce.ParallelExecutor{Workers: 1},
		"parallel-3": mapreduce.ParallelExecutor{Workers: 3},
		"parallel-8": mapreduce.ParallelExecutor{Workers: 8},
		"cluster":    clusterExec,
	}
	ctx := context.Background()
	for seed := int64(1); seed <= int64(iters); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			want, err := mapreduce.SerialExecutor{}.Run(ctx, randomJob(rand.New(rand.NewSource(seed))))
			if err != nil {
				t.Fatalf("serial reference: %v", err)
			}
			for name, exec := range execs {
				name, exec := name, exec
				if testing.Short() && name == "cluster" {
					continue
				}
				got, err := exec.Run(ctx, randomJob(rand.New(rand.NewSource(seed))))
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !reflect.DeepEqual(got.Output, want.Output) {
					t.Errorf("%s output differs from serial reference:\ngot  %v\nwant %v", name, got.Output, want.Output)
				}
			}
		})
	}
}

// matchFingerprint runs the full EV-Matching pipeline over ds with the given
// executor and returns the report fingerprint.
func matchFingerprint(t *testing.T, ds *dataset.Dataset, exec mapreduce.Executor) string {
	t.Helper()
	m, err := core.New(ds, core.Options{Mode: core.ModeParallel, Executor: exec})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.MatchAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep.Fingerprint()
}

// TestPipelineFingerprintAcrossExecutors is the property suite at the
// pipeline level: for seeded random worlds — ideal single-tick zones and the
// practical vague-zone setting — the complete matching pipeline must produce
// byte-identical Report fingerprints no matter which executor carries it.
func TestPipelineFingerprintAcrossExecutors(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline property suite skipped in -short")
	}
	seeds := []int64{2, 11, 29}
	for _, seed := range seeds {
		seed := seed
		for _, practical := range []bool{false, true} {
			practical := practical
			name := fmt.Sprintf("seed=%d/practical=%v", seed, practical)
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				cfg := dataset.DefaultConfig()
				if practical {
					cfg = cfg.Practical()
				}
				cfg.Seed = seed
				cfg.NumPersons = 16 + rng.Intn(17)
				cfg.Density = 4 + float64(rng.Intn(5))
				cfg.NumWindows = 6 + rng.Intn(7)
				ds, err := dataset.Generate(cfg)
				if err != nil {
					t.Fatal(err)
				}

				want := matchFingerprint(t, ds, mapreduce.SerialExecutor{})
				if got := matchFingerprint(t, ds, mapreduce.ParallelExecutor{Workers: 3}); got != want {
					t.Errorf("parallel fingerprint differs from serial:\ngot  %q\nwant %q", got, want)
				}
				if got := matchFingerprint(t, ds, startClusterExecutor(t, 3)); got != want {
					t.Errorf("cluster fingerprint differs from serial:\ngot  %q\nwant %q", got, want)
				}
			})
		}
	}
}

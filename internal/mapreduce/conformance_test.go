package mapreduce_test

import (
	"testing"

	"evmatching/internal/mapreduce"
	"evmatching/internal/mrtest"
)

func TestSerialExecutorConformance(t *testing.T) {
	mrtest.Conformance(t, mapreduce.SerialExecutor{})
}

func TestParallelExecutorConformance(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		t.Run("workers="+string(rune('0'+workers)), func(t *testing.T) {
			mrtest.Conformance(t, mapreduce.ParallelExecutor{Workers: workers})
		})
	}
}

package mapreduce

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"

	"evmatching/internal/spill"
)

// kvOverhead approximates per-record bookkeeping bytes beyond the raw key
// and value payloads (string headers, slice growth slack).
const kvOverhead = 32

// kvCost is the byte charge for buffering one pair in the shuffle.
func kvCost(kv KeyValue) int64 { return int64(len(kv.Key)+len(kv.Value)) + kvOverhead }

// spillWorker is one mapper's shuffle state on the budgeted path: the
// in-memory tail per partition plus the runs already flushed to disk. Each
// worker owns its state exclusively until the map phase joins, so flushes
// need no locking.
type spillWorker struct {
	buckets [][]KeyValue // [reducer] in-memory tail, unsorted
	runs    [][]string   // [reducer] flushed run file paths, in flush order
	bytes   int64        // charged cost of everything in buckets
	seq     int          // run file sequence number
	err     error        // sticky flush failure; emit becomes a no-op after
}

// runSpilled is the external-merge variant of the partitioned shuffle:
// identical map and partition logic, but each mapper flushes its buckets as
// sorted run files whenever its share of MemBudget is exceeded, and each
// reducer k-way merges its runs with the in-memory tails. Because runs and
// tails are sorted by (key, value) — a total order up to exact duplicates —
// the merged stream equals sortKVs over the concatenation, so the output
// (and every fingerprint downstream) is byte-identical to the in-memory
// path.
func (p ParallelExecutor) runSpilled(ctx context.Context, job *Job, workers, numReducers int, counters *Counters) (*Result, error) {
	fsys := p.FS
	if fsys == nil {
		fsys = spill.OS{}
	}
	dir, err := fsys.MkdirTemp(p.SpillDir, "evspill-*")
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: create spill dir: %w", job.Name, err)
	}
	defer fsys.RemoveAll(dir)

	// Each mapper polices an equal share of the budget; the floor of one
	// byte keeps a degenerate budget functional (spill on every record)
	// rather than dividing to zero.
	share := p.MemBudget / int64(workers)
	if share <= 0 {
		share = 1
	}

	states := make([]*spillWorker, workers)
	mapErr := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(job.Input) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(job.Input) {
			break
		}
		hi := lo + chunk
		if hi > len(job.Input) {
			hi = len(job.Input)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			st := &spillWorker{
				buckets: make([][]KeyValue, numReducers),
				runs:    make([][]string, numReducers),
			}
			var emitted int64
			emit := func(kv KeyValue) {
				if st.err != nil {
					return
				}
				r := Partition(kv.Key, numReducers)
				st.buckets[r] = append(st.buckets[r], kv)
				st.bytes += kvCost(kv)
				emitted++
				if st.bytes > share {
					st.err = p.flushWorker(fsys, dir, w, st, job.Combine, counters)
				}
			}
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					mapErr[w] = err
					return
				}
				if err := job.Map(job.Input[i], emit); err != nil {
					mapErr[w] = fmt.Errorf("map record %d: %w", i, err)
					return
				}
				if st.err != nil {
					mapErr[w] = st.err
					return
				}
			}
			counters.Add(CounterMapOut, emitted)
			// Pre-fold the in-memory tail like the unspilled path would;
			// flushed runs were combined at flush time. Splitting one
			// combine into several is equivalent to splitting across
			// workers, which the combiner contract already requires.
			if job.Combine != nil {
				var afterCombine int64
				for r := range st.buckets {
					combined, err := combineBucket(st.buckets[r], job.Combine)
					if err != nil {
						mapErr[w] = err
						return
					}
					st.buckets[r] = combined
					afterCombine += int64(len(combined))
				}
				counters.Add(CounterCombineOut, afterCombine)
			}
			states[w] = st
		}(w, lo, hi)
	}
	wg.Wait()
	counters.Add(CounterMapIn, int64(len(job.Input)))
	for w, err := range mapErr {
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %q worker %d: %w", job.Name, w, err)
		}
	}

	// Reduce phase: one goroutine per partition, each merging its run files
	// with the in-memory tails.
	reduceOut := make([][]KeyValue, numReducers)
	reduceErr := make([]error, numReducers)
	for r := 0; r < numReducers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				reduceErr[r] = err
				return
			}
			out, err := p.reduceSpilled(fsys, job, states, r, counters)
			if err != nil {
				reduceErr[r] = err
				return
			}
			reduceOut[r] = out
		}(r)
	}
	wg.Wait()
	for r, err := range reduceErr {
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %q reducer %d: %w", job.Name, r, err)
		}
	}
	var out []KeyValue
	for r := 0; r < numReducers; r++ {
		out = append(out, reduceOut[r]...)
	}
	sortKVs(out)
	return &Result{Output: out, Counters: counters}, nil
}

// flushWorker writes every non-empty bucket of st as one sorted
// (combiner-folded) run file and resets the in-memory state.
func (p ParallelExecutor) flushWorker(fsys spill.FS, dir string, w int, st *spillWorker, combine ReduceFunc, counters *Counters) error {
	for r := range st.buckets {
		b := st.buckets[r]
		if len(b) == 0 {
			continue
		}
		if combine != nil {
			combined, err := combineBucket(b, combine)
			if err != nil {
				return err
			}
			b = combined
		}
		// A combiner may emit values out of order within a key; the run
		// format requires full (key, value) order for the merge invariant.
		sortKVs(b)
		recs := make([]spill.Record, len(b))
		for i, kv := range b {
			recs[i] = spill.Record{Key: kv.Key, Value: kv.Value}
		}
		path := filepath.Join(dir, fmt.Sprintf("w%03d-r%03d-%05d.run", w, r, st.seq))
		st.seq++
		size, err := spill.WriteRun(fsys, path, recs)
		if err != nil {
			return fmt.Errorf("spill flush worker %d partition %d: %w", w, r, err)
		}
		st.runs[r] = append(st.runs[r], path)
		st.buckets[r] = nil
		counters.Add(CounterSpillRuns, 1)
		counters.Add(CounterSpillBytes, size)
		p.Stats.AddRunsWritten(1)
		p.Stats.AddBytesSpilled(size)
	}
	st.bytes = 0
	return nil
}

// reduceSpilled produces partition r's reduce output by merging the
// partition's run files with the workers' in-memory tails.
func (p ParallelExecutor) reduceSpilled(fsys spill.FS, job *Job, states []*spillWorker, r int, counters *Counters) ([]KeyValue, error) {
	var tail []KeyValue
	var runPaths []string
	for _, st := range states {
		if st == nil {
			continue
		}
		tail = append(tail, st.buckets[r]...)
		runPaths = append(runPaths, st.runs[r]...)
	}
	sortKVs(tail)

	// Nothing spilled for this partition: run the exact in-memory reduce.
	if len(runPaths) == 0 {
		if job.Reduce == nil {
			return tail, nil
		}
		return reduceGroups(groupByKey(tail), job.Reduce, counters, CounterReduceOut)
	}

	sources := make([]spill.Source, 0, len(runPaths)+1)
	var readers []*spill.RunReader
	defer func() {
		for _, rr := range readers {
			rr.Close()
		}
	}()
	for _, path := range runPaths {
		rr, err := spill.OpenRun(fsys, path)
		if err != nil {
			return nil, fmt.Errorf("partition %d: %w", r, err)
		}
		readers = append(readers, rr)
		sources = append(sources, rr)
	}
	recs := make([]spill.Record, len(tail))
	for i, kv := range tail {
		recs[i] = spill.Record{Key: kv.Key, Value: kv.Value}
	}
	sources = append(sources, spill.NewSliceSource(recs))
	counters.Add(CounterSpillMerged, int64(len(runPaths)))
	p.Stats.AddRunsMerged(int64(len(runPaths)))

	if job.Reduce == nil {
		var out []KeyValue
		if err := spill.MergeRuns(sources, func(rec spill.Record) error {
			out = append(out, KeyValue{Key: rec.Key, Value: rec.Value})
			return nil
		}); err != nil {
			return nil, fmt.Errorf("partition %d merge: %w", r, err)
		}
		return out, nil
	}

	// Streaming group-reduce: values accumulate per key and flush to the
	// reducer on each key change. Every group gets a fresh values slice —
	// reducers may retain what they are handed.
	var out []KeyValue
	emit := func(kv KeyValue) { out = append(out, kv) }
	var curKey string
	var curVals []string
	var groups int64
	pending := false
	reduceFlush := func() error {
		if !pending {
			return nil
		}
		groups++
		if err := job.Reduce(curKey, curVals, emit); err != nil {
			return fmt.Errorf("reduce key %q: %w", curKey, err)
		}
		curVals = nil
		pending = false
		return nil
	}
	if err := spill.MergeRuns(sources, func(rec spill.Record) error {
		if pending && rec.Key != curKey {
			if err := reduceFlush(); err != nil {
				return err
			}
		}
		curKey = rec.Key
		curVals = append(curVals, rec.Value)
		pending = true
		return nil
	}); err != nil {
		return nil, fmt.Errorf("partition %d merge: %w", r, err)
	}
	if err := reduceFlush(); err != nil {
		return nil, fmt.Errorf("partition %d: %w", r, err)
	}
	counters.Add(CounterReduceKeys, groups)
	counters.Add(CounterReduceOut, int64(len(out)))
	return out, nil
}

package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// wordCountJob builds the canonical word-count job over the given lines.
func wordCountJob(lines []string) *Job {
	input := make([]KeyValue, len(lines))
	for i, l := range lines {
		input[i] = KeyValue{Key: strconv.Itoa(i), Value: l}
	}
	return &Job{
		Name:  "wordcount",
		Input: input,
		Map: func(in KeyValue, emit Emitter) error {
			for _, w := range strings.Fields(in.Value) {
				emit(KeyValue{Key: w, Value: "1"})
			}
			return nil
		},
		Reduce: func(key string, values []string, emit Emitter) error {
			sum := 0
			for _, v := range values {
				n, err := strconv.Atoi(v)
				if err != nil {
					return err
				}
				sum += n
			}
			emit(KeyValue{Key: key, Value: strconv.Itoa(sum)})
			return nil
		},
	}
}

func sumCombiner(key string, values []string, emit Emitter) error {
	sum := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		sum += n
	}
	emit(KeyValue{Key: key, Value: strconv.Itoa(sum)})
	return nil
}

func TestSerialWordCount(t *testing.T) {
	job := wordCountJob([]string{"a b a", "b c", "a"})
	res, err := SerialExecutor{}.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	want := []KeyValue{{Key: "a", Value: "3"}, {Key: "b", Value: "2"}, {Key: "c", Value: "1"}}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("Output = %v, want %v", res.Output, want)
	}
	if res.Counters.Get(CounterMapIn) != 3 {
		t.Errorf("map.in = %d", res.Counters.Get(CounterMapIn))
	}
	if res.Counters.Get(CounterMapOut) != 6 {
		t.Errorf("map.out = %d", res.Counters.Get(CounterMapOut))
	}
	if res.Counters.Get(CounterReduceKeys) != 3 {
		t.Errorf("reduce.keys = %d", res.Counters.Get(CounterReduceKeys))
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	words := []string{"alpha", "beta", "gamma", "delta", "eps"}
	lines := make([]string, 200)
	for i := range lines {
		n := 1 + rng.Intn(10)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = words[rng.Intn(len(words))]
		}
		lines[i] = strings.Join(parts, " ")
	}
	serial, err := SerialExecutor{}.Run(context.Background(), wordCountJob(lines))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, reducers := range []int{0, 1, 3, 7} {
			job := wordCountJob(lines)
			job.NumReducers = reducers
			par, err := ParallelExecutor{Workers: workers}.Run(context.Background(), job)
			if err != nil {
				t.Fatalf("workers=%d reducers=%d: %v", workers, reducers, err)
			}
			if !reflect.DeepEqual(par.Output, serial.Output) {
				t.Fatalf("workers=%d reducers=%d output differs from serial", workers, reducers)
			}
		}
	}
}

func TestParallelWithCombinerMatchesSerial(t *testing.T) {
	lines := []string{"x y x", "y z z z", "x", "w w w w"}
	serial, err := SerialExecutor{}.Run(context.Background(), wordCountJob(lines))
	if err != nil {
		t.Fatal(err)
	}
	job := wordCountJob(lines)
	job.Combine = sumCombiner
	job.NumReducers = 3
	par, err := ParallelExecutor{Workers: 4}.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.Output, serial.Output) {
		t.Errorf("combined output differs: %v vs %v", par.Output, serial.Output)
	}
	if par.Counters.Get(CounterCombineOut) == 0 {
		t.Error("combiner did not run")
	}
}

func TestMapOnlyJob(t *testing.T) {
	job := &Job{
		Name:  "maponly",
		Input: []KeyValue{{Key: "1", Value: "b a"}},
		Map: func(in KeyValue, emit Emitter) error {
			for _, w := range strings.Fields(in.Value) {
				emit(KeyValue{Key: w, Value: in.Key})
			}
			return nil
		},
	}
	for name, exec := range map[string]Executor{
		"serial":   SerialExecutor{},
		"parallel": ParallelExecutor{Workers: 3},
	} {
		res, err := exec.Run(context.Background(), job)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := []KeyValue{{Key: "a", Value: "1"}, {Key: "b", Value: "1"}}
		if !reflect.DeepEqual(res.Output, want) {
			t.Errorf("%s: Output = %v, want %v", name, res.Output, want)
		}
	}
}

func TestJobValidation(t *testing.T) {
	var nilJob *Job
	if err := nilJob.Validate(); err == nil {
		t.Error("want error for nil job")
	}
	if err := (&Job{Name: "x"}).Validate(); err == nil {
		t.Error("want error for missing map func")
	}
	if err := (&Job{Name: "x", Map: func(KeyValue, Emitter) error { return nil }, NumReducers: -1}).Validate(); err == nil {
		t.Error("want error for negative reducers")
	}
	if _, err := (SerialExecutor{}).Run(context.Background(), &Job{}); err == nil {
		t.Error("Run should reject invalid job")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	job := &Job{
		Name:  "failing",
		Input: []KeyValue{{Key: "k", Value: "v"}},
		Map:   func(KeyValue, Emitter) error { return boom },
	}
	for name, exec := range map[string]Executor{
		"serial":   SerialExecutor{},
		"parallel": ParallelExecutor{Workers: 2},
	} {
		if _, err := exec.Run(context.Background(), job); !errors.Is(err, boom) {
			t.Errorf("%s: err = %v, want wrapped boom", name, err)
		}
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	boom := errors.New("reduce boom")
	job := wordCountJob([]string{"a"})
	job.Reduce = func(string, []string, Emitter) error { return boom }
	for name, exec := range map[string]Executor{
		"serial":   SerialExecutor{},
		"parallel": ParallelExecutor{Workers: 2},
	} {
		if _, err := exec.Run(context.Background(), job); !errors.Is(err, boom) {
			t.Errorf("%s: err = %v, want wrapped boom", name, err)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job := wordCountJob([]string{"a b", "c d"})
	if _, err := (SerialExecutor{}).Run(ctx, job); !errors.Is(err, context.Canceled) {
		t.Errorf("serial err = %v", err)
	}
	if _, err := (ParallelExecutor{Workers: 2}).Run(ctx, job); !errors.Is(err, context.Canceled) {
		t.Errorf("parallel err = %v", err)
	}
}

func TestChain(t *testing.T) {
	// Job 1: word count. Job 2: bucket words by their count.
	j1 := wordCountJob([]string{"a b a", "b c a"})
	j2 := &Job{
		Name: "invert",
		Map: func(in KeyValue, emit Emitter) error {
			emit(KeyValue{Key: in.Value, Value: in.Key})
			return nil
		},
		Reduce: func(key string, values []string, emit Emitter) error {
			emit(KeyValue{Key: key, Value: strings.Join(values, ",")})
			return nil
		},
	}
	res, err := Chain(context.Background(), SerialExecutor{}, []*Job{j1, j2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []KeyValue{{Key: "1", Value: "c"}, {Key: "2", Value: "b"}, {Key: "3", Value: "a"}}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("Chain output = %v, want %v", res.Output, want)
	}
	if _, err := Chain(context.Background(), SerialExecutor{}, nil, nil); err == nil {
		t.Error("want error for empty chain")
	}
}

func TestChainStageTransform(t *testing.T) {
	j1 := wordCountJob([]string{"a a b"})
	j2 := &Job{
		Name: "passthrough",
		Map: func(in KeyValue, emit Emitter) error {
			emit(in)
			return nil
		},
	}
	res, err := Chain(context.Background(), SerialExecutor{}, []*Job{j1, j2},
		func(i int, out []KeyValue) []KeyValue {
			// Keep only counts greater than one.
			var kept []KeyValue
			for _, kv := range out {
				if kv.Value != "1" {
					kept = append(kept, kv)
				}
			}
			return kept
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0].Key != "a" {
		t.Errorf("Output = %v", res.Output)
	}
}

func TestPartitionStableAndInRange(t *testing.T) {
	f := func(key string, n uint8) bool {
		reducers := int(n%16) + 1
		p := Partition(key, reducers)
		return p >= 0 && p < reducers && p == Partition(key, reducers)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Partition("anything", 0) != 0 || Partition("anything", 1) != 0 {
		t.Error("degenerate reducer counts must map to partition 0")
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("x", 2)
	c.Add("x", 3)
	if c.Get("x") != 5 || c.Get("y") != 0 {
		t.Errorf("counters: x=%d y=%d", c.Get("x"), c.Get("y"))
	}
	snap := c.Snapshot()
	snap["x"] = 99
	if c.Get("x") != 5 {
		t.Error("Snapshot aliases internal map")
	}
}

func TestParallelEquivalenceProperty(t *testing.T) {
	// Random jobs over a small key alphabet: parallel output must always
	// equal serial output.
	f := func(seed int64, workerSel, reducerSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		lines := make([]string, n)
		for i := range lines {
			k := rng.Intn(5)
			parts := make([]string, k)
			for j := range parts {
				parts[j] = fmt.Sprintf("w%d", rng.Intn(8))
			}
			lines[i] = strings.Join(parts, " ")
		}
		serial, err := SerialExecutor{}.Run(context.Background(), wordCountJob(lines))
		if err != nil {
			return false
		}
		job := wordCountJob(lines)
		job.NumReducers = int(reducerSel % 5)
		par, err := ParallelExecutor{Workers: int(workerSel%7) + 1}.Run(context.Background(), job)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(serial.Output, par.Output)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

package mapreduce

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"evmatching/internal/spill"
)

// ParallelExecutor runs jobs over a pool of goroutine workers with a
// hash-partitioned in-memory shuffle, the in-process equivalent of the
// paper's Spark deployment. With MemBudget set, oversized shuffles spill
// to sorted temp-file runs and k-way merge at reduce time (DESIGN.md §14),
// producing byte-identical output to the in-memory path.
type ParallelExecutor struct {
	// Workers is the mapper/reducer pool size; 0 means GOMAXPROCS.
	Workers int
	// MemBudget caps the bytes of buffered shuffle state across all
	// mappers; 0 disables spilling. Each mapper gets an equal share and
	// flushes its partition buckets as sorted runs when it exceeds it.
	MemBudget int64
	// SpillDir is where run files go; empty means the OS temp directory.
	SpillDir string
	// Stats, when non-nil, accumulates spill counters across jobs.
	Stats *spill.Stats
	// FS overrides the filesystem for tests; nil means the real one.
	FS spill.FS
}

var _ Executor = ParallelExecutor{}

// Run implements Executor.
func (p ParallelExecutor) Run(ctx context.Context, job *Job) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	numReducers := job.NumReducers
	if numReducers <= 0 {
		numReducers = workers
	}
	counters := NewCounters()

	// Map-only jobs (no reduce, no combine) skip the shuffle machinery: no
	// per-reducer partitioning and no per-bucket pre-sort, just one worker
	// slice each and a single global sort. The output equals the partitioned
	// path's exactly — sortKVs orders by (key, value), which determines the
	// final sequence regardless of how records were bucketed.
	if job.Reduce == nil && job.Combine == nil {
		return p.runMapOnly(ctx, job, workers, counters)
	}

	// Budgeted shuffles take the external-merge path: same map/partition
	// logic, but buckets flush to sorted run files under memory pressure.
	if p.MemBudget > 0 {
		return p.runSpilled(ctx, job, workers, numReducers, counters)
	}

	// Map phase: each worker maps a contiguous chunk of the input into
	// per-reducer buckets, optionally pre-folding with the combiner.
	buckets := make([][][]KeyValue, workers) // [worker][reducer][]kv
	mapErr := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(job.Input) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(job.Input) {
			break
		}
		hi := lo + chunk
		if hi > len(job.Input) {
			hi = len(job.Input)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			local := make([][]KeyValue, numReducers)
			emit := func(kv KeyValue) {
				r := Partition(kv.Key, numReducers)
				local[r] = append(local[r], kv)
			}
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					mapErr[w] = err
					return
				}
				if err := job.Map(job.Input[i], emit); err != nil {
					mapErr[w] = fmt.Errorf("map record %d: %w", i, err)
					return
				}
			}
			var emitted int64
			for _, b := range local {
				emitted += int64(len(b))
			}
			counters.Add(CounterMapOut, emitted)
			if job.Combine != nil {
				for r := range local {
					combined, err := combineBucket(local[r], job.Combine)
					if err != nil {
						mapErr[w] = err
						return
					}
					local[r] = combined
				}
				var afterCombine int64
				for _, b := range local {
					afterCombine += int64(len(b))
				}
				counters.Add(CounterCombineOut, afterCombine)
			}
			buckets[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	counters.Add(CounterMapIn, int64(len(job.Input)))
	for w, err := range mapErr {
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %q worker %d: %w", job.Name, w, err)
		}
	}

	// Shuffle: concatenate each reducer's buckets from every mapper.
	shuffled := make([][]KeyValue, numReducers)
	for r := 0; r < numReducers; r++ {
		for w := 0; w < workers; w++ {
			if buckets[w] != nil {
				shuffled[r] = append(shuffled[r], buckets[w][r]...)
			}
		}
		sortKVs(shuffled[r])
	}
	if job.Reduce == nil {
		var out []KeyValue
		for r := 0; r < numReducers; r++ {
			out = append(out, shuffled[r]...)
		}
		sortKVs(out)
		return &Result{Output: out, Counters: counters}, nil
	}

	// Reduce phase: one goroutine per partition.
	reduceOut := make([][]KeyValue, numReducers)
	reduceErr := make([]error, numReducers)
	for r := 0; r < numReducers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				reduceErr[r] = err
				return
			}
			out, err := reduceGroups(groupByKey(shuffled[r]), job.Reduce, counters, CounterReduceOut)
			if err != nil {
				reduceErr[r] = err
				return
			}
			reduceOut[r] = out
		}(r)
	}
	wg.Wait()
	for r, err := range reduceErr {
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %q reducer %d: %w", job.Name, r, err)
		}
	}
	var out []KeyValue
	for r := 0; r < numReducers; r++ {
		out = append(out, reduceOut[r]...)
	}
	sortKVs(out)
	return &Result{Output: out, Counters: counters}, nil
}

// runMapOnly is the fast path for jobs with neither reducer nor combiner.
func (p ParallelExecutor) runMapOnly(ctx context.Context, job *Job, workers int, counters *Counters) (*Result, error) {
	locals := make([][]KeyValue, workers)
	mapErr := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(job.Input) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(job.Input) {
			break
		}
		hi := lo + chunk
		if hi > len(job.Input) {
			hi = len(job.Input)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var local []KeyValue
			emit := func(kv KeyValue) { local = append(local, kv) }
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					mapErr[w] = err
					return
				}
				if err := job.Map(job.Input[i], emit); err != nil {
					mapErr[w] = fmt.Errorf("map record %d: %w", i, err)
					return
				}
			}
			counters.Add(CounterMapOut, int64(len(local)))
			locals[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	counters.Add(CounterMapIn, int64(len(job.Input)))
	for w, err := range mapErr {
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %q worker %d: %w", job.Name, w, err)
		}
	}
	var out []KeyValue
	for _, local := range locals {
		out = append(out, local...)
	}
	sortKVs(out)
	return &Result{Output: out, Counters: counters}, nil
}

// combineBucket groups one mapper-local bucket by key and applies the
// combiner.
func combineBucket(kvs []KeyValue, combine ReduceFunc) ([]KeyValue, error) {
	sortKVs(kvs)
	var out []KeyValue
	emit := func(kv KeyValue) { out = append(out, kv) }
	for _, g := range groupByKey(kvs) {
		if err := combine(g.key, g.values, emit); err != nil {
			return nil, fmt.Errorf("combine key %q: %w", g.key, err)
		}
	}
	return out, nil
}

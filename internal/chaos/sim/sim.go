// Package sim executes the full SS pipeline (split → filter → refine) on a
// real coordinator/worker cluster under seeded fault schedules and checks
// that the final Report.Fingerprint is byte-identical to the fault-free
// baseline. One Run covers many schedules: the dataset, targets, and
// matching options stay fixed while the fault schedule (and the
// coordinator's recovery jitter) varies per schedule seed, so the harness
// demonstrates that crashes, stalls, lost/duplicated results, and heartbeat
// loss never change what EV-Matching computes — only what it costs.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"evmatching/internal/chaos"
	"evmatching/internal/cluster"
	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/ids"
	"evmatching/internal/mapreduce"
	"evmatching/internal/mrtest"
)

// Config parameterizes one simulation run.
type Config struct {
	// Seed determines everything: the dataset, the targets, the matching
	// randomization, and (combined with the schedule index) every fault
	// decision. Equal configs produce equal Result.Mismatches/Failures.
	Seed int64
	// Schedules is how many fault schedules to run; 0 means 50.
	Schedules int
	// Workers is the cluster size per schedule; 0 means 3.
	Workers int
	// Faults shapes the injected fault distribution; the zero value injects
	// nothing (useful to smoke-test the harness itself).
	Faults chaos.Config
	// Dataset size knobs; zeros mean 24 persons / 6 density / 8 windows.
	Persons int
	Density float64
	Windows int
	// Targets is how many EIDs to match; 0 means 5.
	Targets int
	// BatchSize sets Options.BatchSize for every pipeline run: how many
	// scenarios or assignments one V-stage map task owns. 0 keeps the
	// auto-sized default; a small explicit value forces multi-item batches so
	// fault schedules exercise whole-batch re-execution after a mid-batch
	// crash.
	BatchSize int
	// Practical generates the vague-zone practical world instead of the
	// ideal one.
	Practical bool
}

func (c *Config) normalize() {
	if c.Schedules == 0 {
		c.Schedules = 50
	}
	if c.Workers == 0 {
		c.Workers = 3
	}
	if c.Persons == 0 {
		c.Persons = 24
	}
	if c.Density == 0 {
		c.Density = 6
	}
	if c.Windows == 0 {
		c.Windows = 8
	}
	if c.Targets == 0 {
		c.Targets = 5
	}
}

// Result aggregates a simulation run. The pipeline outcome (baseline
// fingerprint, mismatches, failures, leaks) is reproducible from the seed;
// the cost counters (Stats, Fallbacks) depend on real scheduling timing and
// vary between runs — they report how much recovery machinery exercised, not
// what was computed.
type Result struct {
	// Schedules is how many fault schedules ran.
	Schedules int
	// BaselineFingerprint is the fault-free serial run's fingerprint.
	BaselineFingerprint string
	// Mismatches lists the schedule indices whose fingerprint diverged.
	Mismatches []int
	// Failures lists per-schedule errors ("schedule 12: ...").
	Failures []string
	// Leaks lists goroutines schedules left behind.
	Leaks []string
	// Stats sums the coordinators' fault-recovery counters.
	Stats cluster.Stats
	// Fallbacks counts jobs degraded to the in-process serial path.
	Fallbacks int64
}

// OK reports whether every schedule reproduced the baseline cleanly.
func (r *Result) OK() bool {
	return len(r.Mismatches) == 0 && len(r.Failures) == 0 && len(r.Leaks) == 0
}

// Run executes cfg.Schedules fault schedules and compares each outcome to
// the fault-free baseline.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg.normalize()
	dsCfg := dataset.DefaultConfig()
	if cfg.Practical {
		dsCfg = dsCfg.Practical()
	}
	dsCfg.Seed = cfg.Seed
	dsCfg.NumPersons = cfg.Persons
	dsCfg.Density = cfg.Density
	dsCfg.NumWindows = cfg.Windows
	ds, err := dataset.Generate(dsCfg)
	if err != nil {
		return nil, fmt.Errorf("sim: generate dataset: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	targets := ds.SampleEIDs(cfg.Targets, rng)

	// Fault-free baseline on the serial reference executor.
	base, err := matchOnce(ctx, ds, targets, cfg.Seed, cfg.BatchSize, mapreduce.SerialExecutor{})
	if err != nil {
		return nil, fmt.Errorf("sim: baseline: %w", err)
	}

	res := &Result{Schedules: cfg.Schedules, BaselineFingerprint: base}
	for i := 0; i < cfg.Schedules; i++ {
		schedSeed := cfg.Seed*1_000_003 + int64(i) + 1
		fp, stats, fallbacks, leaked, err := runSchedule(ctx, ds, targets, cfg, i, schedSeed)
		res.Stats = res.Stats.Add(stats)
		res.Fallbacks += fallbacks
		res.Leaks = append(res.Leaks, leaked...)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("schedule %d: %v", i, err))
			continue
		}
		if fp != base {
			res.Mismatches = append(res.Mismatches, i)
		}
	}
	return res, nil
}

// runSchedule boots a fresh cluster, injects the schedule's faults, runs the
// full pipeline, and tears everything down, checking for leaked goroutines.
func runSchedule(ctx context.Context, ds *dataset.Dataset, targets []ids.EID, cfg Config, sched int, schedSeed int64) (fp string, stats cluster.Stats, fallbacks int64, leaked []string, err error) {
	snap := mrtest.TakeLeakSnapshot()
	dir, err := os.MkdirTemp("", "evsim-")
	if err != nil {
		return "", stats, 0, nil, err
	}
	defer os.RemoveAll(dir)

	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Dir:              dir,
		TaskTimeout:      200 * time.Millisecond,
		HeartbeatTimeout: 100 * time.Millisecond,
		RetryBase:        5 * time.Millisecond,
		RetryMax:         80 * time.Millisecond,
		SpeculativeAfter: 40 * time.Millisecond,
		PoolTimeout:      time.Second,
		Seed:             schedSeed,
	})
	if err != nil {
		return "", stats, 0, nil, err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", stats, 0, nil, err
	}
	addr := coord.Serve(lis)
	inj, err := chaos.NewInjector(schedSeed, cfg.Faults)
	if err != nil {
		_ = coord.Close()
		return "", stats, 0, nil, err
	}
	reg := cluster.NewRegistry()
	wctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for slot := 0; slot < cfg.Workers; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			superviseWorker(wctx, addr, dir, reg, inj, sched, slot)
		}(slot)
	}
	shutdown := func() {
		_ = coord.Close()
		cancel()
		wg.Wait()
	}

	exec, err := cluster.NewExecutor(coord, reg)
	if err != nil {
		shutdown()
		return "", stats, 0, nil, err
	}
	exec.Fallback = mapreduce.SerialExecutor{}
	fp, err = matchOnce(ctx, ds, targets, cfg.Seed, cfg.BatchSize, exec)
	stats = coord.Stats()
	fallbacks = exec.Fallbacks()
	shutdown()
	if extra := snap.Leaked(2 * time.Second); len(extra) > 0 {
		for _, g := range extra {
			leaked = append(leaked, fmt.Sprintf("schedule %d: %s", sched, g))
		}
	}
	return fp, stats, fallbacks, leaked, err
}

// superviseWorker keeps one worker slot populated: when an injected fault
// crashes the worker, a new incarnation (with a fresh ID, so fresh fault
// draws) replaces it until the cluster shuts down.
func superviseWorker(ctx context.Context, addr, dir string, reg *cluster.Registry, inj *chaos.Injector, sched, slot int) {
	for incarnation := 0; ctx.Err() == nil; incarnation++ {
		w, err := cluster.NewWorker(addr, cluster.WorkerConfig{
			ID:                fmt.Sprintf("sim%d-w%d#%d", sched, slot, incarnation),
			Dir:               dir,
			Registry:          reg,
			PollInterval:      2 * time.Millisecond,
			HeartbeatInterval: 10 * time.Millisecond,
			Faults:            inj,
		})
		if err != nil {
			return // coordinator gone: shutting down
		}
		if err := w.Run(ctx); err != nil {
			// Context cancellation or a torn connection: stop supervising.
			// A nil return is an injected crash or TaskExit; loop either
			// way — a post-Close restart exits on the dial above.
			return
		}
	}
}

// matchOnce runs the full SS pipeline once and returns its fingerprint.
func matchOnce(ctx context.Context, ds *dataset.Dataset, targets []ids.EID, seed int64, batchSize int, exec mapreduce.Executor) (string, error) {
	m, err := core.New(ds, core.Options{
		Mode:      core.ModeParallel,
		Seed:      seed,
		Executor:  exec,
		BatchSize: batchSize,
	})
	if err != nil {
		return "", err
	}
	rep, err := m.Match(ctx, targets)
	if err != nil {
		return "", err
	}
	return rep.Fingerprint(), nil
}

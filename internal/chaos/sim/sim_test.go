package sim

import (
	"context"
	"testing"
	"time"

	"evmatching/internal/chaos"
	"evmatching/internal/mrtest"
)

// testFaults is the standard fault mix: every class enabled, aggressively
// enough that a 50-schedule run exercises each recovery path.
func testFaults() chaos.Config {
	return chaos.Config{
		CrashBeforeExecute: 0.04,
		CrashBeforeReport:  0.04,
		Stall:              0.10,
		StallFor:           60 * time.Millisecond,
		DropReport:         0.05,
		DuplicateReport:    0.10,
		HeartbeatLoss:      0.20,
	}
}

// TestSimFingerprintStableUnderFaults is the tentpole assertion: ≥50 seeded
// fault schedules, each running the full SS pipeline on a real cluster, all
// reproducing the fault-free fingerprint byte for byte with no goroutine
// leaks.
func TestSimFingerprintStableUnderFaults(t *testing.T) {
	mrtest.CheckGoroutines(t)
	cfg := Config{Seed: 1, Faults: testFaults()}
	if testing.Short() {
		cfg.Schedules = 8
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !testing.Short() && res.Schedules < 50 {
		t.Fatalf("ran %d schedules; want >= 50", res.Schedules)
	}
	if !res.OK() {
		t.Fatalf("sim not clean:\n mismatches=%v\n failures=%v\n leaks=%v",
			res.Mismatches, res.Failures, res.Leaks)
	}
	if res.BaselineFingerprint == "" {
		t.Error("empty baseline fingerprint")
	}
	// The fault mix must actually have exercised the recovery machinery;
	// a sim that injected nothing proves nothing.
	if res.Stats.Retries == 0 && res.Stats.Evictions == 0 && res.Stats.StaleReports == 0 {
		t.Errorf("no recovery activity recorded: %+v", res.Stats)
	}
	t.Logf("schedules=%d stats=%+v fallbacks=%d", res.Schedules, res.Stats, res.Fallbacks)
}

// TestSimReproducibleFromSeed reruns a small schedule set and checks the
// outcome (not the cost counters) is identical.
func TestSimReproducibleFromSeed(t *testing.T) {
	mrtest.CheckGoroutines(t)
	cfg := Config{Seed: 7, Schedules: 4, Faults: testFaults()}
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.BaselineFingerprint != b.BaselineFingerprint {
		t.Error("baseline fingerprint changed between identical runs")
	}
	if len(a.Mismatches) != len(b.Mismatches) || len(a.Failures) != len(b.Failures) {
		t.Errorf("outcome not reproducible: %+v vs %+v", a, b)
	}
}

// TestSimPracticalMode covers the vague-zone practical dataset.
func TestSimPracticalMode(t *testing.T) {
	if testing.Short() {
		t.Skip("practical-mode sim skipped in -short mode")
	}
	mrtest.CheckGoroutines(t)
	res, err := Run(context.Background(), Config{
		Seed: 3, Schedules: 6, Practical: true, Faults: testFaults(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("practical sim not clean:\n mismatches=%v\n failures=%v\n leaks=%v",
			res.Mismatches, res.Failures, res.Leaks)
	}
}

// TestSimFaultFree checks the harness itself is quiet with nothing injected.
func TestSimFaultFree(t *testing.T) {
	mrtest.CheckGoroutines(t)
	res, err := Run(context.Background(), Config{Seed: 5, Schedules: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("fault-free sim not clean: %+v", res)
	}
}

// TestSimRejectsBadFaultConfig surfaces injector validation errors.
func TestSimRejectsBadFaultConfig(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Seed: 1, Schedules: 1, Faults: chaos.Config{Stall: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) == 0 {
		t.Error("want per-schedule failure for invalid fault config")
	}
}

// TestSimBatchedParallelSchedule pins fault tolerance of the batched V
// stage: with an explicit BatchSize every map task owns multiple scenarios
// or assignments, so a crash mid-batch forces the coordinator to re-execute
// the whole batch on another worker. The shared extraction cache and the
// batch task's buffered result write must keep re-execution idempotent —
// the fingerprint stays byte-identical to the fault-free baseline.
func TestSimBatchedParallelSchedule(t *testing.T) {
	mrtest.CheckGoroutines(t)
	cfg := Config{Seed: 11, Schedules: 6, BatchSize: 2, Faults: testFaults()}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("batched sim not clean:\n mismatches=%v\n failures=%v\n leaks=%v",
			res.Mismatches, res.Failures, res.Leaks)
	}
	// Cross-check against the unbatched default: batching is a scheduling
	// choice and must not alter the computed report.
	plain, err := Run(context.Background(), Config{Seed: 11, Schedules: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineFingerprint != plain.BaselineFingerprint {
		t.Error("BatchSize changed the baseline fingerprint")
	}
}

// Package chaos is a deterministic, seed-driven fault-injection layer for
// the cluster runtime. An Injector implements cluster.FaultPlan: every fault
// decision is a pure hash of (seed, identifying coordinates), never of call
// order, so a fault schedule is reproducible from its seed regardless of
// goroutine interleaving — the property the sim harness relies on when it
// asserts fingerprint identity with the fault-free run (see chaos/sim).
package chaos

import (
	"fmt"
	"hash/fnv"
	"time"

	"evmatching/internal/cluster"
)

// Default fault-shape parameters.
const (
	// DefaultStallFor is the straggler delay when Config.StallFor is zero.
	DefaultStallFor = 200 * time.Millisecond
	// DefaultHeartbeatBurst is the length of a dropped-heartbeat burst when
	// Config.HeartbeatBurst is zero. Losses come in contiguous bursts so
	// they are long enough to trip the coordinator's heartbeat timeout;
	// isolated single drops would never be observable.
	DefaultHeartbeatBurst = 8
)

// Config sets the per-event probabilities of each fault class. Probabilities
// are in [0, 1] and independent; the zero Config injects nothing.
type Config struct {
	// CrashBeforeExecute is the chance a claimed task's worker vanishes
	// before doing any work.
	CrashBeforeExecute float64
	// CrashBeforeReport is the chance the worker vanishes after writing its
	// output files but before reporting.
	CrashBeforeReport float64
	// Stall is the chance a task's report is delayed by StallFor.
	Stall float64
	// StallFor is the straggler delay; 0 means DefaultStallFor.
	StallFor time.Duration
	// DropReport is the chance a task's report is lost in transit.
	DropReport float64
	// DuplicateReport is the chance a task's report is delivered twice.
	DuplicateReport float64
	// HeartbeatLoss is the chance a given heartbeat burst is dropped
	// entirely; bursts are HeartbeatBurst consecutive pings.
	HeartbeatLoss float64
	// HeartbeatBurst is the dropped-burst length; 0 means
	// DefaultHeartbeatBurst.
	HeartbeatBurst int
}

// validate rejects out-of-range probabilities.
func (c *Config) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"CrashBeforeExecute", c.CrashBeforeExecute},
		{"CrashBeforeReport", c.CrashBeforeReport},
		{"Stall", c.Stall},
		{"DropReport", c.DropReport},
		{"DuplicateReport", c.DuplicateReport},
		{"HeartbeatLoss", c.HeartbeatLoss},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("chaos: probability %s=%g outside [0,1]", p.name, p.v)
		}
	}
	if c.StallFor < 0 || c.HeartbeatBurst < 0 {
		return fmt.Errorf("chaos: negative fault-shape parameter")
	}
	return nil
}

// Injector is a seeded cluster.FaultPlan. It is stateless after creation and
// safe for concurrent use from any number of workers.
type Injector struct {
	seed int64
	cfg  Config
}

var _ cluster.FaultPlan = (*Injector)(nil)

// NewInjector builds an injector whose decisions are fully determined by
// seed and cfg.
func NewInjector(seed int64, cfg Config) (*Injector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.StallFor == 0 {
		cfg.StallFor = DefaultStallFor
	}
	if cfg.HeartbeatBurst == 0 {
		cfg.HeartbeatBurst = DefaultHeartbeatBurst
	}
	return &Injector{seed: seed, cfg: cfg}, nil
}

// TaskFault implements cluster.FaultPlan. Each fault class draws an
// independent uniform fraction from the hash of (seed, class salt, worker,
// job, kind, task), so the same attempt coordinates always yield the same
// fault — and a re-claimed task on a different worker draws fresh ones.
func (in *Injector) TaskFault(workerID, jobID string, kind cluster.TaskKind, taskID int) cluster.TaskFault {
	roll := func(salt string, p float64) bool {
		if p <= 0 {
			return false
		}
		return in.frac(salt, workerID, jobID, int(kind), taskID) < p
	}
	f := cluster.TaskFault{
		CrashBeforeExecute: roll("crash-pre", in.cfg.CrashBeforeExecute),
		CrashBeforeReport:  roll("crash-post", in.cfg.CrashBeforeReport),
		DropReport:         roll("drop", in.cfg.DropReport),
		DuplicateReport:    roll("dup", in.cfg.DuplicateReport),
	}
	if roll("stall", in.cfg.Stall) {
		f.StallBeforeReport = in.cfg.StallFor
	}
	return f
}

// DropHeartbeat implements cluster.FaultPlan. Drops are decided per burst
// window (seq / HeartbeatBurst) so lost heartbeats are contiguous and long
// enough for the coordinator to notice.
func (in *Injector) DropHeartbeat(workerID string, seq int) bool {
	if in.cfg.HeartbeatLoss <= 0 {
		return false
	}
	burst := seq / in.cfg.HeartbeatBurst
	return in.frac("hb", workerID, "", 0, burst) < in.cfg.HeartbeatLoss
}

// frac hashes the decision coordinates into a uniform [0, 1) fraction.
func (in *Injector) frac(salt, worker, job string, kind, n int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s|%d|%d", in.seed, salt, worker, job, kind, n)
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}

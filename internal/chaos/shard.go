package chaos

import (
	"fmt"
	"hash/fnv"
	"time"

	"evmatching/internal/stream"
)

// DefaultShardStallFor is the shard straggler delay when ShardConfig.StallFor
// is zero.
const DefaultShardStallFor = 2 * time.Millisecond

// ShardConfig sets the per-message probabilities of each shard fault class.
// Probabilities are in [0, 1] and independent; the zero ShardConfig injects
// nothing.
type ShardConfig struct {
	// Kill is the chance a shard windower dies silently before processing a
	// message — its lease lapses and the router must redispatch its cell
	// range from the last sub-checkpoint.
	Kill float64
	// Stall is the chance a message's processing is delayed by StallFor — a
	// straggler shard that must not be mistaken for a dead one.
	Stall float64
	// StallFor is the straggler delay; 0 means DefaultShardStallFor.
	StallFor time.Duration
}

// validate rejects out-of-range parameters.
func (c *ShardConfig) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"Kill", c.Kill},
		{"Stall", c.Stall},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("chaos: probability %s=%g outside [0,1]", p.name, p.v)
		}
	}
	if c.StallFor < 0 {
		return fmt.Errorf("chaos: negative fault-shape parameter")
	}
	return nil
}

// ShardInjector is a seeded stream.ShardFaultPlan. Like Injector, it is
// stateless: every decision is a pure hash of (seed, shard, incarnation,
// step), so a schedule replays identically regardless of interleaving — and
// because the incarnation is part of the coordinates, a redispatched
// replacement replaying the same journal draws fresh faults instead of dying
// deterministically at the same message forever.
type ShardInjector struct {
	seed int64
	cfg  ShardConfig
}

var _ stream.ShardFaultPlan = (*ShardInjector)(nil)

// NewShardInjector builds an injector whose decisions are fully determined
// by seed and cfg.
func NewShardInjector(seed int64, cfg ShardConfig) (*ShardInjector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.StallFor == 0 {
		cfg.StallFor = DefaultShardStallFor
	}
	return &ShardInjector{seed: seed, cfg: cfg}, nil
}

// ShardFault implements stream.ShardFaultPlan.
func (in *ShardInjector) ShardFault(shard, incarnation, step int) stream.ShardFault {
	var f stream.ShardFault
	if in.cfg.Kill > 0 && in.frac("kill", shard, incarnation, step) < in.cfg.Kill {
		f.Kill = true
	}
	if in.cfg.Stall > 0 && in.frac("stall", shard, incarnation, step) < in.cfg.Stall {
		f.Stall = in.cfg.StallFor
	}
	return f
}

// frac hashes the decision coordinates into a uniform [0, 1) fraction. The
// FNV sum is passed through a 64-bit finalizer: over the densely sequential
// (shard, step) coordinates this injector sees, raw FNV output clusters and
// starves small probabilities, whereas the mixed bits pass a uniformity
// check at p = 0.002.
func (in *ShardInjector) frac(salt string, shard, incarnation, step int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d|%d", in.seed, salt, shard, incarnation, step)
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / float64(uint64(1)<<53)
}

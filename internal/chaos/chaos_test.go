package chaos

import (
	"testing"
	"time"

	"evmatching/internal/cluster"
)

func TestInjectorValidation(t *testing.T) {
	bad := []Config{
		{CrashBeforeExecute: -0.1},
		{CrashBeforeReport: 1.5},
		{Stall: 2},
		{DropReport: -1},
		{DuplicateReport: 7},
		{HeartbeatLoss: 1.01},
		{StallFor: -time.Second},
		{HeartbeatBurst: -1},
	}
	for i, cfg := range bad {
		if _, err := NewInjector(1, cfg); err == nil {
			t.Errorf("config %d: want validation error", i)
		}
	}
	if _, err := NewInjector(1, Config{}); err != nil {
		t.Errorf("zero config: %v", err)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{
		CrashBeforeExecute: 0.3,
		CrashBeforeReport:  0.3,
		Stall:              0.3,
		DropReport:         0.3,
		DuplicateReport:    0.3,
		HeartbeatLoss:      0.3,
	}
	a, err := NewInjector(42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewInjector(43, cfg)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for task := 0; task < 64; task++ {
		// Decisions depend only on the coordinates, not on call order: query
		// b in reverse to make an order dependence visible.
		rev := 63 - task
		if a.TaskFault("w1", "j1", cluster.TaskMap, task) != b.TaskFault("w1", "j1", cluster.TaskMap, task) {
			t.Fatalf("task %d: same seed disagrees", task)
		}
		if b.TaskFault("w1", "j1", cluster.TaskMap, rev) != a.TaskFault("w1", "j1", cluster.TaskMap, rev) {
			t.Fatalf("task %d: order-dependent decision", rev)
		}
		if a.TaskFault("w1", "j1", cluster.TaskMap, task) != other.TaskFault("w1", "j1", cluster.TaskMap, task) {
			differs = true
		}
		if a.DropHeartbeat("w1", task) != b.DropHeartbeat("w1", task) {
			t.Fatalf("heartbeat %d: same seed disagrees", task)
		}
	}
	if !differs {
		t.Error("seeds 42 and 43 produced identical schedules — seed is ignored")
	}
}

func TestInjectorProbabilityExtremes(t *testing.T) {
	never, err := NewInjector(7, Config{})
	if err != nil {
		t.Fatal(err)
	}
	always, err := NewInjector(7, Config{
		CrashBeforeExecute: 1, CrashBeforeReport: 1, Stall: 1,
		DropReport: 1, DuplicateReport: 1, HeartbeatLoss: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < 32; task++ {
		if f := never.TaskFault("w", "j", cluster.TaskReduce, task); f != (cluster.TaskFault{}) {
			t.Fatalf("zero config injected %+v", f)
		}
		if never.DropHeartbeat("w", task) {
			t.Fatalf("zero config dropped heartbeat %d", task)
		}
		f := always.TaskFault("w", "j", cluster.TaskReduce, task)
		if !f.CrashBeforeExecute || !f.CrashBeforeReport || !f.DropReport ||
			!f.DuplicateReport || f.StallBeforeReport != DefaultStallFor {
			t.Fatalf("probability-1 config skipped a fault: %+v", f)
		}
		if !always.DropHeartbeat("w", task) {
			t.Fatalf("probability-1 config delivered heartbeat %d", task)
		}
	}
}

func TestHeartbeatDropsComeInBursts(t *testing.T) {
	in, err := NewInjector(11, Config{HeartbeatLoss: 0.5, HeartbeatBurst: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Within one burst window every decision matches.
	for burst := 0; burst < 32; burst++ {
		first := in.DropHeartbeat("w", burst*4)
		for seq := burst * 4; seq < (burst+1)*4; seq++ {
			if in.DropHeartbeat("w", seq) != first {
				t.Fatalf("seq %d breaks burst %d", seq, burst)
			}
		}
	}
	// And across many bursts both outcomes occur.
	drops := 0
	for burst := 0; burst < 64; burst++ {
		if in.DropHeartbeat("w", burst*4) {
			drops++
		}
	}
	if drops == 0 || drops == 64 {
		t.Errorf("drops = %d of 64 bursts; want a mix", drops)
	}
}

package partition

import (
	"math/rand"
	"strings"
	"testing"

	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// esc builds an E-Scenario with the given ID whose EIDs are all inclusive.
func esc(id scenario.ID, eids ...ids.EID) *scenario.EScenario {
	m := make(map[ids.EID]scenario.Attr, len(eids))
	for _, e := range eids {
		m[e] = scenario.AttrInclusive
	}
	return &scenario.EScenario{ID: id, EIDs: m}
}

// escAttr builds an E-Scenario with explicit attributes.
func escAttr(id scenario.ID, m map[ids.EID]scenario.Attr) *scenario.EScenario {
	return &scenario.EScenario{ID: id, EIDs: m}
}

func mustNew(t *testing.T, targets ...ids.EID) *Partition {
	t.Helper()
	p, err := New(targets)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("want error for no targets")
	}
	if _, err := New([]ids.EID{"a", ids.None}); err == nil {
		t.Error("want error for empty EID target")
	}
}

func TestInitialState(t *testing.T) {
	p := mustNew(t, "a", "b", "c")
	if p.NumSets() != 1 || p.NumTargets() != 3 {
		t.Errorf("NumSets=%d NumTargets=%d", p.NumSets(), p.NumTargets())
	}
	if p.Done() {
		t.Error("3-EID partition should not start done")
	}
	sets := p.Sets()
	if len(sets) != 1 || len(sets[0]) != 3 {
		t.Errorf("Sets = %v", sets)
	}
	if got := len(p.Recorded()); got != 0 {
		t.Errorf("Recorded = %d scenarios before any split", got)
	}
}

func TestSingleTargetIsImmediatelyDone(t *testing.T) {
	p := mustNew(t, "only")
	if !p.Done() {
		t.Error("single-EID partition should be done")
	}
	pos, err := p.PositiveScenarios("only")
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 0 {
		t.Errorf("PositiveScenarios = %v", pos)
	}
}

func TestSplitBySeparates(t *testing.T) {
	p := mustNew(t, "a", "b", "c", "d")
	if !p.SplitBy(esc(10, "a", "b")) {
		t.Fatal("split {a,b} should be effective")
	}
	sets := p.Sets()
	if len(sets) != 2 {
		t.Fatalf("Sets = %v", sets)
	}
	if sets[0][0] != "a" || sets[0][1] != "b" || sets[1][0] != "c" || sets[1][1] != "d" {
		t.Errorf("Sets = %v", sets)
	}
	if got := p.Recorded(); len(got) != 1 || got[0] != 10 {
		t.Errorf("Recorded = %v", got)
	}
}

func TestSplitByIneffectiveSkipped(t *testing.T) {
	p := mustNew(t, "a", "b", "c")
	// Contains all of the set: no split (paper Remark).
	if p.SplitBy(esc(1, "a", "b", "c")) {
		t.Error("scenario with whole set should not split")
	}
	// Contains none of the set: no split.
	if p.SplitBy(esc(2, "x", "y")) {
		t.Error("scenario with no members should not split")
	}
	if len(p.Recorded()) != 0 {
		t.Errorf("ineffective scenarios recorded: %v", p.Recorded())
	}
}

func TestSplitToSingletons(t *testing.T) {
	p := mustNew(t, "a", "b", "c", "d")
	p.SplitBy(esc(1, "a", "b"))
	p.SplitBy(esc(2, "a", "c")) // splits {a,b} into {a},{b}; splits {c,d} into {c},{d}
	if !p.Done() {
		t.Fatalf("partition not done: %v", p.Sets())
	}
	if p.NumSets() != 4 {
		t.Errorf("NumSets = %d", p.NumSets())
	}
	// n-1 bound: 4 EIDs distinguished with 2 effective scenarios (< 3).
	if len(p.Recorded()) != 2 {
		t.Errorf("Recorded = %v", p.Recorded())
	}
}

func TestPositiveScenariosArePathLeftTurns(t *testing.T) {
	p := mustNew(t, "a", "b", "c", "d")
	p.SplitBy(esc(1, "a", "b"))
	p.SplitBy(esc(2, "a", "c"))
	want := map[ids.EID][]scenario.ID{
		"a": {1, 2},
		"b": {1},
		"c": {2},
		"d": nil,
	}
	for e, wantList := range want {
		got, err := p.PositiveScenarios(e)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(wantList) {
			t.Errorf("PositiveScenarios(%s) = %v, want %v", e, got, wantList)
			continue
		}
		for i := range wantList {
			if got[i] != wantList[i] {
				t.Errorf("PositiveScenarios(%s) = %v, want %v", e, got, wantList)
			}
		}
	}
	if _, err := p.PositiveScenarios("zz"); err == nil {
		t.Error("want ErrUnknownEID")
	}
}

func TestPostOrderRuleOutProperty(t *testing.T) {
	// Build a random world of scenarios; after splitting, matching EIDs in
	// PostOrder must let every EID's positive-scenario intersection contain
	// only itself and already-matched EIDs (Theorem 4.1).
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(20)
		targets := make([]ids.EID, n)
		for i := range targets {
			targets[i] = ids.EID(string(rune('a' + i)))
		}
		p := mustNew(t, targets...)
		scenarios := make(map[scenario.ID]*scenario.EScenario)
		for sid := scenario.ID(0); sid < 200 && !p.Done(); sid++ {
			members := make([]ids.EID, 0, n)
			for _, e := range targets {
				if rng.Float64() < 0.3 {
					members = append(members, e)
				}
			}
			s := esc(sid, members...)
			scenarios[sid] = s
			p.SplitBy(s)
		}
		if !p.Done() {
			continue // unlucky trial; not the property under test
		}
		matched := map[ids.EID]bool{}
		for _, e := range p.PostOrder() {
			pos, err := p.PositiveScenarios(e)
			if err != nil {
				t.Fatal(err)
			}
			// Intersect the positive scenarios' member sets.
			inter := map[ids.EID]bool{}
			for _, other := range targets {
				inter[other] = true
			}
			for _, sid := range pos {
				s := scenarios[sid]
				for other := range inter {
					if !s.Contains(other) {
						delete(inter, other)
					}
				}
			}
			for other := range inter {
				if other != e && !matched[other] {
					t.Fatalf("trial %d: matching %s, intersection contains unmatched %s", trial, e, other)
				}
			}
			matched[e] = true
		}
		if len(matched) != n {
			t.Fatalf("trial %d: PostOrder covered %d of %d EIDs", trial, len(matched), n)
		}
	}
}

func TestPartitionInvariants(t *testing.T) {
	// Disjoint inclusive sets whose union is always the target set,
	// regardless of the scenario stream.
	rng := rand.New(rand.NewSource(7))
	targets := make([]ids.EID, 30)
	for i := range targets {
		targets[i] = ids.EID(rune('A' + i))
	}
	p := mustNew(t, targets...)
	for sid := scenario.ID(0); sid < 100; sid++ {
		members := make([]ids.EID, 0)
		for _, e := range targets {
			if rng.Float64() < 0.4 {
				members = append(members, e)
			}
		}
		p.SplitBy(esc(sid, members...))
		seen := map[ids.EID]bool{}
		for _, set := range p.Sets() {
			for _, e := range set {
				if seen[e] {
					t.Fatalf("EID %s appears in two sets", e)
				}
				seen[e] = true
			}
		}
		if len(seen) != len(targets) {
			t.Fatalf("after scenario %d: %d EIDs in partition, want %d", sid, len(seen), len(targets))
		}
	}
}

func TestEffectiveScenarioBoundIdeal(t *testing.T) {
	// Theorem 4.2: n-1 effective scenarios suffice for n EIDs.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		targets := make([]ids.EID, n)
		for i := range targets {
			targets[i] = ids.EID(rune('0' + i))
		}
		p := mustNew(t, targets...)
		for sid := scenario.ID(0); sid < 2000 && !p.Done(); sid++ {
			members := make([]ids.EID, 0)
			for _, e := range targets {
				if rng.Float64() < 0.5 {
					members = append(members, e)
				}
			}
			p.SplitBy(esc(sid, members...))
		}
		if got := len(p.Recorded()); got > n-1 {
			t.Errorf("trial %d: %d effective scenarios for %d EIDs, bound is %d", trial, got, n, n-1)
		}
	}
}

func TestVagueScenarioDoesNotConfirm(t *testing.T) {
	p := mustNew(t, "a", "b")
	// a is only vaguely in the scenario: must not be used to separate a.
	s := escAttr(1, map[ids.EID]scenario.Attr{"a": scenario.AttrVague})
	if p.SplitBy(s) {
		t.Error("vague-only scenario should not produce an effective split")
	}
	if p.Done() {
		t.Error("partition should remain unresolved")
	}
	// An inclusive sighting of a does split.
	if !p.SplitBy(esc(2, "a")) {
		t.Error("inclusive scenario should split")
	}
	if !p.Done() {
		t.Error("partition should be done")
	}
}

func TestVagueMemberDuplicatedBothSides(t *testing.T) {
	p := mustNew(t, "a", "b", "c")
	// b is vague in the scenario; a is inclusive. The split separates a;
	// b stays inclusive on the right with a vague copy on the left.
	s := escAttr(1, map[ids.EID]scenario.Attr{
		"a": scenario.AttrInclusive,
		"b": scenario.AttrVague,
	})
	if !p.SplitBy(s) {
		t.Fatal("split should be effective")
	}
	amb, err := p.AmbiguousWith("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(amb) != 1 || amb[0] != "b" {
		t.Errorf("AmbiguousWith(a) = %v, want [b]", amb)
	}
	resolvedB, err := p.Resolved("b")
	if err != nil {
		t.Fatal(err)
	}
	if resolvedB {
		t.Error("b should remain unresolved with c")
	}
	resolvedA, err := p.Resolved("a")
	if err != nil {
		t.Fatal(err)
	}
	if !resolvedA {
		t.Error("a should be resolved")
	}
}

func TestUnresolved(t *testing.T) {
	p := mustNew(t, "a", "b", "c")
	p.SplitBy(esc(1, "a"))
	got := p.Unresolved()
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("Unresolved = %v, want [b c]", got)
	}
	if _, err := p.Resolved("zz"); err == nil {
		t.Error("want ErrUnknownEID")
	}
	if _, err := p.AmbiguousWith("zz"); err == nil {
		t.Error("want ErrUnknownEID")
	}
}

func TestRecordedNoDuplicates(t *testing.T) {
	p := mustNew(t, "a", "b", "c", "d")
	s := esc(5, "a", "b")
	p.SplitBy(s)
	p.SplitBy(s) // idempotent second application still changes nothing
	count := 0
	for _, id := range p.Recorded() {
		if id == 5 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("scenario 5 recorded %d times", count)
	}
}

func TestPostOrderCoversAllTargets(t *testing.T) {
	p := mustNew(t, "a", "b", "c", "d", "e")
	p.SplitBy(esc(1, "a", "b"))
	// Partially split: post-order must still cover every target exactly once.
	got := p.PostOrder()
	if len(got) != 5 {
		t.Fatalf("PostOrder = %v", got)
	}
	seen := map[ids.EID]bool{}
	for _, e := range got {
		if seen[e] {
			t.Fatalf("duplicate %s in PostOrder", e)
		}
		seen[e] = true
	}
}

func TestWriteDOT(t *testing.T) {
	p := mustNew(t, "a", "b", "c")
	p.SplitBy(esc(7, "a"))
	p.SplitBy(escAttr(8, map[ids.EID]scenario.Attr{
		"b": scenario.AttrInclusive,
		"c": scenario.AttrVague,
	}))
	var sb strings.Builder
	if err := p.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph splittree", "scenario 7", "scenario 8",
		`[label="in"]`, `[label="out"]`, "(c?)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestTreeStats(t *testing.T) {
	p := mustNew(t, "a", "b", "c", "d")
	p.SplitBy(esc(1, "a", "b"))
	p.SplitBy(esc(2, "a", "c"))
	st := p.TreeStats()
	if st.Targets != 4 || st.Leaves != 4 || st.Resolved != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.Recorded != 2 || st.BoundNm1 != 3 {
		t.Errorf("recorded/bound = %+v", st)
	}
	if st.Depth != 2 {
		t.Errorf("depth = %d, want 2", st.Depth)
	}
	if st.Recorded > st.BoundNm1 {
		t.Error("Theorem 4.2 bound violated")
	}
}

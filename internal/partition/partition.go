// Package partition implements EID set splitting, the E stage of EV-Matching
// (paper §IV-B1, Algorithm 1). A Partition tracks the sets of mutually
// undistinguishable EIDs as a binary split tree: each effective E-Scenario
// splits a leaf into the EIDs appearing in the scenario (left child) and the
// rest (right child). When every leaf holds a single (inclusive) EID, the
// scenarios recorded along each EID's root-to-leaf path form its
// distinguishing list for the V stage.
//
// The practical setting (§IV-C2, Theorem 4.3) is supported through vague
// attributes: an EID that is vague — near a cell border, or only
// intermittently observed — is never used to confirm a split. A node-inclusive
// EID that is only vaguely present in the splitting scenario keeps its
// definite home on the right (not-confirmed) side and leaves a vague copy on
// the left, so every EID always has exactly one inclusive home leaf while its
// possible drift locations remain marked.
//
// Sets are dense bitsets over a per-partition EID index (assigned in sorted
// EID order, so ascending bit iteration yields sorted EIDs): one split is a
// handful of word-wide AND/AND-NOT operations against the scenario's
// membership masks, instead of per-EID map traffic.
package partition

import (
	"errors"
	"fmt"
	"sort"

	"evmatching/internal/bitset"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// ErrNoTargets reports an attempt to build a partition with no EIDs.
var ErrNoTargets = errors.New("partition: no target EIDs")

// ErrUnknownEID reports a query for an EID outside the partition.
var ErrUnknownEID = errors.New("partition: unknown EID")

// eidIndex is the partition's fixed EID universe: bit i of every node set
// refers to eids[i]. EIDs are indexed in sorted order.
type eidIndex struct {
	eids []ids.EID
	pos  map[ids.EID]int
}

// Node is one set of mutually undistinguishable EIDs in the split tree.
// Leaves hold live sets; internal nodes remember the scenario that split
// them. A node's member sets are immutable once the node is created.
type Node struct {
	idx *eidIndex
	// inc holds the inclusive members (definitely in this set); vag the
	// vague members (may belong here or in a sibling). The two are disjoint.
	inc, vag bitset.Set
	// Scenario is the E-Scenario that split this node (internal nodes only).
	Scenario scenario.ID
	// Left holds the EIDs confirmed by Scenario; Right holds the rest.
	Left  *Node
	Right *Node
}

// isLeaf reports whether n has not been split.
func (n *Node) isLeaf() bool { return n.Left == nil && n.Right == nil }

// InclusiveCount returns the number of inclusive members.
func (n *Node) InclusiveCount() int { return n.inc.Count() }

// InclusiveEIDs returns the sorted inclusive members.
func (n *Node) InclusiveEIDs() []ids.EID {
	out := make([]ids.EID, 0, n.inc.Count())
	n.inc.ForEach(func(i int) { out = append(out, n.idx.eids[i]) })
	return out
}

// VagueEIDs returns the sorted vague members.
func (n *Node) VagueEIDs() []ids.EID {
	out := make([]ids.EID, 0, n.vag.Count())
	n.vag.ForEach(func(i int) { out = append(out, n.idx.eids[i]) })
	return out
}

// Partition is the evolving partition of the target EIDs, with the split
// tree that produced it. It is not safe for concurrent use.
type Partition struct {
	idx      *eidIndex
	root     *Node
	leaves   []*Node
	home     map[ids.EID]*Node // inclusive home leaf of each target EID
	recorded []scenario.ID
	inRec    map[scenario.ID]bool
	// sInc/sVag/sAny are the reusable scenario-membership masks SplitBy
	// rebuilds per call; tInc/tOut/tVag are splitNode's probe scratches,
	// cloned into child nodes only when a split is actually effective.
	sInc, sVag, sAny bitset.Set
	tInc, tOut, tVag bitset.Set
	// onResolve, when set, is called with each EID the moment its inclusive
	// home leaf shrinks to a singleton — the hook the blocking layer uses to
	// retire resolved targets from its live signature. Leaves only ever
	// shrink, so a resolved EID is resolved forever and the callback fires
	// exactly once per EID.
	onResolve func(ids.EID)
}

// OnResolve registers fn to be called as each target EID becomes resolved
// (its home leaf's inclusive count reaches 1). Pass nil to unregister. EIDs
// already resolved at registration time are not replayed.
func (p *Partition) OnResolve(fn func(ids.EID)) { p.onResolve = fn }

// New creates the initial one-set partition over the target EIDs, all
// inclusive (paper: "Initially, all EIDs are in one set").
func New(targets []ids.EID) (*Partition, error) {
	if len(targets) == 0 {
		return nil, ErrNoTargets
	}
	idx := &eidIndex{pos: make(map[ids.EID]int, len(targets))}
	for _, e := range targets {
		if e == ids.None {
			return nil, fmt.Errorf("partition: target list contains the empty EID")
		}
		if _, dup := idx.pos[e]; !dup {
			idx.pos[e] = 0 // position assigned after sorting
			idx.eids = append(idx.eids, e)
		}
	}
	ids.SortEIDs(idx.eids)
	for i, e := range idx.eids {
		idx.pos[e] = i
	}
	n := len(idx.eids)
	root := &Node{idx: idx, inc: bitset.New(n), vag: bitset.New(n), Scenario: scenario.NoID}
	for i := range idx.eids {
		root.inc.Add(i)
	}
	p := &Partition{
		idx:   idx,
		root:  root,
		home:  make(map[ids.EID]*Node, n),
		inRec: make(map[scenario.ID]bool),
		sInc:  bitset.New(n),
		sVag:  bitset.New(n),
		sAny:  bitset.New(n),
		tInc:  bitset.New(n),
		tOut:  bitset.New(n),
		tVag:  bitset.New(n),
	}
	for _, e := range idx.eids {
		p.home[e] = root
	}
	p.leaves = []*Node{root}
	return p, nil
}

// NumSets returns the current number of sets (leaves) in the partition.
func (p *Partition) NumSets() int { return len(p.leaves) }

// NumTargets returns the number of EIDs being distinguished.
func (p *Partition) NumTargets() int { return len(p.home) }

// Done reports whether every set holds at most one inclusive EID, i.e. all
// target EIDs are distinguished.
func (p *Partition) Done() bool {
	for _, leaf := range p.leaves {
		if leaf.inc.Count() > 1 {
			return false
		}
	}
	return true
}

// Recorded returns the IDs of the effective scenarios, in the order they
// were applied. The slice is shared; callers must not modify it.
func (p *Partition) Recorded() []scenario.ID { return p.recorded }

// Sets returns the inclusive membership of every current set, each sorted,
// ordered by their smallest EID. Vague copies are omitted.
func (p *Partition) Sets() [][]ids.EID {
	out := make([][]ids.EID, 0, len(p.leaves))
	for _, leaf := range p.leaves {
		if in := leaf.InclusiveEIDs(); len(in) > 0 {
			out = append(out, in)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// SplitBy refines the partition with one E-Scenario, splitting every set it
// can effectively separate (Algorithm 1's SplitBy applied to all sets). A
// split is effective only when both sides keep at least one inclusive EID;
// scenarios that split nothing are skipped and not recorded (paper Remark).
// It returns whether the partition changed.
func (p *Partition) SplitBy(s *scenario.EScenario) bool {
	// Build the scenario's membership masks over the EID index once; every
	// leaf split below is then pure word arithmetic. Scenarios are usually
	// much smaller than the index (splitStage pre-filters them to targets),
	// so iterate the scenario's members rather than the whole index.
	p.sInc.Clear()
	p.sVag.Clear()
	//evlint:ignore maprange fills membership bitmasks; the resulting sets are identical under any iteration order
	for e, attr := range s.EIDs {
		if i, ok := p.idx.pos[e]; ok {
			if attr == scenario.AttrInclusive {
				p.sInc.Add(i)
			} else {
				p.sVag.Add(i)
			}
		}
	}
	bitset.OrInto(p.sAny, p.sInc, p.sVag)

	changed := false
	// Iterate over a snapshot: splits replace leaves as we go.
	snapshot := p.leaves
	var nextLeaves []*Node
	for _, leaf := range snapshot {
		left, right, ok := p.splitNode(leaf)
		if !ok {
			nextLeaves = append(nextLeaves, leaf)
			continue
		}
		leaf.Scenario = s.ID
		leaf.Left, leaf.Right = left, right
		nextLeaves = append(nextLeaves, left, right)
		left.inc.ForEach(func(i int) { p.home[p.idx.eids[i]] = left })
		right.inc.ForEach(func(i int) { p.home[p.idx.eids[i]] = right })
		if p.onResolve != nil {
			// The parent held ≥2 inclusive EIDs, so a singleton child is
			// newly resolved.
			if left.inc.Count() == 1 {
				left.inc.ForEach(func(i int) { p.onResolve(p.idx.eids[i]) })
			}
			if right.inc.Count() == 1 {
				right.inc.ForEach(func(i int) { p.onResolve(p.idx.eids[i]) })
			}
		}
		changed = true
	}
	if changed {
		p.leaves = nextLeaves
		if !p.inRec[s.ID] {
			p.inRec[s.ID] = true
			p.recorded = append(p.recorded, s.ID)
		}
	}
	return changed
}

// splitNode computes the left/right children of leaf under the prepared
// scenario masks, or ok=false when the split would not be effective.
//
// Per member e of the leaf, the rules of §IV-C2 map onto set algebra:
//   - inclusive and confirmed by the scenario → left, inclusive
//   - inclusive otherwise → right, inclusive; plus a vague copy on the left
//     when the scenario saw it vaguely
//   - vague, seen by the scenario (either way) → vague on both sides
//   - vague, unseen → vague on the right only
func (p *Partition) splitNode(leaf *Node) (left, right *Node, ok bool) {
	if leaf.inc.Count() < 2 {
		return nil, nil, false
	}
	// Probe into reusable scratches first: most leaves are not split by most
	// scenarios (either side empty), and the probe must not allocate then.
	bitset.AndInto(p.tInc, leaf.inc, p.sInc)
	if !p.tInc.Any() {
		return nil, nil, false
	}
	bitset.AndNotInto(p.tOut, leaf.inc, p.sInc)
	if !p.tOut.Any() {
		return nil, nil, false
	}
	leftInc, rightInc := p.tInc.Clone(), p.tOut.Clone()
	bitset.AndInto(p.tVag, leaf.inc, p.sVag)
	bitset.AndInto(p.tOut, leaf.vag, p.sAny)
	bitset.OrInto(p.tVag, p.tVag, p.tOut)
	leftVag := p.tVag.Clone()
	// Every vague member stays vague on the right: unseen ones live only
	// there, seen ones are uncertain on both sides. Node sets are immutable
	// after creation, so the child can share the parent's word array.
	rightVag := leaf.vag
	left = &Node{idx: p.idx, inc: leftInc, vag: leftVag, Scenario: scenario.NoID}
	right = &Node{idx: p.idx, inc: rightInc, vag: rightVag, Scenario: scenario.NoID}
	return left, right, true
}

// PositiveScenarios returns, for target EID e, the scenarios along its
// root-to-home path in which e was confirmed (left turns): the EID's
// coarse-grained distinguishing trajectory handed to the V stage.
func (p *Partition) PositiveScenarios(e ids.EID) ([]scenario.ID, error) {
	home, ok := p.home[e]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownEID, e)
	}
	i := p.idx.pos[e]
	var out []scenario.ID
	n := p.root
	for n != home && !n.isLeaf() {
		if n.Left.inc.Has(i) {
			out = append(out, n.Scenario)
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return out, nil
}

// Resolved reports whether e's home set contains no other inclusive EID.
func (p *Partition) Resolved(e ids.EID) (bool, error) {
	home, ok := p.home[e]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrUnknownEID, e)
	}
	return home.inc.Count() == 1, nil
}

// Unresolved returns the sorted target EIDs whose sets still hold more than
// one inclusive EID after splitting (candidates for matching refining).
func (p *Partition) Unresolved() []ids.EID {
	var out []ids.EID
	for _, e := range p.idx.eids {
		if p.home[e].inc.Count() > 1 {
			out = append(out, e)
		}
	}
	return out
}

// AmbiguousWith returns the other EIDs that share e's home set, inclusive or
// vague: the identities whose VIDs may be confused with e's.
func (p *Partition) AmbiguousWith(e ids.EID) ([]ids.EID, error) {
	home, ok := p.home[e]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownEID, e)
	}
	self := p.idx.pos[e]
	out := make([]ids.EID, 0, home.inc.Count()+home.vag.Count())
	members := bitset.Or(home.inc, home.vag)
	members.ForEach(func(i int) {
		if i != self {
			out = append(out, p.idx.eids[i])
		}
	})
	return out, nil
}

// PostOrder returns the target EIDs in the matching order of Theorem 4.1:
// the post-order traversal of the split tree, so that when an EID is
// matched, every EID it could be confused with inside its positive-scenario
// intersection has already been matched and its VID can be ruled out.
// Within one leaf, EIDs are ordered lexicographically.
func (p *Partition) PostOrder() []ids.EID {
	out := make([]ids.EID, 0, len(p.home))
	seen := bitset.New(len(p.idx.eids))
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		walk(n.Left)
		walk(n.Right)
		if n.isLeaf() {
			n.inc.ForEach(func(i int) {
				e := p.idx.eids[i]
				if p.home[e] == n && !seen.Has(i) {
					seen.Add(i)
					out = append(out, e)
				}
			})
		}
	}
	walk(p.root)
	return out
}

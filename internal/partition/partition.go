// Package partition implements EID set splitting, the E stage of EV-Matching
// (paper §IV-B1, Algorithm 1). A Partition tracks the sets of mutually
// undistinguishable EIDs as a binary split tree: each effective E-Scenario
// splits a leaf into the EIDs appearing in the scenario (left child) and the
// rest (right child). When every leaf holds a single (inclusive) EID, the
// scenarios recorded along each EID's root-to-leaf path form its
// distinguishing list for the V stage.
//
// The practical setting (§IV-C2, Theorem 4.3) is supported through vague
// attributes: an EID that is vague — near a cell border, or only
// intermittently observed — is never used to confirm a split. A node-inclusive
// EID that is only vaguely present in the splitting scenario keeps its
// definite home on the right (not-confirmed) side and leaves a vague copy on
// the left, so every EID always has exactly one inclusive home leaf while its
// possible drift locations remain marked.
package partition

import (
	"errors"
	"fmt"
	"sort"

	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// ErrNoTargets reports an attempt to build a partition with no EIDs.
var ErrNoTargets = errors.New("partition: no target EIDs")

// ErrUnknownEID reports a query for an EID outside the partition.
var ErrUnknownEID = errors.New("partition: unknown EID")

// Node is one set of mutually undistinguishable EIDs in the split tree.
// Leaves hold live sets; internal nodes remember the scenario that split
// them.
type Node struct {
	// EIDs maps each member to its attribute. Inclusive members definitely
	// belong to this set; vague members may belong here or in a sibling.
	EIDs map[ids.EID]scenario.Attr
	// Scenario is the E-Scenario that split this node (internal nodes only).
	Scenario scenario.ID
	// Left holds the EIDs confirmed by Scenario; Right holds the rest.
	Left  *Node
	Right *Node
}

// isLeaf reports whether n has not been split.
func (n *Node) isLeaf() bool { return n.Left == nil && n.Right == nil }

// InclusiveCount returns the number of inclusive members.
func (n *Node) InclusiveCount() int {
	c := 0
	for _, a := range n.EIDs {
		if a == scenario.AttrInclusive {
			c++
		}
	}
	return c
}

// InclusiveEIDs returns the sorted inclusive members.
func (n *Node) InclusiveEIDs() []ids.EID {
	out := make([]ids.EID, 0, len(n.EIDs))
	for e, a := range n.EIDs {
		if a == scenario.AttrInclusive {
			out = append(out, e)
		}
	}
	return ids.SortEIDs(out)
}

// Partition is the evolving partition of the target EIDs, with the split
// tree that produced it. It is not safe for concurrent use.
type Partition struct {
	root     *Node
	leaves   []*Node
	home     map[ids.EID]*Node // inclusive home leaf of each target EID
	recorded []scenario.ID
	inRec    map[scenario.ID]bool
}

// New creates the initial one-set partition over the target EIDs, all
// inclusive (paper: "Initially, all EIDs are in one set").
func New(targets []ids.EID) (*Partition, error) {
	if len(targets) == 0 {
		return nil, ErrNoTargets
	}
	root := &Node{EIDs: make(map[ids.EID]scenario.Attr, len(targets)), Scenario: scenario.NoID}
	p := &Partition{
		root:  root,
		home:  make(map[ids.EID]*Node, len(targets)),
		inRec: make(map[scenario.ID]bool),
	}
	for _, e := range targets {
		if e == ids.None {
			return nil, fmt.Errorf("partition: target list contains the empty EID")
		}
		root.EIDs[e] = scenario.AttrInclusive
		p.home[e] = root
	}
	p.leaves = []*Node{root}
	return p, nil
}

// NumSets returns the current number of sets (leaves) in the partition.
func (p *Partition) NumSets() int { return len(p.leaves) }

// NumTargets returns the number of EIDs being distinguished.
func (p *Partition) NumTargets() int { return len(p.home) }

// Done reports whether every set holds at most one inclusive EID, i.e. all
// target EIDs are distinguished.
func (p *Partition) Done() bool {
	for _, leaf := range p.leaves {
		if leaf.InclusiveCount() > 1 {
			return false
		}
	}
	return true
}

// Recorded returns the IDs of the effective scenarios, in the order they
// were applied. The slice is shared; callers must not modify it.
func (p *Partition) Recorded() []scenario.ID { return p.recorded }

// Sets returns the inclusive membership of every current set, each sorted,
// ordered by their smallest EID. Vague copies are omitted.
func (p *Partition) Sets() [][]ids.EID {
	out := make([][]ids.EID, 0, len(p.leaves))
	for _, leaf := range p.leaves {
		if in := leaf.InclusiveEIDs(); len(in) > 0 {
			out = append(out, in)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// SplitBy refines the partition with one E-Scenario, splitting every set it
// can effectively separate (Algorithm 1's SplitBy applied to all sets). A
// split is effective only when both sides keep at least one inclusive EID;
// scenarios that split nothing are skipped and not recorded (paper Remark).
// It returns whether the partition changed.
func (p *Partition) SplitBy(s *scenario.EScenario) bool {
	changed := false
	// Iterate over a snapshot: splits replace leaves as we go.
	snapshot := p.leaves
	var nextLeaves []*Node
	for _, leaf := range snapshot {
		left, right, ok := splitNode(leaf, s)
		if !ok {
			nextLeaves = append(nextLeaves, leaf)
			continue
		}
		leaf.Scenario = s.ID
		leaf.Left, leaf.Right = left, right
		nextLeaves = append(nextLeaves, left, right)
		//evlint:ignore maprange writes distinct keys into the home map; order cannot affect the result (hot split path)
		for e, a := range left.EIDs {
			if a == scenario.AttrInclusive {
				p.home[e] = left
			}
		}
		//evlint:ignore maprange writes distinct keys into the home map; order cannot affect the result (hot split path)
		for e, a := range right.EIDs {
			if a == scenario.AttrInclusive {
				p.home[e] = right
			}
		}
		changed = true
	}
	if changed {
		p.leaves = nextLeaves
		if !p.inRec[s.ID] {
			p.inRec[s.ID] = true
			p.recorded = append(p.recorded, s.ID)
		}
	}
	return changed
}

// splitNode computes the left/right children of leaf under scenario s, or
// ok=false when the split would not be effective.
func splitNode(leaf *Node, s *scenario.EScenario) (left, right *Node, ok bool) {
	if leaf.InclusiveCount() < 2 {
		return nil, nil, false
	}
	left = &Node{EIDs: make(map[ids.EID]scenario.Attr), Scenario: scenario.NoID}
	right = &Node{EIDs: make(map[ids.EID]scenario.Attr), Scenario: scenario.NoID}
	//evlint:ignore maprange distributes each EID independently into fresh maps; order cannot affect the result (hot split path)
	for e, attr := range leaf.EIDs {
		sAttr, in := s.AttrOf(e)
		switch {
		case !in:
			// Not observed in the scenario: stays on the right with its
			// original attribute.
			right.EIDs[e] = attr
		case attr == scenario.AttrInclusive && sAttr == scenario.AttrInclusive:
			// Confirmed in both: separated to the left.
			left.EIDs[e] = scenario.AttrInclusive
		case attr == scenario.AttrInclusive:
			// Definitely in this set but only vaguely in the scenario: the
			// scenario cannot confirm it, so its home stays right while the
			// left keeps a vague copy (it may truly have been there).
			right.EIDs[e] = scenario.AttrInclusive
			left.EIDs[e] = scenario.AttrVague
		default:
			// Vague in the set: remains uncertain on both sides.
			left.EIDs[e] = scenario.AttrVague
			right.EIDs[e] = scenario.AttrVague
		}
	}
	if countInclusive(left.EIDs) == 0 || countInclusive(right.EIDs) == 0 {
		return nil, nil, false
	}
	return left, right, true
}

func countInclusive(m map[ids.EID]scenario.Attr) int {
	c := 0
	for _, a := range m {
		if a == scenario.AttrInclusive {
			c++
		}
	}
	return c
}

// PositiveScenarios returns, for target EID e, the scenarios along its
// root-to-home path in which e was confirmed (left turns): the EID's
// coarse-grained distinguishing trajectory handed to the V stage.
func (p *Partition) PositiveScenarios(e ids.EID) ([]scenario.ID, error) {
	home, ok := p.home[e]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownEID, e)
	}
	var out []scenario.ID
	n := p.root
	for n != home && !n.isLeaf() {
		if n.Left.EIDs[e] == scenario.AttrInclusive {
			out = append(out, n.Scenario)
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return out, nil
}

// Resolved reports whether e's home set contains no other inclusive EID.
func (p *Partition) Resolved(e ids.EID) (bool, error) {
	home, ok := p.home[e]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrUnknownEID, e)
	}
	return home.InclusiveCount() == 1, nil
}

// Unresolved returns the sorted target EIDs whose sets still hold more than
// one inclusive EID after splitting (candidates for matching refining).
func (p *Partition) Unresolved() []ids.EID {
	var out []ids.EID
	for e, home := range p.home {
		if home.InclusiveCount() > 1 {
			out = append(out, e)
		}
	}
	return ids.SortEIDs(out)
}

// AmbiguousWith returns the other EIDs that share e's home set, inclusive or
// vague: the identities whose VIDs may be confused with e's.
func (p *Partition) AmbiguousWith(e ids.EID) ([]ids.EID, error) {
	home, ok := p.home[e]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownEID, e)
	}
	out := make([]ids.EID, 0, len(home.EIDs)-1)
	for other := range home.EIDs {
		if other != e {
			out = append(out, other)
		}
	}
	return ids.SortEIDs(out), nil
}

// PostOrder returns the target EIDs in the matching order of Theorem 4.1:
// the post-order traversal of the split tree, so that when an EID is
// matched, every EID it could be confused with inside its positive-scenario
// intersection has already been matched and its VID can be ruled out.
// Within one leaf, EIDs are ordered lexicographically.
func (p *Partition) PostOrder() []ids.EID {
	out := make([]ids.EID, 0, len(p.home))
	seen := make(map[ids.EID]bool, len(p.home))
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		walk(n.Left)
		walk(n.Right)
		if n.isLeaf() {
			for _, e := range n.InclusiveEIDs() {
				if p.home[e] == n && !seen[e] {
					seen[e] = true
					out = append(out, e)
				}
			}
		}
	}
	walk(p.root)
	return out
}

package partition

import (
	"fmt"
	"io"
	"strings"

	"evmatching/internal/ids"
)

// WriteDOT renders the split tree in Graphviz DOT format: internal nodes are
// labeled with the E-Scenario that split them, leaves with their member
// EIDs (vague members parenthesized). It is the debugging view of the
// paper's binary-tree argument (Theorem 4.1).
func (p *Partition) WriteDOT(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("digraph splittree {\n")
	sb.WriteString("  node [fontname=\"monospace\" fontsize=10];\n")
	next := 0
	var walk func(n *Node) int
	walk = func(n *Node) int {
		id := next
		next++
		if n.isLeaf() {
			fmt.Fprintf(&sb, "  n%d [shape=box label=%q];\n", id, leafLabel(n))
			return id
		}
		fmt.Fprintf(&sb, "  n%d [shape=ellipse label=\"scenario %d\"];\n", id, n.Scenario)
		left := walk(n.Left)
		fmt.Fprintf(&sb, "  n%d -> n%d [label=\"in\"];\n", id, left)
		right := walk(n.Right)
		fmt.Fprintf(&sb, "  n%d -> n%d [label=\"out\"];\n", id, right)
		return id
	}
	walk(p.root)
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// leafLabel summarizes a leaf's membership, deterministically ordered.
func leafLabel(n *Node) string {
	var parts []string
	for _, e := range n.InclusiveEIDs() {
		parts = append(parts, string(e))
	}
	for _, e := range n.VagueEIDs() {
		parts = append(parts, "("+string(e)+"?)")
	}
	if len(parts) == 0 {
		return "∅"
	}
	return strings.Join(parts, "\\n")
}

// Stats summarizes the split tree for analysis: leaf count, tree depth, and
// the recorded-scenario count against Theorem 4.2's n−1 bound.
type Stats struct {
	Targets  int
	Leaves   int
	Depth    int
	Recorded int
	Resolved int
	BoundNm1 int
}

// TreeStats computes the current tree statistics.
func (p *Partition) TreeStats() Stats {
	st := Stats{
		Targets:  len(p.home),
		Leaves:   len(p.leaves),
		Recorded: len(p.recorded),
		BoundNm1: len(p.home) - 1,
	}
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		if n == nil {
			return
		}
		if depth > st.Depth {
			st.Depth = depth
		}
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	walk(p.root, 0)
	for _, e := range ids.SortedEIDKeys(p.home) {
		if ok, err := p.Resolved(e); err == nil && ok {
			st.Resolved++
		}
	}
	return st
}

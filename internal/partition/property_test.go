package partition

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// genWorld builds a random target set and scenario stream from a seed.
func genWorld(seed int64) ([]ids.EID, []*scenario.EScenario) {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(16)
	targets := make([]ids.EID, n)
	for i := range targets {
		targets[i] = ids.EID(rune('a' + i))
	}
	numSc := 1 + rng.Intn(12)
	scenarios := make([]*scenario.EScenario, numSc)
	for s := range scenarios {
		members := make(map[ids.EID]scenario.Attr)
		for _, e := range targets {
			r := rng.Float64()
			switch {
			case r < 0.3:
				members[e] = scenario.AttrInclusive
			case r < 0.4:
				members[e] = scenario.AttrVague
			}
		}
		scenarios[s] = &scenario.EScenario{ID: scenario.ID(s), EIDs: members}
	}
	return targets, scenarios
}

// TestSplitOrderIndependence pins the property behind Algorithm 3's
// simultaneous refinement: applying a scenario set in any order yields the
// same partition (the common refinement).
func TestSplitOrderIndependence(t *testing.T) {
	f := func(seed int64, permSeed int64) bool {
		targets, scenarios := genWorld(seed)
		p1, err := New(append([]ids.EID(nil), targets...))
		if err != nil {
			return false
		}
		for _, s := range scenarios {
			p1.SplitBy(s)
		}
		p2, err := New(append([]ids.EID(nil), targets...))
		if err != nil {
			return false
		}
		perm := rand.New(rand.NewSource(permSeed)).Perm(len(scenarios))
		for _, i := range perm {
			p2.SplitBy(scenarios[i])
		}
		return reflect.DeepEqual(p1.Sets(), p2.Sets())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSplitIdempotence: re-applying the full scenario stream changes
// nothing — the partition is a fixed point of its own refinement.
func TestSplitIdempotence(t *testing.T) {
	f := func(seed int64) bool {
		targets, scenarios := genWorld(seed)
		p, err := New(targets)
		if err != nil {
			return false
		}
		for _, s := range scenarios {
			p.SplitBy(s)
		}
		before := p.Sets()
		changedAgain := false
		for _, s := range scenarios {
			if p.SplitBy(s) {
				changedAgain = true
			}
		}
		return !changedAgain && reflect.DeepEqual(before, p.Sets())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEveryEIDHasExactlyOneInclusiveHome is the invariant the practical
// semantics preserve even when vague copies multiply.
func TestEveryEIDHasExactlyOneInclusiveHome(t *testing.T) {
	f := func(seed int64) bool {
		targets, scenarios := genWorld(seed)
		p, err := New(targets)
		if err != nil {
			return false
		}
		for _, s := range scenarios {
			p.SplitBy(s)
			homes := map[ids.EID]int{}
			for _, set := range p.Sets() {
				for _, e := range set {
					homes[e]++
				}
			}
			if len(homes) != len(targets) {
				return false
			}
			for _, n := range homes {
				if n != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRecordedScenariosAreSufficient: replaying only the recorded
// (effective) scenarios reproduces the final partition — the skipped ones
// truly contributed nothing (paper Remark).
func TestRecordedScenariosAreSufficient(t *testing.T) {
	f := func(seed int64) bool {
		targets, scenarios := genWorld(seed)
		p, err := New(append([]ids.EID(nil), targets...))
		if err != nil {
			return false
		}
		byID := map[scenario.ID]*scenario.EScenario{}
		for _, s := range scenarios {
			byID[s.ID] = s
			p.SplitBy(s)
		}
		replay, err := New(append([]ids.EID(nil), targets...))
		if err != nil {
			return false
		}
		for _, id := range p.Recorded() {
			replay.SplitBy(byID[id])
		}
		return reflect.DeepEqual(p.Sets(), replay.Sets())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSplitBy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	targets := make([]ids.EID, 500)
	for i := range targets {
		targets[i] = ids.EID(rune(i))
	}
	scenarios := make([]*scenario.EScenario, 64)
	for s := range scenarios {
		members := make(map[ids.EID]scenario.Attr)
		for _, e := range targets {
			if rng.Float64() < 0.1 {
				members[e] = scenario.AttrInclusive
			}
		}
		scenarios[s] = &scenario.EScenario{ID: scenario.ID(s), EIDs: members}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := New(targets)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range scenarios {
			p.SplitBy(s)
			if p.Done() {
				break
			}
		}
	}
}

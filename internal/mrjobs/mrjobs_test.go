package mrjobs

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"evmatching/internal/feature"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/mapreduce"
	"evmatching/internal/partition"
	"evmatching/internal/scenario"
	"evmatching/internal/vfilter"
)

func escFor(id scenario.ID, eids ...ids.EID) *scenario.EScenario {
	m := make(map[ids.EID]scenario.Attr, len(eids))
	for _, e := range eids {
		m[e] = scenario.AttrInclusive
	}
	return &scenario.EScenario{ID: id, EIDs: m}
}

func TestSplitIterationBasic(t *testing.T) {
	in := SplitInput{
		Sets: [][]ids.EID{{"a", "b", "c", "d"}},
		Scenarios: []*scenario.EScenario{
			escFor(1, "a", "b"),
			escFor(2, "a", "c"),
		},
	}
	res, err := SplitIteration(context.Background(), mapreduce.SerialExecutor{}, in)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]ids.EID{{"a"}, {"b"}, {"c"}, {"d"}}
	if !reflect.DeepEqual(res.Sets, want) {
		t.Errorf("Sets = %v, want %v", res.Sets, want)
	}
	if len(res.UsedScenarios) != 2 {
		t.Errorf("UsedScenarios = %v", res.UsedScenarios)
	}
}

func TestSplitIterationEmpty(t *testing.T) {
	res, err := SplitIteration(context.Background(), mapreduce.SerialExecutor{}, SplitInput{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 0 {
		t.Errorf("Sets = %v", res.Sets)
	}
}

func TestSplitIterationIgnoresNonTargetEIDs(t *testing.T) {
	// Scenario members outside the partition's targets must not leak in.
	in := SplitInput{
		Sets:      [][]ids.EID{{"a", "b"}},
		Scenarios: []*scenario.EScenario{escFor(1, "a", "z")},
	}
	res, err := SplitIteration(context.Background(), mapreduce.SerialExecutor{}, in)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]ids.EID{{"a"}, {"b"}}
	if !reflect.DeepEqual(res.Sets, want) {
		t.Errorf("Sets = %v, want %v", res.Sets, want)
	}
}

// TestSplitIterationMatchesTreePartition is the MR-vs-serial equivalence
// property: refining the partition through the MapReduce shuffle must give
// the same sets as sequentially applying every scenario to the split tree.
func TestSplitIterationMatchesTreePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(25)
		targets := make([]ids.EID, n)
		for i := range targets {
			targets[i] = ids.EID(rune('a' + i))
		}
		var scenarios []*scenario.EScenario
		numSc := 1 + rng.Intn(6)
		for s := 0; s < numSc; s++ {
			var members []ids.EID
			for _, e := range targets {
				if rng.Float64() < 0.4 {
					members = append(members, e)
				}
			}
			scenarios = append(scenarios, escFor(scenario.ID(s), members...))
		}

		tree, err := partition.New(targets)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range scenarios {
			tree.SplitBy(s)
		}

		for name, exec := range map[string]mapreduce.Executor{
			"serial":   mapreduce.SerialExecutor{},
			"parallel": mapreduce.ParallelExecutor{Workers: 4},
		} {
			res, err := SplitIteration(context.Background(), exec,
				SplitInput{Sets: [][]ids.EID{append([]ids.EID(nil), targets...)}, Scenarios: scenarios})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if !reflect.DeepEqual(res.Sets, tree.Sets()) {
				t.Fatalf("trial %d %s: MR sets %v != tree sets %v", trial, name, res.Sets, tree.Sets())
			}
		}
	}
}

func TestSplitIterationRefinesIteratively(t *testing.T) {
	// Feeding the output sets into a second iteration keeps refining.
	sets := [][]ids.EID{{"a", "b", "c", "d", "e", "f"}}
	first, err := SplitIteration(context.Background(), mapreduce.SerialExecutor{},
		SplitInput{Sets: sets, Scenarios: []*scenario.EScenario{escFor(1, "a", "b", "c")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Sets) != 2 {
		t.Fatalf("first iteration sets = %v", first.Sets)
	}
	second, err := SplitIteration(context.Background(), mapreduce.SerialExecutor{},
		SplitInput{Sets: first.Sets, Scenarios: []*scenario.EScenario{escFor(2, "a", "d")}})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]ids.EID{{"a"}, {"b", "c"}, {"d"}, {"e", "f"}}
	if !reflect.DeepEqual(second.Sets, want) {
		t.Errorf("second iteration sets = %v, want %v", second.Sets, want)
	}
}

// vWorld builds a store with detections for V-stage job tests.
type vWorld struct {
	store   *scenario.Store
	gallery *feature.Gallery
	rng     *rand.Rand
}

func newVWorld(t *testing.T, persons int) *vWorld {
	t.Helper()
	layout, err := geo.NewGridLayout(geo.Square(geo.Pt(0, 0), 100), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	g, err := feature.NewGallery(rng, persons, 64)
	if err != nil {
		t.Fatal(err)
	}
	return &vWorld{store: scenario.NewStore(layout), gallery: g, rng: rng}
}

func (w *vWorld) add(t *testing.T, window int, persons ...int) scenario.ID {
	t.Helper()
	eids := make(map[ids.EID]scenario.Attr)
	dets := make([]scenario.Detection, 0, len(persons))
	for _, p := range persons {
		eids[ids.EID(rune('a'+p))] = scenario.AttrInclusive
		obs := w.gallery.Observe(p, 0.03, w.rng)
		dets = append(dets, scenario.Detection{
			VID:        ids.VIDLabel(p),
			Patch:      feature.EncodePatch(obs, 1, w.rng),
			TruePerson: p,
		})
	}
	e := &scenario.EScenario{Cell: geo.CellID(window % 16), Window: window, EIDs: eids}
	v := &scenario.VScenario{Cell: e.Cell, Window: window, Detections: dets}
	id, err := w.store.Add(e, v)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func newTestFilter(t *testing.T, w *vWorld) *vfilter.Filter {
	t.Helper()
	f, err := vfilter.New(w.store, vfilter.Config{
		Extractor:      feature.Extractor{Dim: 64},
		AcceptMajority: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestExtractScenariosParallel(t *testing.T) {
	w := newVWorld(t, 6)
	var list []scenario.ID
	for i := 0; i < 10; i++ {
		list = append(list, w.add(t, i, i%6, (i+1)%6))
	}
	f := newTestFilter(t, w)
	if err := ExtractScenarios(context.Background(), mapreduce.ParallelExecutor{Workers: 4}, f, list, 3); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().ScenariosProcessed; got != 10 {
		t.Errorf("ScenariosProcessed = %d, want 10", got)
	}
	// Re-extraction is a no-op thanks to the cache, whatever the batching.
	if err := ExtractScenarios(context.Background(), mapreduce.SerialExecutor{}, f, list, 0); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().ScenariosProcessed; got != 10 {
		t.Errorf("after re-run ScenariosProcessed = %d, want 10", got)
	}
	if err := ExtractScenarios(context.Background(), mapreduce.SerialExecutor{}, f, nil, 0); err != nil {
		t.Errorf("empty extract: %v", err)
	}
}

func TestMatchAssignmentsParallel(t *testing.T) {
	w := newVWorld(t, 5)
	shared := w.add(t, 0, 0, 1, 2, 3, 4)
	assignments := make([]Assignment, 5)
	for p := 0; p < 5; p++ {
		assignments[p] = Assignment{
			EID:  ids.EID(rune('a' + p)),
			List: []scenario.ID{shared, w.add(t, 1+p, p)},
		}
	}
	f := newTestFilter(t, w)
	results, err := MatchAssignments(context.Background(), mapreduce.ParallelExecutor{Workers: 4}, f, assignments, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	for p := 0; p < 5; p++ {
		e := ids.EID(rune('a' + p))
		if got := results[e].VID; got != ids.VIDLabel(p) {
			t.Errorf("EID %s matched %v, want %v", e, got, ids.VIDLabel(p))
		}
	}
	empty, err := MatchAssignments(context.Background(), mapreduce.SerialExecutor{}, f, nil, nil, 0)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty assignments: %v, %v", empty, err)
	}
}

func TestMatchAssignmentsRespectsExclusions(t *testing.T) {
	w := newVWorld(t, 2)
	list := []scenario.ID{w.add(t, 0, 0, 1), w.add(t, 1, 0, 1)}
	f := newTestFilter(t, w)
	exclude := map[ids.VID]bool{ids.VIDLabel(0): true}
	results, err := MatchAssignments(context.Background(), mapreduce.SerialExecutor{}, f,
		[]Assignment{{EID: "b", List: list}}, exclude, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := results["b"].VID; got != ids.VIDLabel(1) {
		t.Errorf("matched %v, want %v", got, ids.VIDLabel(1))
	}
}

func TestBatchFor(t *testing.T) {
	cases := []struct {
		n, workers, override, want int
	}{
		{100, 4, 0, 7}, // ceil(100/16)
		{100, 4, 5, 5}, // explicit override wins
		{3, 4, 0, 1},   // fewer items than task slots
		{0, 4, 0, 1},   // degenerate: still a positive batch
		{10, 0, 0, 3},  // workers clamp to 1: ceil(10/4)
		{16, 4, -1, 1}, // negative override means default
	}
	for _, c := range cases {
		if got := BatchFor(c.n, c.workers, c.override); got != c.want {
			t.Errorf("BatchFor(%d, %d, %d) = %d, want %d", c.n, c.workers, c.override, got, c.want)
		}
	}
}

func TestBatchInputCoversRange(t *testing.T) {
	for n := 0; n <= 13; n++ {
		for bs := 1; bs <= 5; bs++ {
			input := batchInput(n, bs)
			next := 0
			for _, kv := range input {
				lo, hi, err := parseBatch(kv.Value, n)
				if err != nil {
					t.Fatalf("n=%d bs=%d: %v", n, bs, err)
				}
				if lo != next || hi <= lo {
					t.Fatalf("n=%d bs=%d: batch %q not contiguous from %d", n, bs, kv.Value, next)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d bs=%d: batches end at %d", n, bs, next)
			}
		}
	}
}

func TestParseBatchRejectsMalformed(t *testing.T) {
	for _, v := range []string{"", "3", "a,b", "1,", ",2", "-1,2", "2,1", "0,9"} {
		if _, _, err := parseBatch(v, 8); err == nil {
			t.Errorf("parseBatch(%q, 8) accepted", v)
		}
	}
}

// TestMatchAssignmentsBatchEquivalence pins that batching is invisible in
// the results: every batch size yields the same per-EID outcome as the
// one-task-per-EID schedule.
func TestMatchAssignmentsBatchEquivalence(t *testing.T) {
	w := newVWorld(t, 6)
	shared := w.add(t, 0, 0, 1, 2, 3, 4, 5)
	assignments := make([]Assignment, 6)
	for p := 0; p < 6; p++ {
		assignments[p] = Assignment{
			EID:  ids.EID(rune('a' + p)),
			List: []scenario.ID{shared, w.add(t, 1+p, p)},
		}
	}
	f := newTestFilter(t, w)
	base, err := MatchAssignments(context.Background(), mapreduce.SerialExecutor{}, f, assignments, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for bs := 2; bs <= len(assignments)+1; bs++ {
		got, err := MatchAssignments(context.Background(), mapreduce.ParallelExecutor{Workers: 4}, f, assignments, nil, bs)
		if err != nil {
			t.Fatalf("batch %d: %v", bs, err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("batch %d results diverge: %v vs %v", bs, got, base)
		}
	}
}

// Package mrjobs expresses the EV-Matching stages as MapReduce jobs (paper
// §V). The key operation — intersecting an EID partition with the
// E-Scenarios of one timestamp — is implemented with the (key, value)
// shuffle exactly as Algorithm 3 describes: map emits (eid, setID) for every
// set membership, the reduce groups each EID's memberships into a signature,
// and the merge groups EIDs by signature into the refined partition. The V
// stage parallelizes feature extraction and per-EID comparison across
// mappers (§V-C), in contiguous batches so each worker amortizes dispatch
// and working-storage cost across the scenarios it owns.
package mrjobs

import (
	"context"
	"fmt"
	"slices"
	"strconv"
	"strings"
	"sync"

	"evmatching/internal/ids"
	"evmatching/internal/mapreduce"
	"evmatching/internal/scenario"
	"evmatching/internal/vfilter"
)

// Set-ID prefixes distinguish partition sets from scenario sets in the
// shuffle (both participate in the intersection).
const (
	partitionSetPrefix = "P"
	scenarioSetPrefix  = "S"
)

// setKey builds a shuffle set ID: the prefix followed by the zero-padded
// decimal id — identical bytes to fmt.Sprintf("%s%06d", prefix, id) without
// the verb parsing.
func setKey(prefix string, id int) string {
	s := strconv.Itoa(id)
	if pad := 6 - len(s); pad > 0 {
		return prefix + "000000"[:pad] + s
	}
	return prefix + s
}

// BatchFor returns the task batch length for n items: the explicit override
// when positive, else ceil(n / (4·workers)), giving each worker about four
// tasks — enough slack for work stealing across uneven batches while
// amortizing per-task dispatch over many items. The result is always ≥ 1.
func BatchFor(n, workers, override int) int {
	if override > 0 {
		return override
	}
	if workers < 1 {
		workers = 1
	}
	b := (n + 4*workers - 1) / (4 * workers)
	if b < 1 {
		b = 1
	}
	return b
}

// batchInput builds one task record per contiguous batch of n items. The
// value carries the "lo,hi" half-open range into the caller's slice; the key
// is the batch index, zero-padded so task keys sort in batch order.
func batchInput(n, batchSize int) []mapreduce.KeyValue {
	if batchSize < 1 {
		batchSize = 1
	}
	input := make([]mapreduce.KeyValue, 0, (n+batchSize-1)/batchSize)
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		input = append(input, mapreduce.KeyValue{
			Key:   setKey("b", len(input)),
			Value: strconv.Itoa(lo) + "," + strconv.Itoa(hi),
		})
	}
	return input
}

// parseBatch decodes a batchInput value back into its [lo, hi) range,
// validating it against the slice length it indexes.
func parseBatch(v string, n int) (lo, hi int, err error) {
	c := strings.IndexByte(v, ',')
	if c < 0 {
		return 0, 0, fmt.Errorf("bad batch range %q", v)
	}
	lo, err = strconv.Atoi(v[:c])
	if err != nil {
		return 0, 0, fmt.Errorf("bad batch range %q: %w", v, err)
	}
	hi, err = strconv.Atoi(v[c+1:])
	if err != nil {
		return 0, 0, fmt.Errorf("bad batch range %q: %w", v, err)
	}
	if lo < 0 || hi < lo || hi > n {
		return 0, 0, fmt.Errorf("batch range %q out of [0,%d]", v, n)
	}
	return lo, hi, nil
}

// SplitInput is one Algorithm-3 iteration's input: the current partition and
// the E-Scenarios selected at one timestamp, pre-filtered to the target EIDs
// (the preprocess step).
type SplitInput struct {
	// Sets holds the current partition's sets (inclusive members only).
	Sets [][]ids.EID
	// Scenarios holds the EID sets of the selected E-Scenarios.
	Scenarios []*scenario.EScenario
}

// SplitResult is the refined partition after one iteration.
type SplitResult struct {
	// Sets is the new partition, each set sorted, ordered by smallest EID.
	Sets [][]ids.EID
	// UsedScenarios lists the scenario IDs whose sets appeared in at least
	// one signature group boundary (candidates for recording).
	UsedScenarios []scenario.ID
}

// SplitIteration refines the partition by every provided scenario at once,
// using two chained MapReduce jobs: membership shuffle then signature merge.
// The result equals sequentially intersecting each set with each scenario.
func SplitIteration(ctx context.Context, exec mapreduce.Executor, in SplitInput) (*SplitResult, error) {
	if len(in.Sets) == 0 {
		return &SplitResult{}, nil
	}
	targets := make(map[ids.EID]bool)
	input := make([]mapreduce.KeyValue, 0, len(in.Sets)+len(in.Scenarios))
	var strs []string // member buffer reused across records
	for i, set := range in.Sets {
		strs = strs[:0]
		for _, e := range set {
			strs = append(strs, string(e))
			targets[e] = true
		}
		input = append(input, mapreduce.KeyValue{
			Key:   setKey(partitionSetPrefix, i),
			Value: strings.Join(strs, ","),
		})
	}
	for _, s := range in.Scenarios {
		strs = strs[:0]
		for _, e := range s.SortedEIDs() {
			if s.Inclusive(e) && targets[e] {
				strs = append(strs, string(e))
			}
		}
		if len(strs) == 0 {
			continue
		}
		input = append(input, mapreduce.KeyValue{
			Key:   setKey(scenarioSetPrefix, int(s.ID)),
			Value: strings.Join(strs, ","),
		})
	}

	// Job 1 — membership shuffle (Algorithm 3 Map + Reduce): emit
	// (eid, setID) for every membership, then fold each EID's set IDs into
	// a sorted signature.
	shuffle := &mapreduce.Job{
		Name:   "ev.split.shuffle",
		Input:  input,
		Map:    MembershipMap,
		Reduce: SignatureReduce,
	}
	// Job 2 — merge (Algorithm 3 Merge): group EIDs by identical signature;
	// each group is one element of the refined partition.
	merge := &mapreduce.Job{
		Name:   "ev.split.merge",
		Map:    identityMap,
		Reduce: MergeReduce,
	}
	res, err := mapreduce.Chain(ctx, exec, []*mapreduce.Job{shuffle, merge}, nil)
	if err != nil {
		return nil, fmt.Errorf("mrjobs: split iteration: %w", err)
	}

	out := &SplitResult{}
	usedSc := make(map[scenario.ID]bool)
	for _, kv := range res.Output {
		var set []ids.EID
		for _, e := range strings.Split(kv.Value, ",") {
			if e != "" {
				set = append(set, ids.EID(e))
			}
		}
		if len(set) == 0 {
			continue
		}
		out.Sets = append(out.Sets, set)
		for _, sid := range strings.Split(kv.Key, "|") {
			if strings.HasPrefix(sid, scenarioSetPrefix) {
				if id, err := strconv.Atoi(sid[len(scenarioSetPrefix):]); err == nil {
					usedSc[scenario.ID(id)] = true
				}
			}
		}
	}
	slices.SortFunc(out.Sets, func(a, b []ids.EID) int {
		if a[0] < b[0] {
			return -1
		}
		if a[0] > b[0] {
			return 1
		}
		return 0
	})
	for id := range usedSc {
		out.UsedScenarios = append(out.UsedScenarios, id)
	}
	slices.Sort(out.UsedScenarios)
	return out, nil
}

// MembershipMap emits (eid, setID) for every EID listed in the set record
// (Algorithm 3 Map). The member list is walked in place — no intermediate
// split slice — since this map runs once per set per iteration.
func MembershipMap(in mapreduce.KeyValue, emit mapreduce.Emitter) error {
	v := in.Value
	for len(v) > 0 {
		var e string
		if c := strings.IndexByte(v, ','); c >= 0 {
			e, v = v[:c], v[c+1:]
		} else {
			e, v = v, ""
		}
		if e != "" {
			emit(mapreduce.KeyValue{Key: e, Value: in.Key})
		}
	}
	return nil
}

// SignatureReduce folds one EID's set memberships into a canonical signature
// key (Algorithm 3 Reduce: emit (eidsetidlist, eid)). Values arrive sorted —
// the Executor contract — which is exactly the canonical signature order, so
// the memberships join as delivered.
func SignatureReduce(key string, values []string, emit mapreduce.Emitter) error {
	emit(mapreduce.KeyValue{Key: strings.Join(values, "|"), Value: key})
	return nil
}

// MergeReduce groups the EIDs sharing one signature into a partition element
// (Algorithm 3 Merge: emit (eidsetidlist, eidlist)). Values arrive sorted per
// the Executor contract, so the EID list joins as delivered.
func MergeReduce(key string, values []string, emit mapreduce.Emitter) error {
	emit(mapreduce.KeyValue{Key: key, Value: strings.Join(values, ",")})
	return nil
}

func identityMap(in mapreduce.KeyValue, emit mapreduce.Emitter) error {
	emit(in)
	return nil
}

// ExtractScenarios runs the parallel feature-extraction stage (§V-C): each
// mapper processes one contiguous batch of V-Scenarios through the filter,
// which caches the features for the comparison stage. The visual operations
// have no data dependency, so batches parallelize freely; within a batch the
// filter reuses one extraction buffer across every scenario, amortizing the
// working-storage cost the way the paper assumes each worker amortizes
// video-processing setup over the scenarios it owns. batchSize ≤ 0 means one
// scenario per task.
func ExtractScenarios(ctx context.Context, exec mapreduce.Executor, f *vfilter.Filter, scenarios []scenario.ID, batchSize int) error {
	if len(scenarios) == 0 {
		return nil
	}
	job := &mapreduce.Job{
		Name:  "ev.vstage.extract",
		Input: batchInput(len(scenarios), batchSize),
		Map: func(in mapreduce.KeyValue, emit mapreduce.Emitter) error {
			lo, hi, err := parseBatch(in.Value, len(scenarios))
			if err != nil {
				return fmt.Errorf("extract task %q: %w", in.Key, err)
			}
			if err := f.ExtractBatch(scenarios[lo:hi]); err != nil {
				return err
			}
			emit(mapreduce.KeyValue{Key: in.Key, Value: "ok"})
			return nil
		},
	}
	if _, err := exec.Run(ctx, job); err != nil {
		return fmt.Errorf("mrjobs: extract: %w", err)
	}
	return nil
}

// Assignment is one EID's V-stage work item: the scenario list selected by
// set splitting.
type Assignment struct {
	EID  ids.EID
	List []scenario.ID
}

// MatchAssignments runs the parallel comparison stage: the V-Scenarios of
// one EID's list are conveyed to the same mapper, and a mapper owns a
// contiguous batch of EIDs so several comparisons amortize one task
// dispatch. Exclusions (already-matched VIDs) apply to every mapper. Results
// are keyed by EID. batchSize ≤ 0 means one EID per task.
func MatchAssignments(ctx context.Context, exec mapreduce.Executor, f *vfilter.Filter, assignments []Assignment, exclude map[ids.VID]bool, batchSize int) (map[ids.EID]vfilter.Result, error) {
	if len(assignments) == 0 {
		return map[ids.EID]vfilter.Result{}, nil
	}
	// Results travel through a mutex-guarded side map rather than a channel:
	// a fault-tolerant cluster may re-execute or speculatively duplicate a
	// map task, and a straggling attempt can still be running when the job
	// completes. Map writes are idempotent (Match is deterministic per
	// assignment), and the guarded copy below means a late write can never
	// panic or race — it lands in the abandoned map.
	var resMu sync.Mutex
	results := make(map[ids.EID]vfilter.Result, len(assignments))
	job := &mapreduce.Job{
		Name:  "ev.vstage.compare",
		Input: batchInput(len(assignments), batchSize),
		Map: func(in mapreduce.KeyValue, emit mapreduce.Emitter) error {
			lo, hi, err := parseBatch(in.Value, len(assignments))
			if err != nil {
				return fmt.Errorf("compare task %q: %w", in.Key, err)
			}
			batch := make([]vfilter.Result, 0, hi-lo)
			for _, a := range assignments[lo:hi] {
				res, err := f.Match(a.EID, a.List, exclude)
				if err != nil {
					return err
				}
				batch = append(batch, res)
			}
			resMu.Lock()
			for _, res := range batch {
				results[res.EID] = res
			}
			resMu.Unlock()
			for _, res := range batch {
				emit(mapreduce.KeyValue{Key: string(res.EID), Value: string(res.VID)})
			}
			return nil
		},
	}
	if _, err := exec.Run(ctx, job); err != nil {
		return nil, fmt.Errorf("mrjobs: compare: %w", err)
	}
	resMu.Lock()
	defer resMu.Unlock()
	out := make(map[ids.EID]vfilter.Result, len(results))
	for _, a := range assignments {
		if res, ok := results[a.EID]; ok {
			out[a.EID] = res
		}
	}
	return out, nil
}

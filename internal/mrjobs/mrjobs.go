// Package mrjobs expresses the EV-Matching stages as MapReduce jobs (paper
// §V). The key operation — intersecting an EID partition with the
// E-Scenarios of one timestamp — is implemented with the (key, value)
// shuffle exactly as Algorithm 3 describes: map emits (eid, setID) for every
// set membership, the reduce groups each EID's memberships into a signature,
// and the merge groups EIDs by signature into the refined partition. The V
// stage parallelizes per-scenario feature extraction and per-EID comparison
// across mappers (§V-C).
package mrjobs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"evmatching/internal/ids"
	"evmatching/internal/mapreduce"
	"evmatching/internal/scenario"
	"evmatching/internal/vfilter"
)

// Set-ID prefixes distinguish partition sets from scenario sets in the
// shuffle (both participate in the intersection).
const (
	partitionSetPrefix = "P"
	scenarioSetPrefix  = "S"
)

// SplitInput is one Algorithm-3 iteration's input: the current partition and
// the E-Scenarios selected at one timestamp, pre-filtered to the target EIDs
// (the preprocess step).
type SplitInput struct {
	// Sets holds the current partition's sets (inclusive members only).
	Sets [][]ids.EID
	// Scenarios holds the EID sets of the selected E-Scenarios.
	Scenarios []*scenario.EScenario
}

// SplitResult is the refined partition after one iteration.
type SplitResult struct {
	// Sets is the new partition, each set sorted, ordered by smallest EID.
	Sets [][]ids.EID
	// UsedScenarios lists the scenario IDs whose sets appeared in at least
	// one signature group boundary (candidates for recording).
	UsedScenarios []scenario.ID
}

// SplitIteration refines the partition by every provided scenario at once,
// using two chained MapReduce jobs: membership shuffle then signature merge.
// The result equals sequentially intersecting each set with each scenario.
func SplitIteration(ctx context.Context, exec mapreduce.Executor, in SplitInput) (*SplitResult, error) {
	if len(in.Sets) == 0 {
		return &SplitResult{}, nil
	}
	targets := make(map[ids.EID]bool)
	input := make([]mapreduce.KeyValue, 0, len(in.Sets)+len(in.Scenarios))
	for i, set := range in.Sets {
		strs := make([]string, len(set))
		for j, e := range set {
			strs[j] = string(e)
			targets[e] = true
		}
		input = append(input, mapreduce.KeyValue{
			Key:   fmt.Sprintf("%s%06d", partitionSetPrefix, i),
			Value: strings.Join(strs, ","),
		})
	}
	for _, s := range in.Scenarios {
		var strs []string
		for _, e := range s.SortedEIDs() {
			if s.Inclusive(e) && targets[e] {
				strs = append(strs, string(e))
			}
		}
		if len(strs) == 0 {
			continue
		}
		input = append(input, mapreduce.KeyValue{
			Key:   fmt.Sprintf("%s%06d", scenarioSetPrefix, s.ID),
			Value: strings.Join(strs, ","),
		})
	}

	// Job 1 — membership shuffle (Algorithm 3 Map + Reduce): emit
	// (eid, setID) for every membership, then fold each EID's set IDs into
	// a sorted signature.
	shuffle := &mapreduce.Job{
		Name:   "ev.split.shuffle",
		Input:  input,
		Map:    MembershipMap,
		Reduce: SignatureReduce,
	}
	// Job 2 — merge (Algorithm 3 Merge): group EIDs by identical signature;
	// each group is one element of the refined partition.
	merge := &mapreduce.Job{
		Name:   "ev.split.merge",
		Map:    identityMap,
		Reduce: MergeReduce,
	}
	res, err := mapreduce.Chain(ctx, exec, []*mapreduce.Job{shuffle, merge}, nil)
	if err != nil {
		return nil, fmt.Errorf("mrjobs: split iteration: %w", err)
	}

	out := &SplitResult{}
	usedSc := make(map[scenario.ID]bool)
	for _, kv := range res.Output {
		var set []ids.EID
		for _, e := range strings.Split(kv.Value, ",") {
			if e != "" {
				set = append(set, ids.EID(e))
			}
		}
		if len(set) == 0 {
			continue
		}
		out.Sets = append(out.Sets, set)
		for _, sid := range strings.Split(kv.Key, "|") {
			if strings.HasPrefix(sid, scenarioSetPrefix) {
				var id int
				if _, err := fmt.Sscanf(sid[len(scenarioSetPrefix):], "%d", &id); err == nil {
					usedSc[scenario.ID(id)] = true
				}
			}
		}
	}
	sort.Slice(out.Sets, func(i, j int) bool { return out.Sets[i][0] < out.Sets[j][0] })
	for id := range usedSc {
		out.UsedScenarios = append(out.UsedScenarios, id)
	}
	sort.Slice(out.UsedScenarios, func(i, j int) bool { return out.UsedScenarios[i] < out.UsedScenarios[j] })
	return out, nil
}

// MembershipMap emits (eid, setID) for every EID listed in the set record
// (Algorithm 3 Map).
func MembershipMap(in mapreduce.KeyValue, emit mapreduce.Emitter) error {
	for _, e := range strings.Split(in.Value, ",") {
		if e != "" {
			emit(mapreduce.KeyValue{Key: e, Value: in.Key})
		}
	}
	return nil
}

// SignatureReduce folds one EID's set memberships into a canonical signature
// key (Algorithm 3 Reduce: emit (eidsetidlist, eid)).
func SignatureReduce(key string, values []string, emit mapreduce.Emitter) error {
	sigs := make([]string, len(values))
	copy(sigs, values)
	sort.Strings(sigs)
	emit(mapreduce.KeyValue{Key: strings.Join(sigs, "|"), Value: key})
	return nil
}

// MergeReduce groups the EIDs sharing one signature into a partition element
// (Algorithm 3 Merge: emit (eidsetidlist, eidlist)).
func MergeReduce(key string, values []string, emit mapreduce.Emitter) error {
	eids := make([]string, len(values))
	copy(eids, values)
	sort.Strings(eids)
	emit(mapreduce.KeyValue{Key: key, Value: strings.Join(eids, ",")})
	return nil
}

func identityMap(in mapreduce.KeyValue, emit mapreduce.Emitter) error {
	emit(in)
	return nil
}

// ExtractScenarios runs the parallel feature-extraction stage (§V-C): each
// mapper processes one V-Scenario through the filter, which caches the
// features for the comparison stage. These visual operations have no data
// dependency, so they parallelize freely.
func ExtractScenarios(ctx context.Context, exec mapreduce.Executor, f *vfilter.Filter, scenarios []scenario.ID) error {
	if len(scenarios) == 0 {
		return nil
	}
	input := make([]mapreduce.KeyValue, len(scenarios))
	for i, id := range scenarios {
		input[i] = mapreduce.KeyValue{Key: fmt.Sprintf("%d", id), Value: ""}
	}
	job := &mapreduce.Job{
		Name:  "ev.vstage.extract",
		Input: input,
		Map: func(in mapreduce.KeyValue, emit mapreduce.Emitter) error {
			var id int
			if _, err := fmt.Sscanf(in.Key, "%d", &id); err != nil {
				return fmt.Errorf("bad scenario id %q: %w", in.Key, err)
			}
			if _, err := f.Features(scenario.ID(id)); err != nil {
				return err
			}
			emit(mapreduce.KeyValue{Key: in.Key, Value: "ok"})
			return nil
		},
	}
	if _, err := exec.Run(ctx, job); err != nil {
		return fmt.Errorf("mrjobs: extract: %w", err)
	}
	return nil
}

// Assignment is one EID's V-stage work item: the scenario list selected by
// set splitting.
type Assignment struct {
	EID  ids.EID
	List []scenario.ID
}

// MatchAssignments runs the parallel comparison stage: the V-Scenarios of
// one EID's list are conveyed to the same mapper, so multiple EIDs'
// comparisons proceed in parallel. Exclusions (already-matched VIDs) apply
// to every mapper. Results are keyed by EID.
func MatchAssignments(ctx context.Context, exec mapreduce.Executor, f *vfilter.Filter, assignments []Assignment, exclude map[ids.VID]bool) (map[ids.EID]vfilter.Result, error) {
	if len(assignments) == 0 {
		return map[ids.EID]vfilter.Result{}, nil
	}
	byEID := make(map[ids.EID]Assignment, len(assignments))
	input := make([]mapreduce.KeyValue, len(assignments))
	for i, a := range assignments {
		byEID[a.EID] = a
		input[i] = mapreduce.KeyValue{Key: string(a.EID), Value: ""}
	}
	// Results travel through a mutex-guarded side map rather than a channel:
	// a fault-tolerant cluster may re-execute or speculatively duplicate a
	// map task, and a straggling attempt can still be running when the job
	// completes. Map writes are idempotent (Match is deterministic per
	// assignment), and the guarded copy below means a late write can never
	// panic or race — it lands in the abandoned map.
	var resMu sync.Mutex
	results := make(map[ids.EID]vfilter.Result, len(assignments))
	job := &mapreduce.Job{
		Name:  "ev.vstage.compare",
		Input: input,
		Map: func(in mapreduce.KeyValue, emit mapreduce.Emitter) error {
			a, ok := byEID[ids.EID(in.Key)]
			if !ok {
				return fmt.Errorf("unknown assignment %q", in.Key)
			}
			res, err := f.Match(a.EID, a.List, exclude)
			if err != nil {
				return err
			}
			resMu.Lock()
			results[a.EID] = res
			resMu.Unlock()
			emit(mapreduce.KeyValue{Key: in.Key, Value: string(res.VID)})
			return nil
		},
	}
	if _, err := exec.Run(ctx, job); err != nil {
		return nil, fmt.Errorf("mrjobs: compare: %w", err)
	}
	resMu.Lock()
	defer resMu.Unlock()
	out := make(map[ids.EID]vfilter.Result, len(results))
	for e := range byEID { //evlint:ignore maprange reads a keyed result per known assignment; no ordered iteration
		if res, ok := results[e]; ok {
			out[e] = res
		}
	}
	return out, nil
}

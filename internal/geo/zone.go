package geo

// Zone classifies a position relative to a scenario cell, per the practical
// setting of the paper (§IV-C, Fig. 2): positions well inside the cell are
// inclusive, positions within the vague width of the border are vague, and
// positions outside the cell are exclusive.
type Zone uint8

// Zone values. The zero value is deliberately invalid so that an
// uninitialized Zone is caught rather than silently treated as exclusive.
const (
	ZoneInclusive Zone = iota + 1
	ZoneVague
	ZoneExclusive
)

// String implements fmt.Stringer.
func (z Zone) String() string {
	switch z {
	case ZoneInclusive:
		return "inclusive"
	case ZoneVague:
		return "vague"
	case ZoneExclusive:
		return "exclusive"
	default:
		return "invalid"
	}
}

// ZoneOf classifies position p relative to cell c of the layout. vagueWidth
// is the width of the vague band along the cell border; zero width makes
// every in-cell position inclusive (the ideal setting).
func ZoneOf(l Layout, c CellID, p Point, vagueWidth float64) Zone {
	at := l.CellOf(p)
	if at != c {
		return ZoneExclusive
	}
	if vagueWidth > 0 && l.BorderDist(p) < vagueWidth {
		return ZoneVague
	}
	return ZoneInclusive
}

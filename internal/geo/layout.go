package geo

import (
	"errors"
	"fmt"
	"math"
)

// CellID identifies one cell (one scenario region) within a Layout.
type CellID int

// NoCell is returned by CellOf for positions outside the layout bounds.
const NoCell CellID = -1

// ErrBadLayout reports an invalid layout construction parameter.
var ErrBadLayout = errors.New("geo: invalid layout parameters")

// Layout discretizes the surveilled region into cells. A cell is the spatial
// footprint of one EV-Scenario (paper Definition 1): the area covered by one
// camera, one room, or one uniform tile of the combined camera view.
type Layout interface {
	// CellOf returns the cell containing p, or NoCell if p is out of bounds.
	CellOf(p Point) CellID
	// Center returns the center of cell c.
	Center(c CellID) Point
	// NumCells returns the number of cells in the layout.
	NumCells() int
	// BorderDist returns the distance from p to the border of its own cell.
	// The practical setting classifies positions with BorderDist below the
	// vague-zone width as vague (paper Fig. 2).
	BorderDist(p Point) float64
	// Bounds returns the overall region covered by the layout.
	Bounds() Rect
	// Neighbors returns the cells adjacent to c, in deterministic order.
	Neighbors(c CellID) []CellID
}

// Compile-time interface compliance checks.
var (
	_ Layout = (*GridLayout)(nil)
	_ Layout = (*HexLayout)(nil)
)

// GridLayout tiles a rectangular region with a Cols × Rows uniform grid.
type GridLayout struct {
	bounds Rect
	cols   int
	rows   int
	cellW  float64
	cellH  float64
}

// NewGridLayout builds a grid layout over bounds with the given cell counts.
func NewGridLayout(bounds Rect, cols, rows int) (*GridLayout, error) {
	if cols < 1 || rows < 1 {
		return nil, fmt.Errorf("%w: cols=%d rows=%d", ErrBadLayout, cols, rows)
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, fmt.Errorf("%w: empty bounds %+v", ErrBadLayout, bounds)
	}
	return &GridLayout{
		bounds: bounds,
		cols:   cols,
		rows:   rows,
		cellW:  bounds.Width() / float64(cols),
		cellH:  bounds.Height() / float64(rows),
	}, nil
}

// NewSquareGrid builds an approximately square grid with at least numCells
// cells over bounds. Experiments use it to sweep density: with n persons and
// density d persons/cell the region is cut into about n/d cells.
func NewSquareGrid(bounds Rect, numCells int) (*GridLayout, error) {
	if numCells < 1 {
		return nil, fmt.Errorf("%w: numCells=%d", ErrBadLayout, numCells)
	}
	aspect := bounds.Width() / bounds.Height()
	cols := int(math.Ceil(math.Sqrt(float64(numCells) * aspect)))
	if cols < 1 {
		cols = 1
	}
	rows := (numCells + cols - 1) / cols
	if rows < 1 {
		rows = 1
	}
	return NewGridLayout(bounds, cols, rows)
}

// CellOf implements Layout.
func (g *GridLayout) CellOf(p Point) CellID {
	if !g.bounds.Contains(p) {
		return NoCell
	}
	col := int((p.X - g.bounds.Min.X) / g.cellW)
	row := int((p.Y - g.bounds.Min.Y) / g.cellH)
	// Guard against floating-point edge effects on the max border.
	if col >= g.cols {
		col = g.cols - 1
	}
	if row >= g.rows {
		row = g.rows - 1
	}
	return CellID(row*g.cols + col)
}

// Center implements Layout.
func (g *GridLayout) Center(c CellID) Point {
	return g.CellRect(c).Center()
}

// CellRect returns the rectangle of cell c.
func (g *GridLayout) CellRect(c CellID) Rect {
	row, col := int(c)/g.cols, int(c)%g.cols
	min := Point{
		X: g.bounds.Min.X + float64(col)*g.cellW,
		Y: g.bounds.Min.Y + float64(row)*g.cellH,
	}
	return Rect{Min: min, Max: Point{X: min.X + g.cellW, Y: min.Y + g.cellH}}
}

// NumCells implements Layout.
func (g *GridLayout) NumCells() int { return g.cols * g.rows }

// Cols returns the number of grid columns.
func (g *GridLayout) Cols() int { return g.cols }

// Rows returns the number of grid rows.
func (g *GridLayout) Rows() int { return g.rows }

// BorderDist implements Layout.
func (g *GridLayout) BorderDist(p Point) float64 {
	c := g.CellOf(p)
	if c == NoCell {
		return 0
	}
	return g.CellRect(c).BorderDist(p)
}

// Bounds implements Layout.
func (g *GridLayout) Bounds() Rect { return g.bounds }

// Neighbors implements Layout, returning the 4-connected neighbors.
func (g *GridLayout) Neighbors(c CellID) []CellID {
	row, col := int(c)/g.cols, int(c)%g.cols
	out := make([]CellID, 0, 4)
	if row > 0 {
		out = append(out, c-CellID(g.cols))
	}
	if col > 0 {
		out = append(out, c-1)
	}
	if col < g.cols-1 {
		out = append(out, c+1)
	}
	if row < g.rows-1 {
		out = append(out, c+CellID(g.cols))
	}
	return out
}

// Package geo provides the planar geometry primitives used by the EV-Matching
// simulation: points and rectangles in meters, and cell layouts (uniform grid
// and hexagonal) that discretize the surveilled region into scenarios.
//
// A Layout maps positions to CellIDs and reports the distance from a position
// to its cell border, which the practical-setting algorithm uses to place EIDs
// in the inclusive or vague zone of a scenario (paper §IV-C, Fig. 2).
package geo

import (
	"fmt"
	"math"
)

// Point is a position in the surveilled region, in meters.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{X: p.X + q.X, Y: p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{X: p.X - q.X, Y: p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{X: p.X * k, Y: p.Y * k} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Lerp linearly interpolates from p to q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{X: p.X + (q.X-p.X)*t, Y: p.Y + (q.Y-p.Y)*t}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle, closed on the Min side and open on the
// Max side so that adjacent rects tile the plane without overlap.
type Rect struct {
	Min Point `json:"min"`
	Max Point `json:"max"`
}

// NewRect builds the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{X: math.Min(a.X, b.X), Y: math.Min(a.Y, b.Y)},
		Max: Point{X: math.Max(a.X, b.X), Y: math.Max(a.Y, b.Y)},
	}
}

// Square returns the axis-aligned square with the given origin and side.
func Square(origin Point, side float64) Rect {
	return Rect{Min: origin, Max: Point{X: origin.X + side, Y: origin.Y + side}}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{X: (r.Min.X + r.Max.X) / 2, Y: (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies in r (Min-closed, Max-open).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// Intersects reports whether r and s overlap with positive area.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X < s.Max.X && s.Min.X < r.Max.X &&
		r.Min.Y < s.Max.Y && s.Min.Y < r.Max.Y
}

// Clamp returns p constrained to lie within r (treating r as closed); the
// mobility model uses it to keep trajectories inside the region.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// BorderDist returns the distance from p to the nearest edge of r. It is
// negative if p lies outside r.
func (r Rect) BorderDist(p Point) float64 {
	dx := math.Min(p.X-r.Min.X, r.Max.X-p.X)
	dy := math.Min(p.Y-r.Min.Y, r.Max.Y-p.Y)
	return math.Min(dx, dy)
}

package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(3, 4), Pt(1, -2)
	if got := p.Add(q); got != Pt(4, 2) {
		t.Errorf("Add = %v, want (4, 2)", got)
	}
	if got := p.Sub(q); got != Pt(2, 6) {
		t.Errorf("Sub = %v, want (2, 6)", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v, want (6, 8)", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v, want -5", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := Pt(0, 0).Dist(p); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestPointLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v, want %v", got, q)
	}
	if got := p.Lerp(q, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v, want (5, 10)", got)
	}
}

func TestPointDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		d1, d2 := a.Dist(b), b.Dist(a)
		if math.IsInf(d1, 1) || math.IsNaN(d1) {
			return math.IsInf(d2, 1) || math.IsNaN(d2)
		}
		return math.Abs(d1-d2) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Pt(5, 1), Pt(2, 7))
	if r.Min != Pt(2, 1) || r.Max != Pt(5, 7) {
		t.Errorf("NewRect = %+v, want Min=(2,1) Max=(5,7)", r)
	}
}

func TestRectContains(t *testing.T) {
	r := Square(Pt(0, 0), 10)
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{name: "interior", p: Pt(5, 5), want: true},
		{name: "min corner closed", p: Pt(0, 0), want: true},
		{name: "max corner open", p: Pt(10, 10), want: false},
		{name: "max x open", p: Pt(10, 5), want: false},
		{name: "outside", p: Pt(-1, 5), want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Contains(tt.p); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestRectGeometry(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(4, 2))
	if r.Width() != 4 || r.Height() != 2 || r.Area() != 8 {
		t.Errorf("got w=%v h=%v area=%v", r.Width(), r.Height(), r.Area())
	}
	if got := r.Center(); got != Pt(2, 1) {
		t.Errorf("Center = %v, want (2, 1)", got)
	}
}

func TestRectIntersects(t *testing.T) {
	a := Square(Pt(0, 0), 10)
	if !a.Intersects(Square(Pt(5, 5), 10)) {
		t.Error("overlapping squares should intersect")
	}
	if a.Intersects(Square(Pt(10, 0), 10)) {
		t.Error("edge-adjacent squares should not intersect")
	}
	if a.Intersects(Square(Pt(20, 20), 5)) {
		t.Error("distant squares should not intersect")
	}
}

func TestRectClamp(t *testing.T) {
	r := Square(Pt(0, 0), 10)
	if got := r.Clamp(Pt(-5, 15)); got != Pt(0, 10) {
		t.Errorf("Clamp = %v, want (0, 10)", got)
	}
	if got := r.Clamp(Pt(3, 4)); got != Pt(3, 4) {
		t.Errorf("Clamp interior moved point to %v", got)
	}
}

func TestRectBorderDist(t *testing.T) {
	r := Square(Pt(0, 0), 10)
	if got := r.BorderDist(Pt(5, 5)); got != 5 {
		t.Errorf("center BorderDist = %v, want 5", got)
	}
	if got := r.BorderDist(Pt(1, 5)); got != 1 {
		t.Errorf("near-edge BorderDist = %v, want 1", got)
	}
	if got := r.BorderDist(Pt(0, 5)); got != 0 {
		t.Errorf("on-edge BorderDist = %v, want 0", got)
	}
	if got := r.BorderDist(Pt(-2, 5)); got >= 0 {
		t.Errorf("outside BorderDist = %v, want negative", got)
	}
}

func TestRectClampAlwaysInside(t *testing.T) {
	r := Square(Pt(0, 0), 100)
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		p := r.Clamp(Pt(x, y))
		return p.X >= 0 && p.X <= 100 && p.Y >= 0 && p.Y <= 100
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

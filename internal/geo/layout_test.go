package geo

import (
	"math/rand"
	"testing"
)

func TestNewGridLayoutValidation(t *testing.T) {
	bounds := Square(Pt(0, 0), 100)
	if _, err := NewGridLayout(bounds, 0, 3); err == nil {
		t.Error("want error for zero cols")
	}
	if _, err := NewGridLayout(Rect{}, 2, 2); err == nil {
		t.Error("want error for empty bounds")
	}
	g, err := NewGridLayout(bounds, 4, 5)
	if err != nil {
		t.Fatalf("NewGridLayout: %v", err)
	}
	if g.NumCells() != 20 || g.Cols() != 4 || g.Rows() != 5 {
		t.Errorf("got %d cells (%dx%d), want 20 (4x5)", g.NumCells(), g.Cols(), g.Rows())
	}
}

func TestGridCellOfAndCenterRoundTrip(t *testing.T) {
	g, err := NewGridLayout(Square(Pt(0, 0), 1000), 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for c := CellID(0); int(c) < g.NumCells(); c++ {
		if got := g.CellOf(g.Center(c)); got != c {
			t.Fatalf("CellOf(Center(%d)) = %d", c, got)
		}
	}
}

func TestGridCellOfOutOfBounds(t *testing.T) {
	g, _ := NewGridLayout(Square(Pt(0, 0), 100), 2, 2)
	if got := g.CellOf(Pt(-1, 50)); got != NoCell {
		t.Errorf("CellOf outside = %d, want NoCell", got)
	}
	if got := g.CellOf(Pt(100, 100)); got != NoCell {
		t.Errorf("CellOf max corner = %d, want NoCell (max-open)", got)
	}
}

func TestGridBorderDist(t *testing.T) {
	g, _ := NewGridLayout(Square(Pt(0, 0), 100), 2, 2)
	// Cell 0 spans [0,50)x[0,50); its center is 25 from every border.
	if got := g.BorderDist(Pt(25, 25)); got != 25 {
		t.Errorf("center BorderDist = %v, want 25", got)
	}
	if got := g.BorderDist(Pt(48, 25)); got != 2 {
		t.Errorf("near-border BorderDist = %v, want 2", got)
	}
	if got := g.BorderDist(Pt(-5, -5)); got != 0 {
		t.Errorf("out-of-bounds BorderDist = %v, want 0", got)
	}
}

func TestGridNeighbors(t *testing.T) {
	g, _ := NewGridLayout(Square(Pt(0, 0), 90), 3, 3)
	tests := []struct {
		cell CellID
		want int
	}{
		{cell: 4, want: 4}, // center
		{cell: 0, want: 2}, // corner
		{cell: 1, want: 3}, // edge
	}
	for _, tt := range tests {
		if got := g.Neighbors(tt.cell); len(got) != tt.want {
			t.Errorf("Neighbors(%d) = %v, want %d cells", tt.cell, got, tt.want)
		}
	}
}

func TestNewSquareGridCellCount(t *testing.T) {
	bounds := Square(Pt(0, 0), 1000)
	for _, want := range []int{1, 5, 10, 33, 100} {
		g, err := NewSquareGrid(bounds, want)
		if err != nil {
			t.Fatalf("NewSquareGrid(%d): %v", want, err)
		}
		if g.NumCells() < want {
			t.Errorf("NumCells = %d, want >= %d", g.NumCells(), want)
		}
		if g.NumCells() > 2*want+2 {
			t.Errorf("NumCells = %d, too far above target %d", g.NumCells(), want)
		}
	}
}

func TestLayoutsCoverBounds(t *testing.T) {
	bounds := Square(Pt(0, 0), 500)
	grid, err := NewGridLayout(bounds, 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	hex, err := NewHexWithCells(bounds, 49)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for _, l := range []Layout{grid, hex} {
		for i := 0; i < 2000; i++ {
			p := Pt(rng.Float64()*500, rng.Float64()*500)
			c := l.CellOf(p)
			if c == NoCell {
				t.Fatalf("%T: in-bounds point %v has no cell", l, p)
			}
			if int(c) < 0 || int(c) >= l.NumCells() {
				t.Fatalf("%T: cell %d out of range [0,%d)", l, c, l.NumCells())
			}
		}
	}
}

func TestHexCellOfCenterRoundTrip(t *testing.T) {
	h, err := NewHexLayout(Square(Pt(0, 0), 400), 40)
	if err != nil {
		t.Fatal(err)
	}
	for c := CellID(0); int(c) < h.NumCells(); c++ {
		center := h.Center(c)
		if !h.bounds.Contains(center) {
			continue // edge hexes can center outside bounds
		}
		if got := h.CellOf(center); got != c {
			t.Fatalf("CellOf(Center(%d)) = %d", c, got)
		}
	}
}

func TestHexWithCellsApproximatesTarget(t *testing.T) {
	bounds := Square(Pt(0, 0), 1000)
	for _, want := range []int{10, 30, 100} {
		h, err := NewHexWithCells(bounds, want)
		if err != nil {
			t.Fatalf("NewHexWithCells(%d): %v", want, err)
		}
		// Edge padding makes the count overshoot; allow a generous band.
		if h.NumCells() < want || h.NumCells() > 3*want+20 {
			t.Errorf("NumCells = %d for target %d", h.NumCells(), want)
		}
	}
}

func TestHexBorderDistWithinInradius(t *testing.T) {
	h, err := NewHexLayout(Square(Pt(0, 0), 300), 30)
	if err != nil {
		t.Fatal(err)
	}
	inradius := h.Size() * 0.8660254038
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		p := Pt(rng.Float64()*300, rng.Float64()*300)
		d := h.BorderDist(p)
		if d < 0 || d > inradius+1e-9 {
			t.Fatalf("BorderDist(%v) = %v, want in [0, %v]", p, d, inradius)
		}
	}
	// A hex center is exactly the inradius away from its border.
	for c := CellID(0); int(c) < h.NumCells(); c++ {
		center := h.Center(c)
		if !h.bounds.Contains(center) {
			continue
		}
		if d := h.BorderDist(center); d < inradius-1e-6 || d > inradius+1e-6 {
			t.Fatalf("center BorderDist = %v, want %v", d, inradius)
		}
	}
}

func TestHexNeighborsAreMutual(t *testing.T) {
	h, err := NewHexLayout(Square(Pt(0, 0), 300), 35)
	if err != nil {
		t.Fatal(err)
	}
	for c := CellID(0); int(c) < h.NumCells(); c++ {
		for _, n := range h.Neighbors(c) {
			found := false
			for _, back := range h.Neighbors(n) {
				if back == c {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("neighbor relation not mutual: %d -> %d", c, n)
			}
		}
	}
}

func TestHexLayoutValidation(t *testing.T) {
	if _, err := NewHexLayout(Square(Pt(0, 0), 100), 0); err == nil {
		t.Error("want error for zero size")
	}
	if _, err := NewHexWithCells(Square(Pt(0, 0), 100), 0); err == nil {
		t.Error("want error for zero cells")
	}
}

func TestZoneOf(t *testing.T) {
	g, _ := NewGridLayout(Square(Pt(0, 0), 100), 2, 2)
	cell0 := g.CellOf(Pt(25, 25))
	tests := []struct {
		name  string
		p     Point
		width float64
		want  Zone
	}{
		{name: "deep inside", p: Pt(25, 25), width: 5, want: ZoneInclusive},
		{name: "near border", p: Pt(48, 25), width: 5, want: ZoneVague},
		{name: "other cell", p: Pt(75, 25), width: 5, want: ZoneExclusive},
		{name: "zero width ideal", p: Pt(49.9, 25), width: 0, want: ZoneInclusive},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ZoneOf(g, cell0, tt.p, tt.width); got != tt.want {
				t.Errorf("ZoneOf = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestZoneString(t *testing.T) {
	for z, want := range map[Zone]string{
		ZoneInclusive: "inclusive",
		ZoneVague:     "vague",
		ZoneExclusive: "exclusive",
		Zone(0):       "invalid",
	} {
		if got := z.String(); got != want {
			t.Errorf("Zone(%d).String() = %q, want %q", z, got, want)
		}
	}
}

func TestZoneOfPartitionProperty(t *testing.T) {
	// For any in-bounds point and its own cell, the zone is inclusive or
	// vague — never exclusive; for any other cell it is exclusive.
	layouts := []Layout{}
	g, err := NewGridLayout(Square(Pt(0, 0), 300), 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHexWithCells(Square(Pt(0, 0), 300), 20)
	if err != nil {
		t.Fatal(err)
	}
	layouts = append(layouts, g, h)
	rng := rand.New(rand.NewSource(31))
	for _, l := range layouts {
		for i := 0; i < 1500; i++ {
			p := Pt(rng.Float64()*300, rng.Float64()*300)
			own := l.CellOf(p)
			z := ZoneOf(l, own, p, 10)
			if z == ZoneExclusive {
				t.Fatalf("%T: own-cell zone exclusive at %v", l, p)
			}
			other := CellID((int(own) + 1) % l.NumCells())
			if other != own {
				if z := ZoneOf(l, other, p, 10); z != ZoneExclusive {
					t.Fatalf("%T: other-cell zone %v at %v", l, z, p)
				}
			}
		}
	}
}

func TestGridCellRectsTileBounds(t *testing.T) {
	g, err := NewGridLayout(Square(Pt(0, 0), 120), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	var area float64
	for c := CellID(0); int(c) < g.NumCells(); c++ {
		area += g.CellRect(c).Area()
	}
	if diff := area - g.Bounds().Area(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("cell areas sum to %v, bounds area %v", area, g.Bounds().Area())
	}
}

package geo

import (
	"fmt"
	"math"
)

// axial is an axial hex-grid coordinate (pointy-top orientation).
type axial struct {
	q int
	r int
}

// hexDirs are the six axial neighbor offsets, in deterministic order.
var hexDirs = [6]axial{
	{q: 1, r: 0}, {q: 1, r: -1}, {q: 0, r: -1},
	{q: -1, r: 0}, {q: -1, r: 1}, {q: 0, r: 1},
}

// HexLayout tiles a rectangular region with pointy-top hexagonal cells, the
// hexagonal-cell discretization shown in the paper's Fig. 1.
type HexLayout struct {
	bounds  Rect
	size    float64 // center-to-corner radius R
	cells   []axial // id -> axial coordinate
	centers []Point // id -> center point
	index   map[axial]CellID
}

// NewHexLayout builds a hex layout over bounds with the given center-to-corner
// radius. Every hex whose center lies within bounds expanded by one radius is
// enumerated, so all in-bounds positions map to a cell.
func NewHexLayout(bounds Rect, size float64) (*HexLayout, error) {
	if size <= 0 || bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, fmt.Errorf("%w: size=%f bounds=%+v", ErrBadLayout, size, bounds)
	}
	h := &HexLayout{
		bounds: bounds,
		size:   size,
		index:  make(map[axial]CellID),
	}
	// Enumerate axial coordinates whose centers fall in the expanded bounds.
	expanded := Rect{
		Min: Point{X: bounds.Min.X - size, Y: bounds.Min.Y - size},
		Max: Point{X: bounds.Max.X + size, Y: bounds.Max.Y + size},
	}
	rMin := int(math.Floor(expanded.Min.Y / (1.5 * size)))
	rMax := int(math.Ceil(expanded.Max.Y / (1.5 * size)))
	for r := rMin; r <= rMax; r++ {
		// Solve center X range for this row: x = R*sqrt3*(q + r/2).
		qMin := int(math.Floor(expanded.Min.X/(math.Sqrt(3)*size) - float64(r)/2))
		qMax := int(math.Ceil(expanded.Max.X/(math.Sqrt(3)*size) - float64(r)/2))
		for q := qMin; q <= qMax; q++ {
			a := axial{q: q, r: r}
			c := h.axialCenter(a)
			if !expanded.Contains(c) {
				continue
			}
			h.index[a] = CellID(len(h.cells))
			h.cells = append(h.cells, a)
			h.centers = append(h.centers, c)
		}
	}
	if len(h.cells) == 0 {
		return nil, fmt.Errorf("%w: no hex cells cover bounds", ErrBadLayout)
	}
	return h, nil
}

// NewHexWithCells builds a hex layout with approximately numCells cells over
// bounds by sizing the hex radius from the target cell area.
func NewHexWithCells(bounds Rect, numCells int) (*HexLayout, error) {
	if numCells < 1 {
		return nil, fmt.Errorf("%w: numCells=%d", ErrBadLayout, numCells)
	}
	cellArea := bounds.Area() / float64(numCells)
	// Hexagon area = (3*sqrt3/2) * R^2.
	size := math.Sqrt(cellArea * 2 / (3 * math.Sqrt(3)))
	return NewHexLayout(bounds, size)
}

// axialCenter converts axial coordinates to the hex center point.
func (h *HexLayout) axialCenter(a axial) Point {
	return Point{
		X: h.size * math.Sqrt(3) * (float64(a.q) + float64(a.r)/2),
		Y: h.size * 1.5 * float64(a.r),
	}
}

// axialOf converts a point to the axial coordinate of its containing hex,
// using cube rounding.
func (h *HexLayout) axialOf(p Point) axial {
	qf := (math.Sqrt(3)/3*p.X - p.Y/3) / h.size
	rf := (2.0 / 3.0 * p.Y) / h.size
	return roundAxial(qf, rf)
}

// roundAxial rounds fractional axial coordinates to the nearest hex.
func roundAxial(qf, rf float64) axial {
	sf := -qf - rf
	q, r, s := math.Round(qf), math.Round(rf), math.Round(sf)
	dq, dr, ds := math.Abs(q-qf), math.Abs(r-rf), math.Abs(s-sf)
	switch {
	case dq > dr && dq > ds:
		q = -r - s
	case dr > ds:
		r = -q - s
	}
	return axial{q: int(q), r: int(r)}
}

// CellOf implements Layout.
func (h *HexLayout) CellOf(p Point) CellID {
	if !h.bounds.Contains(p) {
		return NoCell
	}
	a := h.axialOf(p)
	if id, ok := h.index[a]; ok {
		return id
	}
	// Edge hexes just outside the enumerated band: snap to the nearest
	// enumerated neighbor.
	best, bestDist := NoCell, math.Inf(1)
	for _, d := range hexDirs {
		n := axial{q: a.q + d.q, r: a.r + d.r}
		if id, ok := h.index[n]; ok {
			if dist := p.Dist(h.centers[id]); dist < bestDist {
				best, bestDist = id, dist
			}
		}
	}
	return best
}

// Center implements Layout.
func (h *HexLayout) Center(c CellID) Point { return h.centers[c] }

// NumCells implements Layout.
func (h *HexLayout) NumCells() int { return len(h.cells) }

// Size returns the center-to-corner radius of each hex cell.
func (h *HexLayout) Size() float64 { return h.size }

// BorderDist implements Layout. For a pointy-top hexagon the distance to the
// border is the inradius minus the largest projection of the offset from the
// center onto the three edge-normal axes (0°, 60°, 120°).
func (h *HexLayout) BorderDist(p Point) float64 {
	c := h.CellOf(p)
	if c == NoCell {
		return 0
	}
	d := p.Sub(h.centers[c])
	inradius := h.size * math.Sqrt(3) / 2
	proj := math.Abs(d.X)
	for _, ang := range [2]float64{math.Pi / 3, 2 * math.Pi / 3} {
		v := math.Abs(d.X*math.Cos(ang) + d.Y*math.Sin(ang))
		if v > proj {
			proj = v
		}
	}
	dist := inradius - proj
	if dist < 0 {
		// Snapped edge cells can place p marginally outside the hex.
		return 0
	}
	return dist
}

// Bounds implements Layout.
func (h *HexLayout) Bounds() Rect { return h.bounds }

// Neighbors implements Layout, returning the up-to-six adjacent hexes.
func (h *HexLayout) Neighbors(c CellID) []CellID {
	a := h.cells[c]
	out := make([]CellID, 0, 6)
	for _, d := range hexDirs {
		if id, ok := h.index[axial{q: a.q + d.q, r: a.r + d.r}]; ok {
			out = append(out, id)
		}
	}
	return out
}

// Package spill is the out-of-core tier for EV-Matching (DESIGN.md §14).
//
// It provides four narrow layers that the shuffle and window subsystems
// compose, rather than one monolithic "disk cache":
//
//   - budget accounting: Budget tracks bytes of state held in memory against
//     a configured ceiling and answers the single question "are we over?".
//   - run writing: WriteRun persists one sorted slice of key/value records
//     as a length-prefixed run file via the same durable atomic-write path
//     (WriteFileAtomic) checkpoints use.
//   - merging: MergeRuns k-way merges sorted record sources (run files plus
//     an in-memory tail) back into one globally sorted stream, preserving
//     exact (key, value) order so spilled output is byte-identical to the
//     in-memory sort.
//   - eviction policy: FIFO orders sealed-window scenario payloads for
//     eviction; BlobLog stores the evicted payloads in an unlinked
//     append-only temp file and serves random-access reloads.
//
// Every layer is deterministic: nothing here reads the wall clock or
// iterates a map, and all failure paths return wrapped errors so callers
// degrade loudly instead of producing a silently different fingerprint.
package spill

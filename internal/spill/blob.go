package spill

import (
	"fmt"
	"io"
	"sync"
)

// BlobRef locates one payload inside a BlobLog.
type BlobRef struct {
	Off int64
	Len int64
}

// BlobLog is an append-only byte log backed by an unlinked temp file: the
// file is removed from the directory the moment it is created, so the
// kernel reclaims it automatically when the log (or the process) dies —
// there is no cleanup path to forget. Sealed-window scenario payloads are
// appended once at eviction time and read back by BlobRef at merge/split
// or finalize time.
//
// Appends are serialized by a mutex; reads go through ReadAt and may run
// concurrently with each other and with appends.
type BlobLog struct {
	mu  sync.Mutex
	f   File
	off int64
}

// NewBlobLog creates the backing temp file in dir (the OS default temp
// directory when dir is empty) and immediately unlinks it.
func NewBlobLog(fsys FS, dir string) (*BlobLog, error) {
	f, err := fsys.CreateTemp(dir, "evspill-*.blob")
	if err != nil {
		return nil, fmt.Errorf("spill: create blob log: %w", err)
	}
	// Unlink now: the open handle keeps the inode alive, and nothing can
	// leak a stray file if the process is killed.
	if err := fsys.Remove(f.Name()); err != nil {
		f.Close()
		return nil, fmt.Errorf("spill: unlink blob log %s: %w", f.Name(), err)
	}
	return &BlobLog{f: f}, nil
}

// Append writes data at the end of the log and returns its location.
func (l *BlobLog) Append(data []byte) (BlobRef, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n, err := l.f.Write(data)
	if err != nil {
		return BlobRef{}, fmt.Errorf("spill: blob append: %w", err)
	}
	if n != len(data) {
		return BlobRef{}, fmt.Errorf("spill: blob append: short write %d of %d: %w", n, len(data), io.ErrShortWrite)
	}
	ref := BlobRef{Off: l.off, Len: int64(len(data))}
	l.off += int64(n)
	return ref, nil
}

// ReadAt reads the payload ref points to.
func (l *BlobLog) ReadAt(ref BlobRef) ([]byte, error) {
	buf := make([]byte, ref.Len)
	if _, err := l.f.ReadAt(buf, ref.Off); err != nil {
		return nil, fmt.Errorf("spill: blob read at %d (+%d): %w", ref.Off, ref.Len, err)
	}
	return buf, nil
}

// Name returns the path the backing file was created at (already unlinked).
func (l *BlobLog) Name() string { return l.f.Name() }

// Size returns the total bytes appended so far.
func (l *BlobLog) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.off
}

// Close releases the file handle; the unlinked inode is reclaimed by the
// kernel.
func (l *BlobLog) Close() error {
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("spill: close blob log: %w", err)
	}
	return nil
}

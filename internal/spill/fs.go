package spill

import (
	"io"
	"os"
)

// File is the subset of *os.File the spill tier needs. Sync is the point:
// the durability bug this package exists to fix was a rename without one.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.Closer
	Sync() error
	Name() string
}

// FS abstracts the filesystem so tests can inject short writes, ENOSPC,
// sync failures, and crash-at-any-point schedules. The zero-value OS
// implementation is the real filesystem.
type FS interface {
	Create(name string) (File, error)
	Open(name string) (File, error)
	// CreateTemp follows os.CreateTemp semantics: pattern's last "*" is
	// replaced with a random string, and the file is opened O_RDWR.
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirTemp(dir, pattern string) (string, error)
	RemoveAll(path string) error
}

// OS is the production FS backed by package os.
type OS struct{}

func (OS) Create(name string) (File, error)             { return os.Create(name) }
func (OS) Open(name string) (File, error)               { return os.Open(name) }
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) MkdirTemp(dir, pattern string) (string, error) {
	return os.MkdirTemp(dir, pattern)
}
func (OS) RemoveAll(path string) error { return os.RemoveAll(path) }

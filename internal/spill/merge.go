package spill

import (
	"container/heap"
	"fmt"
	"io"
)

// Source yields records in (Key, Value) order and returns io.EOF when
// exhausted. RunReader is a Source; SliceSource adapts an in-memory tail.
type Source interface {
	Next() (Record, error)
}

// SliceSource serves an already-sorted in-memory slice as a Source, so the
// unspilled tail of a bucket merges uniformly with its on-disk runs.
type SliceSource struct {
	recs []Record
	pos  int
}

// NewSliceSource wraps recs, which the caller has sorted by (Key, Value).
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{recs: recs} }

func (s *SliceSource) Next() (Record, error) {
	if s.pos >= len(s.recs) {
		return Record{}, io.EOF
	}
	rec := s.recs[s.pos]
	s.pos++
	return rec, nil
}

// mergeItem is one heap entry: the head record of source src.
type mergeItem struct {
	rec Record
	src int
}

// mergeHeap orders heads by (Key, Value, source index). Keys and values
// form a total order over records, so any tie-break yields byte-identical
// output; the source index makes the merge stable anyway.
type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.rec.Key != b.rec.Key {
		return a.rec.Key < b.rec.Key
	}
	if a.rec.Value != b.rec.Value {
		return a.rec.Value < b.rec.Value
	}
	return a.src < b.src
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// MergeRuns k-way merges sorted sources into a single (Key, Value)-ordered
// stream, calling emit for each record. Because every source is sorted and
// the order is total, the merged stream is exactly what sorting the
// concatenation of all sources would produce — the invariant that keeps
// spilled shuffles fingerprint-identical to in-memory ones.
//
// The first error from a source or from emit aborts the merge.
func MergeRuns(sources []Source, emit func(Record) error) error {
	h := make(mergeHeap, 0, len(sources))
	for i, src := range sources {
		rec, err := src.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return fmt.Errorf("spill: merge source %d: %w", i, err)
		}
		h = append(h, mergeItem{rec: rec, src: i})
	}
	heap.Init(&h)
	for h.Len() > 0 {
		it := h[0]
		if err := emit(it.rec); err != nil {
			return fmt.Errorf("spill: merge emit: %w", err)
		}
		rec, err := sources[it.src].Next()
		if err == io.EOF {
			heap.Pop(&h)
			continue
		}
		if err != nil {
			return fmt.Errorf("spill: merge source %d: %w", it.src, err)
		}
		h[0].rec = rec
		heap.Fix(&h, 0)
	}
	return nil
}

// Package spilltest provides an in-memory spill.FS with fault injection
// and crash semantics, shared by the spill unit tests, the mapreduce
// fault-path tests, and the checkpoint crash drill.
package spilltest

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"evmatching/internal/spill"
)

// inode is the backing store for one file. data is the live content; synced
// is the prefix that would survive a crash (updated by File.Sync).
type inode struct {
	data   []byte
	synced []byte
}

// MemFS is an in-memory filesystem with explicit durability modeling:
//
//   - File content survives Crash only up to the last File.Sync.
//   - Directory entries (creates, renames, removes) survive Crash only
//     after the parent directory has been fsynced (Open dir + Sync), the
//     same contract as a real POSIX filesystem.
//
// Optional On* hooks inject faults; Capacity bounds total bytes written
// (exceeding it yields a wrapped syscall.ENOSPC).
type MemFS struct {
	mu      sync.Mutex
	live    map[string]*inode // current namespace
	durable map[string]*inode // namespace as it would appear after a crash
	tempSeq int
	written int64

	// Capacity, when > 0, is the total byte budget across all writes;
	// writes past it fail with syscall.ENOSPC.
	Capacity int64

	// Fault hooks. A nil hook means "no fault". OnWrite may return a short
	// count with a nil error to model a short write.
	OnCreate func(name string) error
	OnWrite  func(name string, p []byte) (int, error, bool) // bool = hook handled it
	OnSync   func(name string) error
	OnRename func(oldpath, newpath string) error
	OnRemove func(name string) error
	OnOpen   func(name string) error
}

// NewMemFS returns an empty MemFS.
func NewMemFS() *MemFS {
	return &MemFS{
		live:    make(map[string]*inode),
		durable: make(map[string]*inode),
	}
}

var _ spill.FS = (*MemFS)(nil)

func (m *MemFS) Create(name string) (spill.File, error) {
	if m.OnCreate != nil {
		if err := m.OnCreate(name); err != nil {
			return nil, err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ino := &inode{}
	m.live[name] = ino
	return &memFile{fs: m, name: name, ino: ino}, nil
}

func (m *MemFS) Open(name string) (spill.File, error) {
	if m.OnOpen != nil {
		if err := m.OnOpen(name); err != nil {
			return nil, err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if ino, ok := m.live[name]; ok {
		return &memFile{fs: m, name: name, ino: ino}, nil
	}
	// Any other path opens as a directory handle: MemFS treats directories
	// as implicit, and a dir handle exists to receive the namespace fsync.
	return &memFile{fs: m, name: name, dir: true}, nil
}

func (m *MemFS) CreateTemp(dir, pattern string) (spill.File, error) {
	m.mu.Lock()
	m.tempSeq++
	seq := m.tempSeq
	m.mu.Unlock()
	if dir == "" {
		dir = "/tmp"
	}
	name := filepath.Join(dir, strings.Replace(pattern, "*", fmt.Sprintf("%06d", seq), 1))
	return m.Create(name)
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	if m.OnRename != nil {
		if err := m.OnRename(oldpath, newpath); err != nil {
			return err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.live[oldpath]
	if !ok {
		return fmt.Errorf("rename %s: %w", oldpath, syscall.ENOENT)
	}
	delete(m.live, oldpath)
	m.live[newpath] = ino
	return nil
}

func (m *MemFS) Remove(name string) error {
	if m.OnRemove != nil {
		if err := m.OnRemove(name); err != nil {
			return err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.live[name]; !ok {
		return fmt.Errorf("remove %s: %w", name, syscall.ENOENT)
	}
	delete(m.live, name)
	return nil
}

func (m *MemFS) MkdirTemp(dir, pattern string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tempSeq++
	if dir == "" {
		dir = "/tmp"
	}
	return filepath.Join(dir, strings.Replace(pattern, "*", fmt.Sprintf("%06d", m.tempSeq), 1)), nil
}

func (m *MemFS) RemoveAll(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := path + string(filepath.Separator)
	for name := range m.live { // deletion set; order-independent
		if name == path || strings.HasPrefix(name, prefix) {
			delete(m.live, name)
		}
	}
	return nil
}

// Crash simulates power loss: the namespace reverts to its last
// directory-synced state and every file's content reverts to its last
// File.Sync image.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live = make(map[string]*inode, len(m.durable))
	for name, ino := range m.durable { // map rebuild; order-independent
		ino.data = append([]byte(nil), ino.synced...)
		m.live[name] = ino
	}
}

// syncDirLocked promotes all live entries under dir into the durable
// namespace, and drops durable entries under dir that no longer exist.
func (m *MemFS) syncDirLocked(dir string) {
	for name, ino := range m.live { // set promotion; order-independent
		if filepath.Dir(name) == dir {
			m.durable[name] = ino
		}
	}
	for name := range m.durable { // deletion set; order-independent
		if filepath.Dir(name) == dir {
			if _, ok := m.live[name]; !ok {
				delete(m.durable, name)
			}
		}
	}
}

// Exists reports whether name is present in the live namespace.
func (m *MemFS) Exists(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.live[name]
	return ok
}

// ReadFile returns the live content of name.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.live[name]
	if !ok {
		return nil, fmt.Errorf("readfile %s: %w", name, syscall.ENOENT)
	}
	return append([]byte(nil), ino.data...), nil
}

// memFile implements spill.File over an inode (or a directory handle).
type memFile struct {
	fs   *MemFS
	name string
	ino  *inode
	dir  bool
	pos  int64
}

func (f *memFile) Name() string { return f.name }

func (f *memFile) Write(p []byte) (int, error) {
	if f.dir {
		return 0, fmt.Errorf("write %s: is a directory", f.name)
	}
	if f.fs.OnWrite != nil {
		if n, err, handled := f.fs.OnWrite(f.name, p); handled {
			f.fs.mu.Lock()
			f.ino.data = append(f.ino.data, p[:n]...)
			f.fs.mu.Unlock()
			if err == nil && n < len(p) {
				err = io.ErrShortWrite
			}
			return n, err
		}
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.Capacity > 0 && f.fs.written+int64(len(p)) > f.fs.Capacity {
		room := f.fs.Capacity - f.fs.written
		if room < 0 {
			room = 0
		}
		f.ino.data = append(f.ino.data, p[:room]...)
		f.fs.written = f.fs.Capacity
		return int(room), fmt.Errorf("write %s: %w", f.name, syscall.ENOSPC)
	}
	f.ino.data = append(f.ino.data, p...)
	f.fs.written += int64(len(p))
	return len(p), nil
}

func (f *memFile) Read(p []byte) (int, error) {
	if f.dir {
		return 0, fmt.Errorf("read %s: is a directory", f.name)
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.pos >= int64(len(f.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.ino.data[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if f.dir {
		return 0, fmt.Errorf("read %s: is a directory", f.name)
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off >= int64(len(f.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.ino.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Sync() error {
	if f.fs.OnSync != nil {
		if err := f.fs.OnSync(f.name); err != nil {
			return err
		}
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.dir {
		f.fs.syncDirLocked(f.name)
		return nil
	}
	f.ino.synced = append([]byte(nil), f.ino.data...)
	return nil
}

func (f *memFile) Close() error { return nil }

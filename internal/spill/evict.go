package spill

// FIFO is the eviction-policy layer for sealed-window state: scenarios are
// evicted oldest-sealed-first, which matches access order — a sealed
// (cell, window) scenario is only touched again at merge/split or finalize
// time, and those passes sweep in seal order too. Deliberately not an LRU:
// recency tracking would add per-access bookkeeping on the hot match path
// for no better hit rate on this access pattern.
//
// Not safe for concurrent use; the owning engine serializes access under
// its own lock.
type FIFO struct {
	ids  []int64
	head int
}

// Push appends an id to the eviction queue.
func (q *FIFO) Push(id int64) { q.ids = append(q.ids, id) }

// Pop removes and returns the oldest id. The second result is false when
// the queue is empty.
func (q *FIFO) Pop() (int64, bool) {
	if q.head >= len(q.ids) {
		return 0, false
	}
	id := q.ids[q.head]
	q.head++
	// Reclaim the drained prefix once it dominates the backing array, so
	// a long-lived queue does not grow without bound.
	if q.head > 64 && q.head*2 >= len(q.ids) {
		q.ids = append(q.ids[:0], q.ids[q.head:]...)
		q.head = 0
	}
	return id, true
}

// Len returns the number of queued ids.
func (q *FIFO) Len() int { return len(q.ids) - q.head }

package spill

import "sync/atomic"

// Budget tracks bytes of in-memory state against a configured ceiling.
// A nil or zero-limit Budget is "unlimited": every method is safe to call
// and Over always reports false, so call sites need no gating branches.
//
// The accounting is intentionally approximate — callers charge the bytes
// that dominate their working set (shuffle key/value payloads, detection
// patch pixels) rather than exact heap footprints. The invariant that
// matters is monotone pressure: when charged bytes exceed the limit the
// holder spills until they no longer do.
type Budget struct {
	limit int64
	used  atomic.Int64
}

// NewBudget returns a Budget with the given byte ceiling. limit <= 0
// means unlimited.
func NewBudget(limit int64) *Budget {
	if limit <= 0 {
		return nil
	}
	return &Budget{limit: limit}
}

// Enabled reports whether this budget imposes a ceiling.
func (b *Budget) Enabled() bool { return b != nil && b.limit > 0 }

// Add charges n bytes against the budget.
func (b *Budget) Add(n int64) {
	if b.Enabled() {
		b.used.Add(n)
	}
}

// Sub releases n bytes (after a spill or eviction).
func (b *Budget) Sub(n int64) {
	if b.Enabled() {
		b.used.Add(-n)
	}
}

// Over reports whether charged bytes exceed the ceiling.
func (b *Budget) Over() bool {
	return b.Enabled() && b.used.Load() > b.limit
}

// Used returns the currently charged byte count.
func (b *Budget) Used() int64 {
	if !b.Enabled() {
		return 0
	}
	return b.used.Load()
}

// Limit returns the configured ceiling (0 when unlimited).
func (b *Budget) Limit() int64 {
	if !b.Enabled() {
		return 0
	}
	return b.limit
}

package spill

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Record is one shuffle key/value pair as persisted in a run file.
type Record struct {
	Key   string
	Value string
}

// maxRecordLen caps a single key or value read back from a run file.
// Anything larger means the file is corrupt (or not a run file at all);
// failing fast beats attempting a multi-gigabyte allocation.
const maxRecordLen = 1 << 30

// WriteRun persists recs — which the caller has already sorted — as a run
// file at path, using the durable atomic write path so a crash never leaves
// a partial run visible under the final name. It returns the encoded size
// in bytes.
//
// Run format: for each record, uvarint(len(key)) ++ key ++
// uvarint(len(value)) ++ value. No header or trailer — a clean EOF at a
// record boundary ends the run, and an EOF inside a record is corruption.
func WriteRun(fsys FS, path string, recs []Record) (int64, error) {
	var size int64
	err := WriteFileAtomic(fsys, path, func(w io.Writer) error {
		var lenBuf [binary.MaxVarintLen64]byte
		for _, rec := range recs {
			n := binary.PutUvarint(lenBuf[:], uint64(len(rec.Key)))
			if _, err := w.Write(lenBuf[:n]); err != nil {
				return fmt.Errorf("run record key len: %w", err)
			}
			size += int64(n)
			if _, err := io.WriteString(w, rec.Key); err != nil {
				return fmt.Errorf("run record key: %w", err)
			}
			size += int64(len(rec.Key))
			n = binary.PutUvarint(lenBuf[:], uint64(len(rec.Value)))
			if _, err := w.Write(lenBuf[:n]); err != nil {
				return fmt.Errorf("run record value len: %w", err)
			}
			size += int64(n)
			if _, err := io.WriteString(w, rec.Value); err != nil {
				return fmt.Errorf("run record value: %w", err)
			}
			size += int64(len(rec.Value))
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("spill: write run %s: %w", path, err)
	}
	return size, nil
}

// RunReader streams records back out of a run file in order.
type RunReader struct {
	name string
	f    File
	br   *bufio.Reader
}

// OpenRun opens a run file for sequential reading.
func OpenRun(fsys FS, path string) (*RunReader, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("spill: open run %s: %w", path, err)
	}
	return &RunReader{name: path, f: f, br: bufio.NewReader(f)}, nil
}

// Next returns the next record. It returns io.EOF (unwrapped) at a clean
// end of the run; an EOF mid-record surfaces as a wrapped
// io.ErrUnexpectedEOF so callers can tell truncation from completion.
func (r *RunReader) Next() (Record, error) {
	key, err := r.readField(false)
	if err != nil {
		return Record{}, err
	}
	value, err := r.readField(true)
	if err != nil {
		return Record{}, err
	}
	return Record{Key: key, Value: value}, nil
}

// readField reads one length-prefixed string. midRecord marks fields where
// EOF can only mean truncation.
func (r *RunReader) readField(midRecord bool) (string, error) {
	n, err := binary.ReadUvarint(r.br)
	if err == io.EOF && !midRecord {
		return "", io.EOF
	}
	if err != nil {
		return "", fmt.Errorf("spill: run %s truncated: %w", r.name, unexpectEOF(err))
	}
	if n > maxRecordLen {
		return "", fmt.Errorf("spill: run %s corrupt: field length %d exceeds cap", r.name, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return "", fmt.Errorf("spill: run %s truncated mid-field: %w", r.name, unexpectEOF(err))
	}
	return string(buf), nil
}

// unexpectEOF normalizes a bare EOF seen inside a record to
// io.ErrUnexpectedEOF, as io.ReadFull does.
func unexpectEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Close releases the underlying file.
func (r *RunReader) Close() error {
	if err := r.f.Close(); err != nil {
		return fmt.Errorf("spill: close run %s: %w", r.name, err)
	}
	return nil
}

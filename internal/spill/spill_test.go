package spill_test

import (
	"errors"
	"fmt"
	"io"
	"slices"
	"strings"
	"syscall"
	"testing"

	"evmatching/internal/spill"
	"evmatching/internal/spill/spilltest"
)

// --- WriteFileAtomic ---

func TestWriteFileAtomicDurable(t *testing.T) {
	fs := spilltest.NewMemFS()
	if err := spill.WriteFileAtomic(fs, "/ckpt/state.gob", func(w io.Writer) error {
		_, err := io.WriteString(w, "payload-v1")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// The whole point: content and directory entry survive a crash
	// immediately after WriteFileAtomic returns.
	fs.Crash()
	got, err := fs.ReadFile("/ckpt/state.gob")
	if err != nil {
		t.Fatalf("checkpoint vanished after crash: %v", err)
	}
	if string(got) != "payload-v1" {
		t.Fatalf("checkpoint content after crash = %q, want %q", got, "payload-v1")
	}
}

// TestWriteFileAtomicWithoutSyncsWouldLose demonstrates the bug the helper
// fixes: the same sequence minus the fsyncs loses the file on crash, which
// is exactly what the fake models.
func TestWriteFileAtomicWithoutSyncsWouldLose(t *testing.T) {
	fs := spilltest.NewMemFS()
	f, err := fs.Create("/ckpt/state.gob.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(f, "payload-v1"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/ckpt/state.gob.tmp", "/ckpt/state.gob"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if fs.Exists("/ckpt/state.gob") {
		t.Fatal("sync-free rename survived the crash; the fake no longer models the durability bug")
	}
}

func TestWriteFileAtomicKeepsOldOnWriteFailure(t *testing.T) {
	fs := spilltest.NewMemFS()
	writeOK := func(w io.Writer) error { _, err := io.WriteString(w, "old"); return err }
	if err := spill.WriteFileAtomic(fs, "/d/f", writeOK); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	err := spill.WriteFileAtomic(fs, "/d/f", func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("error not wrapped: %v", err)
	}
	got, err2 := fs.ReadFile("/d/f")
	if err2 != nil || string(got) != "old" {
		t.Fatalf("old content clobbered on failed rewrite: %q, %v", got, err2)
	}
	if fs.Exists("/d/f.tmp") {
		t.Fatal("temp file leaked after write failure")
	}
}

func TestWriteFileAtomicSyncFailure(t *testing.T) {
	fs := spilltest.NewMemFS()
	boom := errors.New("sync exploded")
	fs.OnSync = func(name string) error {
		if strings.HasSuffix(name, ".tmp") {
			return boom
		}
		return nil
	}
	err := spill.WriteFileAtomic(fs, "/d/f", func(w io.Writer) error {
		_, werr := io.WriteString(w, "x")
		return werr
	})
	if !errors.Is(err, boom) {
		t.Fatalf("sync failure not propagated wrapped: %v", err)
	}
	if fs.Exists("/d/f") || fs.Exists("/d/f.tmp") {
		t.Fatal("failed atomic write left files behind")
	}
}

func TestWriteFileAtomicENOSPC(t *testing.T) {
	fs := spilltest.NewMemFS()
	fs.Capacity = 4
	err := spill.WriteFileAtomic(fs, "/d/f", func(w io.Writer) error {
		_, werr := io.WriteString(w, "this will not fit at all")
		return werr
	})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want wrapped ENOSPC, got %v", err)
	}
	if fs.Exists("/d/f") {
		t.Fatal("partial file visible under final name after ENOSPC")
	}
}

// --- run files ---

func testRecords(n int) []spill.Record {
	recs := make([]spill.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, spill.Record{
			Key:   fmt.Sprintf("key-%03d", i%17),
			Value: fmt.Sprintf("value-%05d|%s", i, strings.Repeat("x", i%31)),
		})
	}
	slices.SortFunc(recs, compareRecords)
	return recs
}

func compareRecords(a, b spill.Record) int {
	if a.Key != b.Key {
		if a.Key < b.Key {
			return -1
		}
		return 1
	}
	if a.Value != b.Value {
		if a.Value < b.Value {
			return -1
		}
		return 1
	}
	return 0
}

func TestRunRoundTrip(t *testing.T) {
	fs := spilltest.NewMemFS()
	recs := testRecords(200)
	size, err := spill.WriteRun(fs, "/spill/r0.run", recs)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Fatalf("run size = %d, want > 0", size)
	}
	r, err := spill.OpenRun(fs, "/spill/r0.run")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got []spill.Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	if !slices.Equal(got, recs) {
		t.Fatalf("round trip mismatch: got %d records, want %d", len(got), len(recs))
	}
}

func TestRunTruncatedMidRecord(t *testing.T) {
	fs := spilltest.NewMemFS()
	recs := testRecords(50)
	if _, err := spill.WriteRun(fs, "/spill/r0.run", recs); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/spill/r0.run")
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite a truncated copy: cut inside the last record.
	trunc := data[:len(data)-3]
	f, err := fs.Create("/spill/trunc.run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(trunc); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := spill.OpenRun(fs, "/spill/trunc.run")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for {
		_, err := r.Next()
		if err == nil {
			continue
		}
		if err == io.EOF {
			t.Fatal("truncated run read back as a clean EOF; corruption went undetected")
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("want wrapped io.ErrUnexpectedEOF, got %v", err)
		}
		return
	}
}

// --- merge ---

func TestMergeRunsEqualsGlobalSort(t *testing.T) {
	fs := spilltest.NewMemFS()
	// Three sorted runs plus an in-memory tail, with duplicate keys and
	// duplicate (key, value) pairs across sources.
	all := testRecords(300)
	var parts [4][]spill.Record
	for i, rec := range all {
		parts[i%4] = append(parts[i%4], rec)
	}
	var sources []spill.Source
	for i := 0; i < 3; i++ {
		slices.SortFunc(parts[i], compareRecords)
		path := fmt.Sprintf("/spill/r%d.run", i)
		if _, err := spill.WriteRun(fs, path, parts[i]); err != nil {
			t.Fatal(err)
		}
		r, err := spill.OpenRun(fs, path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		sources = append(sources, r)
	}
	slices.SortFunc(parts[3], compareRecords)
	sources = append(sources, spill.NewSliceSource(parts[3]))

	var merged []spill.Record
	if err := spill.MergeRuns(sources, func(rec spill.Record) error {
		merged = append(merged, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	want := append([]spill.Record(nil), all...)
	slices.SortFunc(want, compareRecords)
	if !slices.Equal(merged, want) {
		t.Fatalf("merge != global sort: got %d records, want %d", len(merged), len(want))
	}
}

func TestMergeRunsSourceDeletedMidMerge(t *testing.T) {
	fs := spilltest.NewMemFS()
	recs := testRecords(100)
	if _, err := spill.WriteRun(fs, "/spill/r0.run", recs); err != nil {
		t.Fatal(err)
	}
	r, err := spill.OpenRun(fs, "/spill/r0.run")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Simulate the backing file being destroyed mid-merge: after a few
	// emits, truncate the inode via a fresh handle... the fake shares the
	// inode, so rewriting the path with empty content models external
	// destruction of buffered-but-unread data. Easier and just as honest:
	// wrap the reader in a source that starts failing.
	broken := &failAfter{src: r, n: 5}
	err = spill.MergeRuns([]spill.Source{broken}, func(spill.Record) error { return nil })
	if err == nil {
		t.Fatal("merge over a dying source succeeded")
	}
	if !errors.Is(err, errGone) {
		t.Fatalf("source failure not wrapped: %v", err)
	}
}

var errGone = errors.New("backing file deleted")

// failAfter passes through n records then fails every subsequent read.
type failAfter struct {
	src  spill.Source
	n    int
	seen int
}

func (f *failAfter) Next() (spill.Record, error) {
	if f.seen >= f.n {
		return spill.Record{}, errGone
	}
	f.seen++
	return f.src.Next()
}

func TestMergeRunsEmitError(t *testing.T) {
	boom := errors.New("downstream full")
	src := spill.NewSliceSource(testRecords(10))
	err := spill.MergeRuns([]spill.Source{src}, func(spill.Record) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("emit error not wrapped: %v", err)
	}
}

// --- budget ---

func TestBudget(t *testing.T) {
	var nilBudget *spill.Budget
	if nilBudget.Enabled() || nilBudget.Over() || nilBudget.Used() != 0 {
		t.Fatal("nil budget must read as unlimited")
	}
	nilBudget.Add(100) // must not panic
	if b := spill.NewBudget(0); b != nil {
		t.Fatal("zero limit should yield nil (unlimited) budget")
	}
	b := spill.NewBudget(100)
	b.Add(60)
	if b.Over() {
		t.Fatal("under limit reported over")
	}
	b.Add(60)
	if !b.Over() {
		t.Fatal("over limit not reported")
	}
	b.Sub(40)
	if b.Over() || b.Used() != 80 || b.Limit() != 100 {
		t.Fatalf("accounting wrong: used=%d limit=%d over=%v", b.Used(), b.Limit(), b.Over())
	}
}

// --- FIFO ---

func TestFIFO(t *testing.T) {
	var q spill.FIFO
	if _, ok := q.Pop(); ok {
		t.Fatal("empty queue popped")
	}
	const n = 1000
	for i := int64(0); i < n; i++ {
		q.Push(i)
	}
	for i := int64(0); i < n; i++ {
		id, ok := q.Pop()
		if !ok || id != i {
			t.Fatalf("pop %d = (%d, %v), want FIFO order", i, id, ok)
		}
		// Interleave pushes to exercise the compaction path.
		if i%3 == 0 {
			q.Push(n + i)
		}
	}
	if q.Len() != n/3+1 {
		t.Fatalf("len = %d, want %d", q.Len(), n/3+1)
	}
}

// --- blob log ---

func TestBlobLog(t *testing.T) {
	fs := spilltest.NewMemFS()
	l, err := spill.NewBlobLog(fs, "/spill")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var refs []spill.BlobRef
	var want [][]byte
	for i := 0; i < 20; i++ {
		payload := []byte(strings.Repeat(fmt.Sprintf("p%d-", i), i+1))
		ref, err := l.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
		want = append(want, payload)
	}
	// Read back out of order.
	for i := len(refs) - 1; i >= 0; i-- {
		got, err := l.ReadAt(refs[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want[i]) {
			t.Fatalf("blob %d mismatch", i)
		}
	}
	// The backing file must already be unlinked: nothing under /spill.
	if fs.Exists(l.Name()) {
		t.Fatal("blob log file still linked in the namespace")
	}
}

func TestBlobLogShortWrite(t *testing.T) {
	fs := spilltest.NewMemFS()
	l, err := spill.NewBlobLog(fs, "/spill")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fs.OnWrite = func(name string, p []byte) (int, error, bool) {
		return len(p) / 2, nil, true // short write, no error: the nasty case
	}
	_, err = l.Append([]byte("0123456789"))
	if err == nil {
		t.Fatal("short write accepted silently")
	}
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("want wrapped io.ErrShortWrite, got %v", err)
	}
}

// --- stats ---

func TestStatsNilSafe(t *testing.T) {
	var s *spill.Stats
	s.AddBytesSpilled(1)
	s.AddRunsWritten(1)
	s.AddRunsMerged(1)
	s.AddReloads(1)
	s.AddEvictions(1)
	if sn := s.Snapshot(); sn != (spill.Snapshot{}) {
		t.Fatalf("nil stats snapshot = %+v, want zero", sn)
	}
	real := &spill.Stats{}
	real.AddBytesSpilled(10)
	real.AddRunsWritten(2)
	real.AddEvictions(3)
	sn := real.Snapshot()
	if sn.BytesSpilled != 10 || sn.RunsWritten != 2 || sn.Evictions != 3 {
		t.Fatalf("snapshot = %+v", sn)
	}
	if !sn.Spilled() {
		t.Fatal("Spilled() false with nonzero counters")
	}
}

package spill

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"
)

// WriteFileAtomic writes path durably: the payload goes to path+".tmp",
// is flushed and fsynced, the temp file is renamed over path, and the
// parent directory is fsynced so the rename itself survives a crash.
// On any error the temp file is removed and path is left untouched.
//
// This is the one write path for checkpoints and spill runs. The original
// evstream checkpoint writer closed and renamed without either sync — a
// power cut after the rename could surface a zero-length "checkpoint".
func WriteFileAtomic(fsys FS, path string, write func(io.Writer) error) (err error) {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("spill: create %s: %w", tmp, err)
	}
	defer func() {
		if err != nil {
			f.Close()
			fsys.Remove(tmp)
		}
	}()

	bw := bufio.NewWriter(f)
	if err = write(bw); err != nil {
		return fmt.Errorf("spill: write %s: %w", tmp, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("spill: flush %s: %w", tmp, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("spill: sync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("spill: close %s: %w", tmp, err)
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("spill: rename %s -> %s: %w", tmp, path, err)
	}
	if err = syncDir(fsys, filepath.Dir(path)); err != nil {
		return fmt.Errorf("spill: sync parent of %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so a rename into it is durable.
func syncDir(fsys FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return fmt.Errorf("open dir %s: %w", dir, err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("fsync dir %s: %w", dir, err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("close dir %s: %w", dir, err)
	}
	return nil
}

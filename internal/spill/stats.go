package spill

import "sync/atomic"

// Stats counts spill activity. All methods are nil-safe so call sites can
// thread an optional *Stats without branching, and atomic so the parallel
// executor's workers can share one instance.
type Stats struct {
	bytesSpilled atomic.Int64
	runsWritten  atomic.Int64
	runsMerged   atomic.Int64
	reloads      atomic.Int64
	evictions    atomic.Int64
}

func (s *Stats) AddBytesSpilled(n int64) {
	if s != nil {
		s.bytesSpilled.Add(n)
	}
}

func (s *Stats) AddRunsWritten(n int64) {
	if s != nil {
		s.runsWritten.Add(n)
	}
}

func (s *Stats) AddRunsMerged(n int64) {
	if s != nil {
		s.runsMerged.Add(n)
	}
}

func (s *Stats) AddReloads(n int64) {
	if s != nil {
		s.reloads.Add(n)
	}
}

func (s *Stats) AddEvictions(n int64) {
	if s != nil {
		s.evictions.Add(n)
	}
}

// Snapshot is a plain-value copy of the counters, safe to embed in reports
// and compare in tests.
type Snapshot struct {
	BytesSpilled int64
	RunsWritten  int64
	RunsMerged   int64
	Reloads      int64
	Evictions    int64
}

// Snapshot returns the current counter values. Nil-safe: a nil Stats
// snapshots to all zeros.
func (s *Stats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return Snapshot{
		BytesSpilled: s.bytesSpilled.Load(),
		RunsWritten:  s.runsWritten.Load(),
		RunsMerged:   s.runsMerged.Load(),
		Reloads:      s.reloads.Load(),
		Evictions:    s.evictions.Load(),
	}
}

// Spilled reports whether any out-of-core activity happened.
func (sn Snapshot) Spilled() bool {
	return sn.BytesSpilled > 0 || sn.RunsWritten > 0 || sn.Evictions > 0
}

package core

import (
	"context"
	"fmt"
	"time"

	"evmatching/internal/blocking"
	"evmatching/internal/ids"
	"evmatching/internal/mrjobs"
	"evmatching/internal/partition"
	"evmatching/internal/scenario"
	"evmatching/internal/vfilter"
)

// matchSS runs the paper's set-splitting algorithm: EID set splitting (E
// stage), VID filtering (V stage), and matching refining (Algorithm 2) until
// every match is acceptable or the refine budget is exhausted.
func (m *Matcher) matchSS(ctx context.Context, targets []ids.EID, filter *vfilter.Filter) (*Report, error) {
	rep := &Report{
		Algorithm: AlgorithmSS,
		Mode:      m.opts.Mode,
		Targets:   targets,
		Results:   make(map[ids.EID]vfilter.Result, len(targets)),
		PerEID:    make(map[ids.EID]int, len(targets)),
	}
	selected := make(map[scenario.ID]bool)
	accepted := make(map[ids.VID]bool)
	pending := targets

	for round := 0; ; round++ {
		eStart := time.Now()
		p, lists, err := m.splitStage(ctx, pending, round, rep)
		rep.ETime += time.Since(eStart)
		if err != nil {
			return nil, err
		}
		if round == 0 {
			// The effective scenarios of the full-target split, in application
			// order — the reference the incremental streaming splitter checks
			// itself against (see stream.Engine.Finalize).
			rep.SplitScenarios = append([]scenario.ID(nil), p.Recorded()...)
		}
		for _, e := range pending {
			list := lists[e]
			rep.PerEID[e] = len(list)
			for _, id := range list {
				selected[id] = true
			}
		}

		vStart := time.Now()
		results, err := m.vStage(ctx, filter, p, lists, accepted)
		rep.VTime += time.Since(vStart)
		if err != nil {
			return nil, err
		}

		var unresolved []ids.EID
		for _, e := range pending {
			res := results[e]
			rep.Results[e] = res
			if res.VID != ids.NoVID && res.Acceptable {
				accepted[res.VID] = true
			} else {
				unresolved = append(unresolved, e)
			}
		}
		if len(unresolved) == 0 || round >= m.opts.MaxRefineRounds {
			break
		}
		// Matching refining: go through set splitting and VID filtering
		// again on the EIDs whose result is not yet acceptable, with the
		// accepted VIDs ruled out (paper §IV-C4).
		pending = unresolved
		rep.RefineRounds++
	}
	rep.SelectedScenarios = len(selected)
	rep.VStats = filter.Stats()
	return rep, nil
}

// splitStage runs EID set splitting over the store and derives each target's
// selected scenario list. Rounds use distinct scenario orders so refining
// sees fresh evidence. rep, when non-nil, accumulates the blocking-pruning
// counters; the split result itself never depends on them.
//
// With blocking enabled (the default), each window's scenarios are first
// filtered through the blocking index against the live-target signature:
// scenarios whose coarse block no live target shares are provable no-ops
// (they cannot intersect any leaf holding ≥2 inclusive EIDs) and are skipped
// without being probed. The admitted candidates are a window-order
// subsequence of the exhaustive scan containing every effective scenario, so
// the partition evolves through the identical state sequence, records the
// identical scenarios, and hits Done at the identical point — bit-identity
// with the exhaustive path, which the equivalence property tests pin.
func (m *Matcher) splitStage(ctx context.Context, targets []ids.EID, round int, rep *Report) (*partition.Partition, map[ids.EID][]scenario.ID, error) {
	tset := targetSet(targets)
	p, err := partition.New(targets)
	if err != nil {
		return nil, nil, err
	}
	var windows []int
	if m.opts.ScanOrder == ScanInOrder {
		windows = m.ds.Store.Windows()
	} else {
		rng := m.rngFor(int64(round)*7919 + 13)
		windows = m.ds.Store.ShuffledWindows(rng)
	}

	var (
		idx     *blocking.Index
		live    *blocking.Live
		candBuf []scenario.ID
	)
	if !m.opts.DisableBlocking {
		idx = m.blockIndex()
		live = idx.NewLive(targets)
		p.OnResolve(live.Resolve)
	}

	for _, w := range windows {
		if p.Done() {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("core: split stage: %w", err)
		}
		var winScenarios []*scenario.EScenario
		if live != nil {
			// The live signature is read at window start; splits within the
			// window shrink it for the next window. Mid-window staleness only
			// admits extra no-op candidates — never drops an effective one.
			cands, total := idx.Candidates(w, live.Sig(), candBuf[:0])
			candBuf = cands
			if rep != nil {
				rep.BlockCandidates += int64(len(cands))
				rep.BlockPruned += int64(total - len(cands))
			}
			for _, id := range cands {
				if fs := filterScenario(m.ds.Store.E(id), tset); fs != nil {
					winScenarios = append(winScenarios, fs)
				}
			}
		} else {
			for _, id := range m.ds.Store.AtWindow(w) {
				if fs := filterScenario(m.ds.Store.E(id), tset); fs != nil {
					winScenarios = append(winScenarios, fs)
				}
			}
		}
		if len(winScenarios) == 0 {
			continue
		}
		if m.opts.Mode == ModeParallel {
			// Algorithm 3: one iteration refines the partition by every
			// scenario of a random timestamp at once, via the MapReduce
			// (key, value) shuffle. The split tree replays the same
			// scenarios for path bookkeeping; the two refinements are
			// equivalent by construction, and divergence is a bug we
			// surface rather than hide.
			mrRes, err := mrjobs.SplitIteration(ctx, m.opts.executor(), mrjobs.SplitInput{
				Sets:      p.Sets(),
				Scenarios: winScenarios,
			})
			if err != nil {
				return nil, nil, err
			}
			for _, s := range winScenarios {
				p.SplitBy(s)
			}
			if !eidSetsEqual(mrRes.Sets, p.Sets()) {
				return nil, nil, fmt.Errorf("core: MapReduce split diverged from reference partition at window %d", w)
			}
		} else {
			for _, s := range winScenarios {
				p.SplitBy(s)
				if p.Done() {
					break
				}
			}
		}
	}

	// Per-EID selected lists: the positive scenarios along each split path
	// (shared across targets — the reuse that shrinks the unique-scenario
	// count), padded until the list pins the EID's coarse trajectory down
	// uniquely among ALL EIDs, not just the matching targets. Without the
	// padding a non-target bystander sharing the short path would be an
	// even-odds visual candidate; with it, SS spends about one scenario
	// more per EID than EDP, exactly as the paper's Fig. 7 reports.
	lists := make(map[ids.EID][]scenario.ID, len(targets))
	for _, e := range targets {
		pos, err := p.PositiveScenarios(e)
		if err != nil {
			return nil, nil, err
		}
		lists[e] = m.padToUnique(e, pos, windows)
	}
	return p, lists, nil
}

// padToUnique pads e's list with the matcher's configured lengths. With
// blocking enabled the walk jumps per window to e's inclusive postings in
// the index instead of scanning every scenario of the window — the same
// scenarios in the same order, found without the scan.
func (m *Matcher) padToUnique(e ids.EID, list []scenario.ID, windows []int) []scenario.ID {
	var ix *blocking.Index
	if !m.opts.DisableBlocking {
		ix = m.blockIndex()
	}
	return padToUnique(m.ds.Store, ix, e, list, windows, m.opts.MinPerEIDList, m.opts.EDPMaxScenarios)
}

// PadToUnique extends an EID's scenario list until the intersection of the
// listed scenarios' full inclusive EID sets is the singleton {e} (or no
// further scenario helps), and at least minLen scenarios are listed. maxLen
// caps the total as a safety valve for worlds where the trajectory never
// becomes unique. It is shared between the batch split stage and the
// incremental streaming V stage, which pads over the windows closed so far.
func PadToUnique(store *scenario.Store, e ids.EID, list []scenario.ID, windows []int, minLen, maxLen int) []scenario.ID {
	return padToUnique(store, nil, e, list, windows, minLen, maxLen)
}

// padToUnique is PadToUnique with an optional blocking index accelerating
// the per-window "first unlisted scenario containing e inclusively" probe.
// Index postings preserve AtWindow order, so both paths pick identical
// scenarios.
func padToUnique(store *scenario.Store, ix *blocking.Index, e ids.EID, list []scenario.ID, windows []int, minLen, maxLen int) []scenario.ID {
	out := append([]scenario.ID(nil), list...)
	in := make(map[scenario.ID]bool, len(out))
	for _, id := range out {
		in[id] = true
	}
	// Candidate set: EIDs that may co-appear in every listed scenario. A
	// candidate is only eliminated by a scenario it is entirely absent from
	// — a vague sighting still means "possibly there", so in the practical
	// setting lists grow longer before trajectories become unique, exactly
	// the slowdown Theorem 4.4 prices in. The set only shrinks, so it lives
	// in one sorted slice filtered in place per scenario.
	var cands []ids.EID
	narrow := func(s *scenario.EScenario) {
		if cands == nil {
			cands = s.SortedEIDs()
			return
		}
		if len(cands) == 1 {
			// Every listed scenario contains e, so the set can never shrink
			// below {e}; once unique it stays unique.
			return
		}
		kept := cands[:0]
		for _, other := range cands {
			if s.Contains(other) {
				kept = append(kept, other)
			}
		}
		cands = kept
	}
	for _, id := range out {
		narrow(store.E(id))
	}
	if minLen > maxLen {
		maxLen = minLen
	}
	for _, w := range windows {
		if len(out) >= maxLen || (len(out) >= minLen && len(cands) <= 1) {
			break
		}
		if ix != nil {
			for _, id := range ix.InclusiveAt(e, w) {
				if in[id] {
					continue
				}
				out = append(out, id)
				in[id] = true
				narrow(store.E(id))
				break // one scenario per window contains e inclusively
			}
			continue
		}
		for _, id := range store.AtWindow(w) {
			s := store.E(id)
			if in[id] || !s.Inclusive(e) {
				continue
			}
			out = append(out, id)
			in[id] = true
			narrow(s)
			break // one scenario per window contains e inclusively
		}
	}
	return out
}

// vStage runs VID filtering for every target. In serial mode it follows
// Theorem 4.1 exactly: EIDs are matched in post-order with each accepted VID
// ruled out for the rest. In parallel mode it follows §V-C: features are
// extracted per scenario and compared per EID across mappers, then a
// sequential fixup resolves VIDs claimed by multiple EIDs (keep the
// higher-probability claim, re-match the rest with exclusions).
func (m *Matcher) vStage(ctx context.Context, filter *vfilter.Filter, p *partition.Partition, lists map[ids.EID][]scenario.ID, accepted map[ids.VID]bool) (map[ids.EID]vfilter.Result, error) {
	order := make([]ids.EID, 0, len(lists))
	for _, e := range p.PostOrder() {
		if _, ok := lists[e]; ok {
			order = append(order, e)
		}
	}
	out := make(map[ids.EID]vfilter.Result, len(order))

	if m.opts.Mode == ModeSerial {
		exclude := cloneVIDSet(accepted)
		for _, e := range order {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: v stage: %w", err)
			}
			res, err := filter.Match(e, lists[e], exclude)
			if err != nil {
				return nil, err
			}
			out[e] = res
			if res.VID != ids.NoVID && res.Acceptable {
				exclude[res.VID] = true
			}
		}
		return out, nil
	}

	// Parallel: extraction then comparison as MapReduce jobs.
	exec := m.opts.executor()
	uniq := make(map[scenario.ID]bool)
	var extractList []scenario.ID
	assignments := make([]mrjobs.Assignment, 0, len(order))
	for _, e := range order {
		assignments = append(assignments, mrjobs.Assignment{EID: e, List: lists[e]})
		for _, id := range lists[e] {
			if !uniq[id] {
				uniq[id] = true
				extractList = append(extractList, id)
			}
		}
	}
	workers := m.opts.effectiveWorkers()
	if err := mrjobs.ExtractScenarios(ctx, exec, filter, extractList,
		mrjobs.BatchFor(len(extractList), workers, m.opts.BatchSize)); err != nil {
		return nil, err
	}
	results, err := mrjobs.MatchAssignments(ctx, exec, filter, assignments, cloneVIDSet(accepted),
		mrjobs.BatchFor(len(assignments), workers, m.opts.BatchSize))
	if err != nil {
		return nil, err
	}

	// Sequential conflict fixup in post-order priority.
	winner := make(map[ids.VID]ids.EID)
	var losers []ids.EID
	for _, e := range order {
		res := results[e]
		out[e] = res
		if res.VID == ids.NoVID {
			continue
		}
		prev, taken := winner[res.VID]
		if !taken {
			winner[res.VID] = e
			continue
		}
		if res.Probability > results[prev].Probability {
			winner[res.VID] = e
			losers = append(losers, prev)
		} else {
			losers = append(losers, e)
		}
	}
	if len(losers) > 0 {
		exclude := cloneVIDSet(accepted)
		for _, vid := range ids.SortedVIDKeys(winner) {
			exclude[vid] = true
		}
		for _, e := range losers {
			res, err := filter.Match(e, lists[e], exclude)
			if err != nil {
				return nil, err
			}
			out[e] = res
			if res.VID != ids.NoVID {
				if _, taken := winner[res.VID]; !taken {
					winner[res.VID] = e
					exclude[res.VID] = true
				} else {
					// Still contended: leave unmatched for refining.
					res.VID = ids.NoVID
					res.Acceptable = false
					out[e] = res
				}
			}
		}
	}
	return out, nil
}

// eidSetsEqual reports whether two partitions are identical: same sets, same
// order, same members — the divergence check's equality without reflection.
func eidSetsEqual(a, b [][]ids.EID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func cloneVIDSet(in map[ids.VID]bool) map[ids.VID]bool {
	out := make(map[ids.VID]bool, len(in))
	//evlint:ignore maprange pure set copy; the resulting map is identical under any iteration order
	for v := range in {
		out[v] = true
	}
	return out
}

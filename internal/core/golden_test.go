package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"evmatching/internal/dataset"
)

// goldenConfig is one pinned conformance point: a seeded dataset and matcher
// options whose Report.Fingerprint() must never change across perf refactors.
type goldenConfig struct {
	name      string
	practical bool
	opts      Options
	// sha256 of the pre-optimization Report.Fingerprint(), captured before
	// the flat-kernel / bitset-partition rewrite. A mismatch means a change
	// altered match *results*, not just speed.
	want string
}

func goldenDataset(t *testing.T, practical bool) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumPersons = 60
	cfg.Density = 8
	cfg.NumWindows = 16
	if practical {
		cfg = cfg.Practical()
		cfg.EIDMissingRate = 0.1
		cfg.VIDMissingRate = 0.05
	}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ds
}

func goldenFingerprint(t *testing.T, practical bool, opts Options) string {
	t.Helper()
	ds := goldenDataset(t, practical)
	m := newMatcher(t, ds, opts)
	rep, err := m.Match(context.Background(), ds.AllEIDs()[:20])
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	sum := sha256.Sum256([]byte(rep.Fingerprint()))
	return hex.EncodeToString(sum[:])
}

// TestGoldenFingerprints pins the exact match results on seeded conformance
// datasets: serial, parallel, and practical vague-zone modes must keep
// producing byte-identical Report.Fingerprint() output across performance
// rewrites of the kernels, the V-stage hot path, and the split-set
// representation.
func TestGoldenFingerprints(t *testing.T) {
	cases := []goldenConfig{
		{"ss-serial-ideal", false, Options{Algorithm: AlgorithmSS, Mode: ModeSerial, Seed: 7},
			"db3aabf5ee569d192a4de8c97af70d9571d72912c8a116d000c5440cfbe2b7ac"},
		{"ss-parallel-ideal", false, Options{Algorithm: AlgorithmSS, Mode: ModeParallel, Seed: 7, Workers: 4},
			"5785af5ac2d56acee24b53cc53b50e026fc6bc2b22d2af88e61181cdcf37e180"},
		{"ss-serial-practical", true, Options{Algorithm: AlgorithmSS, Mode: ModeSerial, Seed: 7},
			"a532daadd84adea4d06876eaa1650f27a5767443d21b8f5ed5b4134f80867c50"},
		{"ss-parallel-practical", true, Options{Algorithm: AlgorithmSS, Mode: ModeParallel, Seed: 7, Workers: 4},
			"f0987c73c4268b40f9c2e00e0bf33a2e96d75526b0b568c0fad098665cd8700b"},
		{"edp-serial-ideal", false, Options{Algorithm: AlgorithmEDP, Mode: ModeSerial, Seed: 7},
			"52c1d35dcb12a1c02a984f2617889e45e865d20d653267f6a681c7b767b5c9bf"},
		{"edp-serial-practical", true, Options{Algorithm: AlgorithmEDP, Mode: ModeSerial, Seed: 7},
			"0c46bf94c89f9fca671b90ddef1da076e91eb238296e7d1f6af5ee74482597e0"},
	}
	for _, gc := range cases {
		t.Run(gc.name, func(t *testing.T) {
			if got := goldenFingerprint(t, gc.practical, gc.opts); got != gc.want {
				t.Errorf("fingerprint hash = %s, want %s (match results changed)", got, gc.want)
			}
		})
	}
}

// TestGoldenFingerprintCluster runs the ss-parallel-ideal conformance point
// with the MapReduce stages dispatched to a real coordinator/worker cluster
// over RPC: the executor must not change results, so the fingerprint hash is
// the in-process parallel one.
func TestGoldenFingerprintCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed conformance skipped in -short mode")
	}
	exec := startCluster(t, 3)
	got := goldenFingerprint(t, false, Options{
		Algorithm: AlgorithmSS,
		Mode:      ModeParallel,
		Seed:      7,
		Executor:  exec,
	})
	const want = "5785af5ac2d56acee24b53cc53b50e026fc6bc2b22d2af88e61181cdcf37e180"
	if got != want {
		t.Errorf("cluster fingerprint hash = %s, want %s (executor changed match results)", got, want)
	}
}

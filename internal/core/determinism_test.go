package core

import (
	"context"
	"strings"
	"testing"

	"evmatching/internal/dataset"
)

// runFingerprint regenerates the world and reruns the match from scratch, so
// every map involved — store indexes, partitions, candidate pools — is a
// fresh instance with a fresh iteration seed.
func runFingerprint(t *testing.T, opts Options) string {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumPersons = 40
	cfg.Density = 6
	cfg.NumWindows = 12
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	m := newMatcher(t, ds, opts)
	rep, err := m.Match(context.Background(), ds.AllEIDs()[:12])
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	return rep.Fingerprint()
}

// TestMatchReportDeterministic is the regression test for the maprange
// fixes: the same configuration must produce byte-identical report
// fingerprints run after run, for both algorithms and both modes. Before
// ss.go/vfilter iterated sorted key slices, map-order randomization could
// flip refine decisions, runner-up picks, and error ordering.
func TestMatchReportDeterministic(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"ss-serial", Options{Algorithm: AlgorithmSS, Mode: ModeSerial, Seed: 7}},
		{"ss-parallel", Options{Algorithm: AlgorithmSS, Mode: ModeParallel, Seed: 7, Workers: 4}},
		{"edp-serial", Options{Algorithm: AlgorithmEDP, Mode: ModeSerial, Seed: 7}},
		{"edp-parallel", Options{Algorithm: AlgorithmEDP, Mode: ModeParallel, Seed: 7, Workers: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			first := runFingerprint(t, tc.opts)
			if !strings.Contains(first, "vid=") {
				t.Fatalf("fingerprint carries no results:\n%s", first)
			}
			for run := 1; run <= 2; run++ {
				if got := runFingerprint(t, tc.opts); got != first {
					t.Fatalf("run %d diverged from first run:\n--- first\n%s\n--- run %d\n%s", run, first, run, got)
				}
			}
		})
	}
}

// TestScanInOrderDeterministic pins the in-order scan path: it must be valid,
// deterministic, and record the round-0 effective scenarios the streaming
// splitter checks itself against. The shuffled default is already covered by
// TestMatchReportDeterministic; here we additionally assert that in-order and
// shuffled runs resolve the same target set (the scan order changes which
// scenarios are effective, not whether matching converges).
func TestScanInOrderDeterministic(t *testing.T) {
	opts := Options{Algorithm: AlgorithmSS, Mode: ModeSerial, Seed: 7, ScanOrder: ScanInOrder}
	first := runFingerprint(t, opts)
	if !strings.Contains(first, "vid=") {
		t.Fatalf("fingerprint carries no results:\n%s", first)
	}
	if got := runFingerprint(t, opts); got != first {
		t.Fatalf("in-order rerun diverged:\n--- first\n%s\n--- rerun\n%s", first, got)
	}

	cfg := dataset.DefaultConfig()
	cfg.NumPersons = 40
	cfg.Density = 6
	cfg.NumWindows = 12
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	m := newMatcher(t, ds, opts)
	rep, err := m.Match(context.Background(), ds.AllEIDs()[:12])
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if len(rep.SplitScenarios) == 0 {
		t.Fatal("report records no round-0 split scenarios")
	}
	for _, e := range rep.Targets {
		if rep.Results[e].VID == "" {
			t.Errorf("target %s unresolved under in-order scan", e)
		}
	}
}

// TestSerialParallelAssignmentsAgree pins the §V equivalence at the
// assignment level: the MapReduce parallelization must not change which VID
// each EID is matched to. (Diagnostics like runner-up and comparison counts
// legitimately differ — serial rule-out shrinks later candidate pools.)
func TestSerialParallelAssignmentsAgree(t *testing.T) {
	assignments := func(fp string) string {
		var out []string
		for _, line := range strings.Split(fp, "\n") {
			if i := strings.Index(line, " prob="); i >= 0 {
				out = append(out, line[:i])
			}
		}
		return strings.Join(out, "\n")
	}
	serial := assignments(runFingerprint(t, Options{Algorithm: AlgorithmSS, Mode: ModeSerial, Seed: 11}))
	parallel := assignments(runFingerprint(t, Options{Algorithm: AlgorithmSS, Mode: ModeParallel, Seed: 11, Workers: 4}))
	if serial != parallel {
		t.Fatalf("serial and parallel assignments diverge:\n--- serial\n%s\n--- parallel\n%s", serial, parallel)
	}
}

package core

import (
	"context"
	"math/rand"
	"testing"

	"evmatching/internal/ids"
)

func TestSessionValidation(t *testing.T) {
	ds := testDataset(t, nil)
	m := newMatcher(t, ds, Options{})
	if _, err := m.NewSession(nil); err == nil {
		t.Error("want ErrNoTargets")
	}
	s, err := m.NewSession(ds.AllEIDs()[:5])
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(99999); err == nil {
		t.Error("want ErrUnknownWindow")
	}
}

func TestSessionConvergesWindowByWindow(t *testing.T) {
	ds := testDataset(t, nil)
	m := newMatcher(t, ds, Options{})
	rng := rand.New(rand.NewSource(19))
	targets := ds.SampleEIDs(30, rng)
	s, err := m.NewSession(targets)
	if err != nil {
		t.Fatal(err)
	}
	if s.Distinguished() || s.Resolved() != 0 {
		t.Error("fresh session should have nothing resolved")
	}
	ctx := context.Background()
	prevResolved := 0
	for w := 0; w < ds.Config.NumWindows; w++ {
		if err := s.Advance(w); err != nil {
			t.Fatalf("Advance(%d): %v", w, err)
		}
		if got := s.Resolved(); got < prevResolved {
			t.Fatalf("resolved count regressed: %d -> %d", prevResolved, got)
		} else {
			prevResolved = got
		}
		if s.Distinguished() {
			break
		}
	}
	if !s.Distinguished() {
		t.Fatalf("session never distinguished all targets (%d/%d)", s.Resolved(), len(targets))
	}
	if s.Windows() == 0 || s.Windows() > ds.Config.NumWindows {
		t.Errorf("Windows = %d", s.Windows())
	}

	results, err := s.Match(ctx)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, e := range targets {
		if results[e].VID == ds.TruthVID(e) {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(targets)); frac < 0.8 {
		t.Errorf("online accuracy = %v, want >= 0.8", frac)
	}
}

func TestSessionMatchImprovesWithEvidence(t *testing.T) {
	ds := testDataset(t, nil)
	m := newMatcher(t, ds, Options{})
	rng := rand.New(rand.NewSource(23))
	targets := ds.SampleEIDs(25, rng)
	s, err := m.NewSession(targets)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	accuracyAt := func() float64 {
		results, err := s.Match(ctx)
		if err != nil {
			t.Fatal(err)
		}
		correct := 0
		for _, e := range targets {
			if results[e].VID == ds.TruthVID(e) {
				correct++
			}
		}
		return float64(correct) / float64(len(targets))
	}
	if err := s.Advance(0); err != nil {
		t.Fatal(err)
	}
	early := accuracyAt()
	for w := 1; w < ds.Config.NumWindows; w++ {
		if err := s.Advance(w); err != nil {
			t.Fatal(err)
		}
	}
	late := accuracyAt()
	if late < early {
		t.Errorf("accuracy regressed with evidence: %v -> %v", early, late)
	}
	if late < 0.8 {
		t.Errorf("late accuracy = %v", late)
	}
}

func TestSessionReAdvanceHarmless(t *testing.T) {
	ds := testDataset(t, nil)
	m := newMatcher(t, ds, Options{})
	targets := ds.AllEIDs()[:10]
	s, err := m.NewSession(targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(3); err != nil {
		t.Fatal(err)
	}
	resolvedOnce := s.Resolved()
	if err := s.Advance(3); err != nil {
		t.Fatal(err)
	}
	if s.Resolved() != resolvedOnce {
		t.Errorf("re-feeding a window changed resolution: %d -> %d", resolvedOnce, s.Resolved())
	}
}

func TestSessionRuleOutAcrossTargets(t *testing.T) {
	ds := testDataset(t, nil)
	m := newMatcher(t, ds, Options{})
	targets := ds.AllEIDs()[:20]
	s, err := m.NewSession(targets)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < ds.Config.NumWindows; w++ {
		if err := s.Advance(w); err != nil {
			t.Fatal(err)
		}
	}
	results, err := s.Match(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// No two targets may claim the same acceptable VID.
	claimed := map[ids.VID]ids.EID{}
	for e, res := range results {
		if res.VID == ids.NoVID || !res.Acceptable {
			continue
		}
		if prev, dup := claimed[res.VID]; dup {
			t.Errorf("VID %s claimed by both %s and %s", res.VID, prev, e)
		}
		claimed[res.VID] = e
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"evmatching/internal/feature"
	"evmatching/internal/ids"
	"evmatching/internal/partition"
	"evmatching/internal/scenario"
	"evmatching/internal/vfilter"
)

// ErrUnknownWindow reports advancing a session past the dataset's windows.
var ErrUnknownWindow = errors.New("core: window has no scenarios")

// Session is the online form of EV-Matching: surveillance windows are fed in
// arrival order, EID set splitting refines incrementally after each one, and
// the current best matches can be requested at any time from the evidence
// accumulated so far. A deployed system would run one long-lived session per
// target group as data streams in, instead of re-running batch matching.
// Sessions are not safe for concurrent use.
type Session struct {
	m       *Matcher
	targets []ids.EID
	tset    map[ids.EID]bool
	p       *partition.Partition
	filter  *vfilter.Filter
	seen    []int // windows consumed, in arrival order
}

// NewSession starts an online matching session for the target EIDs.
func (m *Matcher) NewSession(targets []ids.EID) (*Session, error) {
	targets = dedupEIDs(targets)
	if len(targets) == 0 {
		return nil, ErrNoTargets
	}
	p, err := partition.New(targets)
	if err != nil {
		return nil, err
	}
	filter, err := vfilter.New(m.ds.Store, vfilter.Config{
		Extractor:      feature.Extractor{Dim: m.ds.Config.DescriptorDim(), WorkFactor: m.opts.WorkFactor},
		AcceptMajority: m.opts.AcceptMajority,
	})
	if err != nil {
		return nil, err
	}
	return &Session{
		m:       m,
		targets: targets,
		tset:    targetSet(targets),
		p:       p,
		filter:  filter,
	}, nil
}

// Advance consumes one window of scenarios, refining the partition. Windows
// may arrive in any order but each should be fed once; re-feeding a window
// is harmless (its scenarios are already-recorded splitters or ineffective).
func (s *Session) Advance(window int) error {
	idsAt := s.m.ds.Store.AtWindow(window)
	if len(idsAt) == 0 {
		return fmt.Errorf("%w: %d", ErrUnknownWindow, window)
	}
	for _, id := range idsAt {
		if fs := filterScenario(s.m.ds.Store.E(id), s.tset); fs != nil {
			s.p.SplitBy(fs)
		}
	}
	s.seen = append(s.seen, window)
	return nil
}

// Windows returns how many windows the session has consumed.
func (s *Session) Windows() int { return len(s.seen) }

// Distinguished reports whether the E evidence so far separates every
// target (the session can keep running to strengthen V-stage evidence).
func (s *Session) Distinguished() bool { return s.p.Done() }

// Resolved returns how many targets are currently distinguished.
func (s *Session) Resolved() int {
	n := 0
	for _, e := range s.targets {
		if ok, err := s.p.Resolved(e); err == nil && ok {
			n++
		}
	}
	return n
}

// Match returns the current best match for every target, using only the
// windows consumed so far. Matches improve as more windows arrive; EIDs
// whose evidence is still ambiguous report low confidence or NoVID.
func (s *Session) Match(ctx context.Context) (map[ids.EID]vfilter.Result, error) {
	// Per-EID lists over the seen windows only.
	windows := append([]int(nil), s.seen...)
	sort.Ints(windows)
	lists := make(map[ids.EID][]scenario.ID, len(s.targets))
	for _, e := range s.targets {
		pos, err := s.p.PositiveScenarios(e)
		if err != nil {
			return nil, err
		}
		lists[e] = s.m.padToUnique(e, pos, windows)
	}
	out := make(map[ids.EID]vfilter.Result, len(s.targets))
	exclude := make(map[ids.VID]bool)
	for _, e := range s.p.PostOrder() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: session match: %w", err)
		}
		list, ok := lists[e]
		if !ok {
			continue
		}
		res, err := s.filter.Match(e, list, exclude)
		if err != nil {
			return nil, err
		}
		out[e] = res
		if res.VID != ids.NoVID && res.Acceptable {
			exclude[res.VID] = true
		}
	}
	return out, nil
}

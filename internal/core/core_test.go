package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"evmatching/internal/dataset"
	"evmatching/internal/elocal"
	"evmatching/internal/ids"
	"evmatching/internal/mapreduce"
	"evmatching/internal/vfilter"
)

// testDataset generates a small ideal world once per config.
func testDataset(t *testing.T, mutate func(*dataset.Config)) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumPersons = 120
	cfg.Density = 8
	cfg.NumWindows = 24
	if mutate != nil {
		mutate(&cfg)
	}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ds
}

func newMatcher(t *testing.T, ds *dataset.Dataset, opts Options) *Matcher {
	t.Helper()
	m, err := New(ds, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func truthFn(ds *dataset.Dataset) func(ids.EID) ids.VID {
	return func(e ids.EID) ids.VID { return ds.TruthVID(e) }
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("want error for nil dataset")
	}
	ds := testDataset(t, nil)
	bad := []Options{
		{Algorithm: Algorithm(99)},
		{Mode: Mode(99)},
		{Workers: -1},
		{AcceptMajority: 1.5},
		{MaxRefineRounds: -1},
		{EDPMaxScenarios: -2},
	}
	for i, opts := range bad {
		if _, err := New(ds, opts); err == nil {
			t.Errorf("options %d: want validation error", i)
		}
	}
	m := newMatcher(t, ds, Options{})
	o := m.Options()
	if o.Algorithm != AlgorithmSS || o.Mode != ModeSerial || o.AcceptMajority != 0.7 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestMatchNoTargets(t *testing.T) {
	ds := testDataset(t, nil)
	m := newMatcher(t, ds, Options{})
	if _, err := m.Match(context.Background(), nil); err == nil {
		t.Error("want ErrNoTargets")
	}
	if _, err := m.Match(context.Background(), []ids.EID{ids.None}); err == nil {
		t.Error("want ErrNoTargets for only-empty EIDs")
	}
}

func TestSSIdealAccuracy(t *testing.T) {
	ds := testDataset(t, nil)
	m := newMatcher(t, ds, Options{})
	rng := rand.New(rand.NewSource(2))
	targets := ds.SampleEIDs(60, rng)
	rep, err := m.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Accuracy(truthFn(ds)); got < 0.8 {
		t.Errorf("SS ideal accuracy = %v, want >= 0.8", got)
	}
	if rep.SelectedScenarios == 0 || rep.SelectedScenarios > ds.Store.Len() {
		t.Errorf("SelectedScenarios = %d", rep.SelectedScenarios)
	}
	if rep.AvgScenariosPerEID() <= 0 {
		t.Errorf("AvgScenariosPerEID = %v", rep.AvgScenariosPerEID())
	}
	if len(rep.Results) != len(targets) {
		t.Errorf("Results = %d, want %d", len(rep.Results), len(targets))
	}
	if rep.VStats.Extractions == 0 || rep.VStats.Comparisons == 0 {
		t.Errorf("VStats = %+v", rep.VStats)
	}
}

func TestSSSingleEID(t *testing.T) {
	ds := testDataset(t, nil)
	m := newMatcher(t, ds, Options{})
	e := ds.AllEIDs()[7]
	rep, err := m.Match(context.Background(), []ids.EID{e})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := rep.Results[e]
	if !ok {
		t.Fatal("no result for target")
	}
	if res.VID != ds.TruthVID(e) {
		t.Errorf("single match VID = %v, want %v", res.VID, ds.TruthVID(e))
	}
	if rep.PerEID[e] == 0 {
		t.Error("single-EID list empty (supplement failed)")
	}
}

func TestSSParallelMatchesAccuracy(t *testing.T) {
	ds := testDataset(t, nil)
	rng := rand.New(rand.NewSource(4))
	targets := ds.SampleEIDs(50, rng)
	serial := newMatcher(t, ds, Options{Mode: ModeSerial})
	parallel := newMatcher(t, ds, Options{Mode: ModeParallel, Workers: 4})
	repS, err := serial.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	repP, err := parallel.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	accS, accP := repS.Accuracy(truthFn(ds)), repP.Accuracy(truthFn(ds))
	if accP < accS-0.1 {
		t.Errorf("parallel accuracy %v much worse than serial %v", accP, accS)
	}
	// The MR cross-check inside the parallel E stage would have errored on
	// any divergence; reaching here asserts Algorithm 3 equivalence.
}

func TestSSvsEDPScenarioCounts(t *testing.T) {
	// The paper's headline: SS selects far fewer unique scenarios than EDP
	// because scenarios are reused across EIDs (Fig. 5).
	ds := testDataset(t, func(c *dataset.Config) {
		c.NumPersons = 150
		c.Density = 25
	})
	rng := rand.New(rand.NewSource(6))
	targets := ds.SampleEIDs(100, rng)
	ss := newMatcher(t, ds, Options{Algorithm: AlgorithmSS})
	edp := newMatcher(t, ds, Options{Algorithm: AlgorithmEDP})
	repSS, err := ss.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	repEDP, err := edp.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if repSS.SelectedScenarios >= repEDP.SelectedScenarios {
		t.Errorf("SS selected %d unique scenarios, EDP %d; SS should select fewer",
			repSS.SelectedScenarios, repEDP.SelectedScenarios)
	}
	// EDP re-processes scenarios per EID; SS extracts each at most once.
	if repSS.VStats.ScenariosProcessed > repSS.SelectedScenarios {
		t.Errorf("SS processed %d scenarios but selected %d (cache broken)",
			repSS.VStats.ScenariosProcessed, repSS.SelectedScenarios)
	}
	if repEDP.VStats.ScenariosProcessed <= repEDP.SelectedScenarios {
		t.Errorf("EDP processed %d <= selected %d; expected duplicate processing",
			repEDP.VStats.ScenariosProcessed, repEDP.SelectedScenarios)
	}
}

func TestEDPAccuracy(t *testing.T) {
	ds := testDataset(t, nil)
	m := newMatcher(t, ds, Options{Algorithm: AlgorithmEDP})
	rng := rand.New(rand.NewSource(8))
	targets := ds.SampleEIDs(40, rng)
	rep, err := m.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Accuracy(truthFn(ds)); got < 0.75 {
		t.Errorf("EDP accuracy = %v, want >= 0.75", got)
	}
	if rep.RefineRounds != 0 {
		t.Errorf("EDP refined %d rounds; EDP never refines", rep.RefineRounds)
	}
}

func TestEDPParallelMatchesSerial(t *testing.T) {
	ds := testDataset(t, nil)
	rng := rand.New(rand.NewSource(10))
	targets := ds.SampleEIDs(30, rng)
	serial := newMatcher(t, ds, Options{Algorithm: AlgorithmEDP, Mode: ModeSerial})
	parallel := newMatcher(t, ds, Options{Algorithm: AlgorithmEDP, Mode: ModeParallel, Workers: 4})
	repS, err := serial.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	repP, err := parallel.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range targets {
		if repS.Results[e].VID != repP.Results[e].VID {
			t.Errorf("EID %s: serial %v vs parallel %v", e, repS.Results[e].VID, repP.Results[e].VID)
		}
	}
	if repS.SelectedScenarios != repP.SelectedScenarios {
		t.Errorf("selected scenarios differ: %d vs %d", repS.SelectedScenarios, repP.SelectedScenarios)
	}
}

func TestMatchAllUniversal(t *testing.T) {
	ds := testDataset(t, func(c *dataset.Config) {
		c.NumPersons = 60
		c.Density = 12
	})
	m := newMatcher(t, ds, Options{})
	rep, err := m.MatchAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Targets) != 60 {
		t.Fatalf("universal targets = %d", len(rep.Targets))
	}
	if got := rep.Accuracy(truthFn(ds)); got < 0.8 {
		t.Errorf("universal accuracy = %v", got)
	}
}

func TestPracticalSettingWithRefining(t *testing.T) {
	ds := testDataset(t, func(c *dataset.Config) {
		*c = c.Practical()
		c.NumPersons = 120
		c.Density = 15
		c.NumWindows = 24
		c.VIDMissingRate = 0.05
		c.EIDMissingRate = 0.1
	})
	m := newMatcher(t, ds, Options{MaxRefineRounds: 3})
	rng := rand.New(rand.NewSource(14))
	targets := ds.SampleEIDs(50, rng)
	rep, err := m.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Accuracy(truthFn(ds)); got < 0.6 {
		t.Errorf("practical accuracy = %v, want >= 0.6", got)
	}
}

func TestRefiningImprovesOrMatchesVIDMissing(t *testing.T) {
	ds := testDataset(t, func(c *dataset.Config) {
		c.VIDMissingRate = 0.1
	})
	rng := rand.New(rand.NewSource(16))
	targets := ds.SampleEIDs(50, rng)
	// A near-zero acceptance threshold effectively disables refining
	// (everything is acceptable on round one); compare against 3 rounds.
	oneShot := newMatcher(t, ds, Options{AcceptMajority: 0.01})
	repRefine, err := newMatcher(t, ds, Options{MaxRefineRounds: 3}).Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	repOne, err := oneShot.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	accRefine := repRefine.Accuracy(truthFn(ds))
	accOne := repOne.Accuracy(truthFn(ds))
	if accRefine < accOne-0.05 {
		t.Errorf("refining accuracy %v worse than one-shot %v", accRefine, accOne)
	}
}

func TestContextCancellation(t *testing.T) {
	ds := testDataset(t, nil)
	m := newMatcher(t, ds, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Match(ctx, ds.AllEIDs()[:10]); err == nil {
		t.Error("want context error")
	}
	edp := newMatcher(t, ds, Options{Algorithm: AlgorithmEDP})
	if _, err := edp.Match(ctx, ds.AllEIDs()[:10]); err == nil {
		t.Error("want context error from EDP")
	}
}

func TestReportHelpers(t *testing.T) {
	rep := &Report{
		Targets: []ids.EID{"a", "b", "c"},
		Results: map[ids.EID]vfilter.Result{
			"a": {VID: "V1"},
			"b": {VID: "V2"},
			"c": {VID: ids.NoVID},
		},
		PerEID: map[ids.EID]int{"a": 3, "b": 5, "c": 1},
	}
	truth := func(e ids.EID) ids.VID {
		switch e {
		case "a":
			return "V1"
		case "b":
			return "V9"
		case "c":
			return "V3"
		}
		return ids.NoVID
	}
	if got := rep.Accuracy(truth); got != 1.0/3.0 {
		t.Errorf("Accuracy = %v, want 1/3", got)
	}
	if got := rep.AvgScenariosPerEID(); got != 3 {
		t.Errorf("AvgScenariosPerEID = %v, want 3", got)
	}
	if got := rep.Matched(); got != 2 {
		t.Errorf("Matched = %d, want 2", got)
	}
	empty := &Report{}
	if empty.Accuracy(truth) != 0 || empty.AvgScenariosPerEID() != 0 {
		t.Error("empty report helpers should return 0")
	}
}

func TestAlgorithmModeStrings(t *testing.T) {
	if AlgorithmSS.String() != "SS" || AlgorithmEDP.String() != "EDP" || Algorithm(0).String() != "invalid" {
		t.Error("Algorithm.String wrong")
	}
	if ModeSerial.String() != "serial" || ModeParallel.String() != "parallel" || Mode(0).String() != "invalid" {
		t.Error("Mode.String wrong")
	}
}

func TestDedupEIDs(t *testing.T) {
	got := dedupEIDs([]ids.EID{"b", "a", "b", ids.None, "a"})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("dedupEIDs = %v", got)
	}
}

func TestMatchDeterministic(t *testing.T) {
	ds := testDataset(t, nil)
	rng := rand.New(rand.NewSource(22))
	targets := ds.SampleEIDs(30, rng)
	m1 := newMatcher(t, ds, Options{Seed: 5})
	m2 := newMatcher(t, ds, Options{Seed: 5})
	r1, err := m1.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m2.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range targets {
		if r1.Results[e].VID != r2.Results[e].VID {
			t.Errorf("EID %s differs across identical runs", e)
		}
	}
	if r1.SelectedScenarios != r2.SelectedScenarios {
		t.Errorf("SelectedScenarios differ: %d vs %d", r1.SelectedScenarios, r2.SelectedScenarios)
	}
}

func TestSSWithRSSILocalization(t *testing.T) {
	// End to end on the full practical stack: RSSI multilateration drives
	// E-observations (drift + dropped fixes), vague zones absorb it.
	ds := testDataset(t, func(c *dataset.Config) {
		*c = c.Practical()
		c.NumPersons = 120
		c.Density = 8
		c.NumWindows = 24
		c.ELocal = elocal.DefaultConfig()
	})
	m := newMatcher(t, ds, Options{})
	rng := rand.New(rand.NewSource(21))
	targets := ds.SampleEIDs(40, rng)
	rep, err := m.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Accuracy(truthFn(ds)); got < 0.6 {
		t.Errorf("RSSI-world accuracy = %v, want >= 0.6", got)
	}
}

func TestSSWithGaitFusion(t *testing.T) {
	// High appearance noise wrecks appearance-only matching; the fused gait
	// channel restores it (feature-level fusion, paper [12]).
	base := func(c *dataset.Config) {
		c.NumPersons = 120
		c.Density = 8
		c.NumWindows = 24
		c.ObsNoise = 0.5
	}
	noGait := testDataset(t, base)
	withGait := testDataset(t, func(c *dataset.Config) {
		base(c)
		c.GaitDim = 16
		c.GaitNoise = 0.05
		c.GaitWeight = 2
	})
	// The two worlds draw different MAC sequences (the fused gallery
	// consumes extra randomness), so sample targets per dataset.
	repPlain, err := newMatcher(t, noGait, Options{}).Match(context.Background(),
		noGait.SampleEIDs(40, rand.New(rand.NewSource(30))))
	if err != nil {
		t.Fatal(err)
	}
	repFused, err := newMatcher(t, withGait, Options{}).Match(context.Background(),
		withGait.SampleEIDs(40, rand.New(rand.NewSource(30))))
	if err != nil {
		t.Fatal(err)
	}
	accPlain := repPlain.Accuracy(truthFn(noGait))
	accFused := repFused.Accuracy(truthFn(withGait))
	// At this world size the E evidence already pins most matches, so the
	// channels tie at the top; the discrimination margin itself is pinned
	// by the feature-level fusion property test. Here we assert the fused
	// pipeline is at least as good end-to-end and fully functional.
	if accFused < accPlain {
		t.Errorf("gait fusion accuracy %v < appearance-only %v", accFused, accPlain)
	}
	if accFused < 0.8 {
		t.Errorf("fused accuracy = %v, want >= 0.8", accFused)
	}
	if withGait.Config.DescriptorDim() != withGait.Config.FeatureDim+16 {
		t.Errorf("DescriptorDim = %d", withGait.Config.DescriptorDim())
	}
}

func TestMatchUnknownEIDs(t *testing.T) {
	// Unknown EIDs are permitted: they simply cannot be matched.
	ds := testDataset(t, nil)
	m := newMatcher(t, ds, Options{})
	known := ds.AllEIDs()[0]
	rep, err := m.Match(context.Background(), []ids.EID{known, "de:ad:be:ef:00:01"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[known].VID == ids.NoVID {
		t.Error("known EID failed to match")
	}
	if got := rep.Results["de:ad:be:ef:00:01"].VID; got != ids.NoVID {
		t.Errorf("unknown EID matched %v", got)
	}
}

func TestExecutorOverride(t *testing.T) {
	// A custom executor (here: the serial engine) can drive parallel mode.
	ds := testDataset(t, nil)
	m := newMatcher(t, ds, Options{
		Mode:     ModeParallel,
		Executor: mapreduce.SerialExecutor{},
	})
	rng := rand.New(rand.NewSource(40))
	targets := ds.SampleEIDs(20, rng)
	rep, err := m.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Accuracy(truthFn(ds)); got < 0.8 {
		t.Errorf("accuracy with overridden executor = %v", got)
	}
}

func TestResultMarginSurfacesInReport(t *testing.T) {
	ds := testDataset(t, nil)
	m := newMatcher(t, ds, Options{})
	rng := rand.New(rand.NewSource(41))
	targets := ds.SampleEIDs(15, rng)
	rep, err := m.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range targets {
		res := rep.Results[e]
		if res.VID == ids.NoVID {
			continue
		}
		if res.Margin < 1 && res.RunnerUp != ids.NoVID {
			t.Errorf("EID %s: winner margin %v < 1 with runner-up %v", e, res.Margin, res.RunnerUp)
		}
	}
}

func TestEDPParallelCancellationNoDeadlock(t *testing.T) {
	ds := testDataset(t, nil)
	m := newMatcher(t, ds, Options{Algorithm: AlgorithmEDP, Mode: ModeParallel, Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the V stage starts
	doneCh := make(chan error, 1)
	go func() {
		_, err := m.Match(ctx, ds.AllEIDs()[:30])
		doneCh <- err
	}()
	select {
	case err := <-doneCh:
		if err == nil {
			t.Error("want context error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("EDP parallel match deadlocked on cancellation")
	}
}

func TestExplain(t *testing.T) {
	ds := testDataset(t, nil)
	m := newMatcher(t, ds, Options{})
	e := ds.AllEIDs()[4]
	var sb strings.Builder
	if err := m.Explain(context.Background(), e, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		string(e), "E stage:", "V stage votes:", "verdict:", "ground truth:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
	if err := m.Explain(context.Background(), ids.None, &sb); err == nil {
		t.Error("want error for empty EID")
	}
}

// TestSerialParallelStatsAgreement pins the exactly-once extraction
// accounting under V-stage batching: however the scenario list is chunked
// into batch tasks, each distinct scenario is extracted once, so the serial
// path and every parallel batch size agree on scenarios processed and
// extractions performed. Comparisons are pinned across batch sizes only —
// serial legitimately performs fewer because exclusions accrue between its
// sequential Match calls.
func TestSerialParallelStatsAgreement(t *testing.T) {
	ds := testDataset(t, nil)
	targets := ds.SampleEIDs(30, rand.New(rand.NewSource(7)))
	serial := newMatcher(t, ds, Options{Mode: ModeSerial})
	repS, err := serial.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	var first *Report
	for _, batch := range []int{0, 1, 3, 17} {
		parallel := newMatcher(t, ds, Options{Mode: ModeParallel, Workers: 4, BatchSize: batch})
		repP, err := parallel.Match(context.Background(), targets)
		if err != nil {
			t.Fatalf("BatchSize=%d: %v", batch, err)
		}
		if repP.VStats.ScenariosProcessed != repS.VStats.ScenariosProcessed {
			t.Errorf("BatchSize=%d: ScenariosProcessed = %d, serial %d",
				batch, repP.VStats.ScenariosProcessed, repS.VStats.ScenariosProcessed)
		}
		if repP.VStats.Extractions != repS.VStats.Extractions {
			t.Errorf("BatchSize=%d: Extractions = %d, serial %d",
				batch, repP.VStats.Extractions, repS.VStats.Extractions)
		}
		if first == nil {
			first = repP
			continue
		}
		if repP.VStats != first.VStats {
			t.Errorf("BatchSize=%d: VStats %+v differ from first parallel run %+v",
				batch, repP.VStats, first.VStats)
		}
		if repP.Fingerprint() != first.Fingerprint() {
			t.Errorf("BatchSize=%d: fingerprint diverged from first parallel run", batch)
		}
	}
}

// Package core orchestrates EV-Matching end to end: the E stage (EID set
// splitting over the scenario store), the V stage (VID filtering with
// post-order rule-out), matching refining for the practical setting, and the
// EDP baseline of Teng et al. that the paper compares against. It supports
// elastic matching sizes — a single EID, any subset, or the universal set —
// and serial, parallel (in-process MapReduce), or custom (e.g. distributed
// cluster) execution.
package core

import (
	"errors"
	"fmt"
	"runtime"

	"evmatching/internal/mapreduce"
	"evmatching/internal/spill"
)

// Algorithm selects the matching algorithm.
type Algorithm int

// Algorithms.
const (
	// AlgorithmSS is the paper's set-splitting EV-Matching.
	AlgorithmSS Algorithm = iota + 1
	// AlgorithmEDP is the baseline from [24]: per-EID E-filtering and
	// V-identification with no cross-EID scenario reuse.
	AlgorithmEDP
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmSS:
		return "SS"
	case AlgorithmEDP:
		return "EDP"
	default:
		return "invalid"
	}
}

// Mode selects how stages execute.
type Mode int

// Modes.
const (
	// ModeSerial runs both stages single-threaded (Algorithm 1 reference).
	ModeSerial Mode = iota + 1
	// ModeParallel runs the MapReduce-parallelized stages (Algorithm 3 and
	// §V-C) on an in-process executor.
	ModeParallel
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSerial:
		return "serial"
	case ModeParallel:
		return "parallel"
	default:
		return "invalid"
	}
}

// ScanOrder selects the order in which the E stage consumes time windows.
type ScanOrder int

// Scan orders.
const (
	// ScanShuffled visits windows in a seeded random order, the paper's
	// Algorithm 3 preprocess step ("one random timestamp at a time").
	ScanShuffled ScanOrder = iota + 1
	// ScanInOrder visits windows in ascending event-time order — exactly the
	// order a streaming consumer observes them. The batch run under
	// ScanInOrder is the reference the internal/stream replay path must
	// reproduce bit for bit (see DESIGN.md §10).
	ScanInOrder
)

// String implements fmt.Stringer.
func (s ScanOrder) String() string {
	switch s {
	case ScanShuffled:
		return "shuffled"
	case ScanInOrder:
		return "in-order"
	default:
		return "invalid"
	}
}

// ErrBadOptions reports invalid matcher options.
var ErrBadOptions = errors.New("core: invalid options")

// Options parameterizes a Matcher.
type Options struct {
	// Algorithm defaults to AlgorithmSS.
	Algorithm Algorithm
	// Mode defaults to ModeSerial.
	Mode Mode
	// Workers sizes the parallel executor; 0 means GOMAXPROCS.
	Workers int
	// BatchSize is the number of scenarios (extraction) or EIDs (comparison)
	// a parallel V-stage task owns. 0 sizes batches automatically to
	// ceil(n / (4·workers)) — about four tasks per worker, enough slack for
	// work stealing while amortizing per-task dispatch. Serial mode ignores
	// it.
	BatchSize int
	// Executor, when non-nil, overrides the executor derived from Mode —
	// the hook for running stages on a distributed cluster.
	Executor mapreduce.Executor
	// Seed drives scenario-order randomization; equal seeds give equal
	// matchings. Defaults to 1.
	Seed int64
	// ScanOrder is the window order of the E stage. Defaults to ScanShuffled
	// (the paper's randomized timestamp order); ScanInOrder pins the
	// ascending event-time order shared with the streaming path.
	ScanOrder ScanOrder
	// AcceptMajority is the vote fraction a match must win to be accepted
	// (refining re-runs the rest). Defaults to 0.7.
	AcceptMajority float64
	// MaxRefineRounds bounds matching refining (paper Algorithm 2).
	// Defaults to 3 for SS; EDP never refines.
	MaxRefineRounds int
	// WorkFactor scales per-patch feature-extraction cost, modeling real
	// video processing. Defaults to 4.
	WorkFactor int
	// EDPMaxScenarios caps the E-Scenarios EDP selects per EID (and the SS
	// per-EID padding) when the candidate intersection refuses to become a
	// singleton. Defaults to 14.
	EDPMaxScenarios int
	// DisableBlocking turns off the spatiotemporal blocking index in front
	// of the E stage (DESIGN.md §13) and restores the exhaustive
	// scenario-by-scenario scan. Blocking is on by default: its pruned path
	// is bit-identical to the exhaustive one (the equivalence property tests
	// pin this), so the switch exists for benchmarking the asymptote and as
	// an escape hatch, not for correctness.
	DisableBlocking bool
	// MemBudget caps the bytes of in-memory shuffle state in the parallel
	// executor; past it, per-reducer buckets spill to sorted temp-file runs
	// and k-way merge at reduce time (DESIGN.md §14). 0 disables spilling.
	// The spilled path is bit-identical to the in-memory one. Ignored when
	// Executor is set explicitly.
	MemBudget int64
	// SpillDir is where spill runs are written; empty means the OS temp
	// directory.
	SpillDir string
	// SpillStats, when non-nil, accumulates spill counters across the run's
	// jobs (the caller owns the instance; evserve surfaces it on /metricsz).
	SpillStats *spill.Stats
	// MinPerEIDList pads each EID's selected scenario list up to this
	// length with further scenarios containing the EID. The split-tree path
	// alone distinguishes the EID among the matching targets, but the VID
	// probability product must also suppress bystanders who happen to share
	// part of the trajectory; the paper's per-EID scenario counts (Fig. 7,
	// about one more than EDP's) reflect the same padding. Defaults to 3.
	MinPerEIDList int
}

// withDefaults returns a copy with defaults applied.
func (o Options) withDefaults() Options {
	if o.Algorithm == 0 {
		o.Algorithm = AlgorithmSS
	}
	if o.Mode == 0 {
		o.Mode = ModeSerial
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ScanOrder == 0 {
		o.ScanOrder = ScanShuffled
	}
	if o.AcceptMajority == 0 {
		o.AcceptMajority = 0.7
	}
	if o.MaxRefineRounds == 0 {
		o.MaxRefineRounds = 3
	}
	if o.WorkFactor == 0 {
		o.WorkFactor = 4
	}
	if o.EDPMaxScenarios == 0 {
		o.EDPMaxScenarios = 14
	}
	if o.MinPerEIDList == 0 {
		o.MinPerEIDList = 3
	}
	return o
}

// validate reports whether the (defaulted) options are usable.
func (o Options) validate() error {
	if o.Algorithm != AlgorithmSS && o.Algorithm != AlgorithmEDP {
		return fmt.Errorf("%w: algorithm %d", ErrBadOptions, o.Algorithm)
	}
	if o.Mode != ModeSerial && o.Mode != ModeParallel {
		return fmt.Errorf("%w: mode %d", ErrBadOptions, o.Mode)
	}
	if o.Workers < 0 {
		return fmt.Errorf("%w: workers %d", ErrBadOptions, o.Workers)
	}
	if o.BatchSize < 0 {
		return fmt.Errorf("%w: batch size %d", ErrBadOptions, o.BatchSize)
	}
	if o.ScanOrder != ScanShuffled && o.ScanOrder != ScanInOrder {
		return fmt.Errorf("%w: scan order %d", ErrBadOptions, o.ScanOrder)
	}
	if o.AcceptMajority < 0 || o.AcceptMajority > 1 {
		return fmt.Errorf("%w: accept majority %f", ErrBadOptions, o.AcceptMajority)
	}
	if o.MaxRefineRounds < 0 {
		return fmt.Errorf("%w: refine rounds %d", ErrBadOptions, o.MaxRefineRounds)
	}
	if o.WorkFactor < 0 {
		return fmt.Errorf("%w: work factor %d", ErrBadOptions, o.WorkFactor)
	}
	if o.EDPMaxScenarios < 1 {
		return fmt.Errorf("%w: EDP max scenarios %d", ErrBadOptions, o.EDPMaxScenarios)
	}
	if o.MinPerEIDList < 1 {
		return fmt.Errorf("%w: min per-EID list %d", ErrBadOptions, o.MinPerEIDList)
	}
	if o.MemBudget < 0 {
		return fmt.Errorf("%w: mem budget %d", ErrBadOptions, o.MemBudget)
	}
	return nil
}

// executor returns the MapReduce executor for the configured mode.
func (o Options) executor() mapreduce.Executor {
	if o.Executor != nil {
		return o.Executor
	}
	if o.Mode == ModeParallel {
		return mapreduce.ParallelExecutor{
			Workers:   o.Workers,
			MemBudget: o.MemBudget,
			SpillDir:  o.SpillDir,
			Stats:     o.SpillStats,
		}
	}
	return mapreduce.SerialExecutor{}
}

// effectiveWorkers resolves the worker count the default batch sizing
// assumes: the explicit Workers, else GOMAXPROCS — matching how
// mapreduce.ParallelExecutor sizes its pool.
func (o Options) effectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

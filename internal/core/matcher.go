package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"evmatching/internal/blocking"
	"evmatching/internal/dataset"
	"evmatching/internal/feature"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
	"evmatching/internal/spill"
	"evmatching/internal/vfilter"
)

// ErrNoDataset reports construction without a dataset.
var ErrNoDataset = errors.New("core: nil dataset")

// ErrNoTargets reports a Match call with no target EIDs.
var ErrNoTargets = errors.New("core: no target EIDs")

// Matcher matches EIDs to VIDs over one dataset. A Matcher is safe to reuse
// for multiple Match calls; each call works from fresh state.
type Matcher struct {
	ds   *dataset.Dataset
	opts Options

	// blockIdx is the lazily built blocking index over ds.Store (DESIGN.md
	// §13), shared across Match calls. It is keyed to the store length at
	// build time: stores are append-only, so a length match means the index
	// is current and a mismatch triggers a deterministic rebuild — the same
	// rule the streaming checkpoint restore follows.
	blockMu  sync.Mutex
	blockIdx *blocking.Index
	blockLen int
}

// blockIndex returns the current blocking index, building or rebuilding it
// when the store has grown since the last build.
func (m *Matcher) blockIndex() *blocking.Index {
	m.blockMu.Lock()
	defer m.blockMu.Unlock()
	if m.blockIdx == nil || m.blockLen != m.ds.Store.Len() {
		m.blockIdx = blocking.Build(m.ds.Store, blocking.DefaultGeometry())
		m.blockLen = m.ds.Store.Len()
	}
	return m.blockIdx
}

// New creates a Matcher over the dataset.
func New(ds *dataset.Dataset, opts Options) (*Matcher, error) {
	if ds == nil {
		return nil, ErrNoDataset
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	// A budgeted run always gets a stats sink so Report.Spill can prove
	// (or disprove) that the budget actually forced out-of-core work.
	if opts.MemBudget > 0 && opts.SpillStats == nil {
		opts.SpillStats = &spill.Stats{}
	}
	return &Matcher{ds: ds, opts: opts}, nil
}

// Options returns the matcher's effective (defaulted) options.
func (m *Matcher) Options() Options { return m.opts }

// Match matches the target EIDs to their VIDs. Matching size is elastic:
// pass one EID, any subset, or every EID in the dataset (universal
// matching). Unknown EIDs are allowed — they simply fail to match.
func (m *Matcher) Match(ctx context.Context, targets []ids.EID) (*Report, error) {
	targets = dedupEIDs(targets)
	if len(targets) == 0 {
		return nil, ErrNoTargets
	}
	filter, err := vfilter.New(m.ds.Store, vfilter.Config{
		Extractor:      feature.Extractor{Dim: m.ds.Config.DescriptorDim(), WorkFactor: m.opts.WorkFactor},
		AcceptMajority: m.opts.AcceptMajority,
	})
	if err != nil {
		return nil, err
	}
	var rep *Report
	switch m.opts.Algorithm {
	case AlgorithmSS:
		rep, err = m.matchSS(ctx, targets, filter)
	case AlgorithmEDP:
		rep, err = m.matchEDP(ctx, targets)
	default:
		return nil, fmt.Errorf("%w: algorithm %v", ErrBadOptions, m.opts.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	// Safety net for paged stores: if any legacy V accessor failed to
	// reload an evicted payload mid-run, the scenario read as "no
	// detections" and the report could be silently wrong — fail instead.
	if perr := m.ds.Store.PageErr(); perr != nil {
		return nil, fmt.Errorf("core: match ran over incompletely paged state: %w", perr)
	}
	rep.Spill = m.opts.SpillStats.Snapshot()
	return rep, nil
}

// MatchAll performs universal matching: every EID in the dataset is labeled
// with its VID in one pass (paper §I: universal dataset matching).
func (m *Matcher) MatchAll(ctx context.Context) (*Report, error) {
	return m.Match(ctx, m.ds.AllEIDs())
}

// dedupEIDs drops duplicates and empty EIDs, returning a sorted copy.
func dedupEIDs(targets []ids.EID) []ids.EID {
	seen := make(map[ids.EID]bool, len(targets))
	out := make([]ids.EID, 0, len(targets))
	for _, e := range targets {
		if e == ids.None || seen[e] {
			continue
		}
		seen[e] = true
		out = append(out, e)
	}
	return ids.SortEIDs(out)
}

// filterScenario returns a view of s restricted to the target EIDs, or nil
// when no target appears — the preprocess filtering of Algorithm 3. The
// view shares s's ID so recorded scenarios resolve to real store entries.
func filterScenario(s *scenario.EScenario, targets map[ids.EID]bool) *scenario.EScenario {
	var kept map[ids.EID]scenario.Attr
	//evlint:ignore maprange builds a map view keyed by distinct EIDs; insertion order cannot affect its contents
	for e, a := range s.EIDs {
		if targets[e] {
			if kept == nil {
				kept = make(map[ids.EID]scenario.Attr)
			}
			kept[e] = a
		}
	}
	if kept == nil {
		return nil
	}
	return &scenario.EScenario{ID: s.ID, Cell: s.Cell, Window: s.Window, EIDs: kept}
}

// targetSet builds a membership set.
func targetSet(targets []ids.EID) map[ids.EID]bool {
	set := make(map[ids.EID]bool, len(targets))
	for _, e := range targets {
		set[e] = true
	}
	return set
}

// scenariosContaining returns up to max scenario IDs in which e appears
// inclusively, scanning windows in the given order and skipping IDs in
// exclude. It pads an EID's selected list up to MinPerEIDList — including
// the rightmost tree spine, whose split path carries no positive scenario.
func (m *Matcher) scenariosContaining(e ids.EID, windows []int, max int, exclude []scenario.ID) []scenario.ID {
	skip := make(map[scenario.ID]bool, len(exclude))
	for _, id := range exclude {
		skip[id] = true
	}
	var out []scenario.ID
	for _, w := range windows {
		if len(out) >= max {
			break
		}
		for _, id := range m.ds.Store.AtWindow(w) {
			s := m.ds.Store.E(id)
			if !skip[id] && s.Inclusive(e) {
				out = append(out, id)
				break // at most one scenario per window contains e inclusively
			}
		}
	}
	return out
}

// rngFor derives a deterministic rand.Rand for a labeled purpose.
func (m *Matcher) rngFor(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(m.opts.Seed*1_000_003 + salt))
}

package core

import (
	"context"
	"fmt"
	"time"

	"evmatching/internal/feature"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
	"evmatching/internal/vfilter"
)

// matchEDP runs the baseline of Teng et al. [24], adapted to parallel
// execution as the paper does for its comparison (§VI-B): every EID is an
// independent task — E-filtering walks the EID's own trajectory, selecting
// the scenarios it appears in until the running intersection of their EID
// sets is a singleton, then V-identification matches the VID within those
// scenarios. There is no cross-EID scenario reuse and no rule-out: each
// task gets its own extraction state, so a scenario selected by two EIDs is
// processed twice (the cost EV-Matching's reuse avoids).
func (m *Matcher) matchEDP(ctx context.Context, targets []ids.EID) (*Report, error) {
	rep := &Report{
		Algorithm: AlgorithmEDP,
		Mode:      m.opts.Mode,
		Targets:   targets,
		Results:   make(map[ids.EID]vfilter.Result, len(targets)),
		PerEID:    make(map[ids.EID]int, len(targets)),
	}

	// E stage: per-EID scenario selection.
	eStart := time.Now()
	lists := make(map[ids.EID][]scenario.ID, len(targets))
	selected := make(map[scenario.ID]bool)
	for i, e := range targets {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: EDP e stage: %w", err)
		}
		list := m.edpSelect(e, int64(i))
		lists[e] = list
		for _, id := range list {
			selected[id] = true
		}
		rep.PerEID[e] = len(list)
	}
	rep.SelectedScenarios = len(selected)
	rep.ETime = time.Since(eStart)

	// V stage: independent per-EID identification tasks, fanned out in
	// parallel mode (one EID per mapper).
	vStart := time.Now()
	results, err := m.edpRunTasks(ctx, targets, lists, rep)
	if err != nil {
		return nil, err
	}
	for _, e := range targets {
		if res, ok := results[e]; ok {
			rep.Results[e] = res
		}
	}
	rep.VTime = time.Since(vStart)
	return rep, nil
}

// edpSelect walks windows in a per-EID random order, accumulating scenarios
// that contain e until the intersection of their (full) EID sets is a
// singleton, the selection cap is reached, or windows run out.
func (m *Matcher) edpSelect(e ids.EID, salt int64) []scenario.ID {
	rng := m.rngFor(104729 + salt)
	windows := m.ds.Store.ShuffledWindows(rng)
	var list []scenario.ID
	var candidates map[ids.EID]bool
	for _, w := range windows {
		var found *scenario.EScenario
		for _, id := range m.ds.Store.AtWindow(w) {
			s := m.ds.Store.E(id)
			if s.Inclusive(e) {
				found = s
				break
			}
		}
		if found == nil {
			continue
		}
		list = append(list, found.ID)
		if candidates == nil {
			candidates = make(map[ids.EID]bool, found.Len())
			for _, other := range found.SortedEIDs() {
				if found.Inclusive(other) {
					candidates[other] = true
				}
			}
		} else {
			for _, other := range ids.SortedEIDKeys(candidates) {
				if !found.Inclusive(other) {
					delete(candidates, other)
				}
			}
		}
		if len(candidates) <= 1 || len(list) >= m.opts.EDPMaxScenarios {
			break
		}
	}
	return list
}

// edpRunTasks executes the per-EID V-identification tasks, serially or with
// a worker pool matching the configured parallelism.
func (m *Matcher) edpRunTasks(ctx context.Context, targets []ids.EID, lists map[ids.EID][]scenario.ID, rep *Report) (map[ids.EID]vfilter.Result, error) {
	out := make(map[ids.EID]vfilter.Result, len(targets))
	runOne := func(e ids.EID) (vfilter.Result, vfilter.Stats, error) {
		if err := ctx.Err(); err != nil {
			return vfilter.Result{}, vfilter.Stats{}, fmt.Errorf("core: EDP v stage: %w", err)
		}
		f, err := vfilter.New(m.ds.Store, vfilter.Config{
			Extractor:      feature.Extractor{Dim: m.ds.Config.DescriptorDim(), WorkFactor: m.opts.WorkFactor},
			AcceptMajority: m.opts.AcceptMajority,
		})
		if err != nil {
			return vfilter.Result{}, vfilter.Stats{}, err
		}
		res, err := f.Match(e, lists[e], nil)
		if err != nil {
			return vfilter.Result{}, vfilter.Stats{}, err
		}
		return res, f.Stats(), nil
	}

	if m.opts.Mode == ModeSerial {
		for _, e := range targets {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: EDP v stage: %w", err)
			}
			res, st, err := runOne(e)
			if err != nil {
				return nil, err
			}
			out[e] = res
			mergeStatsInto(&rep.VStats, st)
		}
		return out, nil
	}

	workers := m.opts.Workers
	if workers <= 0 {
		workers = 8
	}
	type item struct {
		eid ids.EID
		res vfilter.Result
		st  vfilter.Stats
		err error
	}
	work := make(chan ids.EID)
	done := make(chan item)
	for w := 0; w < workers; w++ {
		go func() {
			for e := range work {
				res, st, err := runOne(e)
				done <- item{eid: e, res: res, st: st, err: err}
			}
		}()
	}
	// Feed every target unconditionally: after cancellation the workers'
	// runOne calls return immediately with the context error, so exactly
	// one item per target always arrives and the collector cannot block.
	go func() {
		defer close(work)
		for _, e := range targets {
			work <- e
		}
	}()
	var firstErr error
	for range targets {
		it := <-done
		if it.err != nil && firstErr == nil {
			firstErr = it.err
			continue
		}
		if it.err == nil {
			out[it.eid] = it.res
			mergeStatsInto(&rep.VStats, it.st)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: EDP v stage: %w", err)
	}
	return out, nil
}

// mergeStatsInto accumulates src into dst.
func mergeStatsInto(dst *vfilter.Stats, src vfilter.Stats) {
	dst.ScenariosProcessed += src.ScenariosProcessed
	dst.Extractions += src.Extractions
	dst.Comparisons += src.Comparisons
}

package core

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"evmatching/internal/cluster"
	"evmatching/internal/dataset"
	"evmatching/internal/mrtest"
)

// startCluster boots a coordinator with in-process workers over real
// localhost RPC and returns the adapted executor.
func startCluster(t *testing.T, nWorkers int) *cluster.Executor {
	t.Helper()
	mrtest.CheckGoroutines(t)
	dir := t.TempDir()
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{Dir: dir, TaskTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := coord.Serve(lis)
	reg := cluster.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < nWorkers; i++ {
		w, err := cluster.NewWorker(addr, cluster.WorkerConfig{
			ID:       fmt.Sprintf("core-w%d", i),
			Dir:      dir,
			Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		_ = coord.Close()
		cancel()
		wg.Wait()
	})
	exec, err := cluster.NewExecutor(coord, reg)
	if err != nil {
		t.Fatal(err)
	}
	return exec
}

// TestSSOnDistributedCluster runs the full EV-Matching pipeline with its
// MapReduce stages dispatched to a real coordinator/worker cluster over RPC:
// the end-to-end equivalent of the paper's Spark deployment.
func TestSSOnDistributedCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed integration skipped in -short mode")
	}
	ds := testDataset(t, func(c *dataset.Config) {
		c.NumPersons = 80
		c.Density = 10
		c.NumWindows = 16
	})
	exec := startCluster(t, 3)
	m := newMatcher(t, ds, Options{
		Mode:     ModeParallel,
		Executor: exec,
	})
	rng := rand.New(rand.NewSource(9))
	targets := ds.SampleEIDs(25, rng)
	rep, err := m.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Accuracy(truthFn(ds)); got < 0.7 {
		t.Errorf("distributed accuracy = %v", got)
	}
	// The serial reference must agree on the matched VIDs.
	serial := newMatcher(t, ds, Options{Mode: ModeSerial})
	repS, err := serial.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, e := range targets {
		if rep.Results[e].VID == repS.Results[e].VID {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(targets)); frac < 0.85 {
		t.Errorf("distributed and serial agree on only %.0f%% of matches", frac*100)
	}
}

package core

import (
	"context"
	"fmt"
	"io"

	"evmatching/internal/feature"
	"evmatching/internal/ids"
	"evmatching/internal/vfilter"
)

// Explain runs the full pipeline for a single EID and writes a
// human-readable trace of the decision to w: the selected E-Scenario list
// (cell, window, crowd size), the per-scenario votes, and the final verdict
// with its margin. It is the investigator's "why was this the match?" tool.
func (m *Matcher) Explain(ctx context.Context, e ids.EID, w io.Writer) error {
	if e == ids.None {
		return ErrNoTargets
	}
	p, lists, err := m.splitStage(ctx, []ids.EID{e}, 0, nil)
	if err != nil {
		return err
	}
	list := lists[e]
	fmt.Fprintf(w, "EID %s\n", e)
	stats := p.TreeStats()
	fmt.Fprintf(w, "E stage: %d scenarios selected (tree depth %d, %d recorded splits)\n",
		len(list), stats.Depth, stats.Recorded)
	for i, id := range list {
		esc := m.ds.Store.E(id)
		dets := 0
		if v := m.ds.Store.V(id); v != nil {
			dets = len(v.Detections)
		}
		fmt.Fprintf(w, "  %d. scenario %-5d cell %-3d window %-3d (%d EIDs, %d detections)\n",
			i+1, id, esc.Cell, esc.Window, esc.Len(), dets)
	}

	filter, err := vfilter.New(m.ds.Store, vfilter.Config{
		Extractor:      feature.Extractor{Dim: m.ds.Config.DescriptorDim(), WorkFactor: m.opts.WorkFactor},
		AcceptMajority: m.opts.AcceptMajority,
	})
	if err != nil {
		return err
	}
	res, err := filter.Match(e, list, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "V stage votes:\n")
	for i, v := range res.PerScenario {
		mark := " "
		if v == res.VID && v != ids.NoVID {
			mark = "*"
		}
		fmt.Fprintf(w, "  %d. %s %s\n", i+1, mark, orNone(v))
	}
	fmt.Fprintf(w, "verdict: %s  (vote %.0f%%, probability %.4g", orNone(res.VID), res.MajorityFrac*100, res.Probability)
	if res.RunnerUp != ids.NoVID {
		fmt.Fprintf(w, ", runner-up %s at margin %.2fx", res.RunnerUp, res.Margin)
	}
	fmt.Fprintf(w, ")\n")
	if truth := m.ds.TruthVID(e); truth != ids.NoVID {
		verdict := "WRONG"
		if truth == res.VID {
			verdict = "correct"
		}
		fmt.Fprintf(w, "ground truth: %s (%s)\n", truth, verdict)
	}
	return nil
}

func orNone(v ids.VID) string {
	if v == ids.NoVID {
		return "(none)"
	}
	return string(v)
}

package core

import (
	"fmt"
	"strings"
	"time"

	"evmatching/internal/ids"
	"evmatching/internal/scenario"
	"evmatching/internal/spill"
	"evmatching/internal/vfilter"
)

// Report is the outcome of one Match call, carrying both the per-EID results
// and the cost metrics the paper evaluates: unique selected scenarios,
// per-EID scenario counts, and the E/V stage processing times.
type Report struct {
	Algorithm Algorithm
	Mode      Mode
	// Targets is the sorted EID set that was matched.
	Targets []ids.EID
	// Results maps each target EID to its match.
	Results map[ids.EID]vfilter.Result
	// PerEID maps each EID to the number of scenarios on its selected list.
	PerEID map[ids.EID]int
	// SelectedScenarios is the number of distinct scenarios across all
	// lists ("reused scenario is only counted once", paper §VI-B).
	SelectedScenarios int
	// ETime and VTime are the wall-clock times of the two stages,
	// accumulated across refine rounds.
	ETime time.Duration
	VTime time.Duration
	// VStats aggregates the visual-processing work performed.
	VStats vfilter.Stats
	// RefineRounds is how many extra refine iterations ran (0 = none).
	RefineRounds int
	// BlockCandidates and BlockPruned count the store scenarios the blocking
	// index admitted to (respectively excluded from) split probing, summed
	// across refine rounds. Like ETime/VTime they measure effort, not
	// results — the pruned path is bit-identical to the exhaustive one — so
	// Fingerprint excludes them. Both stay zero under DisableBlocking.
	BlockCandidates int64
	BlockPruned     int64
	// SplitScenarios lists the effective scenarios recorded by the round-0
	// set split, in application order. It is derived bookkeeping rather than
	// a match result, so Fingerprint excludes it; stream.Engine.Finalize
	// cross-checks its incremental split against it.
	SplitScenarios []scenario.ID
	// Spill snapshots the out-of-core activity of the run (DESIGN.md §14).
	// Like the timing fields it measures effort, not results — the spilled
	// path is bit-identical to the in-memory one — so Fingerprint excludes
	// it. All-zero when MemBudget is unset or never exceeded.
	Spill spill.Snapshot
}

// TotalTime returns the combined stage time (the paper's E+V time).
func (r *Report) TotalTime() time.Duration { return r.ETime + r.VTime }

// Accuracy returns the fraction of targets whose majority-voted VID equals
// the ground truth provided by truth (paper §VI-B: "the majority of the VIDs
// chosen from the scenarios for this EID is the right VID"). Targets for
// which truth returns ids.NoVID are skipped.
func (r *Report) Accuracy(truth func(ids.EID) ids.VID) float64 {
	correct, total := 0, 0
	for _, e := range r.Targets {
		want := truth(e)
		if want == ids.NoVID {
			continue
		}
		total++
		if res, ok := r.Results[e]; ok && res.VID == want {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// AvgScenariosPerEID returns the mean selected-list length (paper Fig. 7).
func (r *Report) AvgScenariosPerEID() float64 {
	if len(r.PerEID) == 0 {
		return 0
	}
	sum := 0
	for _, n := range r.PerEID {
		sum += n
	}
	return float64(sum) / float64(len(r.PerEID))
}

// Fingerprint renders every result-affecting field of the report in a
// canonical textual form: targets in sorted order, each with its match
// outcome, scenario-list length, and per-scenario votes, followed by the
// aggregate counters. Timing and work-cost fields (ETime, VTime, VStats,
// BlockCandidates, BlockPruned) are excluded: they measure effort, not
// results, and legitimately vary when the cluster re-executes tasks after
// faults or when blocking is toggled. Two runs over the same dataset and
// options must produce byte-identical fingerprints — the determinism
// guarantee evlint's maprange rule protects and the chaos sim asserts under
// fault injection (see DESIGN.md).
func (r *Report) Fingerprint() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "algorithm=%s mode=%s\n", r.Algorithm, r.Mode)
	for _, e := range r.Targets {
		res := r.Results[e]
		fmt.Fprintf(&sb, "%s vid=%s prob=%.12g maj=%.12g acceptable=%t runnerup=%s margin=%.12g list=%d votes=[",
			e, res.VID, res.Probability, res.MajorityFrac, res.Acceptable, res.RunnerUp, res.Margin, r.PerEID[e])
		for i, v := range res.PerScenario {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(string(v))
		}
		sb.WriteString("]\n")
	}
	fmt.Fprintf(&sb, "selected=%d refines=%d\n", r.SelectedScenarios, r.RefineRounds)
	return sb.String()
}

// BlockPruneRatio returns the fraction of index-covered scenarios the
// blocking signatures pruned before probing, in [0,1]. Zero when blocking
// was disabled or the store was empty.
func (r *Report) BlockPruneRatio() float64 {
	total := r.BlockCandidates + r.BlockPruned
	if total == 0 {
		return 0
	}
	return float64(r.BlockPruned) / float64(total)
}

// Matched returns how many targets received a non-empty VID.
func (r *Report) Matched() int {
	n := 0
	for _, res := range r.Results {
		if res.VID != ids.NoVID {
			n++
		}
	}
	return n
}

package experiments

import (
	"context"
	"fmt"
	"io"

	"evmatching/internal/dataset"
	"evmatching/internal/metrics"
)

// Fig5 regenerates "Number of selected scenarios vs Number of matched EIDs":
// SS reuses scenarios across EIDs so its unique-selection count grows far
// slower than EDP's.
func (r *Runner) Fig5(ctx context.Context) (*metrics.Series, error) {
	s := metrics.NewSeries("Fig 5: Number of selected scenarios vs number of matched EIDs",
		"matchedEIDs", "SS", "EDP")
	for _, n := range r.cfg.EIDCounts {
		ss, edp, err := r.both(ctx, "base", nil, n)
		if err != nil {
			return nil, err
		}
		s.Add(float64(n), float64(ss.Selected), float64(edp.Selected))
	}
	return s, nil
}

// Fig6 regenerates "Number of selected scenarios vs Density": with more EIDs
// per cell each selected scenario is reused more, so SS's count falls and
// converges while EDP's grows.
func (r *Runner) Fig6(ctx context.Context) (*metrics.Series, error) {
	cols := make([]string, 0, 2*len(r.cfg.DensityEIDCounts))
	for _, n := range r.cfg.DensityEIDCounts {
		cols = append(cols, fmt.Sprintf("SS-%d", n), fmt.Sprintf("EDP-%d", n))
	}
	s := metrics.NewSeries("Fig 6: Number of selected scenarios vs density (EIDs per cell)",
		"density", cols...)
	for _, d := range r.cfg.Densities {
		ys := make([]float64, 0, len(cols))
		for _, n := range r.cfg.DensityEIDCounts {
			ss, edp, err := r.both(ctx, dsKeyDensity(d), densityMutator(d), n)
			if err != nil {
				return nil, err
			}
			ys = append(ys, float64(ss.Selected), float64(edp.Selected))
		}
		s.Add(d, ys...)
	}
	return s, nil
}

// Fig7 regenerates "Average number of selected scenarios per matched EID".
func (r *Runner) Fig7(ctx context.Context) (*metrics.Series, error) {
	s := metrics.NewSeries("Fig 7: Average number of selected scenarios per matched EID",
		"matchedEIDs", "SS", "EDP")
	for _, n := range r.cfg.EIDCounts {
		ss, edp, err := r.both(ctx, "base", nil, n)
		if err != nil {
			return nil, err
		}
		s.Add(float64(n), ss.PerEID, edp.PerEID)
	}
	return s, nil
}

// Fig8 regenerates "Processing time vs Number of matched EIDs": E-stage time
// is negligible, V-stage time dominates, and SS undercuts EDP because it
// processes far fewer scenarios.
func (r *Runner) Fig8(ctx context.Context) (*metrics.Series, error) {
	s := metrics.NewSeries("Fig 8: Processing time (s) vs number of matched EIDs",
		"matchedEIDs", "SS-E", "SS-V", "SS-E+V", "EDP-E", "EDP-V", "EDP-E+V")
	for _, n := range r.cfg.EIDCounts {
		ss, edp, err := r.both(ctx, "base", nil, n)
		if err != nil {
			return nil, err
		}
		s.Add(float64(n),
			ss.ETime.Seconds(), ss.VTime.Seconds(), (ss.ETime + ss.VTime).Seconds(),
			edp.ETime.Seconds(), edp.VTime.Seconds(), (edp.ETime + edp.VTime).Seconds())
	}
	return s, nil
}

// Fig9 regenerates "Processing time vs Density" at the configured matched-EID
// count.
func (r *Runner) Fig9(ctx context.Context) (*metrics.Series, error) {
	s := metrics.NewSeries(
		fmt.Sprintf("Fig 9: Processing time (s) vs density (%d matched EIDs)", r.cfg.DensityTimeEIDs),
		"density", "SS-E", "SS-V", "SS-E+V", "EDP-E", "EDP-V", "EDP-E+V")
	for _, d := range r.cfg.Densities {
		ss, edp, err := r.both(ctx, dsKeyDensity(d), densityMutator(d), r.cfg.DensityTimeEIDs)
		if err != nil {
			return nil, err
		}
		s.Add(d,
			ss.ETime.Seconds(), ss.VTime.Seconds(), (ss.ETime + ss.VTime).Seconds(),
			edp.ETime.Seconds(), edp.VTime.Seconds(), (edp.ETime + edp.VTime).Seconds())
	}
	return s, nil
}

// Table1 regenerates "Accuracy with respect to the number of matched EIDs".
func (r *Runner) Table1(ctx context.Context) (*metrics.Table, error) {
	header := []string{"Matched EIDs"}
	for _, n := range r.cfg.Table1Counts {
		header = append(header, fmt.Sprintf("%d", n))
	}
	t := metrics.NewTable("Table I: Accuracy vs number of matched EIDs", header...)
	ssRow, edpRow := []string{"SS"}, []string{"EDP"}
	for _, n := range r.cfg.Table1Counts {
		ss, edp, err := r.both(ctx, "base", nil, n)
		if err != nil {
			return nil, err
		}
		ssRow = append(ssRow, metrics.Pct(ss.Accuracy))
		edpRow = append(edpRow, metrics.Pct(edp.Accuracy))
	}
	t.AddRow(ssRow...)
	t.AddRow(edpRow...)
	return t, nil
}

// Table2 regenerates "Accuracy with respect to the density".
func (r *Runner) Table2(ctx context.Context) (*metrics.Table, error) {
	header := []string{"Density"}
	for _, d := range r.cfg.Table2Densities {
		header = append(header, metrics.F(d, 0))
	}
	t := metrics.NewTable("Table II: Accuracy vs density", header...)
	ssRow, edpRow := []string{"SS"}, []string{"EDP"}
	for _, d := range r.cfg.Table2Densities {
		ss, edp, err := r.both(ctx, dsKeyDensity(d), densityMutator(d), r.cfg.DensityTimeEIDs)
		if err != nil {
			return nil, err
		}
		ssRow = append(ssRow, metrics.Pct(ss.Accuracy))
		edpRow = append(edpRow, metrics.Pct(edp.Accuracy))
	}
	t.AddRow(ssRow...)
	t.AddRow(edpRow...)
	return t, nil
}

// Fig10 regenerates "Accuracy vs EID missing": one series per algorithm,
// with one column per missing rate over the matched-EID x axis.
func (r *Runner) Fig10(ctx context.Context) (ss, edp *metrics.Series, err error) {
	return r.missingSweep(ctx, "Fig 10", "E miss rate", r.cfg.EIDMissRates, "emiss", eidMissMutator)
}

// Fig11 regenerates "Accuracy vs VID missing": missed detections hurt more
// than missing devices, and matching refining keeps SS above EDP.
func (r *Runner) Fig11(ctx context.Context) (ss, edp *metrics.Series, err error) {
	return r.missingSweep(ctx, "Fig 11", "V miss rate", r.cfg.VIDMissRates, "vmiss", vidMissMutator)
}

func (r *Runner) missingSweep(ctx context.Context, figure, label string, rates []float64, keyPrefix string, mutator func(float64) func(*dataset.Config)) (ssSeries, edpSeries *metrics.Series, err error) {
	cols := make([]string, len(rates))
	for i, rate := range rates {
		cols[i] = fmt.Sprintf("%s=%.0f%%", label, rate*100)
	}
	ssSeries = metrics.NewSeries(figure+" (a): SS accuracy (%)", "matchedEIDs", cols...)
	edpSeries = metrics.NewSeries(figure+" (b): EDP accuracy (%)", "matchedEIDs", cols...)
	for _, n := range r.cfg.MissEIDCounts {
		ssYs := make([]float64, 0, len(rates))
		edpYs := make([]float64, 0, len(rates))
		for _, rate := range rates {
			key := fmt.Sprintf("%s=%.2f", keyPrefix, rate)
			ss, edp, err := r.both(ctx, key, mutator(rate), n)
			if err != nil {
				return nil, nil, err
			}
			ssYs = append(ssYs, ss.Accuracy*100)
			edpYs = append(edpYs, edp.Accuracy*100)
		}
		ssSeries.Add(float64(n), ssYs...)
		edpSeries.Add(float64(n), edpYs...)
	}
	return ssSeries, edpSeries, nil
}

func dsKeyDensity(d float64) string { return fmt.Sprintf("density=%g", d) }

// renderable is a result printable as both aligned text and markdown;
// metrics.Table and metrics.Series satisfy it.
type renderable interface {
	String() string
	Markdown() string
}

// results runs every experiment in paper order and returns the renderable
// outputs.
func (r *Runner) results(ctx context.Context) ([]renderable, error) {
	var out []renderable
	steps := []struct {
		name string
		run  func(context.Context) (renderable, error)
	}{
		{name: "Fig5", run: func(ctx context.Context) (renderable, error) { return r.Fig5(ctx) }},
		{name: "Fig6", run: func(ctx context.Context) (renderable, error) { return r.Fig6(ctx) }},
		{name: "Fig7", run: func(ctx context.Context) (renderable, error) { return r.Fig7(ctx) }},
		{name: "Fig8", run: func(ctx context.Context) (renderable, error) { return r.Fig8(ctx) }},
		{name: "Fig9", run: func(ctx context.Context) (renderable, error) { return r.Fig9(ctx) }},
		{name: "Table1", run: func(ctx context.Context) (renderable, error) { return r.Table1(ctx) }},
		{name: "Table2", run: func(ctx context.Context) (renderable, error) { return r.Table2(ctx) }},
	}
	for _, st := range steps {
		res, err := st.run(ctx)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", st.name, err)
		}
		out = append(out, res)
	}
	for _, fig := range []struct {
		name string
		run  func(context.Context) (*metrics.Series, *metrics.Series, error)
	}{
		{name: "Fig10", run: r.Fig10},
		{name: "Fig11", run: r.Fig11},
	} {
		ss, edp, err := fig.run(ctx)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", fig.name, err)
		}
		out = append(out, ss, edp)
	}
	return out, nil
}

// RunAll executes every experiment and writes the paper-style tables and
// series to w as aligned text, in paper order.
func (r *Runner) RunAll(ctx context.Context, w io.Writer) error {
	results, err := r.results(ctx)
	if err != nil {
		return err
	}
	for _, res := range results {
		if _, err := fmt.Fprintf(w, "%s\n", res); err != nil {
			return err
		}
	}
	return nil
}

// RunAllPlots is RunAll with an ASCII line chart rendered after each series,
// approximating the paper's figures in a terminal.
func (r *Runner) RunAllPlots(ctx context.Context, w io.Writer) error {
	results, err := r.results(ctx)
	if err != nil {
		return err
	}
	for _, res := range results {
		if _, err := fmt.Fprintf(w, "%s\n", res); err != nil {
			return err
		}
		if s, ok := res.(*metrics.Series); ok {
			if _, err := fmt.Fprintf(w, "%s\n", s.Plot()); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunAllMarkdown is RunAll with markdown-table output, for EXPERIMENTS.md.
func (r *Runner) RunAllMarkdown(ctx context.Context, w io.Writer) error {
	results, err := r.results(ctx)
	if err != nil {
		return err
	}
	for _, res := range results {
		if err := metrics.FprintMarkdown(w, res); err != nil {
			return err
		}
	}
	return nil
}

// RunAllCSV is RunAll with CSV output, for external plotting tools.
func (r *Runner) RunAllCSV(ctx context.Context, w io.Writer) error {
	results, err := r.results(ctx)
	if err != nil {
		return err
	}
	for _, res := range results {
		c, ok := res.(metrics.CSVPrinter)
		if !ok {
			return fmt.Errorf("experiments: result %T is not CSV-renderable", res)
		}
		if err := metrics.FprintCSV(w, c); err != nil {
			return err
		}
	}
	return nil
}

package experiments

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"evmatching/internal/core"
)

func TestAblationReuseShowsSavings(t *testing.T) {
	r := quickRunner(t)
	tbl, err := r.AblationReuse(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(r.cfg.Table1Counts) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		processed, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("bad processed cell %q", row[2])
		}
		without, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad without-reuse cell %q", row[3])
		}
		if float64(processed) >= without {
			t.Errorf("no reuse savings: processed %d >= without %v", processed, without)
		}
	}
}

func TestAblationVagueZone(t *testing.T) {
	r := quickRunner(t)
	tbl, err := r.AblationVagueZone(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Both variants must produce sane accuracy strings.
	for _, row := range tbl.Rows {
		if !strings.HasSuffix(row[1], "%") {
			t.Errorf("accuracy cell %q", row[1])
		}
	}
}

func TestAblationRefineRounds(t *testing.T) {
	r := quickRunner(t)
	tbl, err := r.AblationRefineRounds(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestAblationMatchingSizePerPairDecreases(t *testing.T) {
	r := quickRunner(t)
	tbl, err := r.AblationMatchingSize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The paper's claim: larger matching sizes cost less per pair. Compare
	// the single-EID row against the largest.
	first := parseDurCell(t, tbl.Rows[0][2])
	last := parseDurCell(t, tbl.Rows[len(tbl.Rows)-1][2])
	if last >= first {
		t.Errorf("per-pair time did not decrease: %v -> %v", tbl.Rows[0][2], tbl.Rows[len(tbl.Rows)-1][2])
	}
}

func parseDurCell(t *testing.T, s string) float64 {
	t.Helper()
	d, err := time.ParseDuration(s)
	if err != nil {
		t.Fatalf("bad duration cell %q: %v", s, err)
	}
	return d.Seconds()
}

func TestAblationParallelSpeedup(t *testing.T) {
	r := quickRunner(t)
	tbl, err := r.AblationParallelSpeedup(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestAblationLayout(t *testing.T) {
	r := quickRunner(t)
	tbl, err := r.AblationLayout(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || tbl.Rows[0][0] != "grid" || tbl.Rows[1][0] != "hex" {
		t.Fatalf("rows = %v", tbl.Rows)
	}
}

func TestRunAblationsWritesAll(t *testing.T) {
	r := quickRunner(t)
	var buf bytes.Buffer
	if err := r.RunAblations(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"scenario reuse", "vague zone", "refining rounds",
		"matching size", "parallelism", "cell layout",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestRunWithOptionOverride(t *testing.T) {
	r := quickRunner(t)
	ctx := context.Background()
	def, err := r.run(ctx, "base", nil, core.AlgorithmSS, r.cfg.EIDCounts[0])
	if err != nil {
		t.Fatal(err)
	}
	longer, err := r.runWith(ctx, "base", nil, core.AlgorithmSS, r.cfg.EIDCounts[0],
		"minlist=6", func(o *core.Options) { o.MinPerEIDList = 6 })
	if err != nil {
		t.Fatal(err)
	}
	if longer.PerEID <= def.PerEID {
		t.Errorf("override ignored: perEID %v vs default %v", longer.PerEID, def.PerEID)
	}
}

func TestAblationMobility(t *testing.T) {
	r := quickRunner(t)
	tbl, err := r.AblationMobility(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || tbl.Rows[0][0] != "waypoint" || tbl.Rows[1][0] != "hotspot" {
		t.Fatalf("rows = %v", tbl.Rows)
	}
}

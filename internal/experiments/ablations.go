package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/metrics"
)

// Ablations probe the design choices DESIGN.md calls out: scenario reuse,
// vague zones, refining depth, elastic matching size, MapReduce parallelism,
// and the cell layout.

// AblationReuse quantifies the scenario-reuse win behind Figs. 5 and 8: how
// many scenarios SS actually processes (shared extraction cache) against
// what processing every per-EID list independently would cost — which is
// exactly how the EDP baseline behaves.
func (r *Runner) AblationReuse(ctx context.Context) (*metrics.Table, error) {
	t := metrics.NewTable("Ablation: scenario reuse (SS cache vs per-EID processing)",
		"Matched EIDs", "unique selected", "processed w/ reuse", "would process w/o reuse", "savings")
	for _, n := range r.cfg.Table1Counts {
		ss, err := r.run(ctx, "base", nil, core.AlgorithmSS, n)
		if err != nil {
			return nil, err
		}
		withoutReuse := ss.PerEID * float64(ss.N)
		savings := 1 - float64(ss.Processed)/withoutReuse
		t.AddRow(fmt.Sprintf("%d", ss.N),
			fmt.Sprintf("%d", ss.Selected),
			fmt.Sprintf("%d", ss.Processed),
			metrics.F(withoutReuse, 0),
			metrics.Pct(savings))
	}
	return t, nil
}

// AblationVagueZone compares practical-setting accuracy with and without
// vague zones under E-localization drift (paper §IV-C2, Fig. 2).
func (r *Runner) AblationVagueZone(ctx context.Context) (*metrics.Table, error) {
	t := metrics.NewTable("Ablation: vague zone under E-localization drift",
		"Variant", "accuracy", "selected scenarios")
	n := r.cfg.DensityTimeEIDs
	variants := []struct {
		key    string
		label  string
		mutate func(*dataset.Config)
	}{
		{key: "practical", label: "practical + vague zone", mutate: func(c *dataset.Config) {
			*c = c.Practical()
		}},
		{key: "practical-novague", label: "practical, vague zone off", mutate: func(c *dataset.Config) {
			*c = c.Practical()
			c.VagueWidth = 0
		}},
	}
	for _, v := range variants {
		p, err := r.run(ctx, v.key, v.mutate, core.AlgorithmSS, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.label, metrics.Pct(p.Accuracy), fmt.Sprintf("%d", p.Selected))
	}
	return t, nil
}

// AblationRefineRounds sweeps the matching-refining budget under the worst
// configured VID-missing rate (paper Algorithm 2 / Fig. 11).
func (r *Runner) AblationRefineRounds(ctx context.Context) (*metrics.Table, error) {
	t := metrics.NewTable("Ablation: matching refining rounds under VID missing",
		"Max refine rounds", "accuracy")
	rate := r.cfg.VIDMissRates[len(r.cfg.VIDMissRates)-1]
	n := r.cfg.MissEIDCounts[len(r.cfg.MissEIDCounts)-1]
	key := fmt.Sprintf("vmiss=%.2f", rate)
	for _, rounds := range []int{1, 2, 3} {
		rounds := rounds
		p, err := r.runWith(ctx, key, vidMissMutator(rate), core.AlgorithmSS, n,
			fmt.Sprintf("refine=%d", rounds),
			func(o *core.Options) { o.MaxRefineRounds = rounds })
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", rounds), metrics.Pct(p.Accuracy))
	}
	return t, nil
}

// AblationMatchingSize shows elastic matching: the larger the matching size,
// the less time per EID-VID pair (paper §I).
func (r *Runner) AblationMatchingSize(ctx context.Context) (*metrics.Table, error) {
	t := metrics.NewTable("Ablation: elastic matching size (time per EID-VID pair)",
		"Matched EIDs", "total time", "time per pair")
	sizes := append([]int{1, 10}, r.cfg.Table1Counts...)
	for _, n := range sizes {
		p, err := r.run(ctx, "base", nil, core.AlgorithmSS, n)
		if err != nil {
			return nil, err
		}
		total := p.ETime + p.VTime
		pairs := p.N
		if pairs < 1 {
			pairs = 1
		}
		perPair := (total / time.Duration(pairs)).Round(time.Microsecond)
		t.AddRow(fmt.Sprintf("%d", p.N), metrics.Dur(total), perPair.String())
	}
	return t, nil
}

// AblationParallelSpeedup sweeps MapReduce worker counts over the parallel
// mode (the in-process stand-in for adding cluster nodes).
func (r *Runner) AblationParallelSpeedup(ctx context.Context) (*metrics.Table, error) {
	t := metrics.NewTable("Ablation: MapReduce parallelism (SS, parallel mode)",
		"Workers", "E time", "V time", "E+V")
	n := r.cfg.Table1Counts[len(r.cfg.Table1Counts)-1]
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		p, err := r.runWith(ctx, "base", nil, core.AlgorithmSS, n,
			fmt.Sprintf("workers=%d", workers),
			func(o *core.Options) {
				o.Mode = core.ModeParallel
				o.Workers = workers
			})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", workers), metrics.Dur(p.ETime), metrics.Dur(p.VTime),
			metrics.Dur(p.ETime+p.VTime))
	}
	return t, nil
}

// AblationLayout compares the grid and hexagonal cell discretizations shown
// in the paper's Fig. 1.
func (r *Runner) AblationLayout(ctx context.Context) (*metrics.Table, error) {
	t := metrics.NewTable("Ablation: cell layout (grid vs hexagonal)",
		"Layout", "accuracy", "selected scenarios", "per-EID")
	n := r.cfg.DensityTimeEIDs
	variants := []struct {
		key    string
		kind   dataset.LayoutKind
		mutate func(*dataset.Config)
	}{
		{key: "base", kind: dataset.LayoutGrid, mutate: nil},
		{key: "hex", kind: dataset.LayoutHex, mutate: func(c *dataset.Config) { c.Layout = dataset.LayoutHex }},
	}
	for _, v := range variants {
		p, err := r.run(ctx, v.key, v.mutate, core.AlgorithmSS, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.kind.String(), metrics.Pct(p.Accuracy),
			fmt.Sprintf("%d", p.Selected), metrics.F(p.PerEID, 2))
	}
	return t, nil
}

// ablationResults runs every ablation in order.
func (r *Runner) ablationResults(ctx context.Context) ([]*metrics.Table, error) {
	var out []*metrics.Table
	for _, ab := range []struct {
		name string
		run  func(context.Context) (*metrics.Table, error)
	}{
		{name: "reuse", run: r.AblationReuse},
		{name: "vague-zone", run: r.AblationVagueZone},
		{name: "refine-rounds", run: r.AblationRefineRounds},
		{name: "matching-size", run: r.AblationMatchingSize},
		{name: "parallel-speedup", run: r.AblationParallelSpeedup},
		{name: "layout", run: r.AblationLayout},
		{name: "mobility", run: r.AblationMobility},
	} {
		tbl, err := ab.run(ctx)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", ab.name, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// AblationMobility compares matching under the paper's uniform random
// waypoint against hotspot-crowded movement, where shared attraction points
// keep many people co-located and spatiotemporal evidence thins out.
func (r *Runner) AblationMobility(ctx context.Context) (*metrics.Table, error) {
	t := metrics.NewTable("Ablation: mobility model (waypoint vs hotspot crowding)",
		"Mobility", "accuracy", "selected scenarios", "per-EID")
	n := r.cfg.DensityTimeEIDs
	variants := []struct {
		key    string
		label  string
		mutate func(*dataset.Config)
	}{
		{key: "base", label: "waypoint", mutate: nil},
		{key: "hotspot", label: "hotspot", mutate: func(c *dataset.Config) {
			c.Mobility = dataset.MobilityHotspot
			c.HotspotCount = 4
			c.HotspotAttraction = 0.7
			c.HotspotSpread = 40
		}},
	}
	for _, v := range variants {
		p, err := r.run(ctx, v.key, v.mutate, core.AlgorithmSS, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.label, metrics.Pct(p.Accuracy),
			fmt.Sprintf("%d", p.Selected), metrics.F(p.PerEID, 2))
	}
	return t, nil
}

// RunAblations executes every ablation and writes the tables to w as
// aligned text.
func (r *Runner) RunAblations(ctx context.Context, w io.Writer) error {
	tables, err := r.ablationResults(ctx)
	if err != nil {
		return err
	}
	for _, tbl := range tables {
		if _, err := fmt.Fprintf(w, "%s\n", tbl); err != nil {
			return err
		}
	}
	return nil
}

// RunAblationsMarkdown is RunAblations with markdown output.
func (r *Runner) RunAblationsMarkdown(ctx context.Context, w io.Writer) error {
	tables, err := r.ablationResults(ctx)
	if err != nil {
		return err
	}
	for _, tbl := range tables {
		if err := metrics.FprintMarkdown(w, tbl); err != nil {
			return err
		}
	}
	return nil
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): scenario-selection counts (Figs. 5–7), processing times
// (Figs. 8–9), matching accuracy (Tables I–II), and robustness to missing
// EIDs and VIDs (Figs. 10–11). Sweeps that share runs are memoized, so
// Fig. 5, Fig. 7, Fig. 8 and Table I all come from one EID sweep, and
// Fig. 6, Fig. 9 and Table II from one density sweep.
package experiments

import (
	"fmt"

	"evmatching/internal/core"
	"evmatching/internal/dataset"
)

// Config selects the sweep points for all experiments.
type Config struct {
	// Base is the dataset configuration shared by all experiments; density
	// and missing rates are overridden per sweep point.
	Base dataset.Config
	// EIDCounts is the matched-EID sweep of Figs. 5, 7, 8.
	EIDCounts []int
	// Table1Counts is the matched-EID subset reported in Table I.
	Table1Counts []int
	// Densities is the density sweep of Figs. 6, 9 (persons per cell).
	Densities []float64
	// Table2Densities is the density subset reported in Table II.
	Table2Densities []float64
	// DensityEIDCounts are the matched-EID curves drawn in Fig. 6
	// (paper: 100 and 600).
	DensityEIDCounts []int
	// DensityTimeEIDs is the matched-EID count used for Fig. 9 times and
	// Table II accuracy (paper uses one fixed count per density).
	DensityTimeEIDs int
	// EIDMissRates is the missing-EID sweep of Fig. 10.
	EIDMissRates []float64
	// VIDMissRates is the missing-VID sweep of Fig. 11.
	VIDMissRates []float64
	// MissEIDCounts is the matched-EID x axis of Figs. 10 and 11.
	MissEIDCounts []int
	// Matcher is the option template; Algorithm is overridden per run.
	Matcher core.Options
	// Runs averages each measurement over this many matcher seeds (the
	// paper reports averages "over multiple runs for each parameter
	// setting"); 0 means 1.
	Runs int
}

// Paper returns the full-scale configuration mirroring §VI-A: 1000 human
// objects on a 1000 m × 1000 m region.
func Paper() Config {
	return Config{
		Base:             dataset.DefaultConfig(),
		EIDCounts:        []int{100, 200, 300, 400, 500, 600, 700, 800, 900},
		Table1Counts:     []int{200, 400, 600, 800},
		Densities:        []float64{20, 30, 60, 100, 130, 160, 180},
		Table2Densities:  []float64{30, 60, 100, 160},
		DensityEIDCounts: []int{100, 600},
		DensityTimeEIDs:  600,
		EIDMissRates:     []float64{0.01, 0.10, 0.30, 0.50},
		VIDMissRates:     []float64{0.02, 0.05, 0.08, 0.10},
		MissEIDCounts:    []int{200, 400, 600, 800},
		Matcher:          core.Options{MaxRefineRounds: 2},
	}
}

// Quick returns a shrunken configuration for tests and fast benchmark runs:
// the same sweeps and shapes on a 200-person world.
func Quick() Config {
	base := dataset.DefaultConfig()
	base.NumPersons = 200
	base.Density = 15
	base.NumWindows = 32
	return Config{
		Base:             base,
		EIDCounts:        []int{40, 80, 120, 160},
		Table1Counts:     []int{40, 120},
		Densities:        []float64{10, 20, 40},
		Table2Densities:  []float64{10, 40},
		DensityEIDCounts: []int{40, 120},
		DensityTimeEIDs:  120,
		EIDMissRates:     []float64{0.10, 0.50},
		VIDMissRates:     []float64{0.05, 0.10},
		MissEIDCounts:    []int{40, 120},
		Matcher:          core.Options{MaxRefineRounds: 2},
	}
}

// validate reports whether the configuration is usable.
func (c Config) validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	for _, lst := range [][]int{c.EIDCounts, c.Table1Counts, c.DensityEIDCounts, c.MissEIDCounts} {
		if len(lst) == 0 {
			return fmt.Errorf("experiments: empty sweep list")
		}
		for _, n := range lst {
			if n < 1 {
				return fmt.Errorf("experiments: invalid EID count %d", n)
			}
		}
	}
	if len(c.Densities) == 0 || len(c.EIDMissRates) == 0 || len(c.VIDMissRates) == 0 {
		return fmt.Errorf("experiments: empty sweep list")
	}
	if c.DensityTimeEIDs < 1 {
		return fmt.Errorf("experiments: DensityTimeEIDs=%d", c.DensityTimeEIDs)
	}
	if c.Runs < 0 {
		return fmt.Errorf("experiments: Runs=%d", c.Runs)
	}
	return nil
}

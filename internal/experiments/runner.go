package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/ids"
)

// Point is one measurement: one algorithm matched n EIDs on one dataset.
type Point struct {
	Algorithm core.Algorithm
	N         int
	// Selected is the number of distinct scenarios selected (reuse counted
	// once).
	Selected int
	// PerEID is the average selected-list length.
	PerEID float64
	// ETime and VTime are the stage processing times.
	ETime time.Duration
	VTime time.Duration
	// Accuracy is the fraction of correctly matched EIDs.
	Accuracy float64
	// Processed is the number of scenarios actually run through feature
	// extraction (with SS's cache, at most Selected; EDP re-processes).
	Processed int
}

// Runner executes experiments with dataset and measurement memoization, so
// figures that share a sweep reuse its runs. A Runner is not safe for
// concurrent use.
type Runner struct {
	cfg  Config
	log  io.Writer
	data map[string]*dataset.Dataset
	runs map[string]Point
}

// NewRunner creates a runner; progress lines go to log (nil discards them).
func NewRunner(cfg Config, log io.Writer) (*Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if log == nil {
		log = io.Discard
	}
	return &Runner{
		cfg:  cfg,
		log:  log,
		data: make(map[string]*dataset.Dataset),
		runs: make(map[string]Point),
	}, nil
}

// Config returns the runner's configuration.
func (r *Runner) Config() Config { return r.cfg }

// datasetFor generates (or fetches) the dataset for a config variant.
func (r *Runner) datasetFor(key string, mutate func(*dataset.Config)) (*dataset.Dataset, error) {
	if ds, ok := r.data[key]; ok {
		return ds, nil
	}
	cfg := r.cfg.Base
	if mutate != nil {
		mutate(&cfg)
	}
	start := time.Now()
	ds, err := dataset.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: dataset %q: %w", key, err)
	}
	fmt.Fprintf(r.log, "# dataset %s: %d scenarios, %d cells (%v)\n",
		key, ds.Store.Len(), ds.Layout.NumCells(), time.Since(start).Round(time.Millisecond))
	r.data[key] = ds
	return ds, nil
}

// run executes one (dataset, algorithm, n) measurement, memoized.
func (r *Runner) run(ctx context.Context, dsKey string, mutate func(*dataset.Config), alg core.Algorithm, n int) (Point, error) {
	return r.runWith(ctx, dsKey, mutate, alg, n, "", nil)
}

// runWith is run with an additional matcher-option override, memoized under
// optsKey (empty for the default options). Measurements average over
// Config.Runs matcher seeds.
func (r *Runner) runWith(ctx context.Context, dsKey string, mutate func(*dataset.Config), alg core.Algorithm, n int, optsKey string, optsMut func(*core.Options)) (Point, error) {
	memoKey := fmt.Sprintf("%s|%v|%d|%s", dsKey, alg, n, optsKey)
	if p, ok := r.runs[memoKey]; ok {
		return p, nil
	}
	ds, err := r.datasetFor(dsKey, mutate)
	if err != nil {
		return Point{}, err
	}
	runs := r.cfg.Runs
	if runs < 1 {
		runs = 1
	}
	// Target sampling is deterministic per (dataset, n) and shared by both
	// algorithms so they match the exact same EIDs.
	rng := rand.New(rand.NewSource(int64(n)*31 + 7))
	targets := ds.SampleEIDs(n, rng)

	var p Point
	for run := 0; run < runs; run++ {
		opts := r.cfg.Matcher
		opts.Algorithm = alg
		if optsMut != nil {
			optsMut(&opts)
		}
		if opts.Seed == 0 {
			opts.Seed = 1
		}
		opts.Seed += int64(run) * 7_727
		m, err := core.New(ds, opts)
		if err != nil {
			return Point{}, err
		}
		rep, err := m.Match(ctx, targets)
		if err != nil {
			return Point{}, fmt.Errorf("experiments: %s: %w", memoKey, err)
		}
		p.Algorithm = alg
		p.N = len(targets)
		p.Selected += rep.SelectedScenarios
		p.PerEID += rep.AvgScenariosPerEID()
		p.ETime += rep.ETime
		p.VTime += rep.VTime
		p.Accuracy += rep.Accuracy(func(e ids.EID) ids.VID { return ds.TruthVID(e) })
		p.Processed += rep.VStats.ScenariosProcessed
	}
	p.Selected /= runs
	p.PerEID /= float64(runs)
	p.ETime /= time.Duration(runs)
	p.VTime /= time.Duration(runs)
	p.Accuracy /= float64(runs)
	p.Processed /= runs
	fmt.Fprintf(r.log, "# run %-28s sel=%-5d perEID=%-5.2f E=%-10v V=%-10v acc=%.2f%%\n",
		memoKey, p.Selected, p.PerEID, p.ETime.Round(time.Millisecond),
		p.VTime.Round(time.Millisecond), p.Accuracy*100)
	r.runs[memoKey] = p
	return p, nil
}

// both runs SS and EDP on the same sweep point.
func (r *Runner) both(ctx context.Context, dsKey string, mutate func(*dataset.Config), n int) (ss, edp Point, err error) {
	ss, err = r.run(ctx, dsKey, mutate, core.AlgorithmSS, n)
	if err != nil {
		return Point{}, Point{}, err
	}
	edp, err = r.run(ctx, dsKey, mutate, core.AlgorithmEDP, n)
	if err != nil {
		return Point{}, Point{}, err
	}
	return ss, edp, nil
}

// Dataset config mutators for the sweep families.

func densityMutator(d float64) func(*dataset.Config) {
	return func(c *dataset.Config) { c.Density = d }
}

func eidMissMutator(rate float64) func(*dataset.Config) {
	return func(c *dataset.Config) { c.EIDMissingRate = rate }
}

func vidMissMutator(rate float64) func(*dataset.Config) {
	return func(c *dataset.Config) { c.VIDMissingRate = rate }
}

package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"evmatching/internal/core"
	"evmatching/internal/metrics"
)

// quickRunner builds a Runner at quick scale, shared across subtests via the
// memoized sweeps.
func quickRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(Quick(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRunnerValidation(t *testing.T) {
	cfg := Quick()
	cfg.EIDCounts = nil
	if _, err := NewRunner(cfg, nil); err == nil {
		t.Error("want error for empty sweep")
	}
	cfg = Quick()
	cfg.Base.NumPersons = 0
	if _, err := NewRunner(cfg, nil); err == nil {
		t.Error("want error for bad base config")
	}
	cfg = Quick()
	cfg.DensityTimeEIDs = 0
	if _, err := NewRunner(cfg, nil); err == nil {
		t.Error("want error for zero DensityTimeEIDs")
	}
}

func TestPaperConfigValid(t *testing.T) {
	if err := Paper().validate(); err != nil {
		t.Errorf("Paper config invalid: %v", err)
	}
}

// TestEIDSweepShapes pins the qualitative shapes of Figs. 5, 7, 8 and
// Table I on the quick-scale world.
func TestEIDSweepShapes(t *testing.T) {
	r := quickRunner(t)
	ctx := context.Background()

	fig5, err := r.Fig5(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ssSel, _ := fig5.Column("SS")
	edpSel, _ := fig5.Column("EDP")
	if len(ssSel) != len(r.cfg.EIDCounts) {
		t.Fatalf("Fig5 points = %d", len(ssSel))
	}
	for i := range ssSel {
		// Headline shape: SS selects fewer unique scenarios than EDP.
		if ssSel[i] >= edpSel[i] {
			t.Errorf("Fig5 point %d: SS=%v >= EDP=%v", i, ssSel[i], edpSel[i])
		}
	}
	// Both curves grow with the number of matched EIDs.
	if ssSel[len(ssSel)-1] <= ssSel[0] {
		t.Errorf("Fig5 SS not increasing: %v", ssSel)
	}
	if edpSel[len(edpSel)-1] <= edpSel[0] {
		t.Errorf("Fig5 EDP not increasing: %v", edpSel)
	}

	fig7, err := r.Fig7(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ssPer, _ := fig7.Column("SS")
	for _, v := range ssPer {
		if v < 1 || v > 12 {
			t.Errorf("Fig7 SS per-EID out of plausible range: %v", v)
		}
	}

	fig8, err := r.Fig8(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ssE, _ := fig8.Column("SS-E")
	ssV, _ := fig8.Column("SS-V")
	edpV, _ := fig8.Column("EDP-V")
	for i := range ssE {
		// E stage is negligible next to V stage (paper Fig. 8).
		if ssE[i] > ssV[i] {
			t.Errorf("Fig8 point %d: E time %v exceeds V time %v", i, ssE[i], ssV[i])
		}
	}
	// At the largest sweep point SS's V stage undercuts EDP's.
	last := len(ssV) - 1
	if ssV[last] >= edpV[last] {
		t.Errorf("Fig8 largest point: SS-V=%v >= EDP-V=%v", ssV[last], edpV[last])
	}

	table1, err := r.Table1(ctx)
	if err != nil {
		t.Fatal(err)
	}
	out := table1.String()
	if !strings.Contains(out, "SS") || !strings.Contains(out, "EDP") || !strings.Contains(out, "%") {
		t.Errorf("Table1 output:\n%s", out)
	}
}

func TestDensitySweepShapes(t *testing.T) {
	r := quickRunner(t)
	ctx := context.Background()
	fig6, err := r.Fig6(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig6.Points) != len(r.cfg.Densities) {
		t.Fatalf("Fig6 points = %d", len(fig6.Points))
	}
	for _, n := range r.cfg.DensityEIDCounts {
		ss, ok1 := fig6.Column("SS-" + itoa(n))
		edp, ok2 := fig6.Column("EDP-" + itoa(n))
		if !ok1 || !ok2 {
			t.Fatalf("Fig6 missing columns for n=%d", n)
		}
		for i := range ss {
			if ss[i] >= edp[i] {
				t.Errorf("Fig6 n=%d density %v: SS=%v >= EDP=%v",
					n, fig6.Points[i].X, ss[i], edp[i])
			}
		}
		// SS's unique-scenario count shrinks as density grows (reuse).
		if ss[len(ss)-1] >= ss[0] {
			t.Errorf("Fig6 n=%d: SS count did not decrease with density: %v", n, ss)
		}
	}

	fig9, err := r.Fig9(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig9.Points) != len(r.cfg.Densities) {
		t.Fatalf("Fig9 points = %d", len(fig9.Points))
	}

	table2, err := r.Table2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table2.String(), "%") {
		t.Errorf("Table2 output:\n%s", table2)
	}
}

func TestMissingSweeps(t *testing.T) {
	r := quickRunner(t)
	ctx := context.Background()
	ss10, edp10, err := r.Fig10(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertAccuracySeries(t, "Fig10 SS", ss10)
	assertAccuracySeries(t, "Fig10 EDP", edp10)

	ss11, edp11, err := r.Fig11(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertAccuracySeries(t, "Fig11 SS", ss11)
	assertAccuracySeries(t, "Fig11 EDP", edp11)
}

func assertAccuracySeries(t *testing.T, name string, s *metrics.Series) {
	t.Helper()
	if len(s.Points) == 0 {
		t.Fatalf("%s: no points", name)
	}
	for _, p := range s.Points {
		for i, y := range p.Y {
			if y < 0 || y > 100 {
				t.Errorf("%s: accuracy %v out of range at x=%v col=%d", name, y, p.X, i)
			}
		}
	}
}

func TestRunAllWritesEverySection(t *testing.T) {
	r := quickRunner(t)
	var buf bytes.Buffer
	if err := r.RunAll(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Fig 5", "Fig 6", "Fig 7", "Fig 8", "Fig 9",
		"Table I", "Table II", "Fig 10 (a)", "Fig 10 (b)", "Fig 11 (a)", "Fig 11 (b)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

func TestRunMemoization(t *testing.T) {
	r := quickRunner(t)
	ctx := context.Background()
	if _, err := r.Fig5(ctx); err != nil {
		t.Fatal(err)
	}
	runsAfterFig5 := len(r.runs)
	if _, err := r.Fig7(ctx); err != nil {
		t.Fatal(err)
	}
	if len(r.runs) != runsAfterFig5 {
		t.Errorf("Fig7 re-ran the EID sweep: %d -> %d runs", runsAfterFig5, len(r.runs))
	}
	if _, err := r.Fig8(ctx); err != nil {
		t.Fatal(err)
	}
	if len(r.runs) != runsAfterFig5 {
		t.Errorf("Fig8 re-ran the EID sweep")
	}
}

func coreAlgSS() core.Algorithm { return core.AlgorithmSS }

func itoa(n int) string {
	return metrics.F(float64(n), 0)
}

func TestMultiRunAveraging(t *testing.T) {
	cfg := Quick()
	cfg.Runs = 2
	r, err := NewRunner(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p, err := r.run(ctx, "base", nil, coreAlgSS(), cfg.EIDCounts[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.Accuracy < 0 || p.Accuracy > 1 {
		t.Errorf("averaged accuracy = %v", p.Accuracy)
	}
	if p.Selected == 0 || p.PerEID <= 0 {
		t.Errorf("averaged point = %+v", p)
	}
	cfg.Runs = -1
	if _, err := NewRunner(cfg, nil); err == nil {
		t.Error("want error for negative Runs")
	}
}

// Package blocking implements the spatiotemporal blocking index that moves
// the E stage's asymptote from n×scenarios toward co-occurrence density
// (SLIM, arXiv:2004.05951; see DESIGN.md §13). Every scenario lives in one
// coarse *block* — its (cell, window) rounded down by configurable strides
// and hashed into a fixed slot universe — and every EID carries the signature
// bitmap of the blocks it was ever observed in. A scenario can only produce
// an effective split while the partition still holds ≥2 undistinguished EIDs
// in its leaf ("live" targets), and only if a live target appears in the
// scenario inclusively; any such target shares the scenario's block, so a
// scenario whose slot is missing from the union signature of the live targets
// is provably a no-op and is skipped without being probed. Hash collisions
// and coarse strides only ever enlarge signatures, so pruning stays sound
// (false candidates are re-checked by the fine path; false prunes cannot
// happen), and the pruned split is bit-identical to the exhaustive one.
package blocking

import (
	"sort"

	"evmatching/internal/bitset"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// Geometry fixes the coarse block space. CellStride and WindowStride group
// adjacent cells/windows into one block (coarser blocks → shorter per-EID
// slot lists, more false candidates); Slots is the hashed slot universe every
// block maps into, bounding signature memory at any world scale.
type Geometry struct {
	CellStride   int
	WindowStride int
	Slots        int // rounded up to a power of two, min 64
}

// DefaultGeometry is the production geometry: exact cells, windows grouped
// by 4, 4096 hash slots (512 B per signature bitmap).
func DefaultGeometry() Geometry {
	return Geometry{CellStride: 1, WindowStride: 4, Slots: 4096}
}

// withDefaults clamps degenerate values and rounds Slots to a power of two
// so slot masking is a single AND.
func (g Geometry) withDefaults() Geometry {
	if g.CellStride < 1 {
		g.CellStride = 1
	}
	if g.WindowStride < 1 {
		g.WindowStride = 1
	}
	n := 64
	for n < g.Slots {
		n <<= 1
	}
	g.Slots = n
	return g
}

// slot maps a (cell, window) block to its hash slot. The mix is a fixed
// Fibonacci-style multiply-xor — deterministic across runs and processes, a
// requirement the checkpoint rebuild rule leans on. Division truncates
// toward zero, which is fine: bucketing only needs to be deterministic, and
// hostile stores may carry negative cells or windows.
func (g Geometry) slot(cell geo.CellID, window int) uint32 {
	cg := uint64(int64(cell) / int64(g.CellStride))
	wg := uint64(int64(window) / int64(g.WindowStride))
	h := cg*0x9E3779B97F4A7C15 + wg*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 29
	return uint32(h & uint64(g.Slots-1))
}

// run is a maximal group of consecutive same-slot scenario IDs within one
// window's cell-sorted order. AtWindow sorts by cell, so same-block scenarios
// are adjacent and a window decomposes into few runs.
type run struct {
	slot uint32
	ids  []scenario.ID
}

// windowIndex is one window's candidate structure: its runs in AtWindow
// order, the union slot signature, and the scenario total (for pruned
// accounting when the whole window is skipped).
type windowIndex struct {
	runs  []run
	sig   bitset.Set
	total int
}

// eidEntry is one EID's blocking state: its coarse signature as a sorted
// slot list (built from every appearance, inclusive or vague — a superset
// signature is still sound) and its inclusive postings, grouped by window in
// AtWindow order, which let the padding stage jump straight to the scenarios
// containing the EID instead of scanning whole windows.
type eidEntry struct {
	slots    []uint32
	postWins []int         // ascending windows with ≥1 inclusive appearance
	postOff  []int         // postings offsets, len(postWins)+1 after Build
	postings []scenario.ID // inclusive scenario IDs, window-major
}

// Index is the immutable blocking index over one scenario store. Build once,
// share freely: all methods are safe for concurrent readers.
type Index struct {
	geom Geometry
	wins map[int]*windowIndex
	eids map[ids.EID]*eidEntry
}

// Build constructs the index in one pass over the store: windows ascending,
// scenarios in AtWindow (cell-sorted) order, EIDs within a scenario sorted —
// every slice below is therefore in a canonical order independent of map
// iteration, and two builds over equal stores are identical.
func Build(store *scenario.Store, geom Geometry) *Index {
	geom = geom.withDefaults()
	ix := &Index{geom: geom, wins: make(map[int]*windowIndex), eids: make(map[ids.EID]*eidEntry)}
	if store == nil {
		return ix
	}
	for _, w := range store.Windows() {
		wi := &windowIndex{sig: bitset.New(geom.Slots)}
		for _, id := range store.AtWindow(w) {
			esc := store.E(id)
			if esc == nil {
				continue
			}
			s := geom.slot(esc.Cell, w)
			wi.total++
			if n := len(wi.runs); n > 0 && wi.runs[n-1].slot == s {
				wi.runs[n-1].ids = append(wi.runs[n-1].ids, id)
			} else {
				wi.runs = append(wi.runs, run{slot: s, ids: []scenario.ID{id}})
			}
			wi.sig.Add(int(s))
			for _, e := range esc.SortedEIDs() {
				ent := ix.eids[e]
				if ent == nil {
					ent = &eidEntry{}
					ix.eids[e] = ent
				}
				ent.slots = append(ent.slots, s)
				if esc.EIDs[e] == scenario.AttrInclusive {
					if n := len(ent.postWins); n == 0 || ent.postWins[n-1] != w {
						ent.postWins = append(ent.postWins, w)
						ent.postOff = append(ent.postOff, len(ent.postings))
					}
					ent.postings = append(ent.postings, id)
				}
			}
		}
		ix.wins[w] = wi
	}
	// Finalize per-EID state: sort+dedup the slot signatures and close the
	// postings offset tables with their end sentinels.
	//evlint:ignore maprange finalizes each entry independently; no cross-entry state, so iteration order cannot matter
	for _, ent := range ix.eids {
		sort.Slice(ent.slots, func(i, j int) bool { return ent.slots[i] < ent.slots[j] })
		kept := ent.slots[:0]
		for i, s := range ent.slots {
			if i == 0 || s != kept[len(kept)-1] {
				kept = append(kept, s)
			}
		}
		ent.slots = kept
		ent.postOff = append(ent.postOff, len(ent.postings))
	}
	return ix
}

// Geometry returns the (defaulted) geometry the index was built with.
func (ix *Index) Geometry() Geometry { return ix.geom }

// NumEIDs returns how many distinct EIDs the index has signatures for.
func (ix *Index) NumEIDs() int { return len(ix.eids) }

// WindowTotal returns the number of scenarios indexed in window w.
func (ix *Index) WindowTotal(w int) int {
	wi := ix.wins[w]
	if wi == nil {
		return 0
	}
	return wi.total
}

// Candidates appends to buf the IDs of the scenarios in window w whose block
// slot intersects sig, preserving AtWindow order, and returns the grown
// buffer plus the window's total scenario count (total − len(appended) is the
// pruned count). An empty intersection with the window's union signature
// skips the run scan entirely.
func (ix *Index) Candidates(w int, sig bitset.Set, buf []scenario.ID) ([]scenario.ID, int) {
	wi := ix.wins[w]
	if wi == nil {
		return buf, 0
	}
	if !bitset.Intersects(wi.sig, sig) {
		return buf, wi.total
	}
	for _, r := range wi.runs {
		if sig.Has(int(r.slot)) {
			buf = append(buf, r.ids...)
		}
	}
	return buf, wi.total
}

// InclusiveAt returns the scenarios of window w containing e inclusively, in
// AtWindow order. The shared slice must not be modified. EIDs or windows the
// index has never seen return nil.
func (ix *Index) InclusiveAt(e ids.EID, w int) []scenario.ID {
	ent := ix.eids[e]
	if ent == nil {
		return nil
	}
	i := sort.SearchInts(ent.postWins, w)
	if i >= len(ent.postWins) || ent.postWins[i] != w {
		return nil
	}
	return ent.postings[ent.postOff[i]:ent.postOff[i+1]]
}

// Live tracks the union coarse signature of the still-undistinguished target
// EIDs during one split run. Wire Resolve to partition.OnResolve: as targets
// resolve, their slots are reference-counted out and the signature shrinks,
// so pruning gets stronger as the split converges. A stale (too-large)
// signature is always sound; a resolved EID never becomes live again because
// split-tree leaves only ever shrink. Not safe for concurrent use — one Live
// per split run, like the partition it mirrors.
type Live struct {
	ix     *Index
	sig    bitset.Set
	counts []int32
	live   map[ids.EID]bool
}

// NewLive builds the live tracker for a fresh partition over targets. A lone
// target's partition is born resolved, so its signature starts (and stays)
// empty and every scenario prunes — matching the exhaustive path, which
// breaks out before applying any.
func (ix *Index) NewLive(targets []ids.EID) *Live {
	l := &Live{
		ix:     ix,
		sig:    bitset.New(ix.geom.Slots),
		counts: make([]int32, ix.geom.Slots),
		live:   make(map[ids.EID]bool, len(targets)),
	}
	if len(targets) < 2 {
		return l
	}
	for _, e := range targets {
		if l.live[e] {
			continue
		}
		l.live[e] = true
		ent := ix.eids[e]
		if ent == nil {
			continue // target never observed: contributes no blocks
		}
		for _, s := range ent.slots {
			if l.counts[s] == 0 {
				l.sig.Add(int(s))
			}
			l.counts[s]++
		}
	}
	return l
}

// Resolve removes e from the live set, dropping slot bits whose reference
// count reaches zero. Safe to call repeatedly and for unknown EIDs.
func (l *Live) Resolve(e ids.EID) {
	if !l.live[e] {
		return
	}
	delete(l.live, e)
	ent := l.ix.eids[e]
	if ent == nil {
		return
	}
	for _, s := range ent.slots {
		if l.counts[s]--; l.counts[s] == 0 {
			l.sig.Remove(int(s))
		}
	}
}

// Sig returns the live union signature for Candidates calls. The set is
// mutated in place by Resolve; callers must not retain it across splits.
func (l *Live) Sig() bitset.Set { return l.sig }

// NumLive returns how many targets are still undistinguished.
func (l *Live) NumLive() int { return len(l.live) }

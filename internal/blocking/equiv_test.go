// The equivalence property suite: the blocked split path must be
// bit-identical to the exhaustive one. It lives in blocking_test (external
// test package) because it drives internal/core, which itself imports
// internal/blocking.
package blocking_test

import (
	"context"
	"math/rand"
	"testing"

	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/ids"
)

// equivWorlds is how many randomized worlds the property sweeps. The issue
// floor is 50; -short trims the tail for the race tier's time budget.
const equivWorlds = 50

// TestBlockedSplitEquivalence is the soundness oracle for DESIGN.md §13:
// across ≥50 seeded random worlds — sweeping density, window count, target
// sizes, serial and parallel modes, shuffled and in-order scans — the
// blocked matcher must record the identical effective-scenario sequence and
// produce the identical report fingerprint as the exhaustive matcher. Any
// false prune (a skipped scenario that would have split) diverges the
// SplitScenarios sequence and fails here.
func TestBlockedSplitEquivalence(t *testing.T) {
	n := equivWorlds
	if testing.Short() {
		n = 12
	}
	rng := rand.New(rand.NewSource(99))
	prunedTotal := int64(0)
	for trial := 0; trial < n; trial++ {
		cfg := dataset.DefaultConfig()
		cfg.Seed = int64(1000 + trial)
		cfg.NumPersons = 30 + rng.Intn(60)
		cfg.Density = 4 + rng.Float64()*16
		cfg.NumWindows = 4 + rng.Intn(8)
		cfg.FeatureDim = 8
		cfg.VIDMissingRate = 0.3 * rng.Float64()
		ds, err := dataset.Generate(cfg)
		if err != nil {
			t.Fatalf("trial %d: Generate: %v", trial, err)
		}
		all := ds.AllEIDs()
		if len(all) < 2 {
			continue
		}
		targets := make([]ids.EID, 0, 2+rng.Intn(6))
		for len(targets) < cap(targets) {
			targets = append(targets, all[rng.Intn(len(all))])
		}
		opts := core.Options{
			Mode:       core.ModeSerial,
			ScanOrder:  core.ScanShuffled,
			Seed:       int64(1 + trial),
			WorkFactor: 1,
		}
		if trial%2 == 1 {
			opts.Mode = core.ModeParallel
		}
		if trial%3 == 1 {
			opts.ScanOrder = core.ScanInOrder
		}

		blocked, err := matchWith(ds, opts, targets, false)
		if err != nil {
			t.Fatalf("trial %d: blocked match: %v", trial, err)
		}
		exhaustive, err := matchWith(ds, opts, targets, true)
		if err != nil {
			t.Fatalf("trial %d: exhaustive match: %v", trial, err)
		}

		if got, want := blocked.Fingerprint(), exhaustive.Fingerprint(); got != want {
			t.Errorf("trial %d (mode %v, scan %v, %d targets): fingerprint %s != exhaustive %s",
				trial, opts.Mode, opts.ScanOrder, len(targets), got, want)
		}
		if len(blocked.SplitScenarios) != len(exhaustive.SplitScenarios) {
			t.Fatalf("trial %d: %d effective scenarios blocked vs %d exhaustive",
				trial, len(blocked.SplitScenarios), len(exhaustive.SplitScenarios))
		}
		for i := range blocked.SplitScenarios {
			if blocked.SplitScenarios[i] != exhaustive.SplitScenarios[i] {
				t.Fatalf("trial %d: effective scenario %d is %d blocked vs %d exhaustive",
					trial, i, blocked.SplitScenarios[i], exhaustive.SplitScenarios[i])
			}
		}
		if exhaustive.BlockCandidates != 0 || exhaustive.BlockPruned != 0 {
			t.Errorf("trial %d: exhaustive run reported blocking counters %d/%d",
				trial, exhaustive.BlockCandidates, exhaustive.BlockPruned)
		}
		if blocked.BlockCandidates+blocked.BlockPruned > 0 && blocked.BlockPruneRatio() < 0 {
			t.Errorf("trial %d: negative prune ratio", trial)
		}
		prunedTotal += blocked.BlockPruned
	}
	// The sweep as a whole must actually exercise pruning, or the property
	// proves nothing.
	if prunedTotal == 0 {
		t.Error("no scenario was ever pruned across the sweep; blocking path not exercised")
	}
}

func matchWith(ds *dataset.Dataset, opts core.Options, targets []ids.EID, disable bool) (*core.Report, error) {
	opts.DisableBlocking = disable
	m, err := core.New(ds, opts)
	if err != nil {
		return nil, err
	}
	return m.Match(context.Background(), targets)
}

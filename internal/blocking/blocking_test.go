package blocking

import (
	"fmt"
	"math/rand"
	"testing"

	"evmatching/internal/bitset"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// eid makes the n-th test EID.
func eid(n int) ids.EID { return ids.EID(fmt.Sprintf("e%02d", n)) }

// addScenario registers one E-Scenario with the given (cell, window) and
// EID→attr set. Helpers panic on store errors: test stores are well-formed.
func addScenario(t *testing.T, st *scenario.Store, cell geo.CellID, w int, eids map[ids.EID]scenario.Attr) scenario.ID {
	t.Helper()
	id, err := st.Add(&scenario.EScenario{Cell: cell, Window: w, EIDs: eids}, nil)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	return id
}

// randStore builds a seeded random store: EIDs wander over cells, a few
// windows, mixed inclusive/vague attrs, occasional empty and duplicate-shape
// scenarios.
func randStore(t *testing.T, rng *rand.Rand, numEIDs, numCells, numWindows, numScen int) *scenario.Store {
	t.Helper()
	st := scenario.NewStore(nil)
	for i := 0; i < numScen; i++ {
		eids := make(map[ids.EID]scenario.Attr)
		for n := rng.Intn(4); n > 0; n-- {
			attr := scenario.AttrInclusive
			if rng.Intn(3) == 0 {
				attr = scenario.AttrVague
			}
			eids[eid(rng.Intn(numEIDs))] = attr
		}
		addScenario(t, st, geo.CellID(rng.Intn(numCells)), rng.Intn(numWindows), eids)
	}
	return st
}

func TestGeometryDefaults(t *testing.T) {
	ix := Build(scenario.NewStore(nil), Geometry{})
	g := ix.Geometry()
	if g.CellStride != 1 || g.WindowStride != 1 {
		t.Errorf("zero geometry clamps to strides (1,1), got (%d,%d)", g.CellStride, g.WindowStride)
	}
	if g.Slots != 64 {
		t.Errorf("zero geometry slots = %d, want the 64 floor", g.Slots)
	}
	if g = Build(nil, Geometry{Slots: 100}).Geometry(); g.Slots != 128 {
		t.Errorf("slots 100 rounds to %d, want 128", g.Slots)
	}
	if g = DefaultGeometry().withDefaults(); g != DefaultGeometry() {
		t.Errorf("default geometry is not a fixed point of withDefaults: %+v", g)
	}
}

// TestSlotDeterministic pins that the slot hash is a pure function of
// (geometry, cell, window) — the checkpoint rebuild rule depends on two
// builds over equal stores producing equal indexes — and that hostile
// negative coordinates hash in range without panicking.
func TestSlotDeterministic(t *testing.T) {
	g := DefaultGeometry().withDefaults()
	for _, c := range []geo.CellID{-1 << 40, -7, -1, 0, 1, 12543, 1 << 40} {
		for _, w := range []int{-100, -1, 0, 3, 4, 1 << 30} {
			s := g.slot(c, w)
			if s != g.slot(c, w) {
				t.Fatalf("slot(%d,%d) not deterministic", c, w)
			}
			if int(s) >= g.Slots {
				t.Fatalf("slot(%d,%d) = %d out of range [0,%d)", c, w, s, g.Slots)
			}
		}
	}
	// Windows inside one stride share the block; strides must not leak.
	if g.slot(5, 0) != g.slot(5, 3) {
		t.Error("windows 0 and 3 should share the stride-4 block")
	}
}

// TestCandidatesSound checks the pruning guarantee against brute force over
// randomized stores: every scenario containing any live EID (inclusive or
// vague — signatures cover all appearances) must survive as a candidate, in
// AtWindow order, and the returned total must match the window size.
func TestCandidatesSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		st := randStore(t, rng, 12, 40, 6, 80)
		ix := Build(st, Geometry{CellStride: 2, WindowStride: 2, Slots: 64})
		liveSet := make(map[ids.EID]bool)
		var live []ids.EID
		for n := 2 + rng.Intn(3); n > 0; n-- {
			e := eid(rng.Intn(12))
			live = append(live, e)
			liveSet[e] = true
		}
		l := ix.NewLive(append(live, live[0])) // duplicate target must be harmless
		if len(liveSet) < 2 {
			continue // collapsed to a singleton: empty signature by design
		}
		for _, w := range st.Windows() {
			cands, total := ix.Candidates(w, l.Sig(), nil)
			if total != len(st.AtWindow(w)) {
				t.Fatalf("trial %d window %d: total %d, want %d", trial, w, total, len(st.AtWindow(w)))
			}
			inCands := make(map[scenario.ID]bool, len(cands))
			pos := -1
			order := st.AtWindow(w)
			for _, id := range cands {
				inCands[id] = true
				found := false
				for j := pos + 1; j < len(order); j++ {
					if order[j] == id {
						pos, found = j, true
						break
					}
				}
				if !found {
					t.Fatalf("trial %d window %d: candidates not an AtWindow-order subsequence", trial, w)
				}
			}
			for _, id := range order {
				esc := st.E(id)
				for e := range liveSet {
					if esc.Contains(e) && !inCands[id] {
						t.Fatalf("trial %d window %d: scenario %d contains live EID %s but was pruned", trial, w, id, e)
					}
				}
			}
		}
	}
}

// TestCandidatesEmptySig pins the fast paths: an unknown window contributes
// nothing, and an empty signature prunes the whole window via the union
// check while still reporting the full total for accounting.
func TestCandidatesEmptySig(t *testing.T) {
	st := scenario.NewStore(nil)
	addScenario(t, st, 1, 0, map[ids.EID]scenario.Attr{eid(1): scenario.AttrInclusive})
	addScenario(t, st, 2, 0, map[ids.EID]scenario.Attr{eid(2): scenario.AttrInclusive})
	ix := Build(st, DefaultGeometry())
	if cands, total := ix.Candidates(99, bitset.New(64), nil); len(cands) != 0 || total != 0 {
		t.Errorf("unknown window: got %d candidates, total %d", len(cands), total)
	}
	if cands, total := ix.Candidates(0, bitset.New(ix.Geometry().Slots), nil); len(cands) != 0 || total != 2 {
		t.Errorf("empty sig: got %d candidates, total %d; want 0 and 2", len(cands), total)
	}
}

// TestInclusiveAt checks the padding postings against a direct store scan.
func TestInclusiveAt(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	st := randStore(t, rng, 8, 20, 5, 60)
	ix := Build(st, DefaultGeometry())
	for n := 0; n < 10; n++ {
		e := eid(n)
		for w := -1; w < 7; w++ {
			var want []scenario.ID
			for _, id := range st.AtWindow(w) {
				if st.E(id).Inclusive(e) {
					want = append(want, id)
				}
			}
			got := ix.InclusiveAt(e, w)
			if len(got) != len(want) {
				t.Fatalf("InclusiveAt(%s,%d) = %v, want %v", e, w, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("InclusiveAt(%s,%d) = %v, want %v", e, w, got, want)
				}
			}
		}
	}
}

// TestLiveRefcounting drives the live set through resolutions: shared slots
// must survive until the last holder resolves, and the signature must end
// empty. Double-resolves and unknown EIDs are no-ops.
func TestLiveRefcounting(t *testing.T) {
	st := scenario.NewStore(nil)
	// EIDs 1 and 2 share cell 5 window 0; EID 2 alone in cell 9 window 4.
	addScenario(t, st, 5, 0, map[ids.EID]scenario.Attr{eid(1): scenario.AttrInclusive, eid(2): scenario.AttrInclusive})
	addScenario(t, st, 9, 4, map[ids.EID]scenario.Attr{eid(2): scenario.AttrVague})
	ix := Build(st, DefaultGeometry())
	g := ix.Geometry()
	shared, lone := g.slot(5, 0), g.slot(9, 4)

	l := ix.NewLive([]ids.EID{eid(1), eid(2), eid(99)}) // eid(99) never observed: no blocks
	if l.NumLive() != 3 {
		t.Fatalf("NumLive = %d, want 3", l.NumLive())
	}
	if !l.Sig().Has(int(shared)) || !l.Sig().Has(int(lone)) {
		t.Fatal("initial signature missing observed blocks")
	}
	l.Resolve(eid(2))
	if !l.Sig().Has(int(shared)) {
		t.Error("shared slot dropped while EID 1 still live")
	}
	if shared != lone && l.Sig().Has(int(lone)) {
		t.Error("EID 2's lone slot survived its resolution")
	}
	l.Resolve(eid(2)) // repeat: no-op
	l.Resolve(eid(7)) // unknown: no-op
	l.Resolve(eid(1))
	l.Resolve(eid(99))
	if l.NumLive() != 0 || l.Sig().Count() != 0 {
		t.Errorf("after all resolutions: %d live, %d sig bits", l.NumLive(), l.Sig().Count())
	}

	if single := ix.NewLive([]ids.EID{eid(1)}); single.NumLive() != 0 || single.Sig().Count() != 0 {
		t.Error("singleton target list must start resolved with an empty signature")
	}
}

// TestLiveTargetsPrunes covers the streaming-side exact probe.
func TestLiveTargetsPrunes(t *testing.T) {
	lt := NewLiveTargets([]ids.EID{eid(3), eid(4)})
	esc := func(m map[ids.EID]scenario.Attr) *scenario.EScenario {
		return &scenario.EScenario{EIDs: m}
	}
	if lt.Prunes(esc(map[ids.EID]scenario.Attr{eid(3): scenario.AttrInclusive, eid(9): scenario.AttrInclusive})) {
		t.Error("scenario with a live inclusive target must not prune")
	}
	if !lt.Prunes(esc(map[ids.EID]scenario.Attr{eid(3): scenario.AttrVague})) {
		t.Error("vague-only appearance of a live target must prune")
	}
	if !lt.Prunes(esc(map[ids.EID]scenario.Attr{eid(8): scenario.AttrInclusive})) {
		t.Error("scenario without live targets must prune")
	}
	if !lt.Prunes(esc(nil)) {
		t.Error("empty scenario must prune")
	}
	lt.Resolve(eid(3))
	if !lt.Prunes(esc(map[ids.EID]scenario.Attr{eid(3): scenario.AttrInclusive})) {
		t.Error("resolved target must no longer block pruning")
	}
	if lt.NumLive() != 1 {
		t.Errorf("NumLive = %d, want 1", lt.NumLive())
	}
	var nilLT *LiveTargets
	if !nilLT.Prunes(esc(map[ids.EID]scenario.Attr{eid(4): scenario.AttrInclusive})) {
		t.Error("nil LiveTargets must prune everything")
	}
	if single := NewLiveTargets([]ids.EID{eid(5)}); !single.Prunes(esc(map[ids.EID]scenario.Attr{eid(5): scenario.AttrInclusive})) {
		t.Error("singleton target list is born resolved and must prune everything")
	}
}

// TestBuildDeterministic pins index equality across rebuilds of the same
// store — the property the checkpoint-restore rebuild rule rests on.
func TestBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	st := randStore(t, rng, 10, 30, 5, 70)
	a, b := Build(st, DefaultGeometry()), Build(st, DefaultGeometry())
	if a.NumEIDs() != b.NumEIDs() {
		t.Fatalf("NumEIDs %d vs %d", a.NumEIDs(), b.NumEIDs())
	}
	targets := []ids.EID{eid(0), eid(1), eid(2)}
	for _, w := range st.Windows() {
		ca, ta := a.Candidates(w, a.NewLive(targets).Sig(), nil)
		cb, tb := b.Candidates(w, b.NewLive(targets).Sig(), nil)
		if ta != tb || len(ca) != len(cb) {
			t.Fatalf("window %d: rebuild diverged (%d/%d vs %d/%d)", w, len(ca), ta, len(cb), tb)
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("window %d: candidate %d differs", w, i)
			}
		}
	}
}

// FuzzIndexHostile feeds adversarial scenario shapes — empty EID sets,
// duplicate cells, negative and huge coordinates, unknown probe EIDs —
// through Build, Candidates, InclusiveAt, and the live trackers, asserting
// no panics and the candidate-superset invariant.
func FuzzIndexHostile(f *testing.F) {
	f.Add(int64(1), int64(-5), 3, uint8(2), uint8(0))
	f.Add(int64(-1<<40), int64(0), 0, uint8(0), uint8(3))
	f.Add(int64(7), int64(1<<30), -2, uint8(5), uint8(1))
	f.Fuzz(func(t *testing.T, cell1, cell2 int64, window int, eidByte, probeByte uint8) {
		st := scenario.NewStore(nil)
		e1, probe := eid(int(eidByte)), eid(int(probeByte))
		mustAdd := func(c geo.CellID, w int, m map[ids.EID]scenario.Attr) {
			if _, err := st.Add(&scenario.EScenario{Cell: c, Window: w, EIDs: m}, nil); err != nil {
				t.Fatalf("Add: %v", err)
			}
		}
		mustAdd(geo.CellID(cell1), window, map[ids.EID]scenario.Attr{e1: scenario.AttrInclusive})
		mustAdd(geo.CellID(cell2), window, nil) // empty EID set
		mustAdd(geo.CellID(cell1), window+1, map[ids.EID]scenario.Attr{
			e1: scenario.AttrVague, probe: scenario.AttrInclusive,
		})
		mustAdd(geo.CellID(cell1), window, map[ids.EID]scenario.Attr{e1: scenario.AttrInclusive}) // duplicate shape

		ix := Build(st, Geometry{CellStride: 3, WindowStride: 2, Slots: 64})
		l := ix.NewLive([]ids.EID{e1, probe, e1})
		for _, w := range []int{window, window + 1, window + 999} {
			cands, total := ix.Candidates(w, l.Sig(), nil)
			if len(cands) > total {
				t.Fatalf("window %d: %d candidates exceed total %d", w, len(cands), total)
			}
			seen := make(map[scenario.ID]bool, len(cands))
			for _, id := range cands {
				seen[id] = true
			}
			for _, id := range st.AtWindow(w) {
				if esc := st.E(id); (esc.Contains(e1) || esc.Contains(probe)) && !seen[id] {
					t.Fatalf("window %d: scenario %d with a live EID was pruned", w, id)
				}
			}
			ix.InclusiveAt(probe, w)
			ix.InclusiveAt(eid(255), w)
		}
		l.Resolve(e1)
		l.Resolve(probe)
		l.Resolve(eid(254))
		if l.Sig().Count() != 0 {
			t.Fatal("signature not empty after resolving all targets")
		}
		lt := NewLiveTargets([]ids.EID{e1, probe})
		for id := scenario.ID(0); int(id) < st.Len(); id++ {
			lt.Prunes(st.E(id))
		}
		lt.Prunes(nil)
	})
}

package blocking

import (
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// LiveTargets is the streaming splitter's pruning state: the finest possible
// blocking signature — the exact set of still-undistinguished target EIDs.
// A store-wide coarse index cannot exist online (scenarios arrive as windows
// seal), but the soundness argument needs no index at all: a sealed scenario
// can only split a partition leaf if a live target appears in it inclusively,
// so the membership probe below decides no-op scenarios exactly. Restore
// rebuilds this state deterministically by replaying the checkpointed
// scenarios through the same probe — the rebuild rule of DESIGN.md §13, with
// no new checkpoint fields.
type LiveTargets struct {
	live map[ids.EID]bool
}

// NewLiveTargets builds the tracker for a fresh partition over targets. As
// with Index.NewLive, a lone target is born resolved and everything prunes.
func NewLiveTargets(targets []ids.EID) *LiveTargets {
	lt := &LiveTargets{live: make(map[ids.EID]bool, len(targets))}
	if len(targets) < 2 {
		return lt
	}
	for _, e := range targets {
		lt.live[e] = true
	}
	return lt
}

// Resolve removes e from the live set. Wire to partition.OnResolve.
func (lt *LiveTargets) Resolve(e ids.EID) { delete(lt.live, e) }

// NumLive returns how many targets are still undistinguished.
func (lt *LiveTargets) NumLive() int { return len(lt.live) }

// Prunes reports whether s provably cannot change the partition: no live
// target appears in it inclusively. SplitBy's effectiveness test requires an
// inclusive member of a leaf with ≥2 inclusive EIDs, every such member is
// live, and leaf membership is a subset of the targets — so a true result is
// an exact no-op, skippable without recording. The probe iterates whichever
// side is smaller; nil trackers and nil scenarios trivially prune.
func (lt *LiveTargets) Prunes(s *scenario.EScenario) bool {
	if lt == nil || s == nil || len(lt.live) == 0 {
		return true
	}
	if len(lt.live) <= len(s.EIDs) {
		//evlint:ignore maprange pure existence probe; any order finds the same answer
		for e := range lt.live {
			if s.Inclusive(e) {
				return false
			}
		}
		return true
	}
	//evlint:ignore maprange pure existence probe; any order finds the same answer
	for e, a := range s.EIDs {
		if a == scenario.AttrInclusive && lt.live[e] {
			return false
		}
	}
	return true
}

package stream

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/geo"
	"evmatching/internal/metrics"
)

// shardInvarianceShardCounts is the shard battery every invariance property
// runs across: the degenerate single shard, small counts that leave some
// shards with many cells, and a count likely to exceed the busiest cells.
var shardInvarianceShardCounts = []int{1, 2, 3, 8}

// shardDataset is the dedicated workload for the shard-invariance golden
// pins — deliberately distinct from testDataset so the pins below guard new
// fingerprints rather than re-pinning the unsharded suite's.
func shardDataset(t *testing.T, practical bool) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumPersons = 50
	cfg.Density = 6
	cfg.NumWindows = 12
	cfg.Seed = 3
	if practical {
		cfg = cfg.Practical()
		cfg.EIDMissingRate = 0.08
		cfg.VIDMissingRate = 0.04
	}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ds
}

// routerFingerprint streams the observations through a fresh router with the
// given shard count and finalizes, requiring every observation accepted.
func routerFingerprint(t *testing.T, rcfg RouterConfig, obs []Observation) string {
	t.Helper()
	r, err := NewRouter(rcfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer r.Close()
	for i, o := range obs {
		accepted, err := r.Ingest(o)
		if err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
		if !accepted {
			t.Fatalf("Ingest %d: in-order observation dropped as late", i)
		}
	}
	rep, err := r.Finalize(context.Background())
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return rep.Fingerprint()
}

// TestShardOfStable pins the cell → shard assignment. It is part of the
// checkpoint contract: v3 restore redistributes buckets with ShardOf, so
// changing the assignment silently invalidates existing checkpoints.
func TestShardOfStable(t *testing.T) {
	cases := []struct {
		cell   geo.CellID
		shards int
		want   int
	}{
		{0, 1, 0}, {17, 1, 0},
		{0, 4, 0}, {1, 4, 1}, {5, 4, 1}, {7, 4, 3},
		{41, 8, 1}, {1000003, 7, 4},
	}
	for _, tc := range cases {
		if got := ShardOf(tc.cell, tc.shards); got != tc.want {
			t.Errorf("ShardOf(%d, %d) = %d, want %d", tc.cell, tc.shards, got, tc.want)
		}
	}
}

// TestShardInvarianceGolden is the tentpole invariant: for every shard count
// the sharded replay's fingerprint is byte-identical to the unsharded stream
// replay AND to the batch SS reference over the original dataset. The sha256
// pins freeze all three paths at once on a dedicated workload.
func TestShardInvarianceGolden(t *testing.T) {
	cases := []struct {
		name      string
		practical bool
		mode      core.Mode
		want      string
	}{
		{"ideal-serial", false, core.ModeSerial,
			"3e0a02707e629de5dad8e6a5a6f135bf698c7be0f8fc18583b2005894200fe71"},
		{"practical-serial", true, core.ModeSerial,
			"e03713546448faa41e04d139ef8304ead2c11fa67e97d0186e7ab09e512f5b2e"},
		{"practical-parallel", true, core.ModeParallel,
			"a093882f68d3e321006251d7302bca42e014966bc9348bdc8867fc3dac59b3ee"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := shardDataset(t, tc.practical)
			targets := ds.AllEIDs()[:16]
			_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
			if err != nil {
				t.Fatalf("EventsFromDataset: %v", err)
			}
			cfg := testConfig(ds, targets, tc.mode)
			batch := batchFingerprint(t, ds, targets, tc.mode)
			unsharded := replayFingerprint(t, cfg, obs)
			if unsharded != batch {
				t.Fatalf("unsharded replay diverged from batch:\n--- batch\n%s\n--- stream\n%s", batch, unsharded)
			}
			sum := sha256.Sum256([]byte(unsharded))
			if got := hex.EncodeToString(sum[:]); got != tc.want {
				t.Errorf("fingerprint hash = %s, want %s (match results changed)", got, tc.want)
			}
			for _, shards := range shardInvarianceShardCounts {
				got := routerFingerprint(t, RouterConfig{Config: cfg, Shards: shards}, obs)
				if got != unsharded {
					t.Fatalf("%d-shard replay diverged from unsharded:\n--- unsharded\n%s\n--- sharded\n%s", shards, unsharded, got)
				}
			}
		})
	}
}

// TestShardPermutationInvariance extends the bounded-displacement ordering
// property to the sharded path: any arrival permutation within the allowed
// lateness yields the same fingerprint at every shard count, with nothing
// dropped.
func TestShardPermutationInvariance(t *testing.T) {
	ds := testDataset(t, true)
	targets := ds.AllEIDs()[:12]
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	cfg := testConfig(ds, targets, core.ModeSerial)
	want := replayFingerprint(t, cfg, obs)
	for _, shards := range []int{2, 3, 8} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("shards-%d-shuffle-%d", shards, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				shuffled := boundedShuffle(obs, testLatenessMS, rng)
				r, err := NewRouter(RouterConfig{Config: cfg, Shards: shards})
				if err != nil {
					t.Fatalf("NewRouter: %v", err)
				}
				defer r.Close()
				for i, o := range shuffled {
					accepted, err := r.Ingest(o)
					if err != nil {
						t.Fatalf("Ingest %d: %v", i, err)
					}
					if !accepted {
						t.Fatalf("Ingest %d: observation within the lateness bound dropped (ts %d)", i, o.TS)
					}
				}
				if got := r.LateDropped(); got != 0 {
					t.Fatalf("LateDropped = %d under bounded displacement", got)
				}
				rep, err := r.Finalize(context.Background())
				if err != nil {
					t.Fatalf("Finalize: %v", err)
				}
				if got := rep.Fingerprint(); got != want {
					t.Fatalf("sharded shuffled replay diverged from in-order unsharded replay")
				}
			})
		}
	}
}

// TestShardDuplicateInvariance pins at-least-once tolerance per shard:
// delivering every observation twice changes nothing at any shard count,
// because duplicates route to the same shard and bucket merging is
// idempotent.
func TestShardDuplicateInvariance(t *testing.T) {
	ds := testDataset(t, true)
	targets := ds.AllEIDs()[:12]
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	cfg := testConfig(ds, targets, core.ModeSerial)
	want := replayFingerprint(t, cfg, obs)
	doubled := make([]Observation, 0, 2*len(obs))
	for _, o := range obs {
		doubled = append(doubled, o, o)
	}
	for _, shards := range shardInvarianceShardCounts {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			got := routerFingerprint(t, RouterConfig{Config: cfg, Shards: shards}, doubled)
			if got != want {
				t.Fatalf("%d-shard duplicated replay diverged from single-delivery replay", shards)
			}
		})
	}
}

// TestRouterLateDropParity pins that sharding does not change the accept /
// late-drop decision: the router and the unsharded engine, fed the same
// out-of-bound sequence, drop exactly the same observations.
func TestRouterLateDropParity(t *testing.T) {
	ds := testDataset(t, false)
	targets := ds.AllEIDs()[:8]
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	// Re-deliver an early observation periodically; once the watermark moves
	// past its window these re-deliveries are late.
	withLate := make([]Observation, 0, len(obs)+len(obs)/400)
	for i, o := range obs {
		withLate = append(withLate, o)
		if i > 0 && i%400 == 0 {
			withLate = append(withLate, obs[0])
		}
	}
	cfg := testConfig(ds, targets, core.ModeSerial)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	var engineAccepts []bool
	for i, o := range withLate {
		acc, err := e.Ingest(o)
		if err != nil {
			t.Fatalf("engine Ingest %d: %v", i, err)
		}
		engineAccepts = append(engineAccepts, acc)
	}
	if e.LateDropped() == 0 {
		t.Fatal("workload produced no late observations; the parity check is vacuous")
	}
	for _, shards := range []int{2, 8} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			r, err := NewRouter(RouterConfig{Config: cfg, Shards: shards})
			if err != nil {
				t.Fatalf("NewRouter: %v", err)
			}
			defer r.Close()
			for i, o := range withLate {
				acc, err := r.Ingest(o)
				if err != nil {
					t.Fatalf("router Ingest %d: %v", i, err)
				}
				if acc != engineAccepts[i] {
					t.Fatalf("Ingest %d: router accepted=%v, engine accepted=%v", i, acc, engineAccepts[i])
				}
			}
			if got, want := r.LateDropped(), e.LateDropped(); got != want {
				t.Fatalf("LateDropped = %d, engine dropped %d", got, want)
			}
			if got, want := r.Ingested(), e.Ingested(); got != want {
				t.Fatalf("Ingested = %d, engine ingested %d", got, want)
			}
		})
	}
}

func TestRouterConfigValidation(t *testing.T) {
	ds := testDataset(t, false)
	base := testConfig(ds, ds.AllEIDs()[:4], core.ModeSerial)
	cases := []struct {
		name string
		mut  func(*RouterConfig)
	}{
		{"negative-shards", func(c *RouterConfig) { c.Shards = -2 }},
		{"negative-queue", func(c *RouterConfig) { c.QueueLen = -1 }},
		{"negative-subcheckpoint", func(c *RouterConfig) { c.SubCheckpointEvery = -5 }},
		{"negative-lease-ttl", func(c *RouterConfig) { c.LeaseTTL = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rcfg := RouterConfig{Config: base}
			tc.mut(&rcfg)
			if _, err := NewRouter(rcfg); err == nil {
				t.Fatal("NewRouter accepted an invalid config")
			}
		})
	}
}

func TestRouterClosed(t *testing.T) {
	ds := testDataset(t, false)
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	r, err := NewRouter(RouterConfig{Config: testConfig(ds, ds.AllEIDs()[:4], core.ModeSerial), Shards: 3})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	if _, err := r.Ingest(obs[0]); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := r.Ingest(obs[1]); err != ErrRouterClosed {
		t.Fatalf("Ingest after Close: err = %v, want ErrRouterClosed", err)
	}
	if err := r.Flush(); err != ErrRouterClosed {
		t.Fatalf("Flush after Close: err = %v, want ErrRouterClosed", err)
	}
	if err := r.Checkpoint(nil); err != ErrRouterClosed {
		t.Fatalf("Checkpoint after Close: err = %v, want ErrRouterClosed", err)
	}
}

// TestRouterGauges checks the router's gauge surface: the engine-compatible
// stream_* gauges plus the shard count, redispatch counter, and per-shard
// routed counters (which must sum to the accepted observations).
func TestRouterGauges(t *testing.T) {
	ds := testDataset(t, false)
	targets := ds.AllEIDs()[:8]
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	reg := metrics.NewRegistry()
	cfg := testConfig(ds, targets, core.ModeSerial)
	cfg.Clock = &fakeClock{now: time.UnixMilli(obs[len(obs)-1].TS)}
	cfg.Metrics = reg
	const shards = 4
	r, err := NewRouter(RouterConfig{Config: cfg, Shards: shards})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer r.Close()
	accepted := int64(0)
	for i, o := range obs {
		acc, err := r.Ingest(o)
		if err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
		if acc {
			accepted++
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := reg.Get("stream_shards"); got != shards {
		t.Errorf("stream_shards = %d, want %d", got, shards)
	}
	if got := reg.Get("stream_shard_redispatches"); got != 0 {
		t.Errorf("stream_shard_redispatches = %d, want 0", got)
	}
	var routed int64
	for s := 0; s < shards; s++ {
		routed += reg.Get(fmt.Sprintf("stream_shard%d_ingested", s))
	}
	if routed != accepted {
		t.Errorf("per-shard routed gauges sum to %d, want %d accepted", routed, accepted)
	}
	if got, want := reg.Get("stream_resolutions_emitted"), int64(len(r.Resolutions())); got != want {
		t.Errorf("stream_resolutions_emitted = %d, want %d", got, want)
	}
	if got := reg.Get("stream_open_windows"); got != 0 {
		t.Errorf("stream_open_windows = %d after Flush, want 0", got)
	}
}

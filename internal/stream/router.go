package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"evmatching/internal/cluster"
	"evmatching/internal/core"
	"evmatching/internal/feature"
	"evmatching/internal/geo"
	"evmatching/internal/scenario"
	"evmatching/internal/spill"
)

// ErrRouterClosed reports use of a router after Close.
var ErrRouterClosed = errors.New("stream: router closed")

// Default router knobs.
const (
	// DefaultShardQueue is the per-shard input channel capacity.
	DefaultShardQueue = 1024
	// DefaultSubCheckpointEvery is how many journalled messages a shard
	// buffers before the router requests a sub-checkpoint snapshot from it.
	DefaultSubCheckpointEvery = 512
	// DefaultShardLeaseTTL is the shard liveness lease: a shard silent this
	// long is declared dead and its cell range redispatched.
	DefaultShardLeaseTTL = 2 * time.Second

	// leaseCheckEvery rate-limits the router's failure-detector sweep to one
	// lease-table scan per this many ingests, keeping the lease mutex off the
	// per-observation hot path.
	leaseCheckEvery = 64
	// renewEveryMsgs rate-limits a busy shard's lease renewals for the same
	// reason; an idle shard renews from its ticker instead.
	renewEveryMsgs = 32
	// sendRetryDelay paces the backpressure/redispatch retry loop when a
	// shard's queue is full.
	sendRetryDelay = 50 * time.Microsecond
)

// ShardFault is the injected fault for one (shard, incarnation, step):
// chaos tests kill or stall shard windowers mid-window through it.
type ShardFault struct {
	// Kill makes the shard goroutine exit silently before processing the
	// message; its lease lapses and the router redispatches its cell range.
	Kill bool
	// Stall delays processing by this much — a straggler shard.
	Stall time.Duration
}

// ShardFaultPlan decides shard faults from pure coordinates, mirroring
// cluster.FaultPlan: decisions depend only on (shard, incarnation, step),
// never on goroutine interleaving, so fault schedules are reproducible.
// chaos.NewShardInjector is the seeded implementation.
type ShardFaultPlan interface {
	ShardFault(shard, incarnation, step int) ShardFault
}

// RouterConfig parameterizes a Router. The embedded Config is the matching
// configuration every shard and the merge stage share.
type RouterConfig struct {
	Config

	// Shards is the number of region shards observations partition across
	// (0 = 1). The assignment is ShardOf: cell modulo shard count.
	Shards int
	// QueueLen is the per-shard input channel capacity (0 = DefaultShardQueue).
	QueueLen int
	// SubCheckpointEvery is the journal length that triggers a sub-checkpoint
	// snapshot request (0 = DefaultSubCheckpointEvery). Smaller values bound
	// replay work after a shard death at the cost of more frequent snapshots.
	SubCheckpointEvery int
	// LeaseTTL is the shard liveness lease (0 = DefaultShardLeaseTTL),
	// measured against Config.Clock so deterministic tests drive detection
	// from an injected clock.
	LeaseTTL time.Duration
	// Faults, when non-nil, injects shard faults (tests only).
	Faults ShardFaultPlan
	// Runner, when non-nil, runs shard incarnations instead of the
	// in-process windower goroutines — the seam internal/shardrpc's
	// supervisor plugs into to host shards in worker processes. Mutually
	// exclusive with Faults (fault injection targets the in-process path;
	// cross-process chaos kills real processes instead).
	Runner ShardRunner
}

// withDefaults returns a copy with the router knobs defaulted.
func (c RouterConfig) withDefaults() RouterConfig {
	c.Config = c.Config.withDefaults()
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.QueueLen == 0 {
		c.QueueLen = DefaultShardQueue
	}
	if c.SubCheckpointEvery == 0 {
		c.SubCheckpointEvery = DefaultSubCheckpointEvery
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = DefaultShardLeaseTTL
	}
	return c
}

// validate reports whether the (defaulted) router config is usable.
func (c RouterConfig) validate() error {
	if err := c.Config.validate(); err != nil {
		return err
	}
	if c.Shards < 1 {
		return fmt.Errorf("%w: %d shards", ErrBadConfig, c.Shards)
	}
	if c.QueueLen < 1 {
		return fmt.Errorf("%w: queue length %d", ErrBadConfig, c.QueueLen)
	}
	if c.SubCheckpointEvery < 1 {
		return fmt.Errorf("%w: sub-checkpoint every %d", ErrBadConfig, c.SubCheckpointEvery)
	}
	if c.LeaseTTL <= 0 {
		return fmt.Errorf("%w: lease ttl %v", ErrBadConfig, c.LeaseTTL)
	}
	if c.Runner != nil && c.Faults != nil {
		return fmt.Errorf("%w: Runner and Faults are mutually exclusive", ErrBadConfig)
	}
	return nil
}

// ShardOf is the stable cell → shard assignment: the cell's residue modulo
// the shard count. It depends on nothing but its arguments, so any router —
// or any node in a future multi-process deployment — routes a cell
// identically, and a checkpoint written under one shard count redistributes
// cleanly under another.
func ShardOf(cell geo.CellID, shards int) int {
	return int(cell % geo.CellID(shards))
}

// ShardMsgKind tags a message on a shard's input channel.
type ShardMsgKind uint8

const (
	ShardMsgObs ShardMsgKind = iota + 1
	ShardMsgClose
	ShardMsgSnap
)

// ShardMsg is one journalled message to a shard windower. Pos is the
// router-assigned position in the shard's message sequence, the coordinate
// the sub-checkpoint handoff protocol is anchored to. The fields are
// exported because ShardMsg is also the wire unit of the cross-process
// shard protocol (internal/shardrpc): the router journals exactly what it
// sends, so replay after a worker death retransmits identical bytes.
type ShardMsg struct {
	Pos    int64
	Kind   ShardMsgKind
	Obs    Observation // ShardMsgObs
	Round  int         // ShardMsgClose
	Target int         // ShardMsgClose: close windows < target
	MaxTS  int64       // ShardMsgClose: router watermark state at issue time
}

// ShardOutKind tags a message on the shared shard → merger channel.
type ShardOutKind uint8

const (
	ShardOutRound ShardOutKind = iota + 1
	ShardOutSnap
)

// shardOut is one shard emission: a round of sealed window closures, or a
// sub-checkpoint snapshot acknowledging a journal position.
type shardOut struct {
	shard    int
	kind     ShardOutKind
	round    int
	target   int
	maxTS    int64
	sealed   []sealedScenario
	snapPos  int64
	snapshot []ShardBucket
}

// snapAck is the merger-recorded latest sub-checkpoint of one shard.
type snapAck struct {
	pos     int64
	buckets []ShardBucket
}

// shardSlot is the router-side state of one shard: its current incarnation's
// channels plus the replay journal and last acknowledged sub-checkpoint that
// make the shard's state reconstructible after a death.
type shardSlot struct {
	id          int
	incarnation int
	in          chan ShardMsg
	stop        chan struct{}

	sent    int64      // position of the last journalled message
	journal []ShardMsg // messages since the last acknowledged sub-checkpoint

	snapPos     int64         // position of the last acknowledged sub-checkpoint
	snapBuckets []ShardBucket // its bucket image
	pendingSnap int64         // outstanding snapshot request position (0 = none)

	routed    int64  // observations routed to this shard (gauge)
	gaugeName string // precomputed per-shard gauge key
}

// Router is the sharded streaming ingest tier: observations partition by
// cell across N in-process shard windowers (ShardOf), each shard seals its
// windows when the router's global watermark closes them, and a merge stage
// folds the sealed closures — in ascending (window, cell) order across all
// shards — into a single global Engine. Because the merge replays exactly
// the close-and-sweep sequence the unsharded engine performs, the router's
// Finalize fingerprint is bit-identical to the unsharded stream replay and
// to the batch SS run (the shard-invariance tests pin this).
//
// Fault tolerance reuses the cluster lease model: every shard holds a
// liveness lease (cluster.ShardLeaseTable); a shard that dies mid-window
// stops renewing, and the router redispatches its cell range to a fresh
// incarnation restored from the last sub-checkpoint plus a replay of the
// journalled messages since. Replayed emissions are deduplicated by round,
// so a death never loses or duplicates a window closure.
//
// The router is safe for concurrent use.
type Router struct {
	cfg    RouterConfig
	merged *Engine
	leases *cluster.ShardLeaseTable

	mu           sync.Mutex
	closed       bool
	slots        []shardSlot
	maxTS        int64
	minOpen      int
	round        int // close rounds issued
	ingested     int64
	lateDropped  int64
	redispatches int64
	// supervisorRedispatches counts the redispatches initiated through
	// RedispatchShard / ShardRun.Redispatch (a supervisor reporting a dead
	// worker) — a subset of redispatches, which counts every recovery path.
	supervisorRedispatches int64
	seen                   map[bucketKey]bool // open (window, cell) keys routed so far
	openPerWin             map[int]int        // open bucket count per window
	sinceSweep             int                // ingests since the last lease sweep

	out        chan shardOut
	wg         sync.WaitGroup
	mergerDone chan struct{}
	closeOnce  sync.Once

	snapMu sync.Mutex
	acks   []snapAck

	foldMu      sync.Mutex
	foldedRound int
	firstErr    error

	seqGauge      atomic.Int64
	resolvedGauge atomic.Int64
	kills         atomic.Int64
}

// RouterStats is a snapshot of the router's fault-handling counters.
type RouterStats struct {
	// Shards is the configured shard count.
	Shards int
	// Redispatches counts shard takeovers: a dead incarnation handed to a
	// fresh one restored from its sub-checkpoint, whether detected by lease
	// expiry or reported by a supervisor.
	Redispatches int64
	// SupervisorRedispatches counts the subset of Redispatches initiated
	// through RedispatchShard — a supervisor reporting a dead worker ahead
	// of the lease-expiry failure detector.
	SupervisorRedispatches int64
	// Kills counts injected shard-kill faults taken (tests only).
	Kills int64
	// Leases is the underlying lease table's counters.
	Leases cluster.ShardLeaseStats
}

// NewRouter creates a sharded router with empty state and starts its shard
// windowers and merge stage. Callers must Close it to join the goroutines.
func NewRouter(cfg RouterConfig) (*Router, error) {
	return newRouter(cfg, nil, nil)
}

// newRouter builds a router, optionally seeded from a decoded checkpoint
// (cp) and its open buckets (open, redistributed by ShardOf).
func newRouter(cfg RouterConfig, cp *routerCheckpointFile, open []ShardBucket) (*Router, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// The merge stage reuses the unsharded engine wholesale; the router owns
	// the stream_* gauge surface, so the merged engine publishes none.
	mergedCfg := cfg.Config
	mergedCfg.Metrics = nil
	merged, err := NewEngine(mergedCfg)
	if err != nil {
		return nil, err
	}
	cfg.Targets = merged.cfg.Targets // sorted copy
	leases, err := cluster.NewShardLeaseTable(cfg.Shards, cfg.LeaseTTL, cfg.Clock.Now())
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:        cfg,
		merged:     merged,
		leases:     leases,
		slots:      make([]shardSlot, cfg.Shards),
		maxTS:      -1,
		seen:       make(map[bucketKey]bool),
		openPerWin: make(map[int]int),
		out:        make(chan shardOut, 4*cfg.Shards),
		mergerDone: make(chan struct{}),
		acks:       make([]snapAck, cfg.Shards),
	}

	perShard := make([][]ShardBucket, cfg.Shards)
	if cp != nil {
		if err := r.restoreCheckpoint(cp); err != nil {
			return nil, err
		}
		for _, cb := range open {
			if cb.Cell < 0 {
				return nil, fmt.Errorf("%w: bucket cell %d", ErrBadCheckpoint, cb.Cell)
			}
			s := ShardOf(cb.Cell, cfg.Shards)
			perShard[s] = append(perShard[s], cb)
			k := bucketKey{Window: cb.Window, Cell: cb.Cell}
			if !r.seen[k] {
				r.seen[k] = true
				r.openPerWin[cb.Window]++
			}
		}
		for s := range perShard {
			sortCheckpointBuckets(perShard[s])
		}
	}

	for s := 0; s < cfg.Shards; s++ {
		slot := &r.slots[s]
		slot.id = s
		slot.incarnation = 1
		slot.in = make(chan ShardMsg, cfg.QueueLen)
		slot.stop = make(chan struct{})
		slot.snapBuckets = perShard[s]
		slot.gaugeName = fmt.Sprintf("stream_shard%d_ingested", s)
		r.startIncarnationLocked(slot, perShard[s])
	}
	go r.runMerger()
	return r, nil
}

// restoreCheckpoint applies a decoded checkpoint's global section: the
// merged engine's scenarios, resolutions, and counters, plus the router's
// own watermark and ingest counters.
func (r *Router) restoreCheckpoint(cp *routerCheckpointFile) error {
	view := checkpointFile{
		WindowMS:    cp.WindowMS,
		LatenessMS:  cp.LatenessMS,
		Seed:        cp.Seed,
		Dim:         cp.Dim,
		Targets:     cp.Targets,
		Ingested:    cp.Ingested,
		LateDropped: cp.LateDropped,
		MaxTS:       cp.MaxTS,
		MinOpen:     cp.MinOpen,
		Seq:         cp.Seq,
		Scenarios:   cp.Scenarios,
		Resolutions: cp.Resolutions,
		Accepted:    cp.Accepted,
		Resolved:    cp.Resolved,
	}
	if err := r.merged.guardCheckpoint(&view); err != nil {
		return err
	}
	if err := r.merged.restoreScenarios(&view); err != nil {
		return err
	}
	r.merged.restoreCounters(&view)
	r.ingested = cp.Ingested
	r.lateDropped = cp.LateDropped
	r.maxTS = cp.MaxTS
	r.minOpen = cp.MinOpen
	r.seqGauge.Store(int64(cp.Seq))
	r.resolvedGauge.Store(int64(len(cp.Resolved)))
	return nil
}

// Ingest consumes one observation: validation and the late-drop decision
// happen here — the router's watermark is the single source of truth, so
// sharding never changes which observations are accepted — then the
// observation is journalled and routed to its cell's shard. When the
// observation advances the watermark past a window boundary, a close round
// is broadcast to every shard.
func (r *Router) Ingest(o Observation) (bool, error) {
	if err := o.Validate(); err != nil {
		return false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false, ErrRouterClosed
	}
	if err := r.errState(); err != nil {
		return false, err
	}
	r.ingested++
	w := int(o.TS / r.cfg.WindowMS)
	if w < r.minOpen {
		r.lateDropped++
		r.publishGaugesLocked()
		return false, nil
	}
	shard := ShardOf(o.Cell, r.cfg.Shards)
	slot := &r.slots[shard]
	r.sendLocked(slot, ShardMsg{Kind: ShardMsgObs, Obs: o})
	slot.routed++
	k := bucketKey{Window: w, Cell: o.Cell}
	if !r.seen[k] {
		r.seen[k] = true
		r.openPerWin[w]++
	}
	if o.TS > r.maxTS {
		r.maxTS = o.TS
		if target := floorDiv(r.maxTS-r.cfg.LatenessMS, r.cfg.WindowMS); target > int64(r.minOpen) {
			r.issueCloseLocked(int(target))
		}
	}
	r.maybeSnapshotLocked(slot)
	r.adoptAckLocked(slot)
	r.sinceSweep++
	if r.sinceSweep >= leaseCheckEvery {
		r.sinceSweep = 0
		r.redispatchExpiredLocked()
	}
	r.publishGaugesLocked()
	return true, nil
}

// sendLocked journals m for the shard and delivers it to the current
// incarnation. A full queue is retried with backpressure; if the shard is
// redispatched while we wait, the replacement's journal replay has already
// delivered m, so the send completes vacuously. Callers hold r.mu.
func (r *Router) sendLocked(s *shardSlot, m ShardMsg) {
	s.sent++
	m.Pos = s.sent
	s.journal = append(s.journal, m)
	for {
		cur := s.in
		select {
		case cur <- m:
			return
		default:
		}
		r.redispatchExpiredLocked()
		if s.in != cur {
			return // redispatched: the journal replay delivered m
		}
		time.Sleep(sendRetryDelay)
	}
}

// issueCloseLocked broadcasts one close round: every shard seals its buckets
// with window < target and emits them to the merge stage. Rounds are the
// unit of merge ordering — the merger folds a round only once all shards
// have reported it. Callers hold r.mu; target must be >= r.minOpen.
func (r *Router) issueCloseLocked(target int) {
	r.round++
	if target > r.minOpen {
		r.minOpen = target
	}
	m := ShardMsg{Kind: ShardMsgClose, Round: r.round, Target: target, MaxTS: r.maxTS}
	for i := range r.slots {
		r.sendLocked(&r.slots[i], m)
	}
	var wins []int
	for w := range r.openPerWin {
		if w < target {
			wins = append(wins, w)
		}
	}
	sort.Ints(wins)
	for _, w := range wins {
		delete(r.openPerWin, w)
	}
	var keys []bucketKey
	for k := range r.seen {
		if k.Window < target {
			keys = append(keys, k)
		}
	}
	sortBucketKeys(keys)
	for _, k := range keys {
		delete(r.seen, k)
	}
}

// maybeSnapshotLocked requests a sub-checkpoint once the shard's journal has
// grown past the configured bound, so redispatch replay work stays bounded.
// Callers hold r.mu.
func (r *Router) maybeSnapshotLocked(s *shardSlot) {
	if s.pendingSnap != 0 || len(s.journal) < r.cfg.SubCheckpointEvery {
		return
	}
	r.sendLocked(s, ShardMsg{Kind: ShardMsgSnap})
	s.pendingSnap = s.sent
}

// adoptAckLocked folds the merger's latest sub-checkpoint ack into the slot:
// the snapshot becomes the shard's restore point and the journal entries it
// covers are dropped. Callers hold r.mu.
func (r *Router) adoptAckLocked(s *shardSlot) {
	r.snapMu.Lock()
	ack := r.acks[s.id]
	r.snapMu.Unlock()
	if ack.pos <= s.snapPos {
		return
	}
	s.snapPos = ack.pos
	s.snapBuckets = ack.buckets
	idx := sort.Search(len(s.journal), func(i int) bool { return s.journal[i].Pos > ack.pos })
	s.journal = append(s.journal[:0:0], s.journal[idx:]...)
	if s.pendingSnap != 0 && s.pendingSnap <= ack.pos {
		s.pendingSnap = 0
	}
}

// redispatchExpiredLocked is the failure detector: shards whose lease lapsed
// are handed to fresh incarnations. Callers hold r.mu.
func (r *Router) redispatchExpiredLocked() {
	now := r.cfg.Clock.Now()
	for _, shard := range r.leases.Expired(now) {
		r.redispatchLocked(shard, now)
	}
}

// redispatchLocked replaces a dead shard: the old incarnation is stopped
// (and its stale renewals rejected by the bumped lease), and a replacement
// restores the last sub-checkpoint then replays the journal since it. The
// replay re-emits any rounds the dead incarnation already reported; the
// merger deduplicates them by round number, which is sound because replay is
// deterministic — a re-emitted round is byte-identical to the original.
// Callers hold r.mu.
func (r *Router) redispatchLocked(shard int, now time.Time) {
	slot := &r.slots[shard]
	inc, err := r.leases.Redispatch(shard, now)
	if err != nil {
		r.setErr(err)
		return
	}
	close(slot.stop)
	slot.stop = make(chan struct{})
	// Capacity covers the whole replay, so these sends cannot block even if
	// the replacement is itself killed mid-replay.
	slot.in = make(chan ShardMsg, len(slot.journal)+r.cfg.QueueLen)
	slot.incarnation = inc
	r.redispatches++
	r.startIncarnationLocked(slot, slot.snapBuckets)
	for _, m := range slot.journal {
		slot.in <- m
	}
}

// startIncarnationLocked launches the slot's current incarnation: the
// in-process windower goroutine, or — when cfg.Runner is set — the runner,
// which may host the shard anywhere it likes (internal/shardrpc proxies it
// to a worker process). image is the sub-checkpoint the incarnation
// restores from. Callers hold r.mu (newRouter calls before the router
// escapes).
func (r *Router) startIncarnationLocked(slot *shardSlot, image []ShardBucket) {
	shard, inc := slot.id, slot.incarnation
	in, stop := slot.in, slot.stop
	if r.cfg.Runner == nil {
		initial := make(map[bucketKey]*bucket, len(image))
		for _, cb := range image {
			initial[bucketKey{Window: cb.Window, Cell: cb.Cell}] = bucketFromCheckpoint(cb)
		}
		r.wg.Add(1)
		go r.runShard(shard, inc, in, stop, initial)
		return
	}
	run := ShardRun{
		Shard:       shard,
		Incarnation: inc,
		Params: ShardParams{
			WindowMS:   r.cfg.WindowMS,
			Dim:        r.cfg.Dim,
			WorkFactor: r.cfg.WorkFactor,
			LeaseTTL:   r.cfg.LeaseTTL,
		},
		Initial: image,
		In:      in,
		Stop:    stop,
		Emit: func(o ShardOut) bool {
			return r.emit(outFromWire(shard, o), stop)
		},
		Renew: func() bool {
			return r.leases.Renew(shard, inc, r.cfg.Clock.Now())
		},
		Redispatch: func() error {
			return r.redispatchFrom(shard, inc)
		},
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.cfg.Runner.RunShard(run)
	}()
}

// redispatchFrom is ShardRun.Redispatch: it redispatches the shard only if
// the named incarnation is still current, so a slow runner reporting an
// already-handled death cannot kill its own replacement.
func (r *Router) redispatchFrom(shard, incarnation int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrRouterClosed
	}
	if r.slots[shard].incarnation != incarnation {
		return nil // already superseded
	}
	r.supervisorRedispatches++
	r.redispatchLocked(shard, r.cfg.Clock.Now())
	return nil
}

// RedispatchShard declares a shard's current incarnation dead and hands its
// cell range to a replacement immediately, without waiting for the liveness
// lease to lapse — the supervisor path for a worker process observed to
// have exited. It counts toward both Redispatches and
// SupervisorRedispatches.
func (r *Router) RedispatchShard(shard int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrRouterClosed
	}
	if shard < 0 || shard >= r.cfg.Shards {
		return fmt.Errorf("stream: redispatch of unknown shard %d (have %d)", shard, r.cfg.Shards)
	}
	r.supervisorRedispatches++
	r.redispatchLocked(shard, r.cfg.Clock.Now())
	return nil
}

// runShard is one shard windower incarnation: a pure event-time accumulator
// over its cell range. It absorbs routed observations into buckets, seals
// and emits every bucket below the target on a close round, and answers
// sub-checkpoint requests with a deep-copied bucket image. All global state
// — watermark, partition, resolutions — lives in the router and merge
// stage, which is what makes shard death recoverable by pure replay.
func (r *Router) runShard(shard, incarnation int, in <-chan ShardMsg, stop <-chan struct{}, buckets map[bucketKey]*bucket) {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.LeaseTTL / 4)
	defer tick.Stop()
	xt := feature.Extractor{Dim: r.cfg.Dim, WorkFactor: r.cfg.WorkFactor}
	var xbuf feature.ExtractBuf
	step := 0
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			// Idle renewal: an empty queue must not read as death.
			if !r.leases.Renew(shard, incarnation, r.cfg.Clock.Now()) {
				return // superseded by a redispatch
			}
		case m := <-in:
			step++
			if r.cfg.Faults != nil {
				f := r.cfg.Faults.ShardFault(shard, incarnation, step)
				if f.Stall > 0 {
					t := time.NewTimer(f.Stall)
					select {
					case <-t.C:
					case <-stop:
						t.Stop()
						return
					}
				}
				if f.Kill {
					r.kills.Add(1)
					return // silent death; the lease lapses
				}
			}
			switch m.Kind {
			case ShardMsgObs:
				k := bucketKey{Window: int(m.Obs.TS / r.cfg.WindowMS), Cell: m.Obs.Cell}
				b := buckets[k]
				if b == nil {
					b = newBucket()
					buckets[k] = b
				}
				b.absorb(m.Obs)
			case ShardMsgClose:
				var keys []bucketKey
				for k := range buckets {
					if k.Window < m.Target {
						keys = append(keys, k)
					}
				}
				sortBucketKeys(keys)
				sealed := make([]sealedScenario, 0, len(keys))
				for _, k := range keys {
					esc, vsc := sealBucket(k, buckets[k])
					sealed = append(sealed, sealedScenario{key: k, esc: esc, vsc: vsc, feats: extractSealed(xt, vsc, &xbuf)})
					delete(buckets, k)
				}
				out := shardOut{shard: shard, kind: ShardOutRound, round: m.Round, target: m.Target, maxTS: m.MaxTS, sealed: sealed}
				if !r.emit(out, stop) {
					return
				}
			case ShardMsgSnap:
				var keys []bucketKey
				for k := range buckets {
					keys = append(keys, k)
				}
				sortBucketKeys(keys)
				snap := make([]ShardBucket, 0, len(keys))
				for _, k := range keys {
					snap = append(snap, bucketToCheckpoint(k, buckets[k]))
				}
				if !r.emit(shardOut{shard: shard, kind: ShardOutSnap, snapPos: m.Pos, snapshot: snap}, stop) {
					return
				}
			}
			if step%renewEveryMsgs == 0 {
				if !r.leases.Renew(shard, incarnation, r.cfg.Clock.Now()) {
					return
				}
			}
		}
	}
}

// extractSealed extracts a sealed V-Scenario's features on the shard
// goroutine — the visual-processing cost that dominates window closure, paid
// here in parallel across shards instead of serially in the merge stage
// (which primes its filter cache with the result). The extractor is a pure
// function of the patch bytes, so shard-side extraction is bit-identical to
// the merge-side lazy path. On any failure it returns nil and the merge-side
// filter re-extracts lazily, surfacing the identical error at Match time.
func extractSealed(xt feature.Extractor, vsc *scenario.VScenario, buf *feature.ExtractBuf) *feature.Matrix {
	if vsc == nil || len(vsc.Detections) == 0 {
		return nil
	}
	m, err := feature.NewMatrix(xt.Dim, len(vsc.Detections))
	if err != nil {
		return nil
	}
	for i := range vsc.Detections {
		if err := xt.ExtractIntoBuf(vsc.Detections[i].Patch, m.Row(i), buf); err != nil {
			return nil
		}
	}
	return m
}

// emit delivers one shard emission to the merge stage, abandoning it if the
// incarnation is stopped first (the replacement re-emits it from replay).
func (r *Router) emit(m shardOut, stop <-chan struct{}) bool {
	select {
	case r.out <- m:
		return true
	case <-stop:
		return false
	}
}

// runMerger is the merge stage: it collects each round's batches from all
// shards, concatenates and re-sorts them into global ascending (window,
// cell) order — per-shard batches are already sorted, and shards partition
// cells, so this reproduces exactly the close order the unsharded engine
// uses — and folds them into the merged engine. Rounds fold strictly in
// issue order; duplicate emissions from redispatch replays are dropped by
// round number, and stale sub-checkpoints by position.
func (r *Router) runMerger() {
	defer close(r.mergerDone)
	shards := r.cfg.Shards
	type roundBatch struct {
		have    int
		batches [][]sealedScenario
		target  int
		maxTS   int64
	}
	nextRound := 1
	pending := make(map[int]*roundBatch)
	lastRound := make([]int, shards)
	lastSnap := make([]int64, shards)
	for m := range r.out {
		switch m.kind {
		case ShardOutSnap:
			if m.snapPos <= lastSnap[m.shard] {
				continue // stale re-emission from a superseded incarnation
			}
			lastSnap[m.shard] = m.snapPos
			r.snapMu.Lock()
			r.acks[m.shard] = snapAck{pos: m.snapPos, buckets: m.snapshot}
			r.snapMu.Unlock()
		case ShardOutRound:
			if m.round <= lastRound[m.shard] {
				continue // duplicate from a redispatch replay
			}
			if m.round != lastRound[m.shard]+1 {
				r.setErr(fmt.Errorf("stream: shard %d jumped from round %d to %d", m.shard, lastRound[m.shard], m.round))
				continue
			}
			lastRound[m.shard] = m.round
			rb := pending[m.round]
			if rb == nil {
				rb = &roundBatch{batches: make([][]sealedScenario, shards)}
				pending[m.round] = rb
			}
			rb.batches[m.shard] = m.sealed
			rb.target, rb.maxTS = m.target, m.maxTS
			rb.have++
			for {
				ready := pending[nextRound]
				if ready == nil || ready.have < shards {
					break
				}
				delete(pending, nextRound)
				r.fold(ready.batches, ready.target, ready.maxTS)
				r.foldMu.Lock()
				r.foldedRound = nextRound
				r.foldMu.Unlock()
				nextRound++
			}
		}
	}
}

// fold merges one complete round into the global engine.
func (r *Router) fold(batches [][]sealedScenario, target int, maxTS int64) {
	if r.errState() != nil {
		return // poisoned: keep draining so shards never block, but stop folding
	}
	n := 0
	for _, b := range batches {
		n += len(b)
	}
	all := make([]sealedScenario, 0, n)
	for _, b := range batches {
		all = append(all, b...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].key.Window != all[j].key.Window {
			return all[i].key.Window < all[j].key.Window
		}
		return all[i].key.Cell < all[j].key.Cell
	})
	seq, resolved, err := r.merged.applyRound(all, target, maxTS)
	if err != nil {
		r.setErr(err)
		return
	}
	r.seqGauge.Store(int64(seq))
	r.resolvedGauge.Store(int64(resolved))
}

// setErr records the first error; later operations return it.
func (r *Router) setErr(err error) {
	r.foldMu.Lock()
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.foldMu.Unlock()
}

// errState returns the sticky first error, if any.
func (r *Router) errState() error {
	r.foldMu.Lock()
	defer r.foldMu.Unlock()
	return r.firstErr
}

// progress reads the merge stage's fold cursor.
func (r *Router) progress() (round int, err error) {
	r.foldMu.Lock()
	defer r.foldMu.Unlock()
	return r.foldedRound, r.firstErr
}

// awaitRound blocks until the merge stage has folded the given round,
// running the failure detector while it waits so a dead shard cannot stall
// the barrier: its redispatched replacement re-emits the missing batch.
func (r *Router) awaitRound(round int) error {
	for {
		folded, err := r.progress()
		if err != nil {
			return err
		}
		if folded >= round {
			return nil
		}
		r.mu.Lock()
		r.redispatchExpiredLocked()
		r.mu.Unlock()
		time.Sleep(sendRetryDelay)
	}
}

// Flush closes every open bucket regardless of the watermark — the
// end-of-log signal — waits for the merge stage to fold the closure, and
// returns once the final resolution sweep has run, mirroring Engine.Flush.
func (r *Router) Flush() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRouterClosed
	}
	if err := r.errState(); err != nil {
		r.mu.Unlock()
		return err
	}
	r.issueCloseLocked(r.flushTargetLocked())
	round := r.round
	r.mu.Unlock()
	if err := r.awaitRound(round); err != nil {
		return err
	}
	r.mu.Lock()
	r.publishGaugesLocked()
	r.mu.Unlock()
	return nil
}

// flushTargetLocked computes the flush close target: one past the highest
// open window, or the current close point when nothing is open — the same
// bound Engine.flushLocked uses. Callers hold r.mu.
func (r *Router) flushTargetLocked() int {
	maxWin := r.minOpen
	var wins []int
	for w := range r.openPerWin {
		wins = append(wins, w)
	}
	sort.Ints(wins)
	if n := len(wins); n > 0 && wins[n-1]+1 > maxWin {
		maxWin = wins[n-1] + 1
	}
	return maxWin
}

// Finalize flushes the stream and runs the authoritative batch match over
// the merged store — Engine.Finalize on the merge stage's engine, including
// its divergence cross-check. The returned report's Fingerprint equals both
// the unsharded stream replay's and the batch SS fingerprint.
func (r *Router) Finalize(ctx context.Context) (*core.Report, error) {
	if err := r.Flush(); err != nil {
		return nil, err
	}
	return r.merged.Finalize(ctx)
}

// Close stops every shard windower and the merge stage and joins them. It
// is idempotent; the router is unusable afterwards.
func (r *Router) Close() error {
	r.closeOnce.Do(func() {
		r.mu.Lock()
		r.closed = true
		for i := range r.slots {
			close(r.slots[i].stop)
		}
		r.mu.Unlock()
		r.wg.Wait()
		close(r.out)
		<-r.mergerDone
	})
	return nil
}

// Subscribe returns the resolutions emitted so far plus a channel of future
// ones, delegating to the merged engine. The returned cancel must be called
// once.
func (r *Router) Subscribe() (backlog []Resolution, ch <-chan Resolution, cancel func()) {
	return r.merged.Subscribe()
}

// Resolutions returns a copy of every resolution emitted so far.
func (r *Router) Resolutions() []Resolution {
	return r.merged.Resolutions()
}

// Ingested returns how many observations Ingest has consumed (accepted or
// dropped) — the resume offset a restored consumer skips to in the log.
func (r *Router) Ingested() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ingested
}

// LateDropped returns how many observations arrived after their window
// closed and were dropped.
func (r *Router) LateDropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lateDropped
}

// OpenWindows returns how many distinct windows currently have open buckets.
func (r *Router) OpenWindows() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.openPerWin)
}

// Watermark returns the current event-time watermark and whether any event
// has been observed yet.
func (r *Router) Watermark() (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.maxTS < 0 {
		return 0, false
	}
	return r.maxTS - r.cfg.LatenessMS, true
}

// SpillStats snapshots the out-of-core activity of the merge stage's engine
// — the only place sharded streaming holds (and so evicts) sealed state.
func (r *Router) SpillStats() spill.Snapshot {
	return r.merged.SpillStats()
}

// Stats snapshots the router's fault-handling counters.
func (r *Router) Stats() RouterStats {
	r.mu.Lock()
	red, sup := r.redispatches, r.supervisorRedispatches
	r.mu.Unlock()
	return RouterStats{
		Shards:                 r.cfg.Shards,
		Redispatches:           red,
		SupervisorRedispatches: sup,
		Kills:                  r.kills.Load(),
		Leases:                 r.leases.Stats(),
	}
}

// publishGaugesLocked pushes the stream and per-shard gauges. Callers hold
// r.mu.
func (r *Router) publishGaugesLocked() {
	if r.cfg.Metrics == nil {
		return
	}
	lag := int64(0)
	if r.maxTS >= 0 {
		lag = r.cfg.Clock.Now().UnixMilli() - (r.maxTS - r.cfg.LatenessMS)
	}
	m := map[string]int64{
		"stream_open_windows":                  int64(len(r.openPerWin)),
		"stream_watermark_lag_ms":              lag,
		"stream_pending_eids":                  int64(len(r.cfg.Targets)) - r.resolvedGauge.Load(),
		"stream_resolutions_emitted":           r.seqGauge.Load(),
		"stream_late_dropped":                  r.lateDropped,
		"stream_shards":                        int64(r.cfg.Shards),
		"stream_shard_redispatches":            r.redispatches,
		"stream_shard_supervisor_redispatches": r.supervisorRedispatches,
	}
	for i := range r.slots {
		m[r.slots[i].gaugeName] = r.slots[i].routed
	}
	// Eviction happens entirely in the merged engine (shard windowers are
	// store-less bucket accumulators), so its spill stats are the router's.
	// spillStats is set once at engine construction and the counters are
	// atomic, so reading without r.merged.mu is safe.
	if r.merged.spillStats != nil {
		addSpillGauges(m, r.merged.spillStats.Snapshot())
	}
	r.cfg.Metrics.SetMany(m)
}

// sortCheckpointBuckets orders bucket images ascending by (window, cell) —
// the canonical sub-checkpoint order.
func sortCheckpointBuckets(buckets []ShardBucket) {
	sort.Slice(buckets, func(i, j int) bool {
		if buckets[i].Window != buckets[j].Window {
			return buckets[i].Window < buckets[j].Window
		}
		return buckets[i].Cell < buckets[j].Cell
	})
}

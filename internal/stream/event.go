// Package stream is the online ingestion and incremental-matching subsystem:
// raw timestamped E/V observations are folded into EV-Scenarios per
// (cell, window) by an event-time windower, each closed scenario refines a
// live partition incrementally, and EIDs whose set becomes a singleton are
// resolved early through vfilter. Replaying a complete observation log and
// finalizing produces a report whose Fingerprint equals the batch SS run
// under core.ScanInOrder — the equivalence DESIGN.md §10 argues and the
// golden tests pin, including across checkpoint/restore crash schedules.
package stream

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"evmatching/internal/dataset"
	"evmatching/internal/feature"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// LogVersion is the observation-log format version this package writes.
const LogVersion = 1

// ErrBadObservation reports a malformed observation.
var ErrBadObservation = errors.New("stream: bad observation")

// ErrBadLog reports a malformed observation log.
var ErrBadLog = errors.New("stream: bad observation log")

// Kind tags an observation as electronic or visual.
type Kind uint8

// Observation kinds.
const (
	// KindE is an electronic sighting: one EID observed in a cell.
	KindE Kind = iota + 1
	// KindV is a visual sighting: one detection captured in a cell.
	KindV
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindE:
		return "E"
	case KindV:
		return "V"
	default:
		return "invalid"
	}
}

// MarshalJSON encodes the kind as "E" or "V".
func (k Kind) MarshalJSON() ([]byte, error) {
	switch k {
	case KindE, KindV:
		return json.Marshal(k.String())
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrBadObservation, uint8(k))
	}
}

// UnmarshalJSON decodes "E" or "V".
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "E":
		*k = KindE
	case "V":
		*k = KindV
	default:
		return fmt.Errorf("%w: kind %q", ErrBadObservation, s)
	}
	return nil
}

// Observation is one raw timestamped sighting, the unit of stream ingestion.
// An E observation carries EID and Attr (scenario.AttrInclusive or
// scenario.AttrVague, serialized as 1 or 2); a V observation carries VID,
// Patch, and the ground-truth Person index.
type Observation struct {
	// TS is the event time in milliseconds; the window index is TS divided
	// by the log's window length. Must be non-negative.
	TS   int64      `json:"ts"`
	Kind Kind       `json:"kind"`
	Cell geo.CellID `json:"cell"`

	EID  ids.EID       `json:"eid,omitempty"`
	Attr scenario.Attr `json:"attr,omitempty"`

	VID    ids.VID        `json:"vid,omitempty"`
	Person int            `json:"person"`
	Patch  *feature.Patch `json:"patch,omitempty"`
}

// Validate reports whether the observation is well-formed.
func (o Observation) Validate() error {
	if o.TS < 0 {
		return fmt.Errorf("%w: negative ts %d", ErrBadObservation, o.TS)
	}
	if o.Cell < 0 {
		return fmt.Errorf("%w: cell %d", ErrBadObservation, o.Cell)
	}
	switch o.Kind {
	case KindE:
		if o.EID == ids.None {
			return fmt.Errorf("%w: E observation without EID", ErrBadObservation)
		}
		if o.Attr != scenario.AttrInclusive && o.Attr != scenario.AttrVague {
			return fmt.Errorf("%w: E observation attr %d", ErrBadObservation, o.Attr)
		}
	case KindV:
		if o.VID == ids.NoVID {
			return fmt.Errorf("%w: V observation without VID", ErrBadObservation)
		}
		if o.Patch == nil || len(o.Patch.Pix) == 0 || len(o.Patch.Pix) != o.Patch.W*o.Patch.H {
			return fmt.Errorf("%w: V observation with malformed patch", ErrBadObservation)
		}
	default:
		return fmt.Errorf("%w: kind %d", ErrBadObservation, uint8(o.Kind))
	}
	return nil
}

// Header is the observation log's first line: the parameters a consumer must
// agree on to window the events identically.
type Header struct {
	Version  int   `json:"version"`
	WindowMS int64 `json:"windowMs"`
	// Dim is the feature descriptor dimensionality of the patches.
	Dim int `json:"dim"`
}

// Validate reports whether the header is usable.
func (h Header) Validate() error {
	if h.Version != LogVersion {
		return fmt.Errorf("%w: version %d (want %d)", ErrBadLog, h.Version, LogVersion)
	}
	if h.WindowMS <= 0 {
		return fmt.Errorf("%w: windowMs %d", ErrBadLog, h.WindowMS)
	}
	if h.Dim < 2 {
		return fmt.Errorf("%w: dim %d", ErrBadLog, h.Dim)
	}
	return nil
}

// headerLine is the wire form of the header, tagged so a reader can tell it
// from an observation line.
type headerLine struct {
	Kind string `json:"kind"`
	Header
}

// WriteLog writes a complete observation log: one header line, then one JSON
// line per observation in the given order.
func WriteLog(w io.Writer, h Header, obs []Observation) error {
	if err := h.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(headerLine{Kind: "header", Header: h}); err != nil {
		return fmt.Errorf("stream: write header: %w", err)
	}
	for i, o := range obs {
		if err := o.Validate(); err != nil {
			return fmt.Errorf("stream: observation %d: %w", i, err)
		}
		if err := enc.Encode(o); err != nil {
			return fmt.Errorf("stream: write observation %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// LogReader decodes an observation log line by line, so a replayer can pace
// or resume without materializing the whole log.
type LogReader struct {
	sc   *bufio.Scanner
	hdr  Header
	line int
}

// NewLogReader wraps r and consumes the header line.
func NewLogReader(r io.Reader) (*LogReader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("stream: read header: %w", err)
		}
		return nil, fmt.Errorf("%w: empty log", ErrBadLog)
	}
	var hl headerLine
	if err := json.Unmarshal(sc.Bytes(), &hl); err != nil {
		return nil, fmt.Errorf("%w: header line: %w", ErrBadLog, err)
	}
	if hl.Kind != "header" {
		return nil, fmt.Errorf("%w: first line kind %q", ErrBadLog, hl.Kind)
	}
	if err := hl.Header.Validate(); err != nil {
		return nil, err
	}
	return &LogReader{sc: sc, hdr: hl.Header, line: 1}, nil
}

// Header returns the log's header.
func (lr *LogReader) Header() Header { return lr.hdr }

// Next returns the next observation, or io.EOF at the end of the log.
func (lr *LogReader) Next() (Observation, error) {
	if !lr.sc.Scan() {
		if err := lr.sc.Err(); err != nil {
			return Observation{}, fmt.Errorf("stream: read line %d: %w", lr.line+1, err)
		}
		return Observation{}, io.EOF
	}
	lr.line++
	var o Observation
	if err := json.Unmarshal(lr.sc.Bytes(), &o); err != nil {
		return Observation{}, fmt.Errorf("%w: line %d: %w", ErrBadLog, lr.line, err)
	}
	if err := o.Validate(); err != nil {
		return Observation{}, fmt.Errorf("stream: line %d: %w", lr.line, err)
	}
	return o, nil
}

// ReadLog decodes a complete observation log.
func ReadLog(r io.Reader) (Header, []Observation, error) {
	lr, err := NewLogReader(r)
	if err != nil {
		return Header{}, nil, err
	}
	var obs []Observation
	for {
		o, err := lr.Next()
		if errors.Is(err, io.EOF) {
			return lr.Header(), obs, nil
		}
		if err != nil {
			return Header{}, nil, err
		}
		obs = append(obs, o)
	}
}

// EventsFromDataset flattens a generated dataset into a time-ordered
// observation log: one E record per (scenario, EID) and one V record per
// detection, each stamped with a seeded timestamp inside its window. The
// flattening is deterministic in (ds, windowMS, seed). Replaying the result
// through an Engine with matching window length rebuilds the dataset's store
// exactly (DESIGN.md §10).
//
// The whole log is materialized in memory; at scale-preset sizes prefer
// WriteEventsLog, which emits the byte-identical log window by window.
func EventsFromDataset(ds *dataset.Dataset, windowMS int64, seed int64) (Header, []Observation, error) {
	var obs []Observation
	hdr, err := eachWindowEvents(ds, windowMS, seed, func(batch []Observation) error {
		obs = append(obs, batch...)
		return nil
	})
	if err != nil {
		return Header{}, nil, err
	}
	return hdr, obs, nil
}

// eachWindowEvents drives the flattening shared by EventsFromDataset and
// WriteEventsLog: per ascending window, the observations are drawn in store
// order (one seeded rng consumed across all windows) and stable-sorted by
// timestamp, then handed to emit. Window timestamp ranges
// [w·windowMS, (w+1)·windowMS) are disjoint and windows ascend, so the
// concatenation of the per-window sorts IS the globally stable-sorted log —
// which is why the streaming writer needs memory for only one window.
// The batch slice is reused across calls; emit must not retain it.
func eachWindowEvents(ds *dataset.Dataset, windowMS int64, seed int64, emit func([]Observation) error) (Header, error) {
	if ds == nil {
		return Header{}, errors.New("stream: nil dataset")
	}
	if windowMS <= 0 {
		return Header{}, fmt.Errorf("%w: windowMs %d", ErrBadLog, windowMS)
	}
	rng := rand.New(rand.NewSource(seed))
	var batch []Observation
	for _, w := range ds.Store.Windows() {
		if w < 0 {
			return Header{}, fmt.Errorf("%w: negative window %d", ErrBadLog, w)
		}
		base := int64(w) * windowMS
		batch = batch[:0]
		for _, id := range ds.Store.AtWindow(w) {
			esc := ds.Store.E(id)
			for _, e := range esc.SortedEIDs() {
				batch = append(batch, Observation{
					TS:   base + rng.Int63n(windowMS),
					Kind: KindE,
					Cell: esc.Cell,
					EID:  e,
					Attr: esc.EIDs[e],
				})
			}
			vsc := ds.Store.V(id)
			if vsc == nil {
				continue
			}
			for _, det := range vsc.Detections {
				p := det.Patch
				batch = append(batch, Observation{
					TS:     base + rng.Int63n(windowMS),
					Kind:   KindV,
					Cell:   vsc.Cell,
					VID:    det.VID,
					Person: det.TruePerson,
					Patch:  &p,
				})
			}
		}
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].TS < batch[j].TS })
		if err := emit(batch); err != nil {
			return Header{}, err
		}
	}
	return Header{Version: LogVersion, WindowMS: windowMS, Dim: ds.Config.DescriptorDim()}, nil
}

// WriteEventsLog streams the dataset's observation log to w without ever
// materializing more than one window of observations — the scale-preset path
// for `evgen -events`, byte-identical to WriteLog over EventsFromDataset
// (the equivalence test pins this). It returns the number of observations
// written.
func WriteEventsLog(w io.Writer, ds *dataset.Dataset, windowMS int64, seed int64) (int, error) {
	hdr := Header{Version: LogVersion, WindowMS: windowMS, Dim: 0}
	if ds != nil {
		hdr.Dim = ds.Config.DescriptorDim()
	}
	if err := hdr.Validate(); err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(headerLine{Kind: "header", Header: hdr}); err != nil {
		return 0, fmt.Errorf("stream: write header: %w", err)
	}
	total := 0
	if _, err := eachWindowEvents(ds, windowMS, seed, func(batch []Observation) error {
		for i := range batch {
			if err := batch[i].Validate(); err != nil {
				return fmt.Errorf("stream: observation %d: %w", total+i, err)
			}
			if err := enc.Encode(batch[i]); err != nil {
				return fmt.Errorf("stream: write observation %d: %w", total+i, err)
			}
		}
		total += len(batch)
		return nil
	}); err != nil {
		return 0, err
	}
	return total, bw.Flush()
}

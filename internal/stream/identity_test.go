package stream

import (
	"bytes"
	"fmt"
	"testing"

	"evmatching/internal/core"
)

// checkpointBytes serializes e and returns the raw checkpoint.
func checkpointBytes(t *testing.T, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	return buf.Bytes()
}

// TestCheckpointByteIdentity is the determinism property the gobdet analyzer
// guards statically, checked dynamically: at any cut point of the log,
// checkpoint → restore → re-checkpoint is byte-identical, and checkpointing
// the same engine twice is byte-identical. Any map-ordered or otherwise
// nondeterministic field in the checkpoint graph fails this within a few
// runs, because gob hits Go's randomized map iteration order.
func TestCheckpointByteIdentity(t *testing.T) {
	ds := testDataset(t, false)
	targets := ds.AllEIDs()[:8]
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	cfg := testConfig(ds, targets, core.ModeSerial)

	// Cut points: empty engine, mid-window interior cuts, and the full log.
	cuts := []int{0, len(obs) / 4, len(obs)/2 + 7, len(obs) - 1, len(obs)}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	next := 0
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut-%d", cut), func(t *testing.T) {
			for ; next < cut; next++ {
				if _, err := e.Ingest(obs[next]); err != nil {
					t.Fatalf("Ingest %d: %v", next, err)
				}
			}
			first := checkpointBytes(t, e)
			if second := checkpointBytes(t, e); !bytes.Equal(first, second) {
				t.Fatalf("two checkpoints of the same engine differ (len %d vs %d)", len(first), len(second))
			}
			restored, err := Restore(cfg, bytes.NewReader(first))
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if again := checkpointBytes(t, restored); !bytes.Equal(first, again) {
				t.Fatalf("re-checkpoint after restore differs (len %d vs %d)", len(first), len(again))
			}
			// Second generation: restore the re-checkpoint too, so drift
			// cannot hide as a stable-but-lossy first round trip.
			second, err := Restore(cfg, bytes.NewReader(first))
			if err != nil {
				t.Fatalf("second Restore: %v", err)
			}
			if again := checkpointBytes(t, second); !bytes.Equal(first, again) {
				t.Fatalf("second-generation checkpoint differs (len %d vs %d)", len(first), len(again))
			}
		})
	}
}

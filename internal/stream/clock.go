package stream

import "time"

// Clock is the wall-clock seam of the streaming subsystem. Event-time logic
// (windowing, watermarks, lateness) never consults it — it exists only for
// operational observability, currently the watermark-lag gauge. Tests inject
// a fake; production uses SystemClock. The evlint wallclock rule forbids any
// other wall-clock access in this package.
type Clock interface {
	// Now returns the current wall-clock time.
	Now() time.Time
}

// SystemClock is the real wall clock.
type SystemClock struct{}

// Now implements Clock.
func (SystemClock) Now() time.Time {
	//evlint:ignore wallclock the one sanctioned wall-clock access: the injected-clock seam itself
	return time.Now()
}

package stream

import (
	"context"
	"io"

	"evmatching/internal/core"
	"evmatching/internal/spill"
)

// Processor is the consumer surface shared by the unsharded Engine and the
// sharded Router: everything a replay driver or ingest server needs, without
// caring how windowing is distributed. Both implementations synchronize
// internally and are safe for concurrent use.
type Processor interface {
	// Ingest consumes one observation, reporting whether it was accepted
	// (late observations are dropped with a nil error).
	Ingest(Observation) (bool, error)
	// Ingested returns the number of observations consumed, accepted or not.
	Ingested() int64
	// LateDropped returns the number of late-dropped observations.
	LateDropped() int64
	// OpenWindows returns the number of event-time windows still open.
	OpenWindows() int
	// Watermark returns the event-time watermark and whether any event has
	// been observed yet.
	Watermark() (int64, bool)
	// Resolutions returns the resolutions emitted so far, in emission order.
	Resolutions() []Resolution
	// Subscribe returns the resolution backlog and a channel of future
	// emissions; cancel releases the subscription.
	Subscribe() (backlog []Resolution, ch <-chan Resolution, cancel func())
	// Flush closes every window that has received an observation, emitting
	// any resolutions that follow.
	Flush() error
	// Checkpoint serializes the full processor state for later restore.
	Checkpoint(w io.Writer) error
	// SpillStats snapshots the processor's out-of-core activity; all-zero
	// when Config.MemBudget is unset.
	SpillStats() spill.Snapshot
	// Finalize flushes every open window and runs the batch-equivalent final
	// match over the accumulated store.
	Finalize(ctx context.Context) (*core.Report, error)
}

var (
	_ Processor = (*Engine)(nil)
	_ Processor = (*Router)(nil)
)

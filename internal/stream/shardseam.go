package stream

import (
	"fmt"
	"time"

	"evmatching/internal/feature"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// This file is the shard seam: the exported types and pure windower through
// which a Router can drive shard windowers that live outside its own
// process. The in-process path (runShard) and the seam path compute the
// same function — ShardWindower.Step mirrors runShard's message handling
// statement for statement — so a remote shard's emissions are bit-identical
// to an in-process shard's, and the shard-invariance battery pins
// remote ≡ in-process ≡ unsharded ≡ batch.
//
// internal/shardrpc builds on this seam: its supervisor implements
// ShardRunner by proxying ShardRun over net/rpc to a worker process that
// hosts a ShardWindower, and falls back to RunShardInProcess when no worker
// can be had.

// ShardParams is the windowing/extraction slice of a RouterConfig that a
// shard windower needs — the full Config carries process-local state
// (Clock, Metrics, target sets) that must not cross the wire.
type ShardParams struct {
	// WindowMS is the event-time window width.
	WindowMS int64
	// Dim is the feature descriptor dimensionality.
	Dim int
	// WorkFactor scales the extraction work per patch.
	WorkFactor int
	// LeaseTTL is the shard liveness lease; runners derive their renewal
	// cadence from it.
	LeaseTTL time.Duration
}

// validate guards windower construction against hostile wire values: a zero
// window would divide by zero in the bucket assignment.
func (p ShardParams) validate() error {
	if p.WindowMS <= 0 {
		return fmt.Errorf("%w: shard window %dms", ErrBadConfig, p.WindowMS)
	}
	if p.Dim < 2 {
		return fmt.Errorf("%w: shard dim %d", ErrBadConfig, p.Dim)
	}
	if p.WorkFactor < 1 {
		return fmt.Errorf("%w: shard work factor %d", ErrBadConfig, p.WorkFactor)
	}
	return nil
}

// ShardSealed is one sealed (window, cell) closure in wire form: the
// EScenario's EID map flattened to a sorted slice (the same canonical form
// checkpoints use, so gob encoding is deterministic) and the extracted
// feature matrix flattened row-major. An empty Dets means the bucket sealed
// with no V side; an empty Feat means extraction was not performed (or
// failed) and the merge stage re-extracts lazily.
type ShardSealed struct {
	Window  int
	Cell    geo.CellID
	EIDs    []BucketEID
	Dets    []scenario.Detection
	FeatDim int
	Feat    []float64
}

// ShardOut is one shard emission in wire form: a round of sealed window
// closures, or a sub-checkpoint snapshot acknowledging a journal position.
type ShardOut struct {
	Kind ShardOutKind

	// Round/Target/MaxTS echo the close round (Kind == ShardOutRound).
	Round  int
	Target int
	MaxTS  int64
	Sealed []ShardSealed

	// SnapPos/Snapshot carry a sub-checkpoint (Kind == ShardOutSnap).
	SnapPos  int64
	Snapshot []ShardBucket
}

// sealedToWire flattens one sealed closure for the wire. The EID map is
// walked in sorted order and the feature matrix copied row-major, so two
// identical closures always serialize identically.
func sealedToWire(s sealedScenario) ShardSealed {
	w := ShardSealed{Window: s.key.Window, Cell: s.key.Cell}
	if s.esc != nil && len(s.esc.EIDs) > 0 {
		w.EIDs = make([]BucketEID, 0, len(s.esc.EIDs))
		for _, eid := range ids.SortedEIDKeys(s.esc.EIDs) {
			w.EIDs = append(w.EIDs, BucketEID{EID: eid, Attr: s.esc.EIDs[eid]})
		}
	}
	if s.vsc != nil && len(s.vsc.Detections) > 0 {
		w.Dets = append(make([]scenario.Detection, 0, len(s.vsc.Detections)), s.vsc.Detections...)
	}
	if s.feats != nil {
		w.FeatDim = s.feats.Dim()
		w.Feat = make([]float64, 0, s.feats.Dim()*s.feats.Rows())
		for i := 0; i < s.feats.Rows(); i++ {
			w.Feat = append(w.Feat, s.feats.Row(i)...)
		}
	}
	return w
}

// toSealed reconstructs the merge-stage form of a wire closure. A feature
// payload whose shape does not match the detections is dropped rather than
// trusted — the merge-side filter then re-extracts lazily, which computes
// the identical matrix, so a mangled (or hostile) payload can cost time but
// never correctness.
func (w ShardSealed) toSealed() sealedScenario {
	k := bucketKey{Window: w.Window, Cell: w.Cell}
	esc := &scenario.EScenario{Cell: w.Cell, Window: w.Window, EIDs: make(map[ids.EID]scenario.Attr, len(w.EIDs))}
	for _, ea := range w.EIDs {
		esc.EIDs[ea.EID] = ea.Attr
	}
	s := sealedScenario{key: k, esc: esc}
	if len(w.Dets) == 0 {
		return s
	}
	dets := append(make([]scenario.Detection, 0, len(w.Dets)), w.Dets...)
	s.vsc = &scenario.VScenario{Cell: w.Cell, Window: w.Window, Detections: dets}
	if w.FeatDim > 0 && len(w.Feat) == w.FeatDim*len(dets) {
		if m, err := feature.NewMatrix(w.FeatDim, len(dets)); err == nil {
			for i := range dets {
				copy(m.Row(i), w.Feat[i*w.FeatDim:(i+1)*w.FeatDim])
			}
			s.feats = m
		}
	}
	return s
}

// outFromWire adapts a runner emission to the merge-stage channel form.
func outFromWire(shard int, o ShardOut) shardOut {
	out := shardOut{
		shard:    shard,
		kind:     o.Kind,
		round:    o.Round,
		target:   o.Target,
		maxTS:    o.MaxTS,
		snapPos:  o.SnapPos,
		snapshot: o.Snapshot,
	}
	if o.Kind == ShardOutRound {
		out.sealed = make([]sealedScenario, 0, len(o.Sealed))
		for _, s := range o.Sealed {
			out.sealed = append(out.sealed, s.toSealed())
		}
	}
	return out
}

// ShardWindower is one shard's pure event-time accumulator behind the seam:
// the same bucket/seal/extract/snapshot logic runShard runs inline, exposed
// as a step function a worker process can host. It is not safe for
// concurrent use; the caller serializes Step.
type ShardWindower struct {
	p       ShardParams
	buckets map[bucketKey]*bucket
	xt      feature.Extractor
	xbuf    feature.ExtractBuf
}

// NewShardWindower builds a windower restored from a sub-checkpoint image
// (nil for a fresh shard).
func NewShardWindower(p ShardParams, initial []ShardBucket) (*ShardWindower, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	w := &ShardWindower{
		p:       p,
		buckets: make(map[bucketKey]*bucket, len(initial)),
		xt:      feature.Extractor{Dim: p.Dim, WorkFactor: p.WorkFactor},
	}
	for _, cb := range initial {
		w.buckets[bucketKey{Window: cb.Window, Cell: cb.Cell}] = bucketFromCheckpoint(cb)
	}
	return w, nil
}

// Step applies one journalled message and returns the emission it produces,
// if any. Observations absorb into their bucket (nil emission); close
// rounds seal every bucket below the target in ascending (window, cell)
// order with features extracted shard-side; snapshot requests return a
// deep-copied bucket image stamped with the journal position. Hostile
// input — an invalid observation or unknown kind — errors without
// panicking; the windower's state is unchanged by a failed Step.
func (w *ShardWindower) Step(m ShardMsg) (*ShardOut, error) {
	switch m.Kind {
	case ShardMsgObs:
		if err := m.Obs.Validate(); err != nil {
			return nil, err
		}
		k := bucketKey{Window: int(m.Obs.TS / w.p.WindowMS), Cell: m.Obs.Cell}
		b := w.buckets[k]
		if b == nil {
			b = newBucket()
			w.buckets[k] = b
		}
		b.absorb(m.Obs)
		return nil, nil
	case ShardMsgClose:
		var keys []bucketKey
		for k := range w.buckets {
			if k.Window < m.Target {
				keys = append(keys, k)
			}
		}
		sortBucketKeys(keys)
		sealed := make([]ShardSealed, 0, len(keys))
		for _, k := range keys {
			esc, vsc := sealBucket(k, w.buckets[k])
			sealed = append(sealed, sealedToWire(sealedScenario{key: k, esc: esc, vsc: vsc, feats: extractSealed(w.xt, vsc, &w.xbuf)}))
			delete(w.buckets, k)
		}
		return &ShardOut{Kind: ShardOutRound, Round: m.Round, Target: m.Target, MaxTS: m.MaxTS, Sealed: sealed}, nil
	case ShardMsgSnap:
		keys := make([]bucketKey, 0, len(w.buckets))
		for k := range w.buckets {
			keys = append(keys, k)
		}
		sortBucketKeys(keys)
		snap := make([]ShardBucket, 0, len(keys))
		for _, k := range keys {
			snap = append(snap, bucketToCheckpoint(k, w.buckets[k]))
		}
		return &ShardOut{Kind: ShardOutSnap, SnapPos: m.Pos, Snapshot: snap}, nil
	}
	return nil, fmt.Errorf("stream: unknown shard message kind %d", m.Kind)
}

// ShardRun is one shard incarnation handed to a ShardRunner: the restore
// image, the message stream, and the callbacks wiring the runner back into
// the router's emission, lease, and failure-detection machinery. In, Stop,
// Emit, and Renew are scoped to this incarnation — once the router
// redispatches the shard, Renew returns false and Emit's deliveries are
// deduplicated away, so a stale runner can wind down at its leisure.
type ShardRun struct {
	// Shard and Incarnation identify the run.
	Shard       int
	Incarnation int
	// Params configures the windower.
	Params ShardParams
	// Initial is the sub-checkpoint image to restore from (nil = fresh).
	Initial []ShardBucket
	// In carries the journalled message stream.
	In <-chan ShardMsg
	// Stop closes when the incarnation is superseded or the router closes.
	Stop <-chan struct{}
	// Emit delivers one emission to the merge stage. A false return means
	// the incarnation was stopped; the runner should return promptly.
	Emit func(ShardOut) bool
	// Renew renews the shard's liveness lease. A false return means the
	// lease was superseded; the runner should return promptly.
	Renew func() bool
	// Redispatch asks the router to declare this incarnation dead now and
	// hand the shard to a replacement — the supervisor calls it the moment
	// a worker process dies, instead of waiting out the lease. It is a
	// no-op if the incarnation was already superseded.
	Redispatch func() error
}

// ShardRunner runs shard incarnations on behalf of a Router. RunShard is
// called on a fresh goroutine per incarnation and must not return until the
// run is stopped, superseded, or finished failing over (it may call
// run.Redispatch and then return). internal/shardrpc's Supervisor is the
// cross-process implementation.
type ShardRunner interface {
	RunShard(run ShardRun)
}

// RunShardInProcess drives a ShardRun on a local ShardWindower — the
// fallback path a supervisor uses when no worker process can be spawned,
// and the reference implementation of the seam's contract. It matches
// runShard's lease cadence: a ticker renewal while idle, plus a renewal
// every renewEveryMsgs messages while busy.
func RunShardInProcess(run ShardRun) {
	w, err := NewShardWindower(run.Params, run.Initial)
	if err != nil {
		return
	}
	ttl := run.Params.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultShardLeaseTTL
	}
	tick := time.NewTicker(ttl / 4)
	defer tick.Stop()
	step := 0
	for {
		select {
		case <-run.Stop:
			return
		case <-tick.C:
			if run.Renew != nil && !run.Renew() {
				return
			}
		case m := <-run.In:
			step++
			out, err := w.Step(m)
			if err != nil {
				// The router never journals an invalid message, so an error
				// here means the run itself is corrupt; stand down and let
				// the lease-based failure detector redispatch.
				return
			}
			if out != nil && !run.Emit(*out) {
				return
			}
			if step%renewEveryMsgs == 0 && run.Renew != nil && !run.Renew() {
				return
			}
		}
	}
}

package stream

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"evmatching/internal/core"
)

// boundedShuffle reorders observations by the key ts + u, with u drawn
// uniformly from [0, maxDisp) per observation and ties broken by original
// position. Any two observations swap order only if their timestamps differ
// by less than maxDisp — the bounded-displacement arrival model under which
// allowed lateness guarantees no drops (DESIGN.md §10).
func boundedShuffle(obs []Observation, maxDisp int64, rng *rand.Rand) []Observation {
	type keyed struct {
		key int64
		idx int
	}
	keys := make([]keyed, len(obs))
	for i := range obs {
		keys[i] = keyed{key: obs[i].TS + rng.Int63n(maxDisp), idx: i}
	}
	sort.SliceStable(keys, func(i, j int) bool { return keys[i].key < keys[j].key })
	out := make([]Observation, len(obs))
	for i, k := range keys {
		out[i] = obs[k.idx]
	}
	return out
}

// TestPermutationInvariance is the subsystem's ordering property: any
// arrival permutation whose displacement stays within the allowed lateness
// yields the exact same final fingerprint as the in-order replay, with no
// observation dropped as late. Bucket merging is order-independent and
// windows close only at the watermark, so the closed-scenario sequence — and
// with it everything downstream — is invariant.
func TestPermutationInvariance(t *testing.T) {
	ds := testDataset(t, true)
	targets := ds.AllEIDs()[:12]
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	cfg := testConfig(ds, targets, core.ModeSerial)
	want := replayFingerprint(t, cfg, obs)
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("shuffle-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			shuffled := boundedShuffle(obs, testLatenessMS, rng)
			e, err := NewEngine(cfg)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			for i, o := range shuffled {
				accepted, err := e.Ingest(o)
				if err != nil {
					t.Fatalf("Ingest %d: %v", i, err)
				}
				if !accepted {
					t.Fatalf("Ingest %d: observation within the lateness bound dropped (ts %d)", i, o.TS)
				}
			}
			if got := e.LateDropped(); got != 0 {
				t.Fatalf("LateDropped = %d under bounded displacement", got)
			}
			rep, err := e.Finalize(context.Background())
			if err != nil {
				t.Fatalf("Finalize: %v", err)
			}
			if got := rep.Fingerprint(); got != want {
				t.Fatalf("shuffled replay diverged from in-order replay:\n--- in-order\n%s\n--- shuffled\n%s", want, got)
			}
		})
	}
}

// TestDuplicateInvariance: replaying every observation twice (an at-least-
// once delivery upstream) must not change the result — E merges are
// idempotent and detections deduplicate by full identity.
func TestDuplicateInvariance(t *testing.T) {
	ds := testDataset(t, true)
	targets := ds.AllEIDs()[:12]
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	cfg := testConfig(ds, targets, core.ModeSerial)
	want := replayFingerprint(t, cfg, obs)
	doubled := make([]Observation, 0, 2*len(obs))
	for _, o := range obs {
		doubled = append(doubled, o, o)
	}
	if got := replayFingerprint(t, cfg, doubled); got != want {
		t.Fatalf("duplicated replay diverged:\n--- once\n%s\n--- doubled\n%s", want, got)
	}
}

// TestLateDropInvariance: an observation arriving after its window closed is
// dropped and counted, and — when it duplicates data already ingested — the
// final result is unaffected.
func TestLateDropInvariance(t *testing.T) {
	ds := testDataset(t, true)
	targets := ds.AllEIDs()[:12]
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	cfg := testConfig(ds, targets, core.ModeSerial)
	want := replayFingerprint(t, cfg, obs)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	lates := 0
	for i, o := range obs {
		if _, err := e.Ingest(o); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
		// Periodically re-deliver the very first observation; once its
		// window has closed, the replay must be rejected as late.
		if i%500 == 499 {
			accepted, err := e.Ingest(obs[0])
			if err != nil {
				t.Fatalf("late re-delivery: %v", err)
			}
			if !accepted {
				lates++
			}
		}
	}
	if lates == 0 {
		t.Fatal("no re-delivery was ever late; test exercises nothing")
	}
	if got := e.LateDropped(); got != int64(lates) {
		t.Fatalf("LateDropped = %d, want %d", got, lates)
	}
	rep, err := e.Finalize(context.Background())
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if got := rep.Fingerprint(); got != want {
		t.Fatalf("late drops corrupted the result:\n--- clean\n%s\n--- with lates\n%s", want, got)
	}
}

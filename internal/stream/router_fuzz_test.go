package stream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"evmatching/internal/feature"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// fuzzMaxLines bounds how many JSONL lines one fuzz execution replays, so a
// large input cannot turn a single exec into a long-running replay.
const fuzzMaxLines = 256

// FuzzRouterObservation feeds hostile observation JSONL through two
// identically configured routers and requires them to behave identically:
// same accept/drop/error decision per line, same counters, and byte-equal
// checkpoints afterwards. Alongside the never-panic guarantee, this pins the
// property sharding correctness rests on — routing and the late-drop
// decision are deterministic functions of the observation, never of
// goroutine interleaving — and that out-of-range cells, reordered
// timestamps, and duplicate deliveries are all either rejected or routed to
// a stable in-range shard.
func FuzzRouterObservation(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	vec := make(feature.Vector, 8)
	for i := range vec {
		vec[i] = rng.Float64()
	}
	patch := feature.EncodePatch(vec, 1, rng)
	mustLine := func(o Observation) []byte {
		b, err := json.Marshal(o)
		if err != nil {
			f.Fatalf("marshal seed: %v", err)
		}
		return b
	}
	eLine := mustLine(Observation{TS: 100, Kind: KindE, Cell: 3, EID: "e7", Attr: scenario.AttrInclusive})
	vLine := mustLine(Observation{TS: 2_400, Kind: KindV, Cell: 5, VID: "v9", Person: 2, Patch: &patch})
	late := mustLine(Observation{TS: 0, Kind: KindE, Cell: 1, EID: "e2", Attr: scenario.AttrVague})

	f.Add(append(append(append([]byte{}, eLine...), '\n'), vLine...), byte(3))
	f.Add(bytes.Join([][]byte{vLine, eLine, eLine, late}, []byte("\n")), byte(7))
	f.Add([]byte(`{"ts":-5,"kind":1,"cell":2,"eid":"e1","attr":1}`), byte(1))
	f.Add([]byte(`{"ts":10,"kind":1,"cell":-44,"eid":"e1","attr":1}`), byte(4))
	f.Add([]byte(`{"ts":10,"kind":2,"cell":9007199254740993,"vid":"v1","patch":{"w":-3,"h":-7,"pix":"AAAA"}}`), byte(2))
	f.Add([]byte("{\"kind\":\"header\",\"version\":1}\nnot json at all\n\x00\xff"), byte(5))
	f.Add([]byte(`{"ts":9223372036854775807,"kind":1,"cell":0,"eid":"e3","attr":2}`), byte(6))

	f.Fuzz(func(t *testing.T, data []byte, nshards byte) {
		shards := int(nshards%8) + 1
		mk := func() *Router {
			r, err := NewRouter(RouterConfig{
				Config: Config{
					Targets:    []ids.EID{"e2", "e7", "t1"},
					WindowMS:   1_000,
					LatenessMS: 250,
					Dim:        8,
					Seed:       1,
				},
				Shards:             shards,
				QueueLen:           16,
				SubCheckpointEvery: 32,
			})
			if err != nil {
				t.Fatalf("NewRouter: %v", err)
			}
			return r
		}
		r1, r2 := mk(), mk()
		defer r1.Close()
		defer r2.Close()

		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		for lines := 0; lines < fuzzMaxLines && sc.Scan(); lines++ {
			var o Observation
			if err := json.Unmarshal(sc.Bytes(), &o); err != nil {
				continue
			}
			if o.Cell >= 0 {
				s := ShardOf(o.Cell, shards)
				if s < 0 || s >= shards {
					t.Fatalf("ShardOf(%d, %d) = %d out of range", o.Cell, shards, s)
				}
			}
			acc1, err1 := r1.Ingest(o)
			acc2, err2 := r2.Ingest(o)
			if acc1 != acc2 || (err1 == nil) != (err2 == nil) {
				t.Fatalf("nondeterministic ingest: (%v, %v) vs (%v, %v) for %s", acc1, err1, acc2, err2, sc.Bytes())
			}
		}
		if a, b := r1.Ingested(), r2.Ingested(); a != b {
			t.Fatalf("Ingested diverged: %d vs %d", a, b)
		}
		if a, b := r1.LateDropped(), r2.LateDropped(); a != b {
			t.Fatalf("LateDropped diverged: %d vs %d", a, b)
		}
		var cp1, cp2 bytes.Buffer
		errA, errB := r1.Checkpoint(&cp1), r2.Checkpoint(&cp2)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("nondeterministic checkpoint: %v vs %v", errA, errB)
		}
		if errA == nil && !bytes.Equal(cp1.Bytes(), cp2.Bytes()) {
			t.Fatal("identical ingest produced different checkpoints")
		}
	})
}

package stream_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"evmatching/internal/chaos"
	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/ids"
	"evmatching/internal/mrtest"
	"evmatching/internal/stream"
)

// stepClock is an auto-advancing deterministic clock: every Now() moves time
// forward by a fixed step. The router's failure detector and the shards'
// lease renewals both read it, so dead-shard detection makes progress at a
// rate set by the test, not by the wall clock.
type stepClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

// chaosWorkload builds the shared practical dataset, its observation log,
// and the base engine config for the shard chaos schedules.
func chaosWorkload(t *testing.T) (stream.Config, []stream.Observation, []ids.EID) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumPersons = 60
	cfg.Density = 8
	cfg.NumWindows = 16
	cfg = cfg.Practical()
	cfg.EIDMissingRate = 0.1
	cfg.VIDMissingRate = 0.05
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	targets := ds.AllEIDs()[:12]
	_, obs, err := stream.EventsFromDataset(ds, 1_000, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	ecfg := stream.Config{
		Targets:    targets,
		WindowMS:   1_000,
		LatenessMS: 250,
		Dim:        ds.Config.DescriptorDim(),
		Seed:       7,
		Mode:       core.ModeSerial,
		Workers:    4,
	}
	return ecfg, obs, targets
}

// TestShardKillChaos is the shard-death battery: six seeded fault schedules
// kill shard windowers mid-window (and stall others); every death lapses the
// shard's lease, the router redispatches its cell range from the last
// sub-checkpoint plus journal replay, and the merged fingerprint must still
// be byte-identical to the fault-free unsharded replay. The goroutine leak
// check at the top ensures every killed incarnation and its replacement is
// joined by Close.
func TestShardKillChaos(t *testing.T) {
	mrtest.CheckGoroutines(t)
	ecfg, obs, _ := chaosWorkload(t)

	// Fault-free unsharded baseline.
	e, err := stream.NewEngine(ecfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for i, o := range obs {
		if _, err := e.Ingest(o); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	baseline, err := e.Finalize(context.Background())
	if err != nil {
		t.Fatalf("baseline Finalize: %v", err)
	}
	want := baseline.Fingerprint()

	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("schedule-%d", seed), func(t *testing.T) {
			inj, err := chaos.NewShardInjector(seed, chaos.ShardConfig{
				Kill:     0.002,
				Stall:    0.0005,
				StallFor: time.Millisecond,
			})
			if err != nil {
				t.Fatalf("NewShardInjector: %v", err)
			}
			cfg := ecfg
			cfg.Clock = &stepClock{now: time.UnixMilli(0), step: 200 * time.Microsecond}
			r, err := stream.NewRouter(stream.RouterConfig{
				Config:             cfg,
				Shards:             4,
				QueueLen:           64,
				SubCheckpointEvery: 128,
				LeaseTTL:           40 * time.Millisecond,
				Faults:             inj,
			})
			if err != nil {
				t.Fatalf("NewRouter: %v", err)
			}
			defer r.Close()
			for i, o := range obs {
				accepted, err := r.Ingest(o)
				if err != nil {
					t.Fatalf("Ingest %d: %v", i, err)
				}
				if !accepted {
					t.Fatalf("Ingest %d: in-order observation dropped under faults", i)
				}
			}
			rep, err := r.Finalize(context.Background())
			if err != nil {
				t.Fatalf("Finalize: %v", err)
			}
			if got := rep.Fingerprint(); got != want {
				t.Fatalf("fingerprint diverged from fault-free unsharded replay under schedule %d:\n--- fault-free\n%s\n--- chaos\n%s", seed, want, got)
			}
			st := r.Stats()
			if st.Kills == 0 {
				t.Fatalf("schedule %d injected no shard kills; the schedule is vacuous", seed)
			}
			if st.Redispatches == 0 {
				t.Fatalf("schedule %d: %d kills but no redispatches", seed, st.Kills)
			}
			if st.Leases.Redispatches != st.Redispatches {
				t.Fatalf("router redispatches %d disagree with lease table %d", st.Redispatches, st.Leases.Redispatches)
			}
			t.Logf("schedule %d: %d kills, %d redispatches, %d stale renewals",
				seed, st.Kills, st.Redispatches, st.Leases.StaleRenewals)
		})
	}
}

// TestShardKillDuringCheckpoint kills shards while a checkpoint barrier is
// in flight: the barrier must complete through the redispatched
// replacements, and the resulting image must restore and resume to the
// fault-free fingerprint.
func TestShardKillDuringCheckpoint(t *testing.T) {
	mrtest.CheckGoroutines(t)
	ecfg, obs, _ := chaosWorkload(t)
	want := unshardedFingerprint(t, ecfg, obs)

	inj, err := chaos.NewShardInjector(99, chaos.ShardConfig{Kill: 0.004})
	if err != nil {
		t.Fatalf("NewShardInjector: %v", err)
	}
	cfg := ecfg
	cfg.Clock = &stepClock{now: time.UnixMilli(0), step: 200 * time.Microsecond}
	rcfg := stream.RouterConfig{
		Config:             cfg,
		Shards:             3,
		QueueLen:           64,
		SubCheckpointEvery: 128,
		LeaseTTL:           40 * time.Millisecond,
		Faults:             inj,
	}
	r, err := stream.NewRouter(rcfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer r.Close()
	cut := len(obs) / 2
	for i := 0; i < cut; i++ {
		if _, err := r.Ingest(obs[i]); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	var image bytes.Buffer
	if err := r.Checkpoint(&image); err != nil {
		t.Fatalf("Checkpoint under faults: %v", err)
	}
	if st := r.Stats(); st.Kills == 0 {
		t.Fatal("no kills before or during the checkpoint barrier; raise the fault rate")
	}

	// Restore fault-free and resume.
	clean := rcfg
	clean.Faults = nil
	restored, err := stream.RestoreRouter(clean, &image)
	if err != nil {
		t.Fatalf("RestoreRouter: %v", err)
	}
	defer restored.Close()
	for i := cut; i < len(obs); i++ {
		if _, err := restored.Ingest(obs[i]); err != nil {
			t.Fatalf("resumed Ingest %d: %v", i, err)
		}
	}
	rep, err := restored.Finalize(context.Background())
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if got := rep.Fingerprint(); got != want {
		t.Fatal("checkpoint written under shard kills restored to a diverged state")
	}
}

// unshardedFingerprint replays the log through a plain engine.
func unshardedFingerprint(t *testing.T, cfg stream.Config, obs []stream.Observation) string {
	t.Helper()
	e, err := stream.NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for i, o := range obs {
		if _, err := e.Ingest(o); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	rep, err := e.Finalize(context.Background())
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return rep.Fingerprint()
}

package stream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"evmatching/internal/core"
)

// routerCheckpointBytes serializes r and returns the raw v3 checkpoint.
func routerCheckpointBytes(t *testing.T, r *Router) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	return buf.Bytes()
}

// TestRouterCheckpointByteIdentity extends the checkpoint determinism
// property to the sharded format: at any cut point of the log, a 3-shard
// router's checkpoint → restore → re-checkpoint is byte-identical, across
// two generations. The barrier inside Checkpoint makes the image a
// consistent cut, so the property holds even at mid-window cuts where every
// shard holds open buckets.
func TestRouterCheckpointByteIdentity(t *testing.T) {
	ds := testDataset(t, false)
	targets := ds.AllEIDs()[:8]
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	rcfg := RouterConfig{Config: testConfig(ds, targets, core.ModeSerial), Shards: 3}

	cuts := []int{0, len(obs) / 4, len(obs)/2 + 7, len(obs) - 1, len(obs)}
	r, err := NewRouter(rcfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer r.Close()
	next := 0
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut-%d", cut), func(t *testing.T) {
			for ; next < cut; next++ {
				if _, err := r.Ingest(obs[next]); err != nil {
					t.Fatalf("Ingest %d: %v", next, err)
				}
			}
			first := routerCheckpointBytes(t, r)
			if second := routerCheckpointBytes(t, r); !bytes.Equal(first, second) {
				t.Fatalf("two checkpoints of the same router differ (len %d vs %d)", len(first), len(second))
			}
			restored, err := RestoreRouter(rcfg, bytes.NewReader(first))
			if err != nil {
				t.Fatalf("RestoreRouter: %v", err)
			}
			defer restored.Close()
			if again := routerCheckpointBytes(t, restored); !bytes.Equal(first, again) {
				t.Fatalf("re-checkpoint after restore differs (len %d vs %d)", len(first), len(again))
			}
			second, err := RestoreRouter(rcfg, bytes.NewReader(first))
			if err != nil {
				t.Fatalf("second RestoreRouter: %v", err)
			}
			defer second.Close()
			if again := routerCheckpointBytes(t, second); !bytes.Equal(first, again) {
				t.Fatalf("second-generation checkpoint differs (len %d vs %d)", len(first), len(again))
			}
		})
	}
}

// TestRouterCheckpointResume checks the functional half of the contract: a
// router checkpointed mid-log and restored — under the same shard count or a
// different one, since v3 restore redistributes buckets by ShardOf — resumes
// the log and finalizes to the exact unsharded fingerprint.
func TestRouterCheckpointResume(t *testing.T) {
	ds := testDataset(t, true)
	targets := ds.AllEIDs()[:12]
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	cfg := testConfig(ds, targets, core.ModeSerial)
	want := replayFingerprint(t, cfg, obs)

	cut := len(obs)/2 + 3
	src, err := NewRouter(RouterConfig{Config: cfg, Shards: 3})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer src.Close()
	for i := 0; i < cut; i++ {
		if _, err := src.Ingest(obs[i]); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	image := routerCheckpointBytes(t, src)

	for _, shards := range []int{3, 1, 5} {
		t.Run(fmt.Sprintf("restore-into-%d-shards", shards), func(t *testing.T) {
			r, err := RestoreRouter(RouterConfig{Config: cfg, Shards: shards}, bytes.NewReader(image))
			if err != nil {
				t.Fatalf("RestoreRouter: %v", err)
			}
			defer r.Close()
			if got := r.Ingested(); got != int64(cut) {
				t.Fatalf("Ingested = %d after restore, want %d", got, cut)
			}
			for i := cut; i < len(obs); i++ {
				if _, err := r.Ingest(obs[i]); err != nil {
					t.Fatalf("Ingest %d: %v", i, err)
				}
			}
			rep, err := r.Finalize(context.Background())
			if err != nil {
				t.Fatalf("Finalize: %v", err)
			}
			if got := rep.Fingerprint(); got != want {
				t.Fatalf("resumed %d-shard replay diverged from unsharded replay", shards)
			}
		})
	}
}

// TestRouterRestoresV2Checkpoint is the upgrade path: a v2 single-engine
// checkpoint restores into a router — the degenerate 1-shard case and a
// redistributing 4-shard case — which resumes the log to the same
// fingerprint. The reverse direction must fail loudly: Engine.Restore
// rejects a v3 image by version.
func TestRouterRestoresV2Checkpoint(t *testing.T) {
	ds := testDataset(t, true)
	targets := ds.AllEIDs()[:12]
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	cfg := testConfig(ds, targets, core.ModeSerial)
	want := replayFingerprint(t, cfg, obs)

	cut := len(obs)/3 + 11
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for i := 0; i < cut; i++ {
		if _, err := e.Ingest(obs[i]); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	v2 := checkpointBytes(t, e)

	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("into-%d-shards", shards), func(t *testing.T) {
			r, err := RestoreRouter(RouterConfig{Config: cfg, Shards: shards}, bytes.NewReader(v2))
			if err != nil {
				t.Fatalf("RestoreRouter(v2): %v", err)
			}
			defer r.Close()
			if got := r.Ingested(); got != int64(cut) {
				t.Fatalf("Ingested = %d after v2 restore, want %d", got, cut)
			}
			for i := cut; i < len(obs); i++ {
				if _, err := r.Ingest(obs[i]); err != nil {
					t.Fatalf("Ingest %d: %v", i, err)
				}
			}
			rep, err := r.Finalize(context.Background())
			if err != nil {
				t.Fatalf("Finalize: %v", err)
			}
			if got := rep.Fingerprint(); got != want {
				t.Fatalf("v2-upgraded %d-shard replay diverged from unsharded replay", shards)
			}
		})
	}

	t.Run("engine-rejects-v3", func(t *testing.T) {
		r, err := NewRouter(RouterConfig{Config: cfg, Shards: 2})
		if err != nil {
			t.Fatalf("NewRouter: %v", err)
		}
		defer r.Close()
		if _, err := r.Ingest(obs[0]); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
		v3 := routerCheckpointBytes(t, r)
		if _, err := Restore(cfg, bytes.NewReader(v3)); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("Engine.Restore(v3): err = %v, want ErrBadCheckpoint", err)
		}
	})
}

// TestRouterRestoreRejectsMismatchedConfig mirrors the engine guard: a
// checkpoint only restores into a router windowing and matching identically.
func TestRouterRestoreRejectsMismatchedConfig(t *testing.T) {
	ds := testDataset(t, false)
	targets := ds.AllEIDs()[:4]
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	cfg := testConfig(ds, targets, core.ModeSerial)
	r, err := NewRouter(RouterConfig{Config: cfg, Shards: 2})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer r.Close()
	for i := 0; i < 200 && i < len(obs); i++ {
		if _, err := r.Ingest(obs[i]); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	image := routerCheckpointBytes(t, r)

	bad := cfg
	bad.Seed = cfg.Seed + 1
	if _, err := RestoreRouter(RouterConfig{Config: bad, Shards: 2}, bytes.NewReader(image)); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("mismatched seed: err = %v, want ErrBadCheckpoint", err)
	}
	if _, err := RestoreRouter(RouterConfig{Config: cfg, Shards: 2}, bytes.NewReader(image[:len(image)/2])); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("truncated image: err = %v, want ErrBadCheckpoint", err)
	}
}

package stream

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"evmatching/internal/feature"
	"evmatching/internal/geo"
	"evmatching/internal/scenario"
	"evmatching/internal/spill"
)

// spillRecord is the gob image of one evicted sealed scenario: the
// V-Scenario payload plus, when the filter had already extracted it, the
// row-major feature matrix — a reload then never re-pays extraction, and
// since the matrix is the very one the filter produced, the reloaded path
// is bit-identical to the resident one (DESIGN.md §14).
type spillRecord struct {
	Cell       geo.CellID
	Window     int
	Detections []scenario.Detection
	HasMatrix  bool
	MatrixDim  int
	MatrixData []float64
}

// windowPager is the sealed-window half of the spill tier: evicted
// V-Scenario payloads live as gob records in an unlinked blob log and are
// paged back in transiently at match, checkpoint, or finalize time. It
// implements scenario.VPager and backs the filter's MatrixSource. Evictions
// are serialized by the owning engine; reloads may be concurrent (the
// parallel finalize executor reads from many goroutines).
type windowPager struct {
	log   *spill.BlobLog
	stats *spill.Stats

	mu   sync.RWMutex
	refs map[scenario.ID]spill.BlobRef
}

// newWindowPager opens a pager over a fresh blob log in dir (empty = OS
// temp directory).
func newWindowPager(fsys spill.FS, dir string, stats *spill.Stats) (*windowPager, error) {
	log, err := spill.NewBlobLog(fsys, dir)
	if err != nil {
		return nil, err
	}
	return &windowPager{log: log, stats: stats, refs: make(map[scenario.ID]spill.BlobRef)}, nil
}

// Close releases the blob log's file handle.
func (p *windowPager) Close() error { return p.log.Close() }

// evict appends id's payload (and extracted matrix, when available) to the
// log. The store entry must still be resident; the caller drops it only
// after evict succeeds, so a write failure leaves the scenario in memory.
func (p *windowPager) evict(id scenario.ID, v *scenario.VScenario, m *feature.Matrix) error {
	rec := spillRecord{Cell: v.Cell, Window: v.Window, Detections: v.Detections}
	if m != nil {
		rec.HasMatrix = true
		rec.MatrixDim = m.Dim()
		rec.MatrixData = make([]float64, 0, m.Dim()*m.Rows())
		for i := 0; i < m.Rows(); i++ {
			rec.MatrixData = append(rec.MatrixData, m.Row(i)...)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return fmt.Errorf("stream: encode spill record %d: %w", id, err)
	}
	ref, err := p.log.Append(buf.Bytes())
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.refs[id] = ref
	p.mu.Unlock()
	p.stats.AddBytesSpilled(int64(buf.Len()))
	return nil
}

// load reads and decodes id's spill record. The second result is false when
// id was never evicted — the caller then falls back to its resident path.
func (p *windowPager) load(id scenario.ID) (*spillRecord, bool, error) {
	p.mu.RLock()
	ref, ok := p.refs[id]
	p.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	data, err := p.log.ReadAt(ref)
	if err != nil {
		return nil, true, err
	}
	var rec spillRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return nil, true, fmt.Errorf("stream: decode spill record %d: %w", id, err)
	}
	p.stats.AddReloads(1)
	return &rec, true, nil
}

// LoadV implements scenario.VPager: page an evicted payload back in.
func (p *windowPager) LoadV(id scenario.ID) (*scenario.VScenario, error) {
	rec, ok, err := p.load(id)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("stream: no spill record for scenario %d", id)
	}
	return &scenario.VScenario{ID: id, Cell: rec.Cell, Window: rec.Window, Detections: rec.Detections}, nil
}

// LoadMatrix is the filter's MatrixSource: it returns the spilled feature
// matrix for id, or (nil, nil) when id was never evicted or was evicted
// before its features were extracted — the filter then extracts from the
// paged-in detections, which yields the identical matrix.
func (p *windowPager) LoadMatrix(id scenario.ID) (*feature.Matrix, error) {
	rec, ok, err := p.load(id)
	if err != nil {
		return nil, err
	}
	if !ok || !rec.HasMatrix {
		return nil, nil
	}
	if rec.MatrixDim < 1 || len(rec.MatrixData)%rec.MatrixDim != 0 {
		return nil, fmt.Errorf("stream: corrupt spill matrix for scenario %d: dim %d, %d values",
			id, rec.MatrixDim, len(rec.MatrixData))
	}
	rows := len(rec.MatrixData) / rec.MatrixDim
	m, err := feature.NewMatrix(rec.MatrixDim, rows)
	if err != nil {
		return nil, fmt.Errorf("stream: rebuild spill matrix for scenario %d: %w", id, err)
	}
	for i := 0; i < rows; i++ {
		copy(m.Row(i), rec.MatrixData[i*rec.MatrixDim:(i+1)*rec.MatrixDim])
	}
	return m, nil
}

// detOverheadBytes is the fixed per-detection charge on top of pixel bytes:
// an approximation of the Detection struct, VID label, and slice headers.
// Any constant works — charge and refund use the same function — it just
// keeps the budget honest for small-patch workloads.
const detOverheadBytes = 64

// vPayloadBytes is the budget-accounting cost of one resident V-Scenario
// payload. Pure function of the payload, so the eviction refund always
// equals the seal-time charge.
func vPayloadBytes(v *scenario.VScenario) int64 {
	n := int64(0)
	for i := range v.Detections {
		n += int64(len(v.Detections[i].Patch.Pix)) + detOverheadBytes
	}
	return n
}

// noteSealedLocked charges one freshly sealed (or restored) V payload
// against the memory budget and evicts oldest-sealed scenarios until the
// store is back under it. No-op without a budget or for E-only scenarios.
// Callers hold e.mu.
func (e *Engine) noteSealedLocked(id scenario.ID, vsc *scenario.VScenario) error {
	if e.spillBudget == nil || vsc == nil {
		return nil
	}
	e.spillBudget.Add(vPayloadBytes(vsc))
	e.spillQueue.Push(int64(id))
	return e.evictOverLocked()
}

// evictOverLocked pages out sealed V payloads in FIFO (seal) order until
// resident bytes fit the budget. The payload is dropped from the store only
// after the spill write succeeds, so a failed eviction degrades to an error
// with all state intact. Callers hold e.mu.
func (e *Engine) evictOverLocked() error {
	for e.spillBudget.Over() {
		pid, ok := e.spillQueue.Pop()
		if !ok {
			return nil // budget smaller than open state; nothing left to evict
		}
		id := scenario.ID(pid)
		v, err := e.store.VChecked(id)
		if err != nil {
			return fmt.Errorf("stream: evict scenario %d: %w", id, err)
		}
		if v == nil {
			continue
		}
		m, _ := e.filter.Drop(id)
		if err := e.pager.evict(id, v, m); err != nil {
			return fmt.Errorf("stream: evict scenario %d: %w", id, err)
		}
		if err := e.store.EvictV(id); err != nil {
			return fmt.Errorf("stream: evict scenario %d: %w", id, err)
		}
		e.spillBudget.Sub(vPayloadBytes(v))
		e.spillStats.AddEvictions(1)
	}
	return nil
}

// addSpillGauges folds one spill snapshot into a gauge map — the shared
// naming for the engine's and the router's /metricsz surfaces.
func addSpillGauges(g map[string]int64, s spill.Snapshot) {
	g["spill_bytes_spilled"] = s.BytesSpilled
	g["spill_runs_written"] = s.RunsWritten
	g["spill_runs_merged"] = s.RunsMerged
	g["spill_reloads"] = s.Reloads
	g["spill_evictions"] = s.Evictions
}

// SpillStats snapshots the engine's out-of-core activity: bytes spilled,
// evictions, reloads, and — after a budgeted Finalize — the batch
// executor's run counts. All-zero when MemBudget is unset.
func (e *Engine) SpillStats() spill.Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.spillStats.Snapshot()
}

package stream

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// CheckpointVersion is the checkpoint format version this package writes.
// Version 2 flattened the E-Scenario EID set from a map into a sorted
// (EID, attr) slice: gob encodes maps in randomized iteration order, so the
// v1 format produced different bytes for equal states and broke the
// checkpoint → restore → re-checkpoint byte-identity property.
const CheckpointVersion = 2

// ErrBadCheckpoint reports a checkpoint that cannot be restored.
var ErrBadCheckpoint = errors.New("stream: bad checkpoint")

// checkpointScenario is one closed EV-Scenario pair, saved in store-ID order
// so restore re-adds them with identical IDs. The E side is flattened: an
// EScenario holds its EID set as a map, which gob would encode in randomized
// order, so the set is saved as a sorted (EID, attr) slice instead — every
// field reachable from checkpointFile must encode deterministically (the
// gobdet analyzer enforces this).
type checkpointScenario struct {
	Cell   geo.CellID
	Window int
	EIDs   []BucketEID
	V      scenario.VScenario
	HasV   bool
}

// BucketEID is one (EID, attr) entry of an open bucket, slice-encoded in
// sorted order for stable checkpoint bytes.
type BucketEID struct {
	EID  ids.EID
	Attr scenario.Attr
}

// ShardBucket is one open (window, cell) bucket.
type ShardBucket struct {
	Window int
	Cell   geo.CellID
	EIDs   []BucketEID
	Dets   []scenario.Detection
}

// checkpointFile is the complete gob-encoded stream state. The partition and
// the vfilter cache are deliberately absent: both are pure functions of the
// closed scenarios, so restore rebuilds them by replaying SplitBy in store-ID
// order — smaller checkpoints, and no risk of persisting internal state that
// drifts from the data (DESIGN.md §10).
type checkpointFile struct {
	Version int

	// Config guard: a checkpoint only restores into an engine windowing and
	// matching identically.
	WindowMS   int64
	LatenessMS int64
	Seed       int64
	Dim        int
	Targets    []ids.EID

	// Ingested is the number of observations consumed (accepted or dropped)
	// — the log offset a resumed replayer skips to.
	Ingested    int64
	LateDropped int64
	MaxTS       int64
	MinOpen     int
	Seq         int

	Scenarios   []checkpointScenario
	Buckets     []ShardBucket
	Resolutions []Resolution
	Accepted    []ids.VID
	Resolved    []ids.EID
}

// Checkpoint serializes the engine's full stream state: closed scenarios,
// open buckets, emitted resolutions, and counters. A consumer that persists
// the checkpoint together with the ingested-count offset can crash and
// resume without reprocessing the log from the start.
func (e *Engine) Checkpoint(w io.Writer) error {
	e.mu.Lock()
	cp, err := e.checkpointLocked()
	e.mu.Unlock()
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("stream: encode checkpoint: %w", err)
	}
	return nil
}

// checkpointLocked builds the engine's checkpoint image. Evicted V payloads
// are paged back in transiently — the checkpoint always carries the full
// state — and a reload failure fails the checkpoint rather than silently
// persisting a scenario as detection-free. Callers hold e.mu.
func (e *Engine) checkpointLocked() (checkpointFile, error) {
	cp := checkpointFile{
		Version:     CheckpointVersion,
		WindowMS:    e.cfg.WindowMS,
		LatenessMS:  e.cfg.LatenessMS,
		Seed:        e.cfg.Seed,
		Dim:         e.cfg.Dim,
		Targets:     e.cfg.Targets,
		Ingested:    e.ingested,
		LateDropped: e.lateDropped,
		MaxTS:       e.maxTS,
		MinOpen:     e.minOpen,
		Seq:         e.seq,
		Resolutions: e.emitted,
		Accepted:    ids.SortedVIDKeys(e.accepted),
		Resolved:    ids.SortedEIDKeys(e.resolved),
	}
	for id := scenario.ID(0); int(id) < e.store.Len(); id++ {
		esc := e.store.E(id)
		cs := checkpointScenario{Cell: esc.Cell, Window: esc.Window}
		for _, eid := range ids.SortedEIDKeys(esc.EIDs) {
			cs.EIDs = append(cs.EIDs, BucketEID{EID: eid, Attr: esc.EIDs[eid]})
		}
		v, err := e.store.VChecked(id)
		if err != nil {
			return checkpointFile{}, fmt.Errorf("stream: checkpoint scenario %d: %w", id, err)
		}
		if v != nil {
			cs.V = *v
			cs.HasV = true
		}
		cp.Scenarios = append(cp.Scenarios, cs)
	}
	var keys []bucketKey
	for k := range e.buckets {
		keys = append(keys, k)
	}
	sortBucketKeys(keys)
	for _, k := range keys {
		cp.Buckets = append(cp.Buckets, bucketToCheckpoint(k, e.buckets[k]))
	}
	return cp, nil
}

// bucketToCheckpoint flattens one open bucket into its checkpoint form: the
// EID map becomes a sorted (EID, attr) slice and the detections are deep-
// copied, so the image stays valid while the live bucket keeps absorbing —
// the router's sub-checkpoint snapshots outlive the shard that emitted them.
func bucketToCheckpoint(k bucketKey, b *bucket) ShardBucket {
	cb := ShardBucket{
		Window: k.Window,
		Cell:   k.Cell,
		Dets:   append(make([]scenario.Detection, 0, len(b.dets)), b.dets...),
	}
	for _, eid := range ids.SortedEIDKeys(b.eids) {
		cb.EIDs = append(cb.EIDs, BucketEID{EID: eid, Attr: b.eids[eid]})
	}
	return cb
}

// bucketFromCheckpoint rebuilds an open bucket from its checkpoint form,
// deep-copying the detections so restored buckets never share backing arrays
// with the image they came from (a redispatched shard and its stale
// predecessor may both restore from the same sub-checkpoint).
func bucketFromCheckpoint(cb ShardBucket) *bucket {
	b := &bucket{
		eids:    make(map[ids.EID]scenario.Attr, len(cb.EIDs)),
		detSeen: make(map[string]bool, len(cb.Dets)),
	}
	for _, ea := range cb.EIDs {
		b.eids[ea.EID] = ea.Attr
	}
	b.dets = append(make([]scenario.Detection, 0, len(cb.Dets)), cb.Dets...)
	for i := range b.dets {
		b.detSeen[detMergeKey(b.dets[i].VID, b.dets[i].TruePerson, &b.dets[i].Patch)] = true
	}
	return b
}

// Restore builds an Engine from cfg and resumes it from a checkpoint written
// by Checkpoint. The checkpoint's windowing and matching parameters must
// match cfg; runtime-only fields (Clock, Metrics, Mode, Workers) come from
// cfg alone.
func Restore(cfg Config, r io.Reader) (*Engine, error) {
	var cp checkpointFile
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("%w: decode: %w", ErrBadCheckpoint, err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrBadCheckpoint, cp.Version, CheckpointVersion)
	}
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.guardCheckpoint(&cp); err != nil {
		return nil, err
	}
	if err := e.restoreScenarios(&cp); err != nil {
		return nil, err
	}
	for _, cb := range cp.Buckets {
		e.buckets[bucketKey{Window: cb.Window, Cell: cb.Cell}] = bucketFromCheckpoint(cb)
	}
	e.restoreCounters(&cp)
	e.mu.Lock()
	e.publishGauges()
	e.mu.Unlock()
	return e, nil
}

// guardCheckpoint rejects a checkpoint whose windowing or matching
// parameters disagree with the engine's config.
func (e *Engine) guardCheckpoint(cp *checkpointFile) error {
	switch {
	case cp.WindowMS != e.cfg.WindowMS:
		return fmt.Errorf("%w: window %d ms vs config %d ms", ErrBadCheckpoint, cp.WindowMS, e.cfg.WindowMS)
	case cp.LatenessMS != e.cfg.LatenessMS:
		return fmt.Errorf("%w: lateness %d ms vs config %d ms", ErrBadCheckpoint, cp.LatenessMS, e.cfg.LatenessMS)
	case cp.Seed != e.cfg.Seed:
		return fmt.Errorf("%w: seed %d vs config %d", ErrBadCheckpoint, cp.Seed, e.cfg.Seed)
	case cp.Dim != e.cfg.Dim:
		return fmt.Errorf("%w: dim %d vs config %d", ErrBadCheckpoint, cp.Dim, e.cfg.Dim)
	case !eidsEqual(cp.Targets, e.cfg.Targets):
		return fmt.Errorf("%w: target set differs from config", ErrBadCheckpoint)
	}
	return nil
}

// restoreScenarios re-adds the closed scenarios in ID order (the fresh store
// assigns the same IDs) and replays the split — the partition is a pure fold
// over them.
func (e *Engine) restoreScenarios(cp *checkpointFile) error {
	for i := range cp.Scenarios {
		cs := &cp.Scenarios[i]
		esc := &scenario.EScenario{
			Cell:   cs.Cell,
			Window: cs.Window,
			EIDs:   make(map[ids.EID]scenario.Attr, len(cs.EIDs)),
		}
		for _, ea := range cs.EIDs {
			esc.EIDs[ea.EID] = ea.Attr
		}
		var vsc *scenario.VScenario
		if cs.HasV {
			vsc = &cs.V
		}
		id, err := e.store.Add(esc, vsc)
		if err != nil {
			return fmt.Errorf("%w: scenario %d: %w", ErrBadCheckpoint, i, err)
		}
		if int(id) != i {
			return fmt.Errorf("%w: scenario %d re-added as %d", ErrBadCheckpoint, i, id)
		}
		// The same pruning path the live engine used: scenarios were closed
		// (and thus applied) in store-ID order, so the replay walks the
		// identical live-set evolution and rebuilds the partition, the
		// blocking state, and the prune counters deterministically.
		e.splitSealedLocked(esc)
		// Restored payloads count against the memory budget exactly like
		// freshly sealed ones, so a restored engine re-evicts down to budget
		// instead of holding the whole checkpoint resident.
		if err := e.noteSealedLocked(id, vsc); err != nil {
			return fmt.Errorf("%w: scenario %d: %w", ErrBadCheckpoint, i, err)
		}
	}
	return nil
}

// restoreCounters applies the checkpoint's counters, resolutions, and
// rule-out sets.
func (e *Engine) restoreCounters(cp *checkpointFile) {
	e.ingested = cp.Ingested
	e.lateDropped = cp.LateDropped
	e.maxTS = cp.MaxTS
	e.minOpen = cp.MinOpen
	e.seq = cp.Seq
	e.emitted = cp.Resolutions
	for _, eid := range cp.Resolved {
		e.resolved[eid] = true
	}
	for _, vid := range cp.Accepted {
		e.accepted[vid] = true
	}
}

// eidsEqual reports element-wise equality of two sorted EID slices.
func eidsEqual(a, b []ids.EID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package stream

import (
	"bytes"
	"context"
	"testing"

	"evmatching/internal/core"
	"evmatching/internal/metrics"
	"evmatching/internal/scenario"
)

// streamWorkingSetBytes sums the budget-accounting cost of every V payload a
// dataset's stream replay will hold — the denominator for "budget several
// times smaller than the data" assertions.
func streamWorkingSetBytes(t *testing.T, cfg Config, obs []Observation) int64 {
	t.Helper()
	e, err := NewEngine(Config{
		Targets:    cfg.Targets,
		WindowMS:   cfg.WindowMS,
		LatenessMS: cfg.LatenessMS,
		Dim:        cfg.Dim,
		Seed:       cfg.Seed,
		Mode:       core.ModeSerial,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for i, o := range obs {
		if _, err := e.Ingest(o); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	total := int64(0)
	for id := 0; id < e.store.Len(); id++ {
		if v := e.store.V(scenario.ID(id)); v != nil {
			total += vPayloadBytes(v)
		}
	}
	return total
}

// TestStreamSpillEquivalence pins the spill tier's streaming invariant:
// with MemBudget a quarter of the sealed working set, the replay evicts
// (gauges prove it) yet Finalize's fingerprint is byte-identical to the
// unbudgeted run — in both serial and parallel finalize modes. (Shuffle-run
// spilling needs a budget sized to the much smaller shuffle byte volume;
// the mapreduce tests and the benchsuite spill battery cover it.)
func TestStreamSpillEquivalence(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeSerial, core.ModeParallel} {
		t.Run(mode.String(), func(t *testing.T) {
			ds := testDataset(t, false)
			targets := ds.AllEIDs()[:20]
			_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
			if err != nil {
				t.Fatalf("EventsFromDataset: %v", err)
			}
			base := testConfig(ds, targets, mode)
			want := replayFingerprint(t, base, obs)

			cfg := base
			cfg.MemBudget = streamWorkingSetBytes(t, base, obs) / 4
			cfg.SpillDir = t.TempDir()
			cfg.Metrics = metrics.NewRegistry()
			if cfg.MemBudget < 1 {
				t.Fatalf("working set too small to constrain: budget %d", cfg.MemBudget)
			}
			e, err := NewEngine(cfg)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			for i, o := range obs {
				if _, err := e.Ingest(o); err != nil {
					t.Fatalf("Ingest %d: %v", i, err)
				}
			}
			rep, err := e.Finalize(context.Background())
			if err != nil {
				t.Fatalf("Finalize: %v", err)
			}
			if got := rep.Fingerprint(); got != want {
				t.Errorf("budgeted fingerprint diverges from unbudgeted:\n--- want\n%s\n--- got\n%s", want, got)
			}
			snap := e.SpillStats()
			if snap.Evictions == 0 || snap.BytesSpilled == 0 {
				t.Errorf("budget %d forced no evictions: %+v", cfg.MemBudget, snap)
			}
			if snap.Reloads == 0 {
				t.Errorf("finalize never paged evicted state back in: %+v", snap)
			}
			if rep.Spill.Evictions != snap.Evictions {
				t.Errorf("report snapshot %+v disagrees with engine %+v", rep.Spill, snap)
			}
			gauges := cfg.Metrics.Snapshot()
			if gauges["spill_evictions"] == 0 {
				t.Errorf("spill_evictions gauge not published: %v", gauges)
			}
		})
	}
}

// TestStreamSpillCheckpointRoundTrip checks that a checkpoint taken over
// partially evicted state pages everything back in (the image is complete),
// restores into a fresh budgeted engine — which re-evicts down to budget —
// and that the restored engine finalizes to the unbudgeted fingerprint.
func TestStreamSpillCheckpointRoundTrip(t *testing.T) {
	ds := testDataset(t, false)
	targets := ds.AllEIDs()[:20]
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	base := testConfig(ds, targets, core.ModeSerial)
	want := replayFingerprint(t, base, obs)

	cfg := base
	cfg.MemBudget = streamWorkingSetBytes(t, base, obs) / 4
	cfg.SpillDir = t.TempDir()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	cut := len(obs) * 3 / 4
	for i, o := range obs[:cut] {
		if _, err := e.Ingest(o); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	if e.SpillStats().Evictions == 0 {
		t.Fatalf("no evictions before checkpoint; budget %d too large", cfg.MemBudget)
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint over evicted state: %v", err)
	}
	restored, err := Restore(cfg, &buf)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.SpillStats().Evictions == 0 {
		t.Errorf("restored engine held the full checkpoint resident despite budget")
	}
	for i, o := range obs[cut:] {
		if _, err := restored.Ingest(o); err != nil {
			t.Fatalf("Ingest %d after restore: %v", cut+i, err)
		}
	}
	rep, err := restored.Finalize(context.Background())
	if err != nil {
		t.Fatalf("Finalize after restore: %v", err)
	}
	if got := rep.Fingerprint(); got != want {
		t.Errorf("restored budgeted fingerprint diverges:\n--- want\n%s\n--- got\n%s", want, got)
	}
}

package stream

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"time"

	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/ids"
	"evmatching/internal/metrics"
)

const (
	testWindowMS   = 1_000
	testLatenessMS = 250
)

// testDataset mirrors core's golden conformance datasets (60 persons, 16
// windows; the practical variant adds noise, vague zones, and missing data).
func testDataset(t *testing.T, practical bool) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumPersons = 60
	cfg.Density = 8
	cfg.NumWindows = 16
	if practical {
		cfg = cfg.Practical()
		cfg.EIDMissingRate = 0.1
		cfg.VIDMissingRate = 0.05
	}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ds
}

// testConfig is the engine configuration the equivalence tests share.
func testConfig(ds *dataset.Dataset, targets []ids.EID, mode core.Mode) Config {
	return Config{
		Targets:    targets,
		WindowMS:   testWindowMS,
		LatenessMS: testLatenessMS,
		Dim:        ds.Config.DescriptorDim(),
		Seed:       7,
		Mode:       mode,
		Workers:    4,
	}
}

// batchFingerprint runs the batch SS reference under ScanInOrder — the order
// a stream consumer observes windows in.
func batchFingerprint(t *testing.T, ds *dataset.Dataset, targets []ids.EID, mode core.Mode) string {
	t.Helper()
	m, err := core.New(ds, core.Options{
		Algorithm: core.AlgorithmSS,
		Mode:      mode,
		Workers:   4,
		Seed:      7,
		ScanOrder: core.ScanInOrder,
	})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	rep, err := m.Match(context.Background(), targets)
	if err != nil {
		t.Fatalf("batch Match: %v", err)
	}
	return rep.Fingerprint()
}

// replayFingerprint streams the observations through a fresh engine and
// finalizes.
func replayFingerprint(t *testing.T, cfg Config, obs []Observation) string {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for i, o := range obs {
		accepted, err := e.Ingest(o)
		if err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
		if !accepted {
			t.Fatalf("Ingest %d: in-order observation dropped as late", i)
		}
	}
	rep, err := e.Finalize(context.Background())
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return rep.Fingerprint()
}

// TestStreamGoldenEquivalence pins the subsystem's headline invariant:
// replaying a complete observation log through the stream path produces a
// report whose Fingerprint is byte-identical to the batch SS run over the
// original dataset. The sha256 pins guard both paths at once — a mismatch
// means match results changed, not just speed.
func TestStreamGoldenEquivalence(t *testing.T) {
	cases := []struct {
		name      string
		practical bool
		mode      core.Mode
		want      string
	}{
		{"ideal-serial", false, core.ModeSerial,
			"f9148d9c52037f0eed05a463f872bd009795fff2bc1b388ee2550aa68525ec1e"},
		{"practical-serial", true, core.ModeSerial,
			"25e495c8abf1c04522dc5e33d326b83a9ddcea4a3185c1dc5ce641eeafe688d5"},
		{"ideal-parallel", false, core.ModeParallel,
			"4cfed9fb5feb849ccec4aec8aa93195ff0137603e4a78cd85aa8c9f484794416"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := testDataset(t, tc.practical)
			targets := ds.AllEIDs()[:20]
			_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
			if err != nil {
				t.Fatalf("EventsFromDataset: %v", err)
			}
			batch := batchFingerprint(t, ds, targets, tc.mode)
			stream := replayFingerprint(t, testConfig(ds, targets, tc.mode), obs)
			if stream != batch {
				t.Fatalf("stream fingerprint diverges from batch:\n--- batch\n%s\n--- stream\n%s", batch, stream)
			}
			sum := sha256.Sum256([]byte(stream))
			if got := hex.EncodeToString(sum[:]); got != tc.want {
				t.Errorf("fingerprint hash = %s, want %s (match results changed)", got, tc.want)
			}
		})
	}
}

// TestStreamEmitsResolutions checks the incremental V stage: a complete
// replay must emit one resolution per target, with monotonically increasing
// sequence numbers and confidence fields populated.
func TestStreamEmitsResolutions(t *testing.T) {
	ds := testDataset(t, false)
	targets := ds.AllEIDs()[:20]
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	e, err := NewEngine(testConfig(ds, targets, core.ModeSerial))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	backlog, ch, cancel := e.Subscribe()
	defer cancel()
	if len(backlog) != 0 {
		t.Fatalf("fresh engine has backlog of %d", len(backlog))
	}
	for _, o := range obs {
		if _, err := e.Ingest(o); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got := e.Resolutions()
	if len(got) != len(targets) {
		t.Fatalf("emitted %d resolutions for %d targets", len(got), len(targets))
	}
	correct := 0
	for i, r := range got {
		if r.Seq != i+1 {
			t.Errorf("resolution %d has seq %d", i, r.Seq)
		}
		if r.VID == ids.NoVID {
			t.Errorf("resolution for %s carries no VID", r.EID)
			continue
		}
		if r.Probability <= 0 || r.MajorityFrac <= 0 {
			t.Errorf("resolution for %s has empty confidence: %+v", r.EID, r)
		}
		if r.VID == ds.TruthVID(r.EID) {
			correct++
		}
	}
	// The ideal setting matches essentially perfectly in batch mode; early
	// emission sees fewer windows, so allow a small slack.
	if correct < len(targets)*8/10 {
		t.Errorf("only %d/%d early resolutions correct", correct, len(targets))
	}
	// The subscription must have received every emission.
	for i := 0; i < len(got); i++ {
		select {
		case r := <-ch:
			if r.Seq != i+1 {
				t.Fatalf("subscriber got seq %d at position %d", r.Seq, i)
			}
		default:
			t.Fatalf("subscriber starved after %d resolutions", i)
		}
	}
}

// fakeClock is a settable Clock for gauge tests.
type fakeClock struct{ now time.Time }

func (f *fakeClock) Now() time.Time { return f.now }

// TestStreamGauges checks that the engine publishes its gauges and that the
// watermark-lag gauge reads the injected clock, not the wall clock.
func TestStreamGauges(t *testing.T) {
	ds := testDataset(t, false)
	targets := ds.AllEIDs()[:5]
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	reg := metrics.NewRegistry()
	clk := &fakeClock{now: time.UnixMilli(50_000)}
	cfg := testConfig(ds, targets, core.ModeSerial)
	cfg.Metrics = reg
	cfg.Clock = clk
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	half := obs[:len(obs)/2]
	for _, o := range half {
		if _, err := e.Ingest(o); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	if got := reg.Get("stream_open_windows"); got < 1 {
		t.Errorf("stream_open_windows = %d, want >= 1", got)
	}
	wm, ok := e.Watermark()
	if !ok {
		t.Fatal("no watermark after ingesting half the log")
	}
	if got, want := reg.Get("stream_watermark_lag_ms"), 50_000-wm; got != want {
		t.Errorf("stream_watermark_lag_ms = %d, want %d (injected clock at 50000)", got, want)
	}
	if got := reg.Get("stream_pending_eids"); got < 0 || got > int64(len(targets)) {
		t.Errorf("stream_pending_eids = %d out of range", got)
	}

	// A wildly late observation must be dropped and counted.
	late := half[0]
	if accepted, err := e.Ingest(late); err != nil || accepted {
		t.Fatalf("late replay of first event: accepted=%t err=%v", accepted, err)
	}
	if got := reg.Get("stream_late_dropped"); got != 1 {
		t.Errorf("stream_late_dropped = %d, want 1", got)
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := reg.Get("stream_resolutions_emitted"); got != int64(len(e.Resolutions())) {
		t.Errorf("stream_resolutions_emitted = %d, want %d", got, len(e.Resolutions()))
	}
	if got := reg.Get("stream_open_windows"); got != 0 {
		t.Errorf("stream_open_windows = %d after flush, want 0", got)
	}

	// The blocking-prune gauges must mirror the engine's split accounting:
	// after a full flush every sealed scenario was either probed or pruned.
	cands, pruned := e.BlockStats()
	if cands+pruned == 0 {
		t.Fatal("no sealed scenario was ever classified by the pruning probe")
	}
	if got := reg.Get("block_candidates_total"); got != cands {
		t.Errorf("block_candidates_total = %d, want %d", got, cands)
	}
	if got := reg.Get("block_pruned_total"); got != pruned {
		t.Errorf("block_pruned_total = %d, want %d", got, pruned)
	}
	if got, want := reg.Get("block_prune_ratio"), BlockPruneRatioPercent(cands, pruned); got != want {
		t.Errorf("block_prune_ratio = %d, want %d", got, want)
	}
	if r := reg.Get("block_prune_ratio"); r < 0 || r > 100 {
		t.Errorf("block_prune_ratio = %d out of [0,100]", r)
	}
}

package stream

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"

	"evmatching/internal/core"
)

// TestStreamCrashRestoreChaos replays the practical conformance log under
// seeded crash schedules: the consumer periodically checkpoints, randomly
// "crashes" (losing the engine and everything since the last checkpoint),
// restores from the checkpoint, and resumes the log from the restored
// ingested-count offset. Every schedule must finalize to the exact batch
// fingerprint — the golden pin shared with TestStreamGoldenEquivalence — so
// checkpoint/restore provably loses nothing and duplicates nothing.
func TestStreamCrashRestoreChaos(t *testing.T) {
	ds := testDataset(t, true)
	targets := ds.AllEIDs()[:20]
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	cfg := testConfig(ds, targets, core.ModeSerial)
	want := batchFingerprint(t, ds, targets, core.ModeSerial)
	// The practical-serial golden pin: crash/restore schedules must land on
	// the same conformance hash as the clean replay and the batch run.
	const wantHash = "25e495c8abf1c04522dc5e33d326b83a9ddcea4a3185c1dc5ce641eeafe688d5"

	schedules := int64(6)
	if testing.Short() {
		schedules = 2
	}
	for seed := int64(1); seed <= schedules; seed++ {
		t.Run(fmt.Sprintf("schedule-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			e, err := NewEngine(cfg)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			var checkpoint bytes.Buffer
			if err := e.Checkpoint(&checkpoint); err != nil {
				t.Fatalf("initial Checkpoint: %v", err)
			}
			crashes, checkpoints := 0, 0
			for i := 0; i < len(obs); {
				switch {
				case rng.Float64() < 0.002 && crashes < 5:
					// Crash: the engine and all progress since the last
					// checkpoint are gone. Restore and rewind the log cursor
					// to the checkpoint's offset.
					e, err = Restore(cfg, bytes.NewReader(checkpoint.Bytes()))
					if err != nil {
						t.Fatalf("Restore after crash %d: %v", crashes, err)
					}
					// Byte-identity invariant: re-checkpointing the restored
					// engine must reproduce the exact bytes it was restored
					// from — the checkpoint format has no nondeterminism and
					// restore loses nothing.
					var again bytes.Buffer
					if err := e.Checkpoint(&again); err != nil {
						t.Fatalf("re-Checkpoint after crash %d: %v", crashes, err)
					}
					if !bytes.Equal(again.Bytes(), checkpoint.Bytes()) {
						t.Fatalf("crash %d: re-checkpoint bytes differ from the checkpoint restored from (len %d vs %d)",
							crashes, again.Len(), checkpoint.Len())
					}
					i = int(e.Ingested())
					crashes++
				case rng.Float64() < 0.01:
					checkpoint.Reset()
					if err := e.Checkpoint(&checkpoint); err != nil {
						t.Fatalf("Checkpoint at %d: %v", i, err)
					}
					checkpoints++
				default:
					if _, err := e.Ingest(obs[i]); err != nil {
						t.Fatalf("Ingest %d: %v", i, err)
					}
					i++
				}
			}
			if crashes == 0 {
				t.Fatalf("schedule %d produced no crashes; widen the schedule", seed)
			}
			rep, err := e.Finalize(context.Background())
			if err != nil {
				t.Fatalf("Finalize: %v", err)
			}
			fp := rep.Fingerprint()
			if fp != want {
				t.Fatalf("crash/restore replay (crashes=%d checkpoints=%d) diverged from batch:\n--- batch\n%s\n--- stream\n%s",
					crashes, checkpoints, want, fp)
			}
			sum := sha256.Sum256([]byte(fp))
			if got := hex.EncodeToString(sum[:]); got != wantHash {
				t.Errorf("fingerprint hash = %s, want %s", got, wantHash)
			}
		})
	}
}

// TestCheckpointMidWindowState pins that a checkpoint taken with windows
// still open round-trips the open buckets: restoring and continuing must
// agree with an uninterrupted run even when the crash lands mid-window.
func TestCheckpointMidWindowState(t *testing.T) {
	ds := testDataset(t, false)
	targets := ds.AllEIDs()[:8]
	_, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	cfg := testConfig(ds, targets, core.ModeSerial)
	want := replayFingerprint(t, cfg, obs)

	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// Stop in the middle of the log — guaranteed mid-window for some cells.
	cut := len(obs)/2 + 7
	for _, o := range obs[:cut] {
		if _, err := e.Ingest(o); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	if e.OpenWindows() == 0 {
		t.Fatal("no open windows at the cut; the test exercises nothing")
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	restored, err := Restore(cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := restored.Ingested(), int64(cut); got != want {
		t.Fatalf("restored offset %d, want %d", got, want)
	}
	if got, want := restored.Resolutions(), e.Resolutions(); len(got) != len(want) {
		t.Fatalf("restored %d resolutions, want %d", len(got), len(want))
	}
	for _, o := range obs[cut:] {
		if _, err := restored.Ingest(o); err != nil {
			t.Fatalf("Ingest after restore: %v", err)
		}
	}
	rep, err := restored.Finalize(context.Background())
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if got := rep.Fingerprint(); got != want {
		t.Fatalf("mid-window restore diverged:\n--- clean\n%s\n--- restored\n%s", want, got)
	}
}

// TestRestoreRejectsMismatchedConfig pins the checkpoint config guard.
func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	ds := testDataset(t, false)
	targets := ds.AllEIDs()[:4]
	cfg := testConfig(ds, targets, core.ModeSerial)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	bad := cfg
	bad.WindowMS = cfg.WindowMS * 2
	if _, err := Restore(bad, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("Restore accepted a checkpoint with a different window length")
	}
	bad = cfg
	bad.Targets = targets[:3]
	if _, err := Restore(bad, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("Restore accepted a checkpoint with a different target set")
	}
	if _, err := Restore(cfg, bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("Restore accepted garbage bytes")
	}
}

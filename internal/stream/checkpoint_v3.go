package stream

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"evmatching/internal/ids"
)

// RouterCheckpointVersion is the sharded checkpoint format version. Version
// 3 extends the v2 single-engine layout with a shard count and per-shard
// sub-checkpoint sections; the global section (scenarios, resolutions,
// counters) is unchanged, so a v2 checkpoint upgrades losslessly into a
// router and a v3 checkpoint redistributes across any shard count.
const RouterCheckpointVersion = 3

// shardCheckpoint is one shard's sub-checkpoint: its open bucket images in
// ascending (window, cell) order.
type shardCheckpoint struct {
	Shard   int
	Buckets []ShardBucket
}

// routerCheckpointFile is the gob-encoded sharded stream state. Its field
// names are a superset of the v2 checkpointFile — gob matches fields by
// name, so a v2 stream decodes into this type with Buckets populated and
// ShardBuckets empty, and Engine.Restore cleanly rejects a v3 stream by its
// version number. Everything reachable from here encodes deterministically
// (sorted slices, no maps — the gobdet analyzer enforces this), preserving
// the checkpoint → restore → re-checkpoint byte-identity property.
type routerCheckpointFile struct {
	Version int
	Shards  int

	// Config guard, as in v2.
	WindowMS   int64
	LatenessMS int64
	Seed       int64
	Dim        int
	Targets    []ids.EID

	Ingested    int64
	LateDropped int64
	MaxTS       int64
	MinOpen     int
	Seq         int

	Scenarios   []checkpointScenario
	Resolutions []Resolution
	Accepted    []ids.VID
	Resolved    []ids.EID

	// Buckets carries a v2 checkpoint's open buckets (the upgrade path);
	// v3 files carry ShardBuckets instead and leave this empty.
	Buckets      []ShardBucket
	ShardBuckets []shardCheckpoint
}

// Checkpoint serializes the router's full sharded state. It is a barrier:
// every shard is asked for a fresh sub-checkpoint and every issued close
// round must fold before the image is written, so the checkpoint captures a
// consistent cut — the global section reflects exactly the closures the
// sub-checkpoints no longer contain. A shard that dies during the barrier
// is redispatched and the barrier completes through its replacement.
func (r *Router) Checkpoint(w io.Writer) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRouterClosed
	}
	want := make([]int64, len(r.slots))
	for i := range r.slots {
		slot := &r.slots[i]
		r.sendLocked(slot, ShardMsg{Kind: ShardMsgSnap})
		slot.pendingSnap = slot.sent
		want[i] = slot.sent
	}
	round := r.round
	if err := r.awaitBarrierLocked(want, round); err != nil {
		r.mu.Unlock()
		return err
	}
	for i := range r.slots {
		r.adoptAckLocked(&r.slots[i])
	}
	r.merged.mu.Lock()
	cpg, err := r.merged.checkpointLocked()
	r.merged.mu.Unlock()
	if err != nil {
		r.mu.Unlock()
		return err
	}
	cp := routerCheckpointFile{
		Version:     RouterCheckpointVersion,
		Shards:      r.cfg.Shards,
		WindowMS:    cpg.WindowMS,
		LatenessMS:  cpg.LatenessMS,
		Seed:        cpg.Seed,
		Dim:         cpg.Dim,
		Targets:     cpg.Targets,
		Ingested:    r.ingested,
		LateDropped: r.lateDropped,
		MaxTS:       r.maxTS,
		MinOpen:     r.minOpen,
		Seq:         cpg.Seq,
		Scenarios:   cpg.Scenarios,
		Resolutions: cpg.Resolutions,
		Accepted:    cpg.Accepted,
		Resolved:    cpg.Resolved,
	}
	for i := range r.slots {
		cp.ShardBuckets = append(cp.ShardBuckets, shardCheckpoint{
			Shard:   i,
			Buckets: r.slots[i].snapBuckets,
		})
	}
	r.mu.Unlock()
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("stream: encode checkpoint: %w", err)
	}
	return nil
}

// awaitBarrierLocked waits until every shard's sub-checkpoint ack has
// reached the wanted position and the merge stage has folded every issued
// round, redispatching dead shards so the barrier always completes. Callers
// hold r.mu; holding it through the wait is deliberate — a checkpoint is an
// ingest barrier, and the shards and merger it waits on never take r.mu.
func (r *Router) awaitBarrierLocked(want []int64, round int) error {
	//evlint:ignore lockbalance condition-wait loop: drops the caller-held r.mu across each sleep and reacquires before retesting, net-neutral per iteration
	for {
		folded, err := r.progress()
		if err != nil {
			return err
		}
		if folded >= round {
			r.snapMu.Lock()
			done := true
			for i, w := range want {
				if r.acks[i].pos < w {
					done = false
					break
				}
			}
			r.snapMu.Unlock()
			if done {
				return nil
			}
		}
		r.redispatchExpiredLocked()
		//evlint:ignore lockbalance releases the caller-held r.mu for the sleep; reacquired two lines down
		r.mu.Unlock()
		time.Sleep(sendRetryDelay)
		r.mu.Lock()
	}
}

// RestoreRouter builds a Router from cfg and resumes it from a checkpoint —
// either a v3 sharded image or a v2 single-engine image (the upgrade path).
// Open buckets are redistributed by ShardOf under cfg's shard count, so a
// checkpoint written under any shard count restores under any other,
// including a v2 file restoring into a 1-shard (or N-shard) router.
func RestoreRouter(cfg RouterConfig, rd io.Reader) (*Router, error) {
	var cp routerCheckpointFile
	if err := gob.NewDecoder(rd).Decode(&cp); err != nil {
		return nil, fmt.Errorf("%w: decode: %w", ErrBadCheckpoint, err)
	}
	var open []ShardBucket
	switch cp.Version {
	case CheckpointVersion: // v2: single-engine image
		if len(cp.ShardBuckets) != 0 {
			return nil, fmt.Errorf("%w: v2 checkpoint carries shard sections", ErrBadCheckpoint)
		}
		open = cp.Buckets
	case RouterCheckpointVersion:
		if len(cp.Buckets) != 0 {
			return nil, fmt.Errorf("%w: v3 checkpoint carries unsharded buckets", ErrBadCheckpoint)
		}
		for _, sc := range cp.ShardBuckets {
			open = append(open, sc.Buckets...)
		}
	default:
		return nil, fmt.Errorf("%w: version %d (want %d or %d)", ErrBadCheckpoint, cp.Version, CheckpointVersion, RouterCheckpointVersion)
	}
	return newRouter(cfg, &cp, open)
}

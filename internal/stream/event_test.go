package stream

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"evmatching/internal/feature"
	"evmatching/internal/scenario"
)

// TestLogRoundTrip pins the JSONL observation-log codec: encoding a
// dataset's event flattening and decoding it back must reproduce every
// observation exactly.
func TestLogRoundTrip(t *testing.T) {
	ds := testDataset(t, true)
	hdr, obs, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	if len(obs) == 0 {
		t.Fatal("no observations generated")
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, hdr, obs); err != nil {
		t.Fatalf("WriteLog: %v", err)
	}
	gotHdr, gotObs, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if gotHdr != hdr {
		t.Errorf("header round-trip: got %+v, want %+v", gotHdr, hdr)
	}
	if len(gotObs) != len(obs) {
		t.Fatalf("round-trip length %d, want %d", len(gotObs), len(obs))
	}
	for i := range obs {
		if !reflect.DeepEqual(gotObs[i], obs[i]) {
			t.Fatalf("observation %d round-trip:\ngot  %+v\nwant %+v", i, gotObs[i], obs[i])
		}
	}
}

// TestEventsFromDatasetDeterministic pins that the flattening is a pure
// function of (dataset, window, seed) and that every timestamp lands inside
// its scenario's window.
func TestEventsFromDatasetDeterministic(t *testing.T) {
	ds := testDataset(t, false)
	_, first, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	_, again, err := EventsFromDataset(ds, testWindowMS, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("same (dataset, window, seed) produced different logs")
	}
	_, other, err := EventsFromDataset(ds, testWindowMS, 8)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	if reflect.DeepEqual(first, other) {
		t.Fatal("different seeds produced identical timestamp jitter")
	}
	last := int64(-1)
	for i, o := range first {
		if o.TS < last {
			t.Fatalf("observation %d out of order: ts %d after %d", i, o.TS, last)
		}
		last = o.TS
		if o.TS < 0 || o.TS >= int64(ds.Config.NumWindows)*testWindowMS {
			t.Fatalf("observation %d ts %d outside the dataset's %d windows", i, o.TS, ds.Config.NumWindows)
		}
	}
}

// TestObservationValidate covers the malformed-observation rejections.
func TestObservationValidate(t *testing.T) {
	patch := &feature.Patch{W: 2, H: 2, Pix: []byte{1, 2, 3, 4}}
	cases := []struct {
		name string
		obs  Observation
		ok   bool
	}{
		{"good-e", Observation{TS: 5, Kind: KindE, Cell: 1, EID: "aa", Attr: scenario.AttrInclusive}, true},
		{"good-v", Observation{TS: 5, Kind: KindV, Cell: 1, VID: "V00001", Patch: patch}, true},
		{"negative-ts", Observation{TS: -1, Kind: KindE, EID: "aa", Attr: scenario.AttrInclusive}, false},
		{"no-kind", Observation{TS: 5}, false},
		{"e-without-eid", Observation{TS: 5, Kind: KindE, Attr: scenario.AttrInclusive}, false},
		{"e-bad-attr", Observation{TS: 5, Kind: KindE, EID: "aa"}, false},
		{"v-without-vid", Observation{TS: 5, Kind: KindV, Patch: patch}, false},
		{"v-without-patch", Observation{TS: 5, Kind: KindV, VID: "V00001"}, false},
		{"v-patch-dims", Observation{TS: 5, Kind: KindV, VID: "V00001", Patch: &feature.Patch{W: 3, H: 2, Pix: []byte{1}}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.obs.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Error("Validate accepted a malformed observation")
				} else if !errors.Is(err, ErrBadObservation) {
					t.Errorf("error %v is not ErrBadObservation", err)
				}
			}
		})
	}
}

// TestLogReaderErrors covers malformed logs: missing or wrong header, bad
// lines, and truncation behavior.
func TestLogReaderErrors(t *testing.T) {
	if _, err := NewLogReader(strings.NewReader("")); !errors.Is(err, ErrBadLog) {
		t.Errorf("empty log: %v", err)
	}
	if _, err := NewLogReader(strings.NewReader(`{"ts":5,"kind":"E"}` + "\n")); !errors.Is(err, ErrBadLog) {
		t.Errorf("missing header: %v", err)
	}
	if _, err := NewLogReader(strings.NewReader(`{"kind":"header","version":99,"windowMs":1000,"dim":64}` + "\n")); !errors.Is(err, ErrBadLog) {
		t.Errorf("future version: %v", err)
	}
	lr, err := NewLogReader(strings.NewReader(`{"kind":"header","version":1,"windowMs":1000,"dim":64}` + "\nnot json\n"))
	if err != nil {
		t.Fatalf("NewLogReader: %v", err)
	}
	if _, err := lr.Next(); !errors.Is(err, ErrBadLog) {
		t.Errorf("garbage line: %v", err)
	}
	lr, err = NewLogReader(strings.NewReader(`{"kind":"header","version":1,"windowMs":1000,"dim":64}` + "\n"))
	if err != nil {
		t.Fatalf("NewLogReader: %v", err)
	}
	if _, err := lr.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("end of log: %v, want io.EOF", err)
	}
}

// TestWriteEventsLogByteIdentical pins the constant-memory writer against
// the materialized path: WriteEventsLog must produce byte-for-byte the log
// WriteLog(EventsFromDataset(...)) does. The equivalence rests on per-window
// timestamp ranges being disjoint — a per-window stable sort concatenated in
// window order IS the global stable sort — so any drift here means the
// streaming writer changed the replay semantics, not just the encoding.
func TestWriteEventsLogByteIdentical(t *testing.T) {
	ds := testDataset(t, true)
	for _, seed := range []int64{0, 7, 42} {
		hdr, obs, err := EventsFromDataset(ds, testWindowMS, seed)
		if err != nil {
			t.Fatalf("EventsFromDataset: %v", err)
		}
		var want bytes.Buffer
		if err := WriteLog(&want, hdr, obs); err != nil {
			t.Fatalf("WriteLog: %v", err)
		}
		var got bytes.Buffer
		n, err := WriteEventsLog(&got, ds, testWindowMS, seed)
		if err != nil {
			t.Fatalf("WriteEventsLog: %v", err)
		}
		if n != len(obs) {
			t.Errorf("seed %d: WriteEventsLog reported %d observations, want %d", seed, n, len(obs))
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("seed %d: streaming log differs from materialized log (%d vs %d bytes)",
				seed, got.Len(), want.Len())
		}
	}
}

// TestWriteEventsLogRejectsBadInput covers the writer's validation edges.
func TestWriteEventsLogRejectsBadInput(t *testing.T) {
	if _, err := WriteEventsLog(io.Discard, nil, 1000, 1); err == nil {
		t.Error("want error for nil dataset")
	}
	ds := testDataset(t, false)
	if _, err := WriteEventsLog(io.Discard, ds, 0, 1); !errors.Is(err, ErrBadLog) {
		t.Errorf("window 0: err = %v, want ErrBadLog", err)
	}
}

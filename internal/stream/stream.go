package stream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"evmatching/internal/blocking"
	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/feature"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/metrics"
	"evmatching/internal/partition"
	"evmatching/internal/scenario"
	"evmatching/internal/spill"
	"evmatching/internal/vfilter"
)

// ErrBadConfig reports an invalid engine configuration.
var ErrBadConfig = errors.New("stream: invalid config")

// ErrDiverged reports that the incremental split disagrees with the batch
// reference — a bug surfaced rather than hidden, mirroring the MapReduce
// divergence check in core.
var ErrDiverged = errors.New("stream: incremental split diverged from batch reference")

// Config parameterizes an Engine. The matching knobs (AcceptMajority,
// WorkFactor, Seed, MinPerEIDList, MaxScenarios) default to the same values
// as core.Options, so a stream replay and a batch run agree without tuning.
type Config struct {
	// Targets is the EID set to match. Required.
	Targets []ids.EID
	// WindowMS is the event-time window length in milliseconds. Required.
	WindowMS int64
	// LatenessMS is the allowed lateness: the watermark trails the maximum
	// observed timestamp by this much, so any observation at most this far
	// out of order still lands in its window. Observations older than the
	// watermark's closed windows are dropped and counted.
	LatenessMS int64
	// Dim is the feature descriptor dimensionality of V patches. Required.
	Dim int

	// AcceptMajority, WorkFactor, Seed, MinPerEIDList, MaxScenarios mirror
	// the same-named core.Options fields (MaxScenarios ↔ EDPMaxScenarios).
	AcceptMajority float64
	WorkFactor     int
	Seed           int64
	MinPerEIDList  int
	MaxScenarios   int

	// Mode is the execution mode of Finalize's batch verification run.
	Mode core.Mode
	// Workers sizes Finalize's parallel executor (0 = GOMAXPROCS).
	Workers int

	// MemBudget caps the bytes of resident sealed V-Scenario payloads.
	// Past it, closed-but-unmerged scenarios (and their extracted feature
	// matrices) are evicted oldest-sealed-first to a spill log and paged
	// back in transiently at match, checkpoint, and finalize time
	// (DESIGN.md §14). Finalize's batch run inherits the same budget for
	// its shuffle state. 0 disables the spill tier. The evicted path is
	// bit-identical to the resident one.
	MemBudget int64
	// SpillDir is where spill files live; empty means the OS temp
	// directory.
	SpillDir string

	// Clock feeds the watermark-lag gauge; event-time logic never reads it.
	// Defaults to SystemClock.
	Clock Clock
	// Metrics, when non-nil, receives the stream gauges (stream_open_windows,
	// stream_watermark_lag_ms, stream_pending_eids,
	// stream_resolutions_emitted, stream_late_dropped).
	Metrics *metrics.Registry
}

// withDefaults returns a copy with defaults applied.
func (c Config) withDefaults() Config {
	if c.AcceptMajority == 0 {
		c.AcceptMajority = 0.7
	}
	if c.WorkFactor == 0 {
		c.WorkFactor = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MinPerEIDList == 0 {
		c.MinPerEIDList = 3
	}
	if c.MaxScenarios == 0 {
		c.MaxScenarios = 14
	}
	if c.Mode == 0 {
		c.Mode = core.ModeSerial
	}
	if c.Clock == nil {
		c.Clock = SystemClock{}
	}
	return c
}

// validate reports whether the (defaulted) config is usable.
func (c Config) validate() error {
	if len(c.Targets) == 0 {
		return fmt.Errorf("%w: no targets", ErrBadConfig)
	}
	if c.WindowMS <= 0 {
		return fmt.Errorf("%w: window %d ms", ErrBadConfig, c.WindowMS)
	}
	if c.LatenessMS < 0 {
		return fmt.Errorf("%w: lateness %d ms", ErrBadConfig, c.LatenessMS)
	}
	if c.Dim < 2 {
		return fmt.Errorf("%w: dim %d", ErrBadConfig, c.Dim)
	}
	if c.AcceptMajority < 0 || c.AcceptMajority > 1 {
		return fmt.Errorf("%w: accept majority %f", ErrBadConfig, c.AcceptMajority)
	}
	if c.Mode != core.ModeSerial && c.Mode != core.ModeParallel {
		return fmt.Errorf("%w: mode %d", ErrBadConfig, c.Mode)
	}
	if c.MemBudget < 0 {
		return fmt.Errorf("%w: mem budget %d", ErrBadConfig, c.MemBudget)
	}
	return nil
}

// Resolution is one early-emission match: an EID whose partition set became
// a singleton, matched over the scenarios closed so far. Resolutions are
// provisional — later windows can refine the evidence — and Finalize's batch
// verification run is the authoritative result.
type Resolution struct {
	// Seq numbers resolutions in emission order, starting at 1.
	Seq int     `json:"seq"`
	EID ids.EID `json:"eid"`
	VID ids.VID `json:"vid"`
	// Probability, MajorityFrac, RunnerUp, Margin and Acceptable carry the
	// vfilter.Result confidence fields.
	Probability  float64 `json:"probability"`
	MajorityFrac float64 `json:"majorityFrac"`
	RunnerUp     ids.VID `json:"runnerUp,omitempty"`
	Margin       float64 `json:"margin"`
	Acceptable   bool    `json:"acceptable"`
	// Window is the last window closed before this resolution was emitted.
	Window int `json:"window"`
}

// bucketKey addresses one open (window, cell) accumulation bucket.
type bucketKey struct {
	Window int
	Cell   geo.CellID
}

// bucket accumulates one window+cell's observations until the watermark
// closes it. Merging is order-independent: an EID's attribute upgrades from
// vague to inclusive but never back, and detections are deduplicated by full
// identity, so any arrival order within the lateness bound produces the same
// closed scenario (the permutation property test pins this).
type bucket struct {
	eids    map[ids.EID]scenario.Attr
	dets    []scenario.Detection
	detSeen map[string]bool
}

// newBucket creates an empty accumulation bucket.
func newBucket() *bucket {
	return &bucket{eids: make(map[ids.EID]scenario.Attr), detSeen: make(map[string]bool)}
}

// absorb folds one observation into the bucket — the order-independent merge
// both the single engine and the router's shard windowers use.
func (b *bucket) absorb(o Observation) {
	switch o.Kind {
	case KindE:
		// Inclusive wins over vague regardless of arrival order.
		if cur, ok := b.eids[o.EID]; !ok || (cur == scenario.AttrVague && o.Attr == scenario.AttrInclusive) {
			b.eids[o.EID] = o.Attr
		}
	case KindV:
		key := detMergeKey(o.VID, o.Person, o.Patch)
		if !b.detSeen[key] {
			b.detSeen[key] = true
			b.dets = append(b.dets, scenario.Detection{VID: o.VID, Patch: *o.Patch, TruePerson: o.Person})
		}
	}
}

// sealBucket freezes one closed (window, cell) bucket into its EV-Scenario
// pair. Detections come out sorted, so the sealed pair is independent of
// arrival order; buckets without detections seal to a nil V side.
func sealBucket(k bucketKey, b *bucket) (*scenario.EScenario, *scenario.VScenario) {
	esc := &scenario.EScenario{Cell: k.Cell, Window: k.Window, EIDs: b.eids}
	var vsc *scenario.VScenario
	if len(b.dets) > 0 {
		sortDetections(b.dets)
		vsc = &scenario.VScenario{Cell: k.Cell, Window: k.Window, Detections: b.dets}
	}
	return esc, vsc
}

// Engine is the incremental matcher. It is safe for concurrent use.
type Engine struct {
	mu     sync.Mutex
	cfg    Config
	store  *scenario.Store
	part   *partition.Partition
	filter *vfilter.Filter

	buckets map[bucketKey]*bucket
	maxTS   int64 // highest observed timestamp; -1 before the first event
	minOpen int   // lowest window not yet closed

	// live tracks the still-undistinguished targets — the streaming form of
	// the blocking signature (DESIGN.md §13). Sealed scenarios with no
	// inclusive live target are exact split no-ops and skip SplitBy;
	// blockCandidates/blockPruned count both outcomes. Restore rebuilds all
	// three deterministically by replaying the checkpointed scenarios
	// through the same probe, so no checkpoint field carries them.
	live            *blocking.LiveTargets
	blockCandidates int64
	blockPruned     int64

	// Spill tier (DESIGN.md §14), active when cfg.MemBudget > 0: sealed V
	// payloads are charged against spillBudget as windows close and evicted
	// to pager in spillQueue (seal) order once over budget. spillStats is
	// shared with Finalize's batch executor so one snapshot covers both the
	// streaming evictions and the batch shuffle runs.
	spillStats  *spill.Stats
	pager       *windowPager
	spillBudget *spill.Budget
	spillQueue  *spill.FIFO

	ingested    int64
	lateDropped int64

	seq      int
	emitted  []Resolution
	resolved map[ids.EID]bool // targets with an emitted resolution
	accepted map[ids.VID]bool // acceptable VIDs ruled out for later matches

	subs    map[int]chan Resolution
	nextSub int
}

// NewEngine creates an Engine over an empty scenario store.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.Targets = ids.SortEIDs(append([]ids.EID(nil), cfg.Targets...))
	e := &Engine{
		cfg:      cfg,
		maxTS:    -1,
		buckets:  make(map[bucketKey]*bucket),
		resolved: make(map[ids.EID]bool),
		accepted: make(map[ids.VID]bool),
		subs:     make(map[int]chan Resolution),
	}
	if err := e.resetMatchState(); err != nil {
		return nil, err
	}
	return e, nil
}

// resetMatchState builds a fresh store, partition, and filter (engine
// construction and checkpoint restore).
func (e *Engine) resetMatchState() error {
	e.store = scenario.NewStore(nil)
	p, err := partition.New(e.cfg.Targets)
	if err != nil {
		return err
	}
	e.part = p
	e.live = blocking.NewLiveTargets(e.cfg.Targets)
	e.part.OnResolve(e.live.Resolve)
	e.blockCandidates, e.blockPruned = 0, 0
	f, err := vfilter.New(e.store, vfilter.Config{
		Extractor:      feature.Extractor{Dim: e.cfg.Dim, WorkFactor: e.cfg.WorkFactor},
		AcceptMajority: e.cfg.AcceptMajority,
	})
	if err != nil {
		return err
	}
	e.filter = f
	if e.cfg.MemBudget > 0 {
		if e.spillStats == nil {
			e.spillStats = &spill.Stats{}
		}
		if e.pager != nil {
			e.pager.Close()
		}
		pager, err := newWindowPager(spill.OS{}, e.cfg.SpillDir, e.spillStats)
		if err != nil {
			return err
		}
		e.pager = pager
		e.store.SetVPager(pager)
		e.filter.SetMatrixSource(pager.LoadMatrix)
		e.spillBudget = spill.NewBudget(e.cfg.MemBudget)
		e.spillQueue = &spill.FIFO{}
	}
	return nil
}

// Ingest consumes one observation. It returns whether the observation was
// accepted: late observations (whose window the watermark already closed)
// are dropped, counted, and reported as not accepted, with a nil error.
func (e *Engine) Ingest(o Observation) (bool, error) {
	if err := o.Validate(); err != nil {
		return false, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ingested++
	w := int(o.TS / e.cfg.WindowMS)
	if w < e.minOpen {
		e.lateDropped++
		e.publishGauges()
		return false, nil
	}
	b := e.buckets[bucketKey{Window: w, Cell: o.Cell}]
	if b == nil {
		b = newBucket()
		e.buckets[bucketKey{Window: w, Cell: o.Cell}] = b
	}
	b.absorb(o)
	if o.TS > e.maxTS {
		e.maxTS = o.TS
		if err := e.advance(); err != nil {
			return false, err
		}
	}
	e.publishGauges()
	return true, nil
}

// detMergeKey is the full-identity deduplication key of a detection.
func detMergeKey(vid ids.VID, person int, p *feature.Patch) string {
	return fmt.Sprintf("%s\x00%d\x00%d\x00%d\x00%s", vid, person, p.W, p.H, p.Pix)
}

// Watermark returns the current event-time watermark and whether any event
// has been observed yet.
func (e *Engine) Watermark() (int64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.maxTS < 0 {
		return 0, false
	}
	return e.maxTS - e.cfg.LatenessMS, true
}

// advance closes every window the watermark has passed, in ascending
// (window, cell) order — the exact order the batch generator emits scenarios
// in, which makes the stream-built store identical to the batch store.
// Callers hold e.mu.
func (e *Engine) advance() error {
	wm := e.maxTS - e.cfg.LatenessMS
	target := floorDiv(wm, e.cfg.WindowMS)
	if target <= int64(e.minOpen) {
		return nil
	}
	if err := e.closeBelow(int(target)); err != nil {
		return err
	}
	e.minOpen = int(target)
	return e.sweepResolutions()
}

// closeBelow closes every open bucket with window < limit, in ascending
// (window, cell) order. Callers hold e.mu.
func (e *Engine) closeBelow(limit int) error {
	var keys []bucketKey
	for k := range e.buckets {
		if k.Window < limit {
			keys = append(keys, k)
		}
	}
	sortBucketKeys(keys)
	for _, k := range keys {
		if err := e.closeBucket(k, e.buckets[k]); err != nil {
			return err
		}
		delete(e.buckets, k)
	}
	return nil
}

// closeBucket seals one (window, cell) bucket into an EV-Scenario pair,
// stores it, and refines the partition with it. Callers hold e.mu.
func (e *Engine) closeBucket(k bucketKey, b *bucket) error {
	esc, vsc := sealBucket(k, b)
	return e.applySealedLocked(k, esc, vsc, nil)
}

// applySealedLocked folds one sealed closure into the store and partition.
// feats, when non-nil, is the V-Scenario's pre-extracted feature matrix (the
// sharded path extracts at seal time); it primes the filter cache so the
// serial merge never re-pays extraction. Callers hold e.mu.
func (e *Engine) applySealedLocked(k bucketKey, esc *scenario.EScenario, vsc *scenario.VScenario, feats *feature.Matrix) error {
	id, err := e.store.Add(esc, vsc)
	if err != nil {
		return fmt.Errorf("stream: close window %d cell %d: %w", k.Window, k.Cell, err)
	}
	if vsc != nil && feats != nil {
		if err := e.filter.Prime(id, feats); err != nil {
			return fmt.Errorf("stream: close window %d cell %d: %w", k.Window, k.Cell, err)
		}
	}
	e.splitSealedLocked(esc)
	if err := e.noteSealedLocked(id, vsc); err != nil {
		return fmt.Errorf("stream: close window %d cell %d: %w", k.Window, k.Cell, err)
	}
	return nil
}

// splitSealedLocked refines the partition with one sealed scenario through
// the blocking probe. SplitBy ignores EIDs outside the partition's index and
// is a no-op once every set is a singleton, so applying the full scenario
// records the same effective-scenario list as the batch split stage's
// filtered, early-exiting scan (DESIGN.md §10); a scenario the live-target
// probe prunes is exactly such a no-op — it could neither change a leaf nor
// be recorded — so skipping it preserves that equivalence bit for bit.
// Checkpoint restore replays through this same path, which deterministically
// rebuilds the live set and both counters without any checkpoint field.
// Callers hold e.mu.
func (e *Engine) splitSealedLocked(esc *scenario.EScenario) {
	if e.live.Prunes(esc) {
		e.blockPruned++
		return
	}
	e.blockCandidates++
	e.part.SplitBy(esc)
}

// sealedScenario is one shard-sealed window closure in transit to the merge
// stage: the key, the EV-Scenario pair sealBucket produced, and the
// V-Scenario's feature matrix, extracted by the shard so the serial merge
// stage only folds (nil when the shard's extraction failed — the merge-side
// filter then re-extracts lazily and surfaces the identical error).
type sealedScenario struct {
	key   bucketKey
	esc   *scenario.EScenario
	vsc   *scenario.VScenario
	feats *feature.Matrix
}

// applyRound is the sharded router's merge hook: fold one globally
// (window, cell)-sorted batch of sealed closures into the engine, advance the
// fold watermark, and sweep resolutions — exactly what advance does for the
// single engine, which is why the merged state is bit-identical to an
// unsharded replay. It returns the resolution sequence counter and the
// resolved-target count for the router's gauges.
func (e *Engine) applyRound(sealed []sealedScenario, target int, maxTS int64) (seq, resolved int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range sealed {
		if err := e.applySealedLocked(s.key, s.esc, s.vsc, s.feats); err != nil {
			return e.seq, len(e.resolved), err
		}
	}
	if maxTS > e.maxTS {
		e.maxTS = maxTS
	}
	if target > e.minOpen {
		e.minOpen = target
	}
	if err := e.sweepResolutions(); err != nil {
		return e.seq, len(e.resolved), err
	}
	return e.seq, len(e.resolved), nil
}

// sortDetections orders detections by (VID, TruePerson, patch bytes). VID
// labels are zero-padded person indexes, so for generated worlds this is the
// batch generator's person-index order — scenario detections come out
// byte-identical to the batch store, and the V stage's accumulation order
// (which affects float results) is preserved. The extra keys only break ties
// between synthetic near-duplicates.
func sortDetections(dets []scenario.Detection) {
	sort.Slice(dets, func(i, j int) bool {
		if dets[i].VID != dets[j].VID {
			return dets[i].VID < dets[j].VID
		}
		if dets[i].TruePerson != dets[j].TruePerson {
			return dets[i].TruePerson < dets[j].TruePerson
		}
		return bytes.Compare(dets[i].Patch.Pix, dets[j].Patch.Pix) < 0
	})
}

// sweepResolutions emits a resolution for every target whose set newly became
// a singleton, in sorted EID order; acceptable VIDs are ruled out for later
// matches, mirroring the batch V stage's serial rule-out. Callers hold e.mu.
func (e *Engine) sweepResolutions() error {
	for _, t := range e.cfg.Targets {
		if e.resolved[t] {
			continue
		}
		ok, err := e.part.Resolved(t)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		pos, err := e.part.PositiveScenarios(t)
		if err != nil {
			return err
		}
		list := core.PadToUnique(e.store, t, pos, e.store.Windows(), e.cfg.MinPerEIDList, e.cfg.MaxScenarios)
		if len(list) == 0 {
			continue // no closed scenario mentions the EID yet; retry later
		}
		res, err := e.filter.Match(t, list, e.accepted)
		if err != nil {
			return err
		}
		e.resolved[t] = true
		if res.VID != ids.NoVID && res.Acceptable {
			e.accepted[res.VID] = true
		}
		e.seq++
		r := Resolution{
			Seq:          e.seq,
			EID:          t,
			VID:          res.VID,
			Probability:  res.Probability,
			MajorityFrac: res.MajorityFrac,
			RunnerUp:     res.RunnerUp,
			Margin:       res.Margin,
			Acceptable:   res.Acceptable,
			Window:       e.minOpen - 1,
		}
		e.emitted = append(e.emitted, r)
		e.broadcast(r)
	}
	return nil
}

// broadcast delivers r to every subscriber, dropping on full buffers so a
// stalled consumer cannot block ingestion. Callers hold e.mu.
func (e *Engine) broadcast(r Resolution) {
	var keys []int
	for id := range e.subs {
		keys = append(keys, id)
	}
	sort.Ints(keys)
	for _, id := range keys {
		select {
		case e.subs[id] <- r:
		default:
		}
	}
}

// Subscribe returns the resolutions emitted so far plus a channel of future
// ones. The returned cancel closes the channel and must be called once.
func (e *Engine) Subscribe() (backlog []Resolution, ch <-chan Resolution, cancel func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	backlog = append([]Resolution(nil), e.emitted...)
	c := make(chan Resolution, 1024)
	id := e.nextSub
	e.nextSub++
	e.subs[id] = c
	return backlog, c, func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if _, ok := e.subs[id]; ok {
			delete(e.subs, id)
			close(c)
		}
	}
}

// Flush closes every open bucket regardless of the watermark — the
// end-of-log signal — and runs a final resolution sweep.
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.flushLocked()
}

func (e *Engine) flushLocked() error {
	maxWin := e.minOpen
	var wins []int
	for k := range e.buckets {
		wins = append(wins, k.Window)
	}
	sort.Ints(wins)
	if n := len(wins); n > 0 && wins[n-1]+1 > maxWin {
		maxWin = wins[n-1] + 1
	}
	if err := e.closeBelow(maxWin); err != nil {
		return err
	}
	e.minOpen = maxWin
	if err := e.sweepResolutions(); err != nil {
		return err
	}
	e.publishGauges()
	return nil
}

// Finalize flushes the stream and runs the authoritative batch match over
// the stream-built store under core.ScanInOrder, cross-checking that the
// incremental split recorded exactly the scenarios the batch split does. The
// returned report's Fingerprint equals the batch SS fingerprint over the
// same data — the subsystem's headline invariant.
func (e *Engine) Finalize(ctx context.Context) (*core.Report, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.flushLocked(); err != nil {
		return nil, err
	}
	ds := &dataset.Dataset{
		Config: dataset.Config{FeatureDim: e.cfg.Dim},
		Store:  e.store,
	}
	m, err := core.New(ds, core.Options{
		Algorithm:       core.AlgorithmSS,
		Mode:            e.cfg.Mode,
		Workers:         e.cfg.Workers,
		Seed:            e.cfg.Seed,
		ScanOrder:       core.ScanInOrder,
		AcceptMajority:  e.cfg.AcceptMajority,
		WorkFactor:      e.cfg.WorkFactor,
		EDPMaxScenarios: e.cfg.MaxScenarios,
		MinPerEIDList:   e.cfg.MinPerEIDList,
		MemBudget:       e.cfg.MemBudget,
		SpillDir:        e.cfg.SpillDir,
		SpillStats:      e.spillStats,
	})
	if err != nil {
		return nil, err
	}
	rep, err := m.Match(ctx, e.cfg.Targets)
	if err != nil {
		return nil, err
	}
	if !scenarioIDsEqual(rep.SplitScenarios, e.part.Recorded()) {
		return nil, fmt.Errorf("%w: batch recorded %v, stream recorded %v",
			ErrDiverged, rep.SplitScenarios, e.part.Recorded())
	}
	return rep, nil
}

func scenarioIDsEqual(a, b []scenario.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Ingested returns how many observations Ingest has consumed (accepted or
// dropped) — the resume offset a restored consumer skips to in the log.
func (e *Engine) Ingested() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ingested
}

// LateDropped returns how many observations arrived after their window
// closed and were dropped.
func (e *Engine) LateDropped() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lateDropped
}

// Resolutions returns a copy of every resolution emitted so far.
func (e *Engine) Resolutions() []Resolution {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Resolution(nil), e.emitted...)
}

// OpenWindows returns how many distinct windows currently have open buckets.
func (e *Engine) OpenWindows() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.openWindowsLocked()
}

func (e *Engine) openWindowsLocked() int {
	var wins []int
	for k := range e.buckets {
		wins = append(wins, k.Window)
	}
	sort.Ints(wins)
	n := 0
	for i, w := range wins {
		if i == 0 || w != wins[i-1] {
			n++
		}
	}
	return n
}

// publishGauges pushes the stream gauges into the configured registry.
// Callers hold e.mu.
func (e *Engine) publishGauges() {
	if e.cfg.Metrics == nil {
		return
	}
	lag := int64(0)
	if e.maxTS >= 0 {
		lag = e.cfg.Clock.Now().UnixMilli() - (e.maxTS - e.cfg.LatenessMS)
	}
	g := map[string]int64{
		"stream_open_windows":        int64(e.openWindowsLocked()),
		"stream_watermark_lag_ms":    lag,
		"stream_pending_eids":        int64(len(e.cfg.Targets) - len(e.resolved)),
		"stream_resolutions_emitted": int64(e.seq),
		"stream_late_dropped":        e.lateDropped,
		"block_candidates_total":     e.blockCandidates,
		"block_pruned_total":         e.blockPruned,
		"block_prune_ratio":          BlockPruneRatioPercent(e.blockCandidates, e.blockPruned),
	}
	if e.spillStats != nil {
		addSpillGauges(g, e.spillStats.Snapshot())
	}
	e.cfg.Metrics.SetMany(g)
}

// BlockStats returns how many sealed scenarios the blocking probe admitted
// to (candidates) and excluded from (pruned) split refinement so far.
func (e *Engine) BlockStats() (candidates, pruned int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.blockCandidates, e.blockPruned
}

// BlockPruneRatioPercent renders a candidates/pruned pair as the integer
// percentage of scenarios pruned, 0–100 — the gauge registry is int64, so
// the ratio is published in percent (documented on /metricsz consumers).
func BlockPruneRatioPercent(candidates, pruned int64) int64 {
	total := candidates + pruned
	if total == 0 {
		return 0
	}
	return pruned * 100 / total
}

// sortBucketKeys orders keys ascending by (window, cell) — the close order,
// which matches the batch generator's cell-ascending emission per window.
func sortBucketKeys(keys []bucketKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Window != keys[j].Window {
			return keys[i].Window < keys[j].Window
		}
		return keys[i].Cell < keys[j].Cell
	})
}

// floorDiv is integer division rounding toward negative infinity, so a
// pre-epoch watermark (before any event) never closes window 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

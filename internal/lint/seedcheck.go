package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// seedcheckFuncs are the math/rand package-level functions backed by the
// shared global source.
var seedcheckFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
}

// SeedCheckAnalyzer flags uses of math/rand's global source in non-test
// code. Every paper figure must be reproducible from a recorded seed
// (EXPERIMENTS.md), so randomness has to flow through an explicit, seeded
// *rand.Rand (see core.Matcher.rngFor) rather than the process-global
// generator.
func SeedCheckAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "seedcheck",
		Doc:  "flag math/rand global-source calls; experiments must be seedable",
		Run:  runSeedCheck,
	}
}

func runSeedCheck(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !seedcheckFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !isRandPackage(p, id) {
				return true
			}
			out = append(out, Finding{
				Rule: "seedcheck",
				Pos:  p.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("rand.%s draws from the global source and cannot be seeded per run; thread a seeded *rand.Rand instead",
					sel.Sel.Name),
			})
			return true
		})
	}
	return out
}

// isRandPackage reports whether id names the math/rand (or math/rand/v2)
// package.
func isRandPackage(p *Pass, id *ast.Ident) bool {
	if obj, ok := p.Info.Uses[id]; ok {
		pn, ok := obj.(*types.PkgName)
		if !ok {
			return false
		}
		path := pn.Imported().Path()
		return path == "math/rand" || path == "math/rand/v2"
	}
	return id.Name == "rand"
}

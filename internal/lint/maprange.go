package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mapRangePackages are the result-affecting packages where map iteration
// order can leak into match output, report bytes, or paper figures.
var mapRangePackages = []string{
	"internal/blocking",
	"internal/core",
	"internal/vfilter",
	"internal/scenario",
	"internal/partition",
	"internal/stream",
	"internal/spill",
	"internal/shardrpc",
}

// MapRangeAnalyzer flags `range` over map-typed values in result-affecting
// packages. Go randomizes map iteration order, so any such loop whose effect
// is order-sensitive makes match results nondeterministic — the paper's SS
// algorithm (§IV) and the MapReduce conformance checks both require
// byte-identical reruns.
//
// Two idioms pass without annotation, because their net effect is provably
// order-free:
//
//   - collect-then-sort: the body only appends the key/value to a slice and
//     the function later sorts that slice (sort.*, ids.SortEIDs, ...);
//   - pure counting: the body only increments or += integer accumulators.
//
// Anything else must either iterate a sorted key slice instead, or carry an
// //evlint:ignore maprange <reason> annotation stating why order cannot
// matter at that site.
func MapRangeAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "maprange",
		Doc:  "flag nondeterministic iteration over maps in result-affecting packages",
		Run:  runMapRange,
	}
}

func runMapRange(p *Pass) []Finding {
	if !inPackages(p.Path, mapRangePackages) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !isMapType(p.Info.TypeOf(rs.X)) {
				return true
			}
			if isCollectThenSort(p, file, rs) || isPureCounting(p, rs.Body) {
				return true
			}
			out = append(out, Finding{
				Rule: "maprange",
				Pos:  p.Fset.Position(rs.For),
				Message: fmt.Sprintf("range over map %s has randomized order; iterate a sorted key slice, or annotate //evlint:ignore maprange <reason>",
					exprString(rs.X)),
			})
			return true
		})
	}
	return out
}

func inPackages(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isCollectThenSort reports the collect-then-sort idiom: the loop body is a
// single (possibly if-guarded) append of the range variables into a slice,
// and a later call in the same function sorts that slice.
func isCollectThenSort(p *Pass, file *ast.File, rs *ast.RangeStmt) bool {
	target := appendTarget(rs.Body.List)
	if target == nil {
		return false
	}
	fn := enclosingFunc(file, rs.Pos())
	if fn == nil {
		return false
	}
	obj := p.Info.Uses[target]
	if obj == nil {
		obj = p.Info.Defs[target]
	}
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || !isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && sameObject(p, id, target, obj) {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// appendTarget returns the slice identifier of a lone `x = append(x, ...)`
// body (optionally wrapped in one if statement), or nil.
func appendTarget(stmts []ast.Stmt) *ast.Ident {
	if len(stmts) != 1 {
		return nil
	}
	switch s := stmts[0].(type) {
	case *ast.IfStmt:
		if s.Else != nil || s.Init != nil {
			return nil
		}
		return appendTarget(s.Body.List)
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 || s.Tok != token.ASSIGN {
			return nil
		}
		lhs, ok := s.Lhs[0].(*ast.Ident)
		if !ok {
			return nil
		}
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return nil
		}
		if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
			return nil
		}
		if len(call.Args) == 0 {
			return nil
		}
		if first, ok := call.Args[0].(*ast.Ident); !ok || first.Name != lhs.Name {
			return nil
		}
		return lhs
	default:
		return nil
	}
}

// isSortCall matches sort.* and project Sort* helpers (ids.SortEIDs, ...).
func isSortCall(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok && id.Name == "sort" {
			return true
		}
		return strings.HasPrefix(fn.Sel.Name, "Sort")
	case *ast.Ident:
		return strings.HasPrefix(fn.Name, "Sort") || strings.HasPrefix(fn.Name, "sort")
	}
	return false
}

func sameObject(p *Pass, a, b *ast.Ident, bObj types.Object) bool {
	if a.Name != b.Name {
		return false
	}
	if bObj == nil {
		return true // no type info: fall back to the name match
	}
	aObj := p.Info.Uses[a]
	if aObj == nil {
		aObj = p.Info.Defs[a]
	}
	return aObj == bObj
}

// isPureCounting reports whether every statement in the body only increments
// integer accumulators (n++, sum += v), possibly behind if guards.
func isPureCounting(p *Pass, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	var check func(stmts []ast.Stmt) bool
	check = func(stmts []ast.Stmt) bool {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ast.IncDecStmt:
				if !isIntegerExpr(p, st.X) {
					return false
				}
			case *ast.AssignStmt:
				if st.Tok != token.ADD_ASSIGN || len(st.Lhs) != 1 || !isIntegerExpr(p, st.Lhs[0]) {
					return false
				}
			case *ast.IfStmt:
				if st.Init != nil || st.Else != nil || !check(st.Body.List) {
					return false
				}
			case *ast.BranchStmt:
				if st.Tok != token.CONTINUE {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	return check(body.List)
}

func isIntegerExpr(p *Pass, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// exprString renders a short source form of simple expressions for messages.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	default:
		return "expression"
	}
}

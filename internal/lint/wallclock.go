package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// wallclockPackages are the replay-deterministic package trees: code whose
// behavior must be a pure function of its inputs so that crash/restore and
// chaos schedules replay bit-identically. Unlike the maprange scope, these
// entries cover their subpackages too (internal/chaos/... hosts the
// simulation kernels).
var wallclockPackages = []string{
	"internal/stream",
	"internal/chaos",
	"internal/spill",
	"internal/shardrpc",
}

// wallclockFuncs are the time-package entry points that read the process
// wall clock.
var wallclockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// WallClockAnalyzer flags wall-clock reads (time.Now, time.Since,
// time.Until) in the replay-deterministic packages. Stream windowing is
// event-time only: a wall-clock read in the hot path would make watermarks —
// and therefore window-close order and match results — depend on scheduling.
// The one sanctioned access is the injected-clock seam itself
// (stream.SystemClock), which carries the ignore annotation.
func WallClockAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "wallclock",
		Doc:  "flag wall-clock reads in replay-deterministic packages; inject a Clock instead",
		Run:  runWallClock,
	}
}

func runWallClock(p *Pass) []Finding {
	if !inPackageTrees(p.Path, wallclockPackages) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !wallclockFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !isTimePackage(p, id) {
				return true
			}
			out = append(out, Finding{
				Rule: "wallclock",
				Pos:  p.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("time.%s reads the wall clock in a replay-deterministic package; inject a Clock through the config seam instead",
					sel.Sel.Name),
			})
			return true
		})
	}
	return out
}

// inPackageTrees reports whether the import path lies inside any of the
// package trees: at the root (pathHasSuffix) or in a subpackage beneath it.
func inPackageTrees(path string, trees []string) bool {
	for _, tree := range trees {
		if pathHasSuffix(path, tree) ||
			strings.HasPrefix(path, tree+"/") ||
			strings.Contains(path, "/"+tree+"/") {
			return true
		}
	}
	return false
}

// isTimePackage reports whether id names the time package.
func isTimePackage(p *Pass, id *ast.Ident) bool {
	if obj, ok := p.Info.Uses[id]; ok {
		pn, ok := obj.(*types.PkgName)
		if !ok {
			return false
		}
		return pn.Imported().Path() == "time"
	}
	return id.Name == "time"
}

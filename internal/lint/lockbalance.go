package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockBalanceAnalyzer checks that mutex acquire/release pairs balance on
// every return path of every function, and that the release matches the
// acquire's kind: a Lock must be released by Unlock (not RUnlock) and an
// RLock by RUnlock. A path that returns while a lock is demonstrably held —
// or that releases a lock it never took — deadlocks or panics at runtime,
// but only on the schedule that takes that path; this check is total.
//
// The analyzer abstractly interprets each function body over per-mutex hold
// counts: straight-line lock calls adjust the counts, deferred releases are
// credited to every later return, branches (if/switch/select) are explored
// independently and must rejoin with identical hold state, and loop bodies
// must be hold-neutral. Function literals are separate functions — a
// goroutine body balances its own locks. The analysis is intraprocedural:
// helpers that intentionally acquire for (or release on behalf of) their
// caller need an //evlint:ignore lockbalance directive naming the contract.
func LockBalanceAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockbalance",
		Doc:  "flag unbalanced or kind-mismatched Lock/Unlock pairs on any return path",
		Run:  runLockBalance,
	}
}

// lockKey identifies one mutex expression and hold kind within a function.
type lockKey struct {
	expr string // source form of the receiver, e.g. "c.mu"
	kind byte   // 'W' for Lock/Unlock, 'R' for RLock/RUnlock
}

func (k lockKey) method() string {
	if k.kind == 'R' {
		return "RLock"
	}
	return "Lock"
}

// lockState maps each lockKey to its current hold depth.
type lockState map[lockKey]int

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		if v != 0 {
			out[k] = v
		}
	}
	return out
}

func (s lockState) equal(o lockState) bool {
	for k, v := range s {
		if o[k] != v {
			return false
		}
	}
	for k, v := range o {
		if s[k] != v {
			return false
		}
	}
	return true
}

// lockWalker interprets one function body.
type lockWalker struct {
	p        *Pass
	findings []Finding
}

func runLockBalance(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			w := &lockWalker{p: p}
			state, deferred, terminated := w.walkStmts(body.List, lockState{}, lockState{})
			if !terminated {
				w.checkExit(state, deferred, body.Rbrace)
			}
			out = append(out, w.findings...)
			return true
		})
	}
	return out
}

// walkStmts interprets stmts from the given hold state. deferred counts
// releases registered by defer statements so far. It returns the exit
// state and whether every path through stmts terminated (returned).
func (w *lockWalker) walkStmts(stmts []ast.Stmt, state, deferred lockState) (lockState, lockState, bool) {
	for _, s := range stmts {
		var terminated bool
		state, deferred, terminated = w.walkStmt(s, state, deferred)
		if terminated {
			return state, deferred, true
		}
	}
	return state, deferred, false
}

func (w *lockWalker) walkStmt(s ast.Stmt, state, deferred lockState) (lockState, lockState, bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			w.applyCall(call, state)
		}
	case *ast.DeferStmt:
		w.applyDefer(st, state, deferred)
	case *ast.ReturnStmt:
		w.checkExit(state, deferred, st.Pos())
		return state, deferred, true
	case *ast.BlockStmt:
		return w.walkStmts(st.List, state, deferred)
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, state, deferred)
	case *ast.IfStmt:
		if st.Init != nil {
			state, deferred, _ = w.walkStmt(st.Init, state, deferred)
		}
		thenState, thenDef, thenTerm := w.walkStmts(st.Body.List, state.clone(), deferred.clone())
		elseState, elseDef, elseTerm := state, deferred, false
		if st.Else != nil {
			elseState, elseDef, elseTerm = w.walkStmt(st.Else, state.clone(), deferred.clone())
		}
		return w.merge(st.If, [][3]any{{thenState, thenDef, thenTerm}, {elseState, elseDef, elseTerm}})
	case *ast.ForStmt:
		if st.Init != nil {
			state, deferred, _ = w.walkStmt(st.Init, state, deferred)
		}
		w.checkLoopBody(st.Body, st.For, state, deferred)
	case *ast.RangeStmt:
		w.checkLoopBody(st.Body, st.For, state, deferred)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkBranches(s, state, deferred)
	}
	return state, deferred, false
}

// checkLoopBody requires the loop body to be hold-neutral: a body that exits
// with a different hold state compounds per iteration.
func (w *lockWalker) checkLoopBody(body *ast.BlockStmt, pos token.Pos, state, deferred lockState) {
	exit, _, terminated := w.walkStmts(body.List, state.clone(), deferred.clone())
	if !terminated && !exit.equal(state) {
		w.findings = append(w.findings, Finding{
			Rule:    "lockbalance",
			Pos:     w.p.Fset.Position(pos),
			Message: "loop body changes the mutex hold state; each iteration compounds the imbalance",
		})
	}
}

// walkBranches explores switch/select clauses independently and merges.
func (w *lockWalker) walkBranches(s ast.Stmt, state, deferred lockState) (lockState, lockState, bool) {
	var clauses []ast.Stmt
	hasDefault := false
	implicitFallthrough := true // switch without default: the no-match path
	switch st := s.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			state, deferred, _ = w.walkStmt(st.Init, state, deferred)
		}
		clauses = st.Body.List
	case *ast.TypeSwitchStmt:
		clauses = st.Body.List
	case *ast.SelectStmt:
		clauses = st.Body.List
		implicitFallthrough = false // select blocks until a clause runs
	}
	var branches [][3]any
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			body = cc.Body
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			if cc.Comm != nil {
				// The comm statement itself (send or receive) holds no locks.
			} else {
				hasDefault = true
			}
			body = cc.Body
		}
		bs, bd, bt := w.walkStmts(body, state.clone(), deferred.clone())
		branches = append(branches, [3]any{bs, bd, bt})
	}
	if len(branches) == 0 {
		return state, deferred, false
	}
	if implicitFallthrough && !hasDefault {
		branches = append(branches, [3]any{state.clone(), deferred.clone(), false})
	}
	return w.merge(s.Pos(), branches)
}

// merge joins branch outcomes: terminated branches drop out; surviving
// branches must agree on the hold state, else the lock is held on only some
// paths — a finding — and analysis continues with the first survivor.
func (w *lockWalker) merge(pos token.Pos, branches [][3]any) (lockState, lockState, bool) {
	var live [][3]any
	for _, b := range branches {
		if !b[2].(bool) {
			live = append(live, b)
		}
	}
	if len(live) == 0 {
		last := branches[len(branches)-1]
		return last[0].(lockState), last[1].(lockState), true
	}
	first := live[0]
	fs, fd := first[0].(lockState), first[1].(lockState)
	for _, b := range live[1:] {
		if !fs.equal(b[0].(lockState)) {
			w.findings = append(w.findings, Finding{
				Rule:    "lockbalance",
				Pos:     w.p.Fset.Position(pos),
				Message: "mutex hold state differs between branches; a lock is held on only some paths from here",
			})
			break
		}
	}
	return fs, fd, false
}

// applyCall interprets one (potential) lock call against the hold state.
func (w *lockWalker) applyCall(call *ast.CallExpr, state lockState) {
	key, op, ok := w.lockCall(call)
	if !ok {
		return
	}
	wKey := lockKey{expr: key, kind: 'W'}
	rKey := lockKey{expr: key, kind: 'R'}
	switch op {
	case "Lock", "TryLock":
		state[wKey]++
	case "RLock", "TryRLock":
		state[rKey]++
	case "Unlock":
		switch {
		case state[wKey] > 0:
			state[wKey]--
		case state[rKey] > 0:
			state[rKey]--
			w.findings = append(w.findings, Finding{
				Rule:    "lockbalance",
				Pos:     w.p.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("%s.RLock released with Unlock; a read lock must be released with RUnlock", key),
			})
		default:
			w.findings = append(w.findings, Finding{
				Rule:    "lockbalance",
				Pos:     w.p.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("%s.Unlock without a visible Lock on this path", key),
			})
		}
	case "RUnlock":
		switch {
		case state[rKey] > 0:
			state[rKey]--
		case state[wKey] > 0:
			state[wKey]--
			w.findings = append(w.findings, Finding{
				Rule:    "lockbalance",
				Pos:     w.p.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("%s.Lock released with RUnlock; a write lock must be released with Unlock", key),
			})
		default:
			w.findings = append(w.findings, Finding{
				Rule:    "lockbalance",
				Pos:     w.p.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("%s.RUnlock without a visible RLock on this path", key),
			})
		}
	}
}

// applyDefer registers a deferred release (defer mu.Unlock()).
func (w *lockWalker) applyDefer(st *ast.DeferStmt, state, deferred lockState) {
	key, op, ok := w.lockCall(st.Call)
	if !ok {
		return
	}
	wKey := lockKey{expr: key, kind: 'W'}
	rKey := lockKey{expr: key, kind: 'R'}
	switch op {
	case "Unlock":
		if state[wKey] == 0 && state[rKey] > 0 {
			w.findings = append(w.findings, Finding{
				Rule:    "lockbalance",
				Pos:     w.p.Fset.Position(st.Pos()),
				Message: fmt.Sprintf("%s.RLock released with deferred Unlock; defer RUnlock instead", key),
			})
			return
		}
		deferred[wKey]++
	case "RUnlock":
		if state[rKey] == 0 && state[wKey] > 0 {
			w.findings = append(w.findings, Finding{
				Rule:    "lockbalance",
				Pos:     w.p.Fset.Position(st.Pos()),
				Message: fmt.Sprintf("%s.Lock released with deferred RUnlock; defer Unlock instead", key),
			})
			return
		}
		deferred[rKey]++
	}
}

// checkExit verifies that every hold is covered by a deferred release at a
// return (or at the end of the function body).
func (w *lockWalker) checkExit(state, deferred lockState, pos token.Pos) {
	for key, depth := range state {
		net := depth - deferred[key]
		if net > 0 {
			w.findings = append(w.findings, Finding{
				Rule:    "lockbalance",
				Pos:     w.p.Fset.Position(pos),
				Message: fmt.Sprintf("return while %s.%s is still held on this path; unlock before returning or defer the release", key.expr, key.method()),
			})
		}
	}
}

// lockCall matches x.(Lock|TryLock|Unlock|RLock|TryRLock|RUnlock)() where
// the method resolves into package sync — sync.Mutex and sync.RWMutex
// receivers (value or pointer) and mutexes promoted from embedded fields.
func (w *lockWalker) lockCall(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "TryLock", "Unlock", "RLock", "TryRLock", "RUnlock":
	default:
		return "", "", false
	}
	if s, okSel := w.p.Info.Selections[sel]; okSel && s.Kind() == types.MethodVal {
		f := s.Obj()
		if f.Pkg() != nil && f.Pkg().Path() == "sync" {
			return exprString(sel.X), sel.Sel.Name, true
		}
		return "", "", false
	}
	// Degraded type info: fall back to the receiver's syntactic type.
	t := w.p.Info.TypeOf(sel.X)
	if ptr, okp := t.(*types.Pointer); okp {
		t = ptr.Elem()
	}
	if !isMutexType(t) {
		return "", "", false
	}
	return exprString(sel.X), sel.Sel.Name, true
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// goroutinePackages are the concurrency-heavy layers implementing the
// paper's MapReduce parallelization, where an unjoined goroutine means lost
// work, lost errors, or a leak under the race detector.
var goroutinePackages = []string{
	"internal/cluster",
	"internal/mapreduce",
	"internal/server",
}

// GoroutineAnalyzer enforces goroutine discipline in the cluster, mapreduce,
// and server packages. A `go` launch passes when its result is observably
// joined:
//
//   - the goroutine participates in a WaitGroup (calls Done), or
//   - the goroutine communicates its completion (sends on or closes a
//     channel), or
//   - the launching function demonstrably waits (a Wait call, channel
//     receive, channel range, or select after the launch).
//
// Fire-and-forget launches are flagged. The analyzer also flags copies of
// sync.Mutex / sync.RWMutex values (parameters, assignments, call
// arguments): a copied lock guards nothing.
func GoroutineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroutine",
		Doc:  "flag unjoined goroutine launches and mutex value copies in concurrency-heavy packages",
		Run:  runGoroutine,
	}
}

func runGoroutine(p *Pass) []Finding {
	if !inPackages(p.Path, goroutinePackages) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.GoStmt:
				if !goroutineJoined(file, st) {
					out = append(out, Finding{
						Rule:    "goroutine",
						Pos:     p.Fset.Position(st.Go),
						Message: "goroutine has no visible join (WaitGroup Done, channel send/close, or a Wait/receive after launch); fire-and-forget loses work and errors",
					})
				}
			case *ast.AssignStmt:
				for _, rhs := range st.Rhs {
					if isMutexValue(p, rhs) {
						out = append(out, mutexFinding(p, rhs))
					}
				}
			case *ast.CallExpr:
				for _, arg := range st.Args {
					if isMutexValue(p, arg) {
						out = append(out, mutexFinding(p, arg))
					}
				}
			case *ast.FuncDecl:
				out = append(out, mutexParams(p, st.Type)...)
			case *ast.FuncLit:
				out = append(out, mutexParams(p, st.Type)...)
			}
			return true
		})
	}
	return out
}

// goroutineJoined reports whether the launch at st is joined by one of the
// accepted disciplines.
func goroutineJoined(file *ast.File, st *ast.GoStmt) bool {
	// Discipline inside the goroutine body: WaitGroup participation or
	// completion signaling over a channel.
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		joined := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SendStmt:
				joined = true
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
					joined = true
				}
				if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" {
					joined = true
				}
			}
			return !joined
		})
		if joined {
			return true
		}
	}
	// Discipline in the launcher: a wait or receive after the launch.
	fn := enclosingFunc(file, st.Pos())
	if fn == nil {
		return false
	}
	joined := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if n == nil || joined || n.Pos() < st.End() {
			return !joined
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				joined = true
			}
		case *ast.RangeStmt:
			// Over a channel this is a drain; over anything else it is
			// harmless to accept only when a receive appears inside, which
			// the inspection below will find on its own.
		case *ast.SelectStmt:
			joined = true
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				joined = true
			}
		}
		return !joined
	})
	return joined
}

func isMutexValue(p *Pass, e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return false // &x, composite literals, calls: not a copy of a value
	}
	return isMutexType(p.Info.TypeOf(e))
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func mutexFinding(p *Pass, e ast.Expr) Finding {
	return Finding{
		Rule:    "goroutine",
		Pos:     p.Fset.Position(e.Pos()),
		Message: fmt.Sprintf("%s copies a sync mutex by value; a copied lock guards nothing — pass a pointer", exprString(e)),
	}
}

func mutexParams(p *Pass, ft *ast.FuncType) []Finding {
	if ft == nil || ft.Params == nil {
		return nil
	}
	var out []Finding
	for _, field := range ft.Params.List {
		if isMutexType(p.Info.TypeOf(field.Type)) {
			out = append(out, Finding{
				Rule:    "goroutine",
				Pos:     p.Fset.Position(field.Pos()),
				Message: "parameter receives a sync mutex by value; a copied lock guards nothing — pass a pointer",
			})
		}
	}
	return out
}

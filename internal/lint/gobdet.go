package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// gobdetPackages are the packages whose gob streams must be byte-
// deterministic and lossless: internal/stream's checkpoint file is the
// crash/restore seam, and its bytes are pinned by the checkpoint → restore →
// re-checkpoint identity property.
var gobdetPackages = []string{
	"internal/stream",
}

// GobDetAnalyzer walks the type graph reachable from every value the package
// gob-encodes or gob-decodes (gob.Encoder.Encode / gob.Decoder.Decode call
// sites) and flags three lossy-or-nondeterministic shapes:
//
//   - map-typed fields: gob serializes map entries in Go's randomized
//     iteration order, so two encodes of equal state produce different
//     bytes — checkpoint byte-reproducibility is gone. Encode a sorted
//     slice of pairs instead.
//   - unexported fields: gob silently skips them, so state survives encode
//     but not restore — a lossy round trip with no error anywhere.
//   - interface-typed fields in a package with no gob.Register call: the
//     concrete type cannot be transmitted, so Encode fails at runtime — on
//     the first checkpoint that actually carries a value.
//
// Types with custom encodings (GobEncode/GobDecode or MarshalBinary/
// UnmarshalBinary) are treated as opaque: their determinism is the
// implementor's contract, not reflection's.
func GobDetAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "gobdet",
		Doc:  "flag map, unexported, and unregistered-interface fields reachable from gob-encoded types",
		Run:  runGobDet,
	}
}

func runGobDet(p *Pass) []Finding {
	if !inPackages(p.Path, gobdetPackages) {
		return nil
	}
	roots, hasRegister := gobRootsAndRegisters(p)
	if len(roots) == 0 {
		return nil
	}
	w := &gobWalker{p: p, hasRegister: hasRegister, seen: make(map[types.Type]bool)}
	for _, r := range roots {
		w.walk(r.t, r.origin)
	}
	return w.findings
}

// gobRoot pairs a root type with the Encode/Decode call position that
// anchors findings on types defined outside the package's own files.
type gobRoot struct {
	t      types.Type
	origin string
}

// gobRootsAndRegisters finds the static types of every gob Encode/Decode
// argument in the package, and whether the package registers any concrete
// type for interface transmission.
func gobRootsAndRegisters(p *Pass) ([]gobRoot, bool) {
	var roots []gobRoot
	hasRegister := false
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgFunc(p, call.Fun, "encoding/gob", "Register") || isPkgFunc(p, call.Fun, "encoding/gob", "RegisterName") {
				hasRegister = true
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Encode" && sel.Sel.Name != "Decode") || len(call.Args) != 1 {
				return true
			}
			if !isGobCodec(p.Info.TypeOf(sel.X)) {
				return true
			}
			t := p.Info.TypeOf(call.Args[0])
			if t == nil {
				return true
			}
			for {
				ptr, ok := t.Underlying().(*types.Pointer)
				if !ok {
					break
				}
				t = ptr.Elem()
			}
			roots = append(roots, gobRoot{t: t, origin: p.Fset.Position(call.Pos()).String()})
			return true
		})
	}
	return roots, hasRegister
}

// isGobCodec reports whether t is (a pointer to) gob.Encoder or gob.Decoder.
func isGobCodec(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "encoding/gob" &&
		(obj.Name() == "Encoder" || obj.Name() == "Decoder")
}

type gobWalker struct {
	p           *Pass
	hasRegister bool
	seen        map[types.Type]bool
	findings    []Finding
}

// walk visits every type reachable from t through struct fields and
// composite element types, flagging the offending fields.
func (w *gobWalker) walk(t types.Type, origin string) {
	if t == nil || w.seen[t] {
		return
	}
	w.seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if hasCustomGobEncoding(named) {
			return
		}
		w.walk(named.Underlying(), origin)
		return
	}
	switch u := t.(type) {
	case *types.Pointer:
		w.walk(u.Elem(), origin)
	case *types.Slice:
		w.walk(u.Elem(), origin)
	case *types.Array:
		w.walk(u.Elem(), origin)
	case *types.Map:
		w.walk(u.Key(), origin)
		w.walk(u.Elem(), origin)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			w.field(u.Field(i), origin)
		}
	}
}

// field applies the three checks to one struct field, then recurses into
// its type.
func (w *gobWalker) field(f *types.Var, origin string) {
	pos := w.p.Fset.Position(f.Pos())
	if !f.Exported() && !f.Embedded() {
		w.findings = append(w.findings, Finding{
			Rule: "gobdet",
			Pos:  pos,
			Message: fmt.Sprintf("unexported field %s is reachable from the gob stream at %s; gob silently drops it, so restore is lossy — export it or encode it explicitly",
				f.Name(), origin),
		})
		return // its contents never hit the wire; nothing below matters
	}
	ft := f.Type()
	if _, isMap := ft.Underlying().(*types.Map); isMap && !typeHasCustomGobEncoding(ft) {
		w.findings = append(w.findings, Finding{
			Rule: "gobdet",
			Pos:  pos,
			Message: fmt.Sprintf("map field %s is gob-encoded (via %s) in randomized iteration order; equal states produce different checkpoint bytes — encode a sorted slice of pairs instead",
				f.Name(), origin),
		})
	}
	if iface, isIface := ft.Underlying().(*types.Interface); isIface && !w.hasRegister {
		what := "interface"
		if iface.Empty() {
			what = "empty-interface"
		}
		w.findings = append(w.findings, Finding{
			Rule: "gobdet",
			Pos:  pos,
			Message: fmt.Sprintf("%s field %s is gob-encoded (via %s) but the package never calls gob.Register; Encode fails on the first non-nil value",
				what, f.Name(), origin),
		})
	}
	w.walk(ft, origin)
}

// hasCustomGobEncoding reports whether the named type (or its pointer
// receiver set) implements gob or binary custom encoding on both sides.
func hasCustomGobEncoding(named *types.Named) bool {
	enc, dec := false, false
	for _, t := range []types.Type{named, types.NewPointer(named)} {
		ms := types.NewMethodSet(t)
		for i := 0; i < ms.Len(); i++ {
			switch ms.At(i).Obj().Name() {
			case "GobEncode", "MarshalBinary":
				enc = true
			case "GobDecode", "UnmarshalBinary":
				dec = true
			}
		}
	}
	return enc && dec
}

func typeHasCustomGobEncoding(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && hasCustomGobEncoding(named)
}

// Package lint implements evlint, the project's static-analysis pass suite.
// It enforces the correctness disciplines the EV-Matching reproduction
// depends on — deterministic iteration in result-affecting packages, error
// wrapping, goroutine join discipline, seedable randomness, pooled-scratch
// containment, consistent atomic access, lock balance, and deterministic gob
// checkpoints — as named, individually testable analyzers built only on
// go/ast, go/parser, and go/types.
//
// A finding can be suppressed by annotating the offending line (or the line
// directly above it) with
//
//	//evlint:ignore <rule> <reason>
//
// The reason is mandatory: a directive without one suppresses nothing and is
// itself reported, so every escape hatch documents why the rule does not
// apply. A directive that suppresses nothing is itself reported as stale, so
// suppressions cannot outlive the code they excused.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Rule    string
	Pos     token.Position
	Message string
}

// String formats the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Module hands every type-checked package to a module-scope analyzer. All
// passes share one loader, so a types.Object seen in one package is the same
// object when referenced from another — cross-package rules (atomicmix)
// compare object identities directly.
type Module struct {
	Passes []*Pass
}

// Analyzer is one named rule. Run analyzes one package at a time and may run
// concurrently with itself on different packages; RunModule sees the whole
// module at once for rules whose evidence spans packages. An analyzer sets
// exactly one of the two.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass) []Finding
	RunModule func(*Module) []Finding
}

// Analyzers returns the full pass suite in its canonical order: the five
// syntax-level analyzers of PR 1/5 first, then the four type-aware
// deep-analysis rules, each group in introduction order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapRangeAnalyzer(),
		ErrWrapAnalyzer(),
		GoroutineAnalyzer(),
		SeedCheckAnalyzer(),
		WallClockAnalyzer(),
		PoolEscapeAnalyzer(),
		AtomicMixAnalyzer(),
		LockBalanceAnalyzer(),
		GobDetAnalyzer(),
	}
}

// ignoreDirective is one parsed //evlint:ignore comment. used records
// whether any finding was suppressed by it; a directive that stays unused
// through a full run is stale and becomes a finding itself.
type ignoreDirective struct {
	rule   string
	reason string
	pos    token.Position
	used   bool
}

const directivePrefix = "//evlint:ignore"

// directives extracts the ignore directives of every file in the package,
// keyed by file name then line, merging into dirs. Malformed directives are
// returned as findings.
func directives(p *Pass, dirs map[string]map[int]*ignoreDirective) []Finding {
	var bad []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix))
				rule, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if rule == "" || reason == "" {
					bad = append(bad, Finding{
						Rule:    "ignore",
						Pos:     pos,
						Message: "evlint:ignore directive needs a rule and a reason: //evlint:ignore <rule> <reason>",
					})
					continue
				}
				byLine := dirs[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]*ignoreDirective)
					dirs[pos.Filename] = byLine
				}
				byLine[pos.Line] = &ignoreDirective{rule: rule, reason: reason, pos: pos}
			}
		}
	}
	return bad
}

// suppress reports whether a finding of rule at pos is covered by a
// directive on the same line or the line directly above, marking the
// directive used.
func suppress(dirs map[string]map[int]*ignoreDirective, rule string, pos token.Position) bool {
	byLine := dirs[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d, ok := byLine[line]; ok && d.rule == rule {
			d.used = true
			return true
		}
	}
	return false
}

// Run applies every analyzer to every package, applies suppressions, audits
// them for staleness, and returns the surviving findings sorted by position.
//
// Per-package analyzers run concurrently across packages (the suite is
// dominated by type-checking plus AST walks over independent packages);
// findings are collected per package and merged in package order, so the
// output is deterministic regardless of scheduling. Module-scope analyzers
// run once over all passes afterwards.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	passes := make([]*Pass, len(pkgs))
	for i, pkg := range pkgs {
		passes[i] = &Pass{Path: pkg.Path, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info}
	}

	// Directives first (serially — they share one map across packages, and a
	// module-scope finding may land in a file of another package).
	dirs := make(map[string]map[int]*ignoreDirective)
	var all []Finding
	for _, p := range passes {
		all = append(all, directives(p, dirs)...)
	}

	// Per-package analyzers, concurrent across packages.
	perPkg := make([][]Finding, len(passes))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, p := range passes {
		wg.Add(1)
		go func(i int, p *Pass) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var out []Finding
			for _, a := range analyzers {
				if a.Run != nil {
					out = append(out, a.Run(p)...)
				}
			}
			perPkg[i] = out
		}(i, p)
	}
	wg.Wait()

	module := &Module{Passes: passes}
	var raw []Finding
	for _, fs := range perPkg {
		raw = append(raw, fs...)
	}
	for _, a := range analyzers {
		if a.RunModule != nil {
			raw = append(raw, a.RunModule(module)...)
		}
	}
	for _, f := range raw {
		if !suppress(dirs, f.Rule, f.Pos) {
			all = append(all, f)
		}
	}

	all = append(all, auditDirectives(dirs, analyzers)...)
	SortFindings(all)
	return all
}

// auditDirectives reports every directive that suppressed nothing during the
// run. Only directives whose rule was actually part of the analyzer set are
// audited, so running a -rules subset cannot misreport suppressions of the
// rules it skipped.
func auditDirectives(dirs map[string]map[int]*ignoreDirective, analyzers []*Analyzer) []Finding {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var out []Finding
	for _, byLine := range dirs {
		for _, d := range byLine {
			if d.used || !ran[d.rule] {
				continue
			}
			out = append(out, Finding{
				Rule:    "ignore",
				Pos:     d.pos,
				Message: fmt.Sprintf("stale //evlint:ignore %s directive suppresses nothing; remove it (or fix the reason) so suppressions cannot outlive the code they excused", d.rule),
			})
		}
	}
	return out
}

// SortFindings orders findings by file, line, column, then rule.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// pathHasSuffix reports whether the package import path equals suffix or ends
// with "/"+suffix — how analyzers scope themselves to project packages
// without hardcoding the module name.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// enclosingFunc returns the innermost function body containing pos, walking
// both declarations and function literals.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil && body.Pos() <= pos && pos < body.End() {
			best = body // keep descending: innermost wins
		}
		return true
	})
	return best
}

// Package lint implements evlint, the project's static-analysis pass suite.
// It enforces the correctness disciplines the EV-Matching reproduction
// depends on — deterministic iteration in result-affecting packages, error
// wrapping, goroutine join discipline, and seedable randomness — as named,
// individually testable analyzers built only on go/ast, go/parser, and
// go/types.
//
// A finding can be suppressed by annotating the offending line (or the line
// directly above it) with
//
//	//evlint:ignore <rule> <reason>
//
// The reason is mandatory: a directive without one suppresses nothing and is
// itself reported, so every escape hatch documents why the rule does not
// apply.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Rule    string
	Pos     token.Position
	Message string
}

// String formats the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Analyzer is one named rule over a package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) []Finding
}

// Analyzers returns the full pass suite in its canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapRangeAnalyzer(),
		ErrWrapAnalyzer(),
		GoroutineAnalyzer(),
		SeedCheckAnalyzer(),
		WallClockAnalyzer(),
	}
}

// ignoreDirective is one parsed //evlint:ignore comment.
type ignoreDirective struct {
	rule   string
	reason string
	pos    token.Position
}

const directivePrefix = "//evlint:ignore"

// directives extracts the ignore directives of every file in the package,
// keyed by file name then line.
func directives(p *Pass) (map[string]map[int]ignoreDirective, []Finding) {
	out := make(map[string]map[int]ignoreDirective)
	var bad []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix))
				rule, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if rule == "" || reason == "" {
					bad = append(bad, Finding{
						Rule:    "ignore",
						Pos:     pos,
						Message: "evlint:ignore directive needs a rule and a reason: //evlint:ignore <rule> <reason>",
					})
					continue
				}
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]ignoreDirective)
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = ignoreDirective{rule: rule, reason: reason, pos: pos}
			}
		}
	}
	return out, bad
}

// suppressed reports whether a finding of rule at pos is covered by a
// directive on the same line or the line directly above.
func suppressed(dirs map[string]map[int]ignoreDirective, rule string, pos token.Position) bool {
	byLine := dirs[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d, ok := byLine[line]; ok && d.rule == rule {
			return true
		}
	}
	return false
}

// Run applies every analyzer to every package, applies suppressions, and
// returns the surviving findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, pkg := range pkgs {
		pass := &Pass{Path: pkg.Path, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info}
		dirs, bad := directives(pass)
		all = append(all, bad...)
		for _, a := range analyzers {
			for _, f := range a.Run(pass) {
				if !suppressed(dirs, f.Rule, f.Pos) {
					all = append(all, f)
				}
			}
		}
	}
	SortFindings(all)
	return all
}

// SortFindings orders findings by file, line, column, then rule.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// pathHasSuffix reports whether the package import path equals suffix or ends
// with "/"+suffix — how analyzers scope themselves to project packages
// without hardcoding the module name.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// enclosingFunc returns the innermost function body containing pos, walking
// both declarations and function literals.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil && body.Pos() <= pos && pos < body.End() {
			best = body // keep descending: innermost wins
		}
		return true
	})
	return best
}

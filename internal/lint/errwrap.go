package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrWrapAnalyzer flags fmt.Errorf calls that interpolate an error operand
// (via %v, %s, ...) without wrapping it with %w. Unwrapped errors break the
// errors.Is / errors.As chains callers rely on — the cluster coordinator's
// retry path inspects failure causes, and context cancellation must stay
// detectable through every layer.
func ErrWrapAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "errwrap",
		Doc:  "flag fmt.Errorf with an error operand but no %w verb",
		Run:  runErrWrap,
	}
}

func runErrWrap(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(p, call.Fun, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			format, ok := constString(p, call.Args[0])
			if !ok {
				return true
			}
			wraps := countVerb(format, 'w')
			errArgs := 0
			var firstErr ast.Expr
			for _, arg := range call.Args[1:] {
				if isErrorExpr(p, arg) {
					errArgs++
					if firstErr == nil {
						firstErr = arg
					}
				}
			}
			if errArgs > wraps {
				out = append(out, Finding{
					Rule: "errwrap",
					Pos:  p.Fset.Position(call.Pos()),
					Message: fmt.Sprintf("fmt.Errorf formats error %s without %%w; wrap it so errors.Is/errors.As keep working",
						exprString(firstErr)),
				})
			}
			return true
		})
	}
	return out
}

// isPkgFunc reports whether fun is a selector pkg.name where pkg is the
// package imported from pkgPath (falling back to the bare name when type
// information is unavailable).
func isPkgFunc(p *Pass, fun ast.Expr, pkgPath, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if obj, ok := p.Info.Uses[id]; ok {
		pn, ok := obj.(*types.PkgName)
		return ok && pn.Imported().Path() == pkgPath
	}
	return id.Name == pathBase(pkgPath)
}

// constString extracts a compile-time constant string value.
func constString(p *Pass, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	if lit, ok := e.(*ast.BasicLit); ok && len(lit.Value) >= 2 {
		return strings.Trim(lit.Value, "`\""), true
	}
	return "", false
}

// countVerb counts occurrences of the formatting verb v, skipping %%.
func countVerb(format string, v byte) int {
	n := 0
	for i := 0; i+1 < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		if format[i+1] == '%' {
			i++
			continue
		}
		// Skip flags, width, and precision between % and the verb.
		j := i + 1
		for j < len(format) && strings.IndexByte("+-# 0123456789.*", format[j]) >= 0 {
			j++
		}
		if j < len(format) && format[j] == v {
			n++
		}
		i = j
	}
	return n
}

// isErrorExpr reports whether e is error-typed.
func isErrorExpr(p *Pass, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		// Without type information, still catch the idiomatic identifier.
		id, ok := e.(*ast.Ident)
		return ok && (id.Name == "err" || strings.HasSuffix(id.Name, "Err"))
	}
	return implementsError(t)
}

func implementsError(t types.Type) bool {
	iface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

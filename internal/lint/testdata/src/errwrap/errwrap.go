// Package retry is an errwrap fixture; the rule applies in every package.
package retry

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

// Bad formats an error with %v, breaking the errors.Is chain: flagged.
func Bad(err error) error {
	return fmt.Errorf("retry failed: %v", err)
}

// BadString drops the error into %s: flagged.
func BadString(attempt int, err error) error {
	return fmt.Errorf("attempt %d: %s", attempt, err)
}

// BadPartial wraps one error but interpolates a second: flagged.
func BadPartial(err error) error {
	return fmt.Errorf("%w: %v", errBase, err)
}

// Suppressed intentionally breaks the chain and says why: not reported.
func Suppressed(err error) error {
	//evlint:ignore errwrap user-facing message; the cause is logged separately
	return fmt.Errorf("retry failed: %v", err)
}

// CleanWrap wraps with %w: not flagged.
func CleanWrap(err error) error {
	return fmt.Errorf("retry failed: %w", err)
}

// CleanDouble wraps both errors (Go 1.20+ multi-%w): not flagged.
func CleanDouble(err error) error {
	return fmt.Errorf("%w: %w", errBase, err)
}

// CleanNoError has no error operand at all: not flagged.
func CleanNoError(n int) error {
	return fmt.Errorf("bad count %d (max 100%%)", n)
}

// Package core is a maprange fixture posing as a result-affecting package
// (the test loads it under an import path ending internal/core).
package core

import "sort"

// Bad iterates a map with an order-sensitive body: flagged.
func Bad(m map[string]int) int {
	last := 0
	for _, v := range m {
		last = v
	}
	return last
}

// BadNested flags map ranges inside function literals too.
func BadNested(m map[string]bool) func() []string {
	return func() []string {
		var out []string
		for k := range m {
			if m[k] {
				out = append(out, k)
			}
			out = append(out, k)
		}
		return out
	}
}

// Suppressed documents why order cannot matter and is not reported.
func Suppressed(dst, src map[string]bool) {
	//evlint:ignore maprange set copy; the result is identical under any iteration order
	for k := range src {
		dst[k] = true
	}
}

// BadDirective has a reasonless directive: the directive itself is reported
// and the range stays flagged.
func BadDirective(m map[string]int) {
	//evlint:ignore maprange
	for k := range m {
		delete(m, k)
	}
}

// CleanCollect uses the collect-then-sort idiom: not flagged.
func CleanCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CleanGuardedCollect is collect-then-sort behind an if guard: not flagged.
func CleanGuardedCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// CleanCount only increments integer accumulators: not flagged.
func CleanCount(m map[string]int) (int, int) {
	n, sum := 0, 0
	for _, v := range m {
		if v < 0 {
			continue
		}
		n++
		sum += v
	}
	return n, sum
}

// CleanSlice ranges a slice, which is ordered: not flagged.
func CleanSlice(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

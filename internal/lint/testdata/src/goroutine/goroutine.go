// Package cluster is a goroutine-discipline fixture posing as a
// concurrency-heavy package (the test loads it under an import path ending
// internal/cluster).
package cluster

import "sync"

func work() {}

// Bad launches a goroutine nothing ever joins: flagged.
func Bad() {
	go func() {
		work()
	}()
}

// Suppressed is a documented daemon: not reported.
func Suppressed() {
	//evlint:ignore goroutine accept loop runs for the process lifetime; Close unblocks it
	go func() {
		work()
	}()
}

// CleanWaitGroup joins through a WaitGroup: not flagged.
func CleanWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// CleanChannel signals completion over a channel the launcher receives from:
// not flagged.
func CleanChannel() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// CleanSend sends its result; the caller is handed the channel: not flagged.
func CleanSend() <-chan int {
	out := make(chan int, 1)
	go func() {
		out <- 1
	}()
	return out
}

type guarded struct {
	mu sync.Mutex
	n  int
}

// BadMutexCopy copies a lock out of its struct: flagged.
func BadMutexCopy(g *guarded) {
	m := g.mu
	m.Lock()
	defer m.Unlock()
	g.n++
}

// BadMutexParam receives a lock by value: flagged.
func BadMutexParam(mu sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

// SuppressedMutexParam documents the copy: not reported.
//
//evlint:ignore goroutine fixture exercising the suppressed parameter form
func SuppressedMutexParam(mu sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

// CleanMutexPointer passes the lock by pointer: not flagged.
func CleanMutexPointer(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

// Package ignoreaudit fixtures: a directive that suppresses nothing is stale
// and must itself fail the build.
package ignoreaudit

// Total ranges over a slice, which is already deterministic — the directive
// below suppresses nothing and the audit must flag it.
func Total(xs []int) int {
	total := 0
	//evlint:ignore maprange slice iteration is already deterministic
	for _, v := range xs {
		total += v
	}
	return total
}

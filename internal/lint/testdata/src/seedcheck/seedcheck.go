// Package seed is a seedcheck fixture; the rule applies in every non-test
// package.
package seed

import "math/rand"

// Bad draws from the process-global source: flagged.
func Bad() int {
	return rand.Intn(10)
}

// BadShuffle mutates through the global source: flagged.
func BadShuffle(s []int) {
	rand.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

// Suppressed documents a result-neutral use: not reported.
func Suppressed() float64 {
	//evlint:ignore seedcheck backoff jitter; never reaches match results
	return rand.Float64()
}

// Clean threads an explicitly seeded generator: not flagged.
func Clean(seedVal int64) int {
	r := rand.New(rand.NewSource(seedVal))
	return r.Intn(10)
}

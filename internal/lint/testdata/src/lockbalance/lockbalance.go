// Package lockbalance fixtures: Lock/Unlock must balance on every return
// path, with matching read/write kinds.
package lockbalance

import "sync"

type box struct {
	mu  sync.Mutex
	rmu sync.RWMutex
	n   int
}

// BadEarlyReturn forgets the unlock on the early path.
func (b *box) BadEarlyReturn(flag bool) int {
	b.mu.Lock()
	if flag {
		return -1 // want: return while b.mu is held
	}
	n := b.n
	b.mu.Unlock()
	return n
}

// BadKindMismatch releases a write lock with the read-side method.
func (b *box) BadKindMismatch() {
	b.rmu.Lock()
	b.n++
	b.rmu.RUnlock() // want: write lock released with RUnlock
}

// BadLoopAccumulates acquires once per iteration without releasing.
func (b *box) BadLoopAccumulates(xs []int) {
	for range xs { // want: loop body changes hold state
		b.mu.Lock()
	}
}

// GoodDefer is the canonical paired form.
func (b *box) GoodDefer() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// GoodExplicitBranches releases on every path explicitly.
func (b *box) GoodExplicitBranches(flag bool) int {
	b.mu.Lock()
	if flag {
		b.mu.Unlock()
		return -1
	}
	n := b.n
	b.mu.Unlock()
	return n
}

// GoodReadSide pairs the read-side methods.
func (b *box) GoodReadSide() int {
	b.rmu.RLock()
	defer b.rmu.RUnlock()
	return b.n
}

// LockedView acquires for the caller by contract — the one shape that must
// return while holding, sanctioned by directive.
func (b *box) LockedView() int {
	b.mu.Lock()
	//evlint:ignore lockbalance acquires for the caller; the caller must Unlock
	return b.n
}

// Package atomicmix fixtures: a field accessed via sync/atomic anywhere must
// be accessed atomically everywhere.
package atomicmix

import "sync/atomic"

type counters struct {
	hits  int64
	typed atomic.Int64
}

// Bump is the atomic writer that puts hits under the atomicmix contract.
func (c *counters) Bump() {
	atomic.AddInt64(&c.hits, 1)
	c.typed.Add(1)
}

// Snapshot reads hits plainly — the data race the analyzer exists to catch.
func (c *counters) Snapshot() int64 {
	return c.hits // want: plain read of atomic field
}

// Reset writes hits plainly under the atomic writer's nose.
func (c *counters) Reset() {
	c.hits = 0 // want: plain write of atomic field
}

// Typed uses the typed atomic; plain access is impossible, never flagged.
func (c *counters) Typed() int64 {
	return c.typed.Load()
}

// FinalSnapshot documents a sanctioned plain read: all writers have joined.
func (c *counters) FinalSnapshot() int64 {
	//evlint:ignore atomicmix read happens after Wait(); every writer has joined
	return c.hits
}

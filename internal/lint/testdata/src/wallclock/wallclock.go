// Package wallclock is a fixture for the wallclock rule, loaded under an
// import path inside internal/stream.
package wallclock

import "time"

// Bad reads the wall clock directly: flagged.
func Bad() time.Time {
	return time.Now()
}

// BadElapsed measures with the wall clock: flagged.
func BadElapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// BadDeadline is the third global entry point: flagged.
func BadDeadline(deadline time.Time) time.Duration {
	return time.Until(deadline)
}

// Seam is the sanctioned injected-clock seam: not reported.
func Seam() time.Time {
	//evlint:ignore wallclock fixture seam mirroring stream.SystemClock
	return time.Now()
}

// Clean works in pure event time: nothing to flag.
func Clean(tsMS, windowMS int64) int64 {
	return tsMS / windowMS
}

// CleanArithmetic uses time values without reading the clock: not flagged.
func CleanArithmetic(t time.Time, d time.Duration) time.Time {
	return t.Add(d)
}

// Package poolescape fixtures: pooled scratch must not outlive its Put.
package poolescape

import "sync"

type scratch struct {
	buf []float64
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

var leaked *scratch

// BadReturn hands the pooled value to the caller while the deferred Put
// recycles it.
func BadReturn() *scratch {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	return s // want: escapes via return
}

// BadSliceReturn leaks pooled backing memory through a re-slice alias.
func BadSliceReturn(n int) []float64 {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	return s.buf[:n] // want: escapes via return
}

// BadStoreGlobal parks pooled scratch in a package-level variable.
func BadStoreGlobal() {
	s := pool.Get().(*scratch)
	leaked = s // want: stored in package-level leaked
	pool.Put(s)
}

type holder struct{ s *scratch }

// BadStoreStruct stores pooled scratch in a struct that outlives the Put.
func BadStoreStruct(h *holder) {
	s := pool.Get().(*scratch)
	h.s = s // want: stored in h.s
	pool.Put(s)
}

// BadGoroutine launches a reader while the launcher's defer Puts the value.
func BadGoroutine(done chan struct{}) {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	go func() {
		_ = s.buf // want: captured by a goroutine
		close(done)
	}()
}

// getScratch is a sanctioned provider: it intentionally hands out pooled
// scratch, and its callers are tracked like direct Get callers.
func getScratch() *scratch {
	//evlint:ignore poolescape provider; callers borrow through getScratch and must Put
	return pool.Get().(*scratch)
}

// BadProviderReturn shows provider-call tracking: the borrow came from
// getScratch, not pool.Get, and still must not escape.
func BadProviderReturn() *scratch {
	s := getScratch()
	defer pool.Put(s)
	return s // want: escapes via return
}

// GoodCopyOut reduces into a plain value before the Put; nothing aliases the
// scratch afterwards.
func GoodCopyOut(xs []float64) float64 {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	s.buf = append(s.buf[:0], xs...)
	total := 0.0
	for _, v := range s.buf {
		total += v
	}
	return total
}

// GoodGoroutineOwns transfers the borrow: the goroutine Puts the value back
// itself, so the capture is the ownership handoff, not a leak.
func GoodGoroutineOwns(done chan struct{}) {
	s := pool.Get().(*scratch)
	go func() {
		_ = s.buf
		pool.Put(s)
		close(done)
	}()
}

// Package gobdet fixtures: types reachable from a gob stream must encode
// deterministically and losslessly.
package gobdet

import (
	"bytes"
	"encoding/gob"
)

type inner struct {
	Weights map[string]float64 // want: map field, randomized order
	secret  int                // want: unexported, silently dropped
}

type payload struct {
	Name  string
	Parts []inner
	Extra any // want: interface without gob.Register
}

// Save gob-encodes a payload — the root the reachability walk starts from.
func Save(w *bytes.Buffer, p *payload) error {
	return gob.NewEncoder(w).Encode(p)
}

type sanctioned struct {
	//evlint:ignore gobdet bytes of this side stream are never compared; order does not matter
	Index map[int]bool
}

// SaveSanctioned's map field carries a documented suppression.
func SaveSanctioned(w *bytes.Buffer, s *sanctioned) error {
	return gob.NewEncoder(w).Encode(s)
}

type clean struct {
	ID    int64
	Names []string
}

// SaveClean round-trips losslessly and deterministically; no findings.
func SaveClean(w *bytes.Buffer, c *clean) error {
	return gob.NewEncoder(w).Encode(c)
}

package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked (non-test) package of the module.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker diagnostics. Checking is tolerant:
	// analyzers degrade to partial type information rather than refusing to
	// run, so evlint stays useful on a tree that is mid-refactor.
	TypeErrors []error
}

// ModulePath reads the module path from the go.mod at root.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: read go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mod := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(mod); err == nil {
				mod = unq
			}
			if mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", filepath.Join(root, "go.mod"))
}

// FindModuleRoot walks up from dir to the nearest directory with a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", fmt.Errorf("lint: resolve %s: %w", dir, err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// loader type-checks the module's packages in dependency order, resolving
// in-module imports from its own results and everything else (the standard
// library) through the source importer.
type loader struct {
	root    string
	module  string
	fset    *token.FileSet
	dirs    map[string]string // import path -> directory
	pkgs    map[string]*Package
	loading map[string]bool
	std     types.ImporterFrom
	stdPkgs map[string]*types.Package
}

// LoadModule parses and type-checks every non-test package under root.
// Directories named testdata, hidden directories, and _-prefixed directories
// are skipped, matching the go tool's convention.
func LoadModule(root string) ([]*Package, error) {
	module, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, module)
	if err := l.discover(); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path, resolving all imports through the source importer. Test
// fixtures use it to pose as project packages (the analyzers scope themselves
// by import path).
func LoadDir(dir, importPath string) (*Package, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: resolve %s: %w", dir, err)
	}
	l := newLoader(root, importPath)
	l.dirs[importPath] = root
	return l.load(importPath)
}

func newLoader(root, module string) *loader {
	fset := token.NewFileSet()
	std, _ := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return &loader{
		root:    root,
		module:  module,
		fset:    fset,
		dirs:    make(map[string]string),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		std:     std,
		stdPkgs: make(map[string]*types.Package),
	}
}

// discover maps every package directory under root to its import path.
func (l *loader) discover() error {
	return filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			rel, err := filepath.Rel(l.root, path)
			if err != nil {
				return fmt.Errorf("lint: relativize %s: %w", path, err)
			}
			ip := l.module
			if rel != "." {
				ip = l.module + "/" + filepath.ToSlash(rel)
			}
			l.dirs[ip] = path
		}
		return nil
	})
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isLintedFile(e.Name()) {
			return true
		}
	}
	return false
}

// isLintedFile reports whether name is a non-test Go source file.
func isLintedFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// load type-checks the package at import path p (and, first, its in-module
// dependencies). Returns nil for directories with no linted files.
func (l *loader) load(p string) (*Package, error) {
	if pkg, ok := l.pkgs[p]; ok {
		return pkg, nil
	}
	if l.loading[p] {
		return nil, fmt.Errorf("lint: import cycle through %s", p)
	}
	l.loading[p] = true
	defer func() { l.loading[p] = false }()

	dir := l.dirs[p]
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: read %s: %w", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isLintedFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	// Load in-module dependencies first so the importer can resolve them.
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if _, inModule := l.dirs[path]; inModule && path != p {
				if _, err := l.load(path); err != nil {
					return nil, err
				}
			}
		}
	}

	pkg := &Package{Path: p, Dir: dir, Fset: l.fset, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: &packageImporter{l: l},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(p, l.fset, files, info) // errors collected above
	pkg.Pkg = tpkg
	pkg.Info = info
	l.pkgs[p] = pkg
	return pkg, nil
}

// packageImporter resolves in-module imports from the loader and the rest
// from the source importer; unresolvable imports degrade to an empty
// placeholder package so analysis can continue on partial information.
type packageImporter struct {
	l *loader
}

func (pi *packageImporter) Import(path string) (*types.Package, error) {
	l := pi.l
	if pkg, ok := l.pkgs[path]; ok && pkg.Pkg != nil {
		return pkg.Pkg, nil
	}
	if _, inModule := l.dirs[path]; inModule {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg != nil && pkg.Pkg != nil {
			return pkg.Pkg, nil
		}
	}
	if p, ok := l.stdPkgs[path]; ok {
		return p, nil
	}
	var p *types.Package
	var err error
	if l.std != nil {
		p, err = l.std.ImportFrom(path, l.root, 0)
	}
	if p == nil || err != nil {
		// Placeholder: references through it become type errors, which the
		// tolerant checker records and skips.
		p = types.NewPackage(path, pathBase(path))
		p.MarkComplete()
	}
	l.stdPkgs[path] = p
	return p, nil
}

func pathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

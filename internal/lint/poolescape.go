package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// PoolEscapeAnalyzer flags pooled scratch that escapes its borrow window. A
// value obtained from sync.Pool.Get (directly, or through an in-package
// function that returns pooled scratch) is only valid between Get and Put:
// once Put returns it to the pool, a concurrent borrower may overwrite it.
// The V-stage hot path (internal/vfilter) leans on exactly this discipline —
// per-Match scratch tables recycle through a pool — so any alias that
// outlives the Put silently corrupts another goroutine's match.
//
// Within each function, the analyzer tracks the Get result and every local
// alias derived from it through assignment, field selection, indexing, slice
// re-slicing, dereference, and type conversion (value copies of
// non-reference types are not aliases and are not tracked). It flags a
// tracked value that is
//
//   - returned to the caller,
//   - stored into a struct, map, or slice that is not itself pooled scratch,
//     or into a package-level variable, or
//   - captured by a goroutine, unless that goroutine visibly Puts the value
//     back itself (then the goroutine, not the launcher, owns the borrow).
//
// A function that intentionally hands out pooled scratch (a provider)
// carries an //evlint:ignore poolescape directive on its return; callers of
// a provider are then tracked exactly like direct Get callers.
func PoolEscapeAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "poolescape",
		Doc:  "flag sync.Pool values that escape the Get/Put window via return, store, or goroutine capture",
		Run:  runPoolEscape,
	}
}

func runPoolEscape(p *Pass) []Finding {
	// Pass 1: find provider functions — declarations with at least one
	// return of a Get-derived value. Their returns are findings (suppressed
	// on sanctioned providers), and their call sites seed tracking in pass 2.
	providers := make(map[types.Object]bool)
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil && funcReturnsPooled(p, fd.Body, nil) {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					providers[obj] = true
				}
			}
		}
	}

	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				out = append(out, analyzeFuncPool(p, body, providers)...)
			}
			return true
		})
	}
	return out
}

// funcReturnsPooled reports whether any return statement directly inside
// body (not in nested function literals) returns a pooled value.
func funcReturnsPooled(p *Pass, body *ast.BlockStmt, providers map[types.Object]bool) bool {
	tracked := trackPooled(p, body, providers)
	found := false
	inspectShallow(body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, res := range ret.Results {
			if rootedPooled(p, res, tracked, providers) {
				found = true
			}
		}
	})
	return found
}

// analyzeFuncPool runs the escape checks over one function body.
func analyzeFuncPool(p *Pass, body *ast.BlockStmt, providers map[types.Object]bool) []Finding {
	tracked := trackPooled(p, body, providers)
	if len(tracked) == 0 && !bodyHasPoolGet(p, body, providers) {
		return nil
	}
	var out []Finding
	inspectShallow(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if rootedPooled(p, res, tracked, providers) {
					out = append(out, Finding{
						Rule:    "poolescape",
						Pos:     p.Fset.Position(st.Pos()),
						Message: fmt.Sprintf("pooled scratch %s escapes via return; after Put a concurrent Get may overwrite it — copy the data out instead", exprString(res)),
					})
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if len(st.Lhs) != len(st.Rhs) || !rootedPooled(p, rhs, tracked, providers) {
					continue
				}
				lhs := st.Lhs[i]
				switch l := lhs.(type) {
				case *ast.SelectorExpr:
					// Storing into the pooled scratch itself is the normal
					// way to use it; storing into anything else leaks.
					if !rootedPooled(p, l.X, tracked, providers) {
						out = append(out, Finding{
							Rule:    "poolescape",
							Pos:     p.Fset.Position(st.Pos()),
							Message: fmt.Sprintf("pooled scratch %s stored in %s, which outlives the Put; copy the data out instead", exprString(rhs), exprString(l)),
						})
					}
				case *ast.IndexExpr:
					if !rootedPooled(p, l.X, tracked, providers) {
						out = append(out, Finding{
							Rule:    "poolescape",
							Pos:     p.Fset.Position(st.Pos()),
							Message: fmt.Sprintf("pooled scratch %s stored in %s, which outlives the Put; copy the data out instead", exprString(rhs), exprString(l)),
						})
					}
				case *ast.Ident:
					if obj := identObject(p, l); obj != nil && isPackageLevel(p, obj) {
						out = append(out, Finding{
							Rule:    "poolescape",
							Pos:     p.Fset.Position(st.Pos()),
							Message: fmt.Sprintf("pooled scratch %s stored in package-level %s, which outlives the Put; copy the data out instead", exprString(rhs), l.Name),
						})
					}
				}
			}
		case *ast.GoStmt:
			out = append(out, checkGoCapture(p, st, tracked, providers)...)
		}
	})
	return out
}

// trackPooled computes the set of local objects aliasing pooled scratch in
// body, to a fixpoint over the (loop-free) assignment graph.
func trackPooled(p *Pass, body *ast.BlockStmt, providers map[types.Object]bool) map[types.Object]bool {
	tracked := make(map[types.Object]bool)
	for {
		grew := false
		inspectShallow(body, func(n ast.Node) {
			st, ok := n.(*ast.AssignStmt)
			if !ok || len(st.Lhs) != len(st.Rhs) {
				return
			}
			for i, rhs := range st.Rhs {
				if !rootedPooled(p, rhs, tracked, providers) {
					continue
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := identObject(p, id)
				if obj != nil && !isPackageLevel(p, obj) && !tracked[obj] {
					tracked[obj] = true
					grew = true
				}
			}
		})
		if !grew {
			return tracked
		}
	}
}

// rootedPooled reports whether e aliases pooled memory: its root (through
// parens, selections, indexing, slicing, dereference, type assertions, and
// type conversions) is a sync.Pool Get call, a provider call, or a tracked
// identifier. Expressions whose type carries no references (plain numbers,
// bools, strings, reference-free structs) are value copies, never aliases.
func rootedPooled(p *Pass, e ast.Expr, tracked map[types.Object]bool, providers map[types.Object]bool) bool {
	if !typeHasReference(p.Info.TypeOf(e), 0) {
		return false
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := identObject(p, x)
		return obj != nil && tracked[obj]
	case *ast.ParenExpr:
		return rootedPooled(p, x.X, tracked, providers)
	case *ast.SelectorExpr:
		return rootedPooled(p, x.X, tracked, providers)
	case *ast.IndexExpr:
		return rootedPooled(p, x.X, tracked, providers)
	case *ast.SliceExpr:
		return rootedPooled(p, x.X, tracked, providers)
	case *ast.StarExpr:
		return rootedPooled(p, x.X, tracked, providers)
	case *ast.UnaryExpr:
		return rootedPooled(p, x.X, tracked, providers)
	case *ast.TypeAssertExpr:
		return rootedPooled(p, x.X, tracked, providers)
	case *ast.CallExpr:
		if isPoolGetCall(p, x) {
			return true
		}
		if id, ok := unwrapFun(x.Fun); ok {
			if obj := identObject(p, id); obj != nil && providers[obj] {
				return true
			}
		}
		// A type conversion aliases its operand (slice/pointer conversions).
		if tv, ok := p.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return rootedPooled(p, x.Args[0], tracked, providers)
		}
		return false
	default:
		return false
	}
}

// checkGoCapture flags tracked values that a goroutine captures or receives,
// unless the goroutine body itself puts scratch back to a pool.
func checkGoCapture(p *Pass, st *ast.GoStmt, tracked map[types.Object]bool, providers map[types.Object]bool) []Finding {
	var out []Finding
	flag := func(pos ast.Node, what string) {
		out = append(out, Finding{
			Rule:    "poolescape",
			Pos:     p.Fset.Position(pos.Pos()),
			Message: fmt.Sprintf("pooled scratch %s captured by a goroutine that may outlive the Put; Put inside the goroutine or hand it a copy", what),
		})
	}
	for _, arg := range st.Call.Args {
		if rootedPooled(p, arg, tracked, providers) {
			flag(arg, exprString(arg))
		}
	}
	lit, ok := st.Call.Fun.(*ast.FuncLit)
	if !ok {
		return out
	}
	if bodyPutsPool(p, lit.Body) {
		return out // the goroutine owns the borrow and returns it itself
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := identObject(p, id); obj != nil && tracked[obj] {
			flag(id, id.Name)
			return false
		}
		return true
	})
	return out
}

// bodyPutsPool reports whether body contains a sync.Pool Put call.
func bodyPutsPool(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPoolMethodCall(p, call, "Put") {
			found = true
		}
		return !found
	})
	return found
}

func bodyHasPoolGet(p *Pass, body *ast.BlockStmt, providers map[types.Object]bool) bool {
	found := false
	inspectShallow(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if isPoolGetCall(p, call) {
				found = true
			}
			if id, ok := unwrapFun(call.Fun); ok {
				if obj := identObject(p, id); obj != nil && providers[obj] {
					found = true
				}
			}
		}
	})
	return found
}

// isPoolGetCall matches x.Get() where x is (a pointer to) sync.Pool.
func isPoolGetCall(p *Pass, call *ast.CallExpr) bool {
	return isPoolMethodCall(p, call, "Get")
}

func isPoolMethodCall(p *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := p.Info.TypeOf(sel.X)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// unwrapFun extracts the called identifier from f or pkg-or-recv selectors
// (x.f); method values through complex expressions are not resolved.
func unwrapFun(fun ast.Expr) (*ast.Ident, bool) {
	switch f := fun.(type) {
	case *ast.Ident:
		return f, true
	case *ast.SelectorExpr:
		return f.Sel, true
	}
	return nil, false
}

func identObject(p *Pass, id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(p *Pass, obj types.Object) bool {
	return obj.Parent() != nil && p.Pkg != nil && obj.Parent() == p.Pkg.Scope()
}

// typeHasReference reports whether t contains any component that can alias
// memory: pointers, slices, maps, channels, funcs, or interfaces. Strings
// are immutable and safe to copy out of pooled storage.
func typeHasReference(t types.Type, depth int) bool {
	if t == nil {
		return true // no type info: stay conservative, treat as aliasing
	}
	if depth > 10 {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		return typeHasReference(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeHasReference(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// inspectShallow walks n but does not descend into nested function literals
// — per-function analyses own exactly one body each.
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

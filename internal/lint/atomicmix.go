package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// atomicFuncs are the sync/atomic package-level functions whose first
// argument addresses the word being accessed atomically.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

// AtomicMixAnalyzer flags struct fields that are accessed through sync/atomic
// somewhere in the module and accessed plainly somewhere else. Mixed access
// is a data race the -race tier only catches probabilistically — it needs the
// racing schedule to actually occur under the detector — whereas this check
// is total: every plain read or write of a field that is atomic anywhere is
// reported, across package boundaries (the loader shares one types.Info
// universe, so a field object is identical wherever it is referenced).
//
// The recommended fix is a typed atomic (atomic.Int64, atomic.Uint64, ...):
// the type system then makes plain access impossible and this rule moot for
// that field — typed atomics are never flagged.
func AtomicMixAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "atomicmix",
		Doc:       "flag plain reads/writes of struct fields accessed via sync/atomic elsewhere in the module",
		RunModule: runAtomicMix,
	}
}

func runAtomicMix(m *Module) []Finding {
	// Phase 1: every field whose address is handed to a sync/atomic function
	// anywhere in the module, with the selector nodes that did so (those
	// sites are sanctioned, all others are plain).
	atomicFields := make(map[types.Object]string) // field -> one atomic site, for the message
	sanctioned := make(map[ast.Node]bool)
	for _, p := range m.Passes {
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(p, call) || len(call.Args) == 0 {
					return true
				}
				addr, ok := call.Args[0].(*ast.UnaryExpr)
				if !ok {
					return true
				}
				sel, ok := addr.X.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if f := fieldObject(p, sel); f != nil {
					if _, seen := atomicFields[f]; !seen {
						atomicFields[f] = p.Fset.Position(call.Pos()).String()
					}
					sanctioned[sel] = true
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Phase 2: every other selector resolving to one of those fields is a
	// plain access and therefore a race with the atomic sites.
	var out []Finding
	for _, p := range m.Passes {
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				f := fieldObject(p, sel)
				if f == nil {
					return true
				}
				site, ok := atomicFields[f]
				if !ok {
					return true
				}
				out = append(out, Finding{
					Rule: "atomicmix",
					Pos:  p.Fset.Position(sel.Pos()),
					Message: fmt.Sprintf("field %s is accessed atomically at %s but plainly here; mixed access is a data race — use sync/atomic at every site, or make the field a typed atomic (atomic.Int64/atomic.Uint64)",
						f.Name(), site),
				})
				return true
			})
		}
	}
	return out
}

// isAtomicCall matches atomic.F(...) for the address-taking sync/atomic
// package functions.
func isAtomicCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !atomicFuncs[sel.Sel.Name] {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if obj, ok := p.Info.Uses[id]; ok {
		pn, ok := obj.(*types.PkgName)
		return ok && pn.Imported().Path() == "sync/atomic"
	}
	return id.Name == "atomic"
}

// fieldObject resolves sel to a struct field object, or nil.
func fieldObject(p *Pass, sel *ast.SelectorExpr) types.Object {
	if s, ok := p.Info.Selections[sel]; ok {
		if s.Kind() == types.FieldVal {
			return s.Obj()
		}
		return nil
	}
	// Qualified references (pkg.Var) resolve through Uses; only fields
	// qualify.
	if obj, ok := p.Info.Uses[sel.Sel]; ok {
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

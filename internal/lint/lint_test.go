package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// fixtureCases pairs each analyzer with its fixture package. The import path
// poses as a project package so the scoped analyzers (maprange, goroutine)
// consider the fixture in range.
var fixtureCases = []struct {
	rule       string
	importPath string
}{
	{"maprange", "example.com/fixture/internal/core"},
	{"errwrap", "example.com/fixture/internal/retry"},
	{"goroutine", "example.com/fixture/internal/cluster"},
	{"seedcheck", "example.com/fixture/internal/seed"},
	{"wallclock", "example.com/fixture/internal/stream"},
	{"poolescape", "example.com/fixture/internal/pool"},
	{"atomicmix", "example.com/fixture/internal/counters"},
	{"lockbalance", "example.com/fixture/internal/locks"},
	// gobdet is scoped to the checkpoint-writing packages; the fixture poses
	// as internal/stream to be in range.
	{"gobdet", "example.com/fixture/internal/stream"},
}

// lintFixture runs the full pass suite over testdata/src/<name> and renders
// the findings with basenamed files, one per line.
func lintFixture(t *testing.T, name, importPath string) string {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", name), importPath)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no linted files", name)
	}
	for _, te := range pkg.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", name, te)
	}
	// Cross-reference positions inside messages (atomicmix's "atomically at
	// <site>", gobdet's "via <site>") carry absolute paths; strip the fixture
	// dir so goldens are checkout-independent.
	absDir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, f := range Run([]*Package{pkg}, Analyzers()) {
		f.Pos.Filename = filepath.Base(f.Pos.Filename)
		f.Message = strings.ReplaceAll(f.Message, absDir+string(filepath.Separator), "")
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestAnalyzerGoldens locks each analyzer's findings over its fixture to a
// golden file: the positive cases must fire at exactly the recorded
// positions, and the suppressed and clean cases must stay absent.
// Regenerate with: go test ./internal/lint/ -run TestAnalyzerGoldens -update
func TestAnalyzerGoldens(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.rule, func(t *testing.T) {
			got := lintFixture(t, tc.rule, tc.importPath)
			// Guard the golden mechanism itself: an analyzer that silently
			// stopped firing would otherwise just regenerate an empty golden.
			if !strings.Contains(got, ": "+tc.rule+": ") {
				t.Errorf("no %s findings on the positive fixture:\n%s", tc.rule, got)
			}
			golden := filepath.Join("testdata", tc.rule+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings diverge from %s:\n--- got\n%s--- want\n%s", golden, got, want)
			}
		})
	}
}

// TestScopedAnalyzersRespectPackagePaths: the same fixtures produce no
// maprange/goroutine findings when loaded under a path outside the
// result-affecting and concurrency-heavy package lists.
func TestScopedAnalyzersRespectPackagePaths(t *testing.T) {
	for _, name := range []string{"maprange", "goroutine", "wallclock"} {
		t.Run(name, func(t *testing.T) {
			out := lintFixture(t, name, "example.com/fixture/internal/unscoped")
			for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
				if strings.Contains(line, ": "+name+": ") {
					t.Errorf("scoped rule %s fired outside its packages: %s", name, line)
				}
			}
		})
	}
}

// TestWallClockCoversSubpackages: the wallclock scope includes subpackages
// beneath its trees (internal/chaos/sim and friends), unlike the exact-suffix
// scoping of maprange and goroutine.
func TestWallClockCoversSubpackages(t *testing.T) {
	out := lintFixture(t, "wallclock", "example.com/fixture/internal/chaos/sim")
	if !strings.Contains(out, ": wallclock: ") {
		t.Errorf("wallclock did not fire in a subpackage of internal/chaos:\n%s", out)
	}
}

// TestSuppressionNeedsReason: a reasonless directive suppresses nothing and
// is itself a finding (fixture maprange carries one).
func TestSuppressionNeedsReason(t *testing.T) {
	out := lintFixture(t, "maprange", "example.com/fixture/internal/core")
	if !strings.Contains(out, ": ignore: ") {
		t.Errorf("reasonless directive was not reported:\n%s", out)
	}
}

// TestStaleIgnoreAudit: a directive that suppresses nothing is itself a
// finding, so suppressions cannot silently outlive the code they excuse.
func TestStaleIgnoreAudit(t *testing.T) {
	out := lintFixture(t, "ignoreaudit", "example.com/fixture/internal/core")
	if !strings.Contains(out, ": ignore: stale //evlint:ignore maprange") {
		t.Errorf("stale directive was not reported:\n%s", out)
	}
}

// TestAnalyzersCanonicalOrder pins the registry: nine analyzers, stable
// order, so -rules filtering and documentation stay aligned.
func TestAnalyzersCanonicalOrder(t *testing.T) {
	want := []string{
		"maprange", "errwrap", "goroutine", "seedcheck", "wallclock",
		"poolescape", "atomicmix", "lockbalance", "gobdet",
	}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %s, want %s", i, a.Name, want[i])
		}
	}
}

// TestRunIsDeterministic: the concurrent per-package stage must not leak
// scheduling order into the output — repeated runs over the same multi-
// package load produce byte-identical findings.
func TestRunIsDeterministic(t *testing.T) {
	var pkgs []*Package
	for _, tc := range fixtureCases {
		pkg, err := LoadDir(filepath.Join("testdata", "src", tc.rule), tc.importPath)
		if err != nil {
			t.Fatalf("LoadDir %s: %v", tc.rule, err)
		}
		pkgs = append(pkgs, pkg)
	}
	render := func() ([]Finding, string) {
		fs := Run(pkgs, Analyzers())
		var sb strings.Builder
		for _, f := range fs {
			sb.WriteString(f.String())
			sb.WriteByte('\n')
		}
		return fs, sb.String()
	}
	findings, first := render()
	if first == "" {
		t.Fatal("fixture suite produced no findings; determinism check is vacuous")
	}
	for i := 0; i < 5; i++ {
		if _, got := render(); got != first {
			t.Fatalf("run %d diverged:\n--- first\n%s--- got\n%s", i+2, first, got)
		}
	}
	// Findings are merged from concurrent workers, so ordering is the
	// framework's job: the returned slice must already be in canonical
	// (file, line, column, rule) order.
	sorted := append([]Finding(nil), findings...)
	SortFindings(sorted)
	for i := range findings {
		if findings[i] != sorted[i] {
			t.Errorf("finding %d out of canonical order: %s", i, findings[i])
		}
	}
}

// TestModuleIsLintClean: the pass suite over this repository itself reports
// nothing — the acceptance criterion the CI gate enforces.
func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader lost the module", len(pkgs))
	}
	for _, f := range Run(pkgs, Analyzers()) {
		t.Errorf("finding on clean tree: %s", f)
	}
}

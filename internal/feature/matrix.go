package feature

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major collection of equal-dimension feature vectors:
// one contiguous []float64 instead of a slice of slices. It is the storage
// the V-stage kernels operate on — dimensions are validated once, at
// construction, so the per-pair inner loops carry no error returns and walk
// memory sequentially.
type Matrix struct {
	dim  int
	data []float64
}

// NewMatrix allocates a zero matrix of the given shape. The rows are filled
// in place through Row (e.g. by Extractor.ExtractInto).
func NewMatrix(dim, rows int) (*Matrix, error) {
	if dim < 1 {
		return nil, fmt.Errorf("feature: matrix dim %d", dim)
	}
	if rows < 0 {
		return nil, fmt.Errorf("feature: matrix rows %d", rows)
	}
	return &Matrix{dim: dim, data: make([]float64, dim*rows)}, nil
}

// MatrixFrom copies the given vectors into a new matrix, validating once that
// every vector has the same dimension.
func MatrixFrom(vs []Vector) (*Matrix, error) {
	if len(vs) == 0 {
		return nil, fmt.Errorf("feature: matrix from no vectors")
	}
	dim := len(vs[0])
	m, err := NewMatrix(dim, len(vs))
	if err != nil {
		return nil, err
	}
	for i, v := range vs {
		if len(v) != dim {
			return nil, fmt.Errorf("%w: %d vs %d", ErrDimMismatch, len(v), dim)
		}
		copy(m.data[i*dim:(i+1)*dim], v)
	}
	return m, nil
}

// Dim returns the vector dimensionality.
func (m *Matrix) Dim() int { return m.dim }

// Rows returns the number of vectors stored.
func (m *Matrix) Rows() int { return len(m.data) / m.dim }

// Row returns row i as a Vector view into the matrix storage (not a copy).
func (m *Matrix) Row(i int) Vector {
	return Vector(m.data[i*m.dim : (i+1)*m.dim])
}

// maxSimClampSq is the squared vector distance at which the normalized
// distance ||a-b||/2 clamps to 1 and the similarity bottoms out at 0.
const maxSimClampSq = 4.0

// MaxSim returns max over the matrix rows of Sim(rep, row) — the
// max_d sim(v, d) term of the paper's Equation 1 — as a single batched
// kernel. It is bit-identical to folding Sim over the rows with a
// "greater-than" max (sqrt is monotone and correctly rounded, so comparing
// squared distances picks the same row set, and the final similarity is
// computed with exactly Dist's operations). The inner loop is 4-way unrolled
// with a single accumulator (preserving Dist's addition order) and exits a
// row early once its running squared distance can no longer beat the best.
// An empty matrix yields 0, like a max over no similarities.
//
// Kernel contract: len(rep) must equal m.Dim(); dimensions are validated
// when the matrix and representative are built, so a mismatch here is a
// programming error and panics.
func MaxSim(rep Vector, m *Matrix) float64 {
	dim := m.dim
	if len(rep) != dim {
		panic(fmt.Sprintf("feature: MaxSim rep dim %d vs matrix dim %d", len(rep), dim))
	}
	rep = rep[:dim] // bounds-check hint: len(rep) == dim from here on
	minSq := maxSimClampSq
	for base := 0; base < len(m.data); base += dim {
		row := m.data[base : base+dim : base+dim]
		var s float64
		i := 0
		for ; i+4 <= dim; i += 4 {
			d0 := rep[i] - row[i]
			s += d0 * d0
			d1 := rep[i+1] - row[i+1]
			s += d1 * d1
			d2 := rep[i+2] - row[i+2]
			s += d2 * d2
			d3 := rep[i+3] - row[i+3]
			s += d3 * d3
			if s >= minSq {
				break // the sum only grows; this row cannot win
			}
		}
		if s >= minSq {
			continue
		}
		for ; i < dim; i++ {
			d := rep[i] - row[i]
			s += d * d
		}
		if s < minSq {
			minSq = s
		}
	}
	d := math.Sqrt(minSq) / 2
	if d > 1 {
		d = 1
	}
	return 1 - d
}

// MeanAccum is an allocation-free running-mean accumulator over unit
// vectors: the streaming replacement for collecting every vector and calling
// Mean. Add vectors in order, then MeanInto produces exactly the vector
// Mean would have returned for the same sequence (same additions, same
// scaling, same normalization).
type MeanAccum struct {
	sum []float64
	n   int
}

// Reset prepares the accumulator for a new sequence of dim-dimensional
// vectors, reusing its buffer when possible.
func (a *MeanAccum) Reset(dim int) {
	if cap(a.sum) < dim {
		a.sum = make([]float64, dim)
	} else {
		a.sum = a.sum[:dim]
		clear(a.sum)
	}
	a.n = 0
}

// Add accumulates one vector. Kernel contract: len(v) must equal the Reset
// dimension; a mismatch is a programming error and panics.
func (a *MeanAccum) Add(v Vector) {
	if len(v) != len(a.sum) {
		panic(fmt.Sprintf("feature: MeanAccum dim %d vs %d", len(v), len(a.sum)))
	}
	for i, x := range v {
		a.sum[i] += x
	}
	a.n++
}

// Count returns how many vectors have been accumulated since Reset.
func (a *MeanAccum) Count() int { return a.n }

// MeanInto writes the renormalized mean into dst (len must equal the Reset
// dimension) and returns it. It panics when no vectors were accumulated,
// mirroring Mean's error on an empty slice.
func (a *MeanAccum) MeanInto(dst Vector) Vector {
	if a.n == 0 {
		panic("feature: MeanAccum mean of no vectors")
	}
	if len(dst) != len(a.sum) {
		panic(fmt.Sprintf("feature: MeanAccum dst dim %d vs %d", len(dst), len(a.sum)))
	}
	inv := 1 / float64(a.n)
	for i, s := range a.sum {
		dst[i] = s * inv
	}
	return dst.Normalize()
}

package feature

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewFusedGalleryValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewFusedGallery(rng, 5, 8, 1, 1); err == nil {
		t.Error("want error for tiny gait dim")
	}
	if _, err := NewFusedGallery(rng, 5, 8, 8, 0); err == nil {
		t.Error("want error for zero gait weight")
	}
	if _, err := NewFusedGallery(rng, 0, 8, 8, 1); err == nil {
		t.Error("want error for zero persons")
	}
}

func TestFusedObservationsAreUnitNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := NewFusedGallery(rng, 10, 32, 16, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dim() != 48 || g.Len() != 10 {
		t.Fatalf("dim=%d len=%d", g.Dim(), g.Len())
	}
	for i := 0; i < 10; i++ {
		obs := g.Observe(i, 0.1, 0.05, rng)
		if len(obs) != 48 {
			t.Fatalf("obs dim = %d", len(obs))
		}
		if math.Abs(obs.Norm()-1) > 1e-9 {
			t.Fatalf("obs norm = %v", obs.Norm())
		}
		if math.Abs(g.Base(i).Norm()-1) > 1e-9 {
			t.Fatalf("base norm = %v", g.Base(i).Norm())
		}
	}
}

// TestFusionPreservesDiscriminationUnderAppearanceNoise is the motivating
// property: with heavy appearance noise, fused descriptors keep same-person
// similarity above cross-person similarity thanks to the stable gait block.
func TestFusionPreservesDiscriminationUnderAppearanceNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const appNoise, gaitNoise = 0.5, 0.05 // appearance nearly useless
	appOnly, err := NewGallery(rng, 40, 64)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := NewFusedGallery(rng, 40, 64, 16, 2)
	if err != nil {
		t.Fatal(err)
	}

	margin := func(same, cross float64) float64 { return same - cross }
	sameAndCross := func(observe func(i int) Vector) (float64, float64) {
		var sameSum, crossSum float64
		const trials = 40
		for k := 0; k < trials; k++ {
			i, j := k%40, (k+7)%40
			a1, a2, b := observe(i), observe(i), observe(j)
			s1, err := Sim(a1, a2)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := Sim(a1, b)
			if err != nil {
				t.Fatal(err)
			}
			sameSum += s1
			crossSum += s2
		}
		return sameSum / trials, crossSum / trials
	}

	sameApp, crossApp := sameAndCross(func(i int) Vector { return appOnly.Observe(i, appNoise, rng) })
	sameFused, crossFused := sameAndCross(func(i int) Vector { return fused.Observe(i, appNoise, gaitNoise, rng) })
	if margin(sameFused, crossFused) <= margin(sameApp, crossApp) {
		t.Errorf("fusion margin %.3f <= appearance-only margin %.3f",
			margin(sameFused, crossFused), margin(sameApp, crossApp))
	}
}

func TestChannelSims(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := NewFusedGallery(rng, 5, 16, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := g.Observe(0, 0.02, 0.02, rng)
	y := g.Observe(0, 0.02, 0.02, rng)
	appSim, gaitSim, err := g.ChannelSims(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if appSim < 0.8 || gaitSim < 0.8 {
		t.Errorf("same-person channel sims = %.3f / %.3f", appSim, gaitSim)
	}
	if _, _, err := g.ChannelSims(x[:4], y); err == nil {
		t.Error("want dim mismatch error")
	}
}

func TestFusedRoundTripsThroughPatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := NewFusedGallery(rng, 3, 48, 16, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	obs := g.Observe(1, 0.05, 0.05, rng)
	patch := EncodePatch(obs, 1, rng)
	got, err := Extractor{Dim: g.Dim()}.Extract(patch)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Sim(obs, got)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.97 {
		t.Errorf("fused encode->extract sim = %v", s)
	}
}

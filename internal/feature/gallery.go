package feature

import (
	"fmt"
	"math/rand"
)

// Gallery holds the base appearance vector of every person in the synthetic
// world, standing in for the CUHK02 image database the paper samples VIDs
// from. Base vectors are independent uniform unit vectors, so for realistic
// dimensions (64+) cross-person similarity concentrates well below
// same-person similarity.
type Gallery struct {
	dim  int
	base []Vector
}

// NewGallery draws n base appearance vectors of the given dimension from rng.
func NewGallery(rng *rand.Rand, n, dim int) (*Gallery, error) {
	if n < 1 || dim < 2 {
		return nil, fmt.Errorf("feature: invalid gallery size n=%d dim=%d", n, dim)
	}
	g := &Gallery{dim: dim, base: make([]Vector, n)}
	for i := range g.base {
		g.base[i] = randomUnit(rng, dim)
	}
	return g, nil
}

// Len returns the number of persons in the gallery.
func (g *Gallery) Len() int { return len(g.base) }

// Dim returns the feature dimensionality.
func (g *Gallery) Dim() int { return g.dim }

// Base returns the ground-truth appearance vector of person i. The returned
// slice must not be modified.
func (g *Gallery) Base(i int) Vector { return g.base[i] }

// Observe returns one noisy appearance observation of person i, modeling a
// single camera capture with per-observation appearance variation sigma.
func (g *Gallery) Observe(i int, sigma float64, rng *rand.Rand) Vector {
	return Perturb(g.base[i], sigma, rng)
}

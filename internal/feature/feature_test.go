package feature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	v := Vector{3, 4}
	v.Normalize()
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Errorf("norm after Normalize = %v", v.Norm())
	}
	zero := Vector{0, 0}
	zero.Normalize()
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("zero vector changed by Normalize: %v", zero)
	}
}

func TestDistBounds(t *testing.T) {
	a := Vector{1, 0}
	b := Vector{-1, 0}
	d, err := Dist(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("antipodal unit vectors dist = %v, want 1", d)
	}
	d, err = Dist(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("self dist = %v, want 0", d)
	}
}

func TestDistDimMismatch(t *testing.T) {
	if _, err := Dist(Vector{1}, Vector{1, 0}); err == nil {
		t.Error("want dimension-mismatch error")
	}
	if _, err := Sim(Vector{1}, Vector{1, 0}); err == nil {
		t.Error("want dimension-mismatch error from Sim")
	}
}

func TestSimProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomUnit(r, 32), randomUnit(r, 32)
		sab, err1 := Sim(a, b)
		sba, err2 := Sim(b, a)
		saa, err3 := Sim(a, a)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return sab >= 0 && sab <= 1 &&
			math.Abs(sab-sba) < 1e-12 &&
			math.Abs(saa-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPerturbSmallSigmaStaysClose(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	base := randomUnit(rng, 64)
	obs := Perturb(base, 0.02, rng)
	s, err := Sim(base, obs)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.85 {
		t.Errorf("small-noise observation sim = %v, want > 0.85", s)
	}
	if math.Abs(obs.Norm()-1) > 1e-9 {
		t.Errorf("perturbed vector not unit norm: %v", obs.Norm())
	}
}

func TestPerturbZeroSigmaIsCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := randomUnit(rng, 16)
	obs := Perturb(base, 0, rng)
	for i := range base {
		if obs[i] != base[i] {
			t.Fatalf("zero-sigma perturb changed component %d", i)
		}
	}
	obs[0] = 99
	if base[0] == 99 {
		t.Error("Perturb aliases the input vector")
	}
}

func TestMean(t *testing.T) {
	if _, err := Mean(nil); err == nil {
		t.Error("want error for empty mean")
	}
	if _, err := Mean([]Vector{{1, 0}, {1}}); err == nil {
		t.Error("want error for mismatched dims")
	}
	m, err := Mean([]Vector{{1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / math.Sqrt(2)
	if math.Abs(m[0]-want) > 1e-12 || math.Abs(m[1]-want) > 1e-12 {
		t.Errorf("Mean = %v, want (%v, %v)", m, want, want)
	}
}

func TestGallerySeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := NewGallery(rng, 200, 64)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 200 || g.Dim() != 64 {
		t.Fatalf("gallery %dx%d", g.Len(), g.Dim())
	}
	// Same-person observations must be far more similar than cross-person
	// base vectors, giving the matcher its working margin.
	var crossMax float64
	for i := 0; i < 50; i++ {
		for j := i + 1; j < 50; j++ {
			s, err := Sim(g.Base(i), g.Base(j))
			if err != nil {
				t.Fatal(err)
			}
			if s > crossMax {
				crossMax = s
			}
		}
	}
	var sameMin float64 = 1
	for i := 0; i < 50; i++ {
		obs := g.Observe(i, 0.03, rng)
		s, err := Sim(g.Base(i), obs)
		if err != nil {
			t.Fatal(err)
		}
		if s < sameMin {
			sameMin = s
		}
	}
	if sameMin <= crossMax {
		t.Errorf("no margin: same-person min sim %v <= cross-person max sim %v", sameMin, crossMax)
	}
}

func TestNewGalleryValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewGallery(rng, 0, 8); err == nil {
		t.Error("want error for zero persons")
	}
	if _, err := NewGallery(rng, 5, 1); err == nil {
		t.Error("want error for dim < 2")
	}
}

func TestPatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g, err := NewGallery(rng, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	ex := Extractor{Dim: 64}
	for i := 0; i < 10; i++ {
		obs := g.Observe(i, 0.02, rng)
		patch := EncodePatch(obs, 1.0, rng)
		got, err := ex.Extract(patch)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Sim(obs, got)
		if err != nil {
			t.Fatal(err)
		}
		if s < 0.98 {
			t.Errorf("person %d: encode->extract sim = %v, want > 0.98", i, s)
		}
	}
}

func TestExtractValidation(t *testing.T) {
	ex := Extractor{Dim: 8}
	if _, err := ex.Extract(Patch{W: 4, H: 4, Pix: make([]byte, 15)}); err == nil {
		t.Error("want error for wrong pixel count")
	}
	if _, err := (Extractor{Dim: 1}).Extract(Patch{W: 2, H: 2, Pix: make([]byte, 4)}); err == nil {
		t.Error("want error for dim < 2")
	}
	if _, err := ex.Extract(Patch{}); err == nil {
		t.Error("want error for empty patch")
	}
}

func TestExtractWorkFactorPreservesResult(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	v := randomUnit(rng, 32)
	patch := EncodePatch(v, 0, rng)
	fast, err := Extractor{Dim: 32}.Extract(patch)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Extractor{Dim: 32, WorkFactor: 5}.Extract(patch)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Sim(fast, slow)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.999999 {
		t.Errorf("WorkFactor changed extraction result: sim = %v", s)
	}
}

func TestClampByte(t *testing.T) {
	tests := []struct {
		in   float64
		want byte
	}{
		{in: -10, want: 0},
		{in: 0, want: 0},
		{in: 127.6, want: 128},
		{in: 255, want: 255},
		{in: 300, want: 255},
	}
	for _, tt := range tests {
		if got := clampByte(tt.in); got != tt.want {
			t.Errorf("clampByte(%v) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func BenchmarkExtract(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	patch := EncodePatch(randomUnit(rng, 64), 1, rng)
	ex := Extractor{Dim: 64, WorkFactor: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Extract(patch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSim(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := randomUnit(rng, 64), randomUnit(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sim(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

package feature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// refMaxSim is the pre-kernel reference: fold Sim over the rows with a
// strict greater-than max starting at 0, exactly as vfilter.Match did.
func refMaxSim(t *testing.T, rep Vector, rows []Vector) float64 {
	t.Helper()
	best := 0.0
	for _, r := range rows {
		s, err := Sim(rep, r)
		if err != nil {
			t.Fatal(err)
		}
		if s > best {
			best = s
		}
	}
	return best
}

// randomRows draws rows at a mix of scales so the sweep covers near-duplicate
// vectors, ordinary unit vectors, and far vectors whose normalized distance
// clamps at 1 (similarity 0).
func randomRows(rng *rand.Rand, dim, n int) []Vector {
	rows := make([]Vector, n)
	for i := range rows {
		v := make(Vector, dim)
		scale := 1.0
		switch rng.Intn(4) {
		case 1:
			scale = 1e-9
		case 2:
			scale = 3 // pushes ||a-b|| past the clamp
		}
		for j := range v {
			v[j] = rng.NormFloat64() * scale
		}
		rows[i] = v
	}
	return rows
}

// TestMaxSimBitIdentical: the batched kernel must agree with the per-pair
// Sim fold to the bit, across dimensions that do and do not divide by the
// unroll factor, including empty matrices and clamped (far) rows.
func TestMaxSimBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 2 + rng.Intn(70) // covers non-multiples of 4
		rows := randomRows(rng, dim, rng.Intn(12))
		rep := randomRows(rng, dim, 1)[0]
		var m *Matrix
		var err error
		if len(rows) == 0 {
			m, err = NewMatrix(dim, 0)
		} else {
			m, err = MatrixFrom(rows)
		}
		if err != nil {
			return false
		}
		got := MaxSim(rep, m)
		want := refMaxSim(t, rep, rows)
		return math.Float64bits(got) == math.Float64bits(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMaxSimEarlyExitTies pins deterministic tie handling: duplicate rows and
// rows straddling the clamp boundary must yield the same value as the
// reference fold regardless of which row the kernel settles on.
func TestMaxSimEarlyExitTies(t *testing.T) {
	rep := Vector{1, 0, 0, 0}
	dup := Vector{0, 1, 0, 0}
	rows := []Vector{dup, dup, {0, -1, 0, 0}, {3, 3, 3, 3}, rep}
	m, err := MatrixFrom(rows)
	if err != nil {
		t.Fatal(err)
	}
	got := MaxSim(rep, m)
	want := refMaxSim(t, rep, rows)
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("MaxSim = %v, want %v", got, want)
	}
	if got != 1 {
		t.Errorf("MaxSim with rep among rows = %v, want 1", got)
	}
}

func TestMaxSimAllClampedRowsIsZero(t *testing.T) {
	rep := Vector{1, 0, 0}
	rows := []Vector{{9, 9, 9}, {-7, 5, 3}}
	m, err := MatrixFrom(rows)
	if err != nil {
		t.Fatal(err)
	}
	if got := MaxSim(rep, m); got != 0 {
		t.Errorf("MaxSim over clamped rows = %v, want 0", got)
	}
}

func TestMaxSimDimMismatchPanics(t *testing.T) {
	m, err := MatrixFrom([]Vector{{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic on rep/matrix dim mismatch")
		}
	}()
	MaxSim(Vector{1, 2}, m)
}

func TestMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(0, 3); err == nil {
		t.Error("want error for dim 0")
	}
	if _, err := NewMatrix(4, -1); err == nil {
		t.Error("want error for negative rows")
	}
	if _, err := MatrixFrom(nil); err == nil {
		t.Error("want error for no vectors")
	}
	if _, err := MatrixFrom([]Vector{{1, 2}, {1, 2, 3}}); err == nil {
		t.Error("want error for ragged vectors")
	}
}

func TestMatrixRowRoundTrip(t *testing.T) {
	rows := []Vector{{1, 2, 3}, {4, 5, 6}}
	m, err := MatrixFrom(rows)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 3 || m.Rows() != 2 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Dim())
	}
	for i, want := range rows {
		got := m.Row(i)
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("Row(%d)[%d] = %v, want %v", i, j, got[j], want[j])
			}
		}
	}
}

// TestMeanAccumBitIdentical: streaming accumulation must reproduce Mean's
// output exactly for the same vector sequence.
func TestMeanAccumBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 2 + rng.Intn(60)
		n := 1 + rng.Intn(10)
		vs := make([]Vector, n)
		for i := range vs {
			vs[i] = randomUnit(rng, dim)
		}
		want, err := Mean(vs)
		if err != nil {
			return false
		}
		var acc MeanAccum
		acc.Reset(dim)
		for _, v := range vs {
			acc.Add(v)
		}
		if acc.Count() != n {
			return false
		}
		got := acc.MeanInto(make(Vector, dim))
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMeanAccumReuseAcrossReset(t *testing.T) {
	var acc MeanAccum
	acc.Reset(3)
	acc.Add(Vector{1, 0, 0})
	acc.Reset(2) // shrink: must clear stale sums
	acc.Add(Vector{0, 1})
	got := acc.MeanInto(make(Vector, 2))
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("mean after reuse = %v, want [0 1]", got)
	}
}

func TestMeanAccumPanics(t *testing.T) {
	var acc MeanAccum
	acc.Reset(3)
	for name, fn := range map[string]func(){
		"dim mismatch on Add":  func() { acc.Add(Vector{1, 2}) },
		"empty mean":           func() { acc.MeanInto(make(Vector, 3)) },
		"dst mismatch on Mean": func() { acc.Add(Vector{1, 2, 3}); acc.MeanInto(make(Vector, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestExtractIntoBitIdentical: the allocation-free extraction must decode
// exactly the vector Extract does, work factor included.
func TestExtractIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, wf := range []int{0, 2} {
		e := Extractor{Dim: 24, WorkFactor: wf}
		for trial := 0; trial < 20; trial++ {
			p := EncodePatch(randomUnit(rng, 24), 1.5, rng)
			want, err := e.Extract(p)
			if err != nil {
				t.Fatal(err)
			}
			got := make(Vector, 24)
			// Pre-fill with garbage: ExtractInto must fully overwrite dst.
			for i := range got {
				got[i] = math.Inf(1)
			}
			if err := e.ExtractInto(p, got); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("wf=%d component %d: %v vs %v", wf, i, got[i], want[i])
				}
			}
		}
	}
}

// BenchmarkMaxSimMatrix measures the batched kernel over a scenario-sized
// matrix: the same work BenchmarkSim does per pair, but amortized across rows
// with one dimension check and no error returns.
func BenchmarkMaxSimMatrix(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const dim, rows = 64, 16
	vs := make([]Vector, rows)
	for i := range vs {
		vs[i] = randomUnit(rng, dim)
	}
	m, err := MatrixFrom(vs)
	if err != nil {
		b.Fatal(err)
	}
	rep := randomUnit(rng, dim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxSim(rep, m)
	}
}

// BenchmarkMean covers both the slice-based Mean and the streaming MeanAccum
// replacement used by the V-stage hot path.
func BenchmarkMean(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const dim, n = 64, 8
	vs := make([]Vector, n)
	for i := range vs {
		vs[i] = randomUnit(rng, dim)
	}
	b.Run("slices", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Mean(vs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("accum", func(b *testing.B) {
		var acc MeanAccum
		dst := make(Vector, dim)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc.Reset(dim)
			for _, v := range vs {
				acc.Add(v)
			}
			acc.MeanInto(dst)
		}
	})
}

func TestExtractIntoValidation(t *testing.T) {
	e := Extractor{Dim: 8}
	good := EncodePatch(Vector{1, 0, 0, 0, 0, 0, 0, 0}, 0, rand.New(rand.NewSource(1)))
	if err := e.ExtractInto(good, make(Vector, 4)); err == nil {
		t.Error("want error for dst dim mismatch")
	}
	if err := e.ExtractInto(Patch{W: 2, H: 2, Pix: []byte{1}}, make(Vector, 8)); err == nil {
		t.Error("want error for malformed patch")
	}
	if err := (Extractor{Dim: 1}).ExtractInto(good, make(Vector, 1)); err == nil {
		t.Error("want error for tiny dim")
	}
}

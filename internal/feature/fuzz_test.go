package feature

import (
	"math/rand"
	"testing"
)

// FuzzExtract feeds arbitrary patch geometry and pixels to the extractor:
// it must either return a well-formed unit vector or an error, never panic
// and never emit NaNs.
func FuzzExtract(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	valid := EncodePatch(randomUnit(rng, 16), 1, rng)
	f.Add(valid.W, valid.H, valid.Pix)
	f.Add(0, 0, []byte{})
	f.Add(4, 4, []byte{1, 2, 3})          // wrong length
	f.Add(-3, 7, make([]byte, 21))        // negative width
	f.Add(1, 1, []byte{255})              // minimal patch
	f.Add(3, 2, []byte{0, 0, 0, 0, 0, 0}) // all-zero pixels

	ex := Extractor{Dim: 16, WorkFactor: 1}
	f.Fuzz(func(t *testing.T, w, h int, pix []byte) {
		v, err := ex.Extract(Patch{W: w, H: h, Pix: pix})
		if err != nil {
			return
		}
		if len(v) != 16 {
			t.Fatalf("dim = %d", len(v))
		}
		for _, x := range v {
			if x != x { // NaN
				t.Fatal("NaN component in extracted vector")
			}
		}
	})
}

// FuzzSimBounds: similarity of any two equal-length normalized vectors must
// stay in [0, 1].
func FuzzSimBounds(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(-5), int64(5))
	f.Fuzz(func(t *testing.T, seedA, seedB int64) {
		a := randomUnit(rand.New(rand.NewSource(seedA)), 8)
		b := randomUnit(rand.New(rand.NewSource(seedB)), 8)
		s, err := Sim(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if s < 0 || s > 1 || s != s {
			t.Fatalf("sim = %v", s)
		}
	})
}

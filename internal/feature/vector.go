// Package feature provides the visual-appearance substrate that substitutes
// for the paper's CUHK02 imagery and computer-vision pipeline. Each person
// has a base appearance vector; detections carry synthetic pixel patches
// derived from an observed (noisy) vector; "feature extraction" decodes a
// patch back into a vector at a deliberate, configurable compute cost, so the
// V stage dominates processing time exactly as the paper reports; and
// similarity follows the paper's Equation 1, sim = 1 - dist.
package feature

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrDimMismatch reports vectors of different dimensionality.
var ErrDimMismatch = errors.New("feature: dimension mismatch")

// Vector is an appearance feature vector. Gallery vectors are unit-norm, so
// the normalized distance ||a-b||/2 lies in [0, 1].
type Vector []float64

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Normalize scales v in place to unit norm and returns it. A zero vector is
// left unchanged.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	for i := range v {
		v[i] /= n
	}
	return v
}

// Dist returns the normalized vector distance between two unit vectors,
// ||a-b||/2 ∈ [0, 1] (the dist(f1, f2) of the paper's Equation 1).
func Dist(a, b Vector) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimMismatch, len(a), len(b))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	d := math.Sqrt(s) / 2
	if d > 1 {
		d = 1
	}
	return d, nil
}

// Sim returns the similarity of two VID feature vectors per the paper's
// Equation 1: sim(v1, v2) = 1 - dist(f1, f2).
func Sim(a, b Vector) (float64, error) {
	d, err := Dist(a, b)
	if err != nil {
		return 0, err
	}
	return 1 - d, nil
}

// randomUnit draws a uniformly random unit vector of the given dimension.
func randomUnit(rng *rand.Rand, dim int) Vector {
	v := make(Vector, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v.Normalize()
}

// Perturb returns a copy of v with per-dimension Gaussian noise of the given
// standard deviation added and renormalized, modeling appearance variation
// between observations of the same person (different view, pose, lighting).
func Perturb(v Vector, sigma float64, rng *rand.Rand) Vector {
	out := v.Clone()
	if sigma <= 0 {
		return out
	}
	for i := range out {
		out[i] += rng.NormFloat64() * sigma
	}
	return out.Normalize()
}

// Mean returns the renormalized mean of the given unit vectors; vfilter uses
// it to build a representative feature for a VID observed in several
// scenarios. It returns an error if the slice is empty or dimensions differ.
func Mean(vs []Vector) (Vector, error) {
	if len(vs) == 0 {
		return nil, errors.New("feature: mean of no vectors")
	}
	out := make(Vector, len(vs[0]))
	for _, v := range vs {
		if len(v) != len(out) {
			return nil, fmt.Errorf("%w: %d vs %d", ErrDimMismatch, len(v), len(out))
		}
		for i, x := range v {
			out[i] += x
		}
	}
	inv := 1 / float64(len(vs))
	for i := range out {
		out[i] *= inv
	}
	return out.Normalize(), nil
}

package feature

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Patch geometry follows the pedestrian crops typical of re-identification
// datasets such as CUHK02 (tall, narrow bounding boxes).
const (
	// PatchW and PatchH are the synthetic patch dimensions in pixels. They
	// keep the tall, narrow aspect of re-identification crops while staying
	// small enough that a full dataset (one detection per person per window)
	// fits comfortably in memory; Extractor.WorkFactor scales the per-patch
	// compute up to realistic video-processing cost.
	PatchW = 16
	PatchH = 40
	// encodeScale maps feature-vector components to pixel offsets around the
	// mid gray level of 128.
	encodeScale = 256.0
)

// ErrBadPatch reports a malformed patch.
var ErrBadPatch = errors.New("feature: malformed patch")

// Patch is a synthetic grayscale pedestrian crop. It is the "raw V data" of
// a detection: matching never reads a detection's feature vector directly —
// it must first pay the extraction cost to recover it from the patch, just
// as the paper's V stage must run detection and feature extraction on video.
type Patch struct {
	W   int    `json:"w"`
	H   int    `json:"h"`
	Pix []byte `json:"pix"`
}

// EncodePatch renders an observed appearance vector into a synthetic patch.
// Each pixel carries one (repeated, noisy) quantized vector component, so
// extraction can average the repeats back out. pixelNoise is the per-pixel
// Gaussian noise in gray levels (camera sensor noise).
func EncodePatch(v Vector, pixelNoise float64, rng *rand.Rand) Patch {
	p := Patch{W: PatchW, H: PatchH, Pix: make([]byte, PatchW*PatchH)}
	dim := len(v)
	for k := range p.Pix {
		val := 128 + v[k%dim]*encodeScale
		if pixelNoise > 0 {
			val += rng.NormFloat64() * pixelNoise
		}
		p.Pix[k] = clampByte(val)
	}
	return p
}

func clampByte(v float64) byte {
	switch {
	case v < 0:
		return 0
	case v > 255:
		return 255
	default:
		return byte(math.Round(v))
	}
}

// Extractor recovers feature vectors from patches. WorkFactor scales the
// deliberate per-patch compute so experiments can model the heavy
// detection + feature-extraction cost of real video processing; each unit of
// WorkFactor adds one full gradient-energy pass over the patch.
type Extractor struct {
	// Dim is the dimensionality of extracted vectors.
	Dim int
	// WorkFactor adds that many extra full passes over the patch pixels.
	WorkFactor int
}

// Extract decodes the appearance vector embedded in p. The returned vector
// is unit-norm. The computation deliberately touches every pixel
// (1 + WorkFactor) times.
func (e Extractor) Extract(p Patch) (Vector, error) {
	if e.Dim < 2 {
		return nil, fmt.Errorf("feature: extractor dim %d", e.Dim)
	}
	if p.W <= 0 || p.H <= 0 || len(p.Pix) != p.W*p.H {
		return nil, fmt.Errorf("%w: %dx%d with %d pixels", ErrBadPatch, p.W, p.H, len(p.Pix))
	}
	sums := make([]float64, e.Dim)
	counts := make([]int, e.Dim)
	for k, px := range p.Pix {
		d := k % e.Dim
		sums[d] += float64(px) - 128
		counts[d]++
	}
	v := make(Vector, e.Dim)
	for d := range v {
		if counts[d] > 0 {
			v[d] = sums[d] / float64(counts[d]) / encodeScale
		}
	}
	// Burn the configured extra work: gradient-energy passes standing in for
	// the descriptor pyramids of a real re-identification pipeline. The
	// result perturbs nothing (it is accumulated and discarded via a
	// negligible, deterministic epsilon) but the cost is real.
	if e.WorkFactor > 0 {
		energy := gradientEnergy(p, e.WorkFactor)
		v[0] += energy * 1e-18
	}
	return v.Normalize(), nil
}

// gradientEnergy runs `passes` full gradient-magnitude accumulations over the
// patch and returns the accumulated energy.
func gradientEnergy(p Patch, passes int) float64 {
	var acc float64
	for i := 0; i < passes; i++ {
		for y := 0; y < p.H-1; y++ {
			row := y * p.W
			for x := 0; x < p.W-1; x++ {
				k := row + x
				dx := float64(p.Pix[k+1]) - float64(p.Pix[k])
				dy := float64(p.Pix[k+p.W]) - float64(p.Pix[k])
				acc += math.Sqrt(dx*dx + dy*dy)
			}
		}
	}
	return acc
}

package feature

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Patch geometry follows the pedestrian crops typical of re-identification
// datasets such as CUHK02 (tall, narrow bounding boxes).
const (
	// PatchW and PatchH are the synthetic patch dimensions in pixels. They
	// keep the tall, narrow aspect of re-identification crops while staying
	// small enough that a full dataset (one detection per person per window)
	// fits comfortably in memory; Extractor.WorkFactor scales the per-patch
	// compute up to realistic video-processing cost.
	PatchW = 16
	PatchH = 40
	// encodeScale maps feature-vector components to pixel offsets around the
	// mid gray level of 128.
	encodeScale = 256.0
)

// ErrBadPatch reports a malformed patch.
var ErrBadPatch = errors.New("feature: malformed patch")

// Patch is a synthetic grayscale pedestrian crop. It is the "raw V data" of
// a detection: matching never reads a detection's feature vector directly —
// it must first pay the extraction cost to recover it from the patch, just
// as the paper's V stage must run detection and feature extraction on video.
type Patch struct {
	W   int    `json:"w"`
	H   int    `json:"h"`
	Pix []byte `json:"pix"`
}

// EncodePatch renders an observed appearance vector into a synthetic patch.
// Each pixel carries one (repeated, noisy) quantized vector component, so
// extraction can average the repeats back out. pixelNoise is the per-pixel
// Gaussian noise in gray levels (camera sensor noise).
func EncodePatch(v Vector, pixelNoise float64, rng *rand.Rand) Patch {
	p := Patch{W: PatchW, H: PatchH, Pix: make([]byte, PatchW*PatchH)}
	dim := len(v)
	for k := range p.Pix {
		val := 128 + v[k%dim]*encodeScale
		if pixelNoise > 0 {
			val += rng.NormFloat64() * pixelNoise
		}
		p.Pix[k] = clampByte(val)
	}
	return p
}

func clampByte(v float64) byte {
	switch {
	case v < 0:
		return 0
	case v > 255:
		return 255
	default:
		return byte(math.Round(v))
	}
}

// Extractor recovers feature vectors from patches. WorkFactor scales the
// deliberate per-patch compute so experiments can model the heavy
// detection + feature-extraction cost of real video processing; each unit of
// WorkFactor adds one full gradient-energy pass over the patch.
type Extractor struct {
	// Dim is the dimensionality of extracted vectors.
	Dim int
	// WorkFactor adds that many extra full passes over the patch pixels.
	WorkFactor int
}

// Extract decodes the appearance vector embedded in p. The returned vector
// is unit-norm. The computation deliberately touches every pixel
// (1 + WorkFactor) times.
func (e Extractor) Extract(p Patch) (Vector, error) {
	if e.Dim < 2 {
		return nil, fmt.Errorf("feature: extractor dim %d", e.Dim)
	}
	v := make(Vector, e.Dim)
	if err := e.ExtractInto(p, v); err != nil {
		return nil, err
	}
	return v, nil
}

// ExtractBuf is reusable working storage for extraction: one gradient
// buffer shared across any number of ExtractIntoBuf calls. The zero value is
// ready to use; callers processing a batch of patches hold one ExtractBuf
// for the whole batch instead of paying a pool round-trip per patch.
type ExtractBuf struct {
	grad []float64
}

// ExtractInto decodes the appearance vector embedded in p into dst, which
// must have length Dim — the allocation-free form of Extract (vfilter fills
// scenario feature matrices row by row with it). The decoded values are
// bit-identical to Extract's.
func (e Extractor) ExtractInto(p Patch, dst Vector) error {
	bufp := gradBufPool.Get().(*ExtractBuf)
	err := e.ExtractIntoBuf(p, dst, bufp)
	gradBufPool.Put(bufp)
	return err
}

// ExtractIntoBuf is ExtractInto with caller-owned working storage: buf's
// gradient buffer is reused across calls, so a batch of extractions pays for
// at most one buffer growth instead of a pool round-trip per patch. The
// decoded values are bit-identical to ExtractInto's.
func (e Extractor) ExtractIntoBuf(p Patch, dst Vector, buf *ExtractBuf) error {
	if e.Dim < 2 {
		return fmt.Errorf("feature: extractor dim %d", e.Dim)
	}
	if len(dst) != e.Dim {
		return fmt.Errorf("%w: dst dim %d vs extractor dim %d", ErrDimMismatch, len(dst), e.Dim)
	}
	if p.W <= 0 || p.H <= 0 || len(p.Pix) != p.W*p.H {
		return fmt.Errorf("%w: %dx%d with %d pixels", ErrBadPatch, p.W, p.H, len(p.Pix))
	}
	// Component d is carried by pixels d, d+Dim, d+2·Dim, …: summing along
	// that stride visits the same pixels in the same ascending order as a
	// single pass over the patch, so the sums are bit-identical while the
	// inner loop avoids a modulo per pixel. Each component received
	// len(Pix)/Dim repeats, plus one for the first len(Pix)%Dim components.
	// The per-pixel addends float64(pix[k])−128 are integers and every
	// partial sum stays far below 2^53, so each floating-point addition in
	// the reference fold is exact — summing in integer arithmetic and
	// converting once yields the bit-identical value while the inner loop
	// pipelines as integer adds.
	pix := p.Pix
	q, r := len(pix)/e.Dim, len(pix)%e.Dim
	for d := range dst {
		var s int
		for k := d; k < len(pix); k += e.Dim {
			s += int(pix[k])
		}
		count := q
		if d < r {
			count++
		}
		if count > 0 {
			dst[d] = float64(s-128*count) / float64(count) / encodeScale
		} else {
			dst[d] = 0
		}
	}
	// Burn the configured extra work: gradient-energy passes standing in for
	// the descriptor pyramids of a real re-identification pipeline. The
	// result perturbs nothing (it is accumulated and discarded via a
	// negligible, deterministic epsilon) but the cost is real.
	if e.WorkFactor > 0 {
		energy := gradientEnergy(p, e.WorkFactor, buf)
		dst[0] += energy * 1e-18
	}
	dst.Normalize()
	return nil
}

// gradBufPool recycles the working storage behind ExtractInto so the
// convenience path stays allocation-free in steady state.
var gradBufPool = sync.Pool{New: func() any { return new(ExtractBuf) }}

// gradientEnergy runs `passes` full gradient-magnitude accumulation sweeps
// over the patch and returns the accumulated energy. The magnitudes are
// computed once (the sqrt per pixel pair) into the caller's buffer; every pass
// then sweeps the full buffer, accumulating into eight independent partial
// sums so the additions pipeline instead of forming one serial
// latency chain. Each pass still performs one addition per gradient — the
// work WorkFactor models — and the result is deterministic: the fixed
// eight-way association always produces the same energy. Its last bits can
// differ from a naive serial refold, which only perturbs the 1e-18 epsilon
// injection below; the conformance fingerprints in internal/core pin the
// observable behavior.
func gradientEnergy(p Patch, passes int, eb *ExtractBuf) float64 {
	if passes <= 0 {
		return 0
	}
	n := (p.H - 1) * (p.W - 1)
	if n <= 0 {
		return 0
	}
	buf := eb.grad
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	idx := 0
	for y := 0; y < p.H-1; y++ {
		cur := p.Pix[y*p.W : y*p.W+p.W]
		nxt := p.Pix[(y+1)*p.W : (y+1)*p.W+p.W]
		for x := 0; x < p.W-1; x++ {
			dx := int(cur[x+1]) - int(cur[x])
			dy := int(nxt[x]) - int(cur[x])
			buf[idx] = math.Sqrt(float64(dx*dx + dy*dy))
			idx++
		}
	}
	var acc float64
	for pass := 0; pass < passes; pass++ {
		var a0, a1, a2, a3, a4, a5, a6, a7 float64
		i := 0
		for ; i+8 <= len(buf); i += 8 {
			a0 += buf[i]
			a1 += buf[i+1]
			a2 += buf[i+2]
			a3 += buf[i+3]
			a4 += buf[i+4]
			a5 += buf[i+5]
			a6 += buf[i+6]
			a7 += buf[i+7]
		}
		for ; i < len(buf); i++ {
			a0 += buf[i]
		}
		acc += a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7
	}
	eb.grad = buf
	return acc
}

package feature

import (
	"fmt"
	"math"
	"math/rand"
)

// FusedGallery combines an appearance gallery with a gait gallery into one
// descriptor per person, the statistical feature fusion of Han & Bhanu that
// the paper cites for VID features (§IV-B2 [12]). Gait is typically more
// stable across viewpoint and lighting than appearance, so fusing the two
// channels preserves discrimination when appearance observations are noisy.
type FusedGallery struct {
	app        *Gallery
	gait       *Gallery
	gaitWeight float64
}

// NewFusedGallery draws appearance and gait base vectors for n persons.
// gaitWeight scales the gait block inside the fused unit vector; 1 weights
// the channels by their dimensionality, higher values emphasize gait.
func NewFusedGallery(rng *rand.Rand, n, appDim, gaitDim int, gaitWeight float64) (*FusedGallery, error) {
	if gaitDim < 2 {
		return nil, fmt.Errorf("feature: gait dim %d", gaitDim)
	}
	if gaitWeight <= 0 {
		return nil, fmt.Errorf("feature: gait weight %f", gaitWeight)
	}
	app, err := NewGallery(rng, n, appDim)
	if err != nil {
		return nil, err
	}
	gait, err := NewGallery(rng, n, gaitDim)
	if err != nil {
		return nil, err
	}
	return &FusedGallery{app: app, gait: gait, gaitWeight: gaitWeight}, nil
}

// Len returns the number of persons.
func (g *FusedGallery) Len() int { return g.app.Len() }

// Dim returns the fused descriptor dimensionality.
func (g *FusedGallery) Dim() int { return g.app.Dim() + g.gait.Dim() }

// Observe returns one fused observation of person i: the concatenation of a
// noisy appearance observation and a noisy gait observation, with the gait
// block scaled by the configured weight, renormalized to a unit vector.
func (g *FusedGallery) Observe(i int, appNoise, gaitNoise float64, rng *rand.Rand) Vector {
	a := g.app.Observe(i, appNoise, rng)
	b := g.gait.Observe(i, gaitNoise, rng)
	out := make(Vector, 0, len(a)+len(b))
	out = append(out, a...)
	for _, x := range b {
		out = append(out, x*g.gaitWeight)
	}
	return out.Normalize()
}

// Base returns the noise-free fused descriptor of person i.
func (g *FusedGallery) Base(i int) Vector {
	a := g.app.Base(i)
	b := g.gait.Base(i)
	out := make(Vector, 0, len(a)+len(b))
	out = append(out, a...)
	for _, x := range b {
		out = append(out, x*g.gaitWeight)
	}
	return out.Normalize()
}

// ChannelSims reports the separate appearance and gait similarities encoded
// in two fused descriptors, for diagnostics. Both inputs must come from the
// same FusedGallery geometry.
func (g *FusedGallery) ChannelSims(x, y Vector) (appSim, gaitSim float64, err error) {
	if len(x) != g.Dim() || len(y) != g.Dim() {
		return 0, 0, fmt.Errorf("%w: fused dim %d, got %d and %d", ErrDimMismatch, g.Dim(), len(x), len(y))
	}
	ad := g.app.Dim()
	appSim, err = Sim(renorm(x[:ad]), renorm(y[:ad]))
	if err != nil {
		return 0, 0, err
	}
	gaitSim, err = Sim(renorm(x[ad:]), renorm(y[ad:]))
	if err != nil {
		return 0, 0, err
	}
	return appSim, gaitSim, nil
}

// renorm copies and renormalizes a descriptor block; zero blocks stay zero.
func renorm(block Vector) Vector {
	out := block.Clone()
	var n float64
	for _, v := range out {
		n += v * v
	}
	if n == 0 {
		return out
	}
	inv := 1 / math.Sqrt(n)
	for i := range out {
		out[i] *= inv
	}
	return out
}

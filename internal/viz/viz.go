// Package viz renders an EV world as a standalone SVG: the cell layout
// (grid or hexagonal, as in the paper's Fig. 1), localization stations,
// selected person trajectories, and — when a matching report is supplied —
// the matched EID→VID pairs as labeled tracks. It is a debugging and
// presentation aid; everything is plain SVG 1.1 with no external assets.
package viz

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"evmatching/internal/dataset"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/trajectory"
)

// Options selects what to draw.
type Options struct {
	// Size is the output edge length in pixels; 0 means 800.
	Size int
	// Persons lists person indexes whose true (visual) trajectories to
	// draw; empty draws none.
	Persons []int
	// EIDs lists device identities whose E-trajectories to draw.
	EIDs []ids.EID
	// ShowStations draws the RSSI stations when the dataset has them.
	ShowStations bool
}

// palette cycles through visually distinct track colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#17becf", "#8c564b", "#e377c2",
}

// Render writes the SVG document to w.
func Render(w io.Writer, ds *dataset.Dataset, opts Options) error {
	if ds == nil {
		return errors.New("viz: nil dataset")
	}
	size := opts.Size
	if size <= 0 {
		size = 800
	}
	bounds := ds.Layout.Bounds()
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		return errors.New("viz: empty layout bounds")
	}
	scale := float64(size) / math.Max(bounds.Width(), bounds.Height())
	tx := func(p geo.Point) (float64, float64) {
		// SVG y grows downward; flip so north is up.
		return (p.X - bounds.Min.X) * scale, float64(size) - (p.Y-bounds.Min.Y)*scale
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		size, size, size, size)
	sb.WriteString(`<rect width="100%" height="100%" fill="#fafafa"/>` + "\n")

	drawCells(&sb, ds, tx)
	if opts.ShowStations {
		for _, s := range ds.Stations {
			x, y := tx(s.Pos)
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="4" fill="none" stroke="#555" stroke-width="1.5"/>`+"\n", x, y)
			fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#555" stroke-width="1.5"/>`+"\n",
				x, y-7, x, y-3)
		}
	}
	color := 0
	for _, idx := range opts.Persons {
		if idx < 0 || idx >= len(ds.Persons) {
			return fmt.Errorf("viz: person index %d out of range", idx)
		}
		vt, err := trajectory.BuildV(ds.Store, ds.Persons[idx].VID, 2)
		if err != nil {
			return err
		}
		for _, seg := range vt.Segments {
			drawTrack(&sb, pointsOf(seg.Points), tx, palette[color%len(palette)], false)
		}
		labelTrack(&sb, vt, tx, fmt.Sprintf("person %d", idx), palette[color%len(palette)])
		color++
	}
	for _, e := range opts.EIDs {
		et, err := trajectory.BuildE(ds.Store, e)
		if err != nil {
			return err
		}
		drawTrack(&sb, pointsOf(et.Points), tx, palette[color%len(palette)], true)
		if len(et.Points) > 0 {
			x, y := tx(et.Points[0].Pos)
			fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="11" fill="%s">%s</text>`+"\n",
				x+5, y-5, palette[color%len(palette)], e)
		}
		color++
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// drawCells outlines every cell by sampling its membership; cells are drawn
// through their centers as light crosses plus the overall border, which
// renders both grid and hex layouts without layout-specific geometry.
func drawCells(sb *strings.Builder, ds *dataset.Dataset, tx func(geo.Point) (float64, float64)) {
	if grid, ok := ds.Layout.(*geo.GridLayout); ok {
		for c := geo.CellID(0); int(c) < grid.NumCells(); c++ {
			r := grid.CellRect(c)
			x0, y0 := tx(geo.Pt(r.Min.X, r.Max.Y))
			x1, y1 := tx(geo.Pt(r.Max.X, r.Min.Y))
			fmt.Fprintf(sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#ccc"/>`+"\n",
				x0, y0, x1-x0, y1-y0)
		}
		return
	}
	if hex, ok := ds.Layout.(*geo.HexLayout); ok {
		for c := geo.CellID(0); int(c) < hex.NumCells(); c++ {
			center := hex.Center(c)
			var pts []string
			for k := 0; k < 6; k++ {
				ang := math.Pi/6 + float64(k)*math.Pi/3 // pointy-top corners
				x, y := tx(geo.Pt(
					center.X+hex.Size()*math.Cos(ang),
					center.Y+hex.Size()*math.Sin(ang),
				))
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
			}
			fmt.Fprintf(sb, `<polygon points="%s" fill="none" stroke="#ccc"/>`+"\n", strings.Join(pts, " "))
		}
		return
	}
	// Unknown layout: draw only the outer border.
	b := ds.Layout.Bounds()
	x0, y0 := tx(geo.Pt(b.Min.X, b.Max.Y))
	x1, y1 := tx(geo.Pt(b.Max.X, b.Min.Y))
	fmt.Fprintf(sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#999"/>`+"\n",
		x0, y0, x1-x0, y1-y0)
}

func pointsOf(pts []trajectory.Point) []geo.Point {
	out := make([]geo.Point, len(pts))
	for i, p := range pts {
		out[i] = p.Pos
	}
	return out
}

// drawTrack renders one polyline with endpoint dots; dashed tracks mark
// E-trajectories (coarse, estimated) versus solid V-trajectories.
func drawTrack(sb *strings.Builder, pts []geo.Point, tx func(geo.Point) (float64, float64), color string, dashed bool) {
	if len(pts) == 0 {
		return
	}
	coords := make([]string, len(pts))
	for i, p := range pts {
		x, y := tx(p)
		coords[i] = fmt.Sprintf("%.1f,%.1f", x, y)
	}
	dash := ""
	if dashed {
		dash = ` stroke-dasharray="6,4"`
	}
	fmt.Fprintf(sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"%s/>`+"\n",
		strings.Join(coords, " "), color, dash)
	x, y := tx(pts[0])
	fmt.Fprintf(sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", x, y, color)
	x, y = tx(pts[len(pts)-1])
	fmt.Fprintf(sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s" stroke="#000"/>`+"\n", x, y, color)
}

func labelTrack(sb *strings.Builder, vt *trajectory.VTrajectory, tx func(geo.Point) (float64, float64), label, color string) {
	for _, seg := range vt.Segments {
		if len(seg.Points) > 0 {
			x, y := tx(seg.Points[0].Pos)
			fmt.Fprintf(sb, `<text x="%.1f" y="%.1f" font-size="11" fill="%s">%s</text>`+"\n",
				x+5, y+12, color, label)
			return
		}
	}
}

package viz

import (
	"strings"
	"testing"

	"evmatching/internal/dataset"
	"evmatching/internal/elocal"
	"evmatching/internal/ids"
)

func testWorld(t *testing.T, mutate func(*dataset.Config)) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumPersons = 30
	cfg.Density = 6
	cfg.NumWindows = 10
	if mutate != nil {
		mutate(&cfg)
	}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func render(t *testing.T, ds *dataset.Dataset, opts Options) string {
	t.Helper()
	var sb strings.Builder
	if err := Render(&sb, ds, opts); err != nil {
		t.Fatalf("Render: %v", err)
	}
	return sb.String()
}

func TestRenderValidation(t *testing.T) {
	var sb strings.Builder
	if err := Render(&sb, nil, Options{}); err == nil {
		t.Error("want error for nil dataset")
	}
	ds := testWorld(t, nil)
	if err := Render(&sb, ds, Options{Persons: []int{999}}); err == nil {
		t.Error("want error for out-of-range person")
	}
}

func TestRenderGridWorld(t *testing.T) {
	ds := testWorld(t, nil)
	svg := render(t, ds, Options{Persons: []int{0, 1}, EIDs: []ids.EID{ds.Persons[2].EID}})
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("not a complete SVG document")
	}
	if !strings.Contains(svg, "<rect") {
		t.Error("no grid cells drawn")
	}
	if strings.Count(svg, "<polyline") < 2 {
		t.Error("missing trajectory polylines")
	}
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Error("E-trajectory should be dashed")
	}
	if !strings.Contains(svg, "person 0") {
		t.Error("missing person label")
	}
}

func TestRenderHexWorld(t *testing.T) {
	ds := testWorld(t, func(c *dataset.Config) { c.Layout = dataset.LayoutHex })
	svg := render(t, ds, Options{Persons: []int{0}})
	if !strings.Contains(svg, "<polygon") {
		t.Error("no hex cells drawn")
	}
}

func TestRenderStations(t *testing.T) {
	ds := testWorld(t, func(c *dataset.Config) { c.ELocal = elocal.DefaultConfig() })
	if len(ds.Stations) == 0 {
		t.Fatal("dataset has no stations")
	}
	svg := render(t, ds, Options{ShowStations: true})
	if strings.Count(svg, "<circle") < len(ds.Stations) {
		t.Errorf("fewer station markers than stations (%d)", len(ds.Stations))
	}
	// Without the flag, stations are not drawn.
	bare := render(t, ds, Options{})
	if strings.Count(bare, "<circle") >= len(ds.Stations) {
		t.Error("stations drawn without ShowStations")
	}
}

func TestRenderCustomSize(t *testing.T) {
	ds := testWorld(t, nil)
	svg := render(t, ds, Options{Size: 400})
	if !strings.Contains(svg, `width="400"`) {
		t.Error("custom size not applied")
	}
}

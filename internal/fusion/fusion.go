// Package fusion is the payoff of EV-Matching (paper §I): once EIDs and VIDs
// are matched — after universal labeling, each VID in the whole video corpus
// carries its EID — the two heterogeneous datasets can be fused and queried
// together. One single query retrieves both the electronic and the visual
// information for a person: where a device holder appeared on camera, which
// devices the people visible in a cell were carrying, and the fused
// trajectory combining E- and V-locations.
package fusion

import (
	"errors"
	"fmt"
	"sort"

	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/trajectory"
)

// Errors returned by index queries.
var (
	ErrUnknownEID = errors.New("fusion: EID not in index")
	ErrUnknownVID = errors.New("fusion: VID not in index")
)

// Index is the bidirectional EID↔VID mapping produced by a matching run,
// bound to the dataset it was computed over.
type Index struct {
	ds      *dataset.Dataset
	vidOf   map[ids.EID]ids.VID
	eidOf   map[ids.VID]ids.EID
	confide map[ids.EID]float64
}

// BuildIndex folds a matching report into a fused-query index. Unmatched
// EIDs are omitted; when several EIDs claim one VID, the higher-probability
// match wins (matching normally prevents this via rule-out, but reports from
// refining-disabled runs may conflict).
func BuildIndex(ds *dataset.Dataset, rep *core.Report) (*Index, error) {
	if ds == nil || rep == nil {
		return nil, errors.New("fusion: nil dataset or report")
	}
	idx := &Index{
		ds:      ds,
		vidOf:   make(map[ids.EID]ids.VID, len(rep.Results)),
		eidOf:   make(map[ids.VID]ids.EID, len(rep.Results)),
		confide: make(map[ids.EID]float64, len(rep.Results)),
	}
	// Deterministic fold order.
	targets := append([]ids.EID(nil), rep.Targets...)
	ids.SortEIDs(targets)
	for _, e := range targets {
		res, ok := rep.Results[e]
		if !ok || res.VID == ids.NoVID {
			continue
		}
		if prev, taken := idx.eidOf[res.VID]; taken {
			if rep.Results[prev].Probability >= res.Probability {
				continue
			}
			delete(idx.vidOf, prev)
			delete(idx.confide, prev)
		}
		idx.vidOf[e] = res.VID
		idx.eidOf[res.VID] = e
		idx.confide[e] = res.MajorityFrac
	}
	return idx, nil
}

// Len returns the number of matched pairs in the index.
func (x *Index) Len() int { return len(x.vidOf) }

// VIDOf returns the visual identity matched to an EID.
func (x *Index) VIDOf(e ids.EID) (ids.VID, error) {
	v, ok := x.vidOf[e]
	if !ok {
		return ids.NoVID, fmt.Errorf("%w: %s", ErrUnknownEID, e)
	}
	return v, nil
}

// EIDOf returns the device identity matched to a VID.
func (x *Index) EIDOf(v ids.VID) (ids.EID, error) {
	e, ok := x.eidOf[v]
	if !ok {
		return ids.None, fmt.Errorf("%w: %s", ErrUnknownVID, v)
	}
	return e, nil
}

// Confidence returns the vote fraction behind an EID's match.
func (x *Index) Confidence(e ids.EID) (float64, error) {
	c, ok := x.confide[e]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownEID, e)
	}
	return c, nil
}

// Sighting is one fused observation of a person: where they were, in which
// window, and through which modality they were seen.
type Sighting struct {
	Window int
	Cell   geo.CellID
	Pos    geo.Point
	// Electronic and Visual report which modality observed the person in
	// this window; fusion's value is that either one suffices.
	Electronic bool
	Visual     bool
}

// FusedTrajectory merges the EID's E-Trajectory with its matched VID's
// V-Trajectory into one sighting list — the single query that used to take
// two separate systems (paper §I).
func (x *Index) FusedTrajectory(e ids.EID) ([]Sighting, error) {
	v, err := x.VIDOf(e)
	if err != nil {
		return nil, err
	}
	et, err := trajectory.BuildE(x.ds.Store, e)
	if err != nil {
		return nil, err
	}
	vt, err := trajectory.BuildV(x.ds.Store, v, 1)
	if err != nil {
		return nil, err
	}
	byWindow := make(map[int]*Sighting)
	for _, p := range et.Points {
		byWindow[p.Window] = &Sighting{
			Window: p.Window, Cell: p.Cell, Pos: p.Pos, Electronic: true,
		}
	}
	for _, seg := range vt.Segments {
		for _, p := range seg.Points {
			if s, ok := byWindow[p.Window]; ok {
				s.Visual = true
				// Camera placement is ground truth for position; prefer it
				// over the noisy electronic cell when both exist.
				s.Cell, s.Pos = p.Cell, p.Pos
			} else {
				byWindow[p.Window] = &Sighting{
					Window: p.Window, Cell: p.Cell, Pos: p.Pos, Visual: true,
				}
			}
		}
	}
	out := make([]Sighting, 0, len(byWindow))
	for _, s := range byWindow {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Window < out[j].Window })
	return out, nil
}

// Presence is one identity seen in a queried cell and window.
type Presence struct {
	EID ids.EID // ids.None when only seen visually and not matched
	VID ids.VID // ids.NoVID when only seen electronically and not matched
}

// WhoWasAt returns everyone observed in the cell during the window, fusing
// both modalities: device holders get their matched VID attached and
// detected persons get their matched EID attached.
func (x *Index) WhoWasAt(cell geo.CellID, window int) ([]Presence, error) {
	byEID := make(map[ids.EID]*Presence)
	byVID := make(map[ids.VID]*Presence)
	var out []*Presence
	for _, id := range x.ds.Store.AtWindow(window) {
		esc := x.ds.Store.E(id)
		if esc.Cell != cell {
			continue
		}
		for _, e := range esc.SortedEIDs() {
			p := &Presence{EID: e}
			if v, ok := x.vidOf[e]; ok {
				p.VID = v
				byVID[v] = p
			}
			byEID[e] = p
			out = append(out, p)
		}
		if vsc := x.ds.Store.V(id); vsc != nil {
			for _, v := range vsc.VIDs() {
				if _, seen := byVID[v]; seen {
					continue // already fused through the EID side
				}
				p := &Presence{VID: v}
				if e, ok := x.eidOf[v]; ok {
					if existing, seen := byEID[e]; seen {
						existing.VID = v
						continue
					}
					p.EID = e
				}
				byVID[v] = p
				out = append(out, p)
			}
		}
		break // one scenario per (cell, window)
	}
	res := make([]Presence, 0, len(out))
	for _, p := range out {
		res = append(res, *p)
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].EID != res[j].EID {
			return res[i].EID < res[j].EID
		}
		return res[i].VID < res[j].VID
	})
	return res, nil
}

// WhereWas returns the person's fused location during one window, if either
// modality observed them.
func (x *Index) WhereWas(e ids.EID, window int) (Sighting, bool, error) {
	sightings, err := x.FusedTrajectory(e)
	if err != nil {
		return Sighting{}, false, err
	}
	for _, s := range sightings {
		if s.Window == window {
			return s, true, nil
		}
	}
	return Sighting{}, false, nil
}

package fusion

import (
	"context"
	"testing"

	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/ids"
	"evmatching/internal/vfilter"
)

// matchedWorld generates a small world and universally matches it.
func matchedWorld(t *testing.T, mutate func(*dataset.Config)) (*dataset.Dataset, *core.Report) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumPersons = 60
	cfg.Density = 10
	cfg.NumWindows = 16
	if mutate != nil {
		mutate(&cfg)
	}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(ds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.MatchAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return ds, rep
}

func TestBuildIndexValidation(t *testing.T) {
	if _, err := BuildIndex(nil, nil); err == nil {
		t.Error("want error for nil inputs")
	}
}

func TestIndexBidirectional(t *testing.T) {
	ds, rep := matchedWorld(t, nil)
	idx, err := BuildIndex(ds, rep)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() == 0 {
		t.Fatal("empty index")
	}
	for _, e := range rep.Targets {
		v, err := idx.VIDOf(e)
		if err != nil {
			continue // unmatched
		}
		back, err := idx.EIDOf(v)
		if err != nil {
			t.Fatalf("EIDOf(%s): %v", v, err)
		}
		if back != e {
			t.Fatalf("round trip %s -> %s -> %s", e, v, back)
		}
		c, err := idx.Confidence(e)
		if err != nil || c <= 0 || c > 1 {
			t.Fatalf("Confidence(%s) = %v, %v", e, c, err)
		}
	}
	if _, err := idx.VIDOf("no:such"); err == nil {
		t.Error("want ErrUnknownEID")
	}
	if _, err := idx.EIDOf("V99999"); err == nil {
		t.Error("want ErrUnknownVID")
	}
	if _, err := idx.Confidence("no:such"); err == nil {
		t.Error("want ErrUnknownEID")
	}
}

func TestFusedTrajectoryCoversBothModalities(t *testing.T) {
	ds, rep := matchedWorld(t, nil)
	idx, err := BuildIndex(ds, rep)
	if err != nil {
		t.Fatal(err)
	}
	e := ds.AllEIDs()[2]
	if _, err := idx.VIDOf(e); err != nil {
		t.Skip("EID unmatched in this seed")
	}
	sightings, err := idx.FusedTrajectory(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(sightings) != ds.Config.NumWindows {
		t.Errorf("sightings = %d, want %d in ideal world", len(sightings), ds.Config.NumWindows)
	}
	for i, s := range sightings {
		if i > 0 && sightings[i-1].Window >= s.Window {
			t.Fatal("sightings not strictly ordered by window")
		}
		if !s.Electronic && !s.Visual {
			t.Fatal("sighting with no modality")
		}
	}
	// Ideal world and a correct match: both modalities in every window.
	if ds.TruthVID(e) == mustVID(t, idx, e) {
		for _, s := range sightings {
			if !s.Electronic || !s.Visual {
				t.Errorf("window %d: E=%v V=%v, want both", s.Window, s.Electronic, s.Visual)
			}
		}
	}
	if _, err := idx.FusedTrajectory("no:such"); err == nil {
		t.Error("want error for unknown EID")
	}
}

func mustVID(t *testing.T, idx *Index, e ids.EID) ids.VID {
	t.Helper()
	v, err := idx.VIDOf(e)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestWhoWasAtFusesIdentities(t *testing.T) {
	ds, rep := matchedWorld(t, nil)
	idx, err := BuildIndex(ds, rep)
	if err != nil {
		t.Fatal(err)
	}
	// Find a (cell, window) with a recorded scenario.
	id := ds.Store.AtWindow(3)[0]
	cell := ds.Store.E(id).Cell
	present, err := idx.WhoWasAt(cell, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(present) == 0 {
		t.Fatal("no one present in a populated scenario")
	}
	fused := 0
	for _, p := range present {
		if p.EID != ids.None && p.VID != ids.NoVID {
			fused++
		}
	}
	if fused == 0 {
		t.Error("no presence carries both identities after universal matching")
	}
	// Unpopulated queries return empty without error.
	empty, err := idx.WhoWasAt(cell, 9999)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Errorf("phantom presences: %v", empty)
	}
}

func TestWhoWasAtIncludesDevicelessPeople(t *testing.T) {
	ds, rep := matchedWorld(t, func(c *dataset.Config) {
		c.EIDMissingRate = 0.4
		c.NumPersons = 80
	})
	idx, err := BuildIndex(ds, rep)
	if err != nil {
		t.Fatal(err)
	}
	var sawVisualOnly bool
	for w := 0; w < ds.Config.NumWindows && !sawVisualOnly; w++ {
		for _, id := range ds.Store.AtWindow(w) {
			esc := ds.Store.E(id)
			present, err := idx.WhoWasAt(esc.Cell, w)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range present {
				if p.EID == ids.None && p.VID != ids.NoVID {
					sawVisualOnly = true
				}
			}
		}
	}
	if !sawVisualOnly {
		t.Error("device-less people never surfaced as visual-only presences")
	}
}

func TestWhereWas(t *testing.T) {
	ds, rep := matchedWorld(t, nil)
	idx, err := BuildIndex(ds, rep)
	if err != nil {
		t.Fatal(err)
	}
	e := ds.AllEIDs()[0]
	if _, err := idx.VIDOf(e); err != nil {
		t.Skip("EID unmatched in this seed")
	}
	s, ok, err := idx.WhereWas(e, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("person unseen in window 4 of an ideal world")
	}
	if s.Window != 4 {
		t.Errorf("Window = %d", s.Window)
	}
	_, ok, err = idx.WhereWas(e, 9999)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("phantom sighting in nonexistent window")
	}
}

func TestBuildIndexConflictKeepsHigherProbability(t *testing.T) {
	ds, _ := matchedWorld(t, nil)
	rep := &core.Report{
		Targets: []ids.EID{"aa", "bb"},
		Results: map[ids.EID]vfilter.Result{
			"aa": {EID: "aa", VID: "V00001", Probability: 0.3, MajorityFrac: 1},
			"bb": {EID: "bb", VID: "V00001", Probability: 0.8, MajorityFrac: 1},
		},
	}
	idx, err := BuildIndex(ds, rep)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 1 {
		t.Fatalf("index len = %d, want 1 after conflict", idx.Len())
	}
	winner, err := idx.EIDOf("V00001")
	if err != nil {
		t.Fatal(err)
	}
	if winner != "bb" {
		t.Errorf("conflict winner = %s, want bb (higher probability)", winner)
	}
	if _, err := idx.VIDOf("aa"); err == nil {
		t.Error("loser should be evicted from the index")
	}
}

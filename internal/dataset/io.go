package dataset

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"evmatching/internal/elocal"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// fileVersion guards the on-disk format.
const fileVersion = 1

// filePair is the serialized form of one EV-Scenario pair.
type filePair struct {
	E    scenario.EScenario
	V    scenario.VScenario
	HasV bool
}

// fileFormat is the gob-encoded dataset file layout.
type fileFormat struct {
	Version  int
	Config   Config
	Persons  []Person
	Stations []elocal.Station
	Pairs    []filePair
}

// Write serializes the dataset to w.
func (d *Dataset) Write(w io.Writer) error {
	ff := fileFormat{
		Version:  fileVersion,
		Config:   d.Config,
		Persons:  d.Persons,
		Stations: d.Stations,
		Pairs:    make([]filePair, 0, d.Store.Len()),
	}
	for id := scenario.ID(0); int(id) < d.Store.Len(); id++ {
		p := filePair{E: *d.Store.E(id)}
		if v := d.Store.V(id); v != nil {
			p.V = *v
			p.HasV = true
		}
		ff.Pairs = append(ff.Pairs, p)
	}
	if err := gob.NewEncoder(w).Encode(ff); err != nil {
		return fmt.Errorf("dataset: encode: %w", err)
	}
	return nil
}

// Read deserializes a dataset written by Write, rebuilding the layout and
// scenario indexes from the embedded config.
func Read(r io.Reader) (*Dataset, error) {
	var ff fileFormat
	if err := gob.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	if ff.Version != fileVersion {
		return nil, fmt.Errorf("dataset: unsupported file version %d", ff.Version)
	}
	if err := ff.Config.Validate(); err != nil {
		return nil, err
	}
	layout, err := buildLayout(ff.Config)
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		Config:   ff.Config,
		Layout:   layout,
		Store:    scenario.NewStore(layout),
		Persons:  ff.Persons,
		Stations: ff.Stations,
		byEID:    make(map[ids.EID]int, len(ff.Persons)),
	}
	for _, p := range ff.Persons {
		if p.EID != ids.None {
			d.byEID[p.EID] = p.Index
		}
	}
	for i := range ff.Pairs {
		pair := &ff.Pairs[i]
		var v *scenario.VScenario
		if pair.HasV {
			v = &pair.V
		}
		if _, err := d.Store.Add(&pair.E, v); err != nil {
			return nil, fmt.Errorf("dataset: rebuild store: %w", err)
		}
	}
	return d, nil
}

// SaveFile writes the dataset to the named file.
func (d *Dataset) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("dataset: close: %w", cerr)
		}
	}()
	bw := bufio.NewWriter(f)
	if err := d.Write(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadFile reads a dataset from the named file.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}

package dataset

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"evmatching/internal/elocal"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// smallConfig is a fast configuration for tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumPersons = 60
	cfg.Density = 10
	cfg.NumWindows = 12
	return cfg
}

func mustGenerate(t *testing.T, cfg Config) *Dataset {
	t.Helper()
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ds
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "zero persons", mutate: func(c *Config) { c.NumPersons = 0 }},
		{name: "zero region", mutate: func(c *Config) { c.RegionSide = 0 }},
		{name: "zero density", mutate: func(c *Config) { c.Density = 0 }},
		{name: "bad layout", mutate: func(c *Config) { c.Layout = 0 }},
		{name: "zero windows", mutate: func(c *Config) { c.NumWindows = 0 }},
		{name: "zero ticks", mutate: func(c *Config) { c.TicksPerWindow = 0 }},
		{name: "zero interval", mutate: func(c *Config) { c.TickInterval = 0 }},
		{name: "bad speeds", mutate: func(c *Config) { c.SpeedMax = 0.1 }},
		{name: "tiny dim", mutate: func(c *Config) { c.FeatureDim = 1 }},
		{name: "negative noise", mutate: func(c *Config) { c.ObsNoise = -1 }},
		{name: "bad inclusive frac", mutate: func(c *Config) { c.InclusiveFrac = 1.5 }},
		{name: "minfrac above inclusive", mutate: func(c *Config) { c.MinFrac = 0.9 }},
		{name: "eid missing rate 1", mutate: func(c *Config) { c.EIDMissingRate = 1 }},
		{name: "negative vid missing", mutate: func(c *Config) { c.VIDMissingRate = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
	if err := DefaultConfig().Practical().Validate(); err != nil {
		t.Errorf("Practical config invalid: %v", err)
	}
}

func TestNumCells(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPersons, cfg.Density = 1000, 60
	if got := cfg.NumCells(); got != 17 {
		t.Errorf("NumCells = %d, want 17", got)
	}
	cfg.Density = 5000
	if got := cfg.NumCells(); got != 1 {
		t.Errorf("NumCells = %d, want 1 (floor)", got)
	}
}

func TestLayoutKindString(t *testing.T) {
	if LayoutGrid.String() != "grid" || LayoutHex.String() != "hex" || LayoutKind(0).String() != "invalid" {
		t.Error("LayoutKind.String wrong")
	}
}

func TestGenerateIdealWorldBasics(t *testing.T) {
	cfg := smallConfig()
	ds := mustGenerate(t, cfg)
	if len(ds.Persons) != cfg.NumPersons {
		t.Fatalf("persons = %d", len(ds.Persons))
	}
	if got := len(ds.AllEIDs()); got != cfg.NumPersons {
		t.Errorf("AllEIDs = %d, want %d (no missing EIDs)", got, cfg.NumPersons)
	}
	if ds.Store.Len() == 0 {
		t.Fatal("no scenarios generated")
	}
	// Ideal setting: every attributed EID is inclusive.
	for id := scenario.ID(0); int(id) < ds.Store.Len(); id++ {
		for eid, attr := range ds.Store.E(id).EIDs {
			if attr != scenario.AttrInclusive {
				t.Fatalf("ideal scenario %d has non-inclusive EID %s (%v)", id, eid, attr)
			}
		}
	}
}

func TestGenerateIdealEVConsistency(t *testing.T) {
	// In the ideal setting, when an EID appears in an E-Scenario the same
	// person's VID appears in the corresponding V-Scenario (assumption 2).
	ds := mustGenerate(t, smallConfig())
	for id := scenario.ID(0); int(id) < ds.Store.Len(); id++ {
		e := ds.Store.E(id)
		v := ds.Store.V(id)
		for eid := range e.EIDs {
			p, ok := ds.PersonByEID(eid)
			if !ok {
				t.Fatalf("scenario EID %s has no person", eid)
			}
			if v == nil || !v.HasVID(p.VID) {
				t.Fatalf("scenario %d: EID %s present but VID %s missing", id, eid, p.VID)
			}
		}
	}
}

func TestGenerateEachPersonOneDetectionPerWindow(t *testing.T) {
	cfg := smallConfig()
	ds := mustGenerate(t, cfg)
	perWindow := make(map[int]map[int]int) // window -> person -> detections
	for id := scenario.ID(0); int(id) < ds.Store.Len(); id++ {
		v := ds.Store.V(id)
		if v == nil {
			continue
		}
		m := perWindow[v.Window]
		if m == nil {
			m = make(map[int]int)
			perWindow[v.Window] = m
		}
		for _, d := range v.Detections {
			m[d.TruePerson]++
		}
	}
	for w, m := range perWindow {
		for person, n := range m {
			if n != 1 {
				t.Fatalf("window %d person %d has %d detections", w, person, n)
			}
		}
		if len(m) != cfg.NumPersons {
			t.Fatalf("window %d covers %d persons, want %d", w, len(m), cfg.NumPersons)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	a := mustGenerate(t, cfg)
	b := mustGenerate(t, cfg)
	if a.Store.Len() != b.Store.Len() {
		t.Fatalf("store sizes differ: %d vs %d", a.Store.Len(), b.Store.Len())
	}
	for id := scenario.ID(0); int(id) < a.Store.Len(); id++ {
		ea, eb := a.Store.E(id), b.Store.E(id)
		if ea.Cell != eb.Cell || ea.Window != eb.Window || len(ea.EIDs) != len(eb.EIDs) {
			t.Fatalf("scenario %d differs", id)
		}
		for eid, attr := range ea.EIDs {
			if eb.EIDs[eid] != attr {
				t.Fatalf("scenario %d EID %s attr differs", id, eid)
			}
		}
	}
	for i := range a.Persons {
		if a.Persons[i] != b.Persons[i] {
			t.Fatalf("person %d differs", i)
		}
	}
}

func TestGenerateEIDMissing(t *testing.T) {
	cfg := smallConfig()
	cfg.NumPersons = 200
	cfg.EIDMissingRate = 0.3
	ds := mustGenerate(t, cfg)
	got := len(ds.AllEIDs())
	if got >= 200 || got < 100 {
		t.Errorf("with 30%% missing, %d/200 EIDs assigned", got)
	}
	// Persons without EIDs still produce detections.
	var missingDetected bool
	for id := scenario.ID(0); int(id) < ds.Store.Len() && !missingDetected; id++ {
		v := ds.Store.V(id)
		if v == nil {
			continue
		}
		for _, d := range v.Detections {
			if ds.Persons[d.TruePerson].EID == ids.None {
				missingDetected = true
				break
			}
		}
	}
	if !missingDetected {
		t.Error("no detections from device-less persons")
	}
}

func TestGenerateVIDMissing(t *testing.T) {
	cfg := smallConfig()
	cfg.VIDMissingRate = 0.2
	ds := mustGenerate(t, cfg)
	total := 0
	for id := scenario.ID(0); int(id) < ds.Store.Len(); id++ {
		if v := ds.Store.V(id); v != nil {
			total += len(v.Detections)
		}
	}
	expected := cfg.NumPersons * cfg.NumWindows
	if total >= expected {
		t.Errorf("detections = %d, want < %d with 20%% missing", total, expected)
	}
	if float64(total) < 0.6*float64(expected) {
		t.Errorf("detections = %d, too few for 20%% missing of %d", total, expected)
	}
}

func TestGeneratePracticalHasVagueEIDs(t *testing.T) {
	cfg := smallConfig().Practical()
	ds := mustGenerate(t, cfg)
	var vague, inclusive int
	for id := scenario.ID(0); int(id) < ds.Store.Len(); id++ {
		for _, attr := range ds.Store.E(id).EIDs {
			switch attr {
			case scenario.AttrInclusive:
				inclusive++
			case scenario.AttrVague:
				vague++
			}
		}
	}
	if vague == 0 {
		t.Error("practical setting produced no vague EIDs")
	}
	if inclusive == 0 {
		t.Error("practical setting produced no inclusive EIDs")
	}
	if vague >= inclusive {
		t.Errorf("vague (%d) should be rarer than inclusive (%d)", vague, inclusive)
	}
}

func TestGenerateHexLayout(t *testing.T) {
	cfg := smallConfig()
	cfg.Layout = LayoutHex
	ds := mustGenerate(t, cfg)
	if _, ok := ds.Layout.(*geo.HexLayout); !ok {
		t.Fatalf("layout is %T, want *geo.HexLayout", ds.Layout)
	}
	if ds.Store.Len() == 0 {
		t.Error("no scenarios on hex layout")
	}
}

func TestTruthAndSampling(t *testing.T) {
	ds := mustGenerate(t, smallConfig())
	all := ds.AllEIDs()
	e := all[0]
	p, ok := ds.PersonByEID(e)
	if !ok {
		t.Fatal("PersonByEID failed for assigned EID")
	}
	if got := ds.TruthVID(e); got != p.VID {
		t.Errorf("TruthVID = %v, want %v", got, p.VID)
	}
	if got := ds.TruthVID("no:such:eid"); got != ids.NoVID {
		t.Errorf("TruthVID(unknown) = %v", got)
	}
	rng := rand.New(rand.NewSource(5))
	sample := ds.SampleEIDs(10, rng)
	if len(sample) != 10 {
		t.Fatalf("SampleEIDs = %d", len(sample))
	}
	seen := map[ids.EID]bool{}
	for _, s := range sample {
		if seen[s] {
			t.Fatalf("duplicate EID %s in sample", s)
		}
		seen[s] = true
	}
	if got := ds.SampleEIDs(10000, rng); len(got) != len(all) {
		t.Errorf("oversized sample = %d, want all %d", len(got), len(all))
	}
}

func TestRoundTripSerialization(t *testing.T) {
	cfg := smallConfig()
	cfg.NumWindows = 6
	ds := mustGenerate(t, cfg)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Store.Len() != ds.Store.Len() || len(got.Persons) != len(ds.Persons) {
		t.Fatalf("round trip sizes differ")
	}
	for id := scenario.ID(0); int(id) < ds.Store.Len(); id++ {
		e1, e2 := ds.Store.E(id), got.Store.E(id)
		if e1.Cell != e2.Cell || e1.Window != e2.Window || len(e1.EIDs) != len(e2.EIDs) {
			t.Fatalf("scenario %d differs after round trip", id)
		}
		v1, v2 := ds.Store.V(id), got.Store.V(id)
		if (v1 == nil) != (v2 == nil) {
			t.Fatalf("scenario %d V presence differs", id)
		}
		if v1 != nil && len(v1.Detections) != len(v2.Detections) {
			t.Fatalf("scenario %d detections differ", id)
		}
	}
	if got.TruthVID(ds.AllEIDs()[0]) != ds.TruthVID(ds.AllEIDs()[0]) {
		t.Error("truth differs after round trip")
	}
}

func TestSaveLoadFile(t *testing.T) {
	cfg := smallConfig()
	cfg.NumWindows = 4
	ds := mustGenerate(t, cfg)
	path := filepath.Join(t.TempDir(), "world.gob")
	if err := ds.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got.Store.Len() != ds.Store.Len() {
		t.Errorf("store len = %d, want %d", got.Store.Len(), ds.Store.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("want error for missing file")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Error("want decode error")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.TickInterval = -time.Second
	if _, err := Generate(cfg); err == nil {
		t.Error("want error")
	}
}

func TestGenerateWithRSSILocalization(t *testing.T) {
	cfg := smallConfig().Practical()
	cfg.ELocal = elocal.DefaultConfig()
	ds := mustGenerate(t, cfg)
	if ds.Store.Len() == 0 {
		t.Fatal("no scenarios with RSSI localization")
	}
	// RSSI fixes drift: some EIDs should be attributed vague.
	var vague int
	for id := scenario.ID(0); int(id) < ds.Store.Len(); id++ {
		for _, attr := range ds.Store.E(id).EIDs {
			if attr == scenario.AttrVague {
				vague++
			}
		}
	}
	if vague == 0 {
		t.Error("RSSI localization produced no vague attributions")
	}
}

func TestGenerateRejectsBadELocal(t *testing.T) {
	cfg := smallConfig()
	cfg.ELocal.Enabled = true
	cfg.ELocal.NumStations = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("want validation error for bad ELocal config")
	}
}

func TestRSSIRoundTripSerialization(t *testing.T) {
	cfg := smallConfig()
	cfg.NumWindows = 4
	cfg.ELocal = elocal.DefaultConfig()
	ds := mustGenerate(t, cfg)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Config.ELocal.Enabled {
		t.Error("ELocal config lost in round trip")
	}
}

func TestGenerateHotspotMobility(t *testing.T) {
	cfg := smallConfig()
	cfg.Mobility = MobilityHotspot
	cfg.HotspotCount = 2
	cfg.HotspotAttraction = 0.9
	cfg.HotspotSpread = 30
	ds := mustGenerate(t, cfg)
	if ds.Store.Len() == 0 {
		t.Fatal("no scenarios under hotspot mobility")
	}
	// Crowding: the most populated scenario should hold a large share of
	// the population, unlike the uniform waypoint world.
	maxDets := 0
	for id := scenario.ID(0); int(id) < ds.Store.Len(); id++ {
		if v := ds.Store.V(id); v != nil && len(v.Detections) > maxDets {
			maxDets = len(v.Detections)
		}
	}
	if maxDets < cfg.NumPersons/3 {
		t.Errorf("max detections per scenario = %d of %d persons; expected crowding", maxDets, cfg.NumPersons)
	}
}

func TestGenerateRejectsBadHotspot(t *testing.T) {
	cfg := smallConfig()
	cfg.Mobility = MobilityHotspot
	cfg.HotspotCount = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("want validation error")
	}
	if MobilityWaypoint.String() != "waypoint" || MobilityHotspot.String() != "hotspot" || MobilityKind(9).String() != "invalid" {
		t.Error("MobilityKind.String wrong")
	}
}

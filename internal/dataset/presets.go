package dataset

import "fmt"

// Scale presets: named world shapes at the sizes the blocking index
// (DESIGN.md §13) is built for, selectable via `evgen -preset`. Both are
// fully seeded — equal names generate equal worlds — and keep descriptor
// dimensionality and detection density low so world memory is spent on the
// E side (the axis the blocking index scales), not on pixel patches.
const (
	// PresetSparseCity is a 100k-EID city at realistic sparsity: ~12.5k
	// cells (density 8), so any one EID co-occurs with a vanishing fraction
	// of the population and coarse signatures prune almost every
	// (scenario, partition) probe. This is the scale-smoke and
	// BenchmarkMatchSSBlocked world.
	PresetSparseCity = "sparse-city"
	// PresetDenseCore is a 1M-EID stress world with crowded cells (density
	// 160): the blocking index's worst case, where signatures are saturated
	// and pruning must cost nearly nothing. Generation needs roughly a GB
	// of memory — an offline world, not a CI one.
	PresetDenseCore = "dense-core"
)

// ScalePresetNames lists the preset names ScalePreset accepts.
func ScalePresetNames() []string { return []string{PresetSparseCity, PresetDenseCore} }

// ScalePreset returns the named scale preset's configuration.
func ScalePreset(name string) (Config, error) {
	cfg := DefaultConfig()
	switch name {
	case PresetSparseCity:
		cfg.NumPersons = 100_000
		cfg.Density = 8
		cfg.NumWindows = 12
		cfg.FeatureDim = 16
		cfg.VIDMissingRate = 0.9
	case PresetDenseCore:
		cfg.NumPersons = 1_000_000
		cfg.Density = 160
		cfg.NumWindows = 6
		cfg.FeatureDim = 8
		cfg.VIDMissingRate = 0.98
	default:
		return Config{}, fmt.Errorf("%w: unknown scale preset %q (have %v)", ErrBadConfig, name, ScalePresetNames())
	}
	return cfg, nil
}

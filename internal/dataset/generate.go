package dataset

import (
	"fmt"
	"math/rand"

	"evmatching/internal/elocal"
	"evmatching/internal/feature"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/mobility"
	"evmatching/internal/scenario"
)

// Person is one simulated human object: an appearance (always) and an EID
// (unless the person carries no device).
type Person struct {
	Index int
	EID   ids.EID // ids.None when the person carries no device
	VID   ids.VID
}

// Dataset is a fully generated EV world: the scenario store plus the ground
// truth needed for evaluation.
type Dataset struct {
	Config  Config
	Layout  geo.Layout
	Store   *scenario.Store
	Persons []Person
	// Stations holds the deployed localization stations when the RSSI
	// model is enabled (for inspection and visualization).
	Stations []elocal.Station

	byEID map[ids.EID]int // EID -> person index
}

// Generate builds the synthetic world described by cfg. Generation is
// deterministic in cfg (including Seed).
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	layout, err := buildLayout(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	observe, err := buildObserver(cfg, rng)
	if err != nil {
		return nil, fmt.Errorf("dataset: gallery: %w", err)
	}

	ds := &Dataset{
		Config:  cfg,
		Layout:  layout,
		Store:   scenario.NewStore(layout),
		Persons: make([]Person, cfg.NumPersons),
		byEID:   make(map[ids.EID]int, cfg.NumPersons),
	}
	macs := ids.NewMACGenerator(rng)
	newMover, err := moverFactory(cfg, rng)
	if err != nil {
		return nil, err
	}
	walkers := make([]mobility.Model, cfg.NumPersons)
	for i := range ds.Persons {
		eid := ids.None
		if rng.Float64() >= cfg.EIDMissingRate {
			eid = macs.Next()
			ds.byEID[eid] = i
		}
		ds.Persons[i] = Person{Index: i, EID: eid, VID: ids.VIDLabel(i)}
		w, err := newMover()
		if err != nil {
			return nil, fmt.Errorf("dataset: walker %d: %w", i, err)
		}
		walkers[i] = w
	}

	gen := &generator{cfg: cfg, layout: layout, rng: rng, observe: observe, ds: ds}
	if cfg.ELocal.Enabled {
		model, err := elocal.New(cfg.ELocal, cfg.Region(), rng)
		if err != nil {
			return nil, fmt.Errorf("dataset: localization model: %w", err)
		}
		gen.elocal = model
		ds.Stations = model.Stations()
	}
	for w := 0; w < cfg.NumWindows; w++ {
		if err := gen.window(w, walkers); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

func buildLayout(cfg Config) (geo.Layout, error) {
	switch cfg.Layout {
	case LayoutGrid:
		return geo.NewSquareGrid(cfg.Region(), cfg.NumCells())
	case LayoutHex:
		return geo.NewHexWithCells(cfg.Region(), cfg.NumCells())
	default:
		return nil, fmt.Errorf("%w: layout %v", ErrBadConfig, cfg.Layout)
	}
}

// moverFactory returns a constructor for per-person mobility models.
func moverFactory(cfg Config, rng *rand.Rand) (func() (mobility.Model, error), error) {
	walk := mobility.Config{
		Region:   cfg.Region(),
		SpeedMin: cfg.SpeedMin,
		SpeedMax: cfg.SpeedMax,
		PauseMax: cfg.PauseMax,
	}
	if cfg.Mobility != MobilityHotspot {
		return func() (mobility.Model, error) { return mobility.NewWalker(walk, rng) }, nil
	}
	hcfg := mobility.HotspotConfig{
		Walk:       walk,
		Hotspots:   cfg.HotspotCount,
		Attraction: cfg.HotspotAttraction,
		Spread:     cfg.HotspotSpread,
	}
	spots, err := mobility.Hotspots(hcfg, rng)
	if err != nil {
		return nil, fmt.Errorf("dataset: hotspots: %w", err)
	}
	return func() (mobility.Model, error) { return mobility.NewHotspotWalker(hcfg, spots, rng) }, nil
}

// observer produces one feature observation of a person.
type observer func(person int, rng *rand.Rand) feature.Vector

// buildObserver selects the plain appearance gallery or the fused
// appearance+gait gallery depending on the configuration.
func buildObserver(cfg Config, rng *rand.Rand) (observer, error) {
	if cfg.GaitDim > 0 {
		g, err := feature.NewFusedGallery(rng, cfg.NumPersons, cfg.FeatureDim, cfg.GaitDim, cfg.GaitWeight)
		if err != nil {
			return nil, err
		}
		return func(person int, rng *rand.Rand) feature.Vector {
			return g.Observe(person, cfg.ObsNoise, cfg.GaitNoise, rng)
		}, nil
	}
	g, err := feature.NewGallery(rng, cfg.NumPersons, cfg.FeatureDim)
	if err != nil {
		return nil, err
	}
	return func(person int, rng *rand.Rand) feature.Vector {
		return g.Observe(person, cfg.ObsNoise, rng)
	}, nil
}

// generator accumulates per-window observations into EV-Scenarios.
type generator struct {
	cfg     Config
	layout  geo.Layout
	rng     *rand.Rand
	observe observer
	ds      *Dataset
	elocal  *elocal.Model // nil unless cfg.ELocal.Enabled
}

// eObs tracks one EID's occurrences inside one cell during a window.
type eObs struct {
	count         int
	borderDistSum float64
}

// window advances all walkers through one time window, counts E occurrences
// per cell with localization noise, places each person's detection in the
// cell they truly spent the most ticks in, and emits the window's scenarios.
func (g *generator) window(w int, walkers []mobility.Model) error {
	cfg := g.cfg
	eCount := make(map[geo.CellID]map[ids.EID]*eObs)
	trueCells := make([]map[geo.CellID]int, len(walkers))
	for i := range trueCells {
		trueCells[i] = make(map[geo.CellID]int, 2)
	}

	for tick := 0; tick < cfg.TicksPerWindow; tick++ {
		for i, walker := range walkers {
			pos := walker.Advance(cfg.TickInterval)
			trueCell := g.layout.CellOf(pos)
			if trueCell != geo.NoCell {
				trueCells[i][trueCell]++
			}
			person := g.ds.Persons[i]
			if person.EID == ids.None {
				continue
			}
			epos := pos
			switch {
			case g.elocal != nil:
				est, ok := g.elocal.Observe(pos, g.rng)
				if !ok {
					continue // too few stations heard the device this tick
				}
				epos = cfg.Region().Clamp(est)
			case cfg.ELocNoise > 0:
				epos = cfg.Region().Clamp(geo.Pt(
					pos.X+g.rng.NormFloat64()*cfg.ELocNoise,
					pos.Y+g.rng.NormFloat64()*cfg.ELocNoise,
				))
			}
			cell := g.layout.CellOf(epos)
			if cell == geo.NoCell {
				continue
			}
			byEID := eCount[cell]
			if byEID == nil {
				byEID = make(map[ids.EID]*eObs)
				eCount[cell] = byEID
			}
			obs := byEID[person.EID]
			if obs == nil {
				obs = &eObs{}
				byEID[person.EID] = obs
			}
			obs.count++
			obs.borderDistSum += g.layout.BorderDist(epos)
		}
	}

	detections := g.placeDetections(w, trueCells)
	return g.emitScenarios(w, eCount, detections)
}

// placeDetections assigns each person's window detection to their majority
// true cell, subject to the missing-VID rate.
func (g *generator) placeDetections(w int, trueCells []map[geo.CellID]int) map[geo.CellID][]scenario.Detection {
	cfg := g.cfg
	out := make(map[geo.CellID][]scenario.Detection)
	for i, counts := range trueCells {
		cell, best := geo.NoCell, 0
		for c, n := range counts {
			if n > best || (n == best && c < cell) {
				cell, best = c, n
			}
		}
		if cell == geo.NoCell {
			continue
		}
		if cfg.VIDMissingRate > 0 && g.rng.Float64() < cfg.VIDMissingRate {
			continue // occluded or missed by the detector
		}
		obs := g.observe(i, g.rng)
		out[cell] = append(out[cell], scenario.Detection{
			VID:        g.ds.Persons[i].VID,
			Patch:      feature.EncodePatch(obs, cfg.PixelNoise, g.rng),
			TruePerson: i,
		})
	}
	return out
}

// emitScenarios classifies the window's E observations into inclusive/vague
// attributes and stores the EV-Scenario pairs, iterating cells in order for
// determinism.
func (g *generator) emitScenarios(w int, eCount map[geo.CellID]map[ids.EID]*eObs, detections map[geo.CellID][]scenario.Detection) error {
	cfg := g.cfg
	for cell := geo.CellID(0); int(cell) < g.layout.NumCells(); cell++ {
		byEID := eCount[cell]
		dets := detections[cell]
		if len(byEID) == 0 && len(dets) == 0 {
			continue
		}
		eids := make(map[ids.EID]scenario.Attr, len(byEID))
		ticks := float64(cfg.TicksPerWindow)
		for eid, obs := range byEID {
			frac := float64(obs.count) / ticks
			switch {
			case frac >= cfg.InclusiveFrac:
				attr := scenario.AttrInclusive
				if cfg.VagueWidth > 0 && obs.borderDistSum/float64(obs.count) < cfg.VagueWidth {
					attr = scenario.AttrVague
				}
				eids[eid] = attr
			case frac >= cfg.MinFrac && cfg.MinFrac < cfg.InclusiveFrac:
				eids[eid] = scenario.AttrVague
			}
		}
		if len(eids) == 0 && len(dets) == 0 {
			continue
		}
		esc := &scenario.EScenario{Cell: cell, Window: w, EIDs: eids}
		var vsc *scenario.VScenario
		if len(dets) > 0 {
			vsc = &scenario.VScenario{Cell: cell, Window: w, Detections: dets}
		}
		if _, err := g.ds.Store.Add(esc, vsc); err != nil {
			return fmt.Errorf("dataset: window %d cell %d: %w", w, cell, err)
		}
	}
	return nil
}

// PersonByEID returns the person carrying the given EID.
func (d *Dataset) PersonByEID(e ids.EID) (Person, bool) {
	i, ok := d.byEID[e]
	if !ok {
		return Person{}, false
	}
	return d.Persons[i], true
}

// TruthVID returns the ground-truth VID for an EID, or ids.NoVID if the EID
// is unknown.
func (d *Dataset) TruthVID(e ids.EID) ids.VID {
	if p, ok := d.PersonByEID(e); ok {
		return p.VID
	}
	return ids.NoVID
}

// AllEIDs returns every assigned EID in sorted order.
func (d *Dataset) AllEIDs() []ids.EID {
	out := make([]ids.EID, 0, len(d.byEID))
	for e := range d.byEID {
		out = append(out, e)
	}
	return ids.SortEIDs(out)
}

// SampleEIDs returns n distinct EIDs drawn without replacement using rng; if
// n exceeds the number of assigned EIDs, all EIDs are returned.
func (d *Dataset) SampleEIDs(n int, rng *rand.Rand) []ids.EID {
	all := d.AllEIDs()
	if n >= len(all) {
		return all
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return ids.SortEIDs(all[:n])
}

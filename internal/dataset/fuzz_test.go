package dataset

import (
	"bytes"
	"testing"
)

// FuzzRead feeds arbitrary bytes to the dataset decoder: corrupt input must
// produce an error, never a panic or a half-initialized dataset.
func FuzzRead(f *testing.F) {
	// Seed with a valid serialized dataset and a few corruptions of it.
	cfg := DefaultConfig()
	cfg.NumPersons = 10
	cfg.Density = 5
	cfg.NumWindows = 2
	ds, err := Generate(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	if len(valid) > 10 {
		truncated := valid[:len(valid)/2]
		f.Add(truncated)
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)/3] ^= 0xFF
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that decodes must be internally consistent.
		if got.Store == nil || got.Layout == nil {
			t.Fatal("decoded dataset with nil internals")
		}
		if err := got.Config.Validate(); err != nil {
			t.Fatalf("decoded invalid config: %v", err)
		}
	})
}

// FuzzGeneratePanicFree: arbitrary (small) numeric knobs must either
// validate out or generate successfully — generation never panics.
func FuzzGeneratePanicFree(f *testing.F) {
	f.Add(5, 2.0, 2, 1, 0.0, 0.0)
	f.Add(1, 0.5, 1, 3, 0.5, 0.5)
	f.Add(20, 100.0, 4, 2, 0.9, 0.1)
	f.Fuzz(func(t *testing.T, persons int, density float64, windows, ticks int, eidMiss, vidMiss float64) {
		if persons > 50 || windows > 8 || ticks > 4 {
			t.Skip("bounded world size")
		}
		cfg := DefaultConfig()
		cfg.NumPersons = persons
		cfg.Density = density
		cfg.NumWindows = windows
		cfg.TicksPerWindow = ticks
		cfg.EIDMissingRate = eidMiss
		cfg.VIDMissingRate = vidMiss
		ds, err := Generate(cfg)
		if err != nil {
			return // invalid configs must error, not panic
		}
		if ds.Store.Len() < 0 || len(ds.Persons) != persons {
			t.Fatalf("inconsistent dataset: %d persons", len(ds.Persons))
		}
	})
}

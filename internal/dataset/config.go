// Package dataset generates the synthetic EV world of the paper's evaluation
// (§VI-A): persons moving by random waypoint across a 1000 m × 1000 m cell
// region, each carrying an EID (WiFi MAC) and a visual appearance, with
// E-localization noise (drifting EIDs), missing EIDs (no device), and missing
// VIDs (missed detections) injected per the practical settings.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"time"

	"evmatching/internal/elocal"
	"evmatching/internal/geo"
)

// LayoutKind selects the cell discretization of the region.
type LayoutKind int

// Layout kinds.
const (
	LayoutGrid LayoutKind = iota + 1
	LayoutHex
)

// String implements fmt.Stringer.
func (k LayoutKind) String() string {
	switch k {
	case LayoutGrid:
		return "grid"
	case LayoutHex:
		return "hex"
	default:
		return "invalid"
	}
}

// MobilityKind selects the movement model driving the human objects.
type MobilityKind int

// Mobility kinds. The zero value selects the paper's random waypoint model.
const (
	MobilityWaypoint MobilityKind = iota
	MobilityHotspot
)

// String implements fmt.Stringer.
func (k MobilityKind) String() string {
	switch k {
	case MobilityWaypoint:
		return "waypoint"
	case MobilityHotspot:
		return "hotspot"
	default:
		return "invalid"
	}
}

// ErrBadConfig reports an invalid dataset configuration.
var ErrBadConfig = errors.New("dataset: invalid config")

// Config parameterizes world generation. DefaultConfig returns the paper's
// setup; tests and quick benchmarks shrink it.
type Config struct {
	// Seed drives all randomness; equal configs generate equal worlds.
	Seed int64

	// NumPersons is the number of human objects (paper: 1000).
	NumPersons int
	// RegionSide is the side of the square region in meters (paper: 1000).
	RegionSide float64
	// Density is the average number of persons per cell; the region is cut
	// into about NumPersons/Density cells (paper sweeps 20–180).
	Density float64
	// Layout selects grid or hexagonal cells.
	Layout LayoutKind

	// NumWindows is the number of scenario time windows generated.
	NumWindows int
	// TicksPerWindow is the number of occurrence-counting samples per
	// window. 1 reproduces the ideal single-time-point EV-Scenario; larger
	// values enable the occurrence-based inclusive/vague attribution of the
	// practical setting (paper §IV-C2).
	TicksPerWindow int
	// TickInterval is the simulated time between samples.
	TickInterval time.Duration

	// SpeedMin, SpeedMax and PauseMax parameterize random waypoint motion.
	SpeedMin float64
	SpeedMax float64
	PauseMax time.Duration
	// Mobility selects the movement model; zero means MobilityWaypoint.
	Mobility MobilityKind
	// HotspotCount, HotspotAttraction and HotspotSpread parameterize the
	// hotspot model (shared attraction points that crowd cells), used when
	// Mobility is MobilityHotspot.
	HotspotCount      int
	HotspotAttraction float64
	HotspotSpread     float64

	// FeatureDim is the appearance vector dimensionality.
	FeatureDim int
	// ObsNoise is the per-dimension appearance variation between
	// observations of the same person; it calibrates matching accuracy.
	ObsNoise float64
	// PixelNoise is per-pixel sensor noise in gray levels.
	PixelNoise float64
	// GaitDim, when positive, adds a gait feature channel of that
	// dimensionality to every descriptor (feature-level fusion per the
	// paper's VID-feature citation [12]). Zero disables the channel.
	GaitDim int
	// GaitNoise is the per-dimension gait variation between observations;
	// gait is typically steadier than appearance.
	GaitNoise float64
	// GaitWeight scales the gait block inside the fused descriptor.
	GaitWeight float64

	// ELocNoise is the standard deviation, in meters, of E-localization
	// error; it produces drifting EIDs near cell borders. Ignored when
	// ELocal.Enabled selects the RSSI model instead.
	ELocNoise float64
	// ELocal optionally replaces the Gaussian E-noise with the full RSSI
	// localization substrate: base stations, path loss, shadowing, and
	// multilateration. Failed fixes (too few stations in range) drop the
	// tick's E-observation entirely.
	ELocal elocal.Config
	// VagueWidth is the width in meters of the vague zone along cell
	// borders (paper Fig. 2); zero disables vague zones.
	VagueWidth float64
	// InclusiveFrac is the minimum fraction of a window's ticks an EID must
	// be observed in a cell to be attributed inclusive there.
	InclusiveFrac float64
	// MinFrac is the minimum occurrence fraction to appear at all; EIDs
	// between MinFrac and InclusiveFrac are attributed vague.
	MinFrac float64

	// EIDMissingRate is the fraction of persons carrying no device.
	EIDMissingRate float64
	// VIDMissingRate is the per-detection probability a person present in a
	// cell yields no detection (occlusion / missed detection).
	VIDMissingRate float64
}

// DefaultConfig returns the paper's experiment setup under the ideal setting
// (single-time-point scenarios, no noise or missing data).
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		NumPersons:     1000,
		RegionSide:     1000,
		Density:        60,
		Layout:         LayoutGrid,
		NumWindows:     128,
		TicksPerWindow: 1,
		TickInterval:   2 * time.Minute,
		SpeedMin:       0.5,
		SpeedMax:       2.0,
		PauseMax:       20 * time.Second,
		FeatureDim:     64,
		ObsNoise:       0.15,
		PixelNoise:     1.0,
		InclusiveFrac:  0.7,
		MinFrac:        0.2,
	}
}

// Practical returns a copy of c switched to the practical setting: multi-tick
// windows, E-localization noise, and vague zones sized to the noise.
func (c Config) Practical() Config {
	c.TicksPerWindow = 5
	c.TickInterval = 6 * time.Second
	c.ELocNoise = 15
	c.VagueWidth = 20
	return c
}

// DescriptorDim returns the full per-detection feature dimensionality:
// appearance plus the optional gait channel.
func (c Config) DescriptorDim() int {
	if c.GaitDim > 0 {
		return c.FeatureDim + c.GaitDim
	}
	return c.FeatureDim
}

// NumCells returns the number of cells implied by NumPersons and Density.
func (c Config) NumCells() int {
	n := int(math.Round(float64(c.NumPersons) / c.Density))
	if n < 1 {
		n = 1
	}
	return n
}

// Region returns the square region bounds.
func (c Config) Region() geo.Rect {
	return geo.Square(geo.Pt(0, 0), c.RegionSide)
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.NumPersons < 1:
		return fmt.Errorf("%w: NumPersons=%d", ErrBadConfig, c.NumPersons)
	case c.RegionSide <= 0:
		return fmt.Errorf("%w: RegionSide=%f", ErrBadConfig, c.RegionSide)
	case c.Density <= 0:
		return fmt.Errorf("%w: Density=%f", ErrBadConfig, c.Density)
	case c.Layout != LayoutGrid && c.Layout != LayoutHex:
		return fmt.Errorf("%w: Layout=%d", ErrBadConfig, c.Layout)
	case c.NumWindows < 1:
		return fmt.Errorf("%w: NumWindows=%d", ErrBadConfig, c.NumWindows)
	case c.TicksPerWindow < 1:
		return fmt.Errorf("%w: TicksPerWindow=%d", ErrBadConfig, c.TicksPerWindow)
	case c.TickInterval <= 0:
		return fmt.Errorf("%w: TickInterval=%v", ErrBadConfig, c.TickInterval)
	case c.SpeedMin <= 0 || c.SpeedMax < c.SpeedMin:
		return fmt.Errorf("%w: speeds [%f, %f]", ErrBadConfig, c.SpeedMin, c.SpeedMax)
	case c.Mobility != MobilityWaypoint && c.Mobility != MobilityHotspot:
		return fmt.Errorf("%w: mobility %d", ErrBadConfig, c.Mobility)
	case c.Mobility == MobilityHotspot && (c.HotspotCount < 1 || c.HotspotAttraction < 0 || c.HotspotAttraction > 1 || c.HotspotSpread < 0):
		return fmt.Errorf("%w: hotspot parameters", ErrBadConfig)
	case c.FeatureDim < 2:
		return fmt.Errorf("%w: FeatureDim=%d", ErrBadConfig, c.FeatureDim)
	case c.GaitDim != 0 && c.GaitDim < 2:
		return fmt.Errorf("%w: GaitDim=%d", ErrBadConfig, c.GaitDim)
	case c.GaitDim > 0 && (c.GaitNoise < 0 || c.GaitWeight <= 0):
		return fmt.Errorf("%w: gait noise %f / weight %f", ErrBadConfig, c.GaitNoise, c.GaitWeight)
	case c.ObsNoise < 0 || c.PixelNoise < 0 || c.ELocNoise < 0 || c.VagueWidth < 0:
		return fmt.Errorf("%w: negative noise parameter", ErrBadConfig)
	case c.InclusiveFrac <= 0 || c.InclusiveFrac > 1:
		return fmt.Errorf("%w: InclusiveFrac=%f", ErrBadConfig, c.InclusiveFrac)
	case c.MinFrac < 0 || c.MinFrac > c.InclusiveFrac:
		return fmt.Errorf("%w: MinFrac=%f", ErrBadConfig, c.MinFrac)
	case c.ELocal.Validate() != nil:
		return fmt.Errorf("%w: %w", ErrBadConfig, c.ELocal.Validate())
	case c.EIDMissingRate < 0 || c.EIDMissingRate >= 1:
		return fmt.Errorf("%w: EIDMissingRate=%f", ErrBadConfig, c.EIDMissingRate)
	case c.VIDMissingRate < 0 || c.VIDMissingRate >= 1:
		return fmt.Errorf("%w: VIDMissingRate=%f", ErrBadConfig, c.VIDMissingRate)
	}
	return nil
}

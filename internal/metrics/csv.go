package metrics

import (
	"encoding/csv"
	"io"
	"strings"
)

// CSV renders the table as RFC-4180 CSV with a leading comment row carrying
// the title, for import into external plotting tools.
func (t *Table) CSV() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("# ")
		sb.WriteString(t.Title)
		sb.WriteString("\n")
	}
	w := csv.NewWriter(&sb)
	// Writes to a strings.Builder cannot fail.
	_ = w.Write(t.Header)
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	return sb.String()
}

// CSV renders the series as CSV: one column for x plus one per series
// column.
func (s *Series) CSV() string {
	t := NewTable(s.Title, append([]string{s.XLabel}, s.Columns...)...)
	for _, p := range s.Points {
		cells := make([]string, 0, len(p.Y)+1)
		cells = append(cells, F(p.X, 4))
		for _, y := range p.Y {
			cells = append(cells, F(y, 4))
		}
		t.AddRow(cells...)
	}
	return t.CSV()
}

// CSVPrinter is anything renderable as CSV; Table and Series qualify.
type CSVPrinter interface {
	CSV() string
}

// FprintCSV writes a CSV rendering followed by a blank line.
func FprintCSV(w io.Writer, c CSVPrinter) error {
	if _, err := io.WriteString(w, c.CSV()); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

package metrics

import (
	"io"
	"strings"
)

// Markdown renders the table as a GitHub-flavored markdown table, used by
// evbench to regenerate EXPERIMENTS.md content.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("**")
		sb.WriteString(t.Title)
		sb.WriteString("**\n\n")
	}
	writeMarkdownRow(&sb, t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = "---"
	}
	writeMarkdownRow(&sb, rule)
	for _, row := range t.Rows {
		writeMarkdownRow(&sb, row)
	}
	return sb.String()
}

// Markdown renders the series as a markdown table of x and column values.
func (s *Series) Markdown() string {
	t := NewTable(s.Title, append([]string{s.XLabel}, s.Columns...)...)
	for _, p := range s.Points {
		cells := make([]string, 0, len(p.Y)+1)
		cells = append(cells, F(p.X, 0))
		for _, y := range p.Y {
			cells = append(cells, F(y, 2))
		}
		t.AddRow(cells...)
	}
	return t.Markdown()
}

func writeMarkdownRow(sb *strings.Builder, cells []string) {
	sb.WriteString("|")
	for _, c := range cells {
		sb.WriteString(" ")
		sb.WriteString(strings.ReplaceAll(c, "|", "\\|"))
		sb.WriteString(" |")
	}
	sb.WriteString("\n")
}

// MarkdownPrinter wraps an io.Writer so RunAll-style consumers can choose
// markdown output.
type MarkdownPrinter interface {
	Markdown() string
}

// FprintMarkdown writes any markdown-capable result followed by a blank
// line.
func FprintMarkdown(w io.Writer, m MarkdownPrinter) error {
	if _, err := io.WriteString(w, m.Markdown()); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

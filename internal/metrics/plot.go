package metrics

import (
	"fmt"
	"math"
	"strings"
)

// plot geometry.
const (
	plotWidth  = 64
	plotHeight = 16
)

// markers distinguish up to eight series columns in a plot.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Plot renders the series as an ASCII line chart with one marker per
// column, a y-axis scale, and a legend — the terminal counterpart of the
// paper's figures.
func (s *Series) Plot() string {
	if len(s.Points) == 0 || len(s.Columns) == 0 {
		return s.Title + "\n(no data)\n"
	}
	minX, maxX := s.Points[0].X, s.Points[0].X
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range s.Points {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		for _, y := range p.Y {
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if math.IsInf(minY, 1) {
		return s.Title + "\n(no data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, plotHeight)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", plotWidth))
	}
	col := func(x float64) int {
		c := int(math.Round((x - minX) / (maxX - minX) * float64(plotWidth-1)))
		return clampInt(c, 0, plotWidth-1)
	}
	row := func(y float64) int {
		r := int(math.Round((y - minY) / (maxY - minY) * float64(plotHeight-1)))
		return plotHeight - 1 - clampInt(r, 0, plotHeight-1)
	}
	for ci := range s.Columns {
		marker := markers[ci%len(markers)]
		var prevC, prevR int
		hasPrev := false
		for _, p := range s.Points {
			if ci >= len(p.Y) {
				continue
			}
			c, r := col(p.X), row(p.Y[ci])
			if hasPrev {
				drawSegment(grid, prevC, prevR, c, r, '.')
			}
			grid[r][c] = marker
			prevC, prevR, hasPrev = c, r, true
		}
	}

	var sb strings.Builder
	sb.WriteString(s.Title)
	sb.WriteByte('\n')
	yLabelW := 10
	for r := 0; r < plotHeight; r++ {
		switch r {
		case 0:
			fmt.Fprintf(&sb, "%*.2f |", yLabelW, maxY)
		case plotHeight - 1:
			fmt.Fprintf(&sb, "%*.2f |", yLabelW, minY)
		default:
			sb.WriteString(strings.Repeat(" ", yLabelW))
			sb.WriteString(" |")
		}
		sb.Write(grid[r])
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", yLabelW+1))
	sb.WriteByte('+')
	sb.WriteString(strings.Repeat("-", plotWidth))
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%s %-*.0f%*.0f\n", strings.Repeat(" ", yLabelW+1), plotWidth/2, minX, plotWidth/2, maxX)
	fmt.Fprintf(&sb, "%s x: %s;", strings.Repeat(" ", yLabelW+1), s.XLabel)
	for ci, name := range s.Columns {
		fmt.Fprintf(&sb, " %c=%s", markers[ci%len(markers)], name)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// drawSegment traces a light dotted line between two plotted points without
// overwriting existing markers.
func drawSegment(grid [][]byte, c0, r0, c1, r1 int, ch byte) {
	steps := maxInt(absInt(c1-c0), absInt(r1-r0))
	for i := 1; i < steps; i++ {
		t := float64(i) / float64(steps)
		c := c0 + int(math.Round(t*float64(c1-c0)))
		r := r0 + int(math.Round(t*float64(r1-r0)))
		if grid[r][c] == ' ' {
			grid[r][c] = ch
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestTableFormatting(t *testing.T) {
	tb := NewTable("Accuracy", "Matched EIDs", "SS", "EDP")
	tb.AddRow("200", "92.42%", "93%")
	tb.AddRow("400", "90.60%") // short row padded
	out := tb.String()
	if !strings.Contains(out, "Accuracy") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "Matched EIDs") || !strings.Contains(out, "92.42%") {
		t.Errorf("content missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every data line has the same prefix width up to col 2.
	if !strings.HasPrefix(lines[3], "200 ") {
		t.Errorf("row not padded: %q", lines[3])
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("Fig 5", "EIDs", "SS", "EDP")
	s.Add(100, 60, 150)
	s.Add(200, 80, 290)
	out := s.String()
	if !strings.Contains(out, "Fig 5") || !strings.Contains(out, "290.00") {
		t.Errorf("series output:\n%s", out)
	}
	col, ok := s.Column("EDP")
	if !ok || len(col) != 2 || col[1] != 290 {
		t.Errorf("Column = %v, %v", col, ok)
	}
	if _, ok := s.Column("missing"); ok {
		t.Error("missing column reported present")
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := Pct(0.9242); got != "92.42%" {
		t.Errorf("Pct = %q", got)
	}
	if got := F(3.14159, 2); got != "3.14" {
		t.Errorf("F = %q", got)
	}
	if got := Dur(1234567 * time.Microsecond); got != "1.235s" {
		t.Errorf("Dur = %q", got)
	}
}

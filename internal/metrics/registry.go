package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry is a concurrency-safe named-counter store — the process-wide
// home for operational counters like the cluster's fault-recovery totals,
// snapshot-able for the server's /metricsz endpoint.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
}

// NewRegistry creates an empty counter registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]int64)}
}

// Add increments the named counter by delta (which may be negative).
func (r *Registry) Add(name string, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] += delta
}

// Set overwrites the named counter.
func (r *Registry) Set(name string, value int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] = value
}

// SetMany overwrites a batch of counters under one lock acquisition, so a
// publisher of related gauges (e.g. the stream engine) exposes a mutually
// consistent snapshot instead of tearing between individual Set calls.
func (r *Registry) SetMany(values map[string]int64) {
	names := make([]string, 0, len(values))
	for name := range values {
		names = append(names, name)
	}
	sort.Strings(names)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range names {
		r.counters[name] = values[name]
	}
}

// Get returns the named counter (0 when never touched).
func (r *Registry) Get(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Names returns the registered counter names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of every counter, suitable for serving.
func (r *Registry) Snapshot() map[string]int64 {
	names := r.Names()
	out := make(map[string]int64, len(names))
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range names {
		out[name] = r.counters[name]
	}
	return out
}

// Fprint writes "name value" lines in sorted name order.
func (r *Registry) Fprint(w io.Writer) error {
	for _, name := range r.Names() {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, r.Get(name)); err != nil {
			return err
		}
	}
	return nil
}

package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Table I", "Matched EIDs", "SS", "EDP")
	tb.AddRow("200", "92.42%", "93%")
	md := tb.Markdown()
	if !strings.Contains(md, "**Table I**") {
		t.Errorf("missing bold title:\n%s", md)
	}
	if !strings.Contains(md, "| Matched EIDs | SS | EDP |") {
		t.Errorf("missing header row:\n%s", md)
	}
	if !strings.Contains(md, "| --- | --- | --- |") {
		t.Errorf("missing rule row:\n%s", md)
	}
	if !strings.Contains(md, "| 200 | 92.42% | 93% |") {
		t.Errorf("missing data row:\n%s", md)
	}
}

func TestTableMarkdownEscapesPipes(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x|y")
	if !strings.Contains(tb.Markdown(), `x\|y`) {
		t.Errorf("pipe not escaped:\n%s", tb.Markdown())
	}
}

func TestSeriesMarkdown(t *testing.T) {
	s := NewSeries("Fig 5", "EIDs", "SS", "EDP")
	s.Add(100, 60, 150)
	md := s.Markdown()
	if !strings.Contains(md, "| 100 | 60.00 | 150.00 |") {
		t.Errorf("series markdown:\n%s", md)
	}
}

func TestFprintMarkdown(t *testing.T) {
	var buf bytes.Buffer
	s := NewSeries("T", "x", "y")
	s.Add(1, 2)
	if err := FprintMarkdown(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(buf.String(), "\n\n") {
		t.Error("missing trailing blank line")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("Table I", "Matched EIDs", "SS", "EDP")
	tb.AddRow("200", "92.42%", "93%")
	got := tb.CSV()
	if !strings.Contains(got, "# Table I\n") {
		t.Errorf("missing title comment:\n%s", got)
	}
	if !strings.Contains(got, "Matched EIDs,SS,EDP\n") {
		t.Errorf("missing header:\n%s", got)
	}
	if !strings.Contains(got, "200,92.42%,93%\n") {
		t.Errorf("missing row:\n%s", got)
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries("Fig 5", "EIDs", "SS")
	s.Add(100, 60.5)
	got := s.CSV()
	if !strings.Contains(got, "EIDs,SS\n") || !strings.Contains(got, "100.0000,60.5000\n") {
		t.Errorf("series CSV:\n%s", got)
	}
	var buf bytes.Buffer
	if err := FprintCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(buf.String(), "\n\n") {
		t.Error("missing trailing blank line")
	}
}

func TestCSVEscapesCommas(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x,y")
	if !strings.Contains(tb.CSV(), `"x,y"`) {
		t.Errorf("comma not quoted:\n%s", tb.CSV())
	}
}

package metrics

import (
	"strings"
	"testing"
)

func TestPlotBasics(t *testing.T) {
	s := NewSeries("Fig X", "n", "SS", "EDP")
	s.Add(100, 10, 50)
	s.Add(200, 20, 100)
	s.Add(300, 25, 160)
	out := s.Plot()
	if !strings.Contains(out, "Fig X") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("missing series markers:\n%s", out)
	}
	if !strings.Contains(out, "*=SS") || !strings.Contains(out, "o=EDP") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "160.00") || !strings.Contains(out, "10.00") {
		t.Errorf("missing y-axis extremes:\n%s", out)
	}
	if !strings.Contains(out, "x: n;") {
		t.Errorf("missing x label:\n%s", out)
	}
	// All plot body lines share the same width (no ragged grid).
	lines := strings.Split(out, "\n")
	gridLines := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			gridLines++
		}
	}
	if gridLines != 16 {
		t.Errorf("grid lines = %d, want 16", gridLines)
	}
}

func TestPlotDegenerateInputs(t *testing.T) {
	empty := NewSeries("E", "x", "y")
	if out := empty.Plot(); !strings.Contains(out, "no data") {
		t.Errorf("empty series plot:\n%s", out)
	}
	flat := NewSeries("F", "x", "y")
	flat.Add(1, 5)
	flat.Add(1, 5) // identical x and y: ranges are degenerate
	if out := flat.Plot(); out == "" || strings.Contains(out, "NaN") {
		t.Errorf("degenerate plot:\n%s", out)
	}
}

func TestPlotSingleColumnManyPoints(t *testing.T) {
	s := NewSeries("S", "x", "only")
	for i := 0; i < 50; i++ {
		s.Add(float64(i), float64(i*i))
	}
	out := s.Plot()
	if strings.Count(out, "*") < 10 {
		t.Errorf("too few markers plotted:\n%s", out)
	}
}

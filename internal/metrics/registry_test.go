package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryAddSetGet(t *testing.T) {
	r := NewRegistry()
	if got := r.Get("absent"); got != 0 {
		t.Errorf("Get(absent) = %d, want 0", got)
	}
	r.Add("a", 2)
	r.Add("a", 3)
	if got := r.Get("a"); got != 5 {
		t.Errorf("Get(a) = %d, want 5", got)
	}
	r.Add("a", -1)
	if got := r.Get("a"); got != 4 {
		t.Errorf("Get(a) after -1 = %d, want 4", got)
	}
	r.Set("a", 10)
	if got := r.Get("a"); got != 10 {
		t.Errorf("Get(a) after Set = %d, want 10", got)
	}
}

func TestRegistrySetMany(t *testing.T) {
	r := NewRegistry()
	r.Set("keep", 1)
	r.SetMany(map[string]int64{"b": 2, "a": 1, "keep": 9})
	for name, want := range map[string]int64{"a": 1, "b": 2, "keep": 9} {
		if got := r.Get(name); got != want {
			t.Errorf("Get(%s) = %d, want %d", name, got, want)
		}
	}
	r.SetMany(nil)
	if got := r.Get("a"); got != 1 {
		t.Errorf("SetMany(nil) disturbed existing gauges: a = %d", got)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Add(n, 1)
	}
	names := r.Names()
	want := []string{"alpha", "mid", "zeta"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestRegistrySnapshotIsCopy(t *testing.T) {
	r := NewRegistry()
	r.Add("x", 7)
	snap := r.Snapshot()
	snap["x"] = 99
	snap["injected"] = 1
	if got := r.Get("x"); got != 7 {
		t.Errorf("mutating a snapshot changed the registry: x = %d", got)
	}
	if got := r.Get("injected"); got != 0 {
		t.Errorf("mutating a snapshot changed the registry: injected = %d", got)
	}
}

func TestRegistryFprint(t *testing.T) {
	r := NewRegistry()
	r.Add("b.two", 2)
	r.Add("a.one", 1)
	var sb strings.Builder
	if err := r.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a.one 1\nb.two 2\n"
	if sb.String() != want {
		t.Errorf("Fprint = %q, want %q", sb.String(), want)
	}
}

func TestRegistryConcurrentAdds(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add("shared", 1)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Get("shared"); got != 800 {
		t.Errorf("shared = %d, want 800", got)
	}
}

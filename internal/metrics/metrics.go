// Package metrics provides the small formatting toolkit the benchmark
// harness uses to print paper-style tables and figure series as aligned
// ASCII, plus number/duration helpers.
package metrics

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a titled grid, printed with aligned columns — the shape of the
// paper's Tables I and II.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Fprint writes the table to w.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Fprint(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is a titled multi-column series over a numeric x axis — the shape
// of the paper's line figures.
type Series struct {
	Title   string
	XLabel  string
	Columns []string
	Points  []Point
}

// Point is one x position with one y value per column.
type Point struct {
	X float64
	Y []float64
}

// NewSeries creates a series with the given title, x label, and column
// names.
func NewSeries(title, xLabel string, columns ...string) *Series {
	return &Series{Title: title, XLabel: xLabel, Columns: columns}
}

// Add appends a point.
func (s *Series) Add(x float64, ys ...float64) {
	s.Points = append(s.Points, Point{X: x, Y: ys})
}

// Column returns the y values of the named column in point order, and
// whether the column exists.
func (s *Series) Column(name string) ([]float64, bool) {
	idx := -1
	for i, c := range s.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, false
	}
	out := make([]float64, 0, len(s.Points))
	for _, p := range s.Points {
		if idx < len(p.Y) {
			out = append(out, p.Y[idx])
		}
	}
	return out, true
}

// Fprint writes the series as an aligned table of x and column values.
func (s *Series) Fprint(w io.Writer) error {
	t := NewTable(s.Title, append([]string{s.XLabel}, s.Columns...)...)
	for _, p := range s.Points {
		cells := make([]string, 0, len(p.Y)+1)
		cells = append(cells, F(p.X, 0))
		for _, y := range p.Y {
			cells = append(cells, F(y, 2))
		}
		t.AddRow(cells...)
	}
	return t.Fprint(w)
}

// String renders the series.
func (s *Series) String() string {
	var sb strings.Builder
	_ = s.Fprint(&sb)
	return sb.String()
}

// F formats a float with the given number of decimals, trimming a trailing
// ".00" for whole numbers at prec 0.
func F(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// Pct formats a fraction as a percentage with two decimals, e.g. 0.9242 ->
// "92.42%".
func Pct(v float64) string {
	return fmt.Sprintf("%.2f%%", v*100)
}

// Dur formats a duration rounded to milliseconds.
func Dur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

package ids

import (
	"math/rand"
	"regexp"
	"sort"
	"testing"
)

func TestMACGeneratorFormat(t *testing.T) {
	g := NewMACGenerator(rand.New(rand.NewSource(1)))
	macRE := regexp.MustCompile(`^[0-9a-f]{2}(:[0-9a-f]{2}){5}$`)
	for i := 0; i < 100; i++ {
		e := g.Next()
		if !macRE.MatchString(string(e)) {
			t.Fatalf("EID %q is not a MAC address", e)
		}
		// Locally administered bit set, multicast bit clear.
		var first byte
		if _, err := fmtSscanfHex(string(e[:2]), &first); err != nil {
			t.Fatal(err)
		}
		if first&0x02 == 0 {
			t.Errorf("EID %q missing locally-administered bit", e)
		}
		if first&0x01 != 0 {
			t.Errorf("EID %q has multicast bit set", e)
		}
	}
}

// fmtSscanfHex parses a two-hex-digit string into b.
func fmtSscanfHex(s string, b *byte) (int, error) {
	var v int
	for _, c := range s {
		v <<= 4
		switch {
		case c >= '0' && c <= '9':
			v |= int(c - '0')
		case c >= 'a' && c <= 'f':
			v |= int(c-'a') + 10
		}
	}
	*b = byte(v)
	return 1, nil
}

func TestMACGeneratorUnique(t *testing.T) {
	g := NewMACGenerator(rand.New(rand.NewSource(2)))
	seen := make(map[EID]bool, 5000)
	for i := 0; i < 5000; i++ {
		e := g.Next()
		if seen[e] {
			t.Fatalf("duplicate EID %q at draw %d", e, i)
		}
		seen[e] = true
	}
}

func TestMACGeneratorDeterministic(t *testing.T) {
	g1 := NewMACGenerator(rand.New(rand.NewSource(9)))
	g2 := NewMACGenerator(rand.New(rand.NewSource(9)))
	for i := 0; i < 100; i++ {
		if a, b := g1.Next(), g2.Next(); a != b {
			t.Fatalf("draw %d differs: %q vs %q", i, a, b)
		}
	}
}

func TestVIDLabel(t *testing.T) {
	if got := VIDLabel(0); got != "V00000" {
		t.Errorf("VIDLabel(0) = %q", got)
	}
	if got := VIDLabel(123); got != "V00123" {
		t.Errorf("VIDLabel(123) = %q", got)
	}
	if VIDLabel(1) == VIDLabel(2) {
		t.Error("distinct persons share a VID label")
	}
}

func TestSortEIDs(t *testing.T) {
	in := []EID{"cc", "aa", "bb"}
	out := SortEIDs(in)
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
		t.Errorf("SortEIDs result not sorted: %v", out)
	}
	if len(out) != 3 {
		t.Errorf("SortEIDs changed length: %v", out)
	}
}

func TestSortVIDs(t *testing.T) {
	in := []VID{"V3", "V1", "V2"}
	out := SortVIDs(in)
	want := []VID{"V1", "V2", "V3"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("SortVIDs = %v, want %v", out, want)
		}
	}
}

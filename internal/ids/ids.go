// Package ids defines the electronic and visual identity types matched by
// EV-Matching. EIDs model device identities captured by network
// infrastructure (the paper assigns WiFi MAC addresses); VIDs label distinct
// visual appearances extracted from surveillance video.
package ids

import (
	"fmt"
	"math/rand"
	"slices"
)

// EID is an electronic identity, e.g. a WiFi MAC address or IMSI. The empty
// EID means the person carries no electronic device (the missing-EID
// practical setting).
type EID string

// None is the absent EID for people who carry no device.
const None EID = ""

// VID is a visual identity label: one consistently re-identified appearance
// in the video data (the VID-consistency assumption, paper §III-B).
type VID string

// NoVID marks a failed or missing visual identification.
const NoVID VID = ""

// MACGenerator deterministically issues locally-administered unicast WiFi MAC
// addresses as EIDs.
type MACGenerator struct {
	rng  *rand.Rand
	seen map[EID]bool
}

// NewMACGenerator creates a generator drawing from rng.
func NewMACGenerator(rng *rand.Rand) *MACGenerator {
	return &MACGenerator{rng: rng, seen: make(map[EID]bool)}
}

// Next returns a fresh, unique EID.
func (g *MACGenerator) Next() EID {
	for {
		var b [6]byte
		for i := range b {
			b[i] = byte(g.rng.Intn(256))
		}
		b[0] = (b[0] | 0x02) &^ 0x01 // locally administered, unicast
		e := EID(fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", b[0], b[1], b[2], b[3], b[4], b[5]))
		if !g.seen[e] {
			g.seen[e] = true
			return e
		}
	}
}

// VIDLabel returns the canonical VID label for person index i, mimicking the
// identity labels a re-identification front end would assign.
func VIDLabel(i int) VID { return VID(fmt.Sprintf("V%05d", i)) }

// SortEIDs sorts a slice of EIDs in place and returns it, for deterministic
// iteration over set contents.
func SortEIDs(eids []EID) []EID {
	slices.Sort(eids)
	return eids
}

// SortVIDs sorts a slice of VIDs in place and returns it.
func SortVIDs(vids []VID) []VID {
	slices.Sort(vids)
	return vids
}

// SortedEIDKeys returns the keys of an EID-keyed map in sorted order, the
// deterministic replacement for ranging over the map directly.
func SortedEIDKeys[V any](m map[EID]V) []EID {
	out := make([]EID, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	return SortEIDs(out)
}

// SortedVIDKeys returns the keys of a VID-keyed map in sorted order.
func SortedVIDKeys[V any](m map[VID]V) []VID {
	out := make([]VID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	return SortVIDs(out)
}

package trajectory

import (
	"math/rand"
	"testing"

	"evmatching/internal/dataset"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

func testWorld(t *testing.T, mutate func(*dataset.Config)) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumPersons = 80
	cfg.Density = 10
	cfg.NumWindows = 20
	if mutate != nil {
		mutate(&cfg)
	}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildEValidation(t *testing.T) {
	if _, err := BuildE(nil, "x"); err == nil {
		t.Error("want error for nil store")
	}
}

func TestBuildVValidation(t *testing.T) {
	if _, err := BuildV(nil, "x", 1); err == nil {
		t.Error("want error for nil store")
	}
	ds := testWorld(t, nil)
	if _, err := BuildV(ds.Store, "x", 0); err == nil {
		t.Error("want error for zero maxGap")
	}
}

func TestETrajectoryCoversAllWindows(t *testing.T) {
	// Ideal world: every EID is inclusively observed in every window.
	ds := testWorld(t, nil)
	e := ds.AllEIDs()[3]
	et, err := BuildE(ds.Store, e)
	if err != nil {
		t.Fatal(err)
	}
	if et.Len() != ds.Config.NumWindows {
		t.Errorf("E-Trajectory has %d points, want %d", et.Len(), ds.Config.NumWindows)
	}
	for _, p := range et.Points {
		if p.Vague {
			t.Error("ideal world produced vague E-location")
		}
		if p.Cell == geo.NoCell {
			t.Error("point without a cell")
		}
	}
	first, last, err := et.Span()
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 || last != ds.Config.NumWindows-1 {
		t.Errorf("Span = [%d, %d]", first, last)
	}
	if _, ok := et.At(5); !ok {
		t.Error("At(5) not found")
	}
	if _, ok := et.At(9999); ok {
		t.Error("At(9999) found")
	}
}

func TestETrajectorySpanEmpty(t *testing.T) {
	et := &ETrajectory{EID: "ghost"}
	if _, _, err := et.Span(); err == nil {
		t.Error("want ErrEmpty")
	}
}

func TestVTrajectorySingleSegmentWhenAlwaysSeen(t *testing.T) {
	ds := testWorld(t, nil)
	p := ds.Persons[5]
	vt, err := BuildV(ds.Store, p.VID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vt.Segments) != 1 {
		t.Errorf("segments = %d, want 1 in ideal world", len(vt.Segments))
	}
	if vt.Len() != ds.Config.NumWindows {
		t.Errorf("V-Trajectory has %d points, want %d", vt.Len(), ds.Config.NumWindows)
	}
}

func TestVTrajectorySegmentsSplitOnMisses(t *testing.T) {
	ds := testWorld(t, func(c *dataset.Config) {
		c.VIDMissingRate = 0.3
		c.Seed = 4
	})
	multi := 0
	for _, p := range ds.Persons[:20] {
		vt, err := BuildV(ds.Store, p.VID, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(vt.Segments) > 1 {
			multi++
		}
		if vt.Len() >= ds.Config.NumWindows {
			t.Errorf("person %d: no misses despite 30%% missing rate", p.Index)
		}
	}
	if multi == 0 {
		t.Error("no person has multiple V-Trajectory segments at 30% missing")
	}
}

func TestMatchedPairTrajectoriesAreSimilar(t *testing.T) {
	// The core invariant behind EV-Matching: a person's E-Trajectory and
	// V-Trajectory coincide, and differ from other persons'.
	ds := testWorld(t, nil)
	bounds := ds.Layout.Bounds()
	p0, p1 := ds.Persons[0], ds.Persons[1]
	et0, err := BuildE(ds.Store, p0.EID)
	if err != nil {
		t.Fatal(err)
	}
	vt0, err := BuildV(ds.Store, p0.VID, 2)
	if err != nil {
		t.Fatal(err)
	}
	vt1, err := BuildV(ds.Store, p1.VID, 2)
	if err != nil {
		t.Fatal(err)
	}
	own, err := Similarity(et0, vt0, bounds)
	if err != nil {
		t.Fatal(err)
	}
	other, err := Similarity(et0, vt1, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if own < 0.99 {
		t.Errorf("own-pair similarity = %v, want ~1 in ideal world", own)
	}
	if other >= own {
		t.Errorf("cross-pair similarity %v >= own %v", other, own)
	}
}

func TestSimilarityProperties(t *testing.T) {
	ds := testWorld(t, nil)
	bounds := ds.Layout.Bounds()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		a := ds.Persons[rng.Intn(len(ds.Persons))]
		b := ds.Persons[rng.Intn(len(ds.Persons))]
		et, err := BuildE(ds.Store, a.EID)
		if err != nil {
			t.Fatal(err)
		}
		vt, err := BuildV(ds.Store, b.VID, 2)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Similarity(et, vt, bounds)
		if err != nil {
			t.Fatal(err)
		}
		if s < 0 || s > 1 {
			t.Fatalf("similarity %v out of [0,1]", s)
		}
	}
}

func TestSimilarityValidation(t *testing.T) {
	if _, err := Similarity(nil, nil, geo.Rect{}); err == nil {
		t.Error("want error for nil trajectories")
	}
	et := &ETrajectory{}
	vt := &VTrajectory{}
	if _, err := Similarity(et, vt, geo.Rect{}); err == nil {
		t.Error("want error for empty bounds")
	}
	s, err := Similarity(et, vt, geo.Square(geo.Pt(0, 0), 10))
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Errorf("no shared windows similarity = %v, want 0", s)
	}
}

func TestBuildEPrefersInclusiveSighting(t *testing.T) {
	// Hand-built store: EID vague in cell 1, inclusive in cell 2, same
	// window. The trajectory should carry the inclusive sighting.
	layout, err := geo.NewGridLayout(geo.Square(geo.Pt(0, 0), 100), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := scenario.NewStore(layout)
	if _, err := st.Add(&scenario.EScenario{
		Cell: 1, Window: 0,
		EIDs: map[ids.EID]scenario.Attr{"e": scenario.AttrVague},
	}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Add(&scenario.EScenario{
		Cell: 2, Window: 0,
		EIDs: map[ids.EID]scenario.Attr{"e": scenario.AttrInclusive},
	}, nil); err != nil {
		t.Fatal(err)
	}
	et, err := BuildE(st, "e")
	if err != nil {
		t.Fatal(err)
	}
	if et.Len() != 1 {
		t.Fatalf("points = %d", et.Len())
	}
	if et.Points[0].Cell != 2 || et.Points[0].Vague {
		t.Errorf("point = %+v, want inclusive cell 2", et.Points[0])
	}
}

// Package trajectory materializes the paper's §III data model: within an
// observation period each person has one E-Trajectory (the accumulated
// E-Locations of their device) and multiple V-Trajectory segments (linked
// V-Locations that break on occlusion or missed detections). The builders
// derive both from a scenario store at cell granularity — the "rough"
// locations EV-Matching operates on — and the similarity measure quantifies
// how spatiotemporally close two trajectories are.
package trajectory

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// ErrEmpty reports an operation on an empty trajectory.
var ErrEmpty = errors.New("trajectory: empty trajectory")

// Point is one located observation: the center of the cell the identity was
// observed in during one window.
type Point struct {
	Window int
	Cell   geo.CellID
	Pos    geo.Point
	// Vague marks E-observations attributed to the vague zone.
	Vague bool
}

// ETrajectory is the E-Location history of one EID.
type ETrajectory struct {
	EID    ids.EID
	Points []Point // ordered by window
}

// Segment is one contiguous run of V-Locations for a VID.
type Segment struct {
	Points []Point // ordered by window, consecutive-ish
}

// VTrajectory is the V-Location history of one VID, split into segments
// wherever the identity disappears from view for more than the builder's
// gap tolerance (occlusion, missed detection, leaving coverage).
type VTrajectory struct {
	VID      ids.VID
	Segments []Segment
}

// BuildE extracts the E-Trajectory of an EID from the store.
func BuildE(st *scenario.Store, e ids.EID) (*ETrajectory, error) {
	if st == nil {
		return nil, errors.New("trajectory: nil store")
	}
	out := &ETrajectory{EID: e}
	for _, w := range st.Windows() {
		// An EID can be vague in several neighboring cells within one
		// window (drift); keep one point per window, preferring the
		// inclusive sighting over the first vague one.
		var best *Point
		for _, id := range st.AtWindow(w) {
			esc := st.E(id)
			attr, ok := esc.AttrOf(e)
			if !ok {
				continue
			}
			p := Point{
				Window: w,
				Cell:   esc.Cell,
				Pos:    st.Layout().Center(esc.Cell),
				Vague:  attr == scenario.AttrVague,
			}
			if attr == scenario.AttrInclusive {
				best = &p
				break
			}
			if best == nil {
				best = &p
			}
		}
		if best != nil {
			out.Points = append(out.Points, *best)
		}
	}
	return out, nil
}

// BuildV extracts the V-Trajectory of a VID from the store, starting a new
// segment whenever the VID is unseen for more than maxGap windows.
func BuildV(st *scenario.Store, v ids.VID, maxGap int) (*VTrajectory, error) {
	if st == nil {
		return nil, errors.New("trajectory: nil store")
	}
	if maxGap < 1 {
		return nil, fmt.Errorf("trajectory: maxGap %d", maxGap)
	}
	out := &VTrajectory{VID: v}
	var current []Point
	lastWindow := math.MinInt
	for _, w := range st.Windows() {
		for _, id := range st.AtWindow(w) {
			vsc := st.V(id)
			if vsc == nil || !vsc.HasVID(v) {
				continue
			}
			p := Point{Window: w, Cell: vsc.Cell, Pos: st.Layout().Center(vsc.Cell)}
			if len(current) > 0 && w-lastWindow > maxGap {
				out.Segments = append(out.Segments, Segment{Points: current})
				current = nil
			}
			current = append(current, p)
			lastWindow = w
			break // one detection placement per window
		}
	}
	if len(current) > 0 {
		out.Segments = append(out.Segments, Segment{Points: current})
	}
	return out, nil
}

// Len returns the number of E-Locations.
func (t *ETrajectory) Len() int { return len(t.Points) }

// At returns the E-Location at the given window, if observed.
func (t *ETrajectory) At(window int) (Point, bool) {
	i := sort.Search(len(t.Points), func(i int) bool { return t.Points[i].Window >= window })
	if i < len(t.Points) && t.Points[i].Window == window {
		return t.Points[i], true
	}
	return Point{}, false
}

// Span returns the first and last observed windows.
func (t *ETrajectory) Span() (first, last int, err error) {
	if len(t.Points) == 0 {
		return 0, 0, fmt.Errorf("%w: EID %s", ErrEmpty, t.EID)
	}
	return t.Points[0].Window, t.Points[len(t.Points)-1].Window, nil
}

// Len returns the total number of V-Locations across segments.
func (t *VTrajectory) Len() int {
	n := 0
	for _, s := range t.Segments {
		n += len(s.Points)
	}
	return n
}

// At returns the V-Location at the given window, if observed.
func (t *VTrajectory) At(window int) (Point, bool) {
	for _, s := range t.Segments {
		for _, p := range s.Points {
			if p.Window == window {
				return p, true
			}
		}
	}
	return Point{}, false
}

// Similarity measures how spatiotemporally close an E-Trajectory and a
// V-Trajectory are: one minus the mean distance between co-observed
// locations, normalized by the layout diagonal. 1 means identical cell
// centers at every shared window; 0 means no shared windows or maximal
// separation. It is the trajectory-level counterpart of the paper's
// observation that "two people are rarely at the same position all the
// time" (§III-B).
func Similarity(et *ETrajectory, vt *VTrajectory, bounds geo.Rect) (float64, error) {
	if et == nil || vt == nil {
		return 0, errors.New("trajectory: nil trajectory")
	}
	diag := bounds.Min.Dist(bounds.Max)
	if diag == 0 {
		return 0, errors.New("trajectory: empty bounds")
	}
	var sum float64
	shared := 0
	for _, p := range et.Points {
		q, ok := vt.At(p.Window)
		if !ok {
			continue
		}
		shared++
		sum += p.Pos.Dist(q.Pos)
	}
	if shared == 0 {
		return 0, nil
	}
	sim := 1 - (sum/float64(shared))/diag
	if sim < 0 {
		sim = 0
	}
	return sim, nil
}

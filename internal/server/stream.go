package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"evmatching/internal/ids"
	"evmatching/internal/stream"
)

// WithStream attaches a live stream processor — the unsharded Engine or the
// sharded Router — enabling ingestion and resolution streaming:
//
//	POST /ingest   JSONL observation lines folded into the processor
//	GET  /stream   server-sent events: past and future resolutions
//
// Processors are safe for concurrent use, so both endpoints can run alongside
// the read-only fusion queries.
func WithStream(p stream.Processor) Option {
	return func(s *Server) { s.stream = p }
}

// ingestBody is the POST /ingest response.
type ingestBody struct {
	Accepted int `json:"accepted"`
	Dropped  int `json:"dropped"`
}

// handleIngest folds a JSONL body of observations into the stream engine.
// Any malformed or invalid line fails the whole request with its line
// number; everything ingested before it stays ingested (the engine is
// idempotent under re-delivery, so callers may simply retry the batch).
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxIngestLine)
	var body ingestBody
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		// Accept whole evgen -events files as-is: their header line carries
		// log metadata, not an observation.
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(text, &probe); err == nil && probe.Kind == "header" {
			continue
		}
		var o stream.Observation
		if err := json.Unmarshal(text, &o); err != nil {
			writeError(w, http.StatusBadRequest, "line %d: %v", line, err)
			return
		}
		accepted, err := s.stream.Ingest(o)
		if err != nil {
			writeError(w, http.StatusBadRequest, "line %d: %v", line, err)
			return
		}
		if accepted {
			body.Accepted++
		} else {
			body.Dropped++
		}
	}
	if err := sc.Err(); err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// maxIngestLine bounds one observation line; patches are base64-encoded
// pixel blocks, far below this.
const maxIngestLine = 4 << 20

// resolutionBody mirrors stream.Resolution with sanitized floats: a lone
// candidate's margin is +Inf, which encoding/json cannot represent.
type resolutionBody struct {
	Seq          int       `json:"seq"`
	EID          ids.EID   `json:"eid"`
	VID          ids.VID   `json:"vid"`
	Probability  jsonFloat `json:"probability"`
	MajorityFrac jsonFloat `json:"majorityFrac"`
	RunnerUp     ids.VID   `json:"runnerUp,omitempty"`
	Margin       jsonFloat `json:"margin"`
	Acceptable   bool      `json:"acceptable"`
	Window       int       `json:"window"`
}

func toResolutionBody(r stream.Resolution) resolutionBody {
	return resolutionBody{
		Seq:          r.Seq,
		EID:          r.EID,
		VID:          r.VID,
		Probability:  jsonFloat(r.Probability),
		MajorityFrac: jsonFloat(r.MajorityFrac),
		RunnerUp:     r.RunnerUp,
		Margin:       jsonFloat(r.Margin),
		Acceptable:   r.Acceptable,
		Window:       r.Window,
	}
}

// handleStream serves resolutions as server-sent events: the backlog first,
// then live emissions until the client disconnects.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	backlog, ch, cancel := s.stream.Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for _, res := range backlog {
		if err := writeSSE(w, res); err != nil {
			return // client gone; nothing useful left to send
		}
	}
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case res, open := <-ch:
			if !open {
				return
			}
			if err := writeSSE(w, res); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE emits one resolution event frame. A write error means the client
// disconnected (or the connection broke) mid-frame; the caller must stop the
// stream rather than keep burning the subscription on a dead pipe.
func writeSSE(w http.ResponseWriter, r stream.Resolution) error {
	data, err := json.Marshal(toResolutionBody(r))
	if err != nil {
		return fmt.Errorf("server: encode resolution %d: %w", r.Seq, err)
	}
	if _, err := fmt.Fprintf(w, "event: resolution\ndata: %s\n\n", data); err != nil {
		return fmt.Errorf("server: write resolution %d: %w", r.Seq, err)
	}
	return nil
}

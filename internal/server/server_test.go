package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/fusion"
	"evmatching/internal/metrics"
	"evmatching/internal/mrtest"
)

// checkLeaks arms the goroutine-leak checker and makes sure the shared HTTP
// client's keep-alive connections are torn down before the check runs.
func checkLeaks(t *testing.T) {
	t.Helper()
	mrtest.CheckGoroutines(t)
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
}

// newTestServer matches a small world universally and serves it.
func newTestServer(t *testing.T, opts ...Option) (*httptest.Server, *dataset.Dataset, *fusion.Index) {
	t.Helper()
	checkLeaks(t)
	cfg := dataset.DefaultConfig()
	cfg.NumPersons = 60
	cfg.Density = 10
	cfg.NumWindows = 12
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(ds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.MatchAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	idx, err := fusion.BuildIndex(ds, rep)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(ds, idx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, ds, idx
}

// getJSON fetches a URL and decodes the JSON body into out, returning the
// status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestNewValidation(t *testing.T) {
	checkLeaks(t)
	if _, err := New(nil, nil); err == nil {
		t.Error("want error for nil inputs")
	}
}

func TestMetricszEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Add("cluster.retries", 3)
	reg.Add("cluster.speculative_wins", 1)
	ts, _, _ := newTestServer(t, WithMetrics(reg.Snapshot))

	var body map[string]int64
	if code := getJSON(t, ts.URL+"/metricsz", &body); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body["cluster.retries"] != 3 || body["cluster.speculative_wins"] != 1 {
		t.Errorf("metrics body = %v", body)
	}

	// Counters bumped after the server was built show up: the snapshot is live.
	reg.Add("cluster.retries", 2)
	if code := getJSON(t, ts.URL+"/metricsz", &body); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body["cluster.retries"] != 5 {
		t.Errorf("retries = %d after bump, want 5", body["cluster.retries"])
	}
}

func TestMetricszAbsentWithoutOption(t *testing.T) {
	ts, _, _ := newTestServer(t)
	if code := getJSON(t, ts.URL+"/metricsz", nil); code != http.StatusNotFound {
		t.Errorf("unconfigured /metricsz status = %d, want 404", code)
	}
}

func TestHealthz(t *testing.T) {
	ts, ds, idx := newTestServer(t)
	var body struct {
		Persons   int `json:"persons"`
		Scenarios int `json:"scenarios"`
		Matched   int `json:"matched"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &body); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body.Persons != len(ds.Persons) || body.Scenarios != ds.Store.Len() || body.Matched != idx.Len() {
		t.Errorf("health = %+v", body)
	}
}

func TestMatchEndpoint(t *testing.T) {
	ts, ds, idx := newTestServer(t)
	e := ds.AllEIDs()[0]
	want, err := idx.VIDOf(e)
	if err != nil {
		t.Skip("first EID unmatched in this seed")
	}
	var body struct {
		EID        string  `json:"eid"`
		VID        string  `json:"vid"`
		Confidence float64 `json:"confidence"`
	}
	url := fmt.Sprintf("%s/match?eid=%s", ts.URL, e)
	if code := getJSON(t, url, &body); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body.VID != string(want) || body.Confidence <= 0 {
		t.Errorf("body = %+v, want VID %s", body, want)
	}

	// Reverse lookup round-trips.
	var rev struct {
		EID string `json:"eid"`
	}
	if code := getJSON(t, fmt.Sprintf("%s/reverse?vid=%s", ts.URL, want), &rev); code != http.StatusOK {
		t.Fatalf("reverse status = %d", code)
	}
	if rev.EID != string(e) {
		t.Errorf("reverse EID = %s, want %s", rev.EID, e)
	}
}

func TestMatchErrors(t *testing.T) {
	ts, _, _ := newTestServer(t)
	if code := getJSON(t, ts.URL+"/match", nil); code != http.StatusBadRequest {
		t.Errorf("missing eid status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/match?eid=no:such:mac", nil); code != http.StatusNotFound {
		t.Errorf("unknown eid status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/reverse?vid=V99999", nil); code != http.StatusNotFound {
		t.Errorf("unknown vid status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/reverse", nil); code != http.StatusBadRequest {
		t.Errorf("missing vid status = %d", code)
	}
}

func TestTrajectoryEndpoint(t *testing.T) {
	ts, ds, idx := newTestServer(t)
	e := ds.AllEIDs()[1]
	if _, err := idx.VIDOf(e); err != nil {
		t.Skip("EID unmatched in this seed")
	}
	var body struct {
		EID       string `json:"eid"`
		Sightings []struct {
			Window     int  `json:"window"`
			Electronic bool `json:"electronic"`
			Visual     bool `json:"visual"`
		} `json:"sightings"`
	}
	url := fmt.Sprintf("%s/trajectory?eid=%s", ts.URL, e)
	if code := getJSON(t, url, &body); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(body.Sightings) != ds.Config.NumWindows {
		t.Errorf("sightings = %d, want %d", len(body.Sightings), ds.Config.NumWindows)
	}
	for _, s := range body.Sightings {
		if !s.Electronic && !s.Visual {
			t.Error("sighting with no modality")
		}
	}
	if code := getJSON(t, ts.URL+"/trajectory", nil); code != http.StatusBadRequest {
		t.Error("missing eid should 400")
	}
}

func TestWhoWasAtEndpoint(t *testing.T) {
	ts, ds, _ := newTestServer(t)
	// Pick a populated cell/window.
	id := ds.Store.AtWindow(2)[0]
	cell := int(ds.Store.E(id).Cell)
	var rows []struct {
		EID string `json:"eid"`
		VID string `json:"vid"`
	}
	url := fmt.Sprintf("%s/whowasat?cell=%d&window=2", ts.URL, cell)
	if code := getJSON(t, url, &rows); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(rows) == 0 {
		t.Fatal("no presences in a populated scenario")
	}
	fused := 0
	for _, r := range rows {
		if r.EID != "" && r.VID != "" {
			fused++
		}
	}
	if fused == 0 {
		t.Error("no fused identities returned")
	}

	if code := getJSON(t, ts.URL+"/whowasat?cell=abc&window=2", nil); code != http.StatusBadRequest {
		t.Error("bad cell should 400")
	}
	if code := getJSON(t, ts.URL+"/whowasat?cell=0&window=xyz", nil); code != http.StatusBadRequest {
		t.Error("bad window should 400")
	}
	if code := getJSON(t, fmt.Sprintf("%s/whowasat?cell=%d&window=2", ts.URL, 10_000), nil); code != http.StatusNotFound {
		t.Error("out-of-range cell should 404")
	}
}

func TestMethodRouting(t *testing.T) {
	ts, _, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/match?eid=x", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}
}

// TestWriteJSONNonFiniteBody pins the regression where an unencodable body
// (a non-finite float) failed after the status header was written, leaving
// the client a truncated 200 with an empty body. The encode must happen
// first, turning the failure into a well-formed 500 error envelope.
func TestWriteJSONNonFiniteBody(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, struct {
		Margin float64 `json:"margin"`
	}{math.Inf(1)})
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	var body errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("body is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	if body.Error == "" {
		t.Errorf("error envelope empty: %s", rec.Body.String())
	}
}

// TestJSONFloatSanitizesNonFinite checks the response-field sanitizer: NaN
// and ±Inf marshal as null, finite values as plain numbers, and the zero
// value still disappears under omitempty.
func TestJSONFloatSanitizesNonFinite(t *testing.T) {
	cases := []struct {
		in   jsonFloat
		want string
	}{
		{jsonFloat(math.Inf(1)), `{"eid":"e","vid":"v","confidence":null}`},
		{jsonFloat(math.Inf(-1)), `{"eid":"e","vid":"v","confidence":null}`},
		{jsonFloat(math.NaN()), `{"eid":"e","vid":"v","confidence":null}`},
		{jsonFloat(0.75), `{"eid":"e","vid":"v","confidence":0.75}`},
		{jsonFloat(0), `{"eid":"e","vid":"v"}`},
	}
	for _, tc := range cases {
		got, err := json.Marshal(matchBody{EID: "e", VID: "v", Confidence: tc.in})
		if err != nil {
			t.Fatalf("Marshal(conf=%v): %v", float64(tc.in), err)
		}
		if string(got) != tc.want {
			t.Errorf("Marshal(conf=%v) = %s, want %s", float64(tc.in), got, tc.want)
		}
	}
}

package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/fusion"
	"evmatching/internal/stream"
)

// newStreamServer serves a matched world with a live stream processor
// attached — the unsharded engine, or the sharded router when shards > 0 —
// returning the processor and the world's flattened observation log.
func newStreamServer(t *testing.T, shards int) (*httptest.Server, stream.Processor, []stream.Observation) {
	t.Helper()
	checkLeaks(t)
	cfg := dataset.DefaultConfig()
	cfg.NumPersons = 40
	cfg.Density = 8
	cfg.NumWindows = 8
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(ds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.MatchAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	idx, err := fusion.BuildIndex(ds, rep)
	if err != nil {
		t.Fatal(err)
	}
	_, obs, err := stream.EventsFromDataset(ds, 1_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	scfg := stream.Config{
		Targets:    ds.AllEIDs()[:6],
		WindowMS:   1_000,
		LatenessMS: 250,
		Dim:        ds.Config.DescriptorDim(),
		Seed:       7,
	}
	var proc stream.Processor
	if shards > 0 {
		router, err := stream.NewRouter(stream.RouterConfig{Config: scfg, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			if err := router.Close(); err != nil {
				t.Errorf("router Close: %v", err)
			}
		})
		proc = router
	} else {
		eng, err := stream.NewEngine(scfg)
		if err != nil {
			t.Fatal(err)
		}
		proc = eng
	}
	srv, err := New(ds, idx, WithStream(proc))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, proc, obs
}

// postJSONL posts observations as a JSONL body to /ingest.
func postJSONL(t *testing.T, url string, obs []stream.Observation) (*http.Response, ingestBody) {
	t.Helper()
	var b strings.Builder
	for _, o := range obs {
		line, err := json.Marshal(o)
		if err != nil {
			t.Fatalf("marshal observation: %v", err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	resp, err := http.Post(url+"/ingest", "application/x-ndjson", strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	defer resp.Body.Close()
	var body ingestBody
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decode ingest response: %v", err)
		}
	}
	return resp, body
}

// TestIngestAndStream is the live-path end-to-end test: observations posted
// over HTTP fold into the processor, and /stream replays every emitted
// resolution as SSE frames. It runs once over the unsharded engine and once
// over a 3-shard router — WithStream serves both through the same handlers.
func TestIngestAndStream(t *testing.T) {
	t.Run("engine", func(t *testing.T) { testIngestAndStream(t, 0) })
	t.Run("sharded", func(t *testing.T) { testIngestAndStream(t, 3) })
}

func testIngestAndStream(t *testing.T, shards int) {
	ts, eng, obs := newStreamServer(t, shards)

	resp, body := postJSONL(t, ts.URL, obs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	if body.Accepted != len(obs) || body.Dropped != 0 {
		t.Fatalf("ingest body = %+v, want %d accepted", body, len(obs))
	}
	if err := eng.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	want := eng.Resolutions()
	if len(want) == 0 {
		t.Fatal("no resolutions after a full replay")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /stream: %v", err)
	}
	defer sresp.Body.Close()
	if got := sresp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Errorf("Content-Type = %q", got)
	}
	var got []resolutionBody
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() && len(got) < len(want) {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var r resolutionBody
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &r); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		got = append(got, r)
	}
	cancel()
	if len(got) != len(want) {
		t.Fatalf("streamed %d resolutions, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Seq != want[i].Seq || r.EID != want[i].EID || r.VID != want[i].VID {
			t.Errorf("frame %d = %+v, want seq=%d eid=%s vid=%s", i, r, want[i].Seq, want[i].EID, want[i].VID)
		}
	}
}

// brokenPipeWriter is an http.ResponseWriter+Flusher whose Write starts
// failing after okWrites successes — a client that disconnected mid-stream.
type brokenPipeWriter struct {
	hdr      http.Header
	writes   int
	okWrites int
}

func (w *brokenPipeWriter) Header() http.Header { return w.hdr }
func (w *brokenPipeWriter) WriteHeader(int)     {}
func (w *brokenPipeWriter) Flush()              {}
func (w *brokenPipeWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.okWrites {
		return 0, errors.New("broken pipe")
	}
	return len(p), nil
}

// TestStreamStopsOnClientWriteError pins that a write failure ends the SSE
// handler immediately: one successful frame, one failed attempt, return —
// not a blind march through the whole backlog (or worse, a handler parked
// forever on the live channel of a dead connection).
func TestStreamStopsOnClientWriteError(t *testing.T) {
	checkLeaks(t)
	cfg := dataset.DefaultConfig()
	cfg.NumPersons = 40
	cfg.Density = 8
	cfg.NumWindows = 8
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(ds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.MatchAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	idx, err := fusion.BuildIndex(ds, rep)
	if err != nil {
		t.Fatal(err)
	}
	_, obs, err := stream.EventsFromDataset(ds, 1_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := stream.NewEngine(stream.Config{
		Targets:    ds.AllEIDs()[:6],
		WindowMS:   1_000,
		LatenessMS: 250,
		Dim:        ds.Config.DescriptorDim(),
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range obs {
		if _, err := eng.Ingest(o); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(eng.Resolutions()) < 2 {
		t.Fatalf("fixture emitted %d resolutions, need >= 2 for the backlog", len(eng.Resolutions()))
	}
	srv, err := New(ds, idx, WithStream(eng))
	if err != nil {
		t.Fatal(err)
	}

	w := &brokenPipeWriter{hdr: make(http.Header), okWrites: 1}
	req := httptest.NewRequest(http.MethodGet, "/stream", nil)
	done := make(chan struct{})
	go func() {
		srv.ServeHTTP(w, req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler still running after the client write failed")
	}
	if w.writes != 2 {
		t.Errorf("handler made %d writes, want 2 (one frame delivered, one failed attempt, then stop)", w.writes)
	}
}

// TestIngestCountsLateDrops pins that re-delivered stale observations are
// reported as dropped, not accepted.
func TestIngestCountsLateDrops(t *testing.T) {
	ts, _, obs := newStreamServer(t, 0)
	if resp, _ := postJSONL(t, ts.URL, obs); resp.StatusCode != http.StatusOK {
		t.Fatalf("full ingest status = %d", resp.StatusCode)
	}
	resp, body := postJSONL(t, ts.URL, obs[:1])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-delivery status = %d", resp.StatusCode)
	}
	if body.Accepted != 0 || body.Dropped != 1 {
		t.Errorf("re-delivery body = %+v, want 1 dropped", body)
	}
}

// TestIngestSkipsHeaderLine pins that a whole evgen -events file — header
// line included — can be posted as-is: the header is skipped, not counted.
func TestIngestSkipsHeaderLine(t *testing.T) {
	ts, _, obs := newStreamServer(t, 0)
	var b strings.Builder
	b.WriteString(`{"kind":"header","version":1,"windowMs":1000,"dim":64}` + "\n")
	line, err := json.Marshal(obs[0])
	if err != nil {
		t.Fatal(err)
	}
	b.Write(line)
	b.WriteByte('\n')
	resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest with header status = %d, want 200", resp.StatusCode)
	}
	var body ingestBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Accepted != 1 || body.Dropped != 0 {
		t.Errorf("body = %+v, want exactly the one observation accepted", body)
	}
}

// TestIngestRejectsMalformed covers the 400 paths: non-JSON lines and
// well-formed JSON that fails observation validation.
func TestIngestRejectsMalformed(t *testing.T) {
	ts, _, _ := newStreamServer(t, 0)
	resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", strings.NewReader("not json\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage line status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/ingest", "application/x-ndjson",
		strings.NewReader(`{"ts":-5,"kind":"E","cell":0,"eid":"aa","attr":1}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid observation status = %d, want 400", resp.StatusCode)
	}
}

// TestStreamEndpointsAbsentWithoutOption pins that servers built without
// WithStream expose neither endpoint.
func TestStreamEndpointsAbsentWithoutOption(t *testing.T) {
	ts, _, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/ingest without stream status = %d, want 404", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/stream", nil); code != http.StatusNotFound {
		t.Errorf("/stream without stream status = %d, want 404", code)
	}
}

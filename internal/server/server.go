// Package server exposes a matched EV dataset as a JSON HTTP API — the
// query side of the paper's vision: after (universal) matching, a single
// request fuses both data sources. Endpoints:
//
//	GET /healthz                       liveness and index size
//	GET /match?eid=<eid>               the EID's matched VID and confidence
//	GET /reverse?vid=<vid>             the VID's matched EID
//	GET /trajectory?eid=<eid>          the fused E+V trajectory
//	GET /whowasat?cell=<id>&window=<w> everyone observed there, both identities
//	GET /metricsz                      operational counters (with WithMetrics)
//	POST /ingest                       JSONL observations (with WithStream)
//	GET /stream                        resolutions as SSE (with WithStream)
//
// The query handlers are read-only over an immutable dataset and index; the
// optional stream endpoints delegate to a stream.Processor — the unsharded
// Engine or the sharded Router — which synchronizes internally. Every handler
// is safe for concurrent use.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"evmatching/internal/dataset"
	"evmatching/internal/fusion"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/stream"
)

// Server serves fusion queries over one dataset.
type Server struct {
	ds      *dataset.Dataset
	idx     *fusion.Index
	mux     *http.ServeMux
	metrics func() map[string]int64
	stream  stream.Processor
}

// Option customizes a Server.
type Option func(*Server)

// WithMetrics exposes the snapshot function's counters at GET /metricsz —
// typically metrics.(*Registry).Snapshot, carrying the cluster's
// fault-recovery totals when evserve runs in cluster mode.
func WithMetrics(snapshot func() map[string]int64) Option {
	return func(s *Server) { s.metrics = snapshot }
}

// New creates a server over a dataset and its matching index.
func New(ds *dataset.Dataset, idx *fusion.Index, opts ...Option) (*Server, error) {
	if ds == nil || idx == nil {
		return nil, errors.New("server: nil dataset or index")
	}
	s := &Server{ds: ds, idx: idx, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /match", s.handleMatch)
	s.mux.HandleFunc("GET /reverse", s.handleReverse)
	s.mux.HandleFunc("GET /trajectory", s.handleTrajectory)
	s.mux.HandleFunc("GET /whowasat", s.handleWhoWasAt)
	if s.metrics != nil {
		s.mux.HandleFunc("GET /metricsz", s.handleMetrics)
	}
	if s.stream != nil {
		s.mux.HandleFunc("POST /ingest", s.handleIngest)
		s.mux.HandleFunc("GET /stream", s.handleStream)
	}
	return s, nil
}

// handleMetrics serves the operational counters; encoding/json renders map
// keys in sorted order, so the body is deterministic for a given snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics())
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

var _ http.Handler = (*Server)(nil)

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// jsonFloat is a float64 that survives JSON encoding whatever its value:
// NaN and ±Inf marshal as null instead of aborting the encoder. Response
// bodies use it for any field fed from match statistics, where ratios like a
// lone candidate's margin are legitimately infinite.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	// Encode before touching the ResponseWriter: once the status header is
	// out, an encoding failure (e.g. a non-finite float that slipped past
	// sanitization) would silently truncate the body mid-response. Buffering
	// first lets such failures surface as a well-formed 500 instead.
	data, err := json.Marshal(body)
	if err != nil {
		status = http.StatusInternalServerError
		data, _ = json.Marshal(errorBody{Error: fmt.Sprintf("encode response: %v", err)})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data = append(data, '\n')
	_, _ = w.Write(data)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// healthBody reports liveness.
type healthBody struct {
	Persons   int `json:"persons"`
	Scenarios int `json:"scenarios"`
	Matched   int `json:"matched"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, healthBody{
		Persons:   len(s.ds.Persons),
		Scenarios: s.ds.Store.Len(),
		Matched:   s.idx.Len(),
	})
}

// matchBody is the /match and /reverse response.
type matchBody struct {
	EID        ids.EID   `json:"eid"`
	VID        ids.VID   `json:"vid"`
	Confidence jsonFloat `json:"confidence,omitempty"`
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	e := ids.EID(r.URL.Query().Get("eid"))
	if e == ids.None {
		writeError(w, http.StatusBadRequest, "missing eid parameter")
		return
	}
	v, err := s.idx.VIDOf(e)
	if err != nil {
		writeError(w, http.StatusNotFound, "EID %s is not matched", e)
		return
	}
	conf, err := s.idx.Confidence(e)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "confidence lookup: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, matchBody{EID: e, VID: v, Confidence: jsonFloat(conf)})
}

func (s *Server) handleReverse(w http.ResponseWriter, r *http.Request) {
	v := ids.VID(r.URL.Query().Get("vid"))
	if v == ids.NoVID {
		writeError(w, http.StatusBadRequest, "missing vid parameter")
		return
	}
	e, err := s.idx.EIDOf(v)
	if err != nil {
		writeError(w, http.StatusNotFound, "VID %s is not matched", v)
		return
	}
	writeJSON(w, http.StatusOK, matchBody{EID: e, VID: v})
}

// trajectoryBody is the /trajectory response.
type trajectoryBody struct {
	EID       ids.EID        `json:"eid"`
	VID       ids.VID        `json:"vid"`
	Sightings []sightingBody `json:"sightings"`
}

type sightingBody struct {
	Window     int     `json:"window"`
	Cell       int     `json:"cell"`
	X          float64 `json:"x"`
	Y          float64 `json:"y"`
	Electronic bool    `json:"electronic"`
	Visual     bool    `json:"visual"`
}

func (s *Server) handleTrajectory(w http.ResponseWriter, r *http.Request) {
	e := ids.EID(r.URL.Query().Get("eid"))
	if e == ids.None {
		writeError(w, http.StatusBadRequest, "missing eid parameter")
		return
	}
	v, err := s.idx.VIDOf(e)
	if err != nil {
		writeError(w, http.StatusNotFound, "EID %s is not matched", e)
		return
	}
	sightings, err := s.idx.FusedTrajectory(e)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "trajectory: %v", err)
		return
	}
	body := trajectoryBody{EID: e, VID: v, Sightings: make([]sightingBody, 0, len(sightings))}
	for _, sg := range sightings {
		body.Sightings = append(body.Sightings, sightingBody{
			Window:     sg.Window,
			Cell:       int(sg.Cell),
			X:          sg.Pos.X,
			Y:          sg.Pos.Y,
			Electronic: sg.Electronic,
			Visual:     sg.Visual,
		})
	}
	writeJSON(w, http.StatusOK, body)
}

// presenceBody is one /whowasat row.
type presenceBody struct {
	EID ids.EID `json:"eid,omitempty"`
	VID ids.VID `json:"vid,omitempty"`
}

func (s *Server) handleWhoWasAt(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cell, err := strconv.Atoi(q.Get("cell"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad cell parameter: %v", err)
		return
	}
	window, err := strconv.Atoi(q.Get("window"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad window parameter: %v", err)
		return
	}
	if cell < 0 || cell >= s.ds.Layout.NumCells() {
		writeError(w, http.StatusNotFound, "cell %d out of range", cell)
		return
	}
	present, err := s.idx.WhoWasAt(geo.CellID(cell), window)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "query: %v", err)
		return
	}
	out := make([]presenceBody, 0, len(present))
	for _, p := range present {
		out = append(out, presenceBody{EID: p.EID, VID: p.VID})
	}
	writeJSON(w, http.StatusOK, out)
}

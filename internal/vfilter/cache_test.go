package vfilter

import (
	"errors"
	"strings"
	"testing"

	"evmatching/internal/feature"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// badPatchWorld builds a store with one scenario whose second detection
// carries a malformed patch, so extraction fails partway through.
func badPatchWorld(t *testing.T) (*Filter, scenario.ID) {
	t.Helper()
	w := newWorld(t, 3)
	obs := w.gallery.Observe(0, 0.03, w.rng)
	dets := []scenario.Detection{
		{VID: ids.VIDLabel(0), Patch: feature.EncodePatch(obs, 1, w.rng)},
		{VID: ids.VIDLabel(1), Patch: feature.Patch{W: 2, H: 2, Pix: []byte{1}}},
		{VID: ids.VIDLabel(2), Patch: feature.EncodePatch(obs, 1, w.rng)},
	}
	e := &scenario.EScenario{Cell: geo.CellID(0), Window: 0,
		EIDs: map[ids.EID]scenario.Attr{eidOf(0): scenario.AttrInclusive}}
	v := &scenario.VScenario{Cell: e.Cell, Window: 0, Detections: dets}
	id, err := w.store.Add(e, v)
	if err != nil {
		t.Fatal(err)
	}
	return newFilter(t, w, 0.5), id
}

// TestFeaturesCachedError: a failed extraction is computed once, counts the
// attempted extractions (the partial work really happened), and every later
// call — Features or Match — observes the same cached error without paying
// for or counting the extraction again.
func TestFeaturesCachedError(t *testing.T) {
	f, id := badPatchWorld(t)

	_, err := f.Features(id)
	if err == nil {
		t.Fatal("want extraction error")
	}
	if !errors.Is(err, feature.ErrBadPatch) {
		t.Errorf("error %v should wrap feature.ErrBadPatch", err)
	}
	if !strings.Contains(err.Error(), "detection 1") {
		t.Errorf("error %v should name the failing detection", err)
	}
	st := f.Stats()
	// One successful extraction plus the failed attempt.
	if st.Extractions != 2 {
		t.Errorf("Extractions after failure = %d, want 2 (attempts counted)", st.Extractions)
	}
	if st.ScenariosProcessed != 0 {
		t.Errorf("ScenariosProcessed after failure = %d, want 0", st.ScenariosProcessed)
	}

	_, err2 := f.Features(id)
	if err2 == nil || err2.Error() != err.Error() {
		t.Errorf("second Features call error = %v, want cached %v", err2, err)
	}
	if got := f.Stats().Extractions; got != 2 {
		t.Errorf("Extractions after cached retry = %d, want 2 (no double count)", got)
	}

	if _, err := f.Match(eidOf(0), []scenario.ID{id}, nil); err == nil {
		t.Error("Match over the failing scenario should surface the cached error")
	}
	if got := f.Stats().Extractions; got != 2 {
		t.Errorf("Extractions after Match on cached error = %d, want 2", got)
	}
}

// TestFeaturesMatrixViews pins the compatibility contract: Features returns
// one vector per detection, each a row view of the scenario's matrix.
func TestFeaturesMatrixViews(t *testing.T) {
	w := newWorld(t, 3)
	id := w.addScenario(t, 0, []int{0, 1, 2})
	f := newFilter(t, w, 0.5)
	feats, err := f.Features(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 3 {
		t.Fatalf("got %d feature vectors, want 3", len(feats))
	}
	for i, v := range feats {
		if len(v) != 64 {
			t.Errorf("feats[%d] dim = %d, want 64", i, len(v))
		}
	}
	again, err := f.Features(id)
	if err != nil {
		t.Fatal(err)
	}
	if &again[0][0] != &feats[0][0] {
		t.Error("second Features call should return the same cached storage")
	}
}

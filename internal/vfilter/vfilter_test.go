package vfilter

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"evmatching/internal/feature"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// world is a hand-built scenario store over a small gallery.
type world struct {
	store   *scenario.Store
	gallery *feature.Gallery
	rng     *rand.Rand
}

func newWorld(t *testing.T, persons int) *world {
	t.Helper()
	layout, err := geo.NewGridLayout(geo.Square(geo.Pt(0, 0), 100), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	g, err := feature.NewGallery(rng, persons, 64)
	if err != nil {
		t.Fatal(err)
	}
	return &world{store: scenario.NewStore(layout), gallery: g, rng: rng}
}

// addScenario adds an EV-Scenario at the given window containing the given
// persons; person indexes in missing are left out of the V side (missed
// detections). Person i is assumed to carry EID "e<i>".
func (w *world) addScenario(t *testing.T, window int, persons []int, missing ...int) scenario.ID {
	t.Helper()
	miss := map[int]bool{}
	for _, m := range missing {
		miss[m] = true
	}
	eids := make(map[ids.EID]scenario.Attr, len(persons))
	var dets []scenario.Detection
	for _, p := range persons {
		eids[eidOf(p)] = scenario.AttrInclusive
		if miss[p] {
			continue
		}
		obs := w.gallery.Observe(p, 0.03, w.rng)
		dets = append(dets, scenario.Detection{
			VID:        ids.VIDLabel(p),
			Patch:      feature.EncodePatch(obs, 1, w.rng),
			TruePerson: p,
		})
	}
	e := &scenario.EScenario{Cell: geo.CellID(window % 16), Window: window, EIDs: eids}
	var v *scenario.VScenario
	if len(dets) > 0 {
		v = &scenario.VScenario{Cell: e.Cell, Window: window, Detections: dets}
	}
	id, err := w.store.Add(e, v)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func eidOf(p int) ids.EID { return ids.EID(rune('a' + p)) }

func newFilter(t *testing.T, w *world, acceptMajority float64) *Filter {
	t.Helper()
	f, err := New(w.store, Config{
		Extractor:      feature.Extractor{Dim: 64},
		AcceptMajority: acceptMajority,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{Extractor: feature.Extractor{Dim: 64}}); err == nil {
		t.Error("want error for nil store")
	}
	w := newWorld(t, 2)
	if _, err := New(w.store, Config{Extractor: feature.Extractor{Dim: 1}}); err == nil {
		t.Error("want error for tiny extractor dim")
	}
	if _, err := New(w.store, Config{Extractor: feature.Extractor{Dim: 8}, AcceptMajority: 2}); err == nil {
		t.Error("want error for AcceptMajority > 1")
	}
}

func TestMatchSingleCandidate(t *testing.T) {
	w := newWorld(t, 4)
	id := w.addScenario(t, 0, []int{0})
	f := newFilter(t, w, 0.5)
	res, err := f.Match(eidOf(0), []scenario.ID{id}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.VID != ids.VIDLabel(0) {
		t.Errorf("VID = %v, want %v", res.VID, ids.VIDLabel(0))
	}
	if !res.Acceptable || res.MajorityFrac != 1 {
		t.Errorf("res = %+v", res)
	}
}

func TestMatchAcrossScenarios(t *testing.T) {
	// Person 0 appears in all three scenarios; confusers vary. The right
	// VID is the only one present throughout and must win every vote.
	w := newWorld(t, 6)
	list := []scenario.ID{
		w.addScenario(t, 0, []int{0, 1, 2}),
		w.addScenario(t, 1, []int{0, 2, 3}),
		w.addScenario(t, 2, []int{0, 4, 5}),
	}
	f := newFilter(t, w, 0.5)
	res, err := f.Match(eidOf(0), list, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.VID != ids.VIDLabel(0) {
		t.Errorf("VID = %v, want %v", res.VID, ids.VIDLabel(0))
	}
	for i, v := range res.PerScenario {
		if v != ids.VIDLabel(0) {
			t.Errorf("scenario %d vote = %v", i, v)
		}
	}
	if res.Probability <= 0.3 {
		t.Errorf("Probability = %v, suspiciously low for the true VID", res.Probability)
	}
}

func TestMatchRuleOut(t *testing.T) {
	// Persons 0 and 1 travel together through every scenario: without
	// rule-out the match is a coin flip; excluding person 0's VID forces 1.
	w := newWorld(t, 3)
	list := []scenario.ID{
		w.addScenario(t, 0, []int{0, 1}),
		w.addScenario(t, 1, []int{0, 1}),
	}
	f := newFilter(t, w, 0.5)
	exclude := map[ids.VID]bool{ids.VIDLabel(0): true}
	res, err := f.Match(eidOf(1), list, exclude)
	if err != nil {
		t.Fatal(err)
	}
	if res.VID != ids.VIDLabel(1) {
		t.Errorf("VID = %v, want %v after rule-out", res.VID, ids.VIDLabel(1))
	}
}

func TestMatchMissingVIDMajoritySurvives(t *testing.T) {
	// Person 0 is missed in one of three scenarios; the other two still
	// carry the majority.
	w := newWorld(t, 6)
	list := []scenario.ID{
		w.addScenario(t, 0, []int{0, 1}),
		w.addScenario(t, 1, []int{0, 2}, 0), // 0 missed here
		w.addScenario(t, 2, []int{0, 3}),
	}
	f := newFilter(t, w, 0.5)
	res, err := f.Match(eidOf(0), list, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.VID != ids.VIDLabel(0) {
		t.Errorf("VID = %v, want %v despite one miss", res.VID, ids.VIDLabel(0))
	}
	// The single-scenario bystanders are pruned (they cannot carry a
	// majority), so the missed scenario simply does not vote.
	if res.MajorityFrac < 0.5 {
		t.Errorf("MajorityFrac = %v, want >= 0.5", res.MajorityFrac)
	}
}

func TestMatchPruningFallbackUnderHeavyMissing(t *testing.T) {
	// The true person is detected in only 1 of 3 scenarios: below the
	// presence bar. Pruning must fall back to all candidates rather than
	// leave the EID unmatchable.
	w := newWorld(t, 2)
	list := []scenario.ID{
		w.addScenario(t, 0, []int{0, 1}, 0),
		w.addScenario(t, 1, []int{0, 1}, 0, 1),
		w.addScenario(t, 2, []int{0, 1}, 1),
	}
	f := newFilter(t, w, 0.5)
	res, err := f.Match(eidOf(0), list, map[ids.VID]bool{ids.VIDLabel(1): true})
	if err != nil {
		t.Fatal(err)
	}
	if res.VID != ids.VIDLabel(0) {
		t.Errorf("VID = %v, want %v via fallback", res.VID, ids.VIDLabel(0))
	}
}

func TestMatchEmptyListAndNoCandidates(t *testing.T) {
	w := newWorld(t, 2)
	f := newFilter(t, w, 0.5)
	res, err := f.Match(eidOf(0), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.VID != ids.NoVID || res.Acceptable {
		t.Errorf("empty list res = %+v", res)
	}
	// A scenario whose only detection is excluded leaves no candidates.
	id := w.addScenario(t, 0, []int{0})
	res, err = f.Match(eidOf(0), []scenario.ID{id}, map[ids.VID]bool{ids.VIDLabel(0): true})
	if err != nil {
		t.Fatal(err)
	}
	if res.VID != ids.NoVID {
		t.Errorf("VID = %v, want NoVID when all candidates excluded", res.VID)
	}
}

func TestMatchNilVScenario(t *testing.T) {
	w := newWorld(t, 3)
	// Scenario where both detections are missed: V side is nil.
	empty := w.addScenario(t, 0, []int{0, 1}, 0, 1)
	full := w.addScenario(t, 1, []int{0, 2})
	f := newFilter(t, w, 0.5)
	res, err := f.Match(eidOf(0), []scenario.ID{empty, full}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.VID != ids.VIDLabel(0) {
		t.Errorf("VID = %v, want %v", res.VID, ids.VIDLabel(0))
	}
	if res.PerScenario[0] != ids.NoVID {
		t.Errorf("empty scenario voted %v", res.PerScenario[0])
	}
}

func TestScenarioReuseCache(t *testing.T) {
	w := newWorld(t, 4)
	shared := w.addScenario(t, 0, []int{0, 1, 2, 3})
	only0 := w.addScenario(t, 1, []int{0})
	only1 := w.addScenario(t, 2, []int{1})
	f := newFilter(t, w, 0.5)
	if _, err := f.Match(eidOf(0), []scenario.ID{shared, only0}, nil); err != nil {
		t.Fatal(err)
	}
	afterFirst := f.Stats()
	if _, err := f.Match(eidOf(1), []scenario.ID{shared, only1}, nil); err != nil {
		t.Fatal(err)
	}
	afterSecond := f.Stats()
	if afterFirst.ScenariosProcessed != 2 {
		t.Errorf("first match processed %d scenarios, want 2", afterFirst.ScenariosProcessed)
	}
	// The shared scenario must not be re-extracted: only the new one counts.
	if got := afterSecond.ScenariosProcessed - afterFirst.ScenariosProcessed; got != 1 {
		t.Errorf("second match processed %d new scenarios, want 1 (reuse)", got)
	}
	if afterSecond.Extractions <= afterFirst.Extractions {
		t.Error("second match should still extract the new scenario")
	}
	if afterSecond.Comparisons <= afterFirst.Comparisons {
		t.Error("comparisons should grow with each match")
	}
}

func TestMatchConcurrentSafe(t *testing.T) {
	w := newWorld(t, 8)
	shared := w.addScenario(t, 0, []int{0, 1, 2, 3, 4, 5, 6, 7})
	lists := make([][]scenario.ID, 8)
	for p := 0; p < 8; p++ {
		lists[p] = []scenario.ID{shared, w.addScenario(t, 1+p, []int{p})}
	}
	f := newFilter(t, w, 0.5)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	results := make([]Result, 8)
	// Stats readers race the matchers: the typed-atomic counters must give a
	// race-free snapshot whose monotone fields never run backwards.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last Stats
			for {
				s := f.Stats()
				if s.ScenariosProcessed < last.ScenariosProcessed ||
					s.Extractions < last.Extractions || s.Comparisons < last.Comparisons {
					t.Errorf("stats snapshot went backwards: %+v after %+v", s, last)
					return
				}
				last = s
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			results[p], errs[p] = f.Match(eidOf(p), lists[p], nil)
		}(p)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	for p := 0; p < 8; p++ {
		if errs[p] != nil {
			t.Fatalf("person %d: %v", p, errs[p])
		}
		if results[p].VID != ids.VIDLabel(p) {
			t.Errorf("person %d matched %v", p, results[p].VID)
		}
	}
	if got := f.Stats().ScenariosProcessed; got != 9 {
		t.Errorf("ScenariosProcessed = %d, want 9 (shared extracted once)", got)
	}
}

func TestAcceptMajorityThreshold(t *testing.T) {
	// Person 0 missed in 1 of 2 scenarios: majority 1/2 = 0.5.
	w := newWorld(t, 4)
	list := []scenario.ID{
		w.addScenario(t, 0, []int{0, 1}),
		w.addScenario(t, 1, []int{0, 2}, 0),
	}
	strict := newFilter(t, w, 0.9)
	res, err := strict.Match(eidOf(0), list, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Acceptable {
		t.Errorf("res acceptable at threshold 0.9 with MajorityFrac %v", res.MajorityFrac)
	}
}

func TestFeaturesEmptyScenario(t *testing.T) {
	w := newWorld(t, 2)
	id := w.addScenario(t, 0, []int{0, 1}, 0, 1)
	f := newFilter(t, w, 0.5)
	feats, err := f.Features(id)
	if err != nil {
		t.Fatal(err)
	}
	if feats != nil {
		t.Errorf("Features of detection-less scenario = %v, want nil", feats)
	}
	if f.Stats().ScenariosProcessed != 0 {
		t.Error("empty scenario counted as processed")
	}
}

func TestMatchMarginDiagnostics(t *testing.T) {
	w := newWorld(t, 3)
	// Lone candidate: infinite margin, no runner-up.
	solo := w.addScenario(t, 0, []int{0})
	f := newFilter(t, w, 0.5)
	res, err := f.Match(eidOf(0), []scenario.ID{solo}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Margin, 1) || res.RunnerUp != ids.NoVID {
		t.Errorf("solo margin = %v runnerUp = %v", res.Margin, res.RunnerUp)
	}
	// Two co-traveling candidates: finite margin >= 1 and a named runner-up.
	list := []scenario.ID{
		w.addScenario(t, 1, []int{1, 2}),
		w.addScenario(t, 2, []int{1, 2}),
	}
	res, err = f.Match(eidOf(1), list, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RunnerUp == ids.NoVID || res.RunnerUp == res.VID {
		t.Errorf("runner-up = %v (winner %v)", res.RunnerUp, res.VID)
	}
	if math.IsInf(res.Margin, 1) || res.Margin < 1 {
		t.Errorf("margin = %v, want finite >= 1", res.Margin)
	}
}

// TestExtractBatchConcurrentWithMatch races the batched-extraction entry
// point against Match calls over overlapping scenario lists (the schedule the
// batched parallel V stage produces). The shared cache must keep every
// scenario's extraction exactly-once however the callers interleave — run
// under -race in CI's concurrency tier.
func TestExtractBatchConcurrentWithMatch(t *testing.T) {
	w := newWorld(t, 8)
	shared := w.addScenario(t, 0, []int{0, 1, 2, 3, 4, 5, 6, 7})
	all := []scenario.ID{shared}
	lists := make([][]scenario.ID, 8)
	for p := 0; p < 8; p++ {
		own := w.addScenario(t, 1+p, []int{p})
		all = append(all, own)
		lists[p] = []scenario.ID{shared, own}
	}
	f := newFilter(t, w, 0.5)
	var wg sync.WaitGroup
	errs := make([]error, 12)
	// Four batch extractors over overlapping windows of the full list...
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lo := i * 2
			hi := lo + 5
			if hi > len(all) {
				hi = len(all)
			}
			errs[8+i] = f.ExtractBatch(all[lo:hi])
		}(i)
	}
	// ...racing eight matchers that demand the same scenarios.
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			_, errs[p] = f.Match(eidOf(p), lists[p], nil)
		}(p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	if got := f.Stats().ScenariosProcessed; got != len(all) {
		t.Errorf("ScenariosProcessed = %d, want %d (each scenario exactly once)", got, len(all))
	}
}

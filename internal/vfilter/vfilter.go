// Package vfilter implements VID filtering, the V stage of EV-Matching
// (paper §IV-B2). Given the E-Scenario list selected for an EID by set
// splitting, it processes only the corresponding V-Scenarios: it extracts
// appearance features from every detection (paying the video-processing
// cost, once per scenario thanks to a shared cache — the reuse that gives SS
// its win over EDP), scores every candidate VID with
// P(v) = Π_S max_d sim(v, d) (Equation 1 and the simplification of §IV-B2),
// and majority-votes the per-scenario winners.
package vfilter

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"evmatching/internal/feature"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// ErrNoStore reports construction without a scenario store.
var ErrNoStore = errors.New("vfilter: nil scenario store")

// Config parameterizes the filter.
type Config struct {
	// Extractor recovers feature vectors from detection patches.
	Extractor feature.Extractor
	// AcceptMajority is the minimum fraction of per-scenario votes the
	// winning VID must collect for the match to be acceptable (matching
	// refining re-runs unacceptable EIDs). Zero means any plurality wins.
	AcceptMajority float64
}

// Stats counts the visual-processing work performed, the paper's proxy for V
// stage cost: unique scenarios processed, feature extractions, and feature
// comparisons.
type Stats struct {
	ScenariosProcessed int
	Extractions        int
	Comparisons        int
}

// Result is the outcome of matching one EID.
type Result struct {
	EID ids.EID
	// VID is the matched visual identity (majority of per-scenario picks),
	// or ids.NoVID when no candidate was available.
	VID ids.VID
	// Probability is the matched VID's trajectory probability Π P(v ∈ S).
	Probability float64
	// MajorityFrac is the fraction of voting scenarios won by VID.
	MajorityFrac float64
	// PerScenario records each scenario's winning VID, aligned with the
	// scenario list passed to Match (NoVID for scenarios with no usable
	// detections).
	PerScenario []ids.VID
	// Acceptable reports whether the vote clears Config.AcceptMajority.
	Acceptable bool
	// RunnerUp is the second-choice VID by trajectory probability, and
	// Margin the ratio P(VID)/P(RunnerUp) — a margin near 1 flags a match
	// worth refining or reviewing. Margin is +Inf for a lone candidate.
	RunnerUp ids.VID
	Margin   float64
}

// cacheEntry holds one V-Scenario's extracted features, computed once.
type cacheEntry struct {
	once  sync.Once
	feats []feature.Vector // parallel to the scenario's detections
	err   error
}

// Filter matches EIDs to VIDs over one scenario store. It is safe for
// concurrent Match calls; the extraction cache is shared so each V-Scenario
// is processed at most once per Filter.
type Filter struct {
	store *scenario.Store
	cfg   Config

	mu    sync.Mutex
	cache map[scenario.ID]*cacheEntry
	stats Stats
}

// New creates a Filter over the store.
func New(store *scenario.Store, cfg Config) (*Filter, error) {
	if store == nil {
		return nil, ErrNoStore
	}
	if cfg.Extractor.Dim < 2 {
		return nil, fmt.Errorf("vfilter: extractor dim %d", cfg.Extractor.Dim)
	}
	if cfg.AcceptMajority < 0 || cfg.AcceptMajority > 1 {
		return nil, fmt.Errorf("vfilter: AcceptMajority %f out of [0,1]", cfg.AcceptMajority)
	}
	return &Filter{store: store, cfg: cfg, cache: make(map[scenario.ID]*cacheEntry)}, nil
}

// Stats returns a snapshot of the accumulated work counters.
func (f *Filter) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Features returns the extracted feature vectors of the V-Scenario with the
// given ID, computing and caching them on first use. A scenario with no
// detections yields (nil, nil).
func (f *Filter) Features(id scenario.ID) ([]feature.Vector, error) {
	v := f.store.V(id)
	if v == nil || len(v.Detections) == 0 {
		return nil, nil
	}
	f.mu.Lock()
	entry := f.cache[id]
	if entry == nil {
		entry = &cacheEntry{}
		f.cache[id] = entry
	}
	f.mu.Unlock()

	entry.once.Do(func() {
		feats := make([]feature.Vector, len(v.Detections))
		for i := range v.Detections {
			vec, err := f.cfg.Extractor.Extract(v.Detections[i].Patch)
			if err != nil {
				entry.err = fmt.Errorf("vfilter: extract scenario %d detection %d: %w", id, i, err)
				return
			}
			feats[i] = vec
		}
		entry.feats = feats
		f.mu.Lock()
		f.stats.ScenariosProcessed++
		f.stats.Extractions += len(feats)
		f.mu.Unlock()
	})
	return entry.feats, entry.err
}

// candidate accumulates one VID's evidence across the scenario list.
type candidate struct {
	vid   ids.VID
	feats []feature.Vector // its own detections, for the representative
	prob  float64
}

// Match finds the VID for EID e among the V-Scenarios of the given list,
// excluding already-matched VIDs (the rule-out of Theorem 4.1). The list is
// the EID's positive scenario list from set splitting.
func (f *Filter) Match(e ids.EID, list []scenario.ID, exclude map[ids.VID]bool) (Result, error) {
	res := Result{EID: e, VID: ids.NoVID, PerScenario: make([]ids.VID, len(list))}
	if len(list) == 0 {
		return res, nil
	}

	// Gather per-scenario features and the candidate VID pool.
	type scFeats struct {
		v     *scenario.VScenario
		feats []feature.Vector
	}
	scans := make([]scFeats, len(list))
	cands := make(map[ids.VID]*candidate)
	for i, id := range list {
		feats, err := f.Features(id)
		if err != nil {
			return res, err
		}
		v := f.store.V(id)
		scans[i] = scFeats{v: v, feats: feats}
		if v == nil {
			continue
		}
		for d, det := range v.Detections {
			if exclude[det.VID] {
				continue
			}
			c := cands[det.VID]
			if c == nil {
				c = &candidate{vid: det.VID, prob: 1}
				cands[det.VID] = c
			}
			c.feats = append(c.feats, feats[d])
		}
	}
	if len(cands) == 0 {
		return res, nil
	}

	// Trajectory pruning: the matched VID is "the only one having the same
	// trajectory with this EID" (paper §IV-B2), and a VID absent from more
	// than half the detecting scenarios can never carry the majority vote —
	// so drop such candidates outright. This keeps the candidate pool from
	// growing with crowd density (where each scenario contributes a hundred
	// bystander VIDs) and saves their feature comparisons. If nothing
	// clears the bar (severe VID missing), every candidate stays eligible.
	detecting := 0
	for _, sc := range scans {
		if sc.v != nil && len(sc.feats) > 0 {
			detecting++
		}
	}
	if need := (detecting + 1) / 2; need > 1 {
		presence := make(map[ids.VID]int, len(cands))
		for _, sc := range scans {
			if sc.v == nil {
				continue
			}
			seen := make(map[ids.VID]bool, len(sc.v.Detections))
			for _, det := range sc.v.Detections {
				if _, ok := cands[det.VID]; ok && !seen[det.VID] {
					seen[det.VID] = true
					presence[det.VID]++
				}
			}
		}
		pruned := make(map[ids.VID]*candidate, len(cands))
		//evlint:ignore maprange builds a filtered map with distinct keys; iteration order cannot affect its contents
		for vid, c := range cands {
			if presence[vid] >= need {
				pruned[vid] = c
			}
		}
		if len(pruned) > 0 {
			cands = pruned
		}
	}

	// Representative feature per candidate, then trajectory probability
	// P(v) = Π_S max_d sim(rep_v, d) over the scenarios with detections.
	// candOrder fixes one deterministic candidate order for every later
	// decision loop: error paths, votes, and runner-up selection must not
	// depend on map iteration order.
	candOrder := ids.SortedVIDKeys(cands)
	comparisons := 0
	reps := make(map[ids.VID]feature.Vector, len(cands))
	for _, vid := range candOrder {
		rep, err := feature.Mean(cands[vid].feats)
		if err != nil {
			return res, fmt.Errorf("vfilter: representative for %s: %w", vid, err)
		}
		reps[vid] = rep
	}
	for _, sc := range scans {
		if sc.v == nil || len(sc.feats) == 0 {
			continue
		}
		for _, vid := range candOrder {
			c := cands[vid]
			best := 0.0
			rep := reps[vid]
			for _, df := range sc.feats {
				s, err := feature.Sim(rep, df)
				if err != nil {
					return res, err
				}
				comparisons++
				if s > best {
					best = s
				}
			}
			c.prob *= best
		}
	}
	f.mu.Lock()
	f.stats.Comparisons += comparisons
	f.mu.Unlock()

	// Per-scenario vote: each scenario elects the present candidate with the
	// highest trajectory probability.
	votes := make(map[ids.VID]int)
	voting := 0
	for i, sc := range scans {
		res.PerScenario[i] = ids.NoVID
		if sc.v == nil {
			continue
		}
		var winner ids.VID
		bestProb := -1.0
		for _, det := range sc.v.Detections {
			c, ok := cands[det.VID]
			if !ok {
				continue
			}
			if c.prob > bestProb || (c.prob == bestProb && c.vid < winner) {
				winner, bestProb = c.vid, c.prob
			}
		}
		if winner != ids.NoVID {
			res.PerScenario[i] = winner
			votes[winner]++
			voting++
		}
	}
	if voting == 0 {
		return res, nil
	}

	// Majority decision; ties break toward the higher trajectory
	// probability, then lexicographically for determinism.
	var best ids.VID
	bestVotes := -1
	for _, vid := range candOrder {
		n, voted := votes[vid]
		if !voted {
			continue
		}
		switch {
		case n > bestVotes:
			best, bestVotes = vid, n
		case n == bestVotes:
			if cands[vid].prob > cands[best].prob ||
				(cands[vid].prob == cands[best].prob && vid < best) {
				best = vid
			}
		}
	}
	res.VID = best
	res.Probability = cands[best].prob
	res.MajorityFrac = float64(bestVotes) / float64(voting)
	res.Acceptable = res.MajorityFrac >= f.cfg.AcceptMajority

	// Runner-up diagnostics: the strongest other candidate by trajectory
	// probability.
	res.Margin = math.Inf(1)
	bestOther := -1.0
	for _, vid := range candOrder {
		if vid == best {
			continue
		}
		if c := cands[vid]; c.prob > bestOther || (c.prob == bestOther && vid < res.RunnerUp) {
			res.RunnerUp, bestOther = vid, c.prob
		}
	}
	if bestOther > 0 {
		res.Margin = res.Probability / bestOther
	}
	return res, nil
}
